// DNS resource-record model shared by the control plane, the engine layout,
// and the top-level specification. Constants mirror the MiniGo sources in
// src/engine (see engine/layout.h for the cross-language contract).
#ifndef DNSV_DNS_RR_H_
#define DNSV_DNS_RR_H_

#include <cstdint>
#include <string>

namespace dnsv {

// Wire-standard RR type codes (the subset the engine implements).
enum class RrType : int64_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kMx = 15,
  kTxt = 16,
  kAaaa = 28,
  kAny = 255,  // query-only pseudo-type
};

// Response codes. Values above 15 need EDNS: the header RCODE field is four
// bits, so the high eight bits travel in the OPT TTL (RFC 6891 §6.1.3).
enum class Rcode : int64_t {
  kNoError = 0,
  kFormErr = 1,  // wire-level only: the serving shell's answer to unparseable packets
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
  kBadVers = 16,  // EDNS version not supported (RFC 6891 §6.1.3)
};

// Response flag bits (Response.flags in the engine).
inline constexpr int64_t kFlagAa = 1;  // authoritative answer

// Match results returned by the Name module (paper Figs. 4/10).
inline constexpr int64_t kNoMatch = 0;
inline constexpr int64_t kExactMatch = 1;
inline constexpr int64_t kPartialMatch = 2;

const char* RrTypeName(RrType type);
// Like RrTypeName, but renders unknown codes as "TYPE<n>" (counterexample
// queries may use any qtype in [1, 255]).
std::string RrTypeDisplay(RrType type);
// Returns false for unknown mnemonics.
bool ParseRrType(const std::string& text, RrType* out);

const char* RcodeName(Rcode rcode);

// IPv4 dotted-quad <-> packed int helpers (A rdata is stored packed).
bool ParseIpv4(const std::string& text, int64_t* out);
std::string FormatIpv4(int64_t packed);

}  // namespace dnsv

#endif  // DNSV_DNS_RR_H_

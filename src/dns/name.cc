#include "src/dns/name.h"

#include <algorithm>
#include <cctype>

#include "src/support/logging.h"
#include "src/support/strings.h"

namespace dnsv {

Result<DnsName> DnsName::Parse(const std::string& text) {
  std::string trimmed(TrimWhitespace(text));
  if (!trimmed.empty() && trimmed.back() == '.') {
    trimmed.pop_back();  // absolute-name dot
  }
  DnsName name;
  if (trimmed.empty()) {
    return name;  // the root name
  }
  for (const std::string& raw : SplitString(trimmed, '.')) {
    if (raw.empty()) {
      return Result<DnsName>::Error("empty label in name: " + text);
    }
    if (raw.size() > 63) {
      return Result<DnsName>::Error("label longer than 63 bytes in: " + text);
    }
    std::string label = ToLowerAscii(raw);
    for (char c : label) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_' && c != '*') {
        return Result<DnsName>::Error(StrCat("bad character '", std::string(1, c),
                                             "' in label of: ", text));
      }
    }
    if (label.find('*') != std::string::npos && label != kWildcardLabel) {
      return Result<DnsName>::Error("'*' must be a whole label: " + text);
    }
    name.labels.push_back(std::move(label));
  }
  // A wildcard may only be the leftmost label.
  for (size_t i = 1; i < name.labels.size(); ++i) {
    if (name.labels[i] == kWildcardLabel) {
      return Result<DnsName>::Error("'*' must be the leftmost label: " + text);
    }
  }
  return name;
}

std::string DnsName::ToString() const {
  if (labels.empty()) {
    return ".";
  }
  return JoinStrings(labels, ".");
}

bool DnsName::IsSubdomainOf(const DnsName& suffix) const {
  if (suffix.labels.size() > labels.size()) {
    return false;
  }
  return std::equal(suffix.labels.rbegin(), suffix.labels.rend(), labels.rbegin());
}

std::vector<std::string> DnsName::ReversedLabels() const {
  return std::vector<std::string>(labels.rbegin(), labels.rend());
}

LabelInterner::LabelInterner() {
  // "*" sorts before every other allowed label character, so pinning it to a
  // fixed small code keeps the order invariant and lets the engine name it as
  // a compile-time constant (LABEL_STAR in types.mg).
  by_label_.emplace(kWildcardLabel, kWildcardCode);
  by_code_.emplace(kWildcardCode, kWildcardLabel);
}

int64_t LabelInterner::Intern(const std::string& raw_label) {
  std::string label = ToLowerAscii(raw_label);
  auto it = by_label_.find(label);
  if (it != by_label_.end()) {
    return it->second;
  }
  // Midpoint of lexicographic neighbors keeps integer order == label order.
  auto next = by_label_.lower_bound(label);
  int64_t hi = next != by_label_.end() ? next->second : kMaxCode;
  int64_t lo = next != by_label_.begin() ? std::prev(next)->second : kMinCode;
  DNSV_CHECK_MSG(hi - lo >= 2, "label code space exhausted between neighbors of: " + label);
  int64_t code = lo + (hi - lo) / 2;
  by_label_.emplace(std::move(label), code);
  by_code_.emplace(code, by_label_.find(ToLowerAscii(raw_label))->first);
  return code;
}

std::string LabelInterner::Decode(int64_t code) const {
  auto it = by_code_.find(code);
  if (it != by_code_.end()) {
    return it->second;
  }
  return StrCat("<label#", code, ">");
}

std::string LabelInterner::DecodeApprox(int64_t code) const {
  auto exact = by_code_.find(code);
  if (exact != by_code_.end()) {
    return exact->second;
  }
  // by_label_ is ordered by label string, which (order-preserving interning)
  // is also ordered by code: scan for the closest interned neighbor below.
  const std::string* below = nullptr;
  for (const auto& [label, label_code] : by_label_) {
    if (label_code < code) {
      below = &label;
    } else {
      break;
    }
  }
  if (below == nullptr) {
    return "0";  // before every interned label
  }
  return *below + "0";  // just after `below`, before the next interned label
}

std::vector<int64_t> LabelInterner::InternName(const DnsName& name) {
  std::vector<int64_t> codes;
  codes.reserve(name.labels.size());
  for (auto it = name.labels.rbegin(); it != name.labels.rend(); ++it) {
    codes.push_back(Intern(*it));
  }
  return codes;
}

}  // namespace dnsv

// Canned zone configurations used across tests, examples, and benches.
#ifndef DNSV_DNS_EXAMPLE_ZONES_H_
#define DNSV_DNS_EXAMPLE_ZONES_H_

#include "src/dns/zone.h"

namespace dnsv {

// The paper's Fig.-11 domain tree: example.com with cs / www / zoo subtrees
// (web.cs, zoo.cs below cs), used by the Table-1 path enumeration.
ZoneConfig Figure11Zone();

// A zone exercising every feature at once: wildcards (including deep
// matches), a delegation with glue, CNAME chains, MX additional processing,
// and an empty non-terminal. Used by differential tests and bug hunts.
ZoneConfig KitchenSinkZone();

// Minimal zone for quickstarts: apex SOA/NS plus a couple of A records.
ZoneConfig QuickstartZone();

// Zone tailored to reveal the Table-2 bugs: wildcard + ENT interplay,
// multi-NS delegation, MX at wildcard, SOA mname with in-zone addresses.
ZoneConfig BugHuntZone();

// example.com with `num_a` A records on www — wide enough (default 40, ~1.2 kB
// of answer) that the UDP clamp must truncate with TC=1 and only the TCP
// fallback can serve it in full. Used by the server integration tests, the
// dns_server selftest, and bench/server_throughput.
ZoneConfig WideRrsetZone(int num_a = 40);

}  // namespace dnsv

#endif  // DNSV_DNS_EXAMPLE_ZONES_H_

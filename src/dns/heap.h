// Control plane: materializes a canonical ZoneConfig into concrete memory as
// (a) the engine's in-heap domain tree and (b) the specification's flat RR
// list (paper §6.5). Struct layouts are resolved by field *name* against the
// compiled engine's TypeTable, so the C++ side cannot silently diverge from
// the MiniGo struct declarations.
#ifndef DNSV_DNS_HEAP_H_
#define DNSV_DNS_HEAP_H_

#include <string>
#include <vector>

#include "src/dns/name.h"
#include "src/dns/zone.h"
#include "src/interp/value.h"
#include "src/ir/type.h"
#include "src/support/status.h"

namespace dnsv {

// Engine-facing struct names (declared in src/engine/mg/types.mg).
inline constexpr char kStructRr[] = "RR";
inline constexpr char kStructRrSet[] = "RRSet";
inline constexpr char kStructTreeNode[] = "TreeNode";
inline constexpr char kStructResponse[] = "Response";

struct HeapImage {
  Value apex_ptr;       // *TreeNode — the engine's entry argument
  Value zone_rrs;       // []RR — the specification's entry argument
  Value origin_labels;  // []int — reversed interned origin labels
  int num_tree_nodes = 0;
};

// Field-index map for one struct, resolved once per TypeTable.
class StructLayout {
 public:
  StructLayout(const TypeTable& types, const std::string& struct_name);
  int index(const std::string& field) const;
  Type type() const { return type_; }
  size_t num_fields() const { return num_fields_; }

 private:
  Type type_;
  size_t num_fields_;
  std::vector<std::pair<std::string, int>> fields_;
};

// Verifies that the compiled engine module declares the four contract structs
// with the fields the control plane expects.
Status ValidateEngineLayout(const TypeTable& types);

// Builds the heap image for `zone` (which must already be canonical).
HeapImage BuildHeapImage(const ZoneConfig& zone, LabelInterner* interner,
                         const TypeTable& types, ConcreteMemory* memory);

// --- response decoding (for examples, tests, and counterexample reports) ---

struct RrView {
  std::string name;
  RrType type = RrType::kA;
  int64_t rdata_value = 0;
  std::string rdata_name;  // empty when the type has no name-valued rdata

  std::string ToString() const;
  bool operator==(const RrView& other) const = default;
};

struct ResponseView {
  Rcode rcode = Rcode::kNoError;
  bool aa = false;
  std::vector<RrView> answer;
  std::vector<RrView> authority;
  std::vector<RrView> additional;

  std::string ToString() const;
  bool operator==(const ResponseView& other) const = default;
};

// `response` is either a *Response pointer into `memory` or a Response struct
// value.
ResponseView DecodeResponse(const Value& response, const ConcreteMemory& memory,
                            const LabelInterner& interner, const TypeTable& types);

// The serving hot path decodes one response per query; resolving the struct
// layouts and field indices by name each time is measurable once the engine
// itself runs at compiled-backend speed. A ResponseDecoder does the name
// resolution once and is then reusable for every query against the same
// TypeTable + interner (both must outlive the decoder). DecodeResponse above
// is the one-shot convenience wrapper.
class ResponseDecoder {
 public:
  ResponseDecoder(const TypeTable& types, const LabelInterner& interner);

  ResponseView Decode(const Value& response, const ConcreteMemory& memory) const;

 private:
  const LabelInterner& interner_;
  StructLayout response_layout_;
  StructLayout rr_layout_;
  int f_rcode_, f_flags_, f_answer_, f_authority_, f_additional_;
  int f_rname_, f_rtype_, f_rdata_int_, f_rdata_name_;
};

// Builds the engine-order []int value for a query name.
Value QnameValue(const DnsName& name, LabelInterner* interner);

}  // namespace dnsv

#endif  // DNSV_DNS_HEAP_H_

// DNS wire format (RFC 1035 §4): query parsing and response encoding.
//
// The paper's verification scope deliberately excludes packet
// encoding/decoding (footnote 1: "traditional testing techniques for these
// modules are enough"); this module is that excluded component, built so the
// repo's engine can serve real packets (examples/dns_server) and covered by
// conventional unit tests rather than symbolic execution.
//
// Supported: standard queries (QR=0, OPCODE=0, one question), responses with
// answer/authority/additional sections for the engine's record types. Name
// compression is emitted for the question echo only (pointers to offset 12);
// decompression of arbitrary pointers is supported when parsing.
#ifndef DNSV_DNS_WIRE_H_
#define DNSV_DNS_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dns/heap.h"
#include "src/dns/name.h"
#include "src/dns/rr.h"
#include "src/support/status.h"

namespace dnsv {

struct WireQuery {
  uint16_t id = 0;
  DnsName qname;
  RrType qtype = RrType::kA;
  uint16_t qclass = 1;  // IN
  bool recursion_desired = false;
};

// Parses a wire-format query packet. Fails on truncated packets, non-query
// opcodes, QDCOUNT != 1, or malformed names (including compression loops).
Result<WireQuery> ParseWireQuery(const std::vector<uint8_t>& packet);

// Encodes `response` (the engine's decoded view) as a wire-format answer to
// `query`. rdata encodings: A = 4 bytes; AAAA = 16 bytes (our int payload in
// the low 8); NS/CNAME = name; MX = preference + exchange; SOA = mname,
// rname ".", serial + fixed timers; TXT = one character-string with the
// token's decimal spelling.
std::vector<uint8_t> EncodeWireResponse(const WireQuery& query, const ResponseView& response);

// Parses a wire response back into a view (used for round-trip tests and by
// client tooling). TTLs and classes are validated but not represented.
Result<ResponseView> ParseWireResponse(const std::vector<uint8_t>& packet,
                                       WireQuery* echoed_query);

// Human-readable hex dump, 16 bytes per line (debugging aid).
std::string HexDump(const std::vector<uint8_t>& packet);

// Builds a query packet (client side).
std::vector<uint8_t> EncodeWireQuery(const WireQuery& query);

}  // namespace dnsv

#endif  // DNSV_DNS_WIRE_H_

// DNS wire format (RFC 1035 §4): query parsing and response encoding.
//
// The paper's verification scope deliberately excludes packet
// encoding/decoding (footnote 1: "traditional testing techniques for these
// modules are enough"); this module is that excluded component, built so the
// repo's engine can serve real packets (examples/dns_server). It is covered
// by conventional unit tests plus the adversarial wire fuzzer (src/fuzz,
// tools/dnsv-fuzz) — see docs/WIRE.md for the codec invariants the fuzzer
// enforces.
//
// Supported: standard queries (QR=0, OPCODE=0, one question), responses with
// answer/authority/additional sections for the engine's record types.
// Decompression of arbitrary backward pointers is supported when parsing;
// the encoder always emits uncompressed names.
#ifndef DNSV_DNS_WIRE_H_
#define DNSV_DNS_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dns/heap.h"
#include "src/dns/name.h"
#include "src/dns/rr.h"
#include "src/support/status.h"

namespace dnsv {

// RFC 1035 §4.2.1: the UDP payload limit responses are truncated to.
inline constexpr size_t kMaxUdpPayload = 512;

// RFC 1035 §4.2.2: TCP messages carry a two-byte big-endian length prefix,
// so one TCP message holds at most 65535 bytes. The TCP path encodes with
// this limit instead of the 512-byte UDP clamp — it is the channel that
// completes a TC=1 truncated UDP answer (docs/WIRE.md truncation laws,
// docs/SERVER.md TCP fallback).
inline constexpr size_t kMaxTcpPayload = 0xffff;

// EDNS(0), RFC 6891. The OPT pseudo-RR's CLASS field advertises the
// requestor's UDP payload capacity; values below 512 are clamped up to 512
// at parse time (§6.2.3: "values lower than 512 MUST be treated as equal to
// 512"), so `udp_payload` is always a usable limit.
inline constexpr uint16_t kEdnsMinPayload = 512;
// The payload size this implementation advertises in the OPT it emits —
// matches the 4 KiB receive buffers on the server's UDP path.
inline constexpr uint16_t kEdnsResponderPayload = 4096;
// Wire size of the OPT record the encoder emits: root name (1) + TYPE (2) +
// CLASS (2) + TTL (4) + RDLENGTH (2), empty RDATA.
inline constexpr size_t kEdnsOptWireSize = 11;

// The EDNS state carried by one DNS message. For a parsed query this is what
// the client advertised; for a parsed response, what the responder emitted.
struct EdnsInfo {
  bool present = false;
  uint16_t udp_payload = kEdnsMinPayload;  // clamped to [512, 65535]
  uint8_t version = 0;                     // >0 ⇒ the server answers BADVERS
  bool dnssec_ok = false;                  // the DO bit (TTL bit 0x8000)

  friend bool operator==(const EdnsInfo& a, const EdnsInfo& b) {
    return a.present == b.present && a.udp_payload == b.udp_payload &&
           a.version == b.version && a.dnssec_ok == b.dnssec_ok;
  }
  friend bool operator!=(const EdnsInfo& a, const EdnsInfo& b) { return !(a == b); }
};

struct WireQuery {
  uint16_t id = 0;
  DnsName qname;
  RrType qtype = RrType::kA;
  uint16_t qclass = 1;  // IN
  bool recursion_desired = false;
  EdnsInfo edns;
};

// The size limit a response to `edns` must honor on a channel whose
// transport-level ceiling is `transport_limit` (RFC 6891 §6.2.3/§6.2.4):
//   TCP (transport_limit == kMaxTcpPayload)  — EDNS payload does not apply
//   UDP with an OPT                          — the clamped advertised payload
//   UDP without an OPT                       — the transport's classic limit
size_t EffectivePayloadLimit(const EdnsInfo& edns, size_t transport_limit);

// Best-effort scan of a (possibly malformed) query packet for a well-formed
// root-named OPT record, so the FORMERR/NOTIMP fallback paths can honor
// RFC 6891 §7 (error responses carry an OPT when the query did). Walks the
// declared sections tolerantly and returns true with *out filled on the
// first recognizable OPT; returns false when the walk dies before finding
// one. Never reads past `size`.
bool ScanQueryForOpt(const uint8_t* packet, size_t size, EdnsInfo* out);

// Parses a wire-format query packet. Fails on truncated packets, non-query
// opcodes, QDCOUNT != 1, or malformed names (including compression loops).
// Section accounting is strict: ANCOUNT/NSCOUNT must be zero, the additional
// section must hold exactly the ARCOUNT records it declares, and no bytes
// may trail the last section. At most one OPT record is accepted, and only
// with the root name (RFC 6891 §6.1.1); its advertised payload, version, and
// DO bit land in WireQuery::edns (a version > 0 still parses — the caller
// answers BADVERS, which needs the parsed question to echo). Non-OPT
// additional records (e.g. TSIG) are skipped structurally.
// The view form is the primary entry point: the serving hot path hands the
// worker's receive buffer straight to the parser, so no per-packet copy is
// made (the parsed WireQuery owns its labels and does not alias `packet`).
Result<WireQuery> ParseWireQuery(const uint8_t* packet, size_t size);
inline Result<WireQuery> ParseWireQuery(const std::vector<uint8_t>& packet) {
  return ParseWireQuery(packet.data(), packet.size());
}

// Encodes `response` (the engine's decoded view) as a wire-format answer to
// `query`. rdata encodings: A = 4 bytes; AAAA = 16 bytes (our int payload in
// the low 8); NS/CNAME = name; MX = preference + exchange; SOA = mname,
// rname ".", serial + fixed timers; TXT = one character-string with the
// token's decimal spelling.
//
// Fails (instead of emitting garbage) on names that do not fit the wire
// format — a label over 63 bytes, an empty label, a name over 255 wire
// bytes — and on section counts over 65535. Responses that exceed
// `max_size` are truncated per RFC 1035 §4.1.1: whole records are dropped
// back to front (additional, then authority, then answer) and the TC bit is
// set; the question is always retained.
//
// When `query.edns.present`, the response carries an OPT record (root name,
// kEdnsResponderPayload, the query's DO bit echoed, extended-RCODE high bits
// from `response.rcode`) appended after the additional section. The OPT is
// part of the fixed portion for truncation purposes — it survives any TC=1
// clamp, per RFC 6891 §7. Callers pass the EDNS-negotiated limit as
// `max_size` (EffectivePayloadLimit); the 512 default is the plain-UDP case.
// An rcode above 15 (e.g. BADVERS) requires `query.edns.present` — without
// an OPT there is nowhere to put the extended bits — and is rejected
// otherwise.
Result<std::vector<uint8_t>> EncodeWireResponse(const WireQuery& query,
                                                const ResponseView& response,
                                                size_t max_size = kMaxUdpPayload);

// Parses a wire response back into a view (used for round-trip tests, the
// fuzzer, and client tooling). TTLs and classes are validated but not
// represented. Rejects records whose rdata does not consume exactly RDLENGTH
// bytes. When `truncated` is non-null it receives the header's TC bit.
//
// An additional-section OPT record (at most one, root name required) is
// diverted into `echoed_query->edns` instead of the view's additional
// section; its TTL's extended-RCODE bits are folded into the view's rcode
// (rcode = ext << 4 | header low bits), which is how BADVERS comes back as
// Rcode::kBadVers. OPT records outside the additional section are rejected.
Result<ResponseView> ParseWireResponse(const std::vector<uint8_t>& packet,
                                       WireQuery* echoed_query, bool* truncated = nullptr);

// Appends `message` to `out` behind the RFC 1035 §4.2.2 two-byte big-endian
// length prefix. Fails (leaving `out` untouched) when the message exceeds
// kMaxTcpPayload — the prefix cannot express it.
Status AppendTcpFrame(std::vector<uint8_t>* out, const std::vector<uint8_t>& message);

// Incremental decoder for the RFC 1035 §4.2.2 framing on a TCP byte stream.
// Feed() whatever read() returned; Next() pops complete messages in order
// (several queries may be pipelined on one connection, and a length prefix
// may arrive split across reads). A zero-length prefix yields an empty
// message — the caller's parser rejects it like any short packet.
class TcpFrameDecoder {
 public:
  void Feed(const uint8_t* data, size_t size);
  // Moves the next complete message into *message and returns true, or
  // returns false when the buffered bytes do not yet hold one.
  bool Next(std::vector<uint8_t>* message);
  // Bytes buffered but not yet returned (prefix bytes included).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already returned via Next()
};

// Human-readable hex dump, 16 bytes per line (debugging aid).
std::string HexDump(const std::vector<uint8_t>& packet);

// Builds a query packet (client side). Names that violate the wire limits
// produce a packet ParseWireQuery rejects; use ValidateWireName first when
// the name is untrusted. When `query.edns.present`, an OPT record advertising
// `edns.udp_payload` (clamped up to 512 so encode∘parse is the identity) with
// the version and DO bit is appended and ARCOUNT is set to 1.
std::vector<uint8_t> EncodeWireQuery(const WireQuery& query);

// Checks that every label is 1..63 bytes and the encoded name fits in 255
// wire bytes (RFC 1035 §2.3.4). Wire-level only: does not apply the zone
// file's charset or wildcard-placement rules, so names decoded from
// arbitrary packets and counterexample names with interior '*' labels pass.
Status ValidateWireName(const DnsName& name);

}  // namespace dnsv

#endif  // DNSV_DNS_WIRE_H_

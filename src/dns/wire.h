// DNS wire format (RFC 1035 §4): query parsing and response encoding.
//
// The paper's verification scope deliberately excludes packet
// encoding/decoding (footnote 1: "traditional testing techniques for these
// modules are enough"); this module is that excluded component, built so the
// repo's engine can serve real packets (examples/dns_server). It is covered
// by conventional unit tests plus the adversarial wire fuzzer (src/fuzz,
// tools/dnsv-fuzz) — see docs/WIRE.md for the codec invariants the fuzzer
// enforces.
//
// Supported: standard queries (QR=0, OPCODE=0, one question), responses with
// answer/authority/additional sections for the engine's record types.
// Decompression of arbitrary backward pointers is supported when parsing;
// the encoder always emits uncompressed names.
#ifndef DNSV_DNS_WIRE_H_
#define DNSV_DNS_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dns/heap.h"
#include "src/dns/name.h"
#include "src/dns/rr.h"
#include "src/support/status.h"

namespace dnsv {

// RFC 1035 §4.2.1: the UDP payload limit responses are truncated to.
inline constexpr size_t kMaxUdpPayload = 512;

// RFC 1035 §4.2.2: TCP messages carry a two-byte big-endian length prefix,
// so one TCP message holds at most 65535 bytes. The TCP path encodes with
// this limit instead of the 512-byte UDP clamp — it is the channel that
// completes a TC=1 truncated UDP answer (docs/WIRE.md truncation laws,
// docs/SERVER.md TCP fallback).
inline constexpr size_t kMaxTcpPayload = 0xffff;

struct WireQuery {
  uint16_t id = 0;
  DnsName qname;
  RrType qtype = RrType::kA;
  uint16_t qclass = 1;  // IN
  bool recursion_desired = false;
};

// Parses a wire-format query packet. Fails on truncated packets, non-query
// opcodes, QDCOUNT != 1, or malformed names (including compression loops).
// The view form is the primary entry point: the serving hot path hands the
// worker's receive buffer straight to the parser, so no per-packet copy is
// made (the parsed WireQuery owns its labels and does not alias `packet`).
Result<WireQuery> ParseWireQuery(const uint8_t* packet, size_t size);
inline Result<WireQuery> ParseWireQuery(const std::vector<uint8_t>& packet) {
  return ParseWireQuery(packet.data(), packet.size());
}

// Encodes `response` (the engine's decoded view) as a wire-format answer to
// `query`. rdata encodings: A = 4 bytes; AAAA = 16 bytes (our int payload in
// the low 8); NS/CNAME = name; MX = preference + exchange; SOA = mname,
// rname ".", serial + fixed timers; TXT = one character-string with the
// token's decimal spelling.
//
// Fails (instead of emitting garbage) on names that do not fit the wire
// format — a label over 63 bytes, an empty label, a name over 255 wire
// bytes — and on section counts over 65535. Responses that exceed
// `max_size` are truncated per RFC 1035 §4.1.1: whole records are dropped
// back to front (additional, then authority, then answer) and the TC bit is
// set; the question is always retained.
Result<std::vector<uint8_t>> EncodeWireResponse(const WireQuery& query,
                                                const ResponseView& response,
                                                size_t max_size = kMaxUdpPayload);

// Parses a wire response back into a view (used for round-trip tests, the
// fuzzer, and client tooling). TTLs and classes are validated but not
// represented. Rejects records whose rdata does not consume exactly RDLENGTH
// bytes. When `truncated` is non-null it receives the header's TC bit.
Result<ResponseView> ParseWireResponse(const std::vector<uint8_t>& packet,
                                       WireQuery* echoed_query, bool* truncated = nullptr);

// Appends `message` to `out` behind the RFC 1035 §4.2.2 two-byte big-endian
// length prefix. Fails (leaving `out` untouched) when the message exceeds
// kMaxTcpPayload — the prefix cannot express it.
Status AppendTcpFrame(std::vector<uint8_t>* out, const std::vector<uint8_t>& message);

// Incremental decoder for the RFC 1035 §4.2.2 framing on a TCP byte stream.
// Feed() whatever read() returned; Next() pops complete messages in order
// (several queries may be pipelined on one connection, and a length prefix
// may arrive split across reads). A zero-length prefix yields an empty
// message — the caller's parser rejects it like any short packet.
class TcpFrameDecoder {
 public:
  void Feed(const uint8_t* data, size_t size);
  // Moves the next complete message into *message and returns true, or
  // returns false when the buffered bytes do not yet hold one.
  bool Next(std::vector<uint8_t>* message);
  // Bytes buffered but not yet returned (prefix bytes included).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already returned via Next()
};

// Human-readable hex dump, 16 bytes per line (debugging aid).
std::string HexDump(const std::vector<uint8_t>& packet);

// Builds a query packet (client side). Names that violate the wire limits
// produce a packet ParseWireQuery rejects; use ValidateWireName first when
// the name is untrusted.
std::vector<uint8_t> EncodeWireQuery(const WireQuery& query);

// Checks that every label is 1..63 bytes and the encoded name fits in 255
// wire bytes (RFC 1035 §2.3.4). Wire-level only: does not apply the zone
// file's charset or wildcard-placement rules, so names decoded from
// arbitrary packets and counterexample names with interior '*' labels pass.
Status ValidateWireName(const DnsName& name);

}  // namespace dnsv

#endif  // DNSV_DNS_WIRE_H_

#include "src/dns/example_zones.h"

#include "src/support/logging.h"

namespace dnsv {
namespace {

ZoneConfig MustParseZone(const char* text) {
  Result<ZoneConfig> zone = ParseZoneText(text);
  DNSV_CHECK_MSG(zone.ok(), zone.error());
  return std::move(zone).value();
}

}  // namespace

ZoneConfig Figure11Zone() {
  return MustParseZone(R"(
$ORIGIN example.com.
@        SOA   ns1 1
@        NS    ns1.example.com.
ns1      A     192.0.2.1
www      A     192.0.2.10
cs       A     192.0.2.20
web.cs   A     192.0.2.21
zoo.cs   TXT   7
)");
}

ZoneConfig KitchenSinkZone() {
  return MustParseZone(R"(
$ORIGIN example.com.
@          SOA    ns1 2024
@          NS     ns1.example.com.
@          NS     ns2.example.com.
@          MX     10 mail
ns1        A      192.0.2.1
ns1        AAAA   11
ns2        A      192.0.2.2
mail       A      192.0.2.25
www        A      192.0.2.10
www        A      192.0.2.11
www        TXT    42
alias      CNAME  www
chain      CNAME  alias
*.dyn      A      192.0.2.99
*.dyn      MX     5 mail
; delegation with in-zone glue
sub        NS     ns1.sub.example.com.
sub        NS     ns2.sub.example.com.
ns1.sub    A      192.0.2.51
ns2.sub    A      192.0.2.52
; empty non-terminal: ent.example.com exists only as an ancestor
leaf.ent   A      192.0.2.60
)");
}

ZoneConfig QuickstartZone() {
  return MustParseZone(R"(
$ORIGIN example.org.
@     SOA  ns1 1
@     NS   ns1.example.org.
ns1   A    203.0.113.1
www   A    203.0.113.80
api   A    203.0.113.81
)");
}

ZoneConfig BugHuntZone() {
  return MustParseZone(R"(
$ORIGIN corp.test.
@          SOA    ns1 7
@          NS     ns1.corp.test.
@          NS     ns2.corp.test.
ns1        A      198.51.100.1
ns2        A      198.51.100.2
www        A      198.51.100.10
shop       MX     10 www
shop       A      198.51.100.30
*          TXT    99
*          MX     20 www
; wildcard + empty non-terminal interplay (bug #8): box.corp.test exists
; only as the parent of deep.box.corp.test
deep.box   A      198.51.100.40
; delegation with two NS records and glue for both (bug #4)
child      NS     ns1.child.corp.test.
child      NS     ns2.child.corp.test.
ns1.child  A      198.51.100.51
ns2.child  A      198.51.100.52
)");
}

ZoneConfig WideRrsetZone(int num_a) {
  ZoneConfig zone;
  zone.origin = DnsName::Parse("example.com").value();
  DnsName ns = DnsName::Parse("ns1.example.com").value();
  zone.records.push_back({zone.origin, RrType::kSoa, {1, ns}});
  zone.records.push_back({zone.origin, RrType::kNs, {0, ns}});
  zone.records.push_back({ns, RrType::kA, {0x0A000001, DnsName{}}});
  DnsName www = DnsName::Parse("www.example.com").value();
  for (int i = 0; i < num_a; ++i) {
    zone.records.push_back({www, RrType::kA, {0x0A010000 + i, DnsName{}}});
  }
  return zone;
}

}  // namespace dnsv

// Zone configurations: the control-plane input (paper §6.5). A ZoneConfig is
// parsed from a simple textual zone format or produced by the generator in
// src/zonegen, then canonicalized and materialized into a concrete heap.
#ifndef DNSV_DNS_ZONE_H_
#define DNSV_DNS_ZONE_H_

#include <string>
#include <vector>

#include "src/dns/name.h"
#include "src/dns/rr.h"
#include "src/support/status.h"

namespace dnsv {

// rdata payload; which fields matter depends on the type:
//   A/AAAA: value = packed address;  NS/CNAME: name = target;
//   MX: value = preference, name = exchange;  SOA: value = serial, name = mname;
//   TXT: value = opaque token id.
struct Rdata {
  int64_t value = 0;
  DnsName name;

  bool operator==(const Rdata& other) const {
    return value == other.value && name == other.name;
  }
};

struct ZoneRecord {
  DnsName name;  // absolute owner name
  RrType type = RrType::kA;
  Rdata rdata;

  bool operator==(const ZoneRecord& other) const {
    return name == other.name && type == other.type && rdata == other.rdata;
  }
};

struct ZoneConfig {
  DnsName origin;
  std::vector<ZoneRecord> records;

  std::string ToText() const;
};

// Parses the repo's zone text format:
//   $ORIGIN example.com.
//   @        SOA   ns1 1
//   @        NS    ns1.example.com.
//   www      A     192.0.2.10
//   mail     MX    10 www
//   *.dyn    TXT   7
// Owner names and rdata names without a trailing dot are relative to $ORIGIN;
// '@' denotes the apex. Lines starting with ';' or '#' are comments.
Result<ZoneConfig> ParseZoneText(const std::string& text);

// Groups records by owner name (order of first appearance) and, within a
// name, by type (order of first appearance). Both the flat spec list and the
// domain tree derive from this order, which is what makes the engine's
// rrset-at-a-time answers and the spec's filter-based answers comparable
// element-wise. Also validates: exactly one SOA at the apex, every record
// inside the origin, CNAME exclusivity, and no duplicate records.
Result<ZoneConfig> CanonicalizeZone(const ZoneConfig& zone);

}  // namespace dnsv

#endif  // DNSV_DNS_ZONE_H_

#include "src/dns/heap.h"

#include <algorithm>
#include <map>
#include <memory>

#include "src/support/strings.h"

namespace dnsv {
namespace {

// In-memory tree node used while assembling the domain tree, before
// allocation into ConcreteMemory.
struct BuildNode {
  int64_t label_code = 0;
  std::string label;
  std::map<int64_t, std::unique_ptr<BuildNode>> children;  // by label code
  std::vector<const ZoneRecord*> records;                  // canonical order
};

Value MakeLabelList(const std::vector<int64_t>& codes) {
  std::vector<Value> elems;
  elems.reserve(codes.size());
  for (int64_t code : codes) {
    elems.push_back(Value::Int(code));
  }
  return Value::List(std::move(elems));
}

}  // namespace

StructLayout::StructLayout(const TypeTable& types, const std::string& struct_name)
    : type_(types.StructType(struct_name)) {
  const StructDef& def = types.GetStruct(struct_name);
  num_fields_ = def.fields.size();
  for (size_t i = 0; i < def.fields.size(); ++i) {
    fields_.emplace_back(def.fields[i].name, static_cast<int>(i));
  }
}

int StructLayout::index(const std::string& field) const {
  for (const auto& [name, index] : fields_) {
    if (name == field) {
      return index;
    }
  }
  DNSV_CHECK_MSG(false, "engine layout: missing field " + field);
  return -1;
}

Status ValidateEngineLayout(const TypeTable& types) {
  struct FieldSpec {
    const char* struct_name;
    std::vector<const char*> fields;
  };
  const FieldSpec specs[] = {
      {kStructRr, {"rname", "rtype", "rdataInt", "rdataName"}},
      {kStructRrSet, {"rtype", "rrs"}},
      {kStructTreeNode, {"label", "left", "right", "down", "rrsets"}},
      {kStructResponse, {"rcode", "flags", "answer", "authority", "additional"}},
  };
  for (const FieldSpec& spec : specs) {
    if (!types.IsStructDefined(spec.struct_name)) {
      return Status::Error(StrCat("engine does not define struct ", spec.struct_name));
    }
    const StructDef& def = types.GetStruct(spec.struct_name);
    for (const char* field : spec.fields) {
      if (def.FieldIndex(field) < 0) {
        return Status::Error(StrCat("engine struct ", spec.struct_name, " lacks field ", field));
      }
    }
  }
  return Status::Ok();
}

namespace {

class HeapBuilder {
 public:
  HeapBuilder(const ZoneConfig& zone, LabelInterner* interner, const TypeTable& types,
              ConcreteMemory* memory)
      : zone_(zone),
        interner_(interner),
        types_(types),
        memory_(memory),
        rr_layout_(types, kStructRr),
        rrset_layout_(types, kStructRrSet),
        node_layout_(types, kStructTreeNode) {}

  HeapImage Build() {
    HeapImage image;
    image.origin_labels = MakeLabelList(interner_->InternName(zone_.origin));

    // Flat spec list, canonical order.
    std::vector<Value> flat;
    flat.reserve(zone_.records.size());
    for (const ZoneRecord& record : zone_.records) {
      flat.push_back(MakeRr(record));
    }
    image.zone_rrs = Value::List(std::move(flat));

    // Domain tree. The apex BuildNode represents the origin itself; records
    // are attached at their relative label paths (root-first).
    BuildNode apex;
    apex.label = zone_.origin.labels.empty() ? "" : zone_.origin.labels[0];
    apex.label_code = interner_->Intern(apex.label);
    for (const ZoneRecord& record : zone_.records) {
      BuildNode* node = &apex;
      const auto& labels = record.name.labels;
      size_t relative = labels.size() - zone_.origin.labels.size();
      // Walk root-first through the relative labels.
      for (size_t i = relative; i > 0; --i) {
        const std::string& label = labels[i - 1];
        int64_t code = interner_->Intern(label);
        auto [it, inserted] = node->children.try_emplace(code);
        if (inserted) {
          it->second = std::make_unique<BuildNode>();
          it->second->label_code = code;
          it->second->label = label;
        }
        node = it->second.get();
      }
      node->records.push_back(&record);
    }
    image.apex_ptr = AllocNode(apex);
    image.num_tree_nodes = num_nodes_;
    return image;
  }

 private:
  Value MakeRr(const ZoneRecord& record) {
    std::vector<Value> fields(rr_layout_.num_fields());
    fields[rr_layout_.index("rname")] = MakeLabelList(interner_->InternName(record.name));
    fields[rr_layout_.index("rtype")] = Value::Int(static_cast<int64_t>(record.type));
    fields[rr_layout_.index("rdataInt")] = Value::Int(record.rdata.value);
    fields[rr_layout_.index("rdataName")] =
        MakeLabelList(interner_->InternName(record.rdata.name));
    return Value::Struct(std::move(fields));
  }

  // Allocates `node` (and its subtree) into memory; returns a *TreeNode value.
  Value AllocNode(const BuildNode& node) {
    ++num_nodes_;
    // Children become a balanced BST ordered by label code.
    std::vector<const BuildNode*> ordered;
    ordered.reserve(node.children.size());
    for (const auto& [code, child] : node.children) {
      ordered.push_back(child.get());
    }
    Value down = BuildBst(ordered, 0, ordered.size());

    // RRsets: group this node's records by type, first-appearance order.
    std::vector<Value> rrsets;
    std::vector<RrType> type_order;
    for (const ZoneRecord* record : node.records) {
      if (std::find(type_order.begin(), type_order.end(), record->type) == type_order.end()) {
        type_order.push_back(record->type);
      }
    }
    for (RrType type : type_order) {
      std::vector<Value> rrs;
      for (const ZoneRecord* record : node.records) {
        if (record->type == type) {
          rrs.push_back(MakeRr(*record));
        }
      }
      std::vector<Value> set_fields(rrset_layout_.num_fields());
      set_fields[rrset_layout_.index("rtype")] = Value::Int(static_cast<int64_t>(type));
      set_fields[rrset_layout_.index("rrs")] = Value::List(std::move(rrs));
      rrsets.push_back(Value::Struct(std::move(set_fields)));
    }

    std::vector<Value> fields(node_layout_.num_fields());
    fields[node_layout_.index("label")] = Value::Int(node.label_code);
    fields[node_layout_.index("left")] = Value::NullPtr();
    fields[node_layout_.index("right")] = Value::NullPtr();
    fields[node_layout_.index("down")] = down;
    fields[node_layout_.index("rrsets")] = Value::List(std::move(rrsets));
    BlockIndex block = memory_->Alloc(Value::Struct(std::move(fields)));
    return Value::Ptr(block);
  }

  // Builds a balanced BST from children sorted by label code; left/right
  // pointers are patched after allocation.
  Value BuildBst(const std::vector<const BuildNode*>& ordered, size_t begin, size_t end) {
    if (begin >= end) {
      return Value::NullPtr();
    }
    size_t mid = begin + (end - begin) / 2;
    Value root = AllocNode(*ordered[mid]);
    Value left = BuildBst(ordered, begin, mid);
    Value right = BuildBst(ordered, mid + 1, end);
    Value* root_value = memory_->Resolve(root.block, {});
    DNSV_CHECK(root_value != nullptr);
    root_value->elems[static_cast<size_t>(node_layout_.index("left"))] = left;
    root_value->elems[static_cast<size_t>(node_layout_.index("right"))] = right;
    return root;
  }

  const ZoneConfig& zone_;
  LabelInterner* interner_;
  const TypeTable& types_;
  ConcreteMemory* memory_;
  StructLayout rr_layout_;
  StructLayout rrset_layout_;
  StructLayout node_layout_;
  int num_nodes_ = 0;
};

std::string DecodeName(const Value& labels, const LabelInterner& interner) {
  // Engine order is root-first; display order is host order. Built in one
  // string — this runs per RR on the serving path.
  if (labels.elems.empty()) {
    return ".";
  }
  std::string out;
  for (auto it = labels.elems.rbegin(); it != labels.elems.rend(); ++it) {
    if (!out.empty()) {
      out += '.';
    }
    out += interner.Decode(it->i);
  }
  return out;
}

}  // namespace

HeapImage BuildHeapImage(const ZoneConfig& zone, LabelInterner* interner,
                         const TypeTable& types, ConcreteMemory* memory) {
  DNSV_CHECK_MSG(ValidateEngineLayout(types).ok(), "engine layout mismatch");
  HeapBuilder builder(zone, interner, types, memory);
  return builder.Build();
}

std::string RrView::ToString() const {
  std::string rdata;
  switch (type) {
    case RrType::kA:
      rdata = FormatIpv4(rdata_value);
      break;
    case RrType::kNs:
    case RrType::kCname:
      rdata = rdata_name;
      break;
    case RrType::kMx:
    case RrType::kSoa:
      rdata = StrCat(rdata_value, " ", rdata_name);
      break;
    default:
      rdata = StrCat(rdata_value);
      break;
  }
  return StrCat(name, " ", RrTypeName(type), " ", rdata);
}

std::string ResponseView::ToString() const {
  std::string out = StrCat("rcode=", RcodeName(rcode), " aa=", aa ? 1 : 0, "\n");
  auto section = [&](const char* title, const std::vector<RrView>& rrs) {
    out += StrCat(";; ", title, " (", rrs.size(), ")\n");
    for (const RrView& rr : rrs) {
      out += "  " + rr.ToString() + "\n";
    }
  };
  section("ANSWER", answer);
  section("AUTHORITY", authority);
  section("ADDITIONAL", additional);
  return out;
}

ResponseDecoder::ResponseDecoder(const TypeTable& types, const LabelInterner& interner)
    : interner_(interner),
      response_layout_(types, kStructResponse),
      rr_layout_(types, kStructRr),
      f_rcode_(response_layout_.index("rcode")),
      f_flags_(response_layout_.index("flags")),
      f_answer_(response_layout_.index("answer")),
      f_authority_(response_layout_.index("authority")),
      f_additional_(response_layout_.index("additional")),
      f_rname_(rr_layout_.index("rname")),
      f_rtype_(rr_layout_.index("rtype")),
      f_rdata_int_(rr_layout_.index("rdataInt")),
      f_rdata_name_(rr_layout_.index("rdataName")) {}

ResponseView ResponseDecoder::Decode(const Value& response,
                                     const ConcreteMemory& memory) const {
  const Value* resp = &response;
  if (response.kind == Value::Kind::kPtr) {
    resp = memory.Resolve(response.block, response.path);
    DNSV_CHECK_MSG(resp != nullptr, "response pointer does not resolve");
  }
  DNSV_CHECK(resp->kind == Value::Kind::kStruct);
  ResponseView view;
  view.rcode = static_cast<Rcode>(resp->elems[f_rcode_].i);
  view.aa = (resp->elems[f_flags_].i & kFlagAa) != 0;
  auto decode_section = [&](int field) {
    std::vector<RrView> rrs;
    const std::vector<Value>& section = resp->elems[field].elems;
    rrs.reserve(section.size());
    for (const Value& rr : section) {
      RrView item;
      item.name = DecodeName(rr.elems[f_rname_], interner_);
      item.type = static_cast<RrType>(rr.elems[f_rtype_].i);
      item.rdata_value = rr.elems[f_rdata_int_].i;
      const Value& rdata_name = rr.elems[f_rdata_name_];
      item.rdata_name = rdata_name.elems.empty() ? "" : DecodeName(rdata_name, interner_);
      rrs.push_back(std::move(item));
    }
    return rrs;
  };
  view.answer = decode_section(f_answer_);
  view.authority = decode_section(f_authority_);
  view.additional = decode_section(f_additional_);
  return view;
}

ResponseView DecodeResponse(const Value& response, const ConcreteMemory& memory,
                            const LabelInterner& interner, const TypeTable& types) {
  return ResponseDecoder(types, interner).Decode(response, memory);
}

Value QnameValue(const DnsName& name, LabelInterner* interner) {
  return MakeLabelList(interner->InternName(name));
}

}  // namespace dnsv

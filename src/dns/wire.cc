#include "src/dns/wire.h"

#include "src/support/strings.h"

namespace dnsv {
namespace {

constexpr size_t kHeaderSize = 12;
constexpr uint16_t kFlagQr = 0x8000;
constexpr uint16_t kFlagAaBit = 0x0400;
constexpr uint16_t kFlagTcBit = 0x0200;
constexpr uint16_t kFlagRd = 0x0100;
constexpr int64_t kDefaultTtl = 300;
constexpr size_t kMaxNameWireBytes = 255;  // RFC 1035 §2.3.4
constexpr size_t kMaxSectionCount = 0xffff;
constexpr uint16_t kTypeOpt = 41;  // RFC 6891 OPT pseudo-RR
// OPT TTL layout (RFC 6891 §6.1.3): EXT-RCODE (8) | VERSION (8) | DO + Z (16).
constexpr uint32_t kEdnsDoBit = 0x8000;

uint16_t ClampEdnsPayload(uint16_t advertised) {
  return advertised < kEdnsMinPayload ? kEdnsMinPayload : advertised;
}

void PutU16(std::vector<uint8_t>* out, uint16_t value) {
  out->push_back(static_cast<uint8_t>(value >> 8));
  out->push_back(static_cast<uint8_t>(value & 0xff));
}

void PutU32(std::vector<uint8_t>* out, uint32_t value) {
  PutU16(out, static_cast<uint16_t>(value >> 16));
  PutU16(out, static_cast<uint16_t>(value & 0xffff));
}

// Appends `name` uncompressed. The caller must have validated the name
// (ValidateWireName); an invalid label here would corrupt the packet framing.
void PutName(std::vector<uint8_t>* out, const DnsName& name) {
  for (const std::string& label : name.labels) {
    out->push_back(static_cast<uint8_t>(label.size()));
    out->insert(out->end(), label.begin(), label.end());
  }
  out->push_back(0);
}

// Appends an empty-RDATA OPT record (RFC 6891 §6.1.2): root name, TYPE 41,
// the advertised payload in CLASS, extended RCODE / version / DO in TTL.
void PutOptRecord(std::vector<uint8_t>* out, uint16_t payload, uint8_t ext_rcode,
                  uint8_t version, bool dnssec_ok) {
  out->push_back(0);  // root owner name
  PutU16(out, kTypeOpt);
  PutU16(out, payload);
  uint32_t ttl = (static_cast<uint32_t>(ext_rcode) << 24) |
                 (static_cast<uint32_t>(version) << 16) | (dnssec_ok ? kEdnsDoBit : 0);
  PutU32(out, ttl);
  PutU16(out, 0);  // RDLENGTH: no options
}

// Splits a dotted owner string (as produced by DnsName::ToString /
// DecodeResponse) into wire labels. Unlike DnsName::Parse this applies only
// the wire rules — label length and name length — because response views may
// legitimately carry names the zone-file syntax rejects (interior '*' labels
// from wildcard counterexamples, synthesized interner labels).
Result<DnsName> WireNameFromString(const std::string& text) {
  DnsName name;
  if (text.empty() || text == ".") {
    return name;  // the root name
  }
  for (std::string& label : SplitString(text, '.')) {
    if (label.empty()) {
      return Result<DnsName>::Error("empty label in name: " + text);
    }
    name.labels.push_back(std::move(label));
  }
  Status valid = ValidateWireName(name);
  if (!valid.ok()) {
    return Result<DnsName>::Error(valid.message());
  }
  return name;
}

class Reader {
 public:
  // A non-owning view: the serving path parses straight out of the worker's
  // receive buffer, so the reader must not force a copy.
  Reader(const uint8_t* packet, size_t size) : packet_(packet), size_(size) {}
  explicit Reader(const std::vector<uint8_t>& packet)
      : Reader(packet.data(), packet.size()) {}

  bool U8(uint8_t* value) {
    if (pos_ >= size_) {
      return false;
    }
    *value = packet_[pos_++];
    return true;
  }
  bool U16(uint16_t* value) {
    uint8_t hi = 0, lo = 0;
    if (!U8(&hi) || !U8(&lo)) {
      return false;
    }
    *value = static_cast<uint16_t>((hi << 8) | lo);
    return true;
  }
  bool U32(uint32_t* value) {
    uint16_t hi = 0, lo = 0;
    if (!U16(&hi) || !U16(&lo)) {
      return false;
    }
    *value = (static_cast<uint32_t>(hi) << 16) | lo;
    return true;
  }
  bool Skip(size_t n) {
    if (pos_ + n > size_) {
      return false;
    }
    pos_ += n;
    return true;
  }

  // Reads a possibly-compressed name starting at the current position.
  bool Name(DnsName* name) {
    name->labels.clear();
    size_t pos = pos_;
    bool jumped = false;
    int hops = 0;
    while (true) {
      if (pos >= size_ || ++hops > 128) {
        return false;  // truncated or compression loop
      }
      uint8_t len = packet_[pos];
      if (len == 0) {
        if (!jumped) {
          pos_ = pos + 1;
        }
        return true;
      }
      if ((len & 0xC0) == 0xC0) {
        if (pos + 1 >= size_) {
          return false;
        }
        size_t target = static_cast<size_t>((len & 0x3F) << 8 | packet_[pos + 1]);
        if (!jumped) {
          pos_ = pos + 2;
          jumped = true;
        }
        if (target >= pos) {
          return false;  // forward pointers are malformed
        }
        pos = target;
        continue;
      }
      if ((len & 0xC0) != 0 || pos + 1 + len > size_) {
        return false;
      }
      name->labels.emplace_back(packet_ + pos + 1, packet_ + pos + 1 + len);
      pos += 1 + static_cast<size_t>(len);
    }
  }

  size_t pos() const { return pos_; }

 private:
  const uint8_t* packet_;
  size_t size_;
  size_t pos_ = 0;
};

// Encodes one resource record into a fresh byte vector, so a mid-record
// failure never leaves a partially written packet behind.
Result<std::vector<uint8_t>> EncodeRecord(const RrView& rr) {
  std::vector<uint8_t> out;
  Result<DnsName> owner = WireNameFromString(rr.name);
  if (!owner.ok()) {
    return Result<std::vector<uint8_t>>::Error("bad owner name: " + owner.error());
  }
  PutName(&out, owner.value());
  PutU16(&out, static_cast<uint16_t>(rr.type));
  PutU16(&out, 1);  // IN
  PutU32(&out, kDefaultTtl);
  std::vector<uint8_t> rdata;
  auto put_rdata_name = [&rdata, &rr]() -> Status {
    Result<DnsName> target = WireNameFromString(rr.rdata_name);
    if (!target.ok()) {
      return Status::Error("bad rdata name: " + target.error());
    }
    PutName(&rdata, target.value());
    return Status::Ok();
  };
  switch (rr.type) {
    case RrType::kA:
      PutU32(&rdata, static_cast<uint32_t>(rr.rdata_value));
      break;
    case RrType::kAaaa:
      // 16 bytes; this repo's AAAA payload is an opaque int in the low 8.
      PutU32(&rdata, 0);
      PutU32(&rdata, 0);
      PutU32(&rdata, static_cast<uint32_t>(rr.rdata_value >> 32));
      PutU32(&rdata, static_cast<uint32_t>(rr.rdata_value & 0xffffffff));
      break;
    case RrType::kNs:
    case RrType::kCname: {
      Status status = put_rdata_name();
      if (!status.ok()) {
        return Result<std::vector<uint8_t>>::Error(status.message());
      }
      break;
    }
    case RrType::kMx: {
      PutU16(&rdata, static_cast<uint16_t>(rr.rdata_value));
      Status status = put_rdata_name();
      if (!status.ok()) {
        return Result<std::vector<uint8_t>>::Error(status.message());
      }
      break;
    }
    case RrType::kSoa: {
      Status status = put_rdata_name();
      if (!status.ok()) {
        return Result<std::vector<uint8_t>>::Error(status.message());
      }
      rdata.push_back(0);  // rname "." (not modeled)
      PutU32(&rdata, static_cast<uint32_t>(rr.rdata_value));  // serial
      PutU32(&rdata, 3600);
      PutU32(&rdata, 900);
      PutU32(&rdata, 604800);
      PutU32(&rdata, 300);
      break;
    }
    case RrType::kTxt: {
      std::string text = StrCat(rr.rdata_value);
      rdata.push_back(static_cast<uint8_t>(text.size()));
      rdata.insert(rdata.end(), text.begin(), text.end());
      break;
    }
    case RrType::kAny:
      break;
  }
  PutU16(&out, static_cast<uint16_t>(rdata.size()));
  out.insert(out.end(), rdata.begin(), rdata.end());
  return out;
}

// Reads the type-specific rdata (RDLENGTH itself was already consumed).
bool ReadRdata(Reader* reader, uint16_t rdlength, RrView* rr) {
  switch (rr->type) {
    case RrType::kA: {
      uint32_t address = 0;
      if (rdlength != 4 || !reader->U32(&address)) {
        return false;
      }
      rr->rdata_value = address;
      return true;
    }
    case RrType::kAaaa: {
      uint32_t w0, w1, w2, w3;
      if (rdlength != 16 || !reader->U32(&w0) || !reader->U32(&w1) || !reader->U32(&w2) ||
          !reader->U32(&w3)) {
        return false;
      }
      rr->rdata_value = (static_cast<int64_t>(w2) << 32) | w3;
      return true;
    }
    case RrType::kNs:
    case RrType::kCname: {
      DnsName target;
      if (!reader->Name(&target)) {
        return false;
      }
      rr->rdata_name = target.ToString();
      return true;
    }
    case RrType::kMx: {
      uint16_t preference = 0;
      DnsName exchange;
      if (!reader->U16(&preference) || !reader->Name(&exchange)) {
        return false;
      }
      rr->rdata_value = preference;
      rr->rdata_name = exchange.ToString();
      return true;
    }
    case RrType::kSoa: {
      DnsName mname, rname;
      uint32_t serial, refresh, retry, expire, minimum;
      if (!reader->Name(&mname) || !reader->Name(&rname) || !reader->U32(&serial) ||
          !reader->U32(&refresh) || !reader->U32(&retry) || !reader->U32(&expire) ||
          !reader->U32(&minimum)) {
        return false;
      }
      rr->rdata_name = mname.ToString();
      rr->rdata_value = serial;
      return true;
    }
    case RrType::kTxt: {
      uint8_t len = 0;
      if (!reader->U8(&len) || len + 1 != rdlength) {
        return false;
      }
      std::string text;
      for (int i = 0; i < len; ++i) {
        uint8_t c = 0;
        if (!reader->U8(&c)) {
          return false;
        }
        text.push_back(static_cast<char>(c));
      }
      return ParseInt64(text, &rr->rdata_value);
    }
    default:
      return reader->Skip(rdlength);
  }
}

// Reads the record fields after the owner name and TYPE, which the caller
// consumed (the response parser peeks TYPE to divert OPT records).
bool ReadRecordAfterType(Reader* reader, const DnsName& owner, uint16_t type, RrView* rr) {
  uint16_t klass = 0, rdlength = 0;
  uint32_t ttl = 0;
  if (!reader->U16(&klass) || !reader->U32(&ttl) || !reader->U16(&rdlength)) {
    return false;
  }
  rr->name = owner.ToString();
  rr->type = static_cast<RrType>(type);
  rr->rdata_value = 0;
  rr->rdata_name.clear();
  // The rdata must consume exactly RDLENGTH bytes. Without this check a
  // malformed RDLENGTH on a name-valued record (NS/CNAME/MX/SOA) silently
  // desynchronizes the reader and mis-parses every subsequent record.
  size_t rdata_start = reader->pos();
  if (!ReadRdata(reader, rdlength, rr)) {
    return false;
  }
  return reader->pos() - rdata_start == rdlength;
}

// Reads the OPT fields after the owner name and TYPE into `edns`; the raw
// TTL's extended-RCODE byte lands in `ext_rcode`. OPT options (RDATA) are
// skipped — none are modeled — but must be present in full.
bool ReadOptAfterType(Reader* reader, EdnsInfo* edns, uint8_t* ext_rcode) {
  uint16_t klass = 0, rdlength = 0;
  uint32_t ttl = 0;
  if (!reader->U16(&klass) || !reader->U32(&ttl) || !reader->U16(&rdlength) ||
      !reader->Skip(rdlength)) {
    return false;
  }
  edns->present = true;
  edns->udp_payload = ClampEdnsPayload(klass);
  edns->version = static_cast<uint8_t>((ttl >> 16) & 0xff);
  edns->dnssec_ok = (ttl & kEdnsDoBit) != 0;
  *ext_rcode = static_cast<uint8_t>(ttl >> 24);
  return true;
}

}  // namespace

Status ValidateWireName(const DnsName& name) {
  size_t wire_bytes = 1;  // terminating root label
  for (const std::string& label : name.labels) {
    if (label.empty()) {
      return Status::Error("empty label in name: " + name.ToString());
    }
    if (label.size() > 63) {
      return Status::Error(StrCat("label of ", label.size(),
                                  " bytes (wire labels are 1..63) in name: ", name.ToString()));
    }
    wire_bytes += 1 + label.size();
  }
  if (wire_bytes > kMaxNameWireBytes) {
    return Status::Error(StrCat("name of ", wire_bytes, " wire bytes (limit ",
                                kMaxNameWireBytes, "): ", name.ToString()));
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeWireQuery(const WireQuery& query) {
  std::vector<uint8_t> out;
  PutU16(&out, query.id);
  PutU16(&out, query.recursion_desired ? kFlagRd : 0);
  PutU16(&out, 1);  // QDCOUNT
  PutU16(&out, 0);
  PutU16(&out, 0);
  PutU16(&out, query.edns.present ? 1 : 0);  // ARCOUNT: the OPT, if any
  PutName(&out, query.qname);
  PutU16(&out, static_cast<uint16_t>(query.qtype));
  PutU16(&out, query.qclass);
  if (query.edns.present) {
    // Clamp at encode time too, so encode∘parse is the identity even for a
    // hand-built sub-512 payload.
    PutOptRecord(&out, ClampEdnsPayload(query.edns.udp_payload), /*ext_rcode=*/0,
                 query.edns.version, query.edns.dnssec_ok);
  }
  return out;
}

Result<WireQuery> ParseWireQuery(const uint8_t* packet, size_t size) {
  if (size < kHeaderSize) {
    return Result<WireQuery>::Error("packet shorter than the DNS header");
  }
  Reader reader(packet, size);
  WireQuery query;
  uint16_t flags = 0, qdcount = 0, ancount = 0, nscount = 0, arcount = 0;
  reader.U16(&query.id);
  reader.U16(&flags);
  reader.U16(&qdcount);
  reader.U16(&ancount);
  reader.U16(&nscount);
  reader.U16(&arcount);
  if ((flags & kFlagQr) != 0) {
    return Result<WireQuery>::Error("not a query (QR set)");
  }
  if (((flags >> 11) & 0xF) != 0) {
    return Result<WireQuery>::Error("unsupported OPCODE");
  }
  if (qdcount != 1) {
    return Result<WireQuery>::Error(StrCat("QDCOUNT must be 1, got ", qdcount));
  }
  // A query carries no answers and no authority; a nonzero count either lies
  // about bytes that are not there or smuggles records no query may hold.
  if (ancount != 0 || nscount != 0) {
    return Result<WireQuery>::Error(
        StrCat("query with nonzero ANCOUNT/NSCOUNT (", ancount, "/", nscount, ")"));
  }
  query.recursion_desired = (flags & kFlagRd) != 0;
  DnsName qname;
  if (!reader.Name(&qname)) {
    return Result<WireQuery>::Error("malformed question name");
  }
  uint16_t qtype = 0;
  if (!reader.U16(&qtype) || !reader.U16(&query.qclass)) {
    return Result<WireQuery>::Error("truncated question");
  }
  query.qname = qname;
  query.qtype = static_cast<RrType>(qtype);
  // Additional section: at most one OPT (root name required, RFC 6891
  // §6.1.1); anything else (TSIG-shaped trailers) is skipped structurally,
  // with the same exact-RDLENGTH accounting records get elsewhere.
  for (int i = 0; i < arcount; ++i) {
    DnsName owner;
    uint16_t type = 0;
    if (!reader.Name(&owner) || !reader.U16(&type)) {
      return Result<WireQuery>::Error("malformed additional section");
    }
    if (type == kTypeOpt) {
      if (!owner.labels.empty()) {
        return Result<WireQuery>::Error("OPT record with a non-root name");
      }
      if (query.edns.present) {
        return Result<WireQuery>::Error("multiple OPT records");
      }
      uint8_t ext_rcode = 0;  // meaningless in a query; ignored
      if (!ReadOptAfterType(&reader, &query.edns, &ext_rcode)) {
        return Result<WireQuery>::Error("truncated OPT record");
      }
      continue;
    }
    uint16_t klass = 0, rdlength = 0;
    uint32_t ttl = 0;
    if (!reader.U16(&klass) || !reader.U32(&ttl) || !reader.U16(&rdlength) ||
        !reader.Skip(rdlength)) {
      return Result<WireQuery>::Error("truncated additional record");
    }
  }
  // Every declared section has been consumed; whatever remains is garbage
  // the counts never accounted for.
  if (reader.pos() != size) {
    return Result<WireQuery>::Error(
        StrCat(size - reader.pos(), " trailing bytes after the declared sections"));
  }
  return query;
}

Result<std::vector<uint8_t>> EncodeWireResponse(const WireQuery& query,
                                                const ResponseView& response, size_t max_size) {
  // Counts must fit the 16-bit header fields; a silent static_cast here used
  // to alias 65536 records to an ANCOUNT of 0.
  const std::vector<RrView>* sections[3] = {&response.answer, &response.authority,
                                            &response.additional};
  const char* section_names[3] = {"answer", "authority", "additional"};
  for (int s = 0; s < 3; ++s) {
    // The response OPT rides in the additional section's count, so with EDNS
    // the section itself gets one slot fewer.
    size_t limit = (s == 2 && query.edns.present) ? kMaxSectionCount - 1 : kMaxSectionCount;
    if (sections[s]->size() > limit) {
      return Result<std::vector<uint8_t>>::Error(
          StrCat(section_names[s], " section count ", sections[s]->size(),
                 " overflows the 16-bit header field"));
    }
  }
  const auto rcode_bits = static_cast<uint16_t>(response.rcode);
  if (rcode_bits > 0xFFF) {
    return Result<std::vector<uint8_t>>::Error(
        StrCat("rcode ", rcode_bits, " does not fit 4 header + 8 extended bits"));
  }
  if (rcode_bits > 0xF && !query.edns.present) {
    return Result<std::vector<uint8_t>>::Error(
        StrCat("extended rcode ", rcode_bits, " needs EDNS, and the query carried no OPT"));
  }
  Status qname_ok = ValidateWireName(query.qname);
  if (!qname_ok.ok()) {
    return Result<std::vector<uint8_t>>::Error("bad question name: " + qname_ok.message());
  }

  // Encode every record up front; truncation then drops whole encodings.
  std::vector<std::vector<uint8_t>> encoded[3];
  size_t total = 0;
  for (int s = 0; s < 3; ++s) {
    encoded[s].reserve(sections[s]->size());
    for (const RrView& rr : *sections[s]) {
      Result<std::vector<uint8_t>> record = EncodeRecord(rr);
      if (!record.ok()) {
        return Result<std::vector<uint8_t>>::Error(
            StrCat("cannot encode ", section_names[s], " record: ", record.error()));
      }
      total += record.value().size();
      encoded[s].push_back(std::move(record).value());
    }
  }

  // Fixed part: header + the echoed question (always retained, RFC 1035
  // §4.1.1 — truncation drops records, never the question) + the response
  // OPT when the query carried one (RFC 6891 §7 — an EDNS response keeps its
  // OPT through any truncation, so its bytes are reserved up front).
  std::vector<uint8_t> question;
  PutName(&question, query.qname);
  PutU16(&question, static_cast<uint16_t>(query.qtype));
  PutU16(&question, query.qclass);
  size_t fixed = kHeaderSize + question.size() + (query.edns.present ? kEdnsOptWireSize : 0);
  if (fixed > max_size) {
    return Result<std::vector<uint8_t>>::Error(
        StrCat("header and question alone need ", fixed, " bytes, over the limit of ",
               max_size));
  }

  // RFC-1035 truncation: drop whole records back to front (additional first,
  // then authority, then answer) until the message fits, and say so with TC.
  bool truncated = false;
  while (fixed + total > max_size) {
    int victim = -1;
    for (int s = 2; s >= 0; --s) {
      if (!encoded[s].empty()) {
        victim = s;
        break;
      }
    }
    if (victim < 0) {
      break;  // unreachable: fixed <= max_size was checked above
    }
    total -= encoded[victim].back().size();
    encoded[victim].pop_back();
    truncated = true;
  }

  std::vector<uint8_t> out;
  out.reserve(fixed + total);
  PutU16(&out, query.id);
  uint16_t flags = kFlagQr;
  if (response.aa) {
    flags |= kFlagAaBit;
  }
  if (truncated) {
    flags |= kFlagTcBit;
  }
  if (query.recursion_desired) {
    flags |= kFlagRd;
  }
  flags |= rcode_bits & 0xF;
  PutU16(&out, flags);
  PutU16(&out, 1);  // question echo
  for (int s = 0; s < 3; ++s) {
    size_t count = encoded[s].size() + (s == 2 && query.edns.present ? 1 : 0);
    PutU16(&out, static_cast<uint16_t>(count));
  }
  out.insert(out.end(), question.begin(), question.end());
  for (int s = 0; s < 3; ++s) {
    for (const std::vector<uint8_t>& record : encoded[s]) {
      out.insert(out.end(), record.begin(), record.end());
    }
  }
  if (query.edns.present) {
    // The responder advertises its own receive capacity and echoes the
    // client's DO bit; the rcode's high bits travel here (RFC 6891 §6.1.3).
    PutOptRecord(&out, kEdnsResponderPayload, static_cast<uint8_t>(rcode_bits >> 4),
                 /*version=*/0, query.edns.dnssec_ok);
  }
  return out;
}

Result<ResponseView> ParseWireResponse(const std::vector<uint8_t>& packet,
                                       WireQuery* echoed_query, bool* truncated) {
  if (packet.size() < kHeaderSize) {
    return Result<ResponseView>::Error("packet shorter than the DNS header");
  }
  Reader reader(packet);
  uint16_t id = 0, flags = 0, qdcount = 0, ancount = 0, nscount = 0, arcount = 0;
  reader.U16(&id);
  reader.U16(&flags);
  reader.U16(&qdcount);
  reader.U16(&ancount);
  reader.U16(&nscount);
  reader.U16(&arcount);
  if ((flags & kFlagQr) == 0) {
    return Result<ResponseView>::Error("not a response (QR clear)");
  }
  ResponseView view;
  view.aa = (flags & kFlagAaBit) != 0;
  if (truncated != nullptr) {
    *truncated = (flags & kFlagTcBit) != 0;
  }
  if (echoed_query != nullptr) {
    echoed_query->id = id;
    echoed_query->recursion_desired = (flags & kFlagRd) != 0;
  }
  for (int q = 0; q < qdcount; ++q) {
    DnsName qname;
    uint16_t qtype = 0, qclass = 0;
    if (!reader.Name(&qname) || !reader.U16(&qtype) || !reader.U16(&qclass)) {
      return Result<ResponseView>::Error("malformed question echo");
    }
    if (echoed_query != nullptr) {
      echoed_query->qname = qname;
      echoed_query->qtype = static_cast<RrType>(qtype);
      echoed_query->qclass = qclass;
    }
  }
  EdnsInfo edns;
  uint8_t ext_rcode = 0;
  // Returns nullptr on success, else the rejection reason. `allow_opt` is
  // true only for the additional section — an OPT anywhere else is malformed.
  auto read_section = [&](int count, std::vector<RrView>* section,
                          bool allow_opt) -> const char* {
    for (int i = 0; i < count; ++i) {
      DnsName owner;
      uint16_t type = 0;
      if (!reader.Name(&owner) || !reader.U16(&type)) {
        return "malformed record section";
      }
      if (type == kTypeOpt) {
        if (!allow_opt) {
          return "OPT record outside the additional section";
        }
        if (!owner.labels.empty()) {
          return "OPT record with a non-root name";
        }
        if (edns.present) {
          return "multiple OPT records";
        }
        if (!ReadOptAfterType(&reader, &edns, &ext_rcode)) {
          return "truncated OPT record";
        }
        continue;
      }
      RrView rr;
      if (!ReadRecordAfterType(&reader, owner, type, &rr)) {
        return "malformed record section";
      }
      section->push_back(std::move(rr));
    }
    return nullptr;
  };
  const char* error = read_section(ancount, &view.answer, false);
  if (error == nullptr) {
    error = read_section(nscount, &view.authority, false);
  }
  if (error == nullptr) {
    error = read_section(arcount, &view.additional, true);
  }
  if (error != nullptr) {
    return Result<ResponseView>::Error(error);
  }
  // The header RCODE is only the low nibble; with EDNS the OPT TTL's top
  // byte supplies the high bits (how BADVERS = 16 comes back).
  view.rcode = static_cast<Rcode>((edns.present ? (static_cast<int64_t>(ext_rcode) << 4) : 0) |
                                  (flags & 0xF));
  if (echoed_query != nullptr) {
    echoed_query->edns = edns;
  }
  return view;
}

size_t EffectivePayloadLimit(const EdnsInfo& edns, size_t transport_limit) {
  if (transport_limit >= kMaxTcpPayload) {
    return transport_limit;  // TCP: the EDNS payload size governs UDP only
  }
  if (!edns.present) {
    return transport_limit;
  }
  uint16_t advertised = ClampEdnsPayload(edns.udp_payload);
  return static_cast<size_t>(advertised);
}

bool ScanQueryForOpt(const uint8_t* packet, size_t size, EdnsInfo* out) {
  if (size < kHeaderSize) {
    return false;
  }
  Reader reader(packet, size);
  uint16_t id = 0, flags = 0, qdcount = 0, ancount = 0, nscount = 0, arcount = 0;
  reader.U16(&id);
  reader.U16(&flags);
  reader.U16(&qdcount);
  reader.U16(&ancount);
  reader.U16(&nscount);
  reader.U16(&arcount);
  for (int q = 0; q < qdcount; ++q) {
    DnsName qname;
    uint16_t qtype = 0, qclass = 0;
    if (!reader.Name(&qname) || !reader.U16(&qtype) || !reader.U16(&qclass)) {
      return false;
    }
  }
  // Unlike ParseWireQuery, the walk is deliberately tolerant: the caller is
  // about to send FORMERR, and only needs to know whether a usable OPT was
  // advertised. Every record gets the same uniform name/fixed-fields/RDATA
  // treatment; the first root-named OPT wins.
  int records = ancount + nscount + arcount;
  for (int i = 0; i < records; ++i) {
    DnsName owner;
    uint16_t type = 0, klass = 0, rdlength = 0;
    uint32_t ttl = 0;
    if (!reader.Name(&owner) || !reader.U16(&type) || !reader.U16(&klass) ||
        !reader.U32(&ttl) || !reader.U16(&rdlength) || !reader.Skip(rdlength)) {
      return false;
    }
    if (type == kTypeOpt && owner.labels.empty()) {
      out->present = true;
      out->udp_payload = ClampEdnsPayload(klass);
      out->version = static_cast<uint8_t>((ttl >> 16) & 0xff);
      out->dnssec_ok = (ttl & kEdnsDoBit) != 0;
      return true;
    }
  }
  return false;
}

Status AppendTcpFrame(std::vector<uint8_t>* out, const std::vector<uint8_t>& message) {
  if (message.size() > kMaxTcpPayload) {
    return Status::Error(StrCat("TCP message of ", message.size(),
                                " bytes overflows the 16-bit length prefix"));
  }
  PutU16(out, static_cast<uint16_t>(message.size()));
  out->insert(out->end(), message.begin(), message.end());
  return Status::Ok();
}

void TcpFrameDecoder::Feed(const uint8_t* data, size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

bool TcpFrameDecoder::Next(std::vector<uint8_t>* message) {
  if (buffer_.size() - consumed_ < 2) {
    return false;
  }
  size_t length = static_cast<size_t>(buffer_[consumed_]) << 8 | buffer_[consumed_ + 1];
  if (buffer_.size() - consumed_ < 2 + length) {
    return false;
  }
  auto begin = buffer_.begin() + static_cast<long>(consumed_ + 2);
  message->assign(begin, begin + static_cast<long>(length));
  consumed_ += 2 + length;
  // Reclaim returned bytes once they dominate the buffer, so a long-lived
  // connection does not hold every message it ever carried.
  if (consumed_ == buffer_.size() || consumed_ > 4096) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(consumed_));
    consumed_ = 0;
  }
  return true;
}

std::string HexDump(const std::vector<uint8_t>& packet) {
  std::string out;
  char buffer[8];
  for (size_t i = 0; i < packet.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%02x", packet[i]);
    if (i > 0) {
      out += (i % 16 == 0) ? '\n' : ' ';
    }
    out += buffer;
  }
  if (!out.empty()) {
    out += '\n';
  }
  return out;
}

}  // namespace dnsv

#include "src/dns/zone.h"

#include <map>
#include <set>
#include <sstream>

#include "src/support/strings.h"

namespace dnsv {
namespace {

std::string FormatRdata(const ZoneRecord& record) {
  switch (record.type) {
    case RrType::kA:
      return FormatIpv4(record.rdata.value);
    case RrType::kAaaa:
    case RrType::kTxt:
      return StrCat(record.rdata.value);
    case RrType::kNs:
    case RrType::kCname:
      return record.rdata.name.ToString() + ".";
    case RrType::kMx:
      return StrCat(record.rdata.value, " ", record.rdata.name.ToString(), ".");
    case RrType::kSoa:
      return StrCat(record.rdata.name.ToString(), ". ", record.rdata.value);
    case RrType::kAny:
      break;
  }
  return "?";
}

// Resolves `text` against the origin: '@' is the apex; names with a trailing
// dot are absolute; others are relative.
Result<DnsName> ResolveName(const std::string& text, const DnsName& origin) {
  if (text == "@") {
    return origin;
  }
  bool absolute = !text.empty() && text.back() == '.';
  Result<DnsName> parsed = DnsName::Parse(text);
  if (!parsed.ok()) {
    return parsed;
  }
  DnsName name = std::move(parsed).value();
  if (!absolute) {
    name.labels.insert(name.labels.end(), origin.labels.begin(), origin.labels.end());
  }
  return name;
}

}  // namespace

std::string ZoneConfig::ToText() const {
  std::string out = StrCat("$ORIGIN ", origin.ToString(), ".\n");
  for (const ZoneRecord& record : records) {
    out += StrCat(record.name.ToString(), ". ", RrTypeName(record.type), " ",
                  FormatRdata(record), "\n");
  }
  return out;
}

Result<ZoneConfig> ParseZoneText(const std::string& text) {
  ZoneConfig zone;
  bool have_origin = false;
  int line_no = 0;
  std::istringstream stream(text);
  std::string raw_line;
  auto fail = [&](const std::string& what) {
    return Result<ZoneConfig>::Error(StrCat("zone line ", line_no, ": ", what));
  };
  while (std::getline(stream, raw_line)) {
    ++line_no;
    std::string_view line = TrimWhitespace(raw_line);
    if (line.empty() || line[0] == ';' || line[0] == '#') {
      continue;
    }
    std::istringstream fields{std::string(line)};
    std::string first;
    fields >> first;
    if (first == "$ORIGIN") {
      std::string origin_text;
      fields >> origin_text;
      Result<DnsName> origin = DnsName::Parse(origin_text);
      if (!origin.ok()) {
        return fail(origin.error());
      }
      zone.origin = std::move(origin).value();
      if (zone.origin.Empty()) {
        return fail("$ORIGIN must not be the root");
      }
      have_origin = true;
      continue;
    }
    if (!have_origin) {
      return fail("record before $ORIGIN");
    }
    std::string type_text;
    fields >> type_text;
    RrType type;
    if (!ParseRrType(type_text, &type)) {
      return fail("unknown RR type: " + type_text);
    }
    if (type == RrType::kAny) {
      return fail("ANY is a query pseudo-type, not a record type");
    }
    Result<DnsName> owner = ResolveName(first, zone.origin);
    if (!owner.ok()) {
      return fail(owner.error());
    }
    ZoneRecord record;
    record.name = std::move(owner).value();
    record.type = type;
    switch (type) {
      case RrType::kA: {
        std::string ip;
        fields >> ip;
        if (!ParseIpv4(ip, &record.rdata.value)) {
          return fail("bad IPv4 address: " + ip);
        }
        break;
      }
      case RrType::kAaaa:
      case RrType::kTxt: {
        std::string value;
        fields >> value;
        if (!ParseInt64(value, &record.rdata.value)) {
          return fail(StrCat(RrTypeName(type), " rdata must be an integer token"));
        }
        break;
      }
      case RrType::kNs:
      case RrType::kCname: {
        std::string target;
        fields >> target;
        if (target.empty()) {
          return fail("missing target name");
        }
        Result<DnsName> parsed = ResolveName(target, zone.origin);
        if (!parsed.ok()) {
          return fail(parsed.error());
        }
        record.rdata.name = std::move(parsed).value();
        break;
      }
      case RrType::kMx: {
        std::string pref, target;
        fields >> pref >> target;
        if (!ParseInt64(pref, &record.rdata.value)) {
          return fail("MX preference must be an integer");
        }
        Result<DnsName> parsed = ResolveName(target, zone.origin);
        if (!parsed.ok()) {
          return fail(parsed.error());
        }
        record.rdata.name = std::move(parsed).value();
        break;
      }
      case RrType::kSoa: {
        std::string mname, serial;
        fields >> mname >> serial;
        Result<DnsName> parsed = ResolveName(mname, zone.origin);
        if (!parsed.ok()) {
          return fail(parsed.error());
        }
        record.rdata.name = std::move(parsed).value();
        if (!ParseInt64(serial, &record.rdata.value)) {
          return fail("SOA serial must be an integer");
        }
        break;
      }
      case RrType::kAny:
        break;
    }
    zone.records.push_back(std::move(record));
  }
  if (!have_origin) {
    return Result<ZoneConfig>::Error("zone text has no $ORIGIN");
  }
  return zone;
}

Result<ZoneConfig> CanonicalizeZone(const ZoneConfig& zone) {
  auto fail = [](const std::string& what) { return Result<ZoneConfig>::Error(what); };
  if (zone.origin.Empty()) {
    return fail("zone has no origin");
  }
  // Group records by (name, type), preserving first-appearance order.
  std::vector<DnsName> name_order;
  std::map<std::string, std::vector<const ZoneRecord*>> by_name;
  for (const ZoneRecord& record : zone.records) {
    if (!record.name.IsSubdomainOf(zone.origin)) {
      return fail(StrCat("record ", record.name.ToString(), " is outside origin ",
                         zone.origin.ToString()));
    }
    std::string key = record.name.ToString();
    auto [it, inserted] = by_name.try_emplace(key);
    if (inserted) {
      name_order.push_back(record.name);
    }
    it->second.push_back(&record);
  }
  ZoneConfig canonical;
  canonical.origin = zone.origin;
  int soa_count = 0;
  for (const DnsName& name : name_order) {
    const auto& group = by_name.at(name.ToString());
    // Stable-partition by type, preserving first-appearance type order.
    std::vector<RrType> type_order;
    for (const ZoneRecord* record : group) {
      bool seen = false;
      for (RrType t : type_order) {
        if (t == record->type) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        type_order.push_back(record->type);
      }
    }
    bool has_cname = false;
    for (const ZoneRecord* record : group) {
      has_cname = has_cname || record->type == RrType::kCname;
    }
    if (has_cname && type_order.size() > 1) {
      return fail("CNAME must be the only type at " + name.ToString());
    }
    for (RrType type : type_order) {
      for (const ZoneRecord* record : group) {
        if (record->type != type) {
          continue;
        }
        for (const ZoneRecord& existing : canonical.records) {
          if (existing == *record) {
            return fail(StrCat("duplicate record at ", name.ToString(), " type ",
                               RrTypeName(type)));
          }
        }
        if (record->type == RrType::kSoa) {
          if (record->name != zone.origin) {
            return fail("SOA must live at the apex");
          }
          ++soa_count;
        }
        if (record->type == RrType::kNs && record->name.labels[0] == kWildcardLabel) {
          return fail("wildcard NS records are not supported");
        }
        canonical.records.push_back(*record);
      }
    }
  }
  if (soa_count != 1) {
    return fail(StrCat("zone must have exactly one apex SOA, found ", soa_count));
  }
  return canonical;
}

}  // namespace dnsv

#include "src/dns/rr.h"

#include "src/support/strings.h"

namespace dnsv {

const char* RrTypeName(RrType type) {
  switch (type) {
    case RrType::kA: return "A";
    case RrType::kNs: return "NS";
    case RrType::kCname: return "CNAME";
    case RrType::kSoa: return "SOA";
    case RrType::kMx: return "MX";
    case RrType::kTxt: return "TXT";
    case RrType::kAaaa: return "AAAA";
    case RrType::kAny: return "ANY";
  }
  return "?";
}

std::string RrTypeDisplay(RrType type) {
  const char* name = RrTypeName(type);
  if (name[0] != '?') {
    return name;
  }
  return StrCat("TYPE", static_cast<int64_t>(type));
}

bool ParseRrType(const std::string& text, RrType* out) {
  const std::string upper = [&] {
    std::string u = text;
    for (char& c : u) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return u;
  }();
  if (upper == "A") *out = RrType::kA;
  else if (upper == "NS") *out = RrType::kNs;
  else if (upper == "CNAME") *out = RrType::kCname;
  else if (upper == "SOA") *out = RrType::kSoa;
  else if (upper == "MX") *out = RrType::kMx;
  else if (upper == "TXT") *out = RrType::kTxt;
  else if (upper == "AAAA") *out = RrType::kAaaa;
  else if (upper == "ANY") *out = RrType::kAny;
  else return false;
  return true;
}

const char* RcodeName(Rcode rcode) {
  switch (rcode) {
    case Rcode::kNoError: return "NOERROR";
    case Rcode::kFormErr: return "FORMERR";
    case Rcode::kServFail: return "SERVFAIL";
    case Rcode::kNxDomain: return "NXDOMAIN";
    case Rcode::kNotImp: return "NOTIMP";
    case Rcode::kRefused: return "REFUSED";
    case Rcode::kBadVers: return "BADVERS";
  }
  return "?";
}

bool ParseIpv4(const std::string& text, int64_t* out) {
  std::vector<std::string> parts = SplitString(text, '.');
  if (parts.size() != 4) {
    return false;
  }
  int64_t packed = 0;
  for (const std::string& part : parts) {
    int64_t octet = 0;
    if (!ParseInt64(part, &octet) || octet < 0 || octet > 255) {
      return false;
    }
    packed = (packed << 8) | octet;
  }
  *out = packed;
  return true;
}

std::string FormatIpv4(int64_t packed) {
  return StrCat((packed >> 24) & 0xff, ".", (packed >> 16) & 0xff, ".", (packed >> 8) & 0xff,
                ".", packed & 0xff);
}

}  // namespace dnsv

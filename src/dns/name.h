// Host-side domain names and the order-preserving label interner.
//
// The engine (MiniGo side) represents a name as a []int of interned labels in
// reversed (root-first) order, per the paper's §6.3 encoding: every label
// (<= 63 bytes) maps to an integer such that integer order equals
// lexicographic label order. The interner preserves that invariant under
// on-demand insertion by assigning midpoints between neighbors.
#ifndef DNSV_DNS_NAME_H_
#define DNSV_DNS_NAME_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/status.h"

namespace dnsv {

inline constexpr char kWildcardLabel[] = "*";

// A domain name in host order: labels[0] is the leftmost label, so
// "www.example.com" is {"www", "example", "com"}. Names are stored lowercase
// (DNS comparisons are case-insensitive).
struct DnsName {
  std::vector<std::string> labels;

  static Result<DnsName> Parse(const std::string& text);
  std::string ToString() const;

  bool Empty() const { return labels.empty(); }
  size_t NumLabels() const { return labels.size(); }

  // True when `this` ends with `suffix` (is equal to or inside that domain).
  bool IsSubdomainOf(const DnsName& suffix) const;
  bool operator==(const DnsName& other) const { return labels == other.labels; }
  bool operator!=(const DnsName& other) const { return !(*this == other); }

  // Labels in root-first order ("com", "example", "www") — the engine layout.
  std::vector<std::string> ReversedLabels() const;
};

// Assigns integers to labels such that label order (bytewise, lowercase)
// matches integer order, even when labels are interned incrementally: a new
// label receives the midpoint of its lexicographic neighbors' codes.
class LabelInterner {
 public:
  LabelInterner();

  // Returns the code for `label`, interning it if needed.
  int64_t Intern(const std::string& label);

  // Reverse lookup; returns "<label#code>" for unknown codes (these appear
  // when a solver model picks an integer strictly between interned labels).
  std::string Decode(int64_t code) const;

  // Like Decode, but synthesizes a readable label at the right lexicographic
  // position for unknown codes (e.g. "cs0" for a code just above "cs").
  // Display-only: two distinct codes may synthesize the same string.
  std::string DecodeApprox(int64_t code) const;

  // Lowest/highest codes that any real label may take; symbolic qname labels
  // are constrained into this range.
  int64_t min_code() const { return kMinCode; }
  int64_t max_code() const { return kMaxCode; }

  // Interns every label of `name`, returning engine-order (reversed) codes.
  std::vector<int64_t> InternName(const DnsName& name);

  size_t size() const { return by_label_.size(); }

  // Fixed code for the wildcard label "*" (mirrored by LABEL_STAR in the
  // engine's types.mg).
  static constexpr int64_t kWildcardCode = 2;

 private:
  static constexpr int64_t kMinCode = 1;
  static constexpr int64_t kMaxCode = int64_t{1} << 60;

  std::map<std::string, int64_t> by_label_;  // ordered: neighbor lookup
  std::unordered_map<int64_t, std::string> by_code_;
};

}  // namespace dnsv

#endif  // DNSV_DNS_NAME_H_

// Token definitions for MiniGo, the Go subset the engine and its
// specifications are written in (our stand-in for the paper's Go + GoLLVM
// pipeline, §4.1).
#ifndef DNSV_FRONTEND_TOKEN_H_
#define DNSV_FRONTEND_TOKEN_H_

#include <cstdint>
#include <string>

namespace dnsv {

enum class Tok : uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kStringLit,   // only in panic("...") messages
  // keywords
  kFunc, kVar, kConst, kTypeKw, kStruct, kIf, kElse, kFor, kReturn,
  kBreak, kContinue, kTrue, kFalse, kNil, kPanicKw,
  // punctuation
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemi, kDot, kColonEq, kAssign,
  // operators
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAndAnd, kOrOr, kBang,
  kAmp,  // reserved; rejected by the parser with a helpful message
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;   // identifier name / literal spelling / string payload
  int64_t int_value = 0;
  int line = 0;
  int column = 0;
};

const char* TokName(Tok kind);

}  // namespace dnsv

#endif  // DNSV_FRONTEND_TOKEN_H_

// Lowers type-checked MiniGo to AbsIR.
//
// Safety checks are inserted automatically, mirroring the panic blocks GoLLVM
// embeds in its IR (paper §4.1): nil-pointer dereference, slice index out of
// range, and division by zero each branch to a per-function panic block.
// Verifying safety later reduces to proving those blocks unreachable.
#ifndef DNSV_FRONTEND_LOWER_H_
#define DNSV_FRONTEND_LOWER_H_

#include "src/frontend/ast.h"
#include "src/frontend/typecheck.h"
#include "src/ir/function.h"
#include "src/support/status.h"

namespace dnsv {

// Lowers every function in `program` (already annotated by TypecheckMiniGo)
// into `module`. The module must use the same TypeTable the checker resolved
// types against.
Status LowerMiniGo(const ProgramAst& program, const CheckedProgram& checked, Module* module);

}  // namespace dnsv

#endif  // DNSV_FRONTEND_LOWER_H_

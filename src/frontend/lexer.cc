#include "src/frontend/lexer.h"

#include <cctype>
#include <unordered_map>

#include "src/support/strings.h"

namespace dnsv {
namespace {

const std::unordered_map<std::string, Tok>& Keywords() {
  static const auto* kMap = new std::unordered_map<std::string, Tok>{
      {"func", Tok::kFunc},         {"var", Tok::kVar},       {"const", Tok::kConst},
      {"type", Tok::kTypeKw},       {"struct", Tok::kStruct}, {"if", Tok::kIf},
      {"else", Tok::kElse},         {"for", Tok::kFor},       {"return", Tok::kReturn},
      {"break", Tok::kBreak},       {"continue", Tok::kContinue},
      {"true", Tok::kTrue},         {"false", Tok::kFalse},   {"nil", Tok::kNil},
      {"panic", Tok::kPanicKw},
  };
  return *kMap;
}

// Go's ASI rule: a newline terminates the statement when the last token is an
// identifier, literal, one of the keywords below, or a closing delimiter.
bool TriggersSemicolon(Tok kind) {
  switch (kind) {
    case Tok::kIdent:
    case Tok::kIntLit:
    case Tok::kStringLit:
    case Tok::kTrue:
    case Tok::kFalse:
    case Tok::kNil:
    case Tok::kReturn:
    case Tok::kBreak:
    case Tok::kContinue:
    case Tok::kRParen:
    case Tok::kRBracket:
    case Tok::kRBrace:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* TokName(Tok kind) {
  switch (kind) {
    case Tok::kEof: return "end of file";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kStringLit: return "string literal";
    case Tok::kFunc: return "'func'";
    case Tok::kVar: return "'var'";
    case Tok::kConst: return "'const'";
    case Tok::kTypeKw: return "'type'";
    case Tok::kStruct: return "'struct'";
    case Tok::kIf: return "'if'";
    case Tok::kElse: return "'else'";
    case Tok::kFor: return "'for'";
    case Tok::kReturn: return "'return'";
    case Tok::kBreak: return "'break'";
    case Tok::kContinue: return "'continue'";
    case Tok::kTrue: return "'true'";
    case Tok::kFalse: return "'false'";
    case Tok::kNil: return "'nil'";
    case Tok::kPanicKw: return "'panic'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kComma: return "','";
    case Tok::kSemi: return "';'";
    case Tok::kDot: return "'.'";
    case Tok::kColonEq: return "':='";
    case Tok::kAssign: return "'='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kBang: return "'!'";
    case Tok::kAmp: return "'&'";
  }
  return "?";
}

Result<std::vector<Token>> LexMiniGo(std::string_view source, const std::string& file_name) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;

  auto error = [&](const std::string& what) {
    return Result<std::vector<Token>>::Error(
        StrCat(file_name, ":", line, ":", column, ": ", what));
  };
  auto push = [&](Tok kind, std::string text = "", int64_t value = 0) {
    tokens.push_back(Token{kind, std::move(text), value, line, column});
  };
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  auto peek = [&](size_t offset = 0) -> char {
    return i + offset < source.size() ? source[i + offset] : '\0';
  };

  while (i < source.size()) {
    char c = peek();
    if (c == '\n') {
      if (!tokens.empty() && TriggersSemicolon(tokens.back().kind)) {
        push(Tok::kSemi);
      }
      advance(1);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < source.size() && peek() != '\n') {
        advance(1);
      }
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      advance(2);
      while (i < source.size() && !(peek() == '*' && peek(1) == '/')) {
        advance(1);
      }
      if (i >= source.size()) {
        return error("unterminated block comment");
      }
      advance(2);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      int start_col = column;
      size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
        advance(1);
      }
      std::string word(source.substr(start, i - start));
      auto it = Keywords().find(word);
      Token tok;
      tok.kind = it != Keywords().end() ? it->second : Tok::kIdent;
      tok.text = std::move(word);
      tok.line = line;
      tok.column = start_col;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      int start_col = column;
      size_t start = i;
      while (i < source.size() && std::isdigit(static_cast<unsigned char>(peek()))) {
        advance(1);
      }
      std::string digits(source.substr(start, i - start));
      int64_t value = 0;
      if (!ParseInt64(digits, &value)) {
        return error("invalid integer literal: " + digits);
      }
      Token tok;
      tok.kind = Tok::kIntLit;
      tok.text = std::move(digits);
      tok.int_value = value;
      tok.line = line;
      tok.column = start_col;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      int start_col = column;
      advance(1);
      std::string payload;
      while (i < source.size() && peek() != '"' && peek() != '\n') {
        payload += peek();
        advance(1);
      }
      if (peek() != '"') {
        return error("unterminated string literal");
      }
      advance(1);
      Token tok;
      tok.kind = Tok::kStringLit;
      tok.text = std::move(payload);
      tok.line = line;
      tok.column = start_col;
      tokens.push_back(std::move(tok));
      continue;
    }
    auto two = [&](char second) { return peek(1) == second; };
    switch (c) {
      case '(': push(Tok::kLParen); advance(1); break;
      case ')': push(Tok::kRParen); advance(1); break;
      case '{': push(Tok::kLBrace); advance(1); break;
      case '}': push(Tok::kRBrace); advance(1); break;
      case '[': push(Tok::kLBracket); advance(1); break;
      case ']': push(Tok::kRBracket); advance(1); break;
      case ',': push(Tok::kComma); advance(1); break;
      case ';': push(Tok::kSemi); advance(1); break;
      case '.': push(Tok::kDot); advance(1); break;
      case '+': push(Tok::kPlus); advance(1); break;
      case '-': push(Tok::kMinus); advance(1); break;
      case '*': push(Tok::kStar); advance(1); break;
      case '/': push(Tok::kSlash); advance(1); break;
      case '%': push(Tok::kPercent); advance(1); break;
      case ':':
        if (!two('=')) {
          return error("expected ':=' (MiniGo has no ':' token)");
        }
        push(Tok::kColonEq);
        advance(2);
        break;
      case '=':
        if (two('=')) {
          push(Tok::kEq);
          advance(2);
        } else {
          push(Tok::kAssign);
          advance(1);
        }
        break;
      case '!':
        if (two('=')) {
          push(Tok::kNe);
          advance(2);
        } else {
          push(Tok::kBang);
          advance(1);
        }
        break;
      case '<':
        if (two('=')) {
          push(Tok::kLe);
          advance(2);
        } else {
          push(Tok::kLt);
          advance(1);
        }
        break;
      case '>':
        if (two('=')) {
          push(Tok::kGe);
          advance(2);
        } else {
          push(Tok::kGt);
          advance(1);
        }
        break;
      case '&':
        if (two('&')) {
          push(Tok::kAndAnd);
          advance(2);
        } else {
          push(Tok::kAmp);
          advance(1);
        }
        break;
      case '|':
        if (!two('|')) {
          return error("expected '||' (MiniGo has no bitwise '|')");
        }
        push(Tok::kOrOr);
        advance(2);
        break;
      default:
        return error(StrCat("unexpected character '", std::string(1, c), "'"));
    }
  }
  if (!tokens.empty() && TriggersSemicolon(tokens.back().kind)) {
    push(Tok::kSemi);
  }
  push(Tok::kEof);
  return tokens;
}

}  // namespace dnsv

// MiniGo abstract syntax. Nodes carry source positions for error messages and
// are annotated with resolved AbsIR types by the typechecker.
#ifndef DNSV_FRONTEND_AST_H_
#define DNSV_FRONTEND_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/frontend/token.h"
#include "src/ir/type.h"

namespace dnsv {

struct TypeExpr {
  enum class Kind { kNamed, kPtr, kList };
  Kind kind = Kind::kNamed;
  std::string name;                 // kNamed: "int", "bool", or a struct name
  std::unique_ptr<TypeExpr> elem;   // kPtr / kList
  int line = 0;
};

struct Expr {
  enum class Kind {
    kIntLit,
    kBoolLit,
    kNilLit,
    kVarRef,    // also resolves to constants
    kBinary,    // op, lhs, rhs
    kUnary,     // op, lhs
    kField,     // lhs . name
    kIndex,     // lhs [ rhs ]
    kCall,      // name(args...) — includes len/append/listEq builtins
    kNew,       // new(T)
    kMake,      // make([]T) — empty list
  };
  Kind kind;
  int line = 0;
  int column = 0;
  int64_t int_value = 0;
  bool bool_value = false;
  std::string name;
  Tok op = Tok::kEof;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;
  std::vector<std::unique_ptr<Expr>> args;
  std::unique_ptr<TypeExpr> type_expr;  // kNew / kMake

  // --- filled by the typechecker ---
  Type type;                 // resolved AbsIR type of this expression
  bool base_needs_deref = false;  // kField: base is a pointer, auto-deref
  bool is_const = false;     // kVarRef resolved to a const; value in int_value
};

struct Stmt {
  enum class Kind {
    kVarDecl,    // var name T [= init]
    kShortDecl,  // name := init
    kAssign,     // lhs = init
    kIf,         // cond, body, else_body
    kFor,        // [for_init]; [cond]; [for_post] body
    kReturn,     // [init]
    kBreak,
    kContinue,
    kExpr,       // init (a call)
    kPanic,      // panic("text")
    kBlock,      // body
  };
  Kind kind;
  int line = 0;
  std::string name;
  std::unique_ptr<TypeExpr> decl_type;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> init;
  std::unique_ptr<Expr> cond;
  std::vector<std::unique_ptr<Stmt>> body;
  std::vector<std::unique_ptr<Stmt>> else_body;
  std::unique_ptr<Stmt> for_init;
  std::unique_ptr<Stmt> for_post;
  std::string text;  // kPanic message

  // --- filled by the typechecker ---
  Type decl_ir_type;  // kVarDecl / kShortDecl: resolved variable type
};

struct FieldDecl {
  std::string name;
  std::unique_ptr<TypeExpr> type;
  int line = 0;
};

struct StructDecl {
  std::string name;
  std::vector<FieldDecl> fields;
  int line = 0;
};

struct ConstDecl {
  std::string name;
  int64_t value = 0;
  int line = 0;
};

struct ParamDecl {
  std::string name;
  std::unique_ptr<TypeExpr> type;
  int line = 0;
};

struct FuncDecl {
  std::string name;
  std::vector<ParamDecl> params;
  std::unique_ptr<TypeExpr> return_type;  // null for void
  std::vector<std::unique_ptr<Stmt>> body;
  int line = 0;
  std::string file;  // source unit the function came from (for diagnostics)
};

// One parsed compilation unit (possibly concatenated from several .mg files).
struct ProgramAst {
  std::vector<StructDecl> structs;
  std::vector<ConstDecl> consts;
  std::vector<FuncDecl> funcs;
};

}  // namespace dnsv

#endif  // DNSV_FRONTEND_AST_H_

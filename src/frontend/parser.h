// Recursive-descent parser for MiniGo.
#ifndef DNSV_FRONTEND_PARSER_H_
#define DNSV_FRONTEND_PARSER_H_

#include <string>
#include <string_view>

#include "src/frontend/ast.h"
#include "src/support/status.h"

namespace dnsv {

// Parses one source unit. `file_name` is used in diagnostics.
Result<ProgramAst> ParseMiniGo(std::string_view source, const std::string& file_name);

// Parses several sources into one program (the engine is split across module
// files that share one namespace, like a Go package).
Result<ProgramAst> ParseMiniGoSources(
    const std::vector<std::pair<std::string, std::string>>& name_and_source);

}  // namespace dnsv

#endif  // DNSV_FRONTEND_PARSER_H_

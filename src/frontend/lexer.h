// MiniGo lexer with Go-style automatic semicolon insertion.
#ifndef DNSV_FRONTEND_LEXER_H_
#define DNSV_FRONTEND_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/frontend/token.h"
#include "src/support/status.h"

namespace dnsv {

// Tokenizes `source`. `file_name` is used in error messages only.
// Returns an error for unterminated comments/strings or stray characters.
Result<std::vector<Token>> LexMiniGo(std::string_view source, const std::string& file_name);

}  // namespace dnsv

#endif  // DNSV_FRONTEND_LEXER_H_

// MiniGo type checker: resolves struct/const/function tables, annotates the
// AST with AbsIR types, and rejects ill-typed programs with source positions.
#ifndef DNSV_FRONTEND_TYPECHECK_H_
#define DNSV_FRONTEND_TYPECHECK_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/frontend/ast.h"
#include "src/ir/type.h"
#include "src/support/status.h"

namespace dnsv {

struct FuncSignature {
  std::string name;
  std::vector<Type> param_types;
  std::vector<std::string> param_names;
  Type return_type;  // VoidType for procedures
};

// Symbol tables produced by type checking; consumed by the lowerer.
struct CheckedProgram {
  std::unordered_map<std::string, int64_t> consts;
  std::unordered_map<std::string, FuncSignature> funcs;
};

// Checks `program` against (and registers struct types into) `types`.
// On success the AST is annotated in place (Expr::type etc.).
Result<CheckedProgram> TypecheckMiniGo(ProgramAst* program, TypeTable* types);

}  // namespace dnsv

#endif  // DNSV_FRONTEND_TYPECHECK_H_

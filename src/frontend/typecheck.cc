#include "src/frontend/typecheck.h"

#include <unordered_set>

#include "src/support/strings.h"

namespace dnsv {
namespace {

class Checker {
 public:
  Checker(ProgramAst* program, TypeTable* types) : program_(program), types_(types) {}

  CheckedProgram Run() {
    RegisterStructs();
    RegisterConsts();
    RegisterFuncs();
    for (FuncDecl& fn : program_->funcs) {
      CheckFunction(&fn);
    }
    return std::move(checked_);
  }

 private:
  [[noreturn]] void Fail(int line, const std::string& what) {
    throw DnsvError(StrCat("line ", line, ": ", what));
  }

  // --- declaration tables ---

  void RegisterStructs() {
    std::unordered_set<std::string> names;
    for (const StructDecl& decl : program_->structs) {
      if (!names.insert(decl.name).second) {
        Fail(decl.line, "struct redefined: " + decl.name);
      }
      if (decl.name == "int" || decl.name == "bool") {
        Fail(decl.line, "cannot redefine builtin type: " + decl.name);
      }
    }
    for (const StructDecl& decl : program_->structs) {
      std::vector<StructField> fields;
      std::unordered_set<std::string> field_names;
      for (const FieldDecl& field : decl.fields) {
        if (!field_names.insert(field.name).second) {
          Fail(field.line, StrCat("field redefined in ", decl.name, ": ", field.name));
        }
        fields.push_back({field.name, Resolve(*field.type, names)});
      }
      types_->DefineStruct(decl.name, std::move(fields));
    }
    CheckNoValueCycles();
  }

  // A struct containing itself by value (directly or through other structs /
  // lists) would have infinite size; pointers break cycles.
  void CheckNoValueCycles() {
    for (const StructDecl& decl : program_->structs) {
      std::unordered_set<std::string> on_path;
      WalkValueCycle(decl.name, &on_path, decl.line);
    }
  }
  void WalkValueCycle(const std::string& name, std::unordered_set<std::string>* on_path,
                      int line) {
    if (!on_path->insert(name).second) {
      Fail(line, "struct contains itself by value: " + name);
    }
    for (const StructField& field : types_->GetStruct(name).fields) {
      Type t = field.type;
      while (types_->IsList(t)) {
        t = types_->ListElement(t);
      }
      if (types_->IsStruct(t)) {
        WalkValueCycle(types_->node(t).struct_name, on_path, line);
      }
    }
    on_path->erase(name);
  }

  Type Resolve(const TypeExpr& expr, const std::unordered_set<std::string>& struct_names) {
    switch (expr.kind) {
      case TypeExpr::Kind::kNamed:
        if (expr.name == "int") {
          return types_->IntType();
        }
        if (expr.name == "bool") {
          return types_->BoolType();
        }
        if (struct_names.count(expr.name) == 0 && !types_->IsStructDefined(expr.name)) {
          Fail(expr.line, "unknown type: " + expr.name);
        }
        return types_->StructType(expr.name);
      case TypeExpr::Kind::kPtr:
        return types_->PtrTo(Resolve(*expr.elem, struct_names));
      case TypeExpr::Kind::kList:
        return types_->ListOf(Resolve(*expr.elem, struct_names));
    }
    Fail(expr.line, "bad type expression");
  }

  Type ResolveNow(const TypeExpr& expr) { return Resolve(expr, {}); }

  void RegisterConsts() {
    for (const ConstDecl& decl : program_->consts) {
      if (!checked_.consts.emplace(decl.name, decl.value).second) {
        Fail(decl.line, "const redefined: " + decl.name);
      }
    }
  }

  void RegisterFuncs() {
    for (const FuncDecl& decl : program_->funcs) {
      FuncSignature sig;
      sig.name = decl.name;
      std::unordered_set<std::string> param_names;
      for (const ParamDecl& param : decl.params) {
        if (!param_names.insert(param.name).second) {
          Fail(param.line, "parameter redefined: " + param.name);
        }
        sig.param_types.push_back(ResolveNow(*param.type));
        sig.param_names.push_back(param.name);
      }
      sig.return_type = decl.return_type ? ResolveNow(*decl.return_type) : types_->VoidType();
      if (decl.name == "len" || decl.name == "append" || decl.name == "new" ||
          decl.name == "make" || decl.name == "listEq") {
        Fail(decl.line, "cannot redefine builtin: " + decl.name);
      }
      if (!checked_.funcs.emplace(decl.name, std::move(sig)).second) {
        Fail(decl.line, "function redefined: " + decl.name);
      }
    }
  }

  // --- function bodies ---

  struct Scope {
    std::unordered_map<std::string, Type> vars;
  };

  Type LookupVar(const std::string& name, int line, bool* is_const, int64_t* const_value) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->vars.find(name);
      if (found != it->vars.end()) {
        *is_const = false;
        return found->second;
      }
    }
    auto c = checked_.consts.find(name);
    if (c != checked_.consts.end()) {
      *is_const = true;
      *const_value = c->second;
      return types_->IntType();
    }
    Fail(line, "undefined variable: " + name);
  }

  void Declare(const std::string& name, Type type, int line) {
    Scope& scope = scopes_.back();
    if (scope.vars.count(name) != 0) {
      Fail(line, "variable redeclared in the same scope: " + name);
    }
    if (checked_.consts.count(name) != 0) {
      Fail(line, "variable shadows a constant: " + name);
    }
    scope.vars.emplace(name, type);
  }

  void CheckFunction(FuncDecl* fn) {
    current_fn_ = &checked_.funcs.at(fn->name);
    scopes_.clear();
    scopes_.push_back({});
    loop_depth_ = 0;
    for (size_t i = 0; i < fn->params.size(); ++i) {
      Declare(fn->params[i].name, current_fn_->param_types[i], fn->params[i].line);
    }
    CheckBlock(fn->body);
    scopes_.pop_back();
  }

  void CheckBlock(std::vector<std::unique_ptr<Stmt>>& stmts) {
    scopes_.push_back({});
    for (auto& stmt : stmts) {
      CheckStmt(stmt.get());
    }
    scopes_.pop_back();
  }

  void CheckStmt(Stmt* stmt) {
    switch (stmt->kind) {
      case Stmt::Kind::kVarDecl: {
        Type type = ResolveNow(*stmt->decl_type);
        if (stmt->init != nullptr) {
          CheckAssignableExpr(type, stmt->init.get(), stmt->line);
        }
        stmt->decl_ir_type = type;
        Declare(stmt->name, type, stmt->line);
        break;
      }
      case Stmt::Kind::kShortDecl: {
        if (stmt->init->kind == Expr::Kind::kNilLit) {
          Fail(stmt->line, "cannot infer a type for nil; use 'var x *T'");
        }
        Type init = CheckExpr(stmt->init.get());
        if (init == types_->VoidType()) {
          Fail(stmt->line, "cannot assign a void call result");
        }
        stmt->decl_ir_type = init;
        Declare(stmt->name, init, stmt->line);
        break;
      }
      case Stmt::Kind::kAssign: {
        Type lhs = CheckLvalue(stmt->lhs.get());
        CheckAssignableExpr(lhs, stmt->init.get(), stmt->line);
        break;
      }
      case Stmt::Kind::kIf: {
        Type cond = CheckExpr(stmt->cond.get());
        if (cond != types_->BoolType()) {
          Fail(stmt->line, "if condition must be bool");
        }
        CheckBlock(stmt->body);
        CheckBlock(stmt->else_body);
        break;
      }
      case Stmt::Kind::kFor: {
        scopes_.push_back({});  // scope for the init variable
        if (stmt->for_init != nullptr) {
          CheckStmt(stmt->for_init.get());
        }
        if (stmt->cond != nullptr) {
          Type cond = CheckExpr(stmt->cond.get());
          if (cond != types_->BoolType()) {
            Fail(stmt->line, "for condition must be bool");
          }
        }
        if (stmt->for_post != nullptr) {
          CheckStmt(stmt->for_post.get());
        }
        ++loop_depth_;
        CheckBlock(stmt->body);
        --loop_depth_;
        scopes_.pop_back();
        break;
      }
      case Stmt::Kind::kReturn: {
        Type expected = current_fn_->return_type;
        if (stmt->init == nullptr) {
          if (expected != types_->VoidType()) {
            Fail(stmt->line, "missing return value");
          }
        } else {
          CheckAssignableExpr(expected, stmt->init.get(), stmt->line);
        }
        break;
      }
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kContinue:
        if (loop_depth_ == 0) {
          Fail(stmt->line, "break/continue outside a loop");
        }
        break;
      case Stmt::Kind::kExpr: {
        if (stmt->init->kind != Expr::Kind::kCall) {
          Fail(stmt->line, "expression statement must be a call");
        }
        CheckExpr(stmt->init.get());
        break;
      }
      case Stmt::Kind::kPanic:
        break;
      case Stmt::Kind::kBlock:
        CheckBlock(stmt->body);
        break;
    }
  }

  // Checks `value_expr` in a context expecting `target`. nil literals adopt
  // the pointer type they are assigned to.
  void CheckAssignableExpr(Type target, Expr* value_expr, int line) {
    if (value_expr->kind == Expr::Kind::kNilLit) {
      if (!types_->IsPtr(target)) {
        Fail(line, "nil requires a pointer-typed context");
      }
      value_expr->type = target;
      return;
    }
    Type value = CheckExpr(value_expr);
    if (target != value) {
      Fail(line, StrCat("type mismatch: cannot assign ", types_->ToString(value), " to ",
                        types_->ToString(target)));
    }
  }

  // Lvalues: variable, field chain, or list index. Rejects consts and calls.
  Type CheckLvalue(Expr* expr) {
    switch (expr->kind) {
      case Expr::Kind::kVarRef: {
        bool is_const = false;
        int64_t value = 0;
        Type type = LookupVar(expr->name, expr->line, &is_const, &value);
        if (is_const) {
          Fail(expr->line, "cannot assign to constant: " + expr->name);
        }
        expr->type = type;
        return type;
      }
      case Expr::Kind::kField:
      case Expr::Kind::kIndex:
        return CheckExpr(expr);
      default:
        Fail(expr->line, "expression is not assignable");
    }
  }

  Type CheckExpr(Expr* expr) {
    Type t = CheckExprInner(expr);
    expr->type = t;
    return t;
  }

  Type CheckExprInner(Expr* expr) {
    switch (expr->kind) {
      case Expr::Kind::kIntLit:
        return types_->IntType();
      case Expr::Kind::kBoolLit:
        return types_->BoolType();
      case Expr::Kind::kNilLit:
        // Type adopted from context by RequireAssignable / comparisons.
        Fail(expr->line, "nil is only allowed in assignments and ==/!= comparisons");
      case Expr::Kind::kVarRef: {
        bool is_const = false;
        int64_t value = 0;
        Type type = LookupVar(expr->name, expr->line, &is_const, &value);
        if (is_const) {
          expr->is_const = true;
          expr->int_value = value;
        }
        return type;
      }
      case Expr::Kind::kUnary: {
        Type operand = CheckExpr(expr->lhs.get());
        if (expr->op == Tok::kBang) {
          if (operand != types_->BoolType()) {
            Fail(expr->line, "'!' requires bool");
          }
          return types_->BoolType();
        }
        if (operand != types_->IntType()) {
          Fail(expr->line, "unary '-' requires int");
        }
        return types_->IntType();
      }
      case Expr::Kind::kBinary:
        return CheckBinary(expr);
      case Expr::Kind::kField: {
        Type base = CheckExpr(expr->lhs.get());
        Type struct_type = base;
        if (types_->IsPtr(base)) {
          struct_type = types_->Pointee(base);
          expr->base_needs_deref = true;
        }
        if (!types_->IsStruct(struct_type)) {
          Fail(expr->line, "field access on non-struct type " + types_->ToString(base));
        }
        const StructDef& def = types_->GetStruct(struct_type);
        int index = def.FieldIndex(expr->name);
        if (index < 0) {
          Fail(expr->line, StrCat("no field '", expr->name, "' in ", def.name));
        }
        return def.fields[static_cast<size_t>(index)].type;
      }
      case Expr::Kind::kIndex: {
        Type base = CheckExpr(expr->lhs.get());
        if (!types_->IsList(base)) {
          Fail(expr->line, "indexing requires a slice, got " + types_->ToString(base));
        }
        Type index = CheckExpr(expr->rhs.get());
        if (index != types_->IntType()) {
          Fail(expr->line, "slice index must be int");
        }
        return types_->ListElement(base);
      }
      case Expr::Kind::kNew: {
        Type pointee = ResolveNow(*expr->type_expr);
        if (!types_->IsStruct(pointee)) {
          Fail(expr->line, "new(T) requires a struct type");
        }
        return types_->PtrTo(pointee);
      }
      case Expr::Kind::kMake:
        return ResolveNow(*expr->type_expr);
      case Expr::Kind::kCall:
        return CheckCall(expr);
    }
    Fail(expr->line, "bad expression");
  }

  Type CheckBinary(Expr* expr) {
    // nil comparisons: one side may be the nil literal.
    bool lhs_nil = expr->lhs->kind == Expr::Kind::kNilLit;
    bool rhs_nil = expr->rhs->kind == Expr::Kind::kNilLit;
    if (lhs_nil || rhs_nil) {
      if (expr->op != Tok::kEq && expr->op != Tok::kNe) {
        Fail(expr->line, "nil supports only == and !=");
      }
      if (lhs_nil && rhs_nil) {
        Fail(expr->line, "cannot compare nil with nil");
      }
      Expr* other = lhs_nil ? expr->rhs.get() : expr->lhs.get();
      Expr* nil_side = lhs_nil ? expr->lhs.get() : expr->rhs.get();
      Type other_type = CheckExpr(other);
      if (!types_->IsPtr(other_type)) {
        Fail(expr->line, "nil comparison requires a pointer operand");
      }
      nil_side->type = other_type;
      return types_->BoolType();
    }
    Type lhs = CheckExpr(expr->lhs.get());
    Type rhs = CheckExpr(expr->rhs.get());
    switch (expr->op) {
      case Tok::kPlus: case Tok::kMinus: case Tok::kStar:
      case Tok::kSlash: case Tok::kPercent:
        if (lhs != types_->IntType() || rhs != types_->IntType()) {
          Fail(expr->line, "arithmetic requires int operands");
        }
        return types_->IntType();
      case Tok::kLt: case Tok::kLe: case Tok::kGt: case Tok::kGe:
        if (lhs != types_->IntType() || rhs != types_->IntType()) {
          Fail(expr->line, "ordering comparison requires int operands");
        }
        return types_->BoolType();
      case Tok::kEq: case Tok::kNe:
        if (lhs != rhs) {
          Fail(expr->line, StrCat("cannot compare ", types_->ToString(lhs), " with ",
                                  types_->ToString(rhs)));
        }
        if (lhs != types_->IntType() && lhs != types_->BoolType() && !types_->IsPtr(lhs)) {
          Fail(expr->line,
               "==/!= requires int, bool, or pointer operands (use listEq for slices)");
        }
        return types_->BoolType();
      case Tok::kAndAnd: case Tok::kOrOr:
        if (lhs != types_->BoolType() || rhs != types_->BoolType()) {
          Fail(expr->line, "&&/|| require bool operands");
        }
        return types_->BoolType();
      default:
        Fail(expr->line, "bad binary operator");
    }
  }

  Type CheckCall(Expr* expr) {
    auto arg = [&](size_t i) { return expr->args[i].get(); };
    if (expr->name == "len") {
      if (expr->args.size() != 1) {
        Fail(expr->line, "len takes one argument");
      }
      Type t = CheckExpr(arg(0));
      if (!types_->IsList(t)) {
        Fail(expr->line, "len requires a slice");
      }
      return types_->IntType();
    }
    if (expr->name == "append") {
      if (expr->args.size() != 2) {
        Fail(expr->line, "append takes (slice, element)");
      }
      Type list = CheckExpr(arg(0));
      if (!types_->IsList(list)) {
        Fail(expr->line, "append requires a slice");
      }
      Type elem = CheckExpr(arg(1));
      if (elem != types_->ListElement(list)) {
        Fail(expr->line, "append element type mismatch");
      }
      return list;
    }
    if (expr->name == "listEq") {
      if (expr->args.size() != 2) {
        Fail(expr->line, "listEq takes two slices");
      }
      Type a = CheckExpr(arg(0));
      Type b = CheckExpr(arg(1));
      if (!types_->IsList(a) || a != b) {
        Fail(expr->line, "listEq requires two slices of the same type");
      }
      if (types_->ListElement(a) != types_->IntType()) {
        Fail(expr->line, "listEq supports []int (label lists) only");
      }
      return types_->BoolType();
    }
    auto it = checked_.funcs.find(expr->name);
    if (it == checked_.funcs.end()) {
      Fail(expr->line, "undefined function: " + expr->name);
    }
    const FuncSignature& sig = it->second;
    if (expr->args.size() != sig.param_types.size()) {
      Fail(expr->line, StrCat("call to ", expr->name, " expects ", sig.param_types.size(),
                              " arguments, got ", expr->args.size()));
    }
    for (size_t i = 0; i < expr->args.size(); ++i) {
      if (arg(i)->kind == Expr::Kind::kNilLit) {
        if (!types_->IsPtr(sig.param_types[i])) {
          Fail(expr->line, "nil argument requires a pointer parameter");
        }
        arg(i)->type = sig.param_types[i];
        continue;
      }
      Type actual = CheckExpr(arg(i));
      if (actual != sig.param_types[i]) {
        Fail(expr->line, StrCat("argument ", i + 1, " of ", expr->name, ": expected ",
                                types_->ToString(sig.param_types[i]), ", got ",
                                types_->ToString(actual)));
      }
    }
    return sig.return_type;
  }

  ProgramAst* program_;
  TypeTable* types_;
  CheckedProgram checked_;
  std::vector<Scope> scopes_;
  const FuncSignature* current_fn_ = nullptr;
  int loop_depth_ = 0;
};

}  // namespace

Result<CheckedProgram> TypecheckMiniGo(ProgramAst* program, TypeTable* types) {
  try {
    Checker checker(program, types);
    return checker.Run();
  } catch (const DnsvError& e) {
    return Result<CheckedProgram>::Error(e.what());
  }
}

}  // namespace dnsv

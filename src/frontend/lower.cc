#include "src/frontend/lower.h"

#include <unordered_map>

#include "src/ir/builder.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

class FunctionLowerer {
 public:
  FunctionLowerer(Module* module, const CheckedProgram& checked, const FuncDecl& decl,
                  Function* fn)
      : module_(module), checked_(checked), decl_(decl), fn_(fn), builder_(module, fn) {}

  void Run() {
    BlockId entry = builder_.CreateBlock("entry");
    builder_.SetInsertPoint(entry);
    scopes_.push_back({});
    // Spill parameters so assignments to them work like Go locals.
    for (size_t i = 0; i < fn_->params().size(); ++i) {
      Operand slot = builder_.Alloca(fn_->params()[i].type);
      builder_.Store(slot, builder_.Param(static_cast<uint32_t>(i)));
      scopes_.back().emplace(fn_->params()[i].name, slot);
    }
    LowerBlock(decl_.body);
    scopes_.pop_back();
    if (!terminated_) {
      if (fn_->return_type() == types().VoidType()) {
        builder_.RetVoid();
      } else {
        // Go rejects this at compile time; we trap instead, and safety
        // verification proves the trap unreachable.
        builder_.Panic("missing return");
      }
    }
  }

 private:
  TypeTable& types() { return module_->types(); }

  // --- scope handling ---
  Operand LookupSlot(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return found->second;
      }
    }
    DNSV_CHECK_MSG(false, "lowering: unbound variable " + name);
    return {};
  }

  // Called before emitting a statement: if the current block has been closed
  // by a terminator, open an unreachable continuation block for dead code.
  void EnsureOpenBlock() {
    if (terminated_) {
      BlockId dead = builder_.CreateBlock(StrCat("dead.", dead_counter_++));
      builder_.SetInsertPoint(dead);
      terminated_ = false;
    }
  }

  // --- safety checks ---
  void EmitNilCheck(Operand ptr) {
    BlockId panic_block = builder_.GetPanicBlock("nil pointer dereference");
    BlockId cont = builder_.CreateBlock(StrCat("nilok.", check_counter_++));
    Operand is_nil =
        builder_.BinaryOp(BinOp::kPtrEq, ptr, builder_.Null(ptr.type), types().BoolType());
    builder_.Br(is_nil, panic_block, cont);
    builder_.SetInsertPoint(cont);
  }

  void EmitBoundsCheck(Operand index, Operand length) {
    BlockId panic_block = builder_.GetPanicBlock("index out of range");
    BlockId cont = builder_.CreateBlock(StrCat("inbounds.", check_counter_++));
    Operand neg = builder_.BinaryOp(BinOp::kLt, index, builder_.Int(0), types().BoolType());
    Operand too_big = builder_.BinaryOp(BinOp::kGe, index, length, types().BoolType());
    Operand bad = builder_.BinaryOp(BinOp::kOr, neg, too_big, types().BoolType());
    builder_.Br(bad, panic_block, cont);
    builder_.SetInsertPoint(cont);
  }

  void EmitDivCheck(Operand divisor) {
    BlockId panic_block = builder_.GetPanicBlock("integer divide by zero");
    BlockId cont = builder_.CreateBlock(StrCat("divok.", check_counter_++));
    Operand zero = builder_.BinaryOp(BinOp::kEq, divisor, builder_.Int(0), types().BoolType());
    builder_.Br(zero, panic_block, cont);
    builder_.SetInsertPoint(cont);
  }

  // --- lvalues ---
  // Returns a pointer operand through which the lvalue can be loaded/stored.
  Operand LowerLvalue(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kVarRef:
        return LookupSlot(expr.name);
      case Expr::Kind::kField: {
        Operand base;
        Type struct_type;
        if (expr.base_needs_deref) {
          base = LowerExpr(*expr.lhs);  // pointer value
          EmitNilCheck(base);
          struct_type = types().Pointee(base.type);
        } else {
          base = LowerLvalue(*expr.lhs);  // pointer to struct in memory
          struct_type = types().Pointee(base.type);
        }
        const StructDef& def = types().GetStruct(struct_type);
        int index = def.FieldIndex(expr.name);
        DNSV_CHECK(index >= 0);
        return builder_.Gep(base, {builder_.Int(index)},
                            def.fields[static_cast<size_t>(index)].type);
      }
      case Expr::Kind::kIndex: {
        Operand base = LowerLvalue(*expr.lhs);  // pointer to list in memory
        Type list_type = types().Pointee(base.type);
        DNSV_CHECK(types().IsList(list_type));
        Operand index = LowerExpr(*expr.rhs);
        Operand list_value = builder_.Load(base);
        Operand length = builder_.ListLen(list_value);
        EmitBoundsCheck(index, length);
        return builder_.Gep(base, {index}, types().ListElement(list_type));
      }
      default:
        DNSV_CHECK_MSG(false, "lowering: not an lvalue");
        return {};
    }
  }

  // True when the expression denotes a memory location we can gep to.
  bool IsAddressable(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kVarRef:
        return !expr.is_const;
      case Expr::Kind::kField:
        return expr.base_needs_deref || IsAddressable(*expr.lhs);
      case Expr::Kind::kIndex:
        return IsAddressable(*expr.lhs);
      default:
        return false;
    }
  }

  // --- expressions ---
  Operand LowerExpr(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
        return builder_.Int(expr.int_value);
      case Expr::Kind::kBoolLit:
        return builder_.Bool(expr.bool_value);
      case Expr::Kind::kNilLit:
        return builder_.Null(expr.type);
      case Expr::Kind::kVarRef:
        if (expr.is_const) {
          return builder_.Int(expr.int_value);
        }
        return builder_.Load(LookupSlot(expr.name));
      case Expr::Kind::kUnary: {
        Operand operand = LowerExpr(*expr.lhs);
        if (expr.op == Tok::kBang) {
          return builder_.UnaryOp(UnOp::kNot, operand, types().BoolType());
        }
        return builder_.UnaryOp(UnOp::kNeg, operand, types().IntType());
      }
      case Expr::Kind::kBinary:
        return LowerBinary(expr);
      case Expr::Kind::kField: {
        if (expr.base_needs_deref || IsAddressable(*expr.lhs)) {
          return builder_.Load(LowerLvalue(expr));
        }
        // Rvalue struct (e.g. a list element): extract without memory traffic.
        Operand base = LowerExpr(*expr.lhs);
        const StructDef& def = types().GetStruct(base.type);
        int index = def.FieldIndex(expr.name);
        DNSV_CHECK(index >= 0);
        return builder_.FieldGet(base, index);
      }
      case Expr::Kind::kIndex: {
        Operand list = LowerExpr(*expr.lhs);
        Operand index = LowerExpr(*expr.rhs);
        Operand length = builder_.ListLen(list);
        EmitBoundsCheck(index, length);
        return builder_.ListGet(list, index);
      }
      case Expr::Kind::kNew:
        return builder_.NewObject(types().Pointee(expr.type));
      case Expr::Kind::kMake:
        return builder_.ListNew(types().ListElement(expr.type));
      case Expr::Kind::kCall:
        return LowerCall(expr);
    }
    DNSV_CHECK(false);
    return {};
  }

  Operand LowerBinary(const Expr& expr) {
    if (expr.op == Tok::kAndAnd || expr.op == Tok::kOrOr) {
      return LowerShortCircuit(expr);
    }
    Operand lhs = LowerExpr(*expr.lhs);
    Operand rhs = LowerExpr(*expr.rhs);
    Type bool_type = types().BoolType();
    Type int_type = types().IntType();
    bool ptr_cmp = types().IsPtr(lhs.type);
    bool bool_cmp = lhs.type == bool_type;
    switch (expr.op) {
      case Tok::kPlus:
        return builder_.BinaryOp(BinOp::kAdd, lhs, rhs, int_type);
      case Tok::kMinus:
        return builder_.BinaryOp(BinOp::kSub, lhs, rhs, int_type);
      case Tok::kStar:
        return builder_.BinaryOp(BinOp::kMul, lhs, rhs, int_type);
      case Tok::kSlash:
        EmitDivCheck(rhs);
        return builder_.BinaryOp(BinOp::kDiv, lhs, rhs, int_type);
      case Tok::kPercent:
        EmitDivCheck(rhs);
        return builder_.BinaryOp(BinOp::kMod, lhs, rhs, int_type);
      case Tok::kEq:
        return builder_.BinaryOp(
            ptr_cmp ? BinOp::kPtrEq : bool_cmp ? BinOp::kBoolEq : BinOp::kEq, lhs, rhs,
            bool_type);
      case Tok::kNe:
        return builder_.BinaryOp(
            ptr_cmp ? BinOp::kPtrNe : bool_cmp ? BinOp::kBoolNe : BinOp::kNe, lhs, rhs,
            bool_type);
      case Tok::kLt:
        return builder_.BinaryOp(BinOp::kLt, lhs, rhs, bool_type);
      case Tok::kLe:
        return builder_.BinaryOp(BinOp::kLe, lhs, rhs, bool_type);
      case Tok::kGt:
        return builder_.BinaryOp(BinOp::kGt, lhs, rhs, bool_type);
      case Tok::kGe:
        return builder_.BinaryOp(BinOp::kGe, lhs, rhs, bool_type);
      default:
        DNSV_CHECK(false);
        return {};
    }
  }

  Operand LowerShortCircuit(const Expr& expr) {
    // Lower `a && b` / `a || b` with control flow, like Go.
    Operand slot = builder_.Alloca(types().BoolType());
    BlockId eval_rhs = builder_.CreateBlock(StrCat("sc.rhs.", check_counter_));
    BlockId short_path = builder_.CreateBlock(StrCat("sc.short.", check_counter_));
    BlockId merge = builder_.CreateBlock(StrCat("sc.merge.", check_counter_));
    ++check_counter_;
    Operand lhs = LowerExpr(*expr.lhs);
    if (expr.op == Tok::kAndAnd) {
      builder_.Br(lhs, eval_rhs, short_path);
    } else {
      builder_.Br(lhs, short_path, eval_rhs);
    }
    builder_.SetInsertPoint(short_path);
    builder_.Store(slot, builder_.Bool(expr.op == Tok::kOrOr));
    builder_.Jmp(merge);
    builder_.SetInsertPoint(eval_rhs);
    Operand rhs = LowerExpr(*expr.rhs);
    builder_.Store(slot, rhs);
    builder_.Jmp(merge);
    builder_.SetInsertPoint(merge);
    return builder_.Load(slot);
  }

  Operand LowerCall(const Expr& expr) {
    if (expr.name == "len") {
      return builder_.ListLen(LowerExpr(*expr.args[0]));
    }
    if (expr.name == "append") {
      Operand list = LowerExpr(*expr.args[0]);
      Operand elem = LowerExpr(*expr.args[1]);
      return builder_.ListAppend(list, elem);
    }
    std::vector<Operand> args;
    args.reserve(expr.args.size());
    for (const auto& arg : expr.args) {
      args.push_back(LowerExpr(*arg));
    }
    return builder_.Call(expr.name, args, expr.type);
  }

  // --- statements ---
  void LowerBlock(const std::vector<std::unique_ptr<Stmt>>& stmts) {
    scopes_.push_back({});
    for (const auto& stmt : stmts) {
      EnsureOpenBlock();
      LowerStmt(*stmt);
    }
    scopes_.pop_back();
  }

  void LowerStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kVarDecl: {
        Operand slot = builder_.Alloca(stmt.decl_ir_type);
        if (stmt.init != nullptr) {
          builder_.Store(slot, LowerExpr(*stmt.init));
        } else {
          builder_.Store(slot, ZeroValue(stmt.decl_ir_type));
        }
        scopes_.back().emplace(stmt.name, slot);
        break;
      }
      case Stmt::Kind::kShortDecl: {
        Operand value = LowerExpr(*stmt.init);
        Operand slot = builder_.Alloca(stmt.decl_ir_type);
        builder_.Store(slot, value);
        scopes_.back().emplace(stmt.name, slot);
        break;
      }
      case Stmt::Kind::kAssign: {
        Operand target = LowerLvalue(*stmt.lhs);
        Operand value = LowerExpr(*stmt.init);
        builder_.Store(target, value);
        break;
      }
      case Stmt::Kind::kIf:
        LowerIf(stmt);
        break;
      case Stmt::Kind::kFor:
        LowerFor(stmt);
        break;
      case Stmt::Kind::kReturn:
        if (stmt.init != nullptr) {
          builder_.Ret(LowerExpr(*stmt.init));
        } else {
          builder_.RetVoid();
        }
        terminated_ = true;
        break;
      case Stmt::Kind::kBreak:
        DNSV_CHECK(!loop_stack_.empty());
        builder_.Jmp(loop_stack_.back().break_target);
        terminated_ = true;
        break;
      case Stmt::Kind::kContinue:
        DNSV_CHECK(!loop_stack_.empty());
        builder_.Jmp(loop_stack_.back().continue_target);
        terminated_ = true;
        break;
      case Stmt::Kind::kExpr:
        LowerExpr(*stmt.init);
        break;
      case Stmt::Kind::kPanic:
        builder_.Panic(stmt.text);
        terminated_ = true;
        break;
      case Stmt::Kind::kBlock:
        LowerBlock(stmt.body);
        break;
    }
  }

  void LowerIf(const Stmt& stmt) {
    int id = block_counter_++;
    BlockId then_bb = builder_.CreateBlock(StrCat("if.then.", id));
    BlockId else_bb = builder_.CreateBlock(StrCat("if.else.", id));
    Operand cond = LowerExpr(*stmt.cond);
    builder_.Br(cond, then_bb, else_bb);

    builder_.SetInsertPoint(then_bb);
    terminated_ = false;
    LowerBlock(stmt.body);
    bool then_falls = !terminated_;
    BlockId then_end = builder_.insert_point();

    builder_.SetInsertPoint(else_bb);
    terminated_ = false;
    LowerBlock(stmt.else_body);
    bool else_falls = !terminated_;
    BlockId else_end = builder_.insert_point();

    if (!then_falls && !else_falls) {
      terminated_ = true;
      return;
    }
    BlockId join = builder_.CreateBlock(StrCat("if.join.", id));
    if (then_falls) {
      builder_.SetInsertPoint(then_end);
      builder_.Jmp(join);
    }
    if (else_falls) {
      builder_.SetInsertPoint(else_end);
      builder_.Jmp(join);
    }
    builder_.SetInsertPoint(join);
    terminated_ = false;
  }

  void LowerFor(const Stmt& stmt) {
    int id = block_counter_++;
    scopes_.push_back({});  // scope for the init variable
    if (stmt.for_init != nullptr) {
      LowerStmt(*stmt.for_init);
    }
    BlockId cond_bb = builder_.CreateBlock(StrCat("for.cond.", id));
    BlockId body_bb = builder_.CreateBlock(StrCat("for.body.", id));
    BlockId post_bb = builder_.CreateBlock(StrCat("for.post.", id));
    BlockId exit_bb = builder_.CreateBlock(StrCat("for.exit.", id));
    builder_.Jmp(cond_bb);

    builder_.SetInsertPoint(cond_bb);
    if (stmt.cond != nullptr) {
      Operand cond = LowerExpr(*stmt.cond);
      builder_.Br(cond, body_bb, exit_bb);
    } else {
      builder_.Jmp(body_bb);
    }

    builder_.SetInsertPoint(body_bb);
    terminated_ = false;
    loop_stack_.push_back({exit_bb, post_bb});
    LowerBlock(stmt.body);
    loop_stack_.pop_back();
    if (!terminated_) {
      builder_.Jmp(post_bb);
    }

    builder_.SetInsertPoint(post_bb);
    terminated_ = false;
    if (stmt.for_post != nullptr) {
      LowerStmt(*stmt.for_post);
    }
    builder_.Jmp(cond_bb);

    builder_.SetInsertPoint(exit_bb);
    terminated_ = false;
    scopes_.pop_back();
  }

  // Go zero values: 0, false, nil, empty slice, zeroed struct. Struct-typed
  // locals are zeroed field by field through a temporary slot.
  Operand ZeroValue(Type type) {
    TypeTable& tt = types();
    switch (tt.kind(type)) {
      case TypeKind::kInt:
        return builder_.Int(0);
      case TypeKind::kBool:
        return builder_.Bool(false);
      case TypeKind::kPtr:
        return builder_.Null(type);
      case TypeKind::kList:
        return builder_.ListNew(tt.ListElement(type));
      case TypeKind::kStruct: {
        Operand slot = builder_.Alloca(type);
        const StructDef& def = tt.GetStruct(type);
        for (size_t i = 0; i < def.fields.size(); ++i) {
          Operand field_ptr =
              builder_.Gep(slot, {builder_.Int(static_cast<int64_t>(i))}, def.fields[i].type);
          builder_.Store(field_ptr, ZeroValue(def.fields[i].type));
        }
        return builder_.Load(slot);
      }
      default:
        DNSV_CHECK(false);
        return {};
    }
  }

  struct LoopTargets {
    BlockId break_target;
    BlockId continue_target;
  };

  Module* module_;
  const CheckedProgram& checked_;
  const FuncDecl& decl_;
  Function* fn_;
  IrBuilder builder_;
  std::vector<std::unordered_map<std::string, Operand>> scopes_;
  std::vector<LoopTargets> loop_stack_;
  bool terminated_ = false;
  int check_counter_ = 0;
  int block_counter_ = 0;
  int dead_counter_ = 0;
};

}  // namespace

Status LowerMiniGo(const ProgramAst& program, const CheckedProgram& checked, Module* module) {
  // Declare all functions first so calls resolve in any order.
  for (const FuncDecl& decl : program.funcs) {
    const FuncSignature& sig = checked.funcs.at(decl.name);
    std::vector<Param> params;
    for (size_t i = 0; i < sig.param_types.size(); ++i) {
      params.push_back({sig.param_names[i], sig.param_types[i]});
    }
    module->AddFunction(decl.name, std::move(params), sig.return_type);
  }
  for (const FuncDecl& decl : program.funcs) {
    Function* fn = module->GetFunction(decl.name);
    FunctionLowerer lowerer(module, checked, decl, fn);
    lowerer.Run();
  }
  return Status::Ok();
}

}  // namespace dnsv

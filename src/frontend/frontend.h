// One-call MiniGo compilation pipeline: lex -> parse -> typecheck -> lower.
#ifndef DNSV_FRONTEND_FRONTEND_H_
#define DNSV_FRONTEND_FRONTEND_H_

#include <string>
#include <utility>
#include <vector>

#include "src/frontend/typecheck.h"
#include "src/ir/function.h"
#include "src/support/status.h"

namespace dnsv {

struct CompileOutput {
  CheckedProgram checked;
};

// Compiles the given (file name, source) units as one package into `module`.
// The module's TypeTable receives all struct definitions. Validates the
// emitted IR before returning.
Result<CompileOutput> CompileMiniGo(
    const std::vector<std::pair<std::string, std::string>>& sources, Module* module);

}  // namespace dnsv

#endif  // DNSV_FRONTEND_FRONTEND_H_

#include "src/frontend/parser.h"

#include "src/frontend/lexer.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string file_name)
      : tokens_(std::move(tokens)), file_(std::move(file_name)) {}

  // Throws DnsvError on syntax errors; caller converts to Result.
  void ParseInto(ProgramAst* program) {
    while (!At(Tok::kEof)) {
      SkipSemis();
      if (At(Tok::kEof)) {
        break;
      }
      if (At(Tok::kTypeKw)) {
        program->structs.push_back(ParseStructDecl());
      } else if (At(Tok::kConst)) {
        program->consts.push_back(ParseConstDecl());
      } else if (At(Tok::kFunc)) {
        program->funcs.push_back(ParseFuncDecl());
        program->funcs.back().file = file_;
      } else {
        Fail(StrCat("expected declaration, found ", TokName(Cur().kind)));
      }
    }
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    throw DnsvError(StrCat(file_, ":", Cur().line, ":", Cur().column, ": ", what));
  }
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(Tok kind) const { return Cur().kind == kind; }
  Token Advance() { return tokens_[pos_++]; }
  Token Expect(Tok kind) {
    if (!At(kind)) {
      Fail(StrCat("expected ", TokName(kind), ", found ", TokName(Cur().kind)));
    }
    return Advance();
  }
  bool Accept(Tok kind) {
    if (At(kind)) {
      Advance();
      return true;
    }
    return false;
  }
  void SkipSemis() {
    while (At(Tok::kSemi)) {
      Advance();
    }
  }

  std::unique_ptr<TypeExpr> ParseType() {
    auto type = std::make_unique<TypeExpr>();
    type->line = Cur().line;
    if (Accept(Tok::kStar)) {
      type->kind = TypeExpr::Kind::kPtr;
      type->elem = ParseType();
      return type;
    }
    if (Accept(Tok::kLBracket)) {
      Expect(Tok::kRBracket);
      type->kind = TypeExpr::Kind::kList;
      type->elem = ParseType();
      return type;
    }
    type->kind = TypeExpr::Kind::kNamed;
    type->name = Expect(Tok::kIdent).text;
    return type;
  }

  StructDecl ParseStructDecl() {
    StructDecl decl;
    decl.line = Expect(Tok::kTypeKw).line;
    decl.name = Expect(Tok::kIdent).text;
    Expect(Tok::kStruct);
    Expect(Tok::kLBrace);
    SkipSemis();
    while (!At(Tok::kRBrace)) {
      FieldDecl field;
      field.line = Cur().line;
      field.name = Expect(Tok::kIdent).text;
      field.type = ParseType();
      decl.fields.push_back(std::move(field));
      if (!At(Tok::kRBrace)) {
        Expect(Tok::kSemi);
        SkipSemis();
      }
    }
    Expect(Tok::kRBrace);
    return decl;
  }

  ConstDecl ParseConstDecl() {
    ConstDecl decl;
    decl.line = Expect(Tok::kConst).line;
    decl.name = Expect(Tok::kIdent).text;
    Expect(Tok::kAssign);
    bool negative = Accept(Tok::kMinus);
    Token value = Expect(Tok::kIntLit);
    decl.value = negative ? -value.int_value : value.int_value;
    return decl;
  }

  FuncDecl ParseFuncDecl() {
    FuncDecl decl;
    decl.line = Expect(Tok::kFunc).line;
    decl.name = Expect(Tok::kIdent).text;
    Expect(Tok::kLParen);
    if (!At(Tok::kRParen)) {
      while (true) {
        ParamDecl param;
        param.line = Cur().line;
        param.name = Expect(Tok::kIdent).text;
        param.type = ParseType();
        decl.params.push_back(std::move(param));
        if (!Accept(Tok::kComma)) {
          break;
        }
      }
    }
    Expect(Tok::kRParen);
    if (!At(Tok::kLBrace)) {
      decl.return_type = ParseType();
    }
    decl.body = ParseBlock();
    return decl;
  }

  std::vector<std::unique_ptr<Stmt>> ParseBlock() {
    Expect(Tok::kLBrace);
    std::vector<std::unique_ptr<Stmt>> stmts;
    SkipSemis();
    while (!At(Tok::kRBrace)) {
      stmts.push_back(ParseStmt());
      SkipSemis();
    }
    Expect(Tok::kRBrace);
    return stmts;
  }

  std::unique_ptr<Stmt> NewStmt(Stmt::Kind kind) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = kind;
    stmt->line = Cur().line;
    return stmt;
  }

  std::unique_ptr<Stmt> ParseStmt() {
    switch (Cur().kind) {
      case Tok::kVar: {
        auto stmt = NewStmt(Stmt::Kind::kVarDecl);
        Advance();
        stmt->name = Expect(Tok::kIdent).text;
        stmt->decl_type = ParseType();
        if (Accept(Tok::kAssign)) {
          stmt->init = ParseExpr();
        }
        return stmt;
      }
      case Tok::kIf:
        return ParseIf();
      case Tok::kFor:
        return ParseFor();
      case Tok::kReturn: {
        auto stmt = NewStmt(Stmt::Kind::kReturn);
        Advance();
        if (!At(Tok::kSemi) && !At(Tok::kRBrace)) {
          stmt->init = ParseExpr();
        }
        return stmt;
      }
      case Tok::kBreak: {
        auto stmt = NewStmt(Stmt::Kind::kBreak);
        Advance();
        return stmt;
      }
      case Tok::kContinue: {
        auto stmt = NewStmt(Stmt::Kind::kContinue);
        Advance();
        return stmt;
      }
      case Tok::kPanicKw: {
        auto stmt = NewStmt(Stmt::Kind::kPanic);
        Advance();
        Expect(Tok::kLParen);
        stmt->text = Expect(Tok::kStringLit).text;
        Expect(Tok::kRParen);
        return stmt;
      }
      case Tok::kLBrace: {
        auto stmt = NewStmt(Stmt::Kind::kBlock);
        stmt->body = ParseBlock();
        return stmt;
      }
      case Tok::kAmp:
        Fail("MiniGo does not support '&' (no address-of; allocate with new(T))");
      default:
        return ParseSimpleStmt();
    }
  }

  // simpleStmt := expr | lvalue '=' expr | ident ':=' expr
  std::unique_ptr<Stmt> ParseSimpleStmt() {
    int line = Cur().line;
    std::unique_ptr<Expr> expr = ParseExpr();
    if (At(Tok::kColonEq)) {
      if (expr->kind != Expr::Kind::kVarRef) {
        Fail("left side of ':=' must be an identifier");
      }
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kShortDecl;
      stmt->line = line;
      stmt->name = expr->name;
      Advance();
      stmt->init = ParseExpr();
      return stmt;
    }
    if (At(Tok::kAssign)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kAssign;
      stmt->line = line;
      stmt->lhs = std::move(expr);
      Advance();
      stmt->init = ParseExpr();
      return stmt;
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kExpr;
    stmt->line = line;
    stmt->init = std::move(expr);
    return stmt;
  }

  std::unique_ptr<Stmt> ParseIf() {
    auto stmt = NewStmt(Stmt::Kind::kIf);
    Expect(Tok::kIf);
    stmt->cond = ParseExpr();
    stmt->body = ParseBlock();
    if (Accept(Tok::kElse)) {
      if (At(Tok::kIf)) {
        stmt->else_body.push_back(ParseIf());
      } else {
        stmt->else_body = ParseBlock();
      }
    }
    return stmt;
  }

  std::unique_ptr<Stmt> ParseFor() {
    auto stmt = NewStmt(Stmt::Kind::kFor);
    Expect(Tok::kFor);
    if (At(Tok::kLBrace)) {
      // for { ... } — no condition (must exit via break/return).
      stmt->body = ParseBlock();
      return stmt;
    }
    // Distinguish `for cond {` from `for init; cond; post {` by parsing a
    // simple statement and checking for ';'.
    std::unique_ptr<Stmt> first = ParseSimpleStmt();
    if (At(Tok::kSemi)) {
      Advance();
      stmt->for_init = std::move(first);
      if (!At(Tok::kSemi)) {
        stmt->cond = ParseExpr();
      }
      Expect(Tok::kSemi);
      if (!At(Tok::kLBrace)) {
        stmt->for_post = ParseSimpleStmt();
      }
      stmt->body = ParseBlock();
      return stmt;
    }
    if (first->kind != Stmt::Kind::kExpr) {
      Fail("for-loop condition must be an expression");
    }
    stmt->cond = std::move(first->init);
    stmt->body = ParseBlock();
    return stmt;
  }

  // --- expressions (precedence climbing) ---

  std::unique_ptr<Expr> NewExpr(Expr::Kind kind) {
    auto expr = std::make_unique<Expr>();
    expr->kind = kind;
    expr->line = Cur().line;
    expr->column = Cur().column;
    return expr;
  }

  std::unique_ptr<Expr> ParseExpr() { return ParseBinary(0); }

  static int Precedence(Tok op) {
    switch (op) {
      case Tok::kOrOr: return 1;
      case Tok::kAndAnd: return 2;
      case Tok::kEq: case Tok::kNe: case Tok::kLt: case Tok::kLe:
      case Tok::kGt: case Tok::kGe: return 3;
      case Tok::kPlus: case Tok::kMinus: return 4;
      case Tok::kStar: case Tok::kSlash: case Tok::kPercent: return 5;
      default: return 0;
    }
  }

  std::unique_ptr<Expr> ParseBinary(int min_prec) {
    std::unique_ptr<Expr> lhs = ParseUnary();
    while (true) {
      int prec = Precedence(Cur().kind);
      if (prec == 0 || prec < min_prec) {
        return lhs;
      }
      Tok op = Advance().kind;
      std::unique_ptr<Expr> rhs = ParseBinary(prec + 1);
      auto bin = std::make_unique<Expr>();
      bin->kind = Expr::Kind::kBinary;
      bin->line = lhs->line;
      bin->column = lhs->column;
      bin->op = op;
      bin->lhs = std::move(lhs);
      bin->rhs = std::move(rhs);
      lhs = std::move(bin);
    }
  }

  std::unique_ptr<Expr> ParseUnary() {
    if (At(Tok::kBang) || At(Tok::kMinus)) {
      auto expr = NewExpr(Expr::Kind::kUnary);
      expr->op = Advance().kind;
      expr->lhs = ParseUnary();
      return expr;
    }
    if (At(Tok::kAmp)) {
      Fail("MiniGo does not support '&' (no address-of; allocate with new(T))");
    }
    if (At(Tok::kStar)) {
      Fail("MiniGo does not support pointer dereference '*p' (access fields directly: p.f)");
    }
    return ParsePostfix();
  }

  std::unique_ptr<Expr> ParsePostfix() {
    std::unique_ptr<Expr> expr = ParsePrimary();
    while (true) {
      if (Accept(Tok::kDot)) {
        auto field = std::make_unique<Expr>();
        field->kind = Expr::Kind::kField;
        field->line = expr->line;
        field->column = expr->column;
        field->name = Expect(Tok::kIdent).text;
        field->lhs = std::move(expr);
        expr = std::move(field);
        continue;
      }
      if (Accept(Tok::kLBracket)) {
        auto index = std::make_unique<Expr>();
        index->kind = Expr::Kind::kIndex;
        index->line = expr->line;
        index->column = expr->column;
        index->lhs = std::move(expr);
        index->rhs = ParseExpr();
        Expect(Tok::kRBracket);
        expr = std::move(index);
        continue;
      }
      return expr;
    }
  }

  std::unique_ptr<Expr> ParsePrimary() {
    switch (Cur().kind) {
      case Tok::kIntLit: {
        auto expr = NewExpr(Expr::Kind::kIntLit);
        expr->int_value = Advance().int_value;
        return expr;
      }
      case Tok::kTrue:
      case Tok::kFalse: {
        auto expr = NewExpr(Expr::Kind::kBoolLit);
        expr->bool_value = Advance().kind == Tok::kTrue;
        return expr;
      }
      case Tok::kNil: {
        auto expr = NewExpr(Expr::Kind::kNilLit);
        Advance();
        return expr;
      }
      case Tok::kLParen: {
        Advance();
        std::unique_ptr<Expr> inner = ParseExpr();
        Expect(Tok::kRParen);
        return inner;
      }
      case Tok::kIdent: {
        Token ident = Advance();
        if (ident.text == "new" && At(Tok::kLParen)) {
          auto expr = NewExpr(Expr::Kind::kNew);
          expr->line = ident.line;
          Advance();
          expr->type_expr = ParseType();
          Expect(Tok::kRParen);
          return expr;
        }
        if (ident.text == "make" && At(Tok::kLParen)) {
          auto expr = NewExpr(Expr::Kind::kMake);
          expr->line = ident.line;
          Advance();
          expr->type_expr = ParseType();
          if (expr->type_expr->kind != TypeExpr::Kind::kList) {
            Fail("make() supports only slice types: make([]T)");
          }
          // Optional Go-style length argument; must be 0 when present.
          if (Accept(Tok::kComma)) {
            Token len = Expect(Tok::kIntLit);
            if (len.int_value != 0) {
              Fail("make([]T, n) supports only n == 0");
            }
          }
          Expect(Tok::kRParen);
          return expr;
        }
        if (At(Tok::kLParen)) {
          auto expr = NewExpr(Expr::Kind::kCall);
          expr->line = ident.line;
          expr->name = ident.text;
          Advance();
          if (!At(Tok::kRParen)) {
            while (true) {
              expr->args.push_back(ParseExpr());
              if (!Accept(Tok::kComma)) {
                break;
              }
            }
          }
          Expect(Tok::kRParen);
          return expr;
        }
        auto expr = NewExpr(Expr::Kind::kVarRef);
        expr->line = ident.line;
        expr->column = ident.column;
        expr->name = ident.text;
        return expr;
      }
      default:
        Fail(StrCat("expected expression, found ", TokName(Cur().kind)));
    }
  }

  std::vector<Token> tokens_;
  std::string file_;
  size_t pos_ = 0;
};

}  // namespace

Result<ProgramAst> ParseMiniGo(std::string_view source, const std::string& file_name) {
  return ParseMiniGoSources({{file_name, std::string(source)}});
}

Result<ProgramAst> ParseMiniGoSources(
    const std::vector<std::pair<std::string, std::string>>& name_and_source) {
  ProgramAst program;
  for (const auto& [name, source] : name_and_source) {
    Result<std::vector<Token>> tokens = LexMiniGo(source, name);
    if (!tokens.ok()) {
      return Result<ProgramAst>::Error(tokens.error());
    }
    try {
      Parser parser(std::move(tokens).value(), name);
      parser.ParseInto(&program);
    } catch (const DnsvError& e) {
      return Result<ProgramAst>::Error(e.what());
    }
  }
  return program;
}

}  // namespace dnsv

#include "src/frontend/frontend.h"

#include "src/frontend/lower.h"
#include "src/frontend/parser.h"
#include "src/ir/validate.h"

namespace dnsv {

Result<CompileOutput> CompileMiniGo(
    const std::vector<std::pair<std::string, std::string>>& sources, Module* module) {
  Result<ProgramAst> ast = ParseMiniGoSources(sources);
  if (!ast.ok()) {
    return Result<CompileOutput>::Error(ast.error());
  }
  ProgramAst program = std::move(ast).value();
  Result<CheckedProgram> checked = TypecheckMiniGo(&program, &module->types());
  if (!checked.ok()) {
    return Result<CompileOutput>::Error(checked.error());
  }
  Status lowered = LowerMiniGo(program, checked.value(), module);
  if (!lowered.ok()) {
    return Result<CompileOutput>::Error(lowered.message());
  }
  Status valid = ValidateModule(*module);
  if (!valid.ok()) {
    return Result<CompileOutput>::Error("internal: lowered IR invalid: " + valid.message());
  }
  CompileOutput output;
  output.checked = std::move(checked).value();
  return output;
}

}  // namespace dnsv

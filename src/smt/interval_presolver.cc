#include "src/smt/interval_presolver.h"

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/analysis/interval.h"
#include "src/support/logging.h"

namespace dnsv {
namespace {

// Constants this close to the int64 extremes would collide with the interval
// lattice's infinity sentinels (which absorb the concrete extremes) or
// overflow the ±1 adjustments below; such queries fall through to Z3.
bool SafeConst(int64_t v) {
  return v > Interval::kNegInf + 2 && v < Interval::kPosInf - 2;
}

enum class CmpOp { kLt, kLe, kEq, kNe };

struct Atom {
  CmpOp op;
  Term lhs;
  Term rhs;
};

// One-shot decision over a conjunction; see the header for the procedure.
class Decider {
 public:
  explicit Decider(const TermArena& arena) : arena_(arena) {}

  std::optional<SatResult> Decide(const std::vector<Term>& terms) {
    for (Term t : terms) {
      if (!AddConjunct(t, /*negated=*/false)) {
        bail_ = true;
      }
    }
    // A contradiction among the decidable literals refutes the whole
    // conjunction even when other literals were outside the fragment.
    if (unsat_) return SatResult::kUnsat;
    if (bail_) return std::nullopt;

    // Phase 2: compound atoms under the phase-1 intervals. Provably-false
    // beats undecided (same reasoning as above), so scan all atoms first.
    bool undecided = false;
    for (const Atom& atom : residual_) {
      std::optional<Interval> lhs = Eval(atom.lhs);
      std::optional<Interval> rhs = Eval(atom.rhs);
      if (!lhs || !rhs) {
        undecided = true;
        continue;
      }
      switch (Judge(atom.op, *lhs, *rhs)) {
        case Verdict::kFalse:
          return SatResult::kUnsat;
        case Verdict::kTrue:
          break;
        case Verdict::kUndecided:
          undecided = true;
          break;
      }
    }
    if (undecided) return std::nullopt;

    // Every literal is decided; SAT iff each variable's interval retains a
    // point outside its exclusion set (any such per-variable assignment
    // satisfies the conjunction, since the surviving phase-2 atoms hold for
    // all values in the intervals).
    for (const auto& [var_id, iv] : intervals_) {
      auto it = exclusions_.find(var_id);
      static const std::set<int64_t> kNoExclusions;
      if (!HasWitness(iv, it == exclusions_.end() ? kNoExclusions : it->second)) {
        return SatResult::kUnsat;
      }
    }
    // Variables with only exclusions keep an unbounded interval, which always
    // retains a witness; boolean assignments are consistent by construction.
    return SatResult::kSat;
  }

 private:
  enum class Verdict { kTrue, kFalse, kUndecided };

  // Returns false when the conjunct is outside the decidable fragment.
  bool AddConjunct(Term t, bool negated) {
    const TermNode& n = arena_.node(t);
    switch (n.kind) {
      case TermKind::kBoolConst:
        if ((n.int_value != 0) == negated) unsat_ = true;
        return true;
      case TermKind::kNot:
        return AddConjunct(n.operands[0], !negated);
      case TermKind::kVar: {
        bool value = !negated;
        auto [it, inserted] = bool_values_.emplace(t.id(), value);
        if (!inserted && it->second != value) unsat_ = true;
        return true;
      }
      case TermKind::kAnd: {
        if (negated) return false;  // ¬(a ∧ b) is a disjunction
        bool ok = true;
        for (Term op : n.operands) ok = AddConjunct(op, false) && ok;
        return ok;
      }
      case TermKind::kLt:
        return negated ? AddAtom(CmpOp::kLe, n.operands[1], n.operands[0])
                       : AddAtom(CmpOp::kLt, n.operands[0], n.operands[1]);
      case TermKind::kLe:
        return negated ? AddAtom(CmpOp::kLt, n.operands[1], n.operands[0])
                       : AddAtom(CmpOp::kLe, n.operands[0], n.operands[1]);
      case TermKind::kEq:
        return AddAtom(negated ? CmpOp::kNe : CmpOp::kEq, n.operands[0], n.operands[1]);
      default:
        return false;  // kOr, kBoolEq, and anything non-boolean
    }
  }

  bool AddAtom(CmpOp op, Term lhs, Term rhs) {
    const TermNode& ln = arena_.node(lhs);
    const TermNode& rn = arena_.node(rhs);
    bool lhs_var = ln.kind == TermKind::kVar;
    bool rhs_var = rn.kind == TermKind::kVar;
    bool lhs_const = ln.kind == TermKind::kIntConst;
    bool rhs_const = rn.kind == TermKind::kIntConst;
    if (lhs_const && rhs_const) {
      bool holds = false;
      switch (op) {
        case CmpOp::kLt: holds = ln.int_value < rn.int_value; break;
        case CmpOp::kLe: holds = ln.int_value <= rn.int_value; break;
        case CmpOp::kEq: holds = ln.int_value == rn.int_value; break;
        case CmpOp::kNe: holds = ln.int_value != rn.int_value; break;
      }
      if (!holds) unsat_ = true;
      return true;
    }
    if (lhs_var && rhs_const) return RefineVarConst(op, lhs, rn.int_value, /*var_on_left=*/true);
    if (lhs_const && rhs_var) return RefineVarConst(op, rhs, ln.int_value, /*var_on_left=*/false);
    residual_.push_back({op, lhs, rhs});
    return true;
  }

  // Handles var ⋈ const (var_on_left) and const ⋈ var literals.
  bool RefineVarConst(CmpOp op, Term var, int64_t c, bool var_on_left) {
    if (!SafeConst(c)) return false;
    switch (op) {
      case CmpOp::kLt:
        return MeetVar(var, var_on_left ? Interval{Interval::kNegInf, c - 1}
                                        : Interval{c + 1, Interval::kPosInf});
      case CmpOp::kLe:
        return MeetVar(var, var_on_left ? Interval{Interval::kNegInf, c}
                                        : Interval{c, Interval::kPosInf});
      case CmpOp::kEq:
        return MeetVar(var, Interval::Const(c));
      case CmpOp::kNe:
        exclusions_[var.id()].insert(c);
        return true;
    }
    return false;
  }

  bool MeetVar(Term var, Interval refinement) {
    auto [it, inserted] = intervals_.emplace(var.id(), Interval::Top());
    std::optional<Interval> met = Meet(it->second, refinement);
    if (!met) {
      unsat_ = true;
    } else {
      it->second = *met;
    }
    return true;
  }

  // Interval of an integer expression under the phase-1 intervals; nullopt
  // outside the +,-,* fragment. (Ignoring exclusion sets here is sound: they
  // only shrink each variable's feasible set, so the interval still
  // over-approximates it.)
  std::optional<Interval> Eval(Term t) {
    const TermNode& n = arena_.node(t);
    switch (n.kind) {
      case TermKind::kIntConst:
        if (!SafeConst(n.int_value)) return std::nullopt;
        return Interval::Const(n.int_value);
      case TermKind::kVar: {
        if (n.sort != Sort::kInt) return std::nullopt;
        auto it = intervals_.find(t.id());
        return it == intervals_.end() ? Interval::Top() : it->second;
      }
      case TermKind::kAdd:
      case TermKind::kSub:
      case TermKind::kMul: {
        std::optional<Interval> acc = Eval(n.operands[0]);
        for (size_t i = 1; acc && i < n.operands.size(); ++i) {
          std::optional<Interval> next = Eval(n.operands[i]);
          if (!next) return std::nullopt;
          switch (n.kind) {
            case TermKind::kAdd: acc = IntervalAdd(*acc, *next); break;
            case TermKind::kSub: acc = IntervalSub(*acc, *next); break;
            default: acc = IntervalMul(*acc, *next); break;
          }
        }
        return acc;
      }
      default:
        return std::nullopt;  // div/mod/ite need relational reasoning
    }
  }

  static Verdict Judge(CmpOp op, const Interval& a, const Interval& b) {
    switch (op) {
      case CmpOp::kLt:
        if (ProvablyLt(a, b)) return Verdict::kTrue;
        if (ProvablyLe(b, a)) return Verdict::kFalse;
        return Verdict::kUndecided;
      case CmpOp::kLe:
        if (ProvablyLe(a, b)) return Verdict::kTrue;
        if (ProvablyLt(b, a)) return Verdict::kFalse;
        return Verdict::kUndecided;
      case CmpOp::kEq:
        if (a.IsConst() && b.IsConst() && a == b) return Verdict::kTrue;
        if (ProvablyNe(a, b)) return Verdict::kFalse;
        return Verdict::kUndecided;
      case CmpOp::kNe:
        if (ProvablyNe(a, b)) return Verdict::kTrue;
        if (a.IsConst() && b.IsConst() && a == b) return Verdict::kFalse;
        return Verdict::kUndecided;
    }
    return Verdict::kUndecided;
  }

  static bool HasWitness(const Interval& iv, const std::set<int64_t>& excl) {
    if (iv.lo == Interval::kNegInf || iv.hi == Interval::kPosInf) {
      return true;  // infinitely many points, finitely many exclusions
    }
    uint64_t span = static_cast<uint64_t>(iv.hi) - static_cast<uint64_t>(iv.lo);
    if (span >= excl.size()) {
      return true;  // span+1 points, at most |excl| of them excluded
    }
    for (int64_t v = iv.lo; v <= iv.hi; ++v) {  // at most |excl| iterations
      if (excl.count(v) == 0) return true;
    }
    return false;
  }

  const TermArena& arena_;
  bool unsat_ = false;
  bool bail_ = false;
  std::unordered_map<uint32_t, Interval> intervals_;
  std::unordered_map<uint32_t, std::set<int64_t>> exclusions_;
  std::unordered_map<uint32_t, bool> bool_values_;
  std::vector<Atom> residual_;
};

}  // namespace

IntervalPreSolver::IntervalPreSolver(TermArena* arena, SolverBackend* inner,
                                     bool shadow_validate, bool shadow_fatal)
    : arena_(arena),
      inner_(inner),
      shadow_validate_(shadow_validate),
      shadow_fatal_(shadow_fatal) {}

void IntervalPreSolver::Push() {
  frames_.emplace_back();
  inner_->Push();
}

void IntervalPreSolver::Pop() {
  DNSV_CHECK(frames_.size() > 1);
  frames_.pop_back();
  inner_->Pop();
}

void IntervalPreSolver::Assert(Term condition) {
  frames_.back().push_back(condition);
  inner_->Assert(condition);
}

std::optional<SatResult> IntervalPreSolver::Decide(const std::vector<Term>& terms) const {
  return Decider(*arena_).Decide(terms);
}

SatResult IntervalPreSolver::RunCheck(Term assumption) {
  last_assumption_ = assumption;
  last_answered_locally_ = false;

  std::vector<Term> conjunction;
  for (const std::vector<Term>& frame : frames_) {
    conjunction.insert(conjunction.end(), frame.begin(), frame.end());
  }
  if (assumption.valid()) {
    conjunction.push_back(assumption);
  }
  std::optional<SatResult> verdict = Decide(conjunction);
  if (!verdict) {
    ++fallthroughs_;
    return assumption.valid() ? inner_->CheckAssuming(assumption) : inner_->Check();
  }
  ++discharges_;
  if (shadow_validate_) {
    ++shadow_checks_;
    SatResult truth =
        assumption.valid() ? inner_->CheckAssuming(assumption) : inner_->Check();
    if (truth != *verdict && truth != SatResult::kUnknown) {
      ++shadow_mismatches_;
      DNSV_LOG(kError) << "interval pre-solver shadow mismatch: presolver="
                       << static_cast<int>(*verdict) << " z3=" << static_cast<int>(truth);
      DNSV_CHECK_MSG(!shadow_fatal_, "unsound pre-solver verdict (shadow validation)");
      return truth;
    }
    return *verdict;
  }
  last_answered_locally_ = true;
  return *verdict;
}

SatResult IntervalPreSolver::Check() { return RunCheck(Term()); }

SatResult IntervalPreSolver::CheckAssuming(Term assumption) {
  DNSV_CHECK(assumption.valid());
  return RunCheck(assumption);
}

Model IntervalPreSolver::GetModel() {
  if (last_answered_locally_) {
    // The inner backend never saw the discharged check; replay it so the
    // model comes from the session's own Z3 (possibly through the cache,
    // which replays in turn).
    SatResult replay = last_assumption_.valid() ? inner_->CheckAssuming(last_assumption_)
                                                : inner_->Check();
    DNSV_CHECK_MSG(replay == SatResult::kSat,
                   "pre-solver kSat verdict did not replay as sat");
    last_answered_locally_ = false;
  }
  return inner_->GetModel();
}

}  // namespace dnsv

// Incremental Z3 session over TermArena terms.
//
// The symbolic executor drives this with push/pop following its depth-first
// path exploration, exactly as DNS-V's verifier drives Z3 per branch (§5.2).
// Translation from Term to Z3 ASTs is memoized per session.
#ifndef DNSV_SMT_SOLVER_H_
#define DNSV_SMT_SOLVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/smt/term.h"

namespace dnsv {

enum class SatResult { kSat, kUnsat, kUnknown };

// A concrete assignment for the symbolic variables mentioned in a SAT query;
// used to build counterexample DNS queries.
class Model {
 public:
  void Set(const std::string& var, int64_t value) { values_[var] = value; }
  // Returns true and fills *value when the model constrains `var`; unbound
  // variables may take any value.
  bool Get(const std::string& var, int64_t* value) const;
  const std::unordered_map<std::string, int64_t>& values() const { return values_; }
  std::string ToString() const;

 private:
  std::unordered_map<std::string, int64_t> values_;
};

// RAII Z3 solver session. Create one per verification task; the arena must
// outlive the session.
class SolverSession {
 public:
  explicit SolverSession(TermArena* arena);
  ~SolverSession();
  SolverSession(const SolverSession&) = delete;
  SolverSession& operator=(const SolverSession&) = delete;

  void Push();
  void Pop();
  void Assert(Term condition);

  SatResult Check();
  // Check under an extra temporary assumption (no frame churn).
  SatResult CheckAssuming(Term assumption);

  // Valid only immediately after a kSat result.
  Model GetModel();

  // Statistics for the Fig.-12 harness.
  int64_t num_checks() const { return num_checks_; }
  double solve_seconds() const { return solve_seconds_; }

 private:
  struct Impl;  // hides z3++.h from the rest of the codebase
  std::unique_ptr<Impl> impl_;
  int64_t num_checks_ = 0;
  double solve_seconds_ = 0;
};

}  // namespace dnsv

#endif  // DNSV_SMT_SOLVER_H_

// SolverSession: thin facade over the solver-backend stack (src/smt/backend.h).
//
// The symbolic executor drives this with push/pop following its depth-first
// path exploration, exactly as DNS-V's verifier drives Z3 per branch (§5.2).
// Which layers sit between the facade and Z3 — query cache, interval
// pre-solver — is chosen by the SolverConfig carried in VerifyOptions; the
// default is the historical direct-to-Z3 behavior. The facade itself owns one
// always-on optimization: a term already asserted on the current frame stack
// is not re-asserted (hash-consing makes the check a set lookup on term ids).
#ifndef DNSV_SMT_SOLVER_H_
#define DNSV_SMT_SOLVER_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "src/smt/backend.h"
#include "src/smt/term.h"

namespace dnsv {

class Z3Backend;
class CachingBackend;
class IntervalPreSolver;

// Create one per verification task; the arena must outlive the session.
// Sessions are single-threaded; parallel workers each own one.
class SolverSession {
 public:
  explicit SolverSession(TermArena* arena, SolverConfig config = {});
  ~SolverSession();
  SolverSession(const SolverSession&) = delete;
  SolverSession& operator=(const SolverSession&) = delete;

  void Push();
  void Pop();
  void Assert(Term condition);

  SatResult Check();
  // Check under an extra temporary assumption (no frame churn).
  SatResult CheckAssuming(Term assumption);

  // Valid only immediately after a kSat result. Always Z3's own model, even
  // when the verdict came from the cache or the pre-solver (backend.h).
  Model GetModel();

  // Statistics for the Fig.-12 harness: checks that actually reached Z3 and
  // wall time spent inside it. With layering off this equals the number of
  // Check/CheckAssuming calls, as it always did.
  int64_t num_checks() const;
  double solve_seconds() const;

  // Full solver-layer counters aggregated across the stack.
  SolverStats stats() const;

  const SolverConfig& config() const { return config_; }

 private:
  SolverConfig config_;
  TermArena* arena_;

  // The stack, bottom to top; top_ points at the outermost layer.
  std::unique_ptr<Z3Backend> z3_;
  std::unique_ptr<CachingBackend> caching_;
  std::unique_ptr<IntervalPreSolver> presolver_;
  SolverBackend* top_ = nullptr;

  // Assert dedupe: ids of terms asserted on the current frame stack.
  std::vector<std::vector<uint32_t>> assert_frames_ = {{}};
  std::unordered_set<uint32_t> asserted_;

  int64_t queries_ = 0;
  int64_t unknowns_ = 0;
  int64_t asserts_deduped_ = 0;
};

}  // namespace dnsv

#endif  // DNSV_SMT_SOLVER_H_

// IntervalPreSolver: decides pure bound/compare conjunctions without Z3.
//
// The vast majority of feasibility probes the symbolic executor issues are
// conjunctions of simple integer comparisons — the qname/qtype range
// constraints plus branch conditions over interned label codes and list
// lengths (paper §4.2 restricts path conditions to exactly this fragment).
// This layer reuses the interval lattice from src/analysis/interval.h to
// answer such queries directly and falls through to the inner backend on
// anything it cannot decide soundly.
//
// Decision procedure (see docs/SMT.md for the soundness argument):
//   1. Flatten the conjunction; normalize Not through comparisons
//      (¬(a<b) ≡ b≤a, ¬(a≤b) ≡ b<a, ¬(a=b) ≡ a≠b). Bail on any conjunct
//      outside the fragment (Or, Ite, div/mod, bool equality, …); boolean
//      variable literals are handled as forced truth assignments.
//   2. Phase 1: literals of shape var⋈const refine per-variable intervals
//      (≠ collects a finite exclusion set). An empty interval, an
//      exhausted exclusion range, or conflicting bool literals ⇒ UNSAT.
//   3. Phase 2: every remaining literal (var⋈var, or comparisons over
//      +,-,* expressions) is evaluated with interval arithmetic under the
//      phase-1 intervals: provably false ⇒ UNSAT; provably true ⇒ drop;
//      otherwise the query is undecided and falls through.
//   4. SAT only when every literal was decided and every variable has a
//      witness point in its interval outside its exclusions — then any
//      per-variable witness satisfies the whole conjunction, because the
//      surviving phase-2 literals hold for *all* values in the intervals.
//
// The pre-solver never returns kUnknown and never fabricates models: a
// GetModel after a discharged kSat replays the query on the inner backend
// (cache, then Z3), keeping counterexamples byte-identical.
#ifndef DNSV_SMT_INTERVAL_PRESOLVER_H_
#define DNSV_SMT_INTERVAL_PRESOLVER_H_

#include <optional>
#include <vector>

#include "src/smt/backend.h"
#include "src/smt/canon.h"

namespace dnsv {

class IntervalPreSolver : public SolverBackend {
 public:
  // When shadow_validate is set, every discharged verdict is re-checked on
  // the inner backend (same contract as CachingBackend's shadow mode).
  IntervalPreSolver(TermArena* arena, SolverBackend* inner, bool shadow_validate,
                    bool shadow_fatal);

  void Push() override;
  void Pop() override;
  void Assert(Term condition) override;
  SatResult Check() override;
  SatResult CheckAssuming(Term assumption) override;
  Model GetModel() override;

  int64_t discharges() const { return discharges_; }
  int64_t fallthroughs() const { return fallthroughs_; }
  int64_t shadow_checks() const { return shadow_checks_; }
  int64_t shadow_mismatches() const { return shadow_mismatches_; }

  // Decides the conjunction of `terms` with interval reasoning alone;
  // nullopt when outside the decidable fragment. Exposed for unit tests.
  std::optional<SatResult> Decide(const std::vector<Term>& terms) const;

 private:
  SatResult RunCheck(Term assumption);

  TermArena* arena_;
  SolverBackend* inner_;
  bool shadow_validate_ = false;
  bool shadow_fatal_ = false;

  std::vector<std::vector<Term>> frames_ = {{}};

  Term last_assumption_;
  bool last_answered_locally_ = false;

  int64_t discharges_ = 0;
  int64_t fallthroughs_ = 0;
  int64_t shadow_checks_ = 0;
  int64_t shadow_mismatches_ = 0;
};

}  // namespace dnsv

#endif  // DNSV_SMT_INTERVAL_PRESOLVER_H_

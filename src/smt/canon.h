// Query canonicalization for the cross-worker QueryCache.
//
// A query is the conjunction of every asserted term on the frame stack plus
// the check's assumption. Two sessions — different workers, different engine
// versions, different TermArenas — frequently pose the same query modulo
// conjunct order, duplicate conjuncts, and the names of internally generated
// variables (pad.*, havoc.*, s3.p1, eng!havoc.7, …). The canonical key
// erases exactly those differences and nothing else:
//
//   1. flatten:  top-level kAnd nodes are split into their conjuncts,
//   2. render:   each conjunct becomes a deterministic s-expression with
//                variables as sort-tagged placholder tokens,
//   3. sort+dedupe: the rendered conjuncts are sorted lexicographically and
//                duplicates dropped (the "sorted, hash-consed conjunction"),
//   4. alpha-rename: scanning the sorted text, the k-th distinct variable
//                becomes $k.
//
// The final string fully encodes the formula structure with consistent
// variable identities, so equal keys imply alpha-equivalent formulas and
// therefore equal sat/unsat verdicts. (The converse does not hold — two
// alpha-equivalent queries whose conjuncts sort differently under their real
// names may get different keys. That costs a cache hit, never soundness.)
//
// Rendering is memoized per term id, so incrementally growing path
// conditions — And(pc, cond) chains — only render the new conjunct.
#ifndef DNSV_SMT_CANON_H_
#define DNSV_SMT_CANON_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/smt/term.h"

namespace dnsv {

class QueryCanonicalizer {
 public:
  explicit QueryCanonicalizer(const TermArena* arena) : arena_(arena) {}
  QueryCanonicalizer(const QueryCanonicalizer&) = delete;
  QueryCanonicalizer& operator=(const QueryCanonicalizer&) = delete;

  // Canonical cache key for the conjunction of `terms` (invalid handles are
  // skipped). Deterministic across sessions and arenas.
  std::string CanonicalKey(const std::vector<Term>& terms);

  // Splits a term into its top-level conjuncts (kAnd flattened recursively),
  // appending to *out.
  void Flatten(Term t, std::vector<Term>* out) const;

 private:
  // Renders `t` with variables as "%name:sort%" tokens; memoized.
  const std::string& Render(Term t);

  const TermArena* arena_;
  std::unordered_map<uint32_t, std::string> render_memo_;
};

}  // namespace dnsv

#endif  // DNSV_SMT_CANON_H_

// CachingBackend: memoizes sat/unsat verdicts in a process-wide QueryCache.
//
// Each Check/CheckAssuming canonicalizes the conjunction of the tracked
// frame stack plus the assumption (canon.h) and consults the cache before
// the inner backend. Assertions are always forwarded downward, so the inner
// Z3 session stays in the exact state an unlayered session would have — a
// cache hit only skips the check() call, and GetModel after a cached kSat
// replays the query on the inner backend (counted as a model replay) so the
// model is Z3's own.
//
// Shadow-validation mode re-runs every hit on the inner backend and compares
// verdicts; a mismatch means the cache is stale or the canonicalizer is
// unsound, and is either counted (bench/diagnostics) or fatal (CI).
#ifndef DNSV_SMT_CACHING_BACKEND_H_
#define DNSV_SMT_CACHING_BACKEND_H_

#include <vector>

#include "src/smt/backend.h"
#include "src/smt/canon.h"
#include "src/smt/query_cache.h"

namespace dnsv {

class CachingBackend : public SolverBackend {
 public:
  CachingBackend(TermArena* arena, SolverBackend* inner, QueryCache* cache,
                 bool shadow_validate, bool shadow_fatal);

  void Push() override;
  void Pop() override;
  void Assert(Term condition) override;
  SatResult Check() override;
  SatResult CheckAssuming(Term assumption) override;
  Model GetModel() override;

  int64_t cache_hits() const { return cache_hits_; }
  int64_t cache_misses() const { return cache_misses_; }
  int64_t cache_disk_hits() const { return cache_disk_hits_; }
  int64_t model_replays() const { return model_replays_; }
  int64_t shadow_checks() const { return shadow_checks_; }
  int64_t shadow_mismatches() const { return shadow_mismatches_; }

 private:
  // `assumption` may be invalid (plain Check).
  SatResult RunCheck(Term assumption);

  TermArena* arena_;
  SolverBackend* inner_;
  QueryCache* cache_;
  QueryCanonicalizer canon_;
  bool shadow_validate_ = false;
  bool shadow_fatal_ = false;

  std::vector<std::vector<Term>> frames_ = {{}};

  // Bookkeeping for GetModel replay: the last check's assumption and whether
  // the inner backend saw the check (if not, GetModel must replay it).
  Term last_assumption_;
  bool last_answered_locally_ = false;

  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
  int64_t cache_disk_hits_ = 0;
  int64_t model_replays_ = 0;
  int64_t shadow_checks_ = 0;
  int64_t shadow_mismatches_ = 0;
};

}  // namespace dnsv

#endif  // DNSV_SMT_CACHING_BACKEND_H_

#include "src/smt/solver.h"

#include <algorithm>
#include <vector>

#include "src/smt/caching_backend.h"
#include "src/smt/interval_presolver.h"
#include "src/smt/query_cache.h"
#include "src/smt/z3_backend.h"
#include "src/support/strings.h"

namespace dnsv {

bool Model::Get(const std::string& var, int64_t* value) const {
  auto it = values_.find(var);
  if (it == values_.end()) {
    return false;
  }
  *value = it->second;
  return true;
}

std::string Model::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const auto& [name, value] : values_) {
    parts.push_back(StrCat(name, "=", value));
  }
  std::sort(parts.begin(), parts.end());
  return JoinStrings(parts, " ");
}

SolverSession::SolverSession(TermArena* arena, SolverConfig config)
    : config_(config), arena_(arena) {
  z3_ = std::make_unique<Z3Backend>(arena, config_.check_timeout_ms);
  top_ = z3_.get();
  if (config_.layering != SolverLayering::kDirect) {
    QueryCache* cache = config_.cache != nullptr ? config_.cache : QueryCache::Global();
    caching_ = std::make_unique<CachingBackend>(arena, top_, cache, config_.shadow_validate,
                                                config_.shadow_fatal);
    top_ = caching_.get();
  }
  if (config_.layering == SolverLayering::kCachePresolve) {
    presolver_ = std::make_unique<IntervalPreSolver>(arena, top_, config_.shadow_validate,
                                                     config_.shadow_fatal);
    top_ = presolver_.get();
  }
}

SolverSession::~SolverSession() = default;

void SolverSession::Push() {
  assert_frames_.emplace_back();
  top_->Push();
}

void SolverSession::Pop() {
  DNSV_CHECK(assert_frames_.size() > 1);
  for (uint32_t id : assert_frames_.back()) {
    asserted_.erase(id);
  }
  assert_frames_.pop_back();
  top_->Pop();
}

void SolverSession::Assert(Term condition) {
  DNSV_CHECK(arena_->sort(condition) == Sort::kBool);
  bool value = false;
  if (arena_->AsBoolConst(condition, &value) && value) {
    return;  // asserting literal true is a no-op at every layer
  }
  if (asserted_.count(condition.id()) != 0) {
    // Hash-consing makes structural equality an id comparison: this exact
    // term is already on the frame stack, so re-asserting it cannot change
    // any verdict.
    ++asserts_deduped_;
    return;
  }
  asserted_.insert(condition.id());
  assert_frames_.back().push_back(condition.id());
  top_->Assert(condition);
}

SatResult SolverSession::Check() {
  ++queries_;
  SatResult result = top_->Check();
  if (result == SatResult::kUnknown) ++unknowns_;
  return result;
}

SatResult SolverSession::CheckAssuming(Term assumption) {
  ++queries_;
  SatResult result = top_->CheckAssuming(assumption);
  if (result == SatResult::kUnknown) ++unknowns_;
  return result;
}

Model SolverSession::GetModel() { return top_->GetModel(); }

int64_t SolverSession::num_checks() const { return z3_->num_checks(); }

double SolverSession::solve_seconds() const { return z3_->solve_seconds(); }

SolverStats SolverSession::stats() const {
  SolverStats s;
  s.queries = queries_;
  s.z3_checks = z3_->num_checks();
  s.solve_seconds = z3_->solve_seconds();
  s.unknowns = unknowns_;
  s.timeout_retries = z3_->timeout_retries();
  s.asserts_deduped = asserts_deduped_;
  if (caching_ != nullptr) {
    s.cache_hits = caching_->cache_hits();
    s.cache_misses = caching_->cache_misses();
    s.cache_disk_hits = caching_->cache_disk_hits();
    s.model_replays = caching_->model_replays();
    s.shadow_checks += caching_->shadow_checks();
    s.shadow_mismatches += caching_->shadow_mismatches();
  }
  if (presolver_ != nullptr) {
    s.presolver_discharges = presolver_->discharges();
    s.shadow_checks += presolver_->shadow_checks();
    s.shadow_mismatches += presolver_->shadow_mismatches();
  }
  return s;
}

}  // namespace dnsv

#include "src/smt/z3_backend.h"

#include <z3++.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "src/support/strings.h"

namespace dnsv {
namespace {

// Shared by every Z3Backend instance on every thread; see TotalChecks().
std::atomic<int64_t> g_total_z3_checks{0};

}  // namespace

int64_t Z3Backend::TotalChecks() {
  return g_total_z3_checks.load(std::memory_order_relaxed);
}

struct Z3Backend::Impl {
  explicit Impl(TermArena* arena_in) : arena(arena_in), solver(ctx) {}

  // Go division truncates toward zero; SMT-LIB div is Euclidean (remainder in
  // [0,|b|)). With a = q_e*b + r_e and r_e >= 0: q_trunc equals q_e unless the
  // dividend is negative and the remainder nonzero, in which case the
  // truncated quotient is one step closer to zero (in the direction of b's
  // sign). Division by zero is unreachable here: the frontend guards every
  // div/mod with a panic block.
  z3::expr TruncatedDiv(const z3::expr& a, const z3::expr& b) {
    z3::expr q_e = a / b;
    z3::expr r_e = z3::mod(a, b);
    return z3::ite(a >= 0 || r_e == 0, q_e, z3::ite(b > 0, q_e + 1, q_e - 1));
  }

  z3::expr Translate(Term t) {
    auto it = cache.find(t.id());
    if (it != cache.end()) {
      return exprs[it->second];
    }
    const TermNode& n = arena->node(t);
    auto op = [&](size_t i) { return Translate(n.operands[i]); };
    z3::expr result(ctx);
    switch (n.kind) {
      case TermKind::kIntConst:
        result = ctx.int_val(n.int_value);
        break;
      case TermKind::kBoolConst:
        result = ctx.bool_val(n.int_value != 0);
        break;
      case TermKind::kVar:
        result = n.sort == Sort::kInt ? ctx.int_const(arena->VarName(t).c_str())
                                      : ctx.bool_const(arena->VarName(t).c_str());
        break;
      case TermKind::kAdd:
        result = op(0) + op(1);
        break;
      case TermKind::kSub:
        result = op(0) - op(1);
        break;
      case TermKind::kMul:
        result = op(0) * op(1);
        break;
      case TermKind::kDiv: {
        result = TruncatedDiv(op(0), op(1));
        break;
      }
      case TermKind::kMod: {
        // Go: a % b == a - trunc(a/b)*b (remainder sign follows dividend).
        z3::expr a = op(0), b = op(1);
        result = a - TruncatedDiv(a, b) * b;
        break;
      }
      case TermKind::kEq:
      case TermKind::kBoolEq:
        result = op(0) == op(1);
        break;
      case TermKind::kLt:
        result = op(0) < op(1);
        break;
      case TermKind::kLe:
        result = op(0) <= op(1);
        break;
      case TermKind::kAnd: {
        z3::expr_vector v(ctx);
        for (size_t i = 0; i < n.operands.size(); ++i) v.push_back(op(i));
        result = z3::mk_and(v);
        break;
      }
      case TermKind::kOr: {
        z3::expr_vector v(ctx);
        for (size_t i = 0; i < n.operands.size(); ++i) v.push_back(op(i));
        result = z3::mk_or(v);
        break;
      }
      case TermKind::kNot:
        result = !op(0);
        break;
      case TermKind::kIte:
        result = z3::ite(op(0), op(1), op(2));
        break;
    }
    cache.emplace(t.id(), exprs.size());
    exprs.push_back(result);
    return result;
  }

  void SetTimeout(int timeout_ms) {
    if (timeout_ms > 0) {
      z3::params p(ctx);
      p.set("timeout", static_cast<unsigned>(timeout_ms));
      solver.set(p);
    }
  }

  // Fresh solver object in the same context, frame stack re-asserted. The
  // translation cache survives (it is keyed on the context, not the solver).
  void Reset(int timeout_ms) {
    solver = z3::solver(ctx);
    SetTimeout(timeout_ms);
    for (size_t i = 0; i < frames.size(); ++i) {
      if (i > 0) {
        solver.push();
      }
      for (Term t : frames[i]) {
        solver.add(Translate(t));
      }
    }
  }

  TermArena* arena;
  z3::context ctx;
  z3::solver solver;
  std::unordered_map<uint32_t, size_t> cache;
  std::vector<z3::expr> exprs;
  // The asserted terms, frame by frame (frames[0] is the base frame), kept
  // for solver resets after a timeout.
  std::vector<std::vector<Term>> frames = {{}};
};

Z3Backend::Z3Backend(TermArena* arena, int check_timeout_ms)
    : impl_(std::make_unique<Impl>(arena)), check_timeout_ms_(check_timeout_ms) {
  impl_->SetTimeout(check_timeout_ms_);
}

Z3Backend::~Z3Backend() = default;

void Z3Backend::Push() {
  impl_->solver.push();
  impl_->frames.emplace_back();
}

void Z3Backend::Pop() {
  impl_->solver.pop();
  DNSV_CHECK(impl_->frames.size() > 1);
  impl_->frames.pop_back();
}

void Z3Backend::Assert(Term condition) {
  DNSV_CHECK(impl_->arena->sort(condition) == Sort::kBool);
  impl_->solver.add(impl_->Translate(condition));
  impl_->frames.back().push_back(condition);
}

SatResult Z3Backend::RunCheck(Term assumption) {
  auto run_once = [&]() -> z3::check_result {
    auto start = std::chrono::steady_clock::now();
    z3::check_result r;
    if (assumption.valid()) {
      z3::expr_vector assumptions(impl_->ctx);
      assumptions.push_back(impl_->Translate(assumption));
      r = impl_->solver.check(assumptions);
    } else {
      r = impl_->solver.check();
    }
    solve_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    ++num_checks_;
    g_total_z3_checks.fetch_add(1, std::memory_order_relaxed);
    return r;
  };
  z3::check_result r = run_once();
  if (r == z3::unknown && check_timeout_ms_ > 0) {
    // Escalation: reset the solver (same context, frames re-asserted) and
    // retry once with double the budget.
    ++timeout_retries_;
    impl_->Reset(check_timeout_ms_ * 2);
    r = run_once();
    impl_->SetTimeout(check_timeout_ms_);
  }
  switch (r) {
    case z3::sat:
      return SatResult::kSat;
    case z3::unsat:
      return SatResult::kUnsat;
    default:
      ++unknowns_;
      return SatResult::kUnknown;
  }
}

SatResult Z3Backend::Check() { return RunCheck(Term()); }

SatResult Z3Backend::CheckAssuming(Term assumption) { return RunCheck(assumption); }

Model Z3Backend::GetModel() {
  Model model;
  z3::model m = impl_->solver.get_model();
  for (unsigned i = 0; i < m.num_consts(); ++i) {
    z3::func_decl decl = m.get_const_decl(i);
    z3::expr value = m.get_const_interp(decl);
    if (value.is_numeral()) {
      int64_t v = 0;
      if (value.is_numeral_i64(v)) {
        model.Set(decl.name().str(), v);
      }
    } else if (value.is_bool()) {
      model.Set(decl.name().str(), value.is_true() ? 1 : 0);
    }
  }
  return model;
}

}  // namespace dnsv

// The solver-access layer: a pluggable backend interface behind SolverSession.
//
// Solver time dominates verification cost (paper §5.2, Fig. 12), so policies
// that avoid Z3 checks — query caching, interval pre-solving — must be
// pipeline-wide choices rather than per-call accidents. Following the
// counterexample-cache design of KLEE and the pluggable constraint backends
// of S2E, solver access is factored into a stack of SolverBackend layers:
//
//   SolverSession (facade: assert dedupe, stats, config)
//     -> IntervalPreSolver   (optional: decides pure bound/compare queries)
//     -> CachingBackend      (optional: process-wide canonical query cache)
//     -> Z3Backend           (the real solver; timeout + retry-after-reset)
//
// Every layer forwards Push/Pop/Assert downward unconditionally — assertions
// are cheap, checks are the expensive part — and may intercept Check /
// CheckAssuming. GetModel on a layer that answered the last check itself
// replays the query on the layer below, so models (and therefore decoded
// counterexamples) always come from the session's own Z3 solver, byte-
// identical to what an unlayered session would have produced.
#ifndef DNSV_SMT_BACKEND_H_
#define DNSV_SMT_BACKEND_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/smt/term.h"

namespace dnsv {

enum class SatResult { kSat, kUnsat, kUnknown };

// A concrete assignment for the symbolic variables mentioned in a SAT query;
// used to build counterexample DNS queries.
class Model {
 public:
  void Set(const std::string& var, int64_t value) { values_[var] = value; }
  // Returns true and fills *value when the model constrains `var`; unbound
  // variables may take any value.
  bool Get(const std::string& var, int64_t* value) const;
  const std::unordered_map<std::string, int64_t>& values() const { return values_; }
  std::string ToString() const;

 private:
  std::unordered_map<std::string, int64_t> values_;
};

class QueryCache;  // src/smt/query_cache.h

// Which layers sit between the session facade and Z3.
enum class SolverLayering : uint8_t {
  kDirect,         // facade -> Z3 (the historical behavior)
  kCache,          // facade -> CachingBackend -> Z3
  kCachePresolve,  // facade -> IntervalPreSolver -> CachingBackend -> Z3
};

// Per-session solver policy; carried by VerifyOptions so the whole pipeline
// (explore workers, compare stage, refinement checks, summarization) runs on
// the same backend stack.
struct SolverConfig {
  SolverLayering layering = SolverLayering::kDirect;
  // Double-check every cache hit and presolver verdict against Z3; a
  // disagreement is counted (shadow_mismatches) and Z3's answer wins.
  bool shadow_validate = false;
  // Crash (DNSV_CHECK) on a shadow mismatch instead of counting it: the CI
  // configuration, where a stale-cache bug must fail the build.
  bool shadow_fatal = false;
  // Per-check Z3 timeout in milliseconds; 0 = unlimited. On a timeout the
  // backend resets the Z3 solver, re-asserts the frame stack, and retries
  // the check once with double the budget before reporting kUnknown.
  int check_timeout_ms = 0;
  // Cache instance for kCache / kCachePresolve; nullptr selects the
  // process-wide cache shared by all workers and engine versions.
  QueryCache* cache = nullptr;
};

// Applies the DNSV_SOLVER_FORCE environment override to `base`:
//   direct | cache | presolve | shadow
// where "shadow" is cache+presolve with fatal shadow validation (the CI
// stale-cache gate). Unset or unrecognized values leave `base` untouched.
SolverConfig ApplySolverEnvOverride(SolverConfig base);

// Counters aggregated across a session's backend stack. `queries` counts
// checks issued to the facade; `z3_checks` counts the subset that reached
// Z3 — the gap is what the cache and the pre-solver saved.
struct SolverStats {
  int64_t queries = 0;
  int64_t z3_checks = 0;
  double solve_seconds = 0;  // wall time spent inside Z3
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  // Subset of cache_hits answered by entries the artifact store loaded from
  // disk (src/store/qcache_io.h) — the cross-process share of the saving.
  int64_t cache_disk_hits = 0;
  int64_t presolver_discharges = 0;
  int64_t asserts_deduped = 0;   // re-asserts skipped by the facade
  int64_t unknowns = 0;          // kUnknown surfaced to callers
  int64_t timeout_retries = 0;   // Z3 reset-and-retry escalations
  int64_t model_replays = 0;     // GetModel re-ran a cached/presolved query
  int64_t shadow_checks = 0;
  int64_t shadow_mismatches = 0;

  SolverStats& operator+=(const SolverStats& other) {
    queries += other.queries;
    z3_checks += other.z3_checks;
    solve_seconds += other.solve_seconds;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_disk_hits += other.cache_disk_hits;
    presolver_discharges += other.presolver_discharges;
    asserts_deduped += other.asserts_deduped;
    unknowns += other.unknowns;
    timeout_retries += other.timeout_retries;
    model_replays += other.model_replays;
    shadow_checks += other.shadow_checks;
    shadow_mismatches += other.shadow_mismatches;
    return *this;
  }
};

// One layer of the solver stack. Implementations are session-private (never
// shared across threads); only the QueryCache behind CachingBackend is
// process-wide and synchronized.
class SolverBackend {
 public:
  virtual ~SolverBackend() = default;

  virtual void Push() = 0;
  virtual void Pop() = 0;
  virtual void Assert(Term condition) = 0;

  virtual SatResult Check() = 0;
  // Check under an extra temporary assumption (no frame churn).
  virtual SatResult CheckAssuming(Term assumption) = 0;

  // Valid only immediately after a kSat result. Layers that answered the
  // last check without consulting the layer below replay it downward first,
  // so the returned model is always Z3's.
  virtual Model GetModel() = 0;
};

}  // namespace dnsv

#endif  // DNSV_SMT_BACKEND_H_

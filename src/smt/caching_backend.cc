#include "src/smt/caching_backend.h"

#include "src/support/logging.h"

namespace dnsv {

CachingBackend::CachingBackend(TermArena* arena, SolverBackend* inner, QueryCache* cache,
                               bool shadow_validate, bool shadow_fatal)
    : arena_(arena),
      inner_(inner),
      cache_(cache),
      canon_(arena),
      shadow_validate_(shadow_validate),
      shadow_fatal_(shadow_fatal) {}

void CachingBackend::Push() {
  frames_.emplace_back();
  inner_->Push();
}

void CachingBackend::Pop() {
  DNSV_CHECK(frames_.size() > 1);
  frames_.pop_back();
  inner_->Pop();
}

void CachingBackend::Assert(Term condition) {
  frames_.back().push_back(condition);
  inner_->Assert(condition);
}

SatResult CachingBackend::RunCheck(Term assumption) {
  last_assumption_ = assumption;
  last_answered_locally_ = false;

  std::vector<Term> conjunction;
  for (const std::vector<Term>& frame : frames_) {
    conjunction.insert(conjunction.end(), frame.begin(), frame.end());
  }
  if (assumption.valid()) {
    conjunction.push_back(assumption);
  }
  std::string key = canon_.CanonicalKey(conjunction);

  SatResult cached = SatResult::kUnknown;
  bool from_disk = false;
  if (cache_->Lookup(key, &cached, &from_disk)) {
    ++cache_hits_;
    if (from_disk) ++cache_disk_hits_;
    if (shadow_validate_) {
      ++shadow_checks_;
      SatResult truth =
          assumption.valid() ? inner_->CheckAssuming(assumption) : inner_->Check();
      if (truth != cached && truth != SatResult::kUnknown) {
        ++shadow_mismatches_;
        DNSV_LOG(kError) << "query cache shadow mismatch: cached="
                         << static_cast<int>(cached) << " z3=" << static_cast<int>(truth)
                         << " key=\n" << key;
        DNSV_CHECK_MSG(!shadow_fatal_, "stale query-cache verdict (shadow validation)");
        return truth;  // Z3's answer wins; the inner backend also holds the model
      }
      // The inner backend ran the query, so a follow-up GetModel needs no
      // replay.
      return cached;
    }
    last_answered_locally_ = true;
    return cached;
  }
  ++cache_misses_;
  SatResult verdict = assumption.valid() ? inner_->CheckAssuming(assumption) : inner_->Check();
  cache_->Insert(key, verdict);
  return verdict;
}

SatResult CachingBackend::Check() { return RunCheck(Term()); }

SatResult CachingBackend::CheckAssuming(Term assumption) {
  DNSV_CHECK(assumption.valid());
  return RunCheck(assumption);
}

Model CachingBackend::GetModel() {
  if (last_answered_locally_) {
    // The last check was served from the cache: replay it on the inner
    // backend so the model is the session's own Z3 model.
    ++model_replays_;
    SatResult replay = last_assumption_.valid() ? inner_->CheckAssuming(last_assumption_)
                                                : inner_->Check();
    DNSV_CHECK_MSG(replay == SatResult::kSat,
                   "cached kSat verdict did not replay as sat: stale query cache");
    last_answered_locally_ = false;
  }
  return inner_->GetModel();
}

}  // namespace dnsv

#include "src/smt/query_cache.h"

#include <cstdlib>
#include <cstring>
#include <functional>
#include <string_view>

namespace dnsv {

QueryCache* QueryCache::Global() {
  static QueryCache* cache = new QueryCache();  // never destroyed: workers may
  return cache;                                 // outlive static teardown order
}

QueryCache::Shard& QueryCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kShards];
}

bool QueryCache::Lookup(const std::string& key, SatResult* verdict) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      *verdict = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void QueryCache::Insert(const std::string& key, SatResult verdict) {
  if (verdict == SatResult::kUnknown) {
    return;  // unknowns are transient (timeouts); never memoize them
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.emplace(key, verdict);
  if (inserted) {
    insertions_.fetch_add(1, std::memory_order_relaxed);
  }
}

QueryCache::Stats QueryCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<Shard&>(shard).mu);
    stats.entries += static_cast<int64_t>(shard.map.size());
  }
  return stats;
}

void QueryCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
}

SolverConfig ApplySolverEnvOverride(SolverConfig base) {
  const char* force = std::getenv("DNSV_SOLVER_FORCE");
  if (force == nullptr) {
    return base;
  }
  std::string_view value(force);
  if (value == "direct" || value == "off") {
    base.layering = SolverLayering::kDirect;
    base.shadow_validate = false;
    base.shadow_fatal = false;
  } else if (value == "cache") {
    base.layering = SolverLayering::kCache;
  } else if (value == "presolve" || value == "cache+presolve") {
    base.layering = SolverLayering::kCachePresolve;
  } else if (value == "shadow") {
    // The CI stale-cache gate: full stack, every cache hit and presolver
    // verdict re-checked on Z3, any disagreement is fatal.
    base.layering = SolverLayering::kCachePresolve;
    base.shadow_validate = true;
    base.shadow_fatal = true;
  }
  return base;
}

}  // namespace dnsv

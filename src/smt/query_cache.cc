#include "src/smt/query_cache.h"

#include <cstdlib>
#include <cstring>
#include <functional>
#include <string_view>

namespace dnsv {

QueryCache* QueryCache::Global() {
  static QueryCache* cache = new QueryCache();  // never destroyed: workers may
  return cache;                                 // outlive static teardown order
}

QueryCache::Shard& QueryCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kShards];
}

bool QueryCache::Lookup(const std::string& key, SatResult* verdict, bool* from_disk) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      *verdict = it->second.verdict;
      if (from_disk != nullptr) *from_disk = it->second.from_disk;
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (it->second.from_disk) {
        disk_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    }
  }
  if (from_disk != nullptr) *from_disk = false;
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void QueryCache::Insert(const std::string& key, SatResult verdict) {
  if (verdict == SatResult::kUnknown) {
    return;  // unknowns are transient (timeouts); never memoize them
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.emplace(key, Entry{verdict, /*from_disk=*/false});
  if (inserted) {
    insertions_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool QueryCache::LoadPersisted(const std::string& key, SatResult verdict) {
  if (verdict == SatResult::kUnknown) {
    return false;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.emplace(key, Entry{verdict, /*from_disk=*/true});
  return inserted;
}

std::vector<std::pair<std::string, SatResult>> QueryCache::Snapshot() const {
  std::vector<std::pair<std::string, SatResult>> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<Shard&>(shard).mu);
    for (const auto& [key, entry] : shard.map) {
      entries.emplace_back(key, entry.verdict);
    }
  }
  return entries;
}

bool QueryCache::MarkLoadedFrom(const std::string& store_root) {
  std::lock_guard<std::mutex> lock(loaded_mu_);
  for (const std::string& root : loaded_roots_) {
    if (root == store_root) return false;
  }
  loaded_roots_.push_back(store_root);
  return true;
}

void QueryCache::SetBaseCounters(int64_t hits, int64_t misses) {
  base_hits_.store(hits, std::memory_order_relaxed);
  base_misses_.store(misses, std::memory_order_relaxed);
}

QueryCache::Stats QueryCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<Shard&>(shard).mu);
    stats.entries += static_cast<int64_t>(shard.map.size());
    for (const auto& [key, entry] : shard.map) {
      if (entry.from_disk) ++stats.entries_from_disk;
    }
  }
  stats.cumulative_hits = stats.hits + base_hits_.load(std::memory_order_relaxed);
  stats.cumulative_misses = stats.misses + base_misses_.load(std::memory_order_relaxed);
  return stats;
}

void QueryCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  {
    std::lock_guard<std::mutex> lock(loaded_mu_);
    loaded_roots_.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  disk_hits_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  base_hits_.store(0, std::memory_order_relaxed);
  base_misses_.store(0, std::memory_order_relaxed);
}

SolverConfig ApplySolverEnvOverride(SolverConfig base) {
  const char* force = std::getenv("DNSV_SOLVER_FORCE");
  if (force == nullptr) {
    return base;
  }
  std::string_view value(force);
  if (value == "direct" || value == "off") {
    base.layering = SolverLayering::kDirect;
    base.shadow_validate = false;
    base.shadow_fatal = false;
  } else if (value == "cache") {
    base.layering = SolverLayering::kCache;
  } else if (value == "presolve" || value == "cache+presolve") {
    base.layering = SolverLayering::kCachePresolve;
  } else if (value == "shadow") {
    // The CI stale-cache gate: full stack, every cache hit and presolver
    // verdict re-checked on Z3, any disagreement is fatal.
    base.layering = SolverLayering::kCachePresolve;
    base.shadow_validate = true;
    base.shadow_fatal = true;
  }
  return base;
}

}  // namespace dnsv

#include "src/smt/canon.h"

#include <algorithm>

#include "src/support/strings.h"

namespace dnsv {
namespace {

const char* OpName(TermKind kind) {
  switch (kind) {
    case TermKind::kAdd:
      return "+";
    case TermKind::kSub:
      return "-";
    case TermKind::kMul:
      return "*";
    case TermKind::kDiv:
      return "div";
    case TermKind::kMod:
      return "mod";
    case TermKind::kEq:
      return "=";
    case TermKind::kBoolEq:
      return "iff";
    case TermKind::kLt:
      return "<";
    case TermKind::kLe:
      return "<=";
    case TermKind::kAnd:
      return "and";
    case TermKind::kOr:
      return "or";
    case TermKind::kNot:
      return "not";
    case TermKind::kIte:
      return "ite";
    default:
      return "?";
  }
}

}  // namespace

void QueryCanonicalizer::Flatten(Term t, std::vector<Term>* out) const {
  if (!t.valid()) {
    return;
  }
  const TermNode& n = arena_->node(t);
  if (n.kind == TermKind::kAnd) {
    // The arena's AndN already flattens nested conjunctions, so one level
    // suffices; recurse anyway for robustness against hand-built nodes.
    for (Term operand : n.operands) {
      Flatten(operand, out);
    }
    return;
  }
  if (n.kind == TermKind::kBoolConst && n.int_value != 0) {
    return;  // drop literal true
  }
  out->push_back(t);
}

const std::string& QueryCanonicalizer::Render(Term t) {
  auto it = render_memo_.find(t.id());
  if (it != render_memo_.end()) {
    return it->second;
  }
  const TermNode& n = arena_->node(t);
  std::string out;
  switch (n.kind) {
    case TermKind::kIntConst:
      out = StrCat(n.int_value);
      break;
    case TermKind::kBoolConst:
      out = n.int_value != 0 ? "true" : "false";
      break;
    case TermKind::kVar:
      // Sort-tagged placeholder token; the alpha-renaming pass rewrites
      // these to positional $k tokens. Variable names never contain '%'.
      out = StrCat("%", arena_->VarName(t), n.sort == Sort::kInt ? ":i%" : ":b%");
      break;
    default: {
      out = StrCat("(", OpName(n.kind));
      for (Term operand : n.operands) {
        out += " ";
        out += Render(operand);
      }
      out += ")";
      break;
    }
  }
  return render_memo_.emplace(t.id(), std::move(out)).first->second;
}

std::string QueryCanonicalizer::CanonicalKey(const std::vector<Term>& terms) {
  std::vector<Term> conjuncts;
  conjuncts.reserve(terms.size());
  for (Term t : terms) {
    Flatten(t, &conjuncts);
  }
  std::vector<std::string> rendered;
  rendered.reserve(conjuncts.size());
  for (Term t : conjuncts) {
    rendered.push_back(Render(t));
  }
  std::sort(rendered.begin(), rendered.end());
  rendered.erase(std::unique(rendered.begin(), rendered.end()), rendered.end());

  // Alpha-rename: scanning the sorted conjuncts in order, the k-th distinct
  // variable token becomes $k (sort tag preserved). First-occurrence
  // numbering over the *sorted* text makes the key independent of the
  // session's real variable names.
  std::string key;
  std::unordered_map<std::string, std::string> alpha;
  for (const std::string& conjunct : rendered) {
    size_t pos = 0;
    while (pos < conjunct.size()) {
      size_t open = conjunct.find('%', pos);
      if (open == std::string::npos) {
        key.append(conjunct, pos, std::string::npos);
        break;
      }
      size_t close = conjunct.find('%', open + 1);
      DNSV_CHECK(close != std::string::npos);
      key.append(conjunct, pos, open - pos);
      std::string token = conjunct.substr(open, close - open + 1);
      // token is "%name:i%" or "%name:b%"; keep the sort tag in the
      // canonical name so differently-sorted variables stay distinct.
      std::string sort_tag = token.substr(token.size() - 3, 2);
      auto it = alpha.find(token);
      if (it == alpha.end()) {
        it = alpha.emplace(token, StrCat("$", alpha.size(), sort_tag)).first;
      }
      key += it->second;
      pos = close + 1;
    }
    key += "\n";
  }
  return key;
}

}  // namespace dnsv

#include "src/smt/term.h"

#include <algorithm>

#include "src/support/strings.h"

namespace dnsv {
namespace {

// Structural key for hash-consing. Kind, sort, payload, operand ids.
std::string NodeKey(const TermNode& node) {
  std::string key = StrCat(static_cast<int>(node.kind), "|", static_cast<int>(node.sort), "|",
                           node.int_value, "|", node.var_index, "|");
  for (Term op : node.operands) {
    key += StrCat(op.id(), ",");
  }
  return key;
}

// Go semantics: quotient truncated toward zero; remainder sign follows
// the dividend.
int64_t GoDiv(int64_t a, int64_t b) { return a / b; }
int64_t GoMod(int64_t a, int64_t b) { return a % b; }

}  // namespace

TermArena::TermArena() {
  nodes_.resize(1);  // id 0 = invalid sentinel
  true_ = BoolConst(true);
  false_ = BoolConst(false);
}

Term TermArena::Intern(TermNode node) {
  std::string key = NodeKey(node);
  auto it = intern_table_.find(key);
  if (it != intern_table_.end()) {
    return Term(it->second);
  }
  uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  intern_table_.emplace(std::move(key), id);
  return Term(id);
}

Term TermArena::IntConst(int64_t value) {
  TermNode node;
  node.kind = TermKind::kIntConst;
  node.sort = Sort::kInt;
  node.int_value = value;
  return Intern(std::move(node));
}

Term TermArena::BoolConst(bool value) {
  TermNode node;
  node.kind = TermKind::kBoolConst;
  node.sort = Sort::kBool;
  node.int_value = value ? 1 : 0;
  return Intern(std::move(node));
}

Term TermArena::Var(const std::string& name, Sort sort) {
  auto it = vars_by_name_.find(name);
  if (it != vars_by_name_.end()) {
    DNSV_CHECK_MSG(this->sort(it->second) == sort, "variable re-declared at different sort: " + name);
    return it->second;
  }
  TermNode node;
  node.kind = TermKind::kVar;
  node.sort = sort;
  node.var_index = static_cast<uint32_t>(var_names_.size());
  var_names_.push_back(name);
  var_sorts_.push_back(sort);
  Term t = Intern(std::move(node));
  vars_by_name_.emplace(name, t);
  return t;
}

const std::string& TermArena::VarName(Term t) const {
  const TermNode& n = node(t);
  DNSV_CHECK(n.kind == TermKind::kVar);
  return var_names_[n.var_index];
}

bool TermArena::AsIntConst(Term t, int64_t* value) const {
  const TermNode& n = node(t);
  if (n.kind != TermKind::kIntConst) {
    return false;
  }
  *value = n.int_value;
  return true;
}

bool TermArena::AsBoolConst(Term t, bool* value) const {
  const TermNode& n = node(t);
  if (n.kind != TermKind::kBoolConst) {
    return false;
  }
  *value = n.int_value != 0;
  return true;
}

Term TermArena::Add(Term a, Term b) {
  DNSV_CHECK(sort(a) == Sort::kInt && sort(b) == Sort::kInt);
  int64_t ca, cb;
  if (AsIntConst(a, &ca) && AsIntConst(b, &cb)) {
    return IntConst(ca + cb);
  }
  if (AsIntConst(a, &ca) && ca == 0) {
    return b;
  }
  if (AsIntConst(b, &cb) && cb == 0) {
    return a;
  }
  TermNode node;
  node.kind = TermKind::kAdd;
  node.sort = Sort::kInt;
  node.operands = {a, b};
  return Intern(std::move(node));
}

Term TermArena::Sub(Term a, Term b) {
  DNSV_CHECK(sort(a) == Sort::kInt && sort(b) == Sort::kInt);
  int64_t ca, cb;
  if (AsIntConst(a, &ca) && AsIntConst(b, &cb)) {
    return IntConst(ca - cb);
  }
  if (AsIntConst(b, &cb) && cb == 0) {
    return a;
  }
  if (a == b) {
    return IntConst(0);
  }
  TermNode node;
  node.kind = TermKind::kSub;
  node.sort = Sort::kInt;
  node.operands = {a, b};
  return Intern(std::move(node));
}

Term TermArena::Mul(Term a, Term b) {
  DNSV_CHECK(sort(a) == Sort::kInt && sort(b) == Sort::kInt);
  int64_t ca, cb;
  if (AsIntConst(a, &ca) && AsIntConst(b, &cb)) {
    return IntConst(ca * cb);
  }
  if (AsIntConst(a, &ca)) {
    if (ca == 0) return IntConst(0);
    if (ca == 1) return b;
  }
  if (AsIntConst(b, &cb)) {
    if (cb == 0) return IntConst(0);
    if (cb == 1) return a;
  }
  TermNode node;
  node.kind = TermKind::kMul;
  node.sort = Sort::kInt;
  node.operands = {a, b};
  return Intern(std::move(node));
}

Term TermArena::Div(Term a, Term b) {
  DNSV_CHECK(sort(a) == Sort::kInt && sort(b) == Sort::kInt);
  int64_t ca, cb;
  if (AsIntConst(b, &cb)) {
    DNSV_CHECK_MSG(cb != 0, "constant division by zero must be guarded by a panic block");
    if (AsIntConst(a, &ca)) {
      return IntConst(GoDiv(ca, cb));
    }
    if (cb == 1) {
      return a;
    }
  }
  TermNode node;
  node.kind = TermKind::kDiv;
  node.sort = Sort::kInt;
  node.operands = {a, b};
  return Intern(std::move(node));
}

Term TermArena::Mod(Term a, Term b) {
  DNSV_CHECK(sort(a) == Sort::kInt && sort(b) == Sort::kInt);
  int64_t ca, cb;
  if (AsIntConst(b, &cb)) {
    DNSV_CHECK_MSG(cb != 0, "constant mod by zero must be guarded by a panic block");
    if (AsIntConst(a, &ca)) {
      return IntConst(GoMod(ca, cb));
    }
  }
  TermNode node;
  node.kind = TermKind::kMod;
  node.sort = Sort::kInt;
  node.operands = {a, b};
  return Intern(std::move(node));
}

Term TermArena::Ite(Term cond, Term then_value, Term else_value) {
  DNSV_CHECK(sort(cond) == Sort::kBool);
  DNSV_CHECK(sort(then_value) == sort(else_value));
  bool cc;
  if (AsBoolConst(cond, &cc)) {
    return cc ? then_value : else_value;
  }
  if (then_value == else_value) {
    return then_value;
  }
  TermNode node;
  node.kind = TermKind::kIte;
  node.sort = sort(then_value);
  node.operands = {cond, then_value, else_value};
  return Intern(std::move(node));
}

Term TermArena::Eq(Term a, Term b) {
  DNSV_CHECK(sort(a) == sort(b));
  if (a == b) {
    return True();
  }
  if (sort(a) == Sort::kBool) {
    bool ca, cb;
    if (AsBoolConst(a, &ca) && AsBoolConst(b, &cb)) {
      return BoolConst(ca == cb);
    }
    if (AsBoolConst(a, &ca)) {
      return ca ? b : Not(b);
    }
    if (AsBoolConst(b, &cb)) {
      return cb ? a : Not(a);
    }
    TermNode node;
    node.kind = TermKind::kBoolEq;
    node.sort = Sort::kBool;
    node.operands = {a, b};
    return Intern(std::move(node));
  }
  int64_t ca, cb;
  if (AsIntConst(a, &ca) && AsIntConst(b, &cb)) {
    return BoolConst(ca == cb);
  }
  // Canonical operand order so Eq(a,b) and Eq(b,a) intern identically.
  if (b.id() < a.id()) {
    std::swap(a, b);
  }
  TermNode node;
  node.kind = TermKind::kEq;
  node.sort = Sort::kBool;
  node.operands = {a, b};
  return Intern(std::move(node));
}

Term TermArena::Lt(Term a, Term b) {
  DNSV_CHECK(sort(a) == Sort::kInt && sort(b) == Sort::kInt);
  int64_t ca, cb;
  if (AsIntConst(a, &ca) && AsIntConst(b, &cb)) {
    return BoolConst(ca < cb);
  }
  if (a == b) {
    return False();
  }
  TermNode node;
  node.kind = TermKind::kLt;
  node.sort = Sort::kBool;
  node.operands = {a, b};
  return Intern(std::move(node));
}

Term TermArena::Le(Term a, Term b) {
  DNSV_CHECK(sort(a) == Sort::kInt && sort(b) == Sort::kInt);
  int64_t ca, cb;
  if (AsIntConst(a, &ca) && AsIntConst(b, &cb)) {
    return BoolConst(ca <= cb);
  }
  if (a == b) {
    return True();
  }
  TermNode node;
  node.kind = TermKind::kLe;
  node.sort = Sort::kBool;
  node.operands = {a, b};
  return Intern(std::move(node));
}

Term TermArena::And(Term a, Term b) { return AndN({a, b}); }

Term TermArena::AndN(const std::vector<Term>& terms) {
  std::vector<Term> flat;
  for (Term t : terms) {
    DNSV_CHECK(sort(t) == Sort::kBool);
    bool c;
    if (AsBoolConst(t, &c)) {
      if (!c) {
        return False();
      }
      continue;  // drop true
    }
    const TermNode& n = node(t);
    if (n.kind == TermKind::kAnd) {
      flat.insert(flat.end(), n.operands.begin(), n.operands.end());
    } else {
      flat.push_back(t);
    }
  }
  // Dedup while preserving order.
  std::vector<Term> unique;
  for (Term t : flat) {
    if (std::find(unique.begin(), unique.end(), t) == unique.end()) {
      unique.push_back(t);
    }
  }
  if (unique.empty()) {
    return True();
  }
  if (unique.size() == 1) {
    return unique[0];
  }
  // p /\ !p == false (common from branch conditions).
  for (Term t : unique) {
    const TermNode& n = node(t);
    if (n.kind == TermKind::kNot &&
        std::find(unique.begin(), unique.end(), n.operands[0]) != unique.end()) {
      return False();
    }
  }
  TermNode node;
  node.kind = TermKind::kAnd;
  node.sort = Sort::kBool;
  node.operands = std::move(unique);
  return Intern(std::move(node));
}

Term TermArena::Or(Term a, Term b) { return OrN({a, b}); }

Term TermArena::OrN(const std::vector<Term>& terms) {
  std::vector<Term> flat;
  for (Term t : terms) {
    DNSV_CHECK(sort(t) == Sort::kBool);
    bool c;
    if (AsBoolConst(t, &c)) {
      if (c) {
        return True();
      }
      continue;  // drop false
    }
    const TermNode& n = node(t);
    if (n.kind == TermKind::kOr) {
      flat.insert(flat.end(), n.operands.begin(), n.operands.end());
    } else {
      flat.push_back(t);
    }
  }
  std::vector<Term> unique;
  for (Term t : flat) {
    if (std::find(unique.begin(), unique.end(), t) == unique.end()) {
      unique.push_back(t);
    }
  }
  if (unique.empty()) {
    return False();
  }
  if (unique.size() == 1) {
    return unique[0];
  }
  for (Term t : unique) {
    const TermNode& n = node(t);
    if (n.kind == TermKind::kNot &&
        std::find(unique.begin(), unique.end(), n.operands[0]) != unique.end()) {
      return True();
    }
  }
  TermNode node;
  node.kind = TermKind::kOr;
  node.sort = Sort::kBool;
  node.operands = std::move(unique);
  return Intern(std::move(node));
}

Term TermArena::Not(Term a) {
  DNSV_CHECK(sort(a) == Sort::kBool);
  bool c;
  if (AsBoolConst(a, &c)) {
    return BoolConst(!c);
  }
  const TermNode& n = node(a);
  if (n.kind == TermKind::kNot) {
    return n.operands[0];
  }
  TermNode node;
  node.kind = TermKind::kNot;
  node.sort = Sort::kBool;
  node.operands = {a};
  return Intern(std::move(node));
}

Term TermArena::Substitute(Term t, const std::unordered_map<uint32_t, Term>& replacements) {
  auto direct = replacements.find(t.id());
  if (direct != replacements.end()) {
    return direct->second;
  }
  const TermNode n = node(t);  // copy: nodes_ may grow during rebuilding
  switch (n.kind) {
    case TermKind::kIntConst:
    case TermKind::kBoolConst:
    case TermKind::kVar:
      return t;
    default:
      break;
  }
  std::vector<Term> new_operands;
  new_operands.reserve(n.operands.size());
  bool changed = false;
  for (Term op : n.operands) {
    Term replaced = Substitute(op, replacements);
    changed = changed || replaced != op;
    new_operands.push_back(replaced);
  }
  if (!changed) {
    return t;
  }
  switch (n.kind) {
    case TermKind::kAdd: return Add(new_operands[0], new_operands[1]);
    case TermKind::kSub: return Sub(new_operands[0], new_operands[1]);
    case TermKind::kMul: return Mul(new_operands[0], new_operands[1]);
    case TermKind::kDiv: return Div(new_operands[0], new_operands[1]);
    case TermKind::kMod: return Mod(new_operands[0], new_operands[1]);
    case TermKind::kEq:
    case TermKind::kBoolEq: return Eq(new_operands[0], new_operands[1]);
    case TermKind::kLt: return Lt(new_operands[0], new_operands[1]);
    case TermKind::kLe: return Le(new_operands[0], new_operands[1]);
    case TermKind::kAnd: return AndN(new_operands);
    case TermKind::kOr: return OrN(new_operands);
    case TermKind::kNot: return Not(new_operands[0]);
    case TermKind::kIte: return Ite(new_operands[0], new_operands[1], new_operands[2]);
    default:
      DNSV_CHECK(false);
      return t;
  }
}

std::string TermArena::ToString(Term t) const {
  const TermNode& n = node(t);
  auto nary = [&](const char* op) {
    std::string out = StrCat("(", op);
    for (Term child : n.operands) {
      out += " " + ToString(child);
    }
    out += ")";
    return out;
  };
  switch (n.kind) {
    case TermKind::kIntConst:
      return StrCat(n.int_value);
    case TermKind::kBoolConst:
      return n.int_value != 0 ? "true" : "false";
    case TermKind::kVar:
      return var_names_[n.var_index];
    case TermKind::kAdd:
      return nary("+");
    case TermKind::kSub:
      return nary("-");
    case TermKind::kMul:
      return nary("*");
    case TermKind::kDiv:
      return nary("div");
    case TermKind::kMod:
      return nary("mod");
    case TermKind::kEq:
    case TermKind::kBoolEq:
      return nary("=");
    case TermKind::kLt:
      return nary("<");
    case TermKind::kLe:
      return nary("<=");
    case TermKind::kAnd:
      return nary("and");
    case TermKind::kOr:
      return nary("or");
    case TermKind::kNot:
      return nary("not");
    case TermKind::kIte:
      return nary("ite");
  }
  return "<?>";
}

Term TermImporter::Import(Term t) {
  DNSV_CHECK(t.valid());
  auto memo_it = memo_.find(t.id());
  if (memo_it != memo_.end()) {
    return memo_it->second;
  }
  const TermNode& n = from_->node(t);
  auto op = [&](size_t i) { return Import(n.operands[i]); };
  Term result;
  switch (n.kind) {
    case TermKind::kIntConst:
      result = to_->IntConst(n.int_value);
      break;
    case TermKind::kBoolConst:
      result = to_->BoolConst(n.int_value != 0);
      break;
    case TermKind::kVar: {
      const std::string& name = from_->VarName(t);
      result = to_->Var(rename_ ? rename_(name) : name, n.sort);
      break;
    }
    case TermKind::kAdd:
      result = to_->Add(op(0), op(1));
      break;
    case TermKind::kSub:
      result = to_->Sub(op(0), op(1));
      break;
    case TermKind::kMul:
      result = to_->Mul(op(0), op(1));
      break;
    case TermKind::kDiv:
      result = to_->Div(op(0), op(1));
      break;
    case TermKind::kMod:
      result = to_->Mod(op(0), op(1));
      break;
    case TermKind::kEq:
    case TermKind::kBoolEq:
      result = to_->Eq(op(0), op(1));
      break;
    case TermKind::kLt:
      result = to_->Lt(op(0), op(1));
      break;
    case TermKind::kLe:
      result = to_->Le(op(0), op(1));
      break;
    case TermKind::kAnd: {
      std::vector<Term> ops;
      ops.reserve(n.operands.size());
      for (size_t i = 0; i < n.operands.size(); ++i) ops.push_back(op(i));
      result = to_->AndN(ops);
      break;
    }
    case TermKind::kOr: {
      std::vector<Term> ops;
      ops.reserve(n.operands.size());
      for (size_t i = 0; i < n.operands.size(); ++i) ops.push_back(op(i));
      result = to_->OrN(ops);
      break;
    }
    case TermKind::kNot:
      result = to_->Not(op(0));
      break;
    case TermKind::kIte:
      result = to_->Ite(op(0), op(1), op(2));
      break;
  }
  memo_.emplace(t.id(), result);
  return result;
}

}  // namespace dnsv

// The bottom of the solver stack: an incremental Z3 session over TermArena
// terms. This is the code that used to live inside SolverSession, moved
// behind the SolverBackend interface so caching and pre-solving layers can
// stack in front of it. Translation from Term to Z3 ASTs is memoized per
// backend (the z3::context outlives solver resets).
#ifndef DNSV_SMT_Z3_BACKEND_H_
#define DNSV_SMT_Z3_BACKEND_H_

#include <memory>

#include "src/smt/backend.h"

namespace dnsv {

class Z3Backend : public SolverBackend {
 public:
  // `check_timeout_ms` == 0 disables the per-check timeout. With a timeout,
  // a check that comes back unknown resets the Z3 solver (fresh solver
  // object, same context, frame stack re-asserted) and retries once with
  // double the budget — Z3's internal state occasionally wedges on a query
  // a fresh solver dispatches instantly.
  explicit Z3Backend(TermArena* arena, int check_timeout_ms = 0);
  ~Z3Backend() override;
  Z3Backend(const Z3Backend&) = delete;
  Z3Backend& operator=(const Z3Backend&) = delete;

  void Push() override;
  void Pop() override;
  void Assert(Term condition) override;
  SatResult Check() override;
  SatResult CheckAssuming(Term assumption) override;
  Model GetModel() override;

  int64_t num_checks() const { return num_checks_; }
  double solve_seconds() const { return solve_seconds_; }
  int64_t unknowns() const { return unknowns_; }
  int64_t timeout_retries() const { return timeout_retries_; }

  // Process-wide count of checks that reached Z3, across every backend
  // instance on every thread. The ground truth the incremental-verification
  // gates assert against ("warm re-run performed zero new Z3 checks"): this
  // counter cannot be fooled by per-session accounting.
  static int64_t TotalChecks();

 private:
  // `assumption` may be invalid (plain Check).
  SatResult RunCheck(Term assumption);

  struct Impl;  // hides z3++.h from the rest of the codebase
  std::unique_ptr<Impl> impl_;
  int check_timeout_ms_ = 0;
  int64_t num_checks_ = 0;
  double solve_seconds_ = 0;
  int64_t unknowns_ = 0;
  int64_t timeout_retries_ = 0;
};

}  // namespace dnsv

#endif  // DNSV_SMT_Z3_BACKEND_H_

// Hash-consed SMT term DAG over linear integer arithmetic and booleans.
//
// The paper (§4.2, §6.3) deliberately restricts path conditions to simple
// integer comparisons so that summaries stay solvable; this layer mirrors that
// choice: the only sorts are Int and Bool, and terms are built through
// constructors that constant-fold and apply cheap local simplifications before
// anything reaches Z3.
#ifndef DNSV_SMT_TERM_H_
#define DNSV_SMT_TERM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/logging.h"

namespace dnsv {

enum class Sort : uint8_t { kInt, kBool };

enum class TermKind : uint8_t {
  kIntConst,
  kBoolConst,
  kVar,
  kAdd,
  kSub,
  kMul,
  kDiv,   // truncated toward zero, like Go
  kMod,   // sign follows dividend, like Go
  kEq,    // int == int
  kLt,    // int < int
  kLe,    // int <= int
  kAnd,   // n-ary
  kOr,    // n-ary
  kNot,
  kIte,   // bool ? int : int
  kBoolEq,  // bool == bool (iff)
};

// Handle into a TermArena. Value type; cheap to copy. Id 0 is reserved as
// "invalid" so default-constructed handles are detectable.
class Term {
 public:
  Term() = default;
  explicit Term(uint32_t id) : id_(id) {}
  uint32_t id() const { return id_; }
  bool valid() const { return id_ != 0; }
  bool operator==(const Term& other) const { return id_ == other.id_; }
  bool operator!=(const Term& other) const { return id_ != other.id_; }

 private:
  uint32_t id_ = 0;
};

struct TermNode {
  TermKind kind;
  Sort sort;
  int64_t int_value = 0;        // kIntConst / kBoolConst(0/1)
  uint32_t var_index = 0;       // kVar: index into arena variable table
  std::vector<Term> operands;   // everything else
};

// Owns all terms; hash-conses structurally identical nodes so Term equality
// is pointer equality. Not thread-safe; each verification session owns one.
class TermArena {
 public:
  TermArena();
  TermArena(const TermArena&) = delete;
  TermArena& operator=(const TermArena&) = delete;

  const TermNode& node(Term t) const {
    DNSV_CHECK(t.valid() && t.id() < nodes_.size());
    return nodes_[t.id()];
  }
  Sort sort(Term t) const { return node(t).sort; }

  // --- Leaf constructors ---
  Term IntConst(int64_t value);
  Term BoolConst(bool value);
  Term True() { return true_; }
  Term False() { return false_; }
  // Creates (or returns the existing) variable with this name.
  Term Var(const std::string& name, Sort sort);
  const std::string& VarName(Term t) const;

  // --- Integer operations (operands must be Int-sorted) ---
  Term Add(Term a, Term b);
  Term Sub(Term a, Term b);
  Term Mul(Term a, Term b);
  Term Div(Term a, Term b);
  Term Mod(Term a, Term b);
  Term Ite(Term cond, Term then_value, Term else_value);

  // --- Comparisons (Int x Int -> Bool) ---
  Term Eq(Term a, Term b);  // dispatches on sort: BoolEq for Bool operands
  Term Ne(Term a, Term b) { return Not(Eq(a, b)); }
  Term Lt(Term a, Term b);
  Term Le(Term a, Term b);
  Term Gt(Term a, Term b) { return Lt(b, a); }
  Term Ge(Term a, Term b) { return Le(b, a); }

  // --- Boolean operations ---
  Term And(Term a, Term b);
  Term AndN(const std::vector<Term>& terms);
  Term Or(Term a, Term b);
  Term OrN(const std::vector<Term>& terms);
  Term Not(Term a);
  Term Implies(Term a, Term b) { return Or(Not(a), b); }

  // Returns true and fills *value when the term is a literal constant.
  bool AsIntConst(Term t, int64_t* value) const;
  bool AsBoolConst(Term t, bool* value) const;

  // Replaces variables (keyed by term id) with replacement terms, rebuilding
  // the expression bottom-up through the simplifying constructors. Used when
  // applying a summary specification: the summary's formal input variables
  // are substituted with the caller's actual terms (§5.3).
  Term Substitute(Term t, const std::unordered_map<uint32_t, Term>& replacements);

  // Human-readable s-expression, for diagnostics and tests.
  std::string ToString(Term t) const;

  size_t size() const { return nodes_.size(); }
  size_t num_vars() const { return var_names_.size(); }
  const std::vector<std::string>& var_names() const { return var_names_; }
  const std::vector<Sort>& var_sorts() const { return var_sorts_; }

 private:
  Term Intern(TermNode node);

  std::vector<TermNode> nodes_;
  std::unordered_map<std::string, uint32_t> intern_table_;  // structural key -> id
  std::unordered_map<std::string, Term> vars_by_name_;
  std::vector<std::string> var_names_;
  std::vector<Sort> var_sorts_;
  Term true_;
  Term false_;
};

// Copies terms from one arena into another, rebuilding bottom-up through the
// destination's simplifying constructors. Variables are carried over by name;
// an optional rename hook maps source variable names to destination names, so
// two isolated worker arenas can be merged into one comparison arena without
// capturing each other's internally generated variables (pad.*, havoc.*, …)
// while still unifying the shared symbolic inputs (qname.*, qtype).
// Memoized per importer; one importer per (source, destination) pair.
class TermImporter {
 public:
  using VarRename = std::function<std::string(const std::string&)>;
  TermImporter(const TermArena* from, TermArena* to, VarRename rename = nullptr)
      : from_(from), to_(to), rename_(std::move(rename)) {}

  Term Import(Term t);

 private:
  const TermArena* from_;
  TermArena* to_;
  VarRename rename_;
  std::unordered_map<uint32_t, Term> memo_;
};

}  // namespace dnsv

#endif  // DNSV_SMT_TERM_H_

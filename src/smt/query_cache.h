// Process-wide, mutex-sharded sat/unsat verdict cache keyed on canonical
// query strings (src/smt/canon.h).
//
// One instance is shared by every parallel exploration worker and across all
// six engine versions: the spec side of the comparison is identical for every
// version and the engines share most of their library layers, so the same
// canonical feasibility query recurs constantly (KLEE makes the same
// observation for its counterexample cache). Keys are self-contained strings
// — no Term handles, no arena pointers — so sharing across sessions whose
// arenas are completely unrelated is sound by construction.
//
// The cache deliberately stores verdicts only, never models: a layered
// session that needs a model after a cached kSat replays the query on its
// own Z3 backend (see backend.h), keeping decoded counterexamples
// byte-identical to an unlayered run. kUnknown verdicts are never cached.
#ifndef DNSV_SMT_QUERY_CACHE_H_
#define DNSV_SMT_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/smt/backend.h"

namespace dnsv {

class QueryCache {
 public:
  QueryCache() = default;
  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  // The process-wide instance used when SolverConfig.cache is null.
  static QueryCache* Global();

  // Returns true and fills *verdict on a hit. Counts a hit or a miss.
  bool Lookup(const std::string& key, SatResult* verdict);

  // Records a verdict; kUnknown is ignored. First writer wins (all writers
  // agree by soundness, so overwriting would be equivalent anyway).
  void Insert(const std::string& key, SatResult verdict);

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t entries = 0;
  };
  Stats stats() const;

  // Drops every entry and resets the counters (tests and benchmarks).
  void Clear();

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, SatResult> map;
  };
  Shard& ShardFor(const std::string& key);

  Shard shards_[kShards];
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> insertions_{0};
};

}  // namespace dnsv

#endif  // DNSV_SMT_QUERY_CACHE_H_

// Process-wide, mutex-sharded sat/unsat verdict cache keyed on canonical
// query strings (src/smt/canon.h).
//
// One instance is shared by every parallel exploration worker and across all
// six engine versions: the spec side of the comparison is identical for every
// version and the engines share most of their library layers, so the same
// canonical feasibility query recurs constantly (KLEE makes the same
// observation for its counterexample cache). Keys are self-contained strings
// — no Term handles, no arena pointers — so sharing across sessions whose
// arenas are completely unrelated is sound by construction. Self-contained
// keys also make the entries persistable: the artifact store (src/store)
// reloads them across processes via LoadPersisted/Snapshot, and entries
// carry their origin (memory vs disk) so hits can be attributed.
//
// The cache deliberately stores verdicts only, never models: a layered
// session that needs a model after a cached kSat replays the query on its
// own Z3 backend (see backend.h), keeping decoded counterexamples
// byte-identical to an unlayered run. kUnknown verdicts are never cached.
//
// Statistics: the atomic hit/miss counters reset per process, which made
// multi-run attribution impossible; SetBaseCounters installs the lifetime
// totals persisted alongside the entries, and stats() reports both the
// process-local and the cumulative view.
#ifndef DNSV_SMT_QUERY_CACHE_H_
#define DNSV_SMT_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/smt/backend.h"

namespace dnsv {

class QueryCache {
 public:
  QueryCache() = default;
  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  // The process-wide instance used when SolverConfig.cache is null.
  static QueryCache* Global();

  // Returns true and fills *verdict on a hit. Counts a hit or a miss. When
  // `from_disk` is non-null it reports whether the entry was loaded from the
  // artifact store rather than solved in this process.
  bool Lookup(const std::string& key, SatResult* verdict, bool* from_disk = nullptr);

  // Records a verdict; kUnknown is ignored. First writer wins (all writers
  // agree by soundness, so overwriting would be equivalent anyway).
  void Insert(const std::string& key, SatResult verdict);

  // Insert-if-absent for entries reloaded from the artifact store; the entry
  // is marked disk-originated. Returns true when the entry was new. kUnknown
  // is rejected (a tampered store file must not plant unknowns).
  bool LoadPersisted(const std::string& key, SatResult verdict);

  // Every entry (memory- and disk-originated), for persistence. Order is
  // unspecified; the store sorts before writing.
  std::vector<std::pair<std::string, SatResult>> Snapshot() const;

  // Installs the lifetime hit/miss totals recorded by earlier processes
  // (loaded from the store's meta artifact); stats() adds them into the
  // cumulative view.
  void SetBaseCounters(int64_t hits, int64_t misses);

  // Marks this cache as having loaded the persisted entries rooted at
  // `store_root`; returns false when that root was already loaded (so each
  // store is imported at most once per cache). Clear() forgets the marks.
  bool MarkLoadedFrom(const std::string& store_root);

  struct Stats {
    int64_t hits = 0;       // this process
    int64_t misses = 0;     // this process
    int64_t disk_hits = 0;  // subset of hits served by disk-loaded entries
    int64_t insertions = 0;
    int64_t entries = 0;
    int64_t entries_from_disk = 0;
    // Lifetime view: base counters from previous processes plus this one.
    int64_t cumulative_hits = 0;
    int64_t cumulative_misses = 0;
  };
  Stats stats() const;

  // Drops every entry and resets the counters (tests and benchmarks).
  void Clear();

 private:
  static constexpr size_t kShards = 16;
  struct Entry {
    SatResult verdict = SatResult::kUnknown;
    bool from_disk = false;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, Entry> map;
  };
  Shard& ShardFor(const std::string& key);

  Shard shards_[kShards];
  std::mutex loaded_mu_;
  std::vector<std::string> loaded_roots_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> disk_hits_{0};
  std::atomic<int64_t> insertions_{0};
  std::atomic<int64_t> base_hits_{0};
  std::atomic<int64_t> base_misses_{0};
};

}  // namespace dnsv

#endif  // DNSV_SMT_QUERY_CACHE_H_

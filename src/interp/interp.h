// Concrete AbsIR interpreter.
//
// This is the "production runtime" of the repo: the same engine IR that
// DNS-V verifies is executed here to serve queries in the examples, and it is
// the reference for differential testing of the symbolic executor.
#ifndef DNSV_INTERP_INTERP_H_
#define DNSV_INTERP_INTERP_H_

#include <string>
#include <vector>

#include "src/interp/value.h"
#include "src/ir/function.h"

namespace dnsv {

struct ExecOutcome {
  enum class Kind { kReturned, kPanicked, kStepLimit };
  Kind kind = Kind::kReturned;
  Value return_value;        // kReturned
  std::string panic_message; // kPanicked
  int64_t steps = 0;         // instructions executed

  bool ok() const { return kind == Kind::kReturned; }
};

class Interpreter {
 public:
  // `memory` holds the pre-built heap (e.g. the concrete domain tree) and
  // receives all allocations made during execution.
  Interpreter(const Module* module, ConcreteMemory* memory)
      : module_(module), memory_(memory) {}

  // Executes `function` with `args`. Runaway loops/recursion stop at
  // `max_steps` with kStepLimit.
  ExecOutcome Run(const Function& function, const std::vector<Value>& args,
                  int64_t max_steps = 10'000'000);

 private:
  struct Frame;
  Value EvalOperand(const Frame& frame, const Operand& op);
  ExecOutcome RunFrame(const Function& function, const std::vector<Value>& args, int depth,
                       int64_t* steps, int64_t max_steps);

  const Module* module_;
  ConcreteMemory* memory_;
  static constexpr int kMaxCallDepth = 256;
};

}  // namespace dnsv

#endif  // DNSV_INTERP_INTERP_H_

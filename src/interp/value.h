// Concrete runtime values and the block-based memory model (paper §5.1).
//
// Memory is a set of non-overlapping blocks addressed by block id; pointers
// carry a block id plus a list of indices (CompCert-style, no byte offsets).
// Blocks hold value trees: structs are field vectors, lists are element
// vectors. The same layout is mirrored symbolically in src/sym, which is what
// lets abstract and concrete state mix freely.
#ifndef DNSV_INTERP_VALUE_H_
#define DNSV_INTERP_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/type.h"
#include "src/support/logging.h"

namespace dnsv {

using BlockIndex = uint32_t;
inline constexpr BlockIndex kNullBlockIndex = 0;  // block 0 is reserved: the null target

struct Value {
  enum class Kind : uint8_t { kUnit, kInt, kBool, kPtr, kStruct, kList };

  Kind kind = Kind::kUnit;
  int64_t i = 0;                   // kInt payload / kBool (0 or 1)
  BlockIndex block = kNullBlockIndex;  // kPtr target block (null if kNullBlockIndex)
  std::vector<int64_t> path;       // kPtr index path within the block
  std::vector<Value> elems;        // kStruct fields / kList elements

  static Value Unit() { return Value{}; }
  static Value Int(int64_t v) {
    Value value;
    value.kind = Kind::kInt;
    value.i = v;
    return value;
  }
  static Value Bool(bool v) {
    Value value;
    value.kind = Kind::kBool;
    value.i = v ? 1 : 0;
    return value;
  }
  static Value NullPtr() {
    Value value;
    value.kind = Kind::kPtr;
    value.block = kNullBlockIndex;
    return value;
  }
  static Value Ptr(BlockIndex block, std::vector<int64_t> path = {}) {
    Value value;
    value.kind = Kind::kPtr;
    value.block = block;
    value.path = std::move(path);
    return value;
  }
  static Value Struct(std::vector<Value> fields) {
    Value value;
    value.kind = Kind::kStruct;
    value.elems = std::move(fields);
    return value;
  }
  static Value List(std::vector<Value> elements = {}) {
    Value value;
    value.kind = Kind::kList;
    value.elems = std::move(elements);
    return value;
  }

  bool IsNullPtr() const { return kind == Kind::kPtr && block == kNullBlockIndex; }

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  std::string ToString() const;
};

// Builds the Go zero value of `type`: 0 / false / nil / empty list / zeroed
// struct (recursively).
Value ZeroValueOf(const TypeTable& types, Type type);

// Concrete memory: block id -> value tree. Block 0 is reserved for null.
class ConcreteMemory {
 public:
  ConcreteMemory() { blocks_.resize(1); }

  BlockIndex Alloc(Value initial) {
    blocks_.push_back(std::move(initial));
    return static_cast<BlockIndex>(blocks_.size() - 1);
  }

  // Navigates `path` inside `block`; returns nullptr when the path does not
  // resolve (e.g. list index out of the current length).
  Value* Resolve(BlockIndex block, const std::vector<int64_t>& path);
  const Value* Resolve(BlockIndex block, const std::vector<int64_t>& path) const {
    return const_cast<ConcreteMemory*>(this)->Resolve(block, path);
  }

  size_t num_blocks() const { return blocks_.size(); }

  // Frees every block allocated after the watermark (a prior num_blocks()
  // reading). The engine facade uses this to reclaim query-scoped garbage
  // once a response has been decoded: a resolve run is a pure lookup, so
  // nothing durable can point at blocks it allocated. Any stale pointer a
  // bug *did* leave behind fails closed — Resolve bounds-checks the block
  // index and returns nullptr, the same "invalid memory access" a dangling
  // pointer always produced.
  void TruncateTo(size_t watermark) {
    DNSV_CHECK(watermark >= 1 && watermark <= blocks_.size());
    blocks_.resize(watermark);
  }

 private:
  std::vector<Value> blocks_;
};

}  // namespace dnsv

#endif  // DNSV_INTERP_VALUE_H_

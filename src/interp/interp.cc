#include "src/interp/interp.h"

#include <unordered_map>

#include "src/support/strings.h"

namespace dnsv {

struct Interpreter::Frame {
  const Function* fn;
  std::vector<Value> args;
  std::unordered_map<uint32_t, Value> regs;
};

Value Interpreter::EvalOperand(const Frame& frame, const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::kReg:
      if (Function::IsParamReg(op.reg)) {
        return frame.args[Function::ParamIndex(op.reg)];
      } else {
        auto it = frame.regs.find(op.reg);
        DNSV_CHECK_MSG(it != frame.regs.end(), "register read before write");
        return it->second;
      }
    case Operand::Kind::kIntConst:
      return Value::Int(op.imm);
    case Operand::Kind::kBoolConst:
      return Value::Bool(op.imm != 0);
    case Operand::Kind::kNull:
      return Value::NullPtr();
    case Operand::Kind::kNone:
      break;
  }
  DNSV_CHECK(false);
  return Value::Unit();
}

ExecOutcome Interpreter::Run(const Function& function, const std::vector<Value>& args,
                             int64_t max_steps) {
  int64_t steps = 0;
  ExecOutcome outcome = RunFrame(function, args, 0, &steps, max_steps);
  outcome.steps = steps;
  return outcome;
}

ExecOutcome Interpreter::RunFrame(const Function& function, const std::vector<Value>& args,
                                  int depth, int64_t* steps, int64_t max_steps) {
  auto panic = [&](const std::string& message) {
    ExecOutcome outcome;
    outcome.kind = ExecOutcome::Kind::kPanicked;
    outcome.panic_message = message;
    return outcome;
  };
  if (depth > kMaxCallDepth) {
    return panic("call depth limit exceeded");
  }
  DNSV_CHECK(args.size() == function.params().size());
  Frame frame;
  frame.fn = &function;
  frame.args = args;

  const TypeTable& types = module_->types();
  BlockId current = function.entry();
  while (true) {
    const BasicBlock& block = function.block(current);
    for (uint32_t index : block.instrs) {
      if (++(*steps) > max_steps) {
        ExecOutcome outcome;
        outcome.kind = ExecOutcome::Kind::kStepLimit;
        return outcome;
      }
      const Instr& instr = function.instr(index);
      auto operand = [&](size_t k) { return EvalOperand(frame, instr.operands[k]); };
      switch (instr.op) {
        case Opcode::kBinOp: {
          Value a = operand(0);
          Value b = operand(1);
          Value result;
          switch (instr.bin_op) {
            case BinOp::kAdd: result = Value::Int(a.i + b.i); break;
            case BinOp::kSub: result = Value::Int(a.i - b.i); break;
            case BinOp::kMul: result = Value::Int(a.i * b.i); break;
            case BinOp::kDiv:
              // Division by zero is guarded by frontend panic blocks; a zero
              // here means hand-written IR skipped the check.
              if (b.i == 0) return panic("integer divide by zero");
              result = Value::Int(a.i / b.i);
              break;
            case BinOp::kMod:
              if (b.i == 0) return panic("integer divide by zero");
              result = Value::Int(a.i % b.i);
              break;
            case BinOp::kEq: result = Value::Bool(a.i == b.i); break;
            case BinOp::kNe: result = Value::Bool(a.i != b.i); break;
            case BinOp::kLt: result = Value::Bool(a.i < b.i); break;
            case BinOp::kLe: result = Value::Bool(a.i <= b.i); break;
            case BinOp::kGt: result = Value::Bool(a.i > b.i); break;
            case BinOp::kGe: result = Value::Bool(a.i >= b.i); break;
            case BinOp::kAnd: result = Value::Bool(a.i != 0 && b.i != 0); break;
            case BinOp::kOr: result = Value::Bool(a.i != 0 || b.i != 0); break;
            case BinOp::kBoolEq: result = Value::Bool(a.i == b.i); break;
            case BinOp::kBoolNe: result = Value::Bool(a.i != b.i); break;
            case BinOp::kPtrEq:
              result = Value::Bool(a.block == b.block && a.path == b.path);
              break;
            case BinOp::kPtrNe:
              result = Value::Bool(!(a.block == b.block && a.path == b.path));
              break;
          }
          frame.regs[index] = std::move(result);
          break;
        }
        case Opcode::kUnOp: {
          Value a = operand(0);
          frame.regs[index] =
              instr.un_op == UnOp::kNot ? Value::Bool(a.i == 0) : Value::Int(-a.i);
          break;
        }
        case Opcode::kAlloca:
        case Opcode::kNewObject: {
          BlockIndex b = memory_->Alloc(ZeroValueOf(types, instr.alloc_type));
          frame.regs[index] = Value::Ptr(b);
          break;
        }
        case Opcode::kLoad: {
          Value ptr = operand(0);
          if (ptr.IsNullPtr()) {
            return panic("nil pointer dereference");
          }
          Value* target = memory_->Resolve(ptr.block, ptr.path);
          if (target == nullptr) {
            return panic("invalid memory access");
          }
          frame.regs[index] = *target;
          break;
        }
        case Opcode::kStore: {
          Value ptr = operand(0);
          if (ptr.IsNullPtr()) {
            return panic("nil pointer dereference");
          }
          Value* target = memory_->Resolve(ptr.block, ptr.path);
          if (target == nullptr) {
            return panic("invalid memory access");
          }
          *target = operand(1);
          break;
        }
        case Opcode::kGep: {
          Value ptr = operand(0);
          if (ptr.IsNullPtr()) {
            return panic("nil pointer dereference");
          }
          Value result = ptr;
          for (size_t k = 1; k < instr.operands.size(); ++k) {
            result.path.push_back(operand(k).i);
          }
          frame.regs[index] = std::move(result);
          break;
        }
        case Opcode::kCall: {
          std::vector<Value> call_args;
          call_args.reserve(instr.operands.size());
          for (size_t k = 0; k < instr.operands.size(); ++k) {
            call_args.push_back(operand(k));
          }
          if (instr.text == "listEq") {
            DNSV_CHECK(call_args.size() == 2);
            frame.regs[index] = Value::Bool(call_args[0].elems == call_args[1].elems);
            break;
          }
          const Function* callee = module_->GetFunction(instr.text);
          DNSV_CHECK_MSG(callee != nullptr, "call to unknown function " + instr.text);
          ExecOutcome sub = RunFrame(*callee, call_args, depth + 1, steps, max_steps);
          if (!sub.ok()) {
            return sub;
          }
          frame.regs[index] = std::move(sub.return_value);
          break;
        }
        case Opcode::kListNew:
          frame.regs[index] = Value::List();
          break;
        case Opcode::kListLen:
          frame.regs[index] = Value::Int(static_cast<int64_t>(operand(0).elems.size()));
          break;
        case Opcode::kListGet: {
          Value list = operand(0);
          int64_t i = operand(1).i;
          if (i < 0 || static_cast<size_t>(i) >= list.elems.size()) {
            return panic("index out of range");
          }
          frame.regs[index] = list.elems[static_cast<size_t>(i)];
          break;
        }
        case Opcode::kListSet: {
          Value list = operand(0);
          int64_t i = operand(1).i;
          if (i < 0 || static_cast<size_t>(i) >= list.elems.size()) {
            return panic("index out of range");
          }
          list.elems[static_cast<size_t>(i)] = operand(2);
          frame.regs[index] = std::move(list);
          break;
        }
        case Opcode::kListAppend: {
          Value list = operand(0);
          list.elems.push_back(operand(1));
          frame.regs[index] = std::move(list);
          break;
        }
        case Opcode::kFieldGet: {
          Value aggregate = operand(0);
          DNSV_CHECK(aggregate.kind == Value::Kind::kStruct);
          DNSV_CHECK(instr.field_index >= 0 &&
                     static_cast<size_t>(instr.field_index) < aggregate.elems.size());
          frame.regs[index] = aggregate.elems[static_cast<size_t>(instr.field_index)];
          break;
        }
        case Opcode::kHavoc:
          // Concretely, havoc is the zero value (documented spec-dialect
          // behavior; symbolic execution introduces a fresh variable).
          frame.regs[index] = ZeroValueOf(types, instr.result_type);
          break;
        case Opcode::kBr: {
          Value cond = operand(0);
          current = cond.i != 0 ? instr.target_true : instr.target_false;
          break;
        }
        case Opcode::kJmp:
          current = instr.target_true;
          break;
        case Opcode::kRet: {
          ExecOutcome outcome;
          outcome.kind = ExecOutcome::Kind::kReturned;
          if (!instr.operands.empty()) {
            outcome.return_value = operand(0);
          }
          return outcome;
        }
        case Opcode::kPanic:
          return panic(instr.text);
      }
      if (instr.op == Opcode::kBr || instr.op == Opcode::kJmp) {
        break;  // control transferred
      }
    }
  }
}

}  // namespace dnsv

#include "src/interp/value.h"

#include "src/support/strings.h"

namespace dnsv {

bool Value::operator==(const Value& other) const {
  if (kind != other.kind) {
    return false;
  }
  switch (kind) {
    case Kind::kUnit:
      return true;
    case Kind::kInt:
    case Kind::kBool:
      return i == other.i;
    case Kind::kPtr:
      return block == other.block && path == other.path;
    case Kind::kStruct:
    case Kind::kList:
      return elems == other.elems;
  }
  return false;
}

std::string Value::ToString() const {
  switch (kind) {
    case Kind::kUnit:
      return "unit";
    case Kind::kInt:
      return StrCat(i);
    case Kind::kBool:
      return i != 0 ? "true" : "false";
    case Kind::kPtr: {
      if (IsNullPtr()) {
        return "null";
      }
      std::string out = StrCat("&b", block);
      for (int64_t index : path) {
        out += StrCat(".", index);
      }
      return out;
    }
    case Kind::kStruct: {
      std::string out = "{";
      for (size_t k = 0; k < elems.size(); ++k) {
        if (k > 0) out += ", ";
        out += elems[k].ToString();
      }
      return out + "}";
    }
    case Kind::kList: {
      std::string out = "[";
      for (size_t k = 0; k < elems.size(); ++k) {
        if (k > 0) out += ", ";
        out += elems[k].ToString();
      }
      return out + "]";
    }
  }
  return "<?>";
}

Value ZeroValueOf(const TypeTable& types, Type type) {
  switch (types.kind(type)) {
    case TypeKind::kInt:
      return Value::Int(0);
    case TypeKind::kBool:
      return Value::Bool(false);
    case TypeKind::kPtr:
      return Value::NullPtr();
    case TypeKind::kList:
      return Value::List();
    case TypeKind::kStruct: {
      const StructDef& def = types.GetStruct(type);
      std::vector<Value> fields;
      fields.reserve(def.fields.size());
      for (const StructField& field : def.fields) {
        fields.push_back(ZeroValueOf(types, field.type));
      }
      return Value::Struct(std::move(fields));
    }
    case TypeKind::kVoid:
      return Value::Unit();
  }
  DNSV_CHECK(false);
  return Value::Unit();
}

Value* ConcreteMemory::Resolve(BlockIndex block, const std::vector<int64_t>& path) {
  if (block == kNullBlockIndex || block >= blocks_.size()) {
    return nullptr;
  }
  Value* current = &blocks_[block];
  for (int64_t index : path) {
    if (current->kind != Value::Kind::kStruct && current->kind != Value::Kind::kList) {
      return nullptr;
    }
    if (index < 0 || static_cast<size_t>(index) >= current->elems.size()) {
      return nullptr;
    }
    current = &current->elems[static_cast<size_t>(index)];
  }
  return current;
}

}  // namespace dnsv

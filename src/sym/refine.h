// Refinement checking helpers (paper §5.2, Fig. 1): building symbolic inputs,
// relating final states of two executions, and extracting counterexamples.
#ifndef DNSV_SYM_REFINE_H_
#define DNSV_SYM_REFINE_H_

#include <string>
#include <vector>

#include "src/sym/executor.h"

namespace dnsv {

// A fully symbolic []int (label list): elements var `<name>.<i>`, length var
// `<name>.len`. Constraints: 0 <= len <= capacity, and each element within
// [min_elem, max_elem]. The constraint term must be asserted on the solver
// (or conjoined into the initial path condition) before exploring.
struct SymbolicIntList {
  SymValue value;
  Term constraints;
};

SymbolicIntList MakeSymbolicIntList(TermArena* arena, const std::string& name, int capacity,
                                    int64_t min_elem, int64_t max_elem);

// A symbolic int variable constrained to [min, max].
struct SymbolicInt {
  SymValue value;
  Term constraints;
};

SymbolicInt MakeSymbolicInt(TermArena* arena, const std::string& name, int64_t min,
                            int64_t max);

// Structural equality of two symbolic values as a boolean term. Lists are
// compared with length equality plus guarded element equality; structs
// recurse field-wise; pointers compare by identity (they are concrete).
Term SymValueEqTerm(const SymValue& a, const SymValue& b, TermArena* arena);

// Generic refinement check between two functions over shared symbolic
// arguments: every path of `impl` must produce a return value (and, for
// pointer arguments, pointed-to final state) equal to some behavior of
// `spec` under the same inputs. Returns a human-readable list of
// discrepancies (empty = refines). Intended for the stable library layers
// (paper §6.3) whose specs share the implementation's argument types.
struct RefinementMismatch {
  std::string description;
  Model model;  // witness inputs
};

struct RefinementResult {
  bool ok() const { return mismatches.empty() && !aborted; }
  std::vector<RefinementMismatch> mismatches;
  bool aborted = false;        // executor limit / unsupported pattern
  std::string abort_reason;
  int64_t impl_paths = 0;
  int64_t spec_paths = 0;
};

// Compares only return values (sufficient for the pure library functions).
RefinementResult CheckFunctionRefinement(SymExecutor* executor, const Function& impl,
                                         const Function& spec,
                                         const std::vector<SymValue>& args,
                                         const SymState& initial_state);

}  // namespace dnsv

#endif  // DNSV_SYM_REFINE_H_

#include "src/sym/summary.h"

#include "src/sym/refine.h"
#include "src/support/status.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

// Serializes a value for the summary cache key (concrete parameters only).
std::string ValueKey(const SymValue& value, const TermArena& arena) {
  return value.ToString(arena);
}

// True when `value` contains a pointer into blocks allocated during the
// summary run (>= floor): such values cannot be relocated to a caller.
bool ContainsEscapingPtr(const SymValue& value, size_t floor) {
  if (value.kind == SymValue::Kind::kPtr && !value.IsNullPtr() && value.block >= floor) {
    return true;
  }
  for (const SymValue& elem : value.elems) {
    if (ContainsEscapingPtr(elem, floor)) {
      return true;
    }
  }
  return false;
}

// True when `value` contains any symbolic variable.
bool ContainsVars(const SymValue& value, const TermArena& arena) {
  if (value.kind == SymValue::Kind::kTerm) {
    int64_t iv;
    bool bv;
    if (!arena.AsIntConst(value.term, &iv) && !arena.AsBoolConst(value.term, &bv)) {
      return true;  // any non-constant term counts
    }
  }
  if (value.kind == SymValue::Kind::kList) {
    int64_t len;
    if (!arena.AsIntConst(value.list_len, &len)) {
      return true;
    }
  }
  for (const SymValue& elem : value.elems) {
    if (ContainsVars(elem, arena)) {
      return true;
    }
  }
  return false;
}

}  // namespace

Summarizer::Summarizer(const Module* module, TermArena* arena, SolverSession* solver,
                       SymMemory base_heap, int symbolic_list_capacity,
                       int64_t max_label_code)
    : module_(module),
      arena_(arena),
      solver_(solver),
      base_heap_(std::move(base_heap)),
      heap_floor_(base_heap_.num_blocks()),
      list_capacity_(symbolic_list_capacity),
      max_label_code_(max_label_code) {}

void Summarizer::Configure(FunctionInterface interface_config) {
  interfaces_[interface_config.function] = std::move(interface_config);
}

bool Summarizer::IsConfigured(const std::string& function) const {
  return interfaces_.count(function) != 0;
}

std::string Summarizer::CacheKey(const std::string& callee, const std::vector<SymValue>& args,
                                 const std::vector<ParamMode>& modes) const {
  std::string key = callee;
  for (size_t i = 0; i < args.size(); ++i) {
    if (modes[i] == ParamMode::kConcrete) {
      key += "|" + ValueKey(args[i], *arena_);
    }
  }
  return key;
}

const FunctionSummary* Summarizer::GetOrCompute(const std::string& callee,
                                                const std::vector<SymValue>& args) {
  auto iface = interfaces_.find(callee);
  if (iface == interfaces_.end()) {
    return nullptr;
  }
  const std::vector<ParamMode>& modes = iface->second.params;
  if (modes.size() != args.size()) {
    return nullptr;
  }
  std::string key = CacheKey(callee, args, modes);
  auto cached = cache_.find(key);
  if (cached != cache_.end()) {
    ++stats_.cache_hits;
    return cached->second.get();
  }
  if (failed_.count(key) != 0) {
    return nullptr;
  }
  const FunctionSummary* summary = Compute(callee, args, modes);
  if (summary == nullptr) {
    failed_[key] = true;
    ++stats_.summaries_failed;
  }
  return summary;
}

const FunctionSummary* Summarizer::Compute(const std::string& callee,
                                           const std::vector<SymValue>& args,
                                           const std::vector<ParamMode>& modes) {
  const Function* fn = module_->GetFunction(callee);
  if (fn == nullptr) {
    return nullptr;
  }
  double start = ElapsedSeconds();
  int64_t id = summary_counter_++;

  // Canonical summary state: the shared concrete heap plus placeholder
  // blocks for out-parameters.
  SymState state;
  state.memory = base_heap_;
  state.pc = arena_->True();
  std::vector<Term> constraints;
  std::vector<SymValue> placeholder_args(args.size());
  std::vector<std::pair<size_t, SymValue>> out_placeholders;  // param -> struct
  struct OutInfo {
    size_t param;
    BlockIndex block;
  };
  std::vector<OutInfo> outs;

  const TypeTable& types = module_->types();
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string prefix = StrCat("s", id, ".p", i);
    switch (modes[i]) {
      case ParamMode::kConcrete:
        placeholder_args[i] = args[i];
        break;
      case ParamMode::kSymbolicInt: {
        placeholder_args[i] = SymValue::OfTerm(arena_->Var(prefix, Sort::kInt));
        break;
      }
      case ParamMode::kSymbolicIntList: {
        SymbolicIntList sym =
            MakeSymbolicIntList(arena_, prefix, list_capacity_, 0, max_label_code_);
        placeholder_args[i] = sym.value;
        constraints.push_back(sym.constraints);
        break;
      }
      case ParamMode::kOutStruct: {
        Type param_type = fn->params()[i].type;
        if (!types.IsPtr(param_type) || !types.IsStruct(types.Pointee(param_type))) {
          return nullptr;
        }
        const StructDef& def = types.GetStruct(types.Pointee(param_type));
        std::vector<SymValue> fields;
        for (size_t f = 0; f < def.fields.size(); ++f) {
          Type field_type = def.fields[f].type;
          const std::string field_prefix = StrCat(prefix, ".f", f);
          switch (types.kind(field_type)) {
            case TypeKind::kInt:
              fields.push_back(SymValue::OfTerm(arena_->Var(field_prefix, Sort::kInt)));
              break;
            case TypeKind::kBool:
              fields.push_back(SymValue::OfTerm(arena_->Var(field_prefix, Sort::kBool)));
              break;
            case TypeKind::kPtr:
              // Pointer placeholders are impossible (pointers are concrete);
              // assume null and validate the assumption at application time.
              fields.push_back(SymValue::NullPtr());
              break;
            case TypeKind::kList:
              // List fields are assumed empty at entry; the application site
              // validates this assumption against the caller's actual state.
              fields.push_back(SymValue::List({}, arena_));
              break;
            default:
              return nullptr;  // nested struct fields unsupported
          }
        }
        SymValue placeholder = SymValue::Struct(std::move(fields));
        out_placeholders.emplace_back(i, placeholder);
        BlockIndex block = state.memory.Alloc(std::move(placeholder));
        outs.push_back({i, block});
        placeholder_args[i] = SymValue::Ptr(block);
        break;
      }
    }
  }
  state.pc = arena_->AndN({state.pc, arena_->AndN(constraints)});

  // Full-path symbolic execution of the module (callees inlined).
  SymExecutor executor(module_, arena_, solver_, ExecLimits{});
  std::vector<PathOutcome> outcomes;
  try {
    outcomes = executor.Explore(*fn, placeholder_args, state);
  } catch (const DnsvError& e) {
    DNSV_LOG(kWarning) << "summarization of " << callee << " aborted: " << e.what();
    return nullptr;
  }

  auto summary = std::make_unique<FunctionSummary>();
  summary->function = callee;
  summary->modes = modes;
  summary->placeholder_args = placeholder_args;
  summary->out_placeholders = std::move(out_placeholders);
  summary->instrs = executor.stats().instrs;

  size_t escape_floor = state.memory.num_blocks();
  for (PathOutcome& outcome : outcomes) {
    SummaryEntry entry;
    entry.condition = outcome.state.pc;
    if (outcome.kind == PathOutcome::Kind::kPanicked) {
      entry.panics = true;
      entry.panic_message = outcome.panic_message;
      summary->entries.push_back(std::move(entry));
      continue;
    }
    if (ContainsEscapingPtr(outcome.return_value, escape_floor)) {
      DNSV_LOG(kWarning) << "summarization of " << callee
                         << " aborted: return value escapes a fresh allocation";
      return nullptr;
    }
    entry.return_value = outcome.return_value;
    // Stateless check: the shared heap must be untouched (paper §9).
    for (BlockIndex b = 1; b < heap_floor_; ++b) {
      const SymValue* before = base_heap_.Resolve(b, {});
      const SymValue* after = outcome.state.memory.Resolve(b, {});
      DNSV_CHECK(before != nullptr && after != nullptr);
      if (before->ToString(*arena_) != after->ToString(*arena_)) {
        DNSV_LOG(kWarning) << "summarization of " << callee
                           << " aborted: writes to the shared heap (not stateless)";
        return nullptr;
      }
    }
    // Diff out-parameter blocks against their placeholders.
    bool ok = true;
    for (const OutInfo& out : outs) {
      const SymValue* final_value = outcome.state.memory.Resolve(out.block, {});
      DNSV_CHECK(final_value != nullptr);
      const SymValue* initial = nullptr;
      for (const auto& [param, placeholder] : summary->out_placeholders) {
        if (param == out.param) {
          initial = &placeholder;
        }
      }
      DNSV_CHECK(initial != nullptr);
      for (size_t f = 0; f < final_value->elems.size() && ok; ++f) {
        const SymValue& before = initial->elems[f];
        const SymValue& after = final_value->elems[f];
        // Unchanged iff structurally identical (scalar vars, empty lists,
        // null pointer assumptions).
        if (before.ToString(*arena_) == after.ToString(*arena_)) {
          continue;
        }
        if (ContainsEscapingPtr(after, escape_floor) ||
            (after.kind == SymValue::Kind::kList && after.base_token >= 0)) {
          ok = false;
          break;
        }
        entry.writes.push_back({out.param, f, after});
      }
      if (!ok) {
        break;
      }
    }
    if (!ok) {
      DNSV_LOG(kWarning) << "summarization of " << callee
                         << " aborted: effects outside the supported patterns";
      return nullptr;
    }
    summary->entries.push_back(std::move(entry));
  }

  summary->compute_seconds = ElapsedSeconds() - start;
  stats_.entries_total += static_cast<int64_t>(summary->entries.size());
  ++stats_.summaries_computed;
  DNSV_LOG(kInfo) << "summarized " << callee << ": " << summary->entries.size()
                  << " input-effect pairs in " << summary->compute_seconds << "s";
  const FunctionSummary* raw = summary.get();
  cache_[CacheKey(callee, args, modes)] = std::move(summary);
  return raw;
}

SymValue Summarizer::SubstituteValue(const SymValue& value,
                                     const std::unordered_map<uint32_t, Term>& subst) {
  switch (value.kind) {
    case SymValue::Kind::kUnit:
    case SymValue::Kind::kPtr:
      return value;
    case SymValue::Kind::kTerm: {
      SymValue out = value;
      out.term = arena_->Substitute(value.term, subst);
      return out;
    }
    case SymValue::Kind::kStruct: {
      SymValue out = value;
      for (SymValue& field : out.elems) {
        field = SubstituteValue(field, subst);
      }
      return out;
    }
    case SymValue::Kind::kList: {
      SymValue out = value;
      out.list_len = arena_->Substitute(value.list_len, subst);
      for (SymValue& element : out.elems) {
        element = SubstituteValue(element, subst);
      }
      return out;
    }
  }
  DNSV_CHECK(false);
  return SymValue::Unit();
}

std::optional<std::vector<SummaryProvider::Application>> Summarizer::TryApply(
    const std::string& callee, const std::vector<SymValue>& args, const SymState& state) {
  auto iface = interfaces_.find(callee);
  if (iface == interfaces_.end()) {
    return std::nullopt;
  }
  const std::vector<ParamMode>& modes = iface->second.params;
  if (modes.size() != args.size()) {
    return std::nullopt;
  }
  // Concrete-mode arguments must actually be concrete for the cache key to
  // be meaningful.
  for (size_t i = 0; i < args.size(); ++i) {
    if (modes[i] == ParamMode::kConcrete && ContainsVars(args[i], *arena_)) {
      return std::nullopt;
    }
  }
  const FunctionSummary* summary = GetOrCompute(callee, args);
  if (summary == nullptr) {
    return std::nullopt;
  }

  // Bind the summary's input variables to the caller's actual values.
  std::unordered_map<uint32_t, Term> subst;
  std::vector<std::pair<size_t, SymValue>> out_targets;  // param -> caller ptr
  for (size_t i = 0; i < args.size(); ++i) {
    const SymValue& placeholder = summary->placeholder_args[i];
    const SymValue& actual = args[i];
    switch (modes[i]) {
      case ParamMode::kConcrete:
        break;
      case ParamMode::kSymbolicInt:
        if (actual.kind != SymValue::Kind::kTerm) {
          return std::nullopt;
        }
        subst[placeholder.term.id()] = actual.term;
        break;
      case ParamMode::kSymbolicIntList: {
        if (actual.kind != SymValue::Kind::kList || actual.base_token >= 0) {
          return std::nullopt;
        }
        subst[placeholder.list_len.id()] = actual.list_len;
        for (size_t k = 0; k < placeholder.elems.size(); ++k) {
          Term bound;
          if (k < actual.elems.size()) {
            if (actual.elems[k].kind != SymValue::Kind::kTerm) {
              return std::nullopt;
            }
            bound = actual.elems[k].term;
          } else {
            // Beyond the caller's capacity: only reachable in combinations
            // excluded by the length constraints; a fresh var is sound.
            bound = arena_->Var(StrCat("apad.", apply_counter_, ".", i, ".", k), Sort::kInt);
          }
          subst[placeholder.elems[k].term.id()] = bound;
        }
        break;
      }
      case ParamMode::kOutStruct: {
        if (actual.kind != SymValue::Kind::kPtr || actual.IsNullPtr()) {
          return std::nullopt;
        }
        const SymValue* target = state.memory.Resolve(actual.block, actual.path);
        if (target == nullptr || target->kind != SymValue::Kind::kStruct) {
          return std::nullopt;
        }
        const SymValue* placeholder_struct = nullptr;
        for (const auto& [param, ph] : summary->out_placeholders) {
          if (param == i) {
            placeholder_struct = &ph;
          }
        }
        DNSV_CHECK(placeholder_struct != nullptr);
        if (placeholder_struct->elems.size() != target->elems.size()) {
          return std::nullopt;
        }
        for (size_t f = 0; f < placeholder_struct->elems.size(); ++f) {
          const SymValue& field_placeholder = placeholder_struct->elems[f];
          const SymValue& field_actual = target->elems[f];
          switch (field_placeholder.kind) {
            case SymValue::Kind::kTerm:
              if (field_actual.kind != SymValue::Kind::kTerm) {
                return std::nullopt;
              }
              subst[field_placeholder.term.id()] = field_actual.term;
              break;
            case SymValue::Kind::kPtr:
              // The summary assumed this field started as null.
              if (!field_actual.IsNullPtr()) {
                return std::nullopt;
              }
              break;
            case SymValue::Kind::kList: {
              // The summary assumed this list field started empty.
              int64_t actual_len = -1;
              if (field_actual.kind != SymValue::Kind::kList ||
                  !arena_->AsIntConst(field_actual.list_len, &actual_len) ||
                  actual_len != 0) {
                return std::nullopt;
              }
              break;
            }
            default:
              return std::nullopt;
          }
        }
        out_targets.emplace_back(i, actual);
        break;
      }
    }
  }
  ++apply_counter_;

  std::vector<Application> applications;
  for (const SummaryEntry& entry : summary->entries) {
    Term condition = arena_->Substitute(entry.condition, subst);
    Term combined = arena_->And(state.pc, condition);
    bool constant = false;
    if (arena_->AsBoolConst(combined, &constant)) {
      if (!constant) {
        continue;
      }
    } else if (solver_->CheckAssuming(combined) == SatResult::kUnsat) {
      // Only a *proved* infeasible entry may be dropped; an unknown verdict
      // (solver timeout) keeps the entry — over-approximating the successor
      // set is sound, losing a feasible one is not.
      continue;
    }
    Application app;
    app.state = state;
    app.state.pc = combined;
    if (entry.panics) {
      app.panics = true;
      app.panic_message = entry.panic_message;
      applications.push_back(std::move(app));
      continue;
    }
    app.return_value = SubstituteValue(entry.return_value, subst);
    auto find_target = [&](size_t param) -> const SymValue* {
      for (const auto& [p, ptr] : out_targets) {
        if (p == param) {
          return &ptr;
        }
      }
      return nullptr;
    };
    for (const SummaryEntry::FieldWrite& write : entry.writes) {
      const SymValue* target_ptr = find_target(write.param);
      DNSV_CHECK(target_ptr != nullptr);
      SymValue* slot = app.state.memory.Resolve(target_ptr->block, target_ptr->path);
      DNSV_CHECK(slot != nullptr && slot->kind == SymValue::Kind::kStruct);
      slot->elems[write.field] = SubstituteValue(write.value, subst);
    }
    applications.push_back(std::move(app));
  }
  ++stats_.applications;
  return applications;
}

}  // namespace dnsv

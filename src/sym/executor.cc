#include "src/sym/executor.h"

#include <unordered_map>

#include "src/support/status.h"
#include "src/support/strings.h"

namespace dnsv {

struct SymExecutor::Frame {
  const Function* fn = nullptr;
  std::vector<SymValue> args;
  std::unordered_map<uint32_t, SymValue> regs;
};

SymExecutor::SymExecutor(const Module* module, TermArena* arena, SolverSession* solver,
                         ExecLimits limits)
    : module_(module), arena_(arena), solver_(solver), limits_(limits) {}

SymValue SymExecutor::EvalOperand(const Frame& frame, const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::kReg:
      if (Function::IsParamReg(op.reg)) {
        return frame.args[Function::ParamIndex(op.reg)];
      } else {
        auto it = frame.regs.find(op.reg);
        DNSV_CHECK_MSG(it != frame.regs.end(), "register read before write");
        return it->second;
      }
    case Operand::Kind::kIntConst:
      return SymValue::OfTerm(arena_->IntConst(op.imm));
    case Operand::Kind::kBoolConst:
      return SymValue::OfTerm(arena_->BoolConst(op.imm != 0));
    case Operand::Kind::kNull:
      return SymValue::NullPtr();
    case Operand::Kind::kNone:
      break;
  }
  DNSV_CHECK(false);
  return SymValue::Unit();
}

bool SymExecutor::Feasible(Term pc, Term condition) {
  Term conjunct = arena_->And(pc, condition);
  bool constant = false;
  if (arena_->AsBoolConst(conjunct, &constant)) {
    return constant;
  }
  ++stats_.feasibility_checks;
  // kUnknown (solver timeout) is treated as feasible — over-approximating the
  // path set is sound, dropping a feasible path is not.
  return solver_->CheckAssuming(conjunct) != SatResult::kUnsat;
}

std::optional<int64_t> SymExecutor::TryUniqueIndex(Term index, Term pc) {
  int64_t value = 0;
  if (arena_->AsIntConst(index, &value)) {
    return value;
  }
  // The paper's stated assumption (§5.4) is that lists are rarely accessed at
  // a random symbolic index. An index that is *unique* under the path
  // condition concretizes directly; a genuinely symbolic one makes the caller
  // fork one path per feasible value (the paper's concretization technique,
  // §5.1).
  for (int64_t probe = 0; probe < kIndexProbeLimit; ++probe) {
    Term eq = arena_->Eq(index, arena_->IntConst(probe));
    ++stats_.feasibility_checks;
    if (solver_->CheckAssuming(arena_->And(pc, eq)) == SatResult::kSat) {
      Term neq = arena_->Ne(index, arena_->IntConst(probe));
      ++stats_.feasibility_checks;
      if (solver_->CheckAssuming(arena_->And(pc, neq)) == SatResult::kUnsat) {
        return probe;
      }
      return std::nullopt;  // feasible but not unique: fork
    }
  }
  throw DnsvError("symbolic list index outside the probe range");
}

SymValue SymExecutor::EvalBinOp(const Instr& instr, const SymValue& a, const SymValue& b) {
  TermArena& A = *arena_;
  switch (instr.bin_op) {
    case BinOp::kAdd: return SymValue::OfTerm(A.Add(a.term, b.term));
    case BinOp::kSub: return SymValue::OfTerm(A.Sub(a.term, b.term));
    case BinOp::kMul: return SymValue::OfTerm(A.Mul(a.term, b.term));
    case BinOp::kDiv: return SymValue::OfTerm(A.Div(a.term, b.term));
    case BinOp::kMod: return SymValue::OfTerm(A.Mod(a.term, b.term));
    case BinOp::kEq: case BinOp::kBoolEq: return SymValue::OfTerm(A.Eq(a.term, b.term));
    case BinOp::kNe: case BinOp::kBoolNe: return SymValue::OfTerm(A.Ne(a.term, b.term));
    case BinOp::kLt: return SymValue::OfTerm(A.Lt(a.term, b.term));
    case BinOp::kLe: return SymValue::OfTerm(A.Le(a.term, b.term));
    case BinOp::kGt: return SymValue::OfTerm(A.Gt(a.term, b.term));
    case BinOp::kGe: return SymValue::OfTerm(A.Ge(a.term, b.term));
    case BinOp::kAnd: return SymValue::OfTerm(A.And(a.term, b.term));
    case BinOp::kOr: return SymValue::OfTerm(A.Or(a.term, b.term));
    case BinOp::kPtrEq:
      // Pointers are always concrete in this memory model (§5.1: blocks are
      // referenced by concrete block ids; only contents may be symbolic).
      return SymValue::OfTerm(A.BoolConst(a.block == b.block && a.path == b.path));
    case BinOp::kPtrNe:
      return SymValue::OfTerm(A.BoolConst(!(a.block == b.block && a.path == b.path)));
  }
  DNSV_CHECK(false);
  return SymValue::Unit();
}

Term SymExecutor::ListEqTerm(const SymValue& a, const SymValue& b) {
  DNSV_CHECK(a.kind == SymValue::Kind::kList && b.kind == SymValue::Kind::kList);
  DNSV_CHECK_MSG(a.base_token < 0 && b.base_token < 0, "listEq on a based list");
  TermArena& A = *arena_;
  std::vector<Term> conjuncts = {A.Eq(a.list_len, b.list_len)};
  size_t bound = std::max(a.elems.size(), b.elems.size());
  auto elem = [&](const SymValue& list, size_t i) -> Term {
    if (i < list.elems.size()) {
      DNSV_CHECK(list.elems[i].kind == SymValue::Kind::kTerm);
      return list.elems[i].term;
    }
    // Slot beyond this list's capacity: can only matter in combinations the
    // global length bounds already exclude; a fresh variable keeps it sound.
    return A.Var(StrCat("pad.", havoc_counter_++), Sort::kInt);
  };
  for (size_t i = 0; i < bound; ++i) {
    Term guard = A.Lt(A.IntConst(static_cast<int64_t>(i)), a.list_len);
    conjuncts.push_back(A.Implies(guard, A.Eq(elem(a, i), elem(b, i))));
  }
  return A.AndN(conjuncts);
}

std::vector<PathOutcome> SymExecutor::Explore(const Function& fn,
                                              const std::vector<SymValue>& args,
                                              SymState state) {
  if (!state.pc.valid()) {
    state.pc = arena_->True();
  }
  return ExecFunction(fn, args, std::move(state), 0);
}

std::vector<PathOutcome> SymExecutor::ExecFunction(const Function& fn,
                                                   const std::vector<SymValue>& args,
                                                   SymState state, int depth) {
  if (depth > limits_.max_call_depth) {
    throw DnsvError("symbolic execution call depth limit exceeded");
  }
  DNSV_CHECK(args.size() == fn.params().size());
  Frame frame;
  frame.fn = &fn;
  frame.args = args;
  return ExecFrom(fn, std::move(frame), std::move(state), fn.entry(), 0, depth);
}

std::vector<PathOutcome> SymExecutor::ExecFrom(const Function& fn, Frame frame, SymState state,
                                               BlockId block_id, size_t index, int depth) {
  while (true) {
    const BasicBlock& block = fn.block(block_id);
    for (; index < block.instrs.size(); ++index) {
      if (++stats_.instrs > limits_.max_instrs) {
        throw DnsvError("symbolic execution instruction limit exceeded");
      }
      uint32_t reg = block.instrs[index];
      const Instr& instr = fn.instr(reg);
      auto operand = [&](size_t k) { return EvalOperand(frame, instr.operands[k]); };
      // Case-split on a symbolic index: one continuation per feasible value,
      // re-executing the current instruction with the value pinned (§5.1's
      // concretization).
      auto fork_on_index = [&](Term idx) -> std::vector<PathOutcome> {
        ++stats_.forks;
        Term out_of_probe = arena_->Or(arena_->Lt(idx, arena_->IntConst(0)),
                                       arena_->Ge(idx, arena_->IntConst(kIndexProbeLimit)));
        if (Feasible(state.pc, out_of_probe)) {
          throw DnsvError("symbolic index may fall outside the probe range");
        }
        std::vector<PathOutcome> results;
        for (int64_t v = 0; v < kIndexProbeLimit; ++v) {
          Term pin = arena_->Eq(idx, arena_->IntConst(v));
          if (!Feasible(state.pc, pin)) {
            continue;
          }
          Frame pinned_frame = frame;
          SymState pinned_state = state;
          pinned_state.pc = arena_->And(state.pc, pin);
          std::vector<PathOutcome> tails = ExecFrom(fn, std::move(pinned_frame),
                                                    std::move(pinned_state), block_id, index,
                                                    depth);
          for (PathOutcome& tail : tails) {
            results.push_back(std::move(tail));
          }
        }
        return results;
      };
      switch (instr.op) {
        case Opcode::kBinOp:
          frame.regs[reg] = EvalBinOp(instr, operand(0), operand(1));
          break;
        case Opcode::kUnOp: {
          SymValue a = operand(0);
          frame.regs[reg] = instr.un_op == UnOp::kNot
                                ? SymValue::OfTerm(arena_->Not(a.term))
                                : SymValue::OfTerm(arena_->Sub(arena_->IntConst(0), a.term));
          break;
        }
        case Opcode::kAlloca:
        case Opcode::kNewObject: {
          BlockIndex b = state.memory.Alloc(
              SymZeroValue(module_->types(), instr.alloc_type, arena_));
          frame.regs[reg] = SymValue::Ptr(b);
          break;
        }
        case Opcode::kLoad: {
          SymValue ptr = operand(0);
          if (ptr.IsNullPtr()) {
            PathOutcome outcome;
            outcome.kind = PathOutcome::Kind::kPanicked;
            outcome.panic_message = "nil pointer dereference";
            outcome.state = std::move(state);
            ++stats_.paths;
            return {std::move(outcome)};
          }
          SymValue* target = state.memory.Resolve(ptr.block, ptr.path);
          if (target == nullptr) {
            const SymValue* root = state.memory.Resolve(ptr.block, {});
            DNSV_CHECK_MSG(false,
                           StrCat("symbolic load does not resolve: fn=", fn.name(), " ",
                                  ptr.ToString(*arena_), " mem=", state.memory.num_blocks(),
                                  " root=", root ? root->ToString(*arena_) : "<none>"));
          }
          frame.regs[reg] = *target;
          break;
        }
        case Opcode::kStore: {
          SymValue ptr = operand(0);
          if (ptr.IsNullPtr()) {
            PathOutcome outcome;
            outcome.kind = PathOutcome::Kind::kPanicked;
            outcome.panic_message = "nil pointer dereference";
            outcome.state = std::move(state);
            ++stats_.paths;
            return {std::move(outcome)};
          }
          SymValue* target = state.memory.Resolve(ptr.block, ptr.path);
          DNSV_CHECK_MSG(target != nullptr,
                         StrCat("symbolic store does not resolve: fn=", fn.name(), " ",
                                ptr.ToString(*arena_), " mem=", state.memory.num_blocks()));
          *target = operand(1);
          break;
        }
        case Opcode::kGep: {
          SymValue result = operand(0);
          DNSV_CHECK(result.kind == SymValue::Kind::kPtr);
          bool forked = false;
          for (size_t k = 1; k < instr.operands.size() && !forked; ++k) {
            SymValue idx = operand(k);
            std::optional<int64_t> unique = TryUniqueIndex(idx.term, state.pc);
            if (!unique.has_value()) {
              forked = true;
              break;
            }
            result.path.push_back(*unique);
          }
          if (forked) {
            // Re-dispatch with the (first symbolic) index pinned per value.
            for (size_t k = 1; k < instr.operands.size(); ++k) {
              SymValue idx = operand(k);
              if (!TryUniqueIndex(idx.term, state.pc).has_value()) {
                return fork_on_index(idx.term);
              }
            }
          }
          frame.regs[reg] = std::move(result);
          break;
        }
        case Opcode::kCall: {
          std::vector<SymValue> call_args;
          call_args.reserve(instr.operands.size());
          for (size_t k = 0; k < instr.operands.size(); ++k) {
            call_args.push_back(operand(k));
          }
          if (instr.text == "listEq") {
            frame.regs[reg] = SymValue::OfTerm(ListEqTerm(call_args[0], call_args[1]));
            break;
          }
          std::vector<PathOutcome> sub_outcomes;
          bool applied = false;
          if (summaries_ != nullptr) {
            auto applications = summaries_->TryApply(instr.text, call_args, state);
            if (applications.has_value()) {
              applied = true;
              ++stats_.summary_applications;
              for (SummaryProvider::Application& app : *applications) {
                PathOutcome outcome;
                outcome.kind = app.panics ? PathOutcome::Kind::kPanicked
                                          : PathOutcome::Kind::kReturned;
                outcome.panic_message = std::move(app.panic_message);
                outcome.state = std::move(app.state);
                outcome.return_value = std::move(app.return_value);
                sub_outcomes.push_back(std::move(outcome));
              }
            }
          }
          if (!applied) {
            const Function* callee = module_->GetFunction(instr.text);
            DNSV_CHECK_MSG(callee != nullptr, "call to unknown function " + instr.text);
            sub_outcomes = ExecFunction(*callee, call_args, std::move(state), depth + 1);
          }
          // Continue this frame once per successful callee path; propagate
          // panics unchanged.
          std::vector<PathOutcome> results;
          for (size_t k = 0; k < sub_outcomes.size(); ++k) {
            PathOutcome& sub = sub_outcomes[k];
            if (sub.kind == PathOutcome::Kind::kPanicked) {
              results.push_back(std::move(sub));
              continue;
            }
            Frame continued_frame = frame;  // fresh register copy per path
            continued_frame.regs[reg] = sub.return_value;
            std::vector<PathOutcome> tails = ExecFrom(
                fn, std::move(continued_frame), std::move(sub.state), block_id, index + 1,
                depth);
            for (PathOutcome& tail : tails) {
              results.push_back(std::move(tail));
            }
          }
          return results;
        }
        case Opcode::kListNew:
          frame.regs[reg] = SymValue::List({}, arena_);
          break;
        case Opcode::kListLen: {
          SymValue list = operand(0);
          frame.regs[reg] = SymValue::OfTerm(list.list_len);
          break;
        }
        case Opcode::kListGet: {
          SymValue list = operand(0);
          std::optional<int64_t> unique = TryUniqueIndex(operand(1).term, state.pc);
          if (!unique.has_value()) {
            return fork_on_index(operand(1).term);
          }
          int64_t idx = *unique;
          if (list.base_token >= 0) {
            throw DnsvError("listget on a summarized (based) list");
          }
          DNSV_CHECK_MSG(idx >= 0 && static_cast<size_t>(idx) < list.elems.size(),
                         StrCat("list read at ", idx, " beyond capacity ", list.elems.size(),
                                " (missing bounds check?)"));
          frame.regs[reg] = list.elems[static_cast<size_t>(idx)];
          break;
        }
        case Opcode::kListSet: {
          SymValue list = operand(0);
          std::optional<int64_t> unique = TryUniqueIndex(operand(1).term, state.pc);
          if (!unique.has_value()) {
            return fork_on_index(operand(1).term);
          }
          int64_t idx = *unique;
          if (list.base_token >= 0) {
            throw DnsvError("listset on a summarized (based) list");
          }
          DNSV_CHECK(idx >= 0 && static_cast<size_t>(idx) < list.elems.size());
          list.elems[static_cast<size_t>(idx)] = operand(2);
          frame.regs[reg] = std::move(list);
          break;
        }
        case Opcode::kListAppend: {
          SymValue list = operand(0);
          int64_t concrete_len = 0;
          bool len_concrete = arena_->AsIntConst(list.list_len, &concrete_len);
          if (list.base_token < 0 && !len_concrete) {
            throw DnsvError(
                "append to a symbolic-length list (outside the supported effect patterns)");
          }
          list.elems.push_back(operand(1));
          list.list_len = arena_->Add(list.list_len, arena_->IntConst(1));
          frame.regs[reg] = std::move(list);
          break;
        }
        case Opcode::kFieldGet: {
          SymValue aggregate = operand(0);
          DNSV_CHECK(aggregate.kind == SymValue::Kind::kStruct);
          frame.regs[reg] = aggregate.elems[static_cast<size_t>(instr.field_index)];
          break;
        }
        case Opcode::kHavoc: {
          Sort sort = instr.result_type == module_->types().BoolType() ? Sort::kBool : Sort::kInt;
          frame.regs[reg] =
              SymValue::OfTerm(arena_->Var(StrCat("havoc.", havoc_counter_++), sort));
          break;
        }
        case Opcode::kBr: {
          Term cond = operand(0).term;
          bool constant = false;
          if (arena_->AsBoolConst(cond, &constant)) {
            block_id = constant ? instr.target_true : instr.target_false;
            index = 0;
            goto next_block;
          }
          bool true_feasible = Feasible(state.pc, cond);
          bool false_feasible = Feasible(state.pc, arena_->Not(cond));
          if (true_feasible && !false_feasible) {
            state.pc = arena_->And(state.pc, cond);
            block_id = instr.target_true;
            index = 0;
            goto next_block;
          }
          if (!true_feasible && false_feasible) {
            state.pc = arena_->And(state.pc, arena_->Not(cond));
            block_id = instr.target_false;
            index = 0;
            goto next_block;
          }
          if (!true_feasible && !false_feasible) {
            // The path condition itself became unsatisfiable (can happen when
            // a caller applies a summary entry optimistically): dead path.
            return {};
          }
          ++stats_.forks;
          std::vector<PathOutcome> results;
          {
            Frame true_frame = frame;
            SymState true_state = state;
            true_state.pc = arena_->And(state.pc, cond);
            std::vector<PathOutcome> tails =
                ExecFrom(fn, std::move(true_frame), std::move(true_state), instr.target_true,
                         0, depth);
            for (PathOutcome& tail : tails) {
              results.push_back(std::move(tail));
            }
          }
          {
            state.pc = arena_->And(state.pc, arena_->Not(cond));
            std::vector<PathOutcome> tails = ExecFrom(
                fn, std::move(frame), std::move(state), instr.target_false, 0, depth);
            for (PathOutcome& tail : tails) {
              results.push_back(std::move(tail));
            }
          }
          if (static_cast<int64_t>(results.size()) > limits_.max_paths) {
            throw DnsvError("symbolic execution path limit exceeded");
          }
          return results;
        }
        case Opcode::kJmp:
          block_id = instr.target_true;
          index = 0;
          goto next_block;
        case Opcode::kRet: {
          PathOutcome outcome;
          outcome.kind = PathOutcome::Kind::kReturned;
          if (!instr.operands.empty()) {
            outcome.return_value = operand(0);
          }
          outcome.state = std::move(state);
          ++stats_.paths;
          return {std::move(outcome)};
        }
        case Opcode::kPanic: {
          PathOutcome outcome;
          outcome.kind = PathOutcome::Kind::kPanicked;
          outcome.panic_message = instr.text;
          outcome.state = std::move(state);
          ++stats_.paths;
          return {std::move(outcome)};
        }
      }
    }
    DNSV_CHECK_MSG(false, "block fell through without terminator");
  next_block:;
  }
}

}  // namespace dnsv

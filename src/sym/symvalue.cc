#include "src/sym/symvalue.h"

#include "src/support/strings.h"

namespace dnsv {

std::string SymValue::ToString(const TermArena& arena) const {
  switch (kind) {
    case Kind::kUnit:
      return "unit";
    case Kind::kTerm:
      return arena.ToString(term);
    case Kind::kPtr: {
      if (IsNullPtr()) {
        return "null";
      }
      std::string out = StrCat("&b", block);
      for (int64_t index : path) {
        out += StrCat(".", index);
      }
      return out;
    }
    case Kind::kStruct: {
      std::string out = "{";
      for (size_t i = 0; i < elems.size(); ++i) {
        if (i > 0) out += ", ";
        out += elems[i].ToString(arena);
      }
      return out + "}";
    }
    case Kind::kList: {
      std::string out = base_token >= 0 ? StrCat("[base#", base_token, " ++") : "[";
      for (size_t i = 0; i < elems.size(); ++i) {
        out += (i == 0 && base_token < 0) ? "" : " ";
        out += elems[i].ToString(arena);
      }
      out += StrCat("; len=", arena.ToString(list_len), "]");
      return out;
    }
  }
  return "<?>";
}

SymValue* SymMemory::Resolve(BlockIndex block, const std::vector<int64_t>& path) {
  if (block == kNullBlockIndex || block >= blocks_.size()) {
    return nullptr;
  }
  SymValue* current = &blocks_[block];
  for (int64_t index : path) {
    if (current->kind != SymValue::Kind::kStruct && current->kind != SymValue::Kind::kList) {
      return nullptr;
    }
    if (index < 0 || static_cast<size_t>(index) >= current->elems.size()) {
      return nullptr;
    }
    current = &current->elems[static_cast<size_t>(index)];
  }
  return current;
}

SymValue LiftValue(const Value& value, TermArena* arena) {
  switch (value.kind) {
    case Value::Kind::kUnit:
      return SymValue::Unit();
    case Value::Kind::kInt:
      return SymValue::OfTerm(arena->IntConst(value.i));
    case Value::Kind::kBool:
      return SymValue::OfTerm(arena->BoolConst(value.i != 0));
    case Value::Kind::kPtr:
      return SymValue::Ptr(value.block, value.path);
    case Value::Kind::kStruct: {
      std::vector<SymValue> fields;
      fields.reserve(value.elems.size());
      for (const Value& field : value.elems) {
        fields.push_back(LiftValue(field, arena));
      }
      return SymValue::Struct(std::move(fields));
    }
    case Value::Kind::kList: {
      std::vector<SymValue> elements;
      elements.reserve(value.elems.size());
      for (const Value& element : value.elems) {
        elements.push_back(LiftValue(element, arena));
      }
      return SymValue::List(std::move(elements), arena);
    }
  }
  DNSV_CHECK(false);
  return SymValue::Unit();
}

SymMemory LiftMemory(const ConcreteMemory& memory, TermArena* arena) {
  SymMemory lifted;
  for (BlockIndex b = 1; b < memory.num_blocks(); ++b) {
    const Value* block = memory.Resolve(b, {});
    DNSV_CHECK(block != nullptr);
    BlockIndex assigned = lifted.Alloc(LiftValue(*block, arena));
    DNSV_CHECK(assigned == b);  // ids preserved so pointers stay valid
  }
  return lifted;
}

SymValue SymZeroValue(const TypeTable& types, Type type, TermArena* arena) {
  switch (types.kind(type)) {
    case TypeKind::kInt:
      return SymValue::OfTerm(arena->IntConst(0));
    case TypeKind::kBool:
      return SymValue::OfTerm(arena->BoolConst(false));
    case TypeKind::kPtr:
      return SymValue::NullPtr();
    case TypeKind::kList:
      return SymValue::List({}, arena);
    case TypeKind::kStruct: {
      const StructDef& def = types.GetStruct(type);
      std::vector<SymValue> fields;
      fields.reserve(def.fields.size());
      for (const StructField& field : def.fields) {
        fields.push_back(SymZeroValue(types, field.type, arena));
      }
      return SymValue::Struct(std::move(fields));
    }
    case TypeKind::kVoid:
      return SymValue::Unit();
  }
  DNSV_CHECK(false);
  return SymValue::Unit();
}

namespace {

int64_t TermToConcrete(Term t, const TermArena& arena, const Model* model) {
  int64_t value = 0;
  if (arena.AsIntConst(t, &value)) {
    return value;
  }
  bool b = false;
  if (arena.AsBoolConst(t, &b)) {
    return b ? 1 : 0;
  }
  const TermNode& node = arena.node(t);
  if (node.kind == TermKind::kVar && model != nullptr) {
    int64_t v = 0;
    if (model->Get(arena.VarName(t), &v)) {
      return v;
    }
    return 0;  // unconstrained variable: any value works
  }
  DNSV_CHECK_MSG(false, "cannot concretize term: " + arena.ToString(t));
  return 0;
}

}  // namespace

Value ConcretizeValue(const SymValue& value, const TermArena& arena, const Model* model) {
  switch (value.kind) {
    case SymValue::Kind::kUnit:
      return Value::Unit();
    case SymValue::Kind::kTerm: {
      int64_t v = TermToConcrete(value.term, arena, model);
      return arena.sort(value.term) == Sort::kBool ? Value::Bool(v != 0) : Value::Int(v);
    }
    case SymValue::Kind::kPtr:
      return Value::Ptr(value.block, value.path);
    case SymValue::Kind::kStruct: {
      std::vector<Value> fields;
      fields.reserve(value.elems.size());
      for (const SymValue& field : value.elems) {
        fields.push_back(ConcretizeValue(field, arena, model));
      }
      return Value::Struct(std::move(fields));
    }
    case SymValue::Kind::kList: {
      DNSV_CHECK_MSG(value.base_token < 0, "cannot concretize a based list");
      int64_t len = TermToConcrete(value.list_len, arena, model);
      std::vector<Value> elements;
      for (int64_t i = 0; i < len && i < static_cast<int64_t>(value.elems.size()); ++i) {
        elements.push_back(ConcretizeValue(value.elems[static_cast<size_t>(i)], arena, model));
      }
      return Value::List(std::move(elements));
    }
  }
  DNSV_CHECK(false);
  return Value::Unit();
}

SymValue ImportSymValue(const SymValue& value, TermImporter* importer) {
  SymValue out = value;
  if (out.term.valid()) {
    out.term = importer->Import(value.term);
  }
  if (out.list_len.valid()) {
    out.list_len = importer->Import(value.list_len);
  }
  for (size_t i = 0; i < out.elems.size(); ++i) {
    out.elems[i] = ImportSymValue(value.elems[i], importer);
  }
  return out;
}

}  // namespace dnsv

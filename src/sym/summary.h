// Automated summarization of specifications (paper §4.2, §5.3).
//
// A summary is the set of input-effect pairs {(θ_k, f_k)} of a module,
// computed by full-path symbolic execution with named symbolic placeholders
// for the module's inputs:
//   - int/bool parameters        -> fresh variables
//   - []int parameters           -> symbolic lists (elements + length vars)
//   - "concrete" parameters      -> the caller's actual values, baked in
//                                   (the in-heap domain tree, flags, …);
//                                   summaries are cached per concrete binding
//   - out-parameters (*Struct)   -> placeholder blocks: scalar fields become
//                                   fresh variables; list and pointer fields
//                                   are assumed empty/null at entry (checked
//                                   when the summary is applied)
// Effects follow the paper's supported patterns exactly: writes to struct
// fields reachable from out-parameters, appends to list fields, and the
// return value. Anything else (fresh objects escaping, writes to the shared
// heap, reads of based lists) aborts summarization and the verifier falls
// back to inlining that module.
#ifndef DNSV_SYM_SUMMARY_H_
#define DNSV_SYM_SUMMARY_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sym/executor.h"

namespace dnsv {

enum class ParamMode : uint8_t {
  kConcrete,        // baked into the summary; cache key component
  kSymbolicInt,     // fresh int variable
  kSymbolicIntList, // symbolic []int (qname-style)
  kOutStruct,       // pointer to a result struct (placeholder fields)
};

// Per-function interface configuration (the paper's "interface config",
// Table 3 row 3): how each parameter participates in summarization.
struct FunctionInterface {
  std::string function;
  std::vector<ParamMode> params;
};

// One (θ_k, f_k) pair.
struct SummaryEntry {
  Term condition;                   // θ_k over the summary's input variables
  bool panics = false;
  std::string panic_message;
  SymValue return_value;            // substituted at application time
  // Field writes: (param index, field index) -> new value. List-field
  // updates are plain writes: out-parameter list fields are assumed empty at
  // entry (validated at application time), so the final list value is the
  // whole effect.
  struct FieldWrite {
    size_t param;
    size_t field;
    SymValue value;
  };
  std::vector<FieldWrite> writes;
};

struct FunctionSummary {
  std::string function;
  std::vector<ParamMode> modes;
  std::vector<SymValue> placeholder_args;  // as used during computation
  // For kOutStruct params: the placeholder struct whose field variables /
  // list tokens get rebound to the caller's actual state at application.
  std::vector<std::pair<size_t, SymValue>> out_placeholders;
  std::vector<SummaryEntry> entries;
  double compute_seconds = 0;
  int64_t instrs = 0;
};

// Computes and caches summaries lazily at call sites; plugs into SymExecutor
// as its SummaryProvider.
class Summarizer : public SummaryProvider {
 public:
  // `base_heap` is the shared concrete heap (the domain tree); summaries are
  // computed against a fresh copy of it plus placeholder out-blocks, which
  // keeps them reusable across call sites. Any store into the base heap
  // during summarization is a stateless-engine violation and aborts the
  // summary.
  Summarizer(const Module* module, TermArena* arena, SolverSession* solver,
             SymMemory base_heap, int symbolic_list_capacity, int64_t max_label_code);

  void Configure(FunctionInterface interface_config);
  bool IsConfigured(const std::string& function) const;

  // SummaryProvider:
  std::optional<std::vector<Application>> TryApply(const std::string& callee,
                                                   const std::vector<SymValue>& args,
                                                   const SymState& state) override;

  // Forces computation (used by the Fig.-12 per-layer timing harness and the
  // Table-1 path enumeration). Returns nullptr when the function does not
  // summarize cleanly.
  const FunctionSummary* GetOrCompute(const std::string& callee,
                                      const std::vector<SymValue>& concrete_args);

  struct Stats {
    int64_t summaries_computed = 0;
    int64_t summaries_failed = 0;
    int64_t entries_total = 0;
    int64_t applications = 0;
    int64_t cache_hits = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::string CacheKey(const std::string& callee, const std::vector<SymValue>& args,
                       const std::vector<ParamMode>& modes) const;
  // nullptr on failure (cached as failure too).
  const FunctionSummary* Compute(const std::string& callee,
                                 const std::vector<SymValue>& args,
                                 const std::vector<ParamMode>& modes);
  // Rewrites a summary value into the caller's domain by substituting the
  // summary's input variables with the caller's terms.
  SymValue SubstituteValue(const SymValue& value,
                           const std::unordered_map<uint32_t, Term>& subst);

  const Module* module_;
  TermArena* arena_;
  SolverSession* solver_;
  SymMemory base_heap_;
  size_t heap_floor_;
  int list_capacity_;
  int64_t max_label_code_;
  std::unordered_map<std::string, FunctionInterface> interfaces_;
  std::map<std::string, std::unique_ptr<FunctionSummary>> cache_;  // key -> summary (null=failed)
  std::map<std::string, bool> failed_;
  Stats stats_;
  int64_t summary_counter_ = 0;
  int64_t apply_counter_ = 0;
};

}  // namespace dnsv

#endif  // DNSV_SYM_SUMMARY_H_

// Manual-specification substitution (the left branch of paper Fig. 6).
//
// Stable library layers carry hand-written abstract specifications (§6.3).
// After a refinement check proves spec ≡ implementation, higher layers are
// explored against the *spec*: calls to the implementation are intercepted
// and the spec function is symbolically executed instead. Because specs are
// written with abstract builtins (e.g. listEq instead of a byte loop), they
// produce fewer forks and simpler path conditions — the compareAbs effect
// from Fig. 10.
#ifndef DNSV_SYM_SPECSUB_H_
#define DNSV_SYM_SPECSUB_H_

#include <map>
#include <string>
#include <vector>

#include "src/sym/executor.h"

namespace dnsv {

class SpecSubstitution : public SummaryProvider {
 public:
  SpecSubstitution(const Module* module, TermArena* arena, SolverSession* solver)
      : module_(module), arena_(arena), solver_(solver) {}

  // Routes calls to `impl` through `spec` (same signature). The caller is
  // responsible for having discharged the refinement obligation first
  // (CheckFunctionRefinement).
  void Map(const std::string& impl, const std::string& spec);

  std::optional<std::vector<Application>> TryApply(const std::string& callee,
                                                   const std::vector<SymValue>& args,
                                                   const SymState& state) override;

  int64_t substitutions() const { return substitutions_; }

 private:
  const Module* module_;
  TermArena* arena_;
  SolverSession* solver_;
  std::map<std::string, std::string> spec_for_;
  int64_t substitutions_ = 0;
};

// Tries several providers in order; the first non-nullopt answer wins.
class ChainedProvider : public SummaryProvider {
 public:
  void Add(SummaryProvider* provider) { providers_.push_back(provider); }

  std::optional<std::vector<Application>> TryApply(const std::string& callee,
                                                   const std::vector<SymValue>& args,
                                                   const SymState& state) override {
    for (SummaryProvider* provider : providers_) {
      std::optional<std::vector<Application>> result = provider->TryApply(callee, args, state);
      if (result.has_value()) {
        return result;
      }
    }
    return std::nullopt;
  }

 private:
  std::vector<SummaryProvider*> providers_;
};

}  // namespace dnsv

#endif  // DNSV_SYM_SPECSUB_H_

#include "src/sym/refine.h"

#include "src/support/status.h"
#include "src/support/strings.h"

namespace dnsv {

SymbolicIntList MakeSymbolicIntList(TermArena* arena, const std::string& name, int capacity,
                                    int64_t min_elem, int64_t max_elem) {
  SymbolicIntList result;
  Term len = arena->Var(name + ".len", Sort::kInt);
  std::vector<Term> constraints = {arena->Le(arena->IntConst(0), len),
                                   arena->Le(len, arena->IntConst(capacity))};
  std::vector<SymValue> elems;
  elems.reserve(static_cast<size_t>(capacity));
  for (int i = 0; i < capacity; ++i) {
    Term element = arena->Var(StrCat(name, ".", i), Sort::kInt);
    constraints.push_back(arena->Le(arena->IntConst(min_elem), element));
    constraints.push_back(arena->Le(element, arena->IntConst(max_elem)));
    elems.push_back(SymValue::OfTerm(element));
  }
  result.value.kind = SymValue::Kind::kList;
  result.value.elems = std::move(elems);
  result.value.list_len = len;
  result.constraints = arena->AndN(constraints);
  return result;
}

SymbolicInt MakeSymbolicInt(TermArena* arena, const std::string& name, int64_t min,
                            int64_t max) {
  SymbolicInt result;
  Term var = arena->Var(name, Sort::kInt);
  result.value = SymValue::OfTerm(var);
  result.constraints =
      arena->And(arena->Le(arena->IntConst(min), var), arena->Le(var, arena->IntConst(max)));
  return result;
}

Term SymValueEqTerm(const SymValue& a, const SymValue& b, TermArena* arena) {
  if (a.kind != b.kind) {
    return arena->False();
  }
  switch (a.kind) {
    case SymValue::Kind::kUnit:
      return arena->True();
    case SymValue::Kind::kTerm:
      return arena->Eq(a.term, b.term);
    case SymValue::Kind::kPtr:
      return arena->BoolConst(a.block == b.block && a.path == b.path);
    case SymValue::Kind::kStruct: {
      if (a.elems.size() != b.elems.size()) {
        return arena->False();
      }
      std::vector<Term> conjuncts;
      conjuncts.reserve(a.elems.size());
      for (size_t i = 0; i < a.elems.size(); ++i) {
        conjuncts.push_back(SymValueEqTerm(a.elems[i], b.elems[i], arena));
      }
      return arena->AndN(conjuncts);
    }
    case SymValue::Kind::kList: {
      DNSV_CHECK_MSG(a.base_token < 0 && b.base_token < 0,
                     "equality on summarized (based) lists");
      std::vector<Term> conjuncts = {arena->Eq(a.list_len, b.list_len)};
      size_t bound = std::max(a.elems.size(), b.elems.size());
      for (size_t i = 0; i < bound; ++i) {
        Term guard = arena->Lt(arena->IntConst(static_cast<int64_t>(i)), a.list_len);
        // An index < len beyond one side's capacity cannot happen under the
        // global length bounds; False under the guard keeps it conservative.
        Term elem_eq = (i < a.elems.size() && i < b.elems.size())
                           ? SymValueEqTerm(a.elems[i], b.elems[i], arena)
                           : arena->False();
        conjuncts.push_back(arena->Implies(guard, elem_eq));
      }
      return arena->AndN(conjuncts);
    }
  }
  DNSV_CHECK(false);
  return arena->False();
}

RefinementResult CheckFunctionRefinement(SymExecutor* executor, const Function& impl,
                                         const Function& spec,
                                         const std::vector<SymValue>& args,
                                         const SymState& initial_state) {
  RefinementResult result;
  TermArena& arena = executor->arena();
  std::vector<PathOutcome> impl_paths;
  try {
    impl_paths = executor->Explore(impl, args, initial_state);
  } catch (const DnsvError& e) {
    result.aborted = true;
    result.abort_reason = StrCat("impl exploration: ", e.what());
    return result;
  }
  result.impl_paths = static_cast<int64_t>(impl_paths.size());
  for (const PathOutcome& impl_path : impl_paths) {
    if (impl_path.kind == PathOutcome::Kind::kPanicked) {
      RefinementMismatch mismatch;
      mismatch.description = "implementation can panic: " + impl_path.panic_message;
      if (executor->solver().CheckAssuming(impl_path.state.pc) == SatResult::kSat) {
        mismatch.model = executor->solver().GetModel();
      }
      result.mismatches.push_back(std::move(mismatch));
      continue;
    }
    // Explore the spec under this path's condition; every spec path must
    // agree on the return value.
    SymState spec_state = initial_state;
    spec_state.pc = impl_path.state.pc;
    std::vector<PathOutcome> spec_paths;
    try {
      spec_paths = executor->Explore(spec, args, spec_state);
    } catch (const DnsvError& e) {
      result.aborted = true;
      result.abort_reason = StrCat("spec exploration: ", e.what());
      return result;
    }
    result.spec_paths += static_cast<int64_t>(spec_paths.size());
    for (const PathOutcome& spec_path : spec_paths) {
      if (spec_path.kind == PathOutcome::Kind::kPanicked) {
        RefinementMismatch mismatch;
        mismatch.description = "specification panics: " + spec_path.panic_message;
        result.mismatches.push_back(std::move(mismatch));
        continue;
      }
      Term equal = SymValueEqTerm(impl_path.return_value, spec_path.return_value, &arena);
      Term bad = arena.And(spec_path.state.pc, arena.Not(equal));
      if (executor->solver().CheckAssuming(bad) == SatResult::kSat) {
        RefinementMismatch mismatch;
        mismatch.model = executor->solver().GetModel();
        mismatch.description = StrCat(
            "return values differ: impl=", impl_path.return_value.ToString(arena),
            " spec=", spec_path.return_value.ToString(arena), " under model ",
            mismatch.model.ToString());
        result.mismatches.push_back(std::move(mismatch));
      }
    }
  }
  return result;
}

}  // namespace dnsv

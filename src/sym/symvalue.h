// Symbolic runtime values and memory (paper §5.1's flexible memory model).
//
// SymValue mirrors interp::Value but scalar leaves are SMT terms, so a struct
// can be *partially* abstract: some fields concrete (IntConst terms), others
// symbolic variables — exactly the mixed state the paper needs for
// imperfectly encapsulated data structures (Fig. 3).
//
// Lists follow §5.4's encoding: a fixed vector of element slots plus a
// symbolic length term. A list may additionally be "based" on an opaque token
// (the unknown initial contents of a summarized out-parameter): its value is
// BASE(token) ++ elems, and its length is the base length variable + the
// number of appended elements.
#ifndef DNSV_SYM_SYMVALUE_H_
#define DNSV_SYM_SYMVALUE_H_

#include <string>
#include <vector>

#include "src/interp/value.h"
#include "src/ir/type.h"
#include "src/smt/solver.h"
#include "src/smt/term.h"

namespace dnsv {

struct SymValue {
  enum class Kind : uint8_t { kUnit, kTerm, kPtr, kStruct, kList };

  Kind kind = Kind::kUnit;
  Term term;                      // kTerm (int- or bool-sorted)
  BlockIndex block = kNullBlockIndex;  // kPtr (pointers are always concrete)
  std::vector<int64_t> path;      // kPtr index path
  std::vector<SymValue> elems;    // kStruct fields / kList appended elements
  Term list_len;                  // kList total length (Int term)
  int64_t base_token = -1;        // kList: opaque initial contents, -1 = none

  static SymValue Unit() { return SymValue{}; }
  static SymValue OfTerm(Term t) {
    SymValue v;
    v.kind = Kind::kTerm;
    v.term = t;
    return v;
  }
  static SymValue NullPtr() {
    SymValue v;
    v.kind = Kind::kPtr;
    v.block = kNullBlockIndex;
    return v;
  }
  static SymValue Ptr(BlockIndex block, std::vector<int64_t> path = {}) {
    SymValue v;
    v.kind = Kind::kPtr;
    v.block = block;
    v.path = std::move(path);
    return v;
  }
  static SymValue Struct(std::vector<SymValue> fields) {
    SymValue v;
    v.kind = Kind::kStruct;
    v.elems = std::move(fields);
    return v;
  }
  // A concrete-length list (len is derived from elems).
  static SymValue List(std::vector<SymValue> elements, TermArena* arena) {
    SymValue v;
    v.kind = Kind::kList;
    v.list_len = arena->IntConst(static_cast<int64_t>(elements.size()));
    v.elems = std::move(elements);
    return v;
  }

  bool IsNullPtr() const { return kind == Kind::kPtr && block == kNullBlockIndex; }
  bool IsBasedList() const { return kind == Kind::kList && base_token >= 0; }

  std::string ToString(const TermArena& arena) const;
};

// Symbolic memory: block id -> SymValue tree. Block 0 is the null target.
class SymMemory {
 public:
  SymMemory() { blocks_.resize(1); }

  BlockIndex Alloc(SymValue initial) {
    blocks_.push_back(std::move(initial));
    return static_cast<BlockIndex>(blocks_.size() - 1);
  }

  SymValue* Resolve(BlockIndex block, const std::vector<int64_t>& path);
  const SymValue* Resolve(BlockIndex block, const std::vector<int64_t>& path) const {
    return const_cast<SymMemory*>(this)->Resolve(block, path);
  }

  size_t num_blocks() const { return blocks_.size(); }

 private:
  std::vector<SymValue> blocks_;
};

// Lifts a concrete interpreter value into the symbolic domain (all leaves
// become constant terms). Used to load the concrete domain-tree heap (§6.5).
SymValue LiftValue(const Value& value, TermArena* arena);

// Lifts an entire concrete memory into a SymMemory (block ids preserved).
SymMemory LiftMemory(const ConcreteMemory& memory, TermArena* arena);

// The symbolic zero value of `type` (concrete-zero leaves).
SymValue SymZeroValue(const TypeTable& types, Type type, TermArena* arena);

// Lowers a fully-concrete SymValue back to an interpreter Value; CHECK-fails
// on symbolic leaves. `model` (optional) supplies values for variables.
Value ConcretizeValue(const SymValue& value, const TermArena& arena, const Model* model);

// Rebuilds `value` with every term leaf routed through `importer`, so a value
// produced in one worker's arena can be used in another arena. Block indices
// are preserved (both arenas were lifted from the same concrete heap) and so
// are list base tokens.
SymValue ImportSymValue(const SymValue& value, TermImporter* importer);

}  // namespace dnsv

#endif  // DNSV_SYM_SYMVALUE_H_

#include "src/sym/specsub.h"

#include "src/support/status.h"

namespace dnsv {

void SpecSubstitution::Map(const std::string& impl, const std::string& spec) {
  DNSV_CHECK_MSG(module_->GetFunction(spec) != nullptr, "unknown spec function: " + spec);
  spec_for_[impl] = spec;
}

std::optional<std::vector<SummaryProvider::Application>> SpecSubstitution::TryApply(
    const std::string& callee, const std::vector<SymValue>& args, const SymState& state) {
  auto it = spec_for_.find(callee);
  if (it == spec_for_.end()) {
    return std::nullopt;
  }
  const Function* spec = module_->GetFunction(it->second);
  DNSV_CHECK(spec != nullptr);
  // Execute the spec symbolically in the caller's state. A fresh executor
  // (without providers) keeps spec execution self-contained.
  SymExecutor executor(module_, arena_, solver_);
  std::vector<PathOutcome> outcomes;
  try {
    outcomes = executor.Explore(*spec, args, state);
  } catch (const DnsvError&) {
    return std::nullopt;  // fall back to the implementation
  }
  ++substitutions_;
  std::vector<Application> applications;
  applications.reserve(outcomes.size());
  for (PathOutcome& outcome : outcomes) {
    Application app;
    app.state = std::move(outcome.state);
    app.return_value = std::move(outcome.return_value);
    app.panics = outcome.kind == PathOutcome::Kind::kPanicked;
    app.panic_message = std::move(outcome.panic_message);
    applications.push_back(std::move(app));
  }
  return applications;
}

}  // namespace dnsv

// Full-path symbolic execution over AbsIR (paper §5.2).
//
// The executor explores every feasible path of a function, forking at
// symbolic branches (each side is checked against Z3 under the accumulated
// path condition) and returning one PathOutcome per path: the final symbolic
// state plus either a return value or a reached panic block. Reached panic
// blocks ARE the safety violations — GoLLVM-style checks are lowered as
// explicit branches, so "safety" is exactly "no feasible path ends in panic"
// (§4.1, §6.1).
//
// Calls are executed inline by default; a SummaryProvider can intercept
// call sites and apply precomputed summary specifications instead (§5.3).
#ifndef DNSV_SYM_EXECUTOR_H_
#define DNSV_SYM_EXECUTOR_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/ir/function.h"
#include "src/smt/solver.h"
#include "src/smt/term.h"
#include "src/sym/symvalue.h"

namespace dnsv {

struct SymState {
  SymMemory memory;
  Term pc;  // path condition (conjunction)
};

struct PathOutcome {
  enum class Kind : uint8_t { kReturned, kPanicked };
  Kind kind = Kind::kReturned;
  SymState state;
  SymValue return_value;
  std::string panic_message;
};

struct ExecStats {
  int64_t instrs = 0;
  int64_t forks = 0;
  int64_t paths = 0;
  int64_t summary_applications = 0;
  // Feasibility probes issued to the solver layer (constant-folded probes
  // never reach it and are not counted).
  int64_t feasibility_checks = 0;
};

struct ExecLimits {
  int64_t max_paths = 200000;
  int64_t max_instrs = 200'000'000;
  int max_call_depth = 128;
};

// Hook for summarization: given a call site, either applies a summary
// (returning one successor per feasible summary entry) or declines
// (std::nullopt) so the executor inlines the callee.
class SummaryProvider {
 public:
  virtual ~SummaryProvider() = default;
  struct Application {
    SymState state;
    SymValue return_value;
    bool panics = false;
    std::string panic_message;
  };
  virtual std::optional<std::vector<Application>> TryApply(
      const std::string& callee, const std::vector<SymValue>& args, const SymState& state) = 0;
};

class SymExecutor {
 public:
  SymExecutor(const Module* module, TermArena* arena, SolverSession* solver,
              ExecLimits limits = {});

  // Explores `fn` from `state` with the given arguments. Global input
  // constraints (qname length bounds etc.) should be asserted on the solver
  // before calling. Throws DnsvError when the code violates the executor's
  // code-pattern assumptions or a limit is hit.
  std::vector<PathOutcome> Explore(const Function& fn, const std::vector<SymValue>& args,
                                   SymState state);

  void set_summary_provider(SummaryProvider* provider) { summaries_ = provider; }

  const ExecStats& stats() const { return stats_; }
  TermArena& arena() { return *arena_; }
  SolverSession& solver() { return *solver_; }

  // True when `condition` is satisfiable together with the path condition.
  // An unknown verdict (solver timeout) counts as feasible: exploring a path
  // that later proves infeasible is sound — its issues are killed by the
  // compare stage's own check — while dropping a feasible path is not.
  bool Feasible(Term pc, Term condition);

 private:
  struct Frame;

  SymValue EvalOperand(const Frame& frame, const Operand& op);
  // Executes `fn` to completion (all paths) starting from `state`.
  std::vector<PathOutcome> ExecFunction(const Function& fn, const std::vector<SymValue>& args,
                                        SymState state, int depth);
  // Continues execution at (block, index) within `fn`, with frame `frame`.
  std::vector<PathOutcome> ExecFrom(const Function& fn, Frame frame, SymState state,
                                    BlockId block, size_t index, int depth);
  // Concretizes an index term: constant, or unique under pc. nullopt means
  // the index is feasible for several values and the caller must case-split.
  std::optional<int64_t> TryUniqueIndex(Term index, Term pc);

  static constexpr int64_t kIndexProbeLimit = 64;

  SymValue EvalBinOp(const Instr& instr, const SymValue& a, const SymValue& b);
  Term ListEqTerm(const SymValue& a, const SymValue& b);

  const Module* module_;
  TermArena* arena_;
  SolverSession* solver_;
  ExecLimits limits_;
  SummaryProvider* summaries_ = nullptr;
  ExecStats stats_;
  int64_t havoc_counter_ = 0;
};

}  // namespace dnsv

#endif  // DNSV_SYM_EXECUTOR_H_

// CFG utilities over AbsIR functions: successor/predecessor maps, reverse
// postorder, reachability, and a dominator tree. These are the graph
// substrate shared by every dataflow pass in src/analysis/ (and by the
// pruning rebuild, which drops CFG-unreachable blocks).
#ifndef DNSV_ANALYSIS_CFG_H_
#define DNSV_ANALYSIS_CFG_H_

#include <vector>

#include "src/ir/function.h"

namespace dnsv {

// Successor block ids of `block`, in terminator order (br: true then false;
// jmp: target; ret/panic: none). A br with both targets equal yields one
// entry.
std::vector<BlockId> Successors(const Function& fn, BlockId block);

// Predecessor lists for every block, indexed by block id. Each predecessor
// appears once even when it branches to the block on both edges.
std::vector<std::vector<BlockId>> Predecessors(const Function& fn);

// Blocks reachable from the entry by following terminator edges.
std::vector<bool> ReachableBlocks(const Function& fn);

// Reverse postorder of the reachable blocks, starting at the entry. Visiting
// blocks in this order propagates forward-dataflow facts with the fewest
// worklist iterations.
std::vector<BlockId> ReversePostorder(const Function& fn);

// Immediate-dominator tree (Cooper–Harvey–Kennedy over reverse postorder).
// Unreachable blocks have no dominator and dominate nothing.
class DominatorTree {
 public:
  explicit DominatorTree(const Function& fn);

  // Immediate dominator of `block`; the entry's idom is itself.
  // kInvalidBlock for unreachable blocks.
  BlockId idom(BlockId block) const { return idom_[block]; }

  // True when `a` dominates `b` (reflexive). False when either block is
  // unreachable.
  bool Dominates(BlockId a, BlockId b) const;

 private:
  std::vector<BlockId> idom_;
};

}  // namespace dnsv

#endif  // DNSV_ANALYSIS_CFG_H_

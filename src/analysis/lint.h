// MiniGo source lint: the AST-level sibling of the AbsIR dataflow passes.
//
// Four diagnostic categories, chosen because each one corresponds to a
// defect class the verifier can only surface indirectly (as extra paths or
// as a confusing counterexample) while the AST sees it directly:
//
//   use-before-assign   a scalar local declared without an initializer is
//                       read on some path before any assignment. Struct and
//                       list locals are exempt: their MiniGo zero value is
//                       well-defined and idiomatic (as in Go).
//   dead-statement      a statement follows return/panic/break/continue (or
//                       an if whose branches all terminate) in the same
//                       block, so it can never execute.
//   unused-local        a local is declared but never read (assignments are
//                       not uses, matching Go's rule).
//   constant-condition  an if/for condition made of literals folds to a
//                       constant. Conditions referencing named constants are
//                       deliberately NOT flagged: `if featureX == 1` is how
//                       engine versions configure themselves, the MiniGo
//                       analogue of Go's `if debug { ... }`.
//
// Three further categories are interprocedural: the unit is additionally
// lowered to AbsIR and the call graph + bottom-up callee summaries
// (src/analysis/{callgraph,summary}.h) are consulted:
//
//   unused-result       an expression statement discards the result of a
//                       call whose summary proves the callee pure and
//                       panic-free — the statement provably has no effect.
//                       Callees that may panic are exempt: a discarded
//                       panicking call is an assertion.
//   unreachable-function  a function no analysis entry root (LintConfig)
//                       reaches in the call graph. Skipped when the config
//                       names no roots — reachability of a bare file is
//                       meaningless.
//   constant-foldable-guard  an if/for condition that does not literal-fold
//                       but DOES fold once calls are replaced by their
//                       summaries' constant return facts (`if two() == 2`).
//                       Named constants still never fold, so feature gates
//                       stay unflagged here too.
//
// Surfaced through the dnsv-lint CLI (tools/dnsv_lint.cpp) and the ci/check
// `--werror` gate over src/engine/sources/.
#ifndef DNSV_ANALYSIS_LINT_H_
#define DNSV_ANALYSIS_LINT_H_

#include <string>
#include <utility>
#include <vector>

#include "src/support/status.h"

namespace dnsv {

struct LintDiagnostic {
  std::string file;
  int line = 0;
  std::string category;  // one of the categories above
  std::string function;  // enclosing function
  std::string message;

  // "file:line: [category] message (in function)" — stable, sortable.
  std::string ToString() const;
};

struct LintConfig {
  // Functions outside drivers may invoke directly (for the engine:
  // EngineAnalysisRoots()). Non-empty enables unreachable-function; the
  // other interprocedural categories run regardless, since summaries are
  // facts of the bodies alone.
  std::vector<std::string> entry_roots;
};

// Lints several sources parsed and typechecked together as one unit (the
// engine is one package split across files). Diagnostics come back sorted by
// (file, line, category, message). Parse/typecheck failures are errors — the
// lint only runs on well-formed programs.
Result<std::vector<LintDiagnostic>> LintMiniGoSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const LintConfig& config = {});

Result<std::vector<LintDiagnostic>> LintMiniGoSource(const std::string& file_name,
                                                     const std::string& source,
                                                     const LintConfig& config = {});

}  // namespace dnsv

#endif  // DNSV_ANALYSIS_LINT_H_

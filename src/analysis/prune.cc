#include "src/analysis/prune.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "src/analysis/absdomain.h"
#include "src/analysis/alias.h"
#include "src/analysis/callgraph.h"
#include "src/analysis/cfg.h"
#include "src/analysis/dataflow.h"
#include "src/analysis/escape.h"
#include "src/analysis/sccp.h"
#include "src/ir/validate.h"
#include "src/support/logging.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

// Rewrites `fn`'s discharged safety-check branches into jmps. Returns the
// number of rewrites.
int64_t DischargePanicGuards(const Function& const_fn, Function* fn, PruneDomain* domain,
                             const DataflowResult<PruneDomain>& solved) {
  int64_t discharged = 0;
  for (BlockId b = 0; b < const_fn.num_blocks(); ++b) {
    if (!solved.block_in[b].has_value()) continue;  // unreachable under the domain
    const BasicBlock& bb = const_fn.block(b);
    uint32_t term_index = bb.instrs.back();
    const Instr& term = const_fn.instr(term_index);
    if (term.op != Opcode::kBr || term.target_true == term.target_false) continue;
    bool panic_true = const_fn.block(term.target_true).is_panic_block;
    bool panic_false = const_fn.block(term.target_false).is_panic_block;
    if (panic_true == panic_false) continue;  // not a safety-check guard

    AbsState at_term = domain->ExecuteBody(const_fn, *solved.block_in[b], b);
    ValueId cond = domain->OperandValue(&at_term, term.operands[0]);
    Bool3 value = domain->EvalBool(at_term, cond);
    // The guard is discharged when the panic side is infeasible: either the
    // condition constant-folds to the safe side, or asserting the panic side
    // contradicts the state.
    bool panic_side_infeasible;
    if (value != Bool3::kUnknown) {
      panic_side_infeasible = (value == Bool3::kTrue) != panic_true;
    } else {
      AbsState toward_panic = at_term;
      panic_side_infeasible = !domain->Assert(&toward_panic, cond, panic_true);
    }
    if (!panic_side_infeasible) continue;

    BlockId safe_target = panic_true ? term.target_false : term.target_true;
    Instr& rewritten = fn->mutable_instr(term_index);  // aliases `term`
    rewritten.op = Opcode::kJmp;
    rewritten.operands.clear();
    rewritten.target_true = safe_target;
    rewritten.target_false = kInvalidBlock;
    ++discharged;
  }
  return discharged;
}

// Deletes CFG-unreachable blocks and compacts the function. Returns the
// number of removed blocks (panic subset in *panic_blocks_removed), or 0 if
// nothing was removed. Bails out (returns nullopt, function untouched) when a
// surviving operand references an instruction of a removed block —
// rebuilding would dangle. Reachability is recomputed here, on the CFG as it
// stands after whatever rewrites (SCCP, discharge) preceded the call; no
// traversal order from before those edge deletions is reused. On success,
// `instr_map_out` (when non-null) receives old-index -> new-index (UINT32_MAX
// for removed instructions) so callers can renumber side tables keyed by
// instruction index.
std::optional<int64_t> RemoveUnreachableBlocks(Function* fn, int64_t* panic_blocks_removed,
                                               std::vector<uint32_t>* instr_map_out = nullptr) {
  std::vector<bool> reachable = ReachableBlocks(*fn);
  int64_t removed = 0;
  for (BlockId b = 0; b < fn->num_blocks(); ++b) {
    if (!reachable[b]) ++removed;
  }
  if (removed == 0) return 0;

  std::vector<BlockId> block_map(fn->num_blocks(), kInvalidBlock);
  std::vector<uint32_t> kept_instrs;
  int64_t panic_removed = 0;
  BlockId next_block = 0;
  for (BlockId b = 0; b < fn->num_blocks(); ++b) {
    if (!reachable[b]) {
      if (fn->block(b).is_panic_block) ++panic_removed;
      continue;
    }
    block_map[b] = next_block++;
    for (uint32_t index : fn->block(b).instrs) {
      kept_instrs.push_back(index);
    }
  }
  // Renumber by ascending original index: relative order is preserved, so
  // the def-before-use invariant carries over to the new numbering.
  std::sort(kept_instrs.begin(), kept_instrs.end());
  std::vector<uint32_t> instr_map(fn->num_instrs(), UINT32_MAX);
  for (uint32_t i = 0; i < kept_instrs.size(); ++i) {
    instr_map[kept_instrs[i]] = i;
  }

  for (uint32_t index : kept_instrs) {
    for (const Operand& op : fn->instr(index).operands) {
      if (op.kind == Operand::Kind::kReg && !Function::IsParamReg(op.reg) &&
          instr_map[op.reg] == UINT32_MAX) {
        return std::nullopt;  // kept instruction uses a removed definition
      }
    }
  }

  std::vector<Instr> new_instrs;
  new_instrs.reserve(kept_instrs.size());
  for (uint32_t index : kept_instrs) {
    Instr instr = fn->instr(index);
    for (Operand& op : instr.operands) {
      if (op.kind == Operand::Kind::kReg && !Function::IsParamReg(op.reg)) {
        op.reg = instr_map[op.reg];
      }
    }
    // Every surviving edge must land in a surviving block: a reachable
    // block's successors are reachable by definition, so a kInvalidBlock
    // mapping here means the reachability sweep and the rebuild disagree.
    if (instr.target_true != kInvalidBlock) {
      instr.target_true = block_map[instr.target_true];
      DNSV_CHECK_MSG(instr.target_true != kInvalidBlock,
                     "pruned edge into a removed block in " + fn->name());
    }
    if (instr.target_false != kInvalidBlock) {
      instr.target_false = block_map[instr.target_false];
      DNSV_CHECK_MSG(instr.target_false != kInvalidBlock,
                     "pruned edge into a removed block in " + fn->name());
    }
    new_instrs.push_back(std::move(instr));
  }
  std::vector<BasicBlock> new_blocks;
  new_blocks.reserve(fn->num_blocks() - removed);
  for (BlockId b = 0; b < fn->num_blocks(); ++b) {
    if (!reachable[b]) continue;
    BasicBlock block = fn->block(b);
    for (uint32_t& index : block.instrs) {
      index = instr_map[index];
    }
    new_blocks.push_back(std::move(block));
  }
  if (instr_map_out != nullptr) *instr_map_out = instr_map;
  fn->ReplaceBody(std::move(new_blocks), std::move(new_instrs));
  *panic_blocks_removed += panic_removed;
  return removed;
}

// SCCP renumbers instructions when it orphans blocks; the protected-alloc
// side table is keyed by instruction index and must follow.
void RemapProtectedAllocs(InterprocContext* interproc, const std::string& fn_name,
                          const std::vector<uint32_t>& instr_map) {
  auto it = interproc->protected_allocs.find(fn_name);
  if (it == interproc->protected_allocs.end()) return;
  std::set<uint32_t> remapped;
  for (uint32_t old_index : it->second) {
    if (old_index < instr_map.size() && instr_map[old_index] != UINT32_MAX) {
      remapped.insert(instr_map[old_index]);
    }
  }
  it->second = std::move(remapped);
}

}  // namespace

PruneStats& PruneStats::operator+=(const PruneStats& other) {
  functions_analyzed += other.functions_analyzed;
  functions_skipped += other.functions_skipped;
  panics_discharged += other.panics_discharged;
  blocks_removed += other.blocks_removed;
  panic_blocks_removed += other.panic_blocks_removed;
  return *this;
}

std::string PruneStats::ToString() const {
  return StrCat("prune: ", functions_analyzed, " analyzed, ", functions_skipped, " skipped, ",
                panics_discharged, " panics discharged, ", blocks_removed,
                " blocks removed (", panic_blocks_removed, " panic)");
}

PruneStats PruneFunction(const Module& module, Function* fn) {
  return PruneFunction(module, fn, nullptr, nullptr);
}

PruneStats PruneFunction(const Module& module, Function* fn, InterprocContext* interproc,
                         AnalysisStats* analysis) {
  PruneStats stats;

  // Phase 0 (interproc only): fold constant branches and delete the dead
  // sides up front. The fixpoint below then runs on the already-shrunk CFG —
  // its reverse postorder and reachability are computed fresh from the
  // rewritten terminators, never reusing an ordering derived before the edge
  // deletions.
  if (interproc != nullptr) {
    double sccp_start = ElapsedSeconds();
    SccpResult sccp = RunSccp(fn, interproc);
    if (analysis != nullptr) {
      analysis->sccp_seconds += ElapsedSeconds() - sccp_start;
      analysis->sccp_branches_folded += sccp.branches_folded;
    }
    if (sccp.changed) {
      std::vector<uint32_t> instr_map;
      std::optional<int64_t> removed =
          RemoveUnreachableBlocks(fn, &stats.panic_blocks_removed, &instr_map);
      if (removed.has_value() && *removed > 0) {
        stats.blocks_removed += *removed;
        RemapProtectedAllocs(interproc, fn->name(), instr_map);
      }
    }
  }

  // Phase 1: discharge, gated on the soundness preconditions.
  if (!PreflightAllocasDontEscape(*fn)) {
    ++stats.functions_skipped;
  } else {
    ValueTable values;
    PruneDomain domain(&values, interproc);
    DataflowResult<PruneDomain> solved = SolveForwardDataflow(*fn, &domain);
    if (!solved.converged) {
      ++stats.functions_skipped;
    } else {
      ++stats.functions_analyzed;
      stats.panics_discharged = DischargePanicGuards(*fn, fn, &domain, solved);
    }
  }

  // Phase 2: unreachable-block elimination (independent of phase 1; also
  // collects frontend-emitted dead continuations).
  std::vector<uint32_t> instr_map;
  std::optional<int64_t> removed =
      RemoveUnreachableBlocks(fn, &stats.panic_blocks_removed, &instr_map);
  if (removed.has_value()) {
    stats.blocks_removed += *removed;
    if (*removed > 0 && interproc != nullptr) {
      RemapProtectedAllocs(interproc, fn->name(), instr_map);
    }
  }
  ValidateOptions options;
  // The final removal pass succeeding means no unreachable block survives —
  // the invariant the validator then enforces (together with the in-range,
  // no-stale-edge terminator checks it always runs).
  options.require_reachable = removed.has_value();
  Status status = ValidateFunction(module, *fn, options);
  DNSV_CHECK_MSG(status.ok(), StrCat("pruning broke ", fn->name(), ": ", status.message()));
  return stats;
}

PruneStats PruneModule(Module* module) {
  PruneStats stats;
  for (const auto& fn : module->functions()) {
    stats += PruneFunction(*module, fn.get());
  }
  return stats;
}

PruneStats PruneModule(Module* module, const PruneOptions& options, AnalysisStats* analysis) {
  if (!options.interproc) {
    PruneStats stats;
    for (const auto& fn : module->functions()) {
      stats += PruneFunction(*module, fn.get(), nullptr, analysis);
    }
    return stats;
  }

  // Whole-module facts first. Summaries and points-to are computed on the
  // module as lifted; SCCP runs per function inside PruneFunction, after
  // which the context's instruction-indexed side table is renumbered along
  // with the function. A precomputed context (artifact-store replay) skips
  // the whole-module passes entirely; both paths feed the loop the same
  // facts, so the rewritten module is byte-identical either way — the store
  // cross-checks that with the persisted post-prune fingerprint.
  InterprocContext ctx;
  if (options.precomputed != nullptr) {
    ctx = *options.precomputed;
  } else {
    double graph_start = ElapsedSeconds();
    CallGraph graph = CallGraph::Build(*module);
    if (analysis != nullptr) {
      analysis->callgraph_seconds += ElapsedSeconds() - graph_start;
    }
    ctx = ComputeInterprocContext(*module, graph, options.entry_points, analysis);
    PointsTo points_to = PointsTo::Solve(*module, graph, options.entry_points, analysis);
    EscapeResult escapes = ComputeEscapes(*module, graph, points_to, analysis);
    ctx.protected_allocs = escapes.local_allocs;
  }
  if (options.capture != nullptr) {
    *options.capture = ctx;  // before the loop renumbers allocation indices
  }

  PruneStats stats;
  for (const auto& fn : module->functions()) {
    stats += PruneFunction(*module, fn.get(), &ctx, analysis);
  }
  return stats;
}

}  // namespace dnsv

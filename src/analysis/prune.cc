#include "src/analysis/prune.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "src/analysis/absdomain.h"
#include "src/analysis/cfg.h"
#include "src/analysis/dataflow.h"
#include "src/ir/validate.h"
#include "src/support/logging.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

// Rewrites `fn`'s discharged safety-check branches into jmps. Returns the
// number of rewrites.
int64_t DischargePanicGuards(const Function& const_fn, Function* fn, PruneDomain* domain,
                             const DataflowResult<PruneDomain>& solved) {
  int64_t discharged = 0;
  for (BlockId b = 0; b < const_fn.num_blocks(); ++b) {
    if (!solved.block_in[b].has_value()) continue;  // unreachable under the domain
    const BasicBlock& bb = const_fn.block(b);
    uint32_t term_index = bb.instrs.back();
    const Instr& term = const_fn.instr(term_index);
    if (term.op != Opcode::kBr || term.target_true == term.target_false) continue;
    bool panic_true = const_fn.block(term.target_true).is_panic_block;
    bool panic_false = const_fn.block(term.target_false).is_panic_block;
    if (panic_true == panic_false) continue;  // not a safety-check guard

    AbsState at_term = domain->ExecuteBody(const_fn, *solved.block_in[b], b);
    ValueId cond = domain->OperandValue(&at_term, term.operands[0]);
    Bool3 value = domain->EvalBool(at_term, cond);
    // The guard is discharged when the panic side is infeasible: either the
    // condition constant-folds to the safe side, or asserting the panic side
    // contradicts the state.
    bool panic_side_infeasible;
    if (value != Bool3::kUnknown) {
      panic_side_infeasible = (value == Bool3::kTrue) != panic_true;
    } else {
      AbsState toward_panic = at_term;
      panic_side_infeasible = !domain->Assert(&toward_panic, cond, panic_true);
    }
    if (!panic_side_infeasible) continue;

    BlockId safe_target = panic_true ? term.target_false : term.target_true;
    Instr& rewritten = fn->mutable_instr(term_index);  // aliases `term`
    rewritten.op = Opcode::kJmp;
    rewritten.operands.clear();
    rewritten.target_true = safe_target;
    rewritten.target_false = kInvalidBlock;
    ++discharged;
  }
  return discharged;
}

// Deletes CFG-unreachable blocks and compacts the function. Returns the
// number of removed blocks (panic subset in *panic_blocks_removed), or 0 if
// nothing was removed. Bails out (returns nullopt) when a surviving operand
// references an instruction of a removed block — rebuilding would dangle.
std::optional<int64_t> RemoveUnreachableBlocks(Function* fn, int64_t* panic_blocks_removed) {
  std::vector<bool> reachable = ReachableBlocks(*fn);
  int64_t removed = 0;
  for (BlockId b = 0; b < fn->num_blocks(); ++b) {
    if (!reachable[b]) ++removed;
  }
  if (removed == 0) return 0;

  std::vector<BlockId> block_map(fn->num_blocks(), kInvalidBlock);
  std::vector<uint32_t> kept_instrs;
  int64_t panic_removed = 0;
  BlockId next_block = 0;
  for (BlockId b = 0; b < fn->num_blocks(); ++b) {
    if (!reachable[b]) {
      if (fn->block(b).is_panic_block) ++panic_removed;
      continue;
    }
    block_map[b] = next_block++;
    for (uint32_t index : fn->block(b).instrs) {
      kept_instrs.push_back(index);
    }
  }
  // Renumber by ascending original index: relative order is preserved, so
  // the def-before-use invariant carries over to the new numbering.
  std::sort(kept_instrs.begin(), kept_instrs.end());
  std::vector<uint32_t> instr_map(fn->num_instrs(), UINT32_MAX);
  for (uint32_t i = 0; i < kept_instrs.size(); ++i) {
    instr_map[kept_instrs[i]] = i;
  }

  for (uint32_t index : kept_instrs) {
    for (const Operand& op : fn->instr(index).operands) {
      if (op.kind == Operand::Kind::kReg && !Function::IsParamReg(op.reg) &&
          instr_map[op.reg] == UINT32_MAX) {
        return std::nullopt;  // kept instruction uses a removed definition
      }
    }
  }

  std::vector<Instr> new_instrs;
  new_instrs.reserve(kept_instrs.size());
  for (uint32_t index : kept_instrs) {
    Instr instr = fn->instr(index);
    for (Operand& op : instr.operands) {
      if (op.kind == Operand::Kind::kReg && !Function::IsParamReg(op.reg)) {
        op.reg = instr_map[op.reg];
      }
    }
    if (instr.target_true != kInvalidBlock) {
      instr.target_true = block_map[instr.target_true];
    }
    if (instr.target_false != kInvalidBlock) {
      instr.target_false = block_map[instr.target_false];
    }
    new_instrs.push_back(std::move(instr));
  }
  std::vector<BasicBlock> new_blocks;
  new_blocks.reserve(fn->num_blocks() - removed);
  for (BlockId b = 0; b < fn->num_blocks(); ++b) {
    if (!reachable[b]) continue;
    BasicBlock block = fn->block(b);
    for (uint32_t& index : block.instrs) {
      index = instr_map[index];
    }
    new_blocks.push_back(std::move(block));
  }
  fn->ReplaceBody(std::move(new_blocks), std::move(new_instrs));
  *panic_blocks_removed += panic_removed;
  return removed;
}

}  // namespace

PruneStats& PruneStats::operator+=(const PruneStats& other) {
  functions_analyzed += other.functions_analyzed;
  functions_skipped += other.functions_skipped;
  panics_discharged += other.panics_discharged;
  blocks_removed += other.blocks_removed;
  panic_blocks_removed += other.panic_blocks_removed;
  return *this;
}

std::string PruneStats::ToString() const {
  return StrCat("prune: ", functions_analyzed, " analyzed, ", functions_skipped, " skipped, ",
                panics_discharged, " panics discharged, ", blocks_removed,
                " blocks removed (", panic_blocks_removed, " panic)");
}

PruneStats PruneFunction(const Module& module, Function* fn) {
  PruneStats stats;
  // Phase 1: discharge, gated on the soundness preconditions.
  if (!PreflightAllocasDontEscape(*fn)) {
    ++stats.functions_skipped;
  } else {
    ValueTable values;
    PruneDomain domain(&values);
    DataflowResult<PruneDomain> solved = SolveForwardDataflow(*fn, &domain);
    if (!solved.converged) {
      ++stats.functions_skipped;
    } else {
      ++stats.functions_analyzed;
      stats.panics_discharged = DischargePanicGuards(*fn, fn, &domain, solved);
    }
  }
  // Phase 2: unreachable-block elimination (independent of phase 1; also
  // collects frontend-emitted dead continuations).
  std::optional<int64_t> removed = RemoveUnreachableBlocks(fn, &stats.panic_blocks_removed);
  bool compacted = removed.has_value();
  if (compacted) {
    stats.blocks_removed = *removed;
  }
  ValidateOptions options;
  options.require_reachable = compacted;
  Status status = ValidateFunction(module, *fn, options);
  DNSV_CHECK_MSG(status.ok(), StrCat("pruning broke ", fn->name(), ": ", status.message()));
  return stats;
}

PruneStats PruneModule(Module* module) {
  PruneStats stats;
  for (const auto& fn : module->functions()) {
    stats += PruneFunction(*module, fn.get());
  }
  return stats;
}

}  // namespace dnsv

// Call graph over one AbsIR module.
//
// AbsIR calls are direct (kCall names its callee in `Instr::text`; MiniGo has
// no function values), so the graph is exact: one node per module function,
// one edge per distinct (caller, callee) pair. The only callee without a body
// is the `listEq` intrinsic (src/ir/validate.cc special-cases it the same
// way); it is tracked as a leaf flag rather than a node.
//
// On top of the edges the graph precomputes what every interprocedural pass
// needs: Tarjan SCCs with a bottom-up (callee-first) component order for
// summary computation, a topological caller-first order for propagating
// call-site facts down, and reachability from a set of entry roots for
// dead-function detection.
#ifndef DNSV_ANALYSIS_CALLGRAPH_H_
#define DNSV_ANALYSIS_CALLGRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ir/function.h"

namespace dnsv {

// The one callee every module may name without defining it.
inline bool IsIntrinsicCallee(const std::string& name) { return name == "listEq"; }

class CallGraph {
 public:
  static CallGraph Build(const Module& module);

  size_t size() const { return functions_.size(); }
  const Function& function(int node) const { return *functions_[node]; }
  // -1 when `name` is not a module function (intrinsics, typos).
  int NodeOf(const std::string& name) const;

  const std::set<int>& Callees(int node) const { return callees_[node]; }
  const std::set<int>& Callers(int node) const { return callers_[node]; }
  // True when `node` contains a kCall whose callee is neither a module
  // function nor a known intrinsic; summaries must go pessimistic on it.
  bool HasUnknownCallee(int node) const { return has_unknown_callee_[node]; }

  // SCC id per node; ids are numbered so that scc_of(callee) <= scc_of(caller)
  // for every edge — iterating components by ascending id is bottom-up.
  int SccOf(int node) const { return scc_of_[node]; }
  const std::vector<std::vector<int>>& SccsBottomUp() const { return sccs_; }
  // A component that cannot recurse: a single member without a self edge.
  bool SccIsTrivial(int scc) const;

  // Every node reachable from the named roots (roots included). Root names
  // that are not module functions are ignored.
  std::set<int> ReachableFrom(const std::vector<std::string>& roots) const;

 private:
  std::vector<const Function*> functions_;
  std::map<std::string, int> node_of_;
  std::vector<std::set<int>> callees_;
  std::vector<std::set<int>> callers_;
  std::vector<bool> has_unknown_callee_;
  std::vector<int> scc_of_;
  std::vector<std::vector<int>> sccs_;  // ascending id = bottom-up
};

}  // namespace dnsv

#endif  // DNSV_ANALYSIS_CALLGRAPH_H_

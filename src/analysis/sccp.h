// Sparse conditional constant propagation over one AbsIR function.
//
// Classic three-level lattice per register (unexecuted / constant /
// overdefined) driven by an executable-edge worklist: a conditional branch
// whose condition is constant marks only the taken edge executable, so
// constants are propagated along feasible paths only. Interprocedural inputs
// come from the summary layer: a call to a function with a constant return
// value is a constant, exactly like a literal.
//
// The transformation is the part the intraprocedural pruner cannot do: a
// kBr whose condition folded to a constant is rewritten into a kJmp — ANY
// constant branch, not just panic guards. The frontend lowers version
// feature gates (`if FEATURE_GLUE == 1`, src/engine/sources/features.mg)
// into exactly such branches, so SCCP is what finally deletes the disabled
// side of every feature gate from the CFG before the symbolic executor and
// the discharge pass run. Unreachable blocks are left in place; callers run
// RemoveUnreachableBlocks (prune.cc) afterwards.
//
// Soundness: the lattice only ever claims "this register holds exactly k on
// every execution"; division/modulo by a constant zero goes overdefined
// instead of folding (the panic stays). Rewriting a constant branch removes
// edges no concrete execution takes.
#ifndef DNSV_ANALYSIS_SCCP_H_
#define DNSV_ANALYSIS_SCCP_H_

#include <cstdint>

#include "src/ir/function.h"

namespace dnsv {

struct InterprocContext;

struct SccpResult {
  int64_t branches_folded = 0;  // constant kBrs rewritten into kJmps
  bool changed = false;
};

// Folds constant branches of `fn` in place. `interproc` may be null (literal
// constants still fold); with summaries, constant-returning calls fold too.
SccpResult RunSccp(Function* fn, const InterprocContext* interproc);

}  // namespace dnsv

#endif  // DNSV_ANALYSIS_SCCP_H_

#include "src/analysis/cfg.h"

#include <algorithm>

namespace dnsv {
namespace {

const Instr& Terminator(const Function& fn, BlockId block) {
  const BasicBlock& bb = fn.block(block);
  DNSV_CHECK(!bb.instrs.empty());
  return fn.instr(bb.instrs.back());
}

// Depth-first postorder from the entry; `post` receives reachable blocks.
void Postorder(const Function& fn, std::vector<BlockId>* post) {
  std::vector<bool> visited(fn.num_blocks(), false);
  // Explicit stack: (block, next successor index to visit).
  std::vector<std::pair<BlockId, size_t>> stack;
  visited[fn.entry()] = true;
  stack.emplace_back(fn.entry(), 0);
  while (!stack.empty()) {
    auto& [block, next] = stack.back();
    std::vector<BlockId> succs = Successors(fn, block);
    if (next < succs.size()) {
      BlockId succ = succs[next++];
      if (!visited[succ]) {
        visited[succ] = true;
        stack.emplace_back(succ, 0);
      }
    } else {
      post->push_back(block);
      stack.pop_back();
    }
  }
}

}  // namespace

std::vector<BlockId> Successors(const Function& fn, BlockId block) {
  const Instr& term = Terminator(fn, block);
  switch (term.op) {
    case Opcode::kBr:
      if (term.target_true == term.target_false) {
        return {term.target_true};
      }
      return {term.target_true, term.target_false};
    case Opcode::kJmp:
      return {term.target_true};
    default:
      return {};
  }
}

std::vector<std::vector<BlockId>> Predecessors(const Function& fn) {
  std::vector<std::vector<BlockId>> preds(fn.num_blocks());
  for (BlockId b = 0; b < fn.num_blocks(); ++b) {
    for (BlockId succ : Successors(fn, b)) {
      std::vector<BlockId>& list = preds[succ];
      if (std::find(list.begin(), list.end(), b) == list.end()) {
        list.push_back(b);
      }
    }
  }
  return preds;
}

std::vector<bool> ReachableBlocks(const Function& fn) {
  std::vector<bool> reachable(fn.num_blocks(), false);
  std::vector<BlockId> stack = {fn.entry()};
  reachable[fn.entry()] = true;
  while (!stack.empty()) {
    BlockId block = stack.back();
    stack.pop_back();
    for (BlockId succ : Successors(fn, block)) {
      if (!reachable[succ]) {
        reachable[succ] = true;
        stack.push_back(succ);
      }
    }
  }
  return reachable;
}

std::vector<BlockId> ReversePostorder(const Function& fn) {
  std::vector<BlockId> post;
  Postorder(fn, &post);
  std::reverse(post.begin(), post.end());
  return post;
}

DominatorTree::DominatorTree(const Function& fn) : idom_(fn.num_blocks(), kInvalidBlock) {
  std::vector<BlockId> rpo = ReversePostorder(fn);
  std::vector<int> rpo_index(fn.num_blocks(), -1);
  for (size_t i = 0; i < rpo.size(); ++i) {
    rpo_index[rpo[i]] = static_cast<int>(i);
  }
  std::vector<std::vector<BlockId>> preds = Predecessors(fn);
  idom_[fn.entry()] = fn.entry();

  // Cooper–Harvey–Kennedy: intersect processed predecessors until fixpoint.
  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom_[a];
      while (rpo_index[b] > rpo_index[a]) b = idom_[b];
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId block : rpo) {
      if (block == fn.entry()) continue;
      BlockId new_idom = kInvalidBlock;
      for (BlockId pred : preds[block]) {
        if (rpo_index[pred] < 0 || idom_[pred] == kInvalidBlock) {
          continue;  // unreachable or not yet processed
        }
        new_idom = new_idom == kInvalidBlock ? pred : intersect(pred, new_idom);
      }
      if (new_idom != kInvalidBlock && idom_[block] != new_idom) {
        idom_[block] = new_idom;
        changed = true;
      }
    }
  }
}

bool DominatorTree::Dominates(BlockId a, BlockId b) const {
  if (a >= idom_.size() || b >= idom_.size()) return false;
  if (idom_[a] == kInvalidBlock || idom_[b] == kInvalidBlock) return false;
  BlockId cur = b;
  while (true) {
    if (cur == a) return true;
    BlockId up = idom_[cur];
    if (up == cur) return false;  // reached the entry
    cur = up;
  }
}

}  // namespace dnsv

// Integer-interval lattice for the AbsIR dataflow passes.
//
// An Interval is a pair [lo, hi] of extended integers. The sentinel values
// kNegInf / kPosInf (INT64_MIN / INT64_MAX) denote unbounded ends; a bound
// that would reach either sentinel saturates to it, so the concrete extremes
// INT64_MIN and INT64_MAX are absorbed into "unbounded" — a sound (if
// slightly imprecise) treatment that keeps every operation total without a
// separate infinity representation. The empty interval is not representable;
// operations that can produce it (Meet) return std::nullopt instead, which
// the panic-discharge domain reads as "this edge is infeasible".
#ifndef DNSV_ANALYSIS_INTERVAL_H_
#define DNSV_ANALYSIS_INTERVAL_H_

#include <cstdint>
#include <optional>
#include <string>

namespace dnsv {

struct Interval {
  static constexpr int64_t kNegInf = INT64_MIN;
  static constexpr int64_t kPosInf = INT64_MAX;

  int64_t lo = kNegInf;
  int64_t hi = kPosInf;

  static Interval Top() { return {kNegInf, kPosInf}; }
  static Interval Const(int64_t v) { return {v, v}; }
  // Builds [lo, hi]; callers must pass lo <= hi.
  static Interval Range(int64_t lo, int64_t hi);

  bool IsTop() const { return lo == kNegInf && hi == kPosInf; }
  bool IsConst() const { return lo == hi && lo != kNegInf && hi != kPosInf; }
  bool Contains(int64_t v) const { return lo <= v && v <= hi; }

  bool operator==(const Interval& other) const { return lo == other.lo && hi == other.hi; }
  bool operator!=(const Interval& other) const { return !(*this == other); }

  std::string ToString() const;
};

// Least upper bound: the smallest interval containing both.
Interval Join(const Interval& a, const Interval& b);

// Widening: any bound of `next` that moved past the corresponding bound of
// `prev` jumps straight to the matching infinity. Join followed by Widen at
// loop heads guarantees the solver terminates.
Interval Widen(const Interval& prev, const Interval& next);

// Intersection; nullopt when the intervals are disjoint (the empty interval).
std::optional<Interval> Meet(const Interval& a, const Interval& b);

// Abstract arithmetic. All results are sound over-approximations; bounds
// saturate to the infinities instead of wrapping.
Interval IntervalAdd(const Interval& a, const Interval& b);
Interval IntervalSub(const Interval& a, const Interval& b);
Interval IntervalMul(const Interval& a, const Interval& b);
Interval IntervalNeg(const Interval& a);

// Definite comparisons: true only when every pair of concrete values from
// the two intervals satisfies the relation. (Unbounded ends never prove
// anything, since the sentinels also absorb the concrete extremes.)
bool ProvablyLt(const Interval& a, const Interval& b);
bool ProvablyLe(const Interval& a, const Interval& b);
bool ProvablyNe(const Interval& a, const Interval& b);

}  // namespace dnsv

#endif  // DNSV_ANALYSIS_INTERVAL_H_

#include "src/analysis/absdomain.h"

#include <algorithm>
#include <functional>

#include "src/analysis/callgraph.h"
#include "src/analysis/summary.h"
#include "src/support/logging.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

constexpr int kMaxEvalDepth = 16;

Bool3 Not3(Bool3 v) {
  if (v == Bool3::kTrue) return Bool3::kFalse;
  if (v == Bool3::kFalse) return Bool3::kTrue;
  return Bool3::kUnknown;
}

Bool3 And3(Bool3 a, Bool3 b) {
  if (a == Bool3::kFalse || b == Bool3::kFalse) return Bool3::kFalse;
  if (a == Bool3::kTrue && b == Bool3::kTrue) return Bool3::kTrue;
  return Bool3::kUnknown;
}

Bool3 Or3(Bool3 a, Bool3 b) {
  if (a == Bool3::kTrue || b == Bool3::kTrue) return Bool3::kTrue;
  if (a == Bool3::kFalse && b == Bool3::kFalse) return Bool3::kFalse;
  return Bool3::kUnknown;
}

Bool3 FromBool(bool v) { return v ? Bool3::kTrue : Bool3::kFalse; }

AbsFacts JoinFacts(const AbsFacts& prev, const AbsFacts& inc, bool widen) {
  AbsFacts out;
  Interval joined = Join(prev.range, inc.range);
  out.range = widen ? Widen(prev.range, joined) : joined;
  out.boolean = prev.boolean == inc.boolean ? prev.boolean : Bool3::kUnknown;
  out.nullness = prev.nullness == inc.nullness ? prev.nullness : Null3::kMaybe;
  return out;
}

std::pair<ValueId, ValueId> EqPair(ValueId a, ValueId b) {
  return {std::min(a, b), std::max(a, b)};
}

// Reachability closure of the relational sets: 2 when a chain from `a` to `b`
// contains a strict (<) edge, 1 for a non-strict (<= / ==) chain, 0 when `b`
// is not reachable. This is what turns  i < lenA, lenA == lenB  into
// i < lenB, and  i < lenZone, lenZone <= lenName  into  i < lenName. Each
// value enters the worklist at most twice (strength only upgrades), so the
// walk terminates on any relation graph.
int RelReach(const AbsState& state, ValueId a, ValueId b) {
  if (a == b) return 1;
  std::map<ValueId, int> best;
  std::vector<std::pair<ValueId, int>> work = {{a, 1}};
  best[a] = 1;
  while (!work.empty()) {
    auto [cur, strength] = work.back();
    work.pop_back();
    auto push = [&](ValueId next, int s) {
      int& slot = best[next];
      if (s > slot) {
        slot = s;
        work.emplace_back(next, s);
      }
    };
    for (const auto& [u, v] : state.lt) {
      if (u == cur) push(v, 2);
    }
    for (const auto& [u, v] : state.le) {
      if (u == cur) push(v, strength);
    }
    for (const auto& [u, v] : state.eq) {
      if (u == cur) push(v, strength);
      if (v == cur) push(u, strength);
    }
  }
  auto it = best.find(b);
  return it == best.end() ? 0 : it->second;
}

}  // namespace

ValueId ValueTable::Intern(std::string key, Def def) {
  auto it = interned_.find(key);
  if (it != interned_.end()) return it->second;
  ValueId id = static_cast<ValueId>(defs_.size());
  defs_.push_back(std::move(def));
  interned_.emplace(std::move(key), id);
  return id;
}

ValueId ValueTable::IntConst(int64_t value) {
  Def def;
  def.kind = Def::Kind::kIntConst;
  def.imm = value;
  return Intern(StrCat("i:", value), std::move(def));
}

ValueId ValueTable::BoolConst(bool value) {
  Def def;
  def.kind = Def::Kind::kBoolConst;
  def.imm = value ? 1 : 0;
  return Intern(value ? "b:1" : "b:0", std::move(def));
}

ValueId ValueTable::Null() {
  Def def;
  def.kind = Def::Kind::kNull;
  return Intern("null", std::move(def));
}

ValueId ValueTable::Param(uint32_t index) {
  Def def;
  def.kind = Def::Kind::kParam;
  def.imm = index;
  return Intern(StrCat("p:", index), std::move(def));
}

ValueId ValueTable::Cell(uint32_t instr) {
  Def def;
  def.kind = Def::Kind::kCell;
  def.imm = instr;
  return Intern(StrCat("c:", instr), std::move(def));
}

ValueId ValueTable::Pure(Opcode op, BinOp bin_op, UnOp un_op, std::vector<ValueId> args,
                         int64_t imm) {
  std::string key = StrCat("u:", static_cast<int>(op), ":", static_cast<int>(bin_op), ":",
                           static_cast<int>(un_op), ":", imm);
  for (ValueId a : args) {
    key += StrCat(",", a);
  }
  Def def;
  def.kind = Def::Kind::kPure;
  def.op = op;
  def.bin_op = bin_op;
  def.un_op = un_op;
  def.args = std::move(args);
  def.imm = imm;
  return Intern(std::move(key), std::move(def));
}

ValueId ValueTable::PureCall(const std::string& callee, std::vector<ValueId> args) {
  std::string key = StrCat("pc:", callee);
  for (ValueId a : args) {
    key += StrCat(",", a);
  }
  Def def;
  def.kind = Def::Kind::kPure;
  def.op = Opcode::kCall;
  def.args = std::move(args);
  def.text = callee;
  return Intern(std::move(key), std::move(def));
}

ValueId ValueTable::Fresh(uint32_t instr, bool nonnull) {
  Def def;
  def.kind = Def::Kind::kFresh;
  def.imm = instr;
  def.nonnull = nonnull;
  ValueId id = static_cast<ValueId>(defs_.size());
  defs_.push_back(std::move(def));  // never interned: each instance is new
  return id;
}

ValueId ValueTable::JoinValue(BlockId block, char space, uint64_t key) {
  Def def;
  def.kind = Def::Kind::kJoin;
  def.imm = static_cast<int64_t>(key);
  return Intern(StrCat("j:", block, ":", space, ":", key), std::move(def));
}

bool PreflightAllocasDontEscape(const Function& fn) {
  // Registers holding an alloca address or a gep derived from one.
  std::vector<bool> stack_addr(fn.num_instrs(), false);
  for (uint32_t i = 0; i < fn.num_instrs(); ++i) {
    const Instr& instr = fn.instr(i);
    if (instr.op == Opcode::kAlloca) {
      stack_addr[i] = true;
    } else if (instr.op == Opcode::kGep) {
      const Operand& base = instr.operands[0];
      if (base.kind == Operand::Kind::kReg && !Function::IsParamReg(base.reg) &&
          stack_addr[base.reg]) {
        stack_addr[i] = true;
      }
    }
  }
  for (uint32_t i = 0; i < fn.num_instrs(); ++i) {
    const Instr& instr = fn.instr(i);
    for (size_t k = 0; k < instr.operands.size(); ++k) {
      const Operand& op = instr.operands[k];
      if (op.kind != Operand::Kind::kReg || Function::IsParamReg(op.reg) ||
          !stack_addr[op.reg]) {
        continue;
      }
      bool allowed = (instr.op == Opcode::kLoad && k == 0) ||
                     (instr.op == Opcode::kStore && k == 0) ||
                     (instr.op == Opcode::kGep && k == 0);
      if (!allowed) {
        return false;
      }
    }
  }
  return true;
}

AbsState PruneDomain::EntryState(const Function& fn) {
  AbsState state;
  if (interproc_ != nullptr) {
    const std::vector<AbsFacts>* facts = interproc_->ParamFactsFor(fn.name());
    if (facts != nullptr) {
      for (size_t i = 0; i < facts->size() && i < fn.params().size(); ++i) {
        if (!(*facts)[i].IsTop()) {
          state.facts[values_->Param(static_cast<uint32_t>(i))] = (*facts)[i];
        }
      }
    }
  }
  return state;
}

ValueId PruneDomain::OperandValue(State* state, const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::kReg:
      if (Function::IsParamReg(op.reg)) {
        return values_->Param(Function::ParamIndex(op.reg));
      } else {
        auto it = state->regs.find(op.reg);
        if (it != state->regs.end()) return it->second;
        // Defined in a block this path never executed (index-order use
        // without dominance); treat as unknown.
        return values_->Fresh(op.reg, false);
      }
    case Operand::Kind::kIntConst:
      return values_->IntConst(op.imm);
    case Operand::Kind::kBoolConst:
      return values_->BoolConst(op.imm != 0);
    case Operand::Kind::kNull:
      return values_->Null();
    case Operand::Kind::kNone:
      break;
  }
  DNSV_CHECK_MSG(false, "invalid operand");
  return 0;
}

ValueId PruneDomain::AddressRoot(ValueId id) const {
  while (true) {
    const ValueTable::Def& def = values_->def(id);
    if (def.kind == ValueTable::Def::Kind::kPure && def.op == Opcode::kGep) {
      id = def.args[0];
      continue;
    }
    return id;
  }
}

bool PruneDomain::RootIsCell(ValueId id) const {
  return values_->def(AddressRoot(id)).kind == ValueTable::Def::Kind::kCell;
}

void PruneDomain::EraseRootedAt(State* state, ValueId root) {
  for (auto it = state->mem.begin(); it != state->mem.end();) {
    if (AddressRoot(it->first) == root) {
      it = state->mem.erase(it);
    } else {
      ++it;
    }
  }
}

bool PruneDomain::RootTakesStrongUpdates(const Function& fn, ValueId root) const {
  const ValueTable::Def& def = values_->def(root);
  if (def.kind == ValueTable::Def::Kind::kCell) return true;
  // A protected allocation behaves like a stack slot: the escape analysis
  // proved its address never leaves this function, so no callee and no other
  // tracked pointer can alias it. (An untracked in-function alias would root
  // at a non-newobject Fresh value and clobber conservatively instead.)
  return def.kind == ValueTable::Def::Kind::kFresh && interproc_ != nullptr &&
         def.imm >= 0 && static_cast<size_t>(def.imm) < fn.num_instrs() &&
         fn.instr(static_cast<uint32_t>(def.imm)).op == Opcode::kNewObject &&
         interproc_->IsProtectedAlloc(fn.name(), static_cast<uint32_t>(def.imm));
}

void PruneDomain::EraseHeapEntries(State* state, const Function& fn, bool protect_local) {
  for (auto it = state->mem.begin(); it != state->mem.end();) {
    ValueId root = AddressRoot(it->first);
    bool keep = values_->def(root).kind == ValueTable::Def::Kind::kCell ||
                (protect_local && RootTakesStrongUpdates(fn, root));
    if (!keep) {
      it = state->mem.erase(it);
    } else {
      ++it;
    }
  }
}

bool PruneDomain::AddressIsLocal(const State& state, const Function& fn, ValueId addr) const {
  (void)state;
  ValueId root = AddressRoot(addr);
  const ValueTable::Def& def = values_->def(root);
  if (def.kind == ValueTable::Def::Kind::kCell) return true;
  return def.kind == ValueTable::Def::Kind::kFresh && def.imm >= 0 &&
         static_cast<size_t>(def.imm) < fn.num_instrs() &&
         fn.instr(static_cast<uint32_t>(def.imm)).op == Opcode::kNewObject;
}

void PruneDomain::ExecInstr(State* state, const Function& fn, uint32_t index) {
  const Instr& instr = fn.instr(index);
  auto operand = [&](size_t i) { return OperandValue(state, instr.operands[i]); };
  switch (instr.op) {
    case Opcode::kBinOp:
      state->regs[index] =
          values_->Pure(instr.op, instr.bin_op, UnOp::kNot, {operand(0), operand(1)}, 0);
      break;
    case Opcode::kUnOp:
      state->regs[index] = values_->Pure(instr.op, BinOp::kAdd, instr.un_op, {operand(0)}, 0);
      break;
    case Opcode::kAlloca:
      state->regs[index] = values_->Cell(index);
      break;
    case Opcode::kNewObject:
      state->regs[index] = values_->Fresh(index, /*nonnull=*/true);
      break;
    case Opcode::kLoad: {
      ValueId addr = operand(0);
      auto it = state->mem.find(addr);
      if (it != state->mem.end()) {
        state->regs[index] = it->second;
      } else {
        ValueId fresh = values_->Fresh(index, false);
        state->mem.emplace(addr, fresh);  // repeated loads see one value until
                                          // a clobber drops the entry
        state->regs[index] = fresh;
      }
      break;
    }
    case Opcode::kStore: {
      ValueId addr = operand(0);
      ValueId value = operand(1);
      ValueId root = AddressRoot(addr);
      if (RootTakesStrongUpdates(fn, root)) {
        // Strong update: the preflight guarantees nothing else aliases a
        // stack slot, and the escape analysis guarantees it for protected
        // allocations. A partial (gep) store first drops everything known
        // about the slot, then records the one written component.
        EraseRootedAt(state, root);
      } else {
        // Any heap location may alias `addr` — including a protected
        // allocation this unknown pointer secretly points at, so
        // protect_local must stay off here.
        EraseHeapEntries(state, fn, /*protect_local=*/false);
      }
      state->mem[addr] = value;
      break;
    }
    case Opcode::kGep: {
      std::vector<ValueId> args;
      args.reserve(instr.operands.size());
      for (size_t i = 0; i < instr.operands.size(); ++i) args.push_back(operand(i));
      state->regs[index] = values_->Pure(instr.op, BinOp::kAdd, UnOp::kNot, std::move(args), 0);
      break;
    }
    case Opcode::kCall: {
      const CalleeSummary* summary =
          interproc_ != nullptr ? interproc_->SummaryFor(instr.text) : nullptr;
      bool intrinsic = interproc_ != nullptr && IsIntrinsicCallee(instr.text);
      bool pure = intrinsic || (summary != nullptr && summary->pure);
      // Evaluate arguments before any clobber so the interned value reflects
      // the pre-call state.
      ValueId result;
      if (pure && (intrinsic || summary->heap_independent)) {
        std::vector<ValueId> args;
        args.reserve(instr.operands.size());
        for (size_t i = 0; i < instr.operands.size(); ++i) args.push_back(operand(i));
        result = values_->PureCall(instr.text, std::move(args));
      } else {
        result = values_->Fresh(index, summary != nullptr && summary->returns_nonnull);
      }
      if (!pure) {
        // The callee may mutate any heap object it can reach; protected
        // allocations of this function are by construction out of reach.
        EraseHeapEntries(state, fn, /*protect_local=*/true);
      }
      state->regs[index] = result;
      if (summary != nullptr && summary->analyzed) {
        AbsFacts& facts = state->facts[result];
        if (summary->returns_nonnull && facts.nullness == Null3::kMaybe) {
          facts.nullness = Null3::kNonNull;
        }
        if (!summary->return_range.IsTop()) {
          std::optional<Interval> met = Meet(facts.range, summary->return_range);
          if (met) facts.range = *met;
        }
        if (summary->return_bool != Bool3::kUnknown && facts.boolean == Bool3::kUnknown) {
          facts.boolean = summary->return_bool;
        }
        if (facts.IsTop()) state->facts.erase(result);
      }
      break;
    }
    case Opcode::kHavoc:
      state->regs[index] = values_->Fresh(index, false);
      break;
    case Opcode::kListNew:
    case Opcode::kListLen:
    case Opcode::kListGet:
    case Opcode::kListSet:
    case Opcode::kListAppend: {
      std::vector<ValueId> args;
      args.reserve(instr.operands.size());
      for (size_t i = 0; i < instr.operands.size(); ++i) args.push_back(operand(i));
      state->regs[index] = values_->Pure(instr.op, BinOp::kAdd, UnOp::kNot, std::move(args), 0);
      break;
    }
    case Opcode::kFieldGet:
      state->regs[index] =
          values_->Pure(instr.op, BinOp::kAdd, UnOp::kNot, {operand(0)}, instr.field_index);
      break;
    case Opcode::kBr:
    case Opcode::kJmp:
    case Opcode::kRet:
    case Opcode::kPanic:
      DNSV_CHECK_MSG(false, "terminator in ExecInstr");
      break;
  }
}

AbsState PruneDomain::ExecuteBody(const Function& fn, const State& in, BlockId block) {
  State state = in;
  const BasicBlock& bb = fn.block(block);
  for (size_t i = 0; i + 1 < bb.instrs.size(); ++i) {
    ExecInstr(&state, fn, bb.instrs[i]);
  }
  return state;
}

AbsState PruneDomain::ExecuteBodyObserved(
    const Function& fn, const State& in, BlockId block,
    const std::function<void(uint32_t, State*)>& observer) {
  State state = in;
  const BasicBlock& bb = fn.block(block);
  for (size_t i = 0; i + 1 < bb.instrs.size(); ++i) {
    observer(bb.instrs[i], &state);
    ExecInstr(&state, fn, bb.instrs[i]);
  }
  return state;
}

// --- evaluation ---

Interval PruneDomain::ListLenAt(const State& state, ValueId list, int depth) const {
  Interval len = EvalIntAt(state, list, depth);
  std::optional<Interval> met = Meet(len, Interval{0, Interval::kPosInf});
  return met ? *met : Interval{0, Interval::kPosInf};
}

Interval PruneDomain::EvalIntAt(const State& state, ValueId id, int depth) const {
  Interval base = Interval::Top();
  if (depth < kMaxEvalDepth) {
    const ValueTable::Def& def = values_->def(id);
    switch (def.kind) {
      case ValueTable::Def::Kind::kIntConst:
        base = Interval::Const(def.imm);
        break;
      case ValueTable::Def::Kind::kPure:
        switch (def.op) {
          case Opcode::kBinOp: {
            if (def.bin_op == BinOp::kAdd || def.bin_op == BinOp::kSub ||
                def.bin_op == BinOp::kMul) {
              Interval a = EvalIntAt(state, def.args[0], depth + 1);
              Interval b = EvalIntAt(state, def.args[1], depth + 1);
              base = def.bin_op == BinOp::kAdd   ? IntervalAdd(a, b)
                     : def.bin_op == BinOp::kSub ? IntervalSub(a, b)
                                                 : IntervalMul(a, b);
            } else if (def.bin_op == BinOp::kMod) {
              Interval a = EvalIntAt(state, def.args[0], depth + 1);
              Interval b = EvalIntAt(state, def.args[1], depth + 1);
              if (a.lo >= 0 && b.lo >= 1) {  // Go semantics: result in [0, b)
                base = Interval{0, b.hi == Interval::kPosInf ? Interval::kPosInf : b.hi - 1};
              }
            }
            break;
          }
          case Opcode::kUnOp:
            if (def.un_op == UnOp::kNeg) {
              base = IntervalNeg(EvalIntAt(state, def.args[0], depth + 1));
            }
            break;
          case Opcode::kListLen:
            base = ListLenAt(state, def.args[0], depth + 1);
            break;
          // For list-typed values the range channel tracks the *length*.
          case Opcode::kListNew:
            base = Interval::Const(0);
            break;
          case Opcode::kListAppend:
            base = IntervalAdd(ListLenAt(state, def.args[0], depth + 1), Interval::Const(1));
            break;
          case Opcode::kListSet:
            base = ListLenAt(state, def.args[0], depth + 1);
            break;
          default:
            break;
        }
        break;
      default:
        break;
    }
  }
  auto it = state.facts.find(id);
  if (it != state.facts.end()) {
    std::optional<Interval> met = Meet(base, it->second.range);
    // An empty meet means this state is contradictory (the path is
    // infeasible); either bound is then vacuously sound.
    return met ? *met : it->second.range;
  }
  return base;
}

Bool3 PruneDomain::EvalBoolAt(const State& state, ValueId id, int depth) const {
  Bool3 base = Bool3::kUnknown;
  if (depth < kMaxEvalDepth) {
    const ValueTable::Def& def = values_->def(id);
    if (def.kind == ValueTable::Def::Kind::kBoolConst) {
      base = FromBool(def.imm != 0);
    } else if (def.kind == ValueTable::Def::Kind::kPure && def.op == Opcode::kUnOp &&
               def.un_op == UnOp::kNot) {
      base = Not3(EvalBoolAt(state, def.args[0], depth + 1));
    } else if (def.kind == ValueTable::Def::Kind::kPure && def.op == Opcode::kBinOp) {
      ValueId a = def.args[0];
      ValueId b = def.args[1];
      switch (def.bin_op) {
        case BinOp::kAnd:
          base = And3(EvalBoolAt(state, a, depth + 1), EvalBoolAt(state, b, depth + 1));
          break;
        case BinOp::kOr:
          base = Or3(EvalBoolAt(state, a, depth + 1), EvalBoolAt(state, b, depth + 1));
          break;
        case BinOp::kBoolEq:
        case BinOp::kBoolNe: {
          Bool3 va = EvalBoolAt(state, a, depth + 1);
          Bool3 vb = EvalBoolAt(state, b, depth + 1);
          if (a == b) {
            base = FromBool(def.bin_op == BinOp::kBoolEq);
          } else if (va != Bool3::kUnknown && vb != Bool3::kUnknown) {
            base = FromBool((va == vb) == (def.bin_op == BinOp::kBoolEq));
          }
          break;
        }
        case BinOp::kPtrEq:
        case BinOp::kPtrNe: {
          Bool3 eq = Bool3::kUnknown;
          if (a == b) {
            eq = Bool3::kTrue;
          } else {
            Null3 na = EvalNullAt(state, a, depth + 1);
            Null3 nb = EvalNullAt(state, b, depth + 1);
            if (na == Null3::kNull && nb == Null3::kNull) {
              eq = Bool3::kTrue;
            } else if ((na == Null3::kNull && nb == Null3::kNonNull) ||
                       (na == Null3::kNonNull && nb == Null3::kNull)) {
              eq = Bool3::kFalse;
            }
          }
          base = def.bin_op == BinOp::kPtrEq ? eq : Not3(eq);
          break;
        }
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe:
        case BinOp::kEq:
        case BinOp::kNe: {
          if (a == b) {
            base = FromBool(def.bin_op == BinOp::kEq || def.bin_op == BinOp::kLe ||
                            def.bin_op == BinOp::kGe);
            break;
          }
          Interval ia = EvalIntAt(state, a, depth + 1);
          Interval ib = EvalIntAt(state, b, depth + 1);
          auto known_lt = [&](ValueId x, ValueId y, const Interval& ix, const Interval& iy) {
            return ProvablyLt(ix, iy) || RelReach(state, x, y) == 2;
          };
          auto known_le = [&](ValueId x, ValueId y, const Interval& ix, const Interval& iy) {
            return ProvablyLe(ix, iy) || RelReach(state, x, y) >= 1;
          };
          auto known_eq = [&](ValueId x, ValueId y) { return state.eq.count(EqPair(x, y)) > 0; };
          switch (def.bin_op) {
            case BinOp::kLt:
              if (known_lt(a, b, ia, ib)) base = Bool3::kTrue;
              else if (known_le(b, a, ib, ia)) base = Bool3::kFalse;
              break;
            case BinOp::kLe:
              if (known_le(a, b, ia, ib)) base = Bool3::kTrue;
              else if (known_lt(b, a, ib, ia)) base = Bool3::kFalse;
              break;
            case BinOp::kGt:
              if (known_lt(b, a, ib, ia)) base = Bool3::kTrue;
              else if (known_le(a, b, ia, ib)) base = Bool3::kFalse;
              break;
            case BinOp::kGe:
              if (known_le(b, a, ib, ia)) base = Bool3::kTrue;
              else if (known_lt(a, b, ia, ib)) base = Bool3::kFalse;
              break;
            case BinOp::kEq:
              if ((ia.IsConst() && ib.IsConst() && ia.lo == ib.lo) || known_eq(a, b))
                base = Bool3::kTrue;
              else if (ProvablyNe(ia, ib) || known_lt(a, b, ia, ib) || known_lt(b, a, ib, ia))
                base = Bool3::kFalse;
              break;
            case BinOp::kNe:
              if ((ia.IsConst() && ib.IsConst() && ia.lo == ib.lo) || known_eq(a, b))
                base = Bool3::kFalse;
              else if (ProvablyNe(ia, ib) || known_lt(a, b, ia, ib) || known_lt(b, a, ib, ia))
                base = Bool3::kTrue;
              break;
            default:
              break;
          }
          break;
        }
        default:
          break;
      }
    }
  }
  if (base != Bool3::kUnknown) return base;
  auto it = state.facts.find(id);
  return it != state.facts.end() ? it->second.boolean : Bool3::kUnknown;
}

Null3 PruneDomain::EvalNullAt(const State& state, ValueId id, int depth) const {
  Null3 base = Null3::kMaybe;
  if (depth < kMaxEvalDepth) {
    const ValueTable::Def& def = values_->def(id);
    switch (def.kind) {
      case ValueTable::Def::Kind::kNull:
        base = Null3::kNull;
        break;
      case ValueTable::Def::Kind::kCell:
        base = Null3::kNonNull;
        break;
      case ValueTable::Def::Kind::kFresh:
        if (def.nonnull) base = Null3::kNonNull;
        break;
      case ValueTable::Def::Kind::kPure:
        if (def.op == Opcode::kGep) {
          base = EvalNullAt(state, def.args[0], depth + 1);
        }
        break;
      default:
        break;
    }
  }
  if (base != Null3::kMaybe) return base;
  auto it = state.facts.find(id);
  return it != state.facts.end() ? it->second.nullness : Null3::kMaybe;
}

Interval PruneDomain::EvalInt(const State& state, ValueId id) const {
  return EvalIntAt(state, id, 0);
}

Bool3 PruneDomain::EvalBool(const State& state, ValueId id) const {
  return EvalBoolAt(state, id, 0);
}

Null3 PruneDomain::EvalNull(const State& state, ValueId id) const {
  return EvalNullAt(state, id, 0);
}

// --- assertion (path-condition refinement) ---

bool PruneDomain::AssertLt(State* state, ValueId a, ValueId b) {
  if (RelReach(*state, b, a) >= 1) return false;  // b <= a contradicts a < b
  Interval ia = EvalIntAt(*state, a, 0);
  Interval ib = EvalIntAt(*state, b, 0);
  int64_t upper = ib.hi == Interval::kPosInf ? Interval::kPosInf : ib.hi - 1;
  int64_t lower = ia.lo == Interval::kNegInf ? Interval::kNegInf : ia.lo + 1;
  std::optional<Interval> na = Meet(ia, Interval{Interval::kNegInf, upper});
  if (!na) return false;
  std::optional<Interval> nb = Meet(ib, Interval{lower, Interval::kPosInf});
  if (!nb) return false;
  state->facts[a].range = *na;
  state->facts[b].range = *nb;
  state->lt.insert({a, b});
  return true;
}

bool PruneDomain::AssertLe(State* state, ValueId a, ValueId b) {
  if (RelReach(*state, b, a) == 2) return false;  // b < a contradicts a <= b
  Interval ia = EvalIntAt(*state, a, 0);
  Interval ib = EvalIntAt(*state, b, 0);
  std::optional<Interval> na = Meet(ia, Interval{Interval::kNegInf, ib.hi});
  if (!na) return false;
  std::optional<Interval> nb = Meet(ib, Interval{ia.lo, Interval::kPosInf});
  if (!nb) return false;
  state->facts[a].range = *na;
  state->facts[b].range = *nb;
  state->le.insert({a, b});
  return true;
}

bool PruneDomain::AssertIntEq(State* state, ValueId a, ValueId b) {
  if (RelReach(*state, a, b) == 2 || RelReach(*state, b, a) == 2) {
    return false;  // a strict chain either way contradicts equality
  }
  Interval ia = EvalIntAt(*state, a, 0);
  Interval ib = EvalIntAt(*state, b, 0);
  std::optional<Interval> met = Meet(ia, ib);
  if (!met) return false;
  state->facts[a].range = *met;
  state->facts[b].range = *met;
  if (a != b) state->eq.insert(EqPair(a, b));
  return true;
}

bool PruneDomain::AssertIntNe(State* state, ValueId a, ValueId b) {
  if (state->eq.count(EqPair(a, b)) > 0) return false;
  Interval ia = EvalIntAt(*state, a, 0);
  Interval ib = EvalIntAt(*state, b, 0);
  if (ia.IsConst() && ib.IsConst() && ia.lo == ib.lo) return false;
  // Shave a constant off the other side's touching endpoint.
  auto shave = [&](const Interval& c, Interval v) -> std::optional<Interval> {
    if (!c.IsConst()) return v;
    if (v.lo == c.lo && v.lo != Interval::kNegInf) {
      if (v.lo == v.hi) return std::nullopt;
      v.lo += 1;
    }
    if (v.hi == c.lo && v.hi != Interval::kPosInf) {
      if (v.lo == v.hi) return std::nullopt;
      v.hi -= 1;
    }
    return v;
  };
  std::optional<Interval> na = shave(ib, ia);
  if (!na) return false;
  std::optional<Interval> nb = shave(ia, ib);
  if (!nb) return false;
  state->facts[a].range = *na;
  state->facts[b].range = *nb;
  return true;
}

bool PruneDomain::SetNullFact(State* state, ValueId id, bool is_null) {
  Null3 current = EvalNullAt(*state, id, 0);
  Null3 want = is_null ? Null3::kNull : Null3::kNonNull;
  if (current != Null3::kMaybe && current != want) return false;
  state->facts[id].nullness = want;
  return true;
}

bool PruneDomain::AssertCmp(State* state, BinOp op, ValueId a, ValueId b, bool truth) {
  switch (op) {
    case BinOp::kLt:
      return truth ? AssertLt(state, a, b) : AssertLe(state, b, a);
    case BinOp::kLe:
      return truth ? AssertLe(state, a, b) : AssertLt(state, b, a);
    case BinOp::kGt:
      return truth ? AssertLt(state, b, a) : AssertLe(state, a, b);
    case BinOp::kGe:
      return truth ? AssertLe(state, b, a) : AssertLt(state, a, b);
    case BinOp::kEq:
      return truth ? AssertIntEq(state, a, b) : AssertIntNe(state, a, b);
    case BinOp::kNe:
      return truth ? AssertIntNe(state, a, b) : AssertIntEq(state, a, b);
    default:
      return true;
  }
}

bool PruneDomain::AssertAt(State* state, ValueId id, bool truth, int depth) {
  Bool3 current = EvalBoolAt(*state, id, 0);
  if (current != Bool3::kUnknown) {
    return (current == Bool3::kTrue) == truth;
  }
  bool feasible = true;
  const ValueTable::Def& def = values_->def(id);
  if (depth < kMaxEvalDepth && def.kind == ValueTable::Def::Kind::kPure) {
    if (def.op == Opcode::kUnOp && def.un_op == UnOp::kNot) {
      return AssertAt(state, def.args[0], !truth, depth + 1);
    }
    if (def.op == Opcode::kBinOp) {
      ValueId a = def.args[0];
      ValueId b = def.args[1];
      switch (def.bin_op) {
        case BinOp::kAnd:
          if (truth) {
            feasible = AssertAt(state, a, true, depth + 1) &&
                       AssertAt(state, b, true, depth + 1);
          }
          break;
        case BinOp::kOr:
          if (!truth) {
            feasible = AssertAt(state, a, false, depth + 1) &&
                       AssertAt(state, b, false, depth + 1);
          }
          break;
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe:
        case BinOp::kEq:
        case BinOp::kNe:
          feasible = AssertCmp(state, def.bin_op, a, b, truth);
          break;
        case BinOp::kPtrEq:
        case BinOp::kPtrNe: {
          bool want_eq = (def.bin_op == BinOp::kPtrEq) == truth;
          if (a == b) {
            feasible = want_eq;
          } else if (values_->def(a).kind == ValueTable::Def::Kind::kNull) {
            feasible = SetNullFact(state, b, want_eq);
          } else if (values_->def(b).kind == ValueTable::Def::Kind::kNull) {
            feasible = SetNullFact(state, a, want_eq);
          }
          break;
        }
        case BinOp::kBoolEq:
        case BinOp::kBoolNe: {
          bool want_eq = (def.bin_op == BinOp::kBoolEq) == truth;
          Bool3 va = EvalBoolAt(*state, a, 0);
          Bool3 vb = EvalBoolAt(*state, b, 0);
          if (va != Bool3::kUnknown) {
            feasible = AssertAt(state, b, want_eq == (va == Bool3::kTrue), depth + 1);
          } else if (vb != Bool3::kUnknown) {
            feasible = AssertAt(state, a, want_eq == (vb == Bool3::kTrue), depth + 1);
          }
          break;
        }
        default:
          break;
      }
    }
  }
  if (!feasible) return false;
  AbsFacts& facts = state->facts[id];
  Bool3 want = FromBool(truth);
  if (facts.boolean != Bool3::kUnknown && facts.boolean != want) return false;
  facts.boolean = want;
  return true;
}

bool PruneDomain::Assert(State* state, ValueId id, bool truth) {
  return AssertAt(state, id, truth, 0);
}

// --- transfer & join ---

void PruneDomain::Transfer(const Function& fn, BlockId block, const State& in,
                           std::vector<std::pair<BlockId, State>>* out) {
  State state = ExecuteBody(fn, in, block);
  const Instr& term = fn.instr(fn.block(block).instrs.back());
  switch (term.op) {
    case Opcode::kJmp:
      out->emplace_back(term.target_true, std::move(state));
      break;
    case Opcode::kBr: {
      if (term.target_true == term.target_false) {
        out->emplace_back(term.target_true, std::move(state));
        break;
      }
      ValueId cond = OperandValue(&state, term.operands[0]);
      Bool3 value = EvalBool(state, cond);
      if (value == Bool3::kTrue) {
        out->emplace_back(term.target_true, std::move(state));
      } else if (value == Bool3::kFalse) {
        out->emplace_back(term.target_false, std::move(state));
      } else {
        State taken = state;
        if (Assert(&taken, cond, true)) {
          out->emplace_back(term.target_true, std::move(taken));
        }
        State not_taken = std::move(state);
        if (Assert(&not_taken, cond, false)) {
          out->emplace_back(term.target_false, std::move(not_taken));
        }
      }
      break;
    }
    case Opcode::kRet:
    case Opcode::kPanic:
      break;
    default:
      DNSV_CHECK_MSG(false, "block does not end in a terminator");
  }
}

AbsFacts PruneDomain::FactsOf(const State& state, ValueId id) const {
  AbsFacts facts;
  facts.range = EvalIntAt(state, id, 0);
  facts.boolean = EvalBoolAt(state, id, 0);
  facts.nullness = EvalNullAt(state, id, 0);
  return facts;
}

bool PruneDomain::Join(State* into, const State& incoming, const Function& fn, BlockId at,
                       int visits) {
  (void)fn;
  bool widen = visits >= 3;
  bool changed = false;
  std::set<ValueId> just_joined;
  // Substitution applied by this join: old value -> the join value that now
  // stands for it (identity entries mark a join value that stays current on
  // that side). Relational facts are rewritten through these maps so that
  //   into:  i0 < lenA      incoming:  J < lenA
  // meet as J < lenA instead of being lost to a literal intersection.
  std::map<ValueId, ValueId> remap_into;
  std::map<ValueId, ValueId> remap_inc;

  auto set_fact = [&](ValueId id, const AbsFacts& facts) {
    auto it = into->facts.find(id);
    if (facts.IsTop()) {
      if (it != into->facts.end()) {
        into->facts.erase(it);
        changed = true;
      }
      return;
    }
    if (it == into->facts.end()) {
      into->facts.emplace(id, facts);
      changed = true;
    } else if (!(it->second == facts)) {
      it->second = facts;
      changed = true;
    }
  };

  // A helper shared by the register and memory maps: intersect keys; where
  // the two sides carry different values, merge into a block-keyed join
  // value whose facts are the (possibly widened) join of both sides' facts.
  auto merge_map = [&](auto* target, const auto& incoming_map, char space) {
    for (auto it = target->begin(); it != target->end();) {
      auto inc = incoming_map.find(it->first);
      if (inc == incoming_map.end()) {
        it = target->erase(it);
        changed = true;
        continue;
      }
      if (it->second != inc->second) {
        // The frontend keeps a variable both in a register and in its alloca
        // slot; if this round already joined this exact (into, incoming) value
        // pair for another key, reuse that join value so both views of the
        // variable stay one value — otherwise the relational facts follow one
        // join value while loads read the other.
        ValueId joined_id;
        auto known_into = remap_into.find(it->second);
        auto known_inc = remap_inc.find(inc->second);
        if (known_into != remap_into.end() && known_inc != remap_inc.end() &&
            known_into->second == known_inc->second) {
          joined_id = known_into->second;
        } else {
          joined_id = values_->JoinValue(at, space, static_cast<uint64_t>(it->first));
          remap_into.emplace(it->second, joined_id);
          remap_inc.emplace(inc->second, joined_id);
        }
        AbsFacts prev = FactsOf(*into, it->second);
        AbsFacts incf = FactsOf(incoming, inc->second);
        AbsFacts joined = JoinFacts(prev, incf, widen);
        if (it->second != joined_id) {
          it->second = joined_id;
          changed = true;
        }
        set_fact(joined_id, joined);
        just_joined.insert(joined_id);
      }
      ++it;
    }
  };

  merge_map(&into->regs, incoming.regs, 'r');
  merge_map(&into->mem, incoming.mem, 'm');

  // True for values whose meaning changed under this join: the redefined join
  // values themselves and anything built on top of one. Facts recorded about
  // such a value describe the *previous* iteration's binding (a ghost) and
  // must not survive into the merged state.
  std::map<ValueId, bool> dep_memo;
  std::function<bool(ValueId)> depends = [&](ValueId id) -> bool {
    if (just_joined.count(id)) return true;
    auto m = dep_memo.find(id);
    if (m != dep_memo.end()) return m->second;
    dep_memo[id] = false;
    bool d = false;
    for (ValueId arg : values_->def(id).args) {
      if (depends(arg)) {
        d = true;
        break;
      }
    }
    dep_memo[id] = d;
    return d;
  };

  // Drop ghost facts, then weaken the remaining entries by the incoming
  // side's knowledge. (just_joined entries were freshly set above.)
  for (auto it = into->facts.begin(); it != into->facts.end();) {
    if (!just_joined.count(it->first) && depends(it->first)) {
      it = into->facts.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  std::vector<std::pair<ValueId, AbsFacts>> updates;
  for (const auto& [id, facts] : into->facts) {
    if (just_joined.count(id)) continue;
    AbsFacts incf = FactsOf(incoming, id);
    AbsFacts joined = JoinFacts(facts, incf, widen);
    if (!(joined == facts)) {
      updates.emplace_back(id, joined);
    }
  }
  for (const auto& [id, facts] : updates) {
    set_fact(id, facts);
  }

  // Relational facts: rewrite each side through its substitution (dropping
  // ghosts: an endpoint that depends on a redefined join value without being
  // a substitution key describes the old binding), then keep what both sides
  // know. A pair the substitutions never touched may also survive when the
  // incoming intervals alone prove it.
  using RelSet = std::set<std::pair<ValueId, ValueId>>;
  auto remap_apply = [&](const RelSet& rel, const std::map<ValueId, ValueId>& remap,
                         bool normalize) {
    RelSet out;
    for (const auto& [a, b] : rel) {
      auto ma = remap.find(a);
      auto mb = remap.find(b);
      if (ma == remap.end() && depends(a)) continue;  // ghost endpoint
      if (mb == remap.end() && depends(b)) continue;
      ValueId ra = ma != remap.end() ? ma->second : a;
      ValueId rb = mb != remap.end() ? mb->second : b;
      if (ra == rb) continue;
      out.insert(normalize ? EqPair(ra, rb) : std::make_pair(ra, rb));
    }
    return out;
  };
  auto untouched = [&](ValueId v) {
    return remap_into.count(v) == 0 && remap_inc.count(v) == 0 && !depends(v);
  };
  RelSet lt_inc = remap_apply(incoming.lt, remap_inc, false);
  RelSet le_inc = remap_apply(incoming.le, remap_inc, false);
  RelSet eq_inc = remap_apply(incoming.eq, remap_inc, true);
  // For <= purposes the incoming side's < and == facts count too.
  RelSet le_inc_all = le_inc;
  le_inc_all.insert(lt_inc.begin(), lt_inc.end());
  for (const auto& [a, b] : eq_inc) {
    le_inc_all.insert({a, b});
    le_inc_all.insert({b, a});
  }
  auto meet_rel = [&](RelSet* target, const std::map<ValueId, ValueId>& remap,
                      const RelSet& inc_side, bool normalize, auto provable) {
    RelSet merged;
    for (const auto& pair : remap_apply(*target, remap, normalize)) {
      bool keep = inc_side.count(pair) > 0 ||
                  (untouched(pair.first) && untouched(pair.second) &&
                   provable(EvalIntAt(incoming, pair.first, 0),
                            EvalIntAt(incoming, pair.second, 0)));
      if (keep) merged.insert(pair);
    }
    if (*target != merged) {
      *target = std::move(merged);
      changed = true;
    }
  };
  meet_rel(&into->lt, remap_into, lt_inc, false,
           [](const Interval& a, const Interval& b) { return ProvablyLt(a, b); });
  meet_rel(&into->le, remap_into, le_inc_all, false,
           [](const Interval& a, const Interval& b) { return ProvablyLe(a, b); });
  meet_rel(&into->eq, remap_into, eq_inc, true, [](const Interval& a, const Interval& b) {
    return a.IsConst() && b.IsConst() && a.lo == b.lo;
  });

  return changed;
}

}  // namespace dnsv

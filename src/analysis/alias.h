// Flow-insensitive, field-insensitive Andersen-style points-to analysis over
// a whole AbsIR module.
//
// Abstract objects are allocation sites — one per kAlloca / kNewObject
// instruction — plus a single "unknown" object (id 0) standing for everything
// outside the module: driver-owned zone snapshots, query buffers, anything an
// unknown callee could hand back. Pointer variables are the instruction
// registers, parameters, and return channel of every function. The analysis
// is inclusion-based (subset constraints, iterated to a fixpoint) and
// deliberately coarse:
//
//   * field-insensitive — a kGep result aliases its base object, so a
//     pointer to any field of an object is "the object";
//   * flow-insensitive — one points-to set per variable, valid at every
//     program point;
//   * value-aggregate transparent — MiniGo lists and struct values have copy
//     semantics, so a list register's points-to set is the union over every
//     pointer ever put into any list that flowed into it (kListAppend /
//     kListSet add, kListGet / kFieldGet propagate).
//
// Calls to in-module functions connect argument registers to callee
// parameters and the callee's return channel to the result register
// (context-insensitive). The listEq intrinsic takes value lists, retains
// nothing, and returns a bool — it contributes no constraints. Unknown
// callees are modeled through the unknown object: every argument flows into
// its contents, and the result points at it.
//
// Everything here over-approximates: a pointer the analysis misses would
// require a value to materialize from outside the constraint graph, and
// every AbsIR producer of a pointer value is covered above (audited against
// instr.h). The two consumers — escape analysis (escape.h) and the
// stack-promotion gate in the C++ backend — both only act on allocations
// whose points-to footprint is provably confined, so coarseness costs
// precision, never soundness.
#ifndef DNSV_ANALYSIS_ALIAS_H_
#define DNSV_ANALYSIS_ALIAS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ir/function.h"

namespace dnsv {

class CallGraph;
struct AnalysisStats;

class PointsTo {
 public:
  // The object standing for all module-external memory.
  static constexpr int kUnknownObject = 0;

  // Solves the constraint system for `module`. Parameters of every function
  // named in `entry_points` start pointing at the unknown object (drivers
  // pass snapshot/query pointers the module never allocated). Fills
  // `stats->alias_seconds` when `stats` is non-null.
  static PointsTo Solve(const Module& module, const CallGraph& graph,
                        const std::vector<std::string>& entry_points,
                        AnalysisStats* stats);

  // Object id of the allocation site at instruction `instr` of `fn`
  // (kAlloca or kNewObject), or -1 when that instruction is not a site.
  int ObjectOf(const std::string& fn, uint32_t instr) const;
  // True when the object is a kAlloca site (stack slot, address never
  // escapes per PreflightAllocasDontEscape).
  bool ObjectIsStackSlot(int object) const;

  // Points-to sets. Empty set = provably points at nothing tracked (e.g. an
  // integer register). All three return a reference to a shared empty set
  // for unknown names/indices.
  const std::set<int>& RegPointsTo(const std::string& fn, uint32_t reg) const;
  const std::set<int>& ParamPointsTo(const std::string& fn, uint32_t index) const;
  const std::set<int>& RetPointsTo(const std::string& fn) const;
  // What has been stored into `object` (field-insensitively).
  const std::set<int>& Contents(int object) const;

  // May the two sets name a common location? Either containing the unknown
  // object aliases anything non-empty.
  static bool MayAlias(const std::set<int>& a, const std::set<int>& b);

  size_t num_objects() const { return contents_.size(); }

 private:
  PointsTo() = default;

  friend class PointsToSolver;

  std::map<std::pair<std::string, uint32_t>, int> reg_vars_;    // (fn, instr reg)
  std::map<std::pair<std::string, uint32_t>, int> param_vars_;  // (fn, param index)
  std::map<std::string, int> ret_vars_;
  std::map<std::pair<std::string, uint32_t>, int> objects_;     // (fn, alloc instr)
  std::vector<bool> object_is_stack_slot_;
  std::vector<std::set<int>> var_pts_;
  std::vector<std::set<int>> contents_;
};

}  // namespace dnsv

#endif  // DNSV_ANALYSIS_ALIAS_H_

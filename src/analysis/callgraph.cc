#include "src/analysis/callgraph.h"

#include <algorithm>

#include "src/support/logging.h"

namespace dnsv {
namespace {

// Iterative Tarjan SCC. Components are emitted callees-first (Tarjan pops a
// component only once everything reachable from it is done), which is exactly
// the bottom-up order summary computation wants.
struct TarjanState {
  const std::vector<std::set<int>>& succ;
  std::vector<int> index, lowlink;
  std::vector<bool> on_stack;
  std::vector<int> stack;
  std::vector<std::vector<int>> components;
  int next_index = 0;

  explicit TarjanState(const std::vector<std::set<int>>& successors)
      : succ(successors),
        index(successors.size(), -1),
        lowlink(successors.size(), 0),
        on_stack(successors.size(), false) {}

  void Run(int root) {
    // Explicit frame stack: (node, iterator position into succ[node]).
    std::vector<std::pair<int, std::set<int>::const_iterator>> frames;
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    frames.push_back({root, succ[root].begin()});
    while (!frames.empty()) {
      auto& [node, it] = frames.back();
      if (it != succ[node].end()) {
        int next = *it++;
        if (index[next] < 0) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, succ[next].begin()});
        } else if (on_stack[next]) {
          lowlink[node] = std::min(lowlink[node], index[next]);
        }
        continue;
      }
      if (lowlink[node] == index[node]) {
        std::vector<int> component;
        int member;
        do {
          member = stack.back();
          stack.pop_back();
          on_stack[member] = false;
          component.push_back(member);
        } while (member != node);
        components.push_back(std::move(component));
      }
      int finished = node;
      frames.pop_back();
      if (!frames.empty()) {
        int parent = frames.back().first;
        lowlink[parent] = std::min(lowlink[parent], lowlink[finished]);
      }
    }
  }
};

}  // namespace

CallGraph CallGraph::Build(const Module& module) {
  CallGraph graph;
  for (const auto& fn : module.functions()) {
    graph.node_of_.emplace(fn->name(), static_cast<int>(graph.functions_.size()));
    graph.functions_.push_back(fn.get());
  }
  size_t n = graph.functions_.size();
  graph.callees_.resize(n);
  graph.callers_.resize(n);
  graph.has_unknown_callee_.assign(n, false);
  for (size_t i = 0; i < n; ++i) {
    const Function& fn = *graph.functions_[i];
    for (uint32_t j = 0; j < fn.num_instrs(); ++j) {
      const Instr& instr = fn.instr(j);
      if (instr.op != Opcode::kCall) continue;
      auto it = graph.node_of_.find(instr.text);
      if (it == graph.node_of_.end()) {
        if (!IsIntrinsicCallee(instr.text)) graph.has_unknown_callee_[i] = true;
        continue;
      }
      graph.callees_[i].insert(it->second);
      graph.callers_[it->second].insert(static_cast<int>(i));
    }
  }

  TarjanState tarjan(graph.callees_);
  for (size_t i = 0; i < n; ++i) {
    if (tarjan.index[i] < 0) tarjan.Run(static_cast<int>(i));
  }
  graph.sccs_ = std::move(tarjan.components);
  graph.scc_of_.assign(n, -1);
  for (size_t c = 0; c < graph.sccs_.size(); ++c) {
    for (int member : graph.sccs_[c]) graph.scc_of_[member] = static_cast<int>(c);
  }
  return graph;
}

int CallGraph::NodeOf(const std::string& name) const {
  auto it = node_of_.find(name);
  return it == node_of_.end() ? -1 : it->second;
}

bool CallGraph::SccIsTrivial(int scc) const {
  DNSV_CHECK(scc >= 0 && static_cast<size_t>(scc) < sccs_.size());
  if (sccs_[scc].size() != 1) return false;
  int node = sccs_[scc][0];
  return callees_[node].count(node) == 0;
}

std::set<int> CallGraph::ReachableFrom(const std::vector<std::string>& roots) const {
  std::set<int> reached;
  std::vector<int> worklist;
  for (const std::string& root : roots) {
    int node = NodeOf(root);
    if (node >= 0 && reached.insert(node).second) worklist.push_back(node);
  }
  while (!worklist.empty()) {
    int node = worklist.back();
    worklist.pop_back();
    for (int callee : callees_[node]) {
      if (reached.insert(callee).second) worklist.push_back(callee);
    }
  }
  return reached;
}

}  // namespace dnsv

#include "src/analysis/lint.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <tuple>

#include "src/analysis/callgraph.h"
#include "src/analysis/summary.h"
#include "src/frontend/lower.h"
#include "src/frontend/parser.h"
#include "src/frontend/typecheck.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

// Constant folding over literal expressions. References to named constants
// return nullopt on purpose — see the header: constant conditions built from
// feature flags are configuration, not bugs. With `summaries` (the
// interprocedural mode), a call additionally folds to its callee's constant
// return fact when the summary proves one; the constant is joined over every
// kRet of the body, so it holds for all arguments and the fold never depends
// on them.
struct FoldedValue {
  bool is_bool = false;
  int64_t value = 0;  // bools: 0/1
};

std::optional<FoldedValue> FoldExpr(const Expr* expr, const InterprocContext* summaries) {
  if (expr == nullptr) return std::nullopt;
  switch (expr->kind) {
    case Expr::Kind::kIntLit:
      return FoldedValue{false, expr->int_value};
    case Expr::Kind::kBoolLit:
      return FoldedValue{true, expr->bool_value ? 1 : 0};
    case Expr::Kind::kCall: {
      if (summaries == nullptr) return std::nullopt;
      const CalleeSummary* summary = summaries->SummaryFor(expr->name);
      if (summary == nullptr || !summary->analyzed) return std::nullopt;
      if (summary->return_bool != Bool3::kUnknown) {
        return FoldedValue{true, summary->return_bool == Bool3::kTrue ? 1 : 0};
      }
      if (summary->return_range.IsConst()) {
        return FoldedValue{false, summary->return_range.lo};
      }
      return std::nullopt;
    }
    case Expr::Kind::kUnary: {
      std::optional<FoldedValue> v = FoldExpr(expr->lhs.get(), summaries);
      if (!v) return std::nullopt;
      if (expr->op == Tok::kBang && v->is_bool) return FoldedValue{true, v->value ? 0 : 1};
      if (expr->op == Tok::kMinus && !v->is_bool) return FoldedValue{false, -v->value};
      return std::nullopt;
    }
    case Expr::Kind::kBinary: {
      std::optional<FoldedValue> a = FoldExpr(expr->lhs.get(), summaries);
      std::optional<FoldedValue> b = FoldExpr(expr->rhs.get(), summaries);
      if (!a || !b || a->is_bool != b->is_bool) return std::nullopt;
      int64_t x = a->value;
      int64_t y = b->value;
      if (a->is_bool) {
        switch (expr->op) {
          case Tok::kAndAnd: return FoldedValue{true, (x && y) ? 1 : 0};
          case Tok::kOrOr: return FoldedValue{true, (x || y) ? 1 : 0};
          case Tok::kEq: return FoldedValue{true, x == y ? 1 : 0};
          case Tok::kNe: return FoldedValue{true, x != y ? 1 : 0};
          default: return std::nullopt;
        }
      }
      switch (expr->op) {
        case Tok::kPlus: return FoldedValue{false, x + y};
        case Tok::kMinus: return FoldedValue{false, x - y};
        case Tok::kStar: return FoldedValue{false, x * y};
        case Tok::kSlash: return y == 0 ? std::nullopt : std::optional(FoldedValue{false, x / y});
        case Tok::kPercent:
          return y == 0 ? std::nullopt : std::optional(FoldedValue{false, x % y});
        case Tok::kEq: return FoldedValue{true, x == y ? 1 : 0};
        case Tok::kNe: return FoldedValue{true, x != y ? 1 : 0};
        case Tok::kLt: return FoldedValue{true, x < y ? 1 : 0};
        case Tok::kLe: return FoldedValue{true, x <= y ? 1 : 0};
        case Tok::kGt: return FoldedValue{true, x > y ? 1 : 0};
        case Tok::kGe: return FoldedValue{true, x >= y ? 1 : 0};
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

// Per-function lint walk. The use-before-assign analysis is a forward "may
// be unassigned" pass over the AST: if/else merges keep a variable
// unassigned when either branch leaves it unassigned, and loop bodies are
// analyzed against the loop-entry environment (the body may not run).
class FunctionLinter {
 public:
  // `summaries` may be null (intraprocedural-only mode); `discardable` maps
  // callee name -> true for value-returning callees that are pure and
  // panic-free, i.e. whose discarded call is provably a no-op.
  FunctionLinter(const TypeTable& types, const FuncDecl& fn,
                 const InterprocContext* summaries,
                 const std::map<std::string, bool>* discardable,
                 std::vector<LintDiagnostic>* out)
      : types_(types), fn_(fn), summaries_(summaries), discardable_(discardable), out_(out) {}

  void Run() {
    // `unassigned` holds locals declared without an initializer that no
    // assignment has definitely reached yet.
    std::set<std::string> unassigned;
    WalkStmts(fn_.body, &unassigned);
    for (const auto& [name, var] : locals_) {
      if (!var.read) {
        Report(var.line, "unused-local", StrCat("local '", name, "' declared and not used"));
      }
    }
  }

 private:
  struct Local {
    int line = 0;
    bool read = false;
  };

  void Report(int line, const char* category, std::string message) {
    LintDiagnostic diag;
    diag.file = fn_.file;
    diag.line = line;
    diag.category = category;
    diag.function = fn_.name;
    diag.message = std::move(message);
    out_->push_back(std::move(diag));
  }

  bool IsScalar(Type type) const {
    if (!type.valid()) return false;
    TypeKind kind = types_.kind(type);
    return kind == TypeKind::kInt || kind == TypeKind::kBool || kind == TypeKind::kPtr;
  }

  // Records reads (unused-local) and flags use-before-assign.
  void ReadExpr(const Expr* expr, const std::set<std::string>& unassigned) {
    if (expr == nullptr) return;
    if (expr->kind == Expr::Kind::kVarRef && !expr->is_const) {
      auto it = locals_.find(expr->name);
      if (it != locals_.end()) {
        it->second.read = true;
        if (unassigned.count(expr->name) && reported_.insert(expr->name).second) {
          Report(expr->line, "use-before-assign",
                 StrCat("local '", expr->name, "' may be read before assignment"));
        }
      }
      return;
    }
    ReadExpr(expr->lhs.get(), unassigned);
    ReadExpr(expr->rhs.get(), unassigned);
    for (const auto& arg : expr->args) {
      ReadExpr(arg.get(), unassigned);
    }
  }

  void CheckCondition(const Expr* cond) {
    if (cond == nullptr) return;
    std::optional<FoldedValue> folded = FoldExpr(cond, nullptr);
    if (folded && folded->is_bool) {
      Report(cond->line, "constant-condition",
             StrCat("condition is always ", folded->value ? "true" : "false"));
      return;
    }
    // Interprocedural refinement: the guard did not literal-fold, but does
    // once calls stand in for their summaries' constant return facts.
    if (summaries_ == nullptr) return;
    std::optional<FoldedValue> with_calls = FoldExpr(cond, summaries_);
    if (with_calls && with_calls->is_bool) {
      Report(cond->line, "constant-foldable-guard",
             StrCat("guard is always ", with_calls->value ? "true" : "false",
                    " given the callee summaries"));
    }
  }

  // Walks one statement; returns true when it terminates the current path
  // (return/panic/break/continue, or an if whose branches both do).
  bool WalkStmt(const Stmt* stmt, std::set<std::string>* unassigned) {
    switch (stmt->kind) {
      case Stmt::Kind::kVarDecl:
        locals_.try_emplace(stmt->name, Local{stmt->line, false});
        if (stmt->init != nullptr) {
          ReadExpr(stmt->init.get(), *unassigned);
        } else if (IsScalar(stmt->decl_ir_type)) {
          unassigned->insert(stmt->name);
        }
        return false;
      case Stmt::Kind::kShortDecl:
        ReadExpr(stmt->init.get(), *unassigned);
        locals_.try_emplace(stmt->name, Local{stmt->line, false});
        unassigned->erase(stmt->name);
        return false;
      case Stmt::Kind::kAssign:
        ReadExpr(stmt->init.get(), *unassigned);
        if (stmt->lhs->kind == Expr::Kind::kVarRef) {
          unassigned->erase(stmt->lhs->name);  // definite assignment
        } else {
          // x[i] = v / x.f = v read the current aggregate before updating.
          ReadExpr(stmt->lhs.get(), *unassigned);
        }
        return false;
      case Stmt::Kind::kIf: {
        ReadExpr(stmt->cond.get(), *unassigned);
        CheckCondition(stmt->cond.get());
        std::set<std::string> then_env = *unassigned;
        std::set<std::string> else_env = *unassigned;
        bool then_terminates = WalkStmts(stmt->body, &then_env);
        bool else_terminates = WalkStmts(stmt->else_body, &else_env);
        // Merge: a variable stays maybe-unassigned when any non-terminating
        // branch leaves it so.
        if (then_terminates && else_terminates) {
          return true;
        }
        if (then_terminates) {
          *unassigned = std::move(else_env);
        } else if (else_terminates) {
          *unassigned = std::move(then_env);
        } else {
          std::set<std::string> merged = std::move(then_env);
          merged.insert(else_env.begin(), else_env.end());
          *unassigned = std::move(merged);
        }
        return false;
      }
      case Stmt::Kind::kFor: {
        if (stmt->for_init != nullptr) {
          WalkStmt(stmt->for_init.get(), unassigned);
        }
        ReadExpr(stmt->cond.get(), *unassigned);
        CheckCondition(stmt->cond.get());
        // The body may execute zero times: analyze it on a copy and keep the
        // entry environment afterwards.
        std::set<std::string> body_env = *unassigned;
        WalkStmts(stmt->body, &body_env);
        if (stmt->for_post != nullptr) {
          WalkStmt(stmt->for_post.get(), &body_env);
        }
        return false;
      }
      case Stmt::Kind::kReturn:
        ReadExpr(stmt->init.get(), *unassigned);
        return true;
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kContinue:
        return true;
      case Stmt::Kind::kPanic:
        return true;
      case Stmt::Kind::kExpr:
        ReadExpr(stmt->init.get(), *unassigned);
        if (discardable_ != nullptr && stmt->init != nullptr &&
            stmt->init->kind == Expr::Kind::kCall) {
          auto it = discardable_->find(stmt->init->name);
          if (it != discardable_->end() && it->second) {
            Report(stmt->line, "unused-result",
                   StrCat("result of pure, panic-free function '", stmt->init->name,
                          "' is discarded; the call has no effect"));
          }
        }
        return false;
      case Stmt::Kind::kBlock:
        return WalkStmts(stmt->body, unassigned);
    }
    return false;
  }

  // Walks a statement list; flags the first statement after a terminator.
  bool WalkStmts(const std::vector<std::unique_ptr<Stmt>>& body,
                 std::set<std::string>* unassigned) {
    bool terminated = false;
    bool reported_dead = false;
    for (const auto& stmt : body) {
      if (terminated && !reported_dead) {
        Report(stmt->line, "dead-statement", "statement is unreachable");
        reported_dead = true;  // one report per dead region, not per statement
      }
      if (WalkStmt(stmt.get(), unassigned)) {
        terminated = true;
      }
    }
    return terminated;
  }

  const TypeTable& types_;
  const FuncDecl& fn_;
  const InterprocContext* summaries_;
  const std::map<std::string, bool>* discardable_;
  std::vector<LintDiagnostic>* out_;
  std::map<std::string, Local> locals_;
  std::set<std::string> reported_;  // use-before-assign: once per variable
};

}  // namespace

std::string LintDiagnostic::ToString() const {
  return StrCat(file, ":", line, ": [", category, "] ", message, " (in ", function, ")");
}

Result<std::vector<LintDiagnostic>> LintMiniGoSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const LintConfig& config) {
  Result<ProgramAst> ast = ParseMiniGoSources(sources);
  if (!ast.ok()) {
    return Result<std::vector<LintDiagnostic>>::Error(ast.error());
  }
  ProgramAst program = std::move(ast).value();
  TypeTable types;
  Result<CheckedProgram> checked = TypecheckMiniGo(&program, &types);
  if (!checked.ok()) {
    return Result<std::vector<LintDiagnostic>>::Error(checked.error());
  }

  // Interprocedural facts: lower the (well-formed) unit to AbsIR and compute
  // callee summaries over the call graph. Summary facts are invariants of
  // the bodies, so they apply no matter which functions the config roots.
  Module module(&types);
  Status lowered = LowerMiniGo(program, checked.value(), &module);
  if (!lowered.ok()) {
    return Result<std::vector<LintDiagnostic>>::Error(lowered.message());
  }
  CallGraph graph = CallGraph::Build(module);
  std::vector<std::string> roots = config.entry_roots;
  if (roots.empty()) {
    for (const auto& fn : module.functions()) roots.push_back(fn->name());
  }
  InterprocContext interproc = ComputeInterprocContext(module, graph, roots, nullptr);
  std::map<std::string, bool> discardable;
  for (const auto& [name, summary] : interproc.summaries) {
    const Function* fn = module.GetFunction(name);
    bool returns_value =
        fn != nullptr && types.kind(fn->return_type()) != TypeKind::kVoid;
    discardable[name] =
        summary.analyzed && summary.pure && !summary.may_panic && returns_value;
  }

  std::vector<LintDiagnostic> diagnostics;
  // unreachable-function: only meaningful when the caller declared which
  // functions external drivers enter.
  if (!config.entry_roots.empty()) {
    std::set<int> reachable = graph.ReachableFrom(config.entry_roots);
    for (const FuncDecl& fn : program.funcs) {
      int node = graph.NodeOf(fn.name);
      if (node >= 0 && reachable.count(node) == 0) {
        LintDiagnostic diag;
        diag.file = fn.file;
        diag.line = fn.line;
        diag.category = "unreachable-function";
        diag.function = fn.name;
        diag.message =
            StrCat("function '", fn.name, "' is unreachable from every analysis entry root");
        diagnostics.push_back(std::move(diag));
      }
    }
  }
  for (const FuncDecl& fn : program.funcs) {
    FunctionLinter(types, fn, &interproc, &discardable, &diagnostics).Run();
  }
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const LintDiagnostic& a, const LintDiagnostic& b) {
              return std::tie(a.file, a.line, a.category, a.message) <
                     std::tie(b.file, b.line, b.category, b.message);
            });
  return diagnostics;
}

Result<std::vector<LintDiagnostic>> LintMiniGoSource(const std::string& file_name,
                                                     const std::string& source,
                                                     const LintConfig& config) {
  return LintMiniGoSources({{file_name, source}}, config);
}

}  // namespace dnsv

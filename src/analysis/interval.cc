#include "src/analysis/interval.h"

#include <algorithm>

#include "src/support/logging.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

constexpr int64_t kNegInf = Interval::kNegInf;
constexpr int64_t kPosInf = Interval::kPosInf;

int64_t Clamp128(__int128 v) {
  if (v <= static_cast<__int128>(kNegInf)) return kNegInf;
  if (v >= static_cast<__int128>(kPosInf)) return kPosInf;
  return static_cast<int64_t>(v);
}

// Extended-integer addition of two bounds. An infinite addend dominates; when
// both infinities meet (only possible through top-level Top inputs), the
// caller picks the sound direction via `toward`.
int64_t AddBound(int64_t a, int64_t b, int64_t toward) {
  if (a == kNegInf || b == kNegInf) {
    if (a == kPosInf || b == kPosInf) return toward;  // -inf + +inf: ambiguous
    return kNegInf;
  }
  if (a == kPosInf || b == kPosInf) return kPosInf;
  return Clamp128(static_cast<__int128>(a) + b);
}

// Extended-integer product of two bounds with the convention inf * 0 = 0,
// which is the correct rule for interval corner products.
int64_t MulBound(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  bool negative = (a < 0) != (b < 0);
  if (a == kNegInf || a == kPosInf || b == kNegInf || b == kPosInf) {
    return negative ? kNegInf : kPosInf;
  }
  return Clamp128(static_cast<__int128>(a) * b);
}

int64_t NegBound(int64_t a) {
  if (a == kNegInf) return kPosInf;
  if (a == kPosInf) return kNegInf;
  return -a;  // |a| < 2^63 - 1 here, so negation cannot overflow
}

}  // namespace

Interval Interval::Range(int64_t lo, int64_t hi) {
  DNSV_CHECK_MSG(lo <= hi, "empty interval");
  return {lo, hi};
}

std::string Interval::ToString() const {
  std::string l = lo == kNegInf ? "-inf" : StrCat(lo);
  std::string h = hi == kPosInf ? "+inf" : StrCat(hi);
  return StrCat("[", l, ", ", h, "]");
}

Interval Join(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval Widen(const Interval& prev, const Interval& next) {
  Interval joined = Join(prev, next);
  return {joined.lo < prev.lo ? kNegInf : joined.lo, joined.hi > prev.hi ? kPosInf : joined.hi};
}

std::optional<Interval> Meet(const Interval& a, const Interval& b) {
  int64_t lo = std::max(a.lo, b.lo);
  int64_t hi = std::min(a.hi, b.hi);
  if (lo > hi) return std::nullopt;
  return Interval{lo, hi};
}

Interval IntervalAdd(const Interval& a, const Interval& b) {
  return {AddBound(a.lo, b.lo, kNegInf), AddBound(a.hi, b.hi, kPosInf)};
}

Interval IntervalSub(const Interval& a, const Interval& b) {
  return {AddBound(a.lo, NegBound(b.hi), kNegInf), AddBound(a.hi, NegBound(b.lo), kPosInf)};
}

Interval IntervalMul(const Interval& a, const Interval& b) {
  int64_t c[4] = {MulBound(a.lo, b.lo), MulBound(a.lo, b.hi), MulBound(a.hi, b.lo),
                  MulBound(a.hi, b.hi)};
  return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

Interval IntervalNeg(const Interval& a) {
  return {NegBound(a.hi), NegBound(a.lo)};
}

bool ProvablyLt(const Interval& a, const Interval& b) {
  return a.hi != kPosInf && b.lo != kNegInf && a.hi < b.lo;
}

bool ProvablyLe(const Interval& a, const Interval& b) {
  return a.hi != kPosInf && b.lo != kNegInf && a.hi <= b.lo;
}

bool ProvablyNe(const Interval& a, const Interval& b) {
  return ProvablyLt(a, b) || ProvablyLt(b, a);
}

}  // namespace dnsv

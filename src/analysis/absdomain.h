// The abstract domain used to discharge panic blocks statically.
//
// The domain is a value-graph abstract interpretation of one AbsIR function:
// every abstract value is a ValueId into a hash-consed ValueTable, so two
// registers that compute the same pure expression over the same inputs get
// the *same* id — which is what lets the bounds-check pattern
//
//   %len = listlen %list          ; same id every time the list is unchanged
//   br (or (lt %i 0) (ge %i %len)), panic, cont
//
// be discharged from the loop condition `%i < %len` asserted on the loop's
// body edge: both occurrences of the length are one value, so the relational
// fact (i < len) recorded at the loop head still applies at the check.
//
// State components (all maps over ValueIds, so joins are keyed stably):
//   regs   instruction register -> value
//   mem    abstract location -> stored value. Locations are alloca cells
//          (strong updates: the frontend never lets a stack slot's address
//          escape — PreflightAllocasDontEscape verifies it) or heap
//          addresses (invalidated by any heap store or call).
//   facts  per-value refinements: integer interval, three-valued bool,
//          three-valued nullness. Absent entry = no refinement (top).
//   lt/le/eq relational facts between integer values, recorded by Assert on
//          branch edges and intersected at joins. Queries take the
//          reachability closure: i < lenA, lenA == lenB  proves  i < lenB,
//          which is exactly the nameEq pattern (length-equality check
//          followed by a joint loop over both lists).
//
// Soundness stance: every operation over-approximates the concrete MiniGo
// semantics. Unknown effects (calls, havoc, heap loads) produce generation-
// fresh values with no facts; joins only weaken facts; branch edges are
// dropped only when the abstract state proves them infeasible. The pruning
// pass (prune.h) additionally re-validates and differentially tests the
// result, see docs/ANALYSIS.md for the full argument.
#ifndef DNSV_ANALYSIS_ABSDOMAIN_H_
#define DNSV_ANALYSIS_ABSDOMAIN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/interval.h"
#include "src/ir/function.h"

namespace dnsv {

struct InterprocContext;  // summary.h; absdomain.h stays include-cycle-free

enum class Bool3 : uint8_t { kFalse, kTrue, kUnknown };
enum class Null3 : uint8_t { kNull, kNonNull, kMaybe };

using ValueId = uint32_t;

// Hash-consed definitions of abstract values. Pure definitions (constants,
// parameters, alloca cells, pure operators) are interned: structurally equal
// definitions share one id. Fresh definitions (calls, havocs, unknown loads,
// heap allocations) are *not* interned — each dynamic instance gets a new id,
// so two executions of a call in a loop are never conflated. Join values are
// interned per (block, kind, key): the loop-head "merge register" that keeps
// states finite.
class ValueTable {
 public:
  struct Def {
    enum class Kind : uint8_t {
      kIntConst, kBoolConst, kNull, kParam, kCell, kPure, kFresh, kJoin,
    };
    Kind kind = Kind::kFresh;
    int64_t imm = 0;        // const payload / param index / cell or fresh instr /
                            // pure immediate (field index)
    Opcode op = Opcode::kHavoc;   // kPure
    BinOp bin_op = BinOp::kAdd;   // kPure kBinOp
    UnOp un_op = UnOp::kNot;      // kPure kUnOp
    std::vector<ValueId> args;    // kPure operands
    bool nonnull = false;         // kFresh from newobject: address is non-nil
    std::string text;             // kPure kCall: callee name
  };

  ValueId IntConst(int64_t value);
  ValueId BoolConst(bool value);
  ValueId Null();
  ValueId Param(uint32_t index);
  ValueId Cell(uint32_t instr);
  ValueId Pure(Opcode op, BinOp bin_op, UnOp un_op, std::vector<ValueId> args, int64_t imm);
  // A call to a pure, heap-independent callee: interned like any other pure
  // operator, so two calls on equal abstract arguments share one value.
  ValueId PureCall(const std::string& callee, std::vector<ValueId> args);
  ValueId Fresh(uint32_t instr, bool nonnull);
  ValueId JoinValue(BlockId block, char space, uint64_t key);

  const Def& def(ValueId id) const { return defs_[id]; }
  size_t size() const { return defs_.size(); }

 private:
  ValueId Intern(std::string key, Def def);

  std::vector<Def> defs_;
  std::map<std::string, ValueId> interned_;
};

// Per-value refinements; the default-constructed value is top.
struct AbsFacts {
  Interval range = Interval::Top();
  Bool3 boolean = Bool3::kUnknown;
  Null3 nullness = Null3::kMaybe;

  bool operator==(const AbsFacts&) const = default;
  bool IsTop() const { return *this == AbsFacts{}; }
};

struct AbsState {
  std::map<uint32_t, ValueId> regs;
  std::map<ValueId, ValueId> mem;
  std::map<ValueId, AbsFacts> facts;
  std::set<std::pair<ValueId, ValueId>> lt;  // (a, b): a < b on this path
  std::set<std::pair<ValueId, ValueId>> le;  // (a, b): a <= b on this path
  std::set<std::pair<ValueId, ValueId>> eq;  // (min, max): equal on this path
};

// Returns true when no alloca address (or gep derived from one) escapes the
// load-addr / store-addr / gep-base positions. Strong updates on stack slots
// are only sound under this condition; functions that violate it are skipped
// by the pruning pass.
bool PreflightAllocasDontEscape(const Function& fn);

// The dataflow Domain (see dataflow.h) that computes panic-discharge facts.
// With a non-null InterprocContext the transfer function consumes callee
// summaries (purity, non-nil returns, constant returns), seeds parameter
// facts into the entry state, and lets protected allocations survive call
// clobbers; without one it reproduces the PR 2 intraprocedural baseline
// exactly.
class PruneDomain {
 public:
  using State = AbsState;

  explicit PruneDomain(ValueTable* values, const InterprocContext* interproc = nullptr)
      : values_(values), interproc_(interproc) {}

  State EntryState(const Function& fn);
  void Transfer(const Function& fn, BlockId block, const State& in,
                std::vector<std::pair<BlockId, State>>* out);
  bool Join(State* into, const State& incoming, const Function& fn, BlockId at, int visits);

  // --- helpers shared with the discharge sweep in prune.cc ---

  // Executes the non-terminator instructions of `block` on a copy of `in`.
  State ExecuteBody(const Function& fn, const State& in, BlockId block);
  // Same, invoking `observer(index, state)` immediately BEFORE each
  // instruction executes — the hook summary.cc uses to read argument facts at
  // call sites and classify store/load addresses under the flow state.
  State ExecuteBodyObserved(const Function& fn, const State& in, BlockId block,
                            const std::function<void(uint32_t, State*)>& observer);
  // True when `addr` roots at memory this function owns (an alloca cell or
  // one of its own kNewObject allocations): a store through it is invisible
  // to callers, a load through it cannot observe caller-owned heap.
  bool AddressIsLocal(const State& state, const Function& fn, ValueId addr) const;
  // Value of an operand in `state` (interns constants on demand).
  ValueId OperandValue(State* state, const Operand& op);
  // Three-valued query of a boolean value under `state`'s facts.
  Bool3 EvalBool(const State& state, ValueId id) const;
  // Conjoins `id == truth` onto `state`; returns false when that is
  // contradictory (the edge is infeasible).
  bool Assert(State* state, ValueId id, bool truth);

  Interval EvalInt(const State& state, ValueId id) const;
  Null3 EvalNull(const State& state, ValueId id) const;

 private:
  void ExecInstr(State* state, const Function& fn, uint32_t index);
  Interval EvalIntAt(const State& state, ValueId id, int depth) const;
  Bool3 EvalBoolAt(const State& state, ValueId id, int depth) const;
  Null3 EvalNullAt(const State& state, ValueId id, int depth) const;
  Interval ListLenAt(const State& state, ValueId list, int depth) const;
  bool AssertAt(State* state, ValueId id, bool truth, int depth);
  bool AssertCmp(State* state, BinOp op, ValueId a, ValueId b, bool truth);
  bool AssertLt(State* state, ValueId a, ValueId b);
  bool AssertLe(State* state, ValueId a, ValueId b);
  bool AssertIntEq(State* state, ValueId a, ValueId b);
  bool AssertIntNe(State* state, ValueId a, ValueId b);
  bool SetNullFact(State* state, ValueId id, bool is_null);
  // The root of an address chain: an alloca cell, or the address value itself
  // for heap pointers.
  ValueId AddressRoot(ValueId id) const;
  bool RootIsCell(ValueId id) const;
  // Drops mem entries whose address is rooted at `root`.
  void EraseRootedAt(State* state, ValueId root);
  // Drops every mem entry not rooted at an alloca cell (heap clobber). With
  // `protect_local`, entries rooted at this function's protected allocations
  // (InterprocContext::protected_allocs) survive: a callee cannot reach an
  // allocation whose address never escapes this function. Stores through
  // unknown pointers must pass protect_local=false — an unknown in-function
  // pointer may still alias a local allocation the dataflow lost track of.
  void EraseHeapEntries(State* state, const Function& fn, bool protect_local);
  // True when `root` is exempt from heap clobbers and takes strong updates:
  // an alloca cell, or a protected allocation of this function.
  bool RootTakesStrongUpdates(const Function& fn, ValueId root) const;
  AbsFacts FactsOf(const State& state, ValueId id) const;

  ValueTable* values_;
  const InterprocContext* interproc_;
  uint32_t generation_ = 0;
};

}  // namespace dnsv

#endif  // DNSV_ANALYSIS_ABSDOMAIN_H_

#include "src/analysis/sccp.h"

#include <map>
#include <set>
#include <vector>

#include "src/analysis/summary.h"
#include "src/support/logging.h"

namespace dnsv {
namespace {

struct Lattice {
  enum class Level : uint8_t { kUnexecuted, kConst, kOverdefined };
  Level level = Level::kUnexecuted;
  int64_t value = 0;  // int payload, or 0/1 for bools
};

class Solver {
 public:
  Solver(const Function& fn, const InterprocContext* interproc)
      : fn_(fn), interproc_(interproc), regs_(fn.num_instrs()),
        block_executable_(fn.num_blocks(), false) {
    // Structural single-def registers: uses are found by scanning once.
    users_.resize(fn.num_instrs());
    for (uint32_t j = 0; j < fn_.num_instrs(); ++j) {
      for (const Operand& op : fn_.instr(j).operands) {
        if (op.kind == Operand::Kind::kReg && !Function::IsParamReg(op.reg)) {
          users_[op.reg].push_back(j);
        }
      }
    }
  }

  void Run() {
    MarkBlock(fn_.entry());
    while (!block_work_.empty() || !instr_work_.empty()) {
      while (!instr_work_.empty()) {
        uint32_t index = instr_work_.back();
        instr_work_.pop_back();
        Visit(index);
      }
      if (!block_work_.empty()) {
        BlockId block = block_work_.back();
        block_work_.pop_back();
        for (uint32_t index : fn_.block(block).instrs) Visit(index);
      }
    }
  }

  bool BlockExecutable(BlockId b) const { return block_executable_[b]; }
  const Lattice& RegState(uint32_t r) const { return regs_[r]; }

 private:
  // Operand value under the current lattice; level kConst with payload when
  // known. Parameters and everything else are overdefined.
  Lattice OperandState(const Operand& op) const {
    Lattice out;
    switch (op.kind) {
      case Operand::Kind::kIntConst:
      case Operand::Kind::kBoolConst:
        out.level = Lattice::Level::kConst;
        out.value = op.imm;
        return out;
      case Operand::Kind::kReg:
        if (Function::IsParamReg(op.reg)) {
          out.level = Lattice::Level::kOverdefined;
          return out;
        }
        return regs_[op.reg];
      default:
        out.level = Lattice::Level::kOverdefined;
        return out;
    }
  }

  void MarkBlock(BlockId block) {
    if (block_executable_[block]) return;
    block_executable_[block] = true;
    block_work_.push_back(block);
  }

  // Raises `index` to `next`; never lowers. Requeues users on change.
  void Update(uint32_t index, Lattice next) {
    Lattice& cur = regs_[index];
    if (cur.level == Lattice::Level::kOverdefined) return;
    if (next.level == Lattice::Level::kUnexecuted) return;
    if (cur.level == Lattice::Level::kConst && next.level == Lattice::Level::kConst &&
        cur.value == next.value) {
      return;
    }
    if (cur.level == Lattice::Level::kConst && next.level == Lattice::Level::kConst) {
      next.level = Lattice::Level::kOverdefined;  // conflicting constants
    }
    cur = next;
    for (uint32_t user : users_[index]) instr_work_.push_back(user);
  }

  void Visit(uint32_t index) {
    const Instr& instr = fn_.instr(index);
    switch (instr.op) {
      case Opcode::kBinOp:
        VisitBinOp(index, instr);
        break;
      case Opcode::kUnOp: {
        Lattice a = OperandState(instr.operands[0]);
        if (a.level == Lattice::Level::kConst) {
          int64_t v = instr.un_op == UnOp::kNot ? (a.value == 0 ? 1 : 0) : -a.value;
          Update(index, {Lattice::Level::kConst, v});
        } else if (a.level == Lattice::Level::kOverdefined) {
          Update(index, {Lattice::Level::kOverdefined, 0});
        }
        break;
      }
      case Opcode::kCall: {
        const CalleeSummary* summary =
            interproc_ != nullptr ? interproc_->SummaryFor(instr.text) : nullptr;
        if (summary != nullptr && summary->analyzed && summary->return_range.IsConst()) {
          Update(index, {Lattice::Level::kConst, summary->return_range.lo});
        } else if (summary != nullptr && summary->analyzed &&
                   summary->return_bool != Bool3::kUnknown) {
          Update(index, {Lattice::Level::kConst,
                         summary->return_bool == Bool3::kTrue ? 1 : 0});
        } else {
          Update(index, {Lattice::Level::kOverdefined, 0});
        }
        break;
      }
      case Opcode::kBr: {
        if (instr.target_true == instr.target_false) {
          MarkBlock(instr.target_true);
          break;
        }
        Lattice cond = OperandState(instr.operands[0]);
        if (cond.level == Lattice::Level::kConst) {
          MarkBlock(cond.value != 0 ? instr.target_true : instr.target_false);
        } else if (cond.level == Lattice::Level::kOverdefined) {
          MarkBlock(instr.target_true);
          MarkBlock(instr.target_false);
        }
        // kUnexecuted: the condition's def has not run yet; its Update will
        // requeue this branch.
        break;
      }
      case Opcode::kJmp:
        MarkBlock(instr.target_true);
        break;
      case Opcode::kRet:
      case Opcode::kPanic:
      case Opcode::kStore:
        break;
      default:
        // Loads, geps, allocations, list ops, havoc: never constant.
        Update(index, {Lattice::Level::kOverdefined, 0});
        break;
    }
  }

  void VisitBinOp(uint32_t index, const Instr& instr) {
    Lattice a = OperandState(instr.operands[0]);
    Lattice b = OperandState(instr.operands[1]);
    if (a.level == Lattice::Level::kUnexecuted || b.level == Lattice::Level::kUnexecuted) {
      return;
    }
    if (a.level == Lattice::Level::kOverdefined || b.level == Lattice::Level::kOverdefined) {
      Update(index, {Lattice::Level::kOverdefined, 0});
      return;
    }
    int64_t x = a.value;
    int64_t y = b.value;
    int64_t v = 0;
    switch (instr.bin_op) {
      case BinOp::kAdd: v = x + y; break;
      case BinOp::kSub: v = x - y; break;
      case BinOp::kMul: v = x * y; break;
      case BinOp::kDiv:
      case BinOp::kMod:
        // A constant zero divisor is a genuine panic; folding would hide it.
        if (y == 0) {
          Update(index, {Lattice::Level::kOverdefined, 0});
          return;
        }
        v = instr.bin_op == BinOp::kDiv ? x / y : x % y;
        if (instr.bin_op == BinOp::kMod && v < 0) v += y < 0 ? -y : y;  // Go semantics
        break;
      case BinOp::kEq: case BinOp::kBoolEq: v = x == y; break;
      case BinOp::kNe: case BinOp::kBoolNe: v = x != y; break;
      case BinOp::kLt: v = x < y; break;
      case BinOp::kLe: v = x <= y; break;
      case BinOp::kGt: v = x > y; break;
      case BinOp::kGe: v = x >= y; break;
      case BinOp::kAnd: v = (x != 0 && y != 0); break;
      case BinOp::kOr: v = (x != 0 || y != 0); break;
      case BinOp::kPtrEq:
      case BinOp::kPtrNe:
        Update(index, {Lattice::Level::kOverdefined, 0});
        return;
    }
    Update(index, {Lattice::Level::kConst, v});
  }

  const Function& fn_;
  const InterprocContext* interproc_;
  std::vector<Lattice> regs_;
  std::vector<bool> block_executable_;
  std::vector<std::vector<uint32_t>> users_;
  std::vector<uint32_t> instr_work_;
  std::vector<BlockId> block_work_;
};

}  // namespace

SccpResult RunSccp(Function* fn, const InterprocContext* interproc) {
  Solver solver(*fn, interproc);
  solver.Run();
  SccpResult result;
  for (BlockId b = 0; b < fn->num_blocks(); ++b) {
    if (!solver.BlockExecutable(b)) continue;
    uint32_t term_index = fn->block(b).instrs.back();
    const Instr& term = fn->instr(term_index);
    if (term.op != Opcode::kBr || term.target_true == term.target_false) continue;
    Lattice cond{Lattice::Level::kOverdefined, 0};
    const Operand& op = term.operands[0];
    if (op.kind == Operand::Kind::kIntConst || op.kind == Operand::Kind::kBoolConst) {
      cond = {Lattice::Level::kConst, op.imm};
    } else if (op.kind == Operand::Kind::kReg && !Function::IsParamReg(op.reg)) {
      cond = solver.RegState(op.reg);
    }
    if (cond.level != Lattice::Level::kConst) continue;
    Instr& rewritten = fn->mutable_instr(term_index);
    rewritten.op = Opcode::kJmp;
    rewritten.target_true = cond.value != 0 ? term.target_true : term.target_false;
    rewritten.target_false = kInvalidBlock;
    rewritten.operands.clear();
    result.branches_folded++;
    result.changed = true;
  }
  return result;
}

}  // namespace dnsv

// Generic forward-dataflow engine over the AbsIR CFG.
//
// A pass supplies a Domain with
//
//   using State = ...;                       // abstract state, == comparable
//   State EntryState(const Function& fn);
//   // Executes `block` on `in` and appends one (successor, edge state) pair
//   // per CFG edge the abstract semantics considers feasible. Edges the
//   // domain proves infeasible are simply not emitted.
//   void Transfer(const Function& fn, BlockId block, const State& in,
//                 std::vector<std::pair<BlockId, State>>* out);
//   // Merges `incoming` into `*into`; returns true when *into changed.
//   // `visits` counts how often the target block has been taken off the
//   // worklist — domains switch from join to widening once it passes their
//   // threshold, which is what guarantees termination on loops.
//   bool Join(State* into, const State& incoming, const Function& fn, BlockId at, int visits);
//
// and gets back the fixpoint in-state of every reached block. The solver
// processes blocks in reverse postorder (loop heads before bodies), which is
// the standard iteration order for forward problems.
#ifndef DNSV_ANALYSIS_DATAFLOW_H_
#define DNSV_ANALYSIS_DATAFLOW_H_

#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "src/analysis/cfg.h"
#include "src/ir/function.h"

namespace dnsv {

template <typename Domain>
struct DataflowResult {
  // Fixpoint in-state per block; nullopt for blocks the abstract execution
  // never reached (CFG-unreachable, or cut off by infeasible edges).
  std::vector<std::optional<typename Domain::State>> block_in;
  bool converged = true;  // false: a block exceeded max_visits; states are
                          // unreliable and callers must not act on them
  int64_t transfers = 0;  // block transfer-function evaluations
};

template <typename Domain>
DataflowResult<Domain> SolveForwardDataflow(const Function& fn, Domain* domain,
                                            int max_visits_per_block = 64) {
  using State = typename Domain::State;
  DataflowResult<Domain> result;
  result.block_in.resize(fn.num_blocks());

  std::vector<BlockId> rpo = ReversePostorder(fn);
  std::vector<int> rpo_index(fn.num_blocks(), -1);
  for (size_t i = 0; i < rpo.size(); ++i) {
    rpo_index[rpo[i]] = static_cast<int>(i);
  }
  std::vector<int> visits(fn.num_blocks(), 0);

  // Worklist keyed by RPO position: loop heads come off before their bodies.
  std::set<std::pair<int, BlockId>> worklist;
  result.block_in[fn.entry()] = domain->EntryState(fn);
  worklist.insert({rpo_index[fn.entry()], fn.entry()});

  std::vector<std::pair<BlockId, State>> edges;
  while (!worklist.empty()) {
    BlockId block = worklist.begin()->second;
    worklist.erase(worklist.begin());
    if (++visits[block] > max_visits_per_block) {
      result.converged = false;
      return result;
    }
    edges.clear();
    domain->Transfer(fn, block, *result.block_in[block], &edges);
    ++result.transfers;
    for (auto& [succ, state] : edges) {
      DNSV_CHECK(succ < fn.num_blocks());
      bool changed;
      if (!result.block_in[succ].has_value()) {
        result.block_in[succ] = std::move(state);
        changed = true;
      } else {
        changed = domain->Join(&*result.block_in[succ], state, fn, succ, visits[succ]);
      }
      if (changed && rpo_index[succ] >= 0) {
        worklist.insert({rpo_index[succ], succ});
      }
    }
  }
  return result;
}

}  // namespace dnsv

#endif  // DNSV_ANALYSIS_DATAFLOW_H_

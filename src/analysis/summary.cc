#include "src/analysis/summary.h"

#include <algorithm>

#include "src/analysis/dataflow.h"
#include "src/support/logging.h"
#include "src/support/strings.h"

namespace dnsv {

const CalleeSummary* InterprocContext::SummaryFor(const std::string& name) const {
  auto it = summaries.find(name);
  return it == summaries.end() ? nullptr : &it->second;
}

const std::vector<AbsFacts>* InterprocContext::ParamFactsFor(const std::string& name) const {
  auto it = param_facts.find(name);
  return it == param_facts.end() ? nullptr : &it->second;
}

bool InterprocContext::IsProtectedAlloc(const std::string& fn, uint32_t instr) const {
  auto it = protected_allocs.find(fn);
  return it != protected_allocs.end() && it->second.count(instr) > 0;
}

AnalysisStats& AnalysisStats::operator+=(const AnalysisStats& other) {
  callgraph_seconds += other.callgraph_seconds;
  summary_seconds += other.summary_seconds;
  sccp_seconds += other.sccp_seconds;
  alias_seconds += other.alias_seconds;
  escape_seconds += other.escape_seconds;
  functions += other.functions;
  pure_functions += other.pure_functions;
  nonnull_returns += other.nonnull_returns;
  const_returns += other.const_returns;
  param_fact_functions += other.param_fact_functions;
  protected_allocs += other.protected_allocs;
  sccp_branches_folded += other.sccp_branches_folded;
  return *this;
}

std::string AnalysisStats::ToString() const {
  return StrCat("callgraph ", callgraph_seconds, "s (", functions,
                " functions), summaries ", summary_seconds, "s (", pure_functions,
                " pure, ", nonnull_returns, " nonnull, ", const_returns, " const, ",
                param_fact_functions, " param-fact), sccp ", sccp_seconds, "s (",
                sccp_branches_folded, " branches folded), alias ", alias_seconds,
                "s, escape ", escape_seconds, "s (", protected_allocs, " local allocs)");
}

namespace {

// Joins `facts` into the per-parameter accumulator for one callee.
void JoinParamFacts(std::vector<AbsFacts>* acc, bool* first,
                    const std::vector<AbsFacts>& facts) {
  if (*first) {
    *acc = facts;
    *first = false;
    return;
  }
  if (acc->size() != facts.size()) {  // arity mismatch: go fully top
    acc->assign(std::max(acc->size(), facts.size()), AbsFacts{});
    return;
  }
  for (size_t i = 0; i < acc->size(); ++i) {
    AbsFacts& a = (*acc)[i];
    a.nullness = a.nullness == facts[i].nullness ? a.nullness : Null3::kMaybe;
    // Only the nullness channel propagates (see the header comment); keep the
    // others top so a later reader cannot rely on them by accident.
    a.range = Interval::Top();
    a.boolean = Bool3::kUnknown;
  }
}

// Per-callee accumulation of facts observed at call sites.
struct CallSiteAcc {
  std::vector<AbsFacts> facts;
  bool first = true;
  bool poisoned = false;  // some call site sits in an unanalyzed caller
};

}  // namespace

InterprocContext ComputeInterprocContext(const Module& module, const CallGraph& graph,
                                         const std::vector<std::string>& entry_points,
                                         AnalysisStats* stats) {
  double start = ElapsedSeconds();
  InterprocContext ctx;
  std::map<std::string, CallSiteAcc> call_sites;

  auto poison_callees = [&](const Function& fn) {
    for (uint32_t i = 0; i < fn.num_instrs(); ++i) {
      const Instr& instr = fn.instr(i);
      if (instr.op == Opcode::kCall) call_sites[instr.text].poisoned = true;
    }
  };

  // --- bottom-up: summaries (and, on the same walk, call-site facts) ---
  for (const std::vector<int>& scc : graph.SccsBottomUp()) {
    for (int member : scc) {
      const Function& fn = graph.function(member);
      CalleeSummary summary;  // pessimistic default
      bool analyzable = graph.SccIsTrivial(graph.SccOf(member)) &&
                        PreflightAllocasDontEscape(fn);
      if (!analyzable) {
        poison_callees(fn);
        ctx.summaries[fn.name()] = summary;
        continue;
      }
      ValueTable values;
      PruneDomain domain(&values, &ctx);
      DataflowResult<PruneDomain> flow = SolveForwardDataflow(fn, &domain);
      if (!flow.converged) {
        poison_callees(fn);
        ctx.summaries[fn.name()] = summary;
        continue;
      }
      summary.analyzed = true;
      summary.pure = true;
      summary.heap_independent = true;
      summary.may_panic = false;
      bool saw_ret_value = false;
      bool all_rets_nonnull = true;
      Interval ret_range;  // meaningful once saw_ret_value
      Bool3 ret_bool = Bool3::kUnknown;

      for (BlockId b = 0; b < fn.num_blocks(); ++b) {
        if (!flow.block_in[b].has_value()) continue;  // abstractly unreachable
        if (fn.block(b).is_panic_block) summary.may_panic = true;
        auto observer = [&](uint32_t index, AbsState* state) {
          const Instr& instr = fn.instr(index);
          switch (instr.op) {
            case Opcode::kStore: {
              ValueId addr = domain.OperandValue(state, instr.operands[0]);
              if (!domain.AddressIsLocal(*state, fn, addr)) summary.pure = false;
              break;
            }
            case Opcode::kLoad: {
              ValueId addr = domain.OperandValue(state, instr.operands[0]);
              if (!domain.AddressIsLocal(*state, fn, addr)) {
                summary.heap_independent = false;
              }
              break;
            }
            case Opcode::kHavoc:
              // Nondeterminism: two executions with equal arguments may still
              // differ, which forbids interning calls to this function.
              summary.heap_independent = false;
              break;
            case Opcode::kCall: {
              if (IsIntrinsicCallee(instr.text)) break;  // pure, total, value args
              const CalleeSummary* callee = ctx.SummaryFor(instr.text);
              if (callee == nullptr) {  // not in the module: assume the worst
                summary.pure = false;
                summary.heap_independent = false;
                summary.may_panic = true;
                break;
              }
              summary.pure = summary.pure && callee->pure;
              summary.heap_independent =
                  summary.heap_independent && callee->heap_independent;
              summary.may_panic = summary.may_panic || callee->may_panic;
              // Argument facts for the top-down pass, read in the pre-call
              // state of this caller's fixpoint.
              std::vector<AbsFacts> arg_facts;
              arg_facts.reserve(instr.operands.size());
              for (const Operand& op : instr.operands) {
                ValueId v = domain.OperandValue(state, op);
                AbsFacts facts;
                facts.nullness = domain.EvalNull(*state, v);
                arg_facts.push_back(facts);
              }
              CallSiteAcc& acc = call_sites[instr.text];
              JoinParamFacts(&acc.facts, &acc.first, arg_facts);
              break;
            }
            default:
              break;
          }
        };
        AbsState end = domain.ExecuteBodyObserved(fn, *flow.block_in[b], b, observer);
        const Instr& term = fn.instr(fn.block(b).instrs.back());
        if (term.op == Opcode::kRet && !term.operands.empty() && term.operands[0].valid()) {
          ValueId v = domain.OperandValue(&end, term.operands[0]);
          if (domain.EvalNull(end, v) != Null3::kNonNull) all_rets_nonnull = false;
          Interval range = domain.EvalInt(end, v);
          Bool3 boolean = domain.EvalBool(end, v);
          if (!saw_ret_value) {
            ret_range = range;
            ret_bool = boolean;
            saw_ret_value = true;
          } else {
            ret_range = Join(ret_range, range);
            if (boolean != ret_bool) ret_bool = Bool3::kUnknown;
          }
        }
      }
      if (saw_ret_value) {
        summary.returns_nonnull = all_rets_nonnull;
        summary.return_range = ret_range;
        summary.return_bool = ret_bool;
      }
      ctx.summaries[fn.name()] = summary;
    }
  }

  // --- top-down: entry facts for functions no driver enters directly ---
  std::set<std::string> roots(entry_points.begin(), entry_points.end());
  for (auto& [name, acc] : call_sites) {
    if (acc.poisoned || acc.first || roots.count(name) > 0) continue;
    if (module.GetFunction(name) == nullptr) continue;
    bool any = false;
    for (const AbsFacts& f : acc.facts) {
      if (!f.IsTop()) any = true;
    }
    if (any) ctx.param_facts[name] = acc.facts;
  }

  if (stats != nullptr) {
    stats->summary_seconds += ElapsedSeconds() - start;
    stats->functions += static_cast<int64_t>(graph.size());
    for (const auto& [name, s] : ctx.summaries) {
      if (s.pure) stats->pure_functions++;
      if (s.returns_nonnull) stats->nonnull_returns++;
      if (s.analyzed && (s.return_range.IsConst() || s.return_bool != Bool3::kUnknown)) {
        stats->const_returns++;
      }
    }
    stats->param_fact_functions += static_cast<int64_t>(ctx.param_facts.size());
  }
  return ctx;
}

}  // namespace dnsv

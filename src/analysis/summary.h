// Bottom-up function summaries and top-down parameter facts over one module.
//
// The interprocedural layer sits between the call graph (callgraph.h) and the
// intraprocedural PruneDomain (absdomain.h). Two passes over the SCC DAG:
//
//   Bottom-up (callee-first): per function, a CalleeSummary — purity, heap
//   independence, whether the return value is provably non-nil, and constant
//   return facts — computed by running the PruneDomain fixpoint with the
//   already-summarized callees plugged in. With a summary in hand, a call
//   site stops being a full heap clobber: pure callees preserve every memory
//   binding, heap-independent pure callees are interned like any other pure
//   operator (two calls with equal abstract arguments yield one value), and
//   `returns_nonnull` discharges the nil checks the frontend emits on every
//   dereference of the result.
//
//   Top-down (caller-first): for functions that are NOT analysis entry
//   points, the join of the argument facts observed at every call site
//   becomes the callee's entry assumption. Only the nullness channel is
//   propagated — entry points (and everything the drivers may invoke
//   directly, see EngineAnalysisRoots) stay at top, so a function the
//   verifier explores standalone is never specialized to facts that hold
//   only on in-module call paths.
//
// Soundness: a summary only ever adds facts that hold in every concrete
// execution of the callee (purity and heap independence are syntactic
// invariants of the body; return facts come from the over-approximating
// domain), and param facts are the join over ALL call sites of a function no
// driver enters directly. Functions whose dataflow does not converge, whose
// allocas escape, or that sit in a recursive SCC get the pessimistic
// default-constructed summary.
#ifndef DNSV_ANALYSIS_SUMMARY_H_
#define DNSV_ANALYSIS_SUMMARY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/absdomain.h"
#include "src/analysis/callgraph.h"
#include "src/analysis/interval.h"
#include "src/ir/function.h"

namespace dnsv {

// What one function guarantees to every caller. The default-constructed
// summary is the sound "know nothing" bottom of the lattice.
struct CalleeSummary {
  // Dataflow-backed return facts below are valid. Purity / heap independence
  // / may_panic are syntactic and valid regardless.
  bool analyzed = false;
  // No store in the body (or in any callee) targets memory the caller could
  // reach: every written location roots at an own alloca or own allocation.
  bool pure = false;
  // Additionally, no load in the body (or in any callee) reads through a
  // pointer into caller-owned memory — the result depends only on the
  // argument values, so equal arguments imply an equal result even across
  // intervening heap writes. Precondition for interning calls as pure values.
  bool heap_independent = false;
  // Some panic block is reachable in the body or in a callee.
  bool may_panic = true;
  // Return-value facts, joined over every kRet (analyzed only).
  bool returns_nonnull = false;
  Interval return_range = Interval::Top();
  Bool3 return_bool = Bool3::kUnknown;
};

// Wall-clock and outcome counters for the interprocedural passes, reported in
// VerificationReport next to SolverStats and written to BENCH_prune.json.
struct AnalysisStats {
  double callgraph_seconds = 0;
  double summary_seconds = 0;
  double sccp_seconds = 0;
  double alias_seconds = 0;
  double escape_seconds = 0;

  int64_t functions = 0;           // call-graph nodes
  int64_t pure_functions = 0;      // summaries with pure == true
  int64_t nonnull_returns = 0;     // summaries with returns_nonnull == true
  int64_t const_returns = 0;       // summaries with a constant return value
  int64_t param_fact_functions = 0;  // functions with a non-top entry fact
  int64_t protected_allocs = 0;    // allocations proven function-local
  int64_t sccp_branches_folded = 0;  // constant brs rewritten to jmps

  bool IsZero() const { return *this == AnalysisStats{}; }
  double TotalSeconds() const {
    return callgraph_seconds + summary_seconds + sccp_seconds + alias_seconds +
           escape_seconds;
  }
  AnalysisStats& operator+=(const AnalysisStats& other);
  bool operator==(const AnalysisStats&) const = default;
  // One line per pass, matching the VerificationReport stage style.
  std::string ToString() const;
};

// The module-wide result every interprocedural consumer reads. Keyed by
// function name (stable across the prune rewrites that renumber blocks).
struct InterprocContext {
  std::map<std::string, CalleeSummary> summaries;
  // Entry facts per parameter; only the nullness channel is ever non-top.
  // Absent entry = all parameters top.
  std::map<std::string, std::vector<AbsFacts>> param_facts;
  // kNewObject instruction indices proven function-local by the escape
  // analysis: no pointer the function does not own can alias them, so they
  // survive heap clobbers and take strong updates like stack slots.
  std::map<std::string, std::set<uint32_t>> protected_allocs;

  const CalleeSummary* SummaryFor(const std::string& name) const;
  const std::vector<AbsFacts>* ParamFactsFor(const std::string& name) const;
  bool IsProtectedAlloc(const std::string& fn, uint32_t instr) const;
};

// Builds summaries (bottom-up) and param facts (top-down) for `module`.
// `entry_points` are the functions outside callers may invoke directly; they
// and anything unreachable from them keep top entry facts. Pass timings and
// counters are accumulated into `stats` when non-null. The escape analysis
// fills protected_allocs separately (escape.h) — this function leaves it
// empty.
InterprocContext ComputeInterprocContext(const Module& module, const CallGraph& graph,
                                         const std::vector<std::string>& entry_points,
                                         AnalysisStats* stats);

}  // namespace dnsv

#endif  // DNSV_ANALYSIS_SUMMARY_H_

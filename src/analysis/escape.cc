#include "src/analysis/escape.h"

#include "src/analysis/alias.h"
#include "src/analysis/callgraph.h"
#include "src/analysis/summary.h"
#include "src/support/logging.h"

namespace dnsv {

EscapeResult ComputeEscapes(const Module& module, const CallGraph& graph,
                            const PointsTo& points_to, AnalysisStats* stats) {
  double start = ElapsedSeconds();

  // Objects that some escaping channel can name. One pass over the solved
  // sets; the points-to solution already closed all transitive flows, so no
  // further iteration is needed here.
  std::set<int> escaped;

  // Channel 1: stored into a non-stack-slot object (heap contents, or the
  // unknown object's contents). Contents of stack slots stay local — the
  // slot's address itself never escapes (PreflightAllocasDontEscape).
  for (size_t obj = 0; obj < points_to.num_objects(); ++obj) {
    int id = static_cast<int>(obj);
    if (points_to.ObjectIsStackSlot(id)) continue;
    const std::set<int>& inside = points_to.Contents(id);
    escaped.insert(inside.begin(), inside.end());
  }

  for (const auto& fn : module.functions()) {
    // Channel 2: returned.
    const std::set<int>& ret = points_to.RetPointsTo(fn->name());
    escaped.insert(ret.begin(), ret.end());

    // Channel 3: passed as a call argument (any callee could retain it).
    for (uint32_t i = 0; i < fn->num_instrs(); ++i) {
      const Instr& instr = fn->instr(i);
      if (instr.op != Opcode::kCall || IsIntrinsicCallee(instr.text)) continue;
      for (const Operand& op : instr.operands) {
        if (op.kind != Operand::Kind::kReg) continue;
        const std::set<int>& arg = points_to.RegPointsTo(fn->name(), op.reg);
        escaped.insert(arg.begin(), arg.end());
      }
    }
  }

  EscapeResult result;
  for (const auto& fn : module.functions()) {
    for (uint32_t i = 0; i < fn->num_instrs(); ++i) {
      if (fn->instr(i).op != Opcode::kNewObject) continue;
      int obj = points_to.ObjectOf(fn->name(), i);
      DNSV_CHECK(obj >= 0);
      if (escaped.count(obj) == 0) result.local_allocs[fn->name()].insert(i);
    }
  }

  if (stats != nullptr) {
    stats->escape_seconds += ElapsedSeconds() - start;
    stats->protected_allocs += result.TotalLocal();
  }
  return result;
}

}  // namespace dnsv

#include "src/analysis/alias.h"

#include <utility>

#include "src/analysis/callgraph.h"
#include "src/analysis/summary.h"
#include "src/support/logging.h"

namespace dnsv {

namespace {
const std::set<int>& EmptySet() {
  static const std::set<int> empty;
  return empty;
}
}  // namespace

// Builds the constraint graph for one module and iterates it to a fixpoint.
// Sets are small (tens of objects) and the module has a few thousand
// instructions, so the naive round-robin schedule converges in a handful of
// sweeps; no need for a worklist keyed on changed variables.
class PointsToSolver {
 public:
  explicit PointsToSolver(PointsTo* out) : out_(out) {
    // Object 0 is the unknown object; it contains itself so that loading
    // through unknown memory yields unknown memory.
    out_->contents_.push_back({PointsTo::kUnknownObject});
    out_->object_is_stack_slot_.push_back(false);
  }

  void Generate(const Module& module, const CallGraph& graph,
                const std::vector<std::string>& entry_points) {
    // The variable whose points-to set is pinned to {unknown}: the address
    // operand for modeling unknown-callee effects.
    unknown_var_ = NewVar();
    out_->var_pts_[unknown_var_] = {PointsTo::kUnknownObject};

    for (const auto& fn : module.functions()) GenerateFunction(*fn, graph);

    for (const std::string& root : entry_points) {
      const Function* fn = module.GetFunction(root);
      if (fn == nullptr) continue;
      for (uint32_t i = 0; i < fn->params().size(); ++i) {
        out_->var_pts_[ParamVar(fn->name(), i)].insert(PointsTo::kUnknownObject);
      }
    }
  }

  void Run() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [src, dst] : copies_) {
        changed |= Include(&out_->var_pts_[dst], out_->var_pts_[src]);
      }
      for (const auto& [addr, dst] : loads_) {
        for (int obj : out_->var_pts_[addr]) {
          changed |= Include(&out_->var_pts_[dst], out_->contents_[obj]);
        }
      }
      for (const auto& [addr, src] : stores_) {
        for (int obj : out_->var_pts_[addr]) {
          changed |= Include(&out_->contents_[obj], out_->var_pts_[src]);
        }
      }
    }
  }

 private:
  int NewVar() {
    out_->var_pts_.emplace_back();
    return static_cast<int>(out_->var_pts_.size() - 1);
  }

  int RegVar(const std::string& fn, uint32_t reg) {
    auto [it, fresh] = out_->reg_vars_.try_emplace({fn, reg}, 0);
    if (fresh) it->second = NewVar();
    return it->second;
  }
  int ParamVar(const std::string& fn, uint32_t index) {
    auto [it, fresh] = out_->param_vars_.try_emplace({fn, index}, 0);
    if (fresh) it->second = NewVar();
    return it->second;
  }
  int RetVar(const std::string& fn) {
    auto [it, fresh] = out_->ret_vars_.try_emplace(fn, 0);
    if (fresh) it->second = NewVar();
    return it->second;
  }
  int NewObject(const std::string& fn, uint32_t instr, bool stack_slot) {
    int id = static_cast<int>(out_->contents_.size());
    out_->contents_.emplace_back();
    out_->object_is_stack_slot_.push_back(stack_slot);
    out_->objects_[{fn, instr}] = id;
    return id;
  }

  // Variable of a register operand, or -1 for literals/null (point at
  // nothing).
  int OperandVar(const std::string& fn, const Operand& op) {
    if (op.kind != Operand::Kind::kReg) return -1;
    if (Function::IsParamReg(op.reg)) return ParamVar(fn, Function::ParamIndex(op.reg));
    return RegVar(fn, op.reg);
  }

  void Copy(int src, int dst) {
    if (src >= 0 && dst >= 0) copies_.emplace_back(src, dst);
  }

  void GenerateFunction(const Function& fn, const CallGraph& graph) {
    const std::string& name = fn.name();
    for (uint32_t i = 0; i < fn.num_instrs(); ++i) {
      const Instr& instr = fn.instr(i);
      switch (instr.op) {
        case Opcode::kAlloca:
          out_->var_pts_[RegVar(name, i)].insert(NewObject(name, i, /*stack_slot=*/true));
          break;
        case Opcode::kNewObject:
          out_->var_pts_[RegVar(name, i)].insert(NewObject(name, i, /*stack_slot=*/false));
          break;
        case Opcode::kGep:
        case Opcode::kFieldGet:
        case Opcode::kListGet:
          Copy(OperandVar(name, instr.operands[0]), RegVar(name, i));
          break;
        case Opcode::kListSet:
          // result = list with [idx] = value: carries the old elements and
          // the new one.
          Copy(OperandVar(name, instr.operands[0]), RegVar(name, i));
          Copy(OperandVar(name, instr.operands[2]), RegVar(name, i));
          break;
        case Opcode::kListAppend:
          Copy(OperandVar(name, instr.operands[0]), RegVar(name, i));
          Copy(OperandVar(name, instr.operands[1]), RegVar(name, i));
          break;
        case Opcode::kLoad:
          loads_.emplace_back(OperandVar(name, instr.operands[0]), RegVar(name, i));
          break;
        case Opcode::kStore: {
          int src = OperandVar(name, instr.operands[1]);
          int addr = OperandVar(name, instr.operands[0]);
          if (src >= 0 && addr >= 0) stores_.emplace_back(addr, src);
          break;
        }
        case Opcode::kCall: {
          if (IsIntrinsicCallee(instr.text)) break;  // listEq: bool of values
          int callee = graph.NodeOf(instr.text);
          if (callee >= 0) {
            const Function& target = graph.function(callee);
            for (uint32_t j = 0; j < instr.operands.size(); ++j) {
              if (j < target.params().size()) {
                Copy(OperandVar(name, instr.operands[j]), ParamVar(target.name(), j));
              }
            }
            Copy(RetVar(target.name()), RegVar(name, i));
          } else {
            // Unknown callee: arguments escape into the unknown object, the
            // result may be anything reachable from it.
            for (const Operand& op : instr.operands) {
              int v = OperandVar(name, op);
              if (v >= 0) stores_.emplace_back(unknown_var_, v);
            }
            loads_.emplace_back(unknown_var_, RegVar(name, i));
            out_->var_pts_[RegVar(name, i)].insert(PointsTo::kUnknownObject);
          }
          break;
        }
        case Opcode::kHavoc:
          out_->var_pts_[RegVar(name, i)].insert(PointsTo::kUnknownObject);
          break;
        case Opcode::kRet:
          if (!instr.operands.empty() && instr.operands[0].valid()) {
            Copy(OperandVar(name, instr.operands[0]), RetVar(name));
          }
          break;
        default:
          break;  // ints, bools, branches: no pointers
      }
    }
  }

  PointsTo* out_;
  int unknown_var_ = -1;
  std::vector<std::pair<int, int>> copies_;  // (src var, dst var)
  std::vector<std::pair<int, int>> loads_;   // (addr var, dst var)
  std::vector<std::pair<int, int>> stores_;  // (addr var, src var)

  static bool Include(std::set<int>* into, const std::set<int>& from) {
    size_t before = into->size();
    into->insert(from.begin(), from.end());
    return into->size() != before;
  }
};

PointsTo PointsTo::Solve(const Module& module, const CallGraph& graph,
                         const std::vector<std::string>& entry_points,
                         AnalysisStats* stats) {
  double start = ElapsedSeconds();
  PointsTo result;
  PointsToSolver solver(&result);
  solver.Generate(module, graph, entry_points);
  solver.Run();
  if (stats != nullptr) stats->alias_seconds += ElapsedSeconds() - start;
  return result;
}

int PointsTo::ObjectOf(const std::string& fn, uint32_t instr) const {
  auto it = objects_.find({fn, instr});
  return it == objects_.end() ? -1 : it->second;
}

bool PointsTo::ObjectIsStackSlot(int object) const {
  DNSV_CHECK(object >= 0 && object < static_cast<int>(object_is_stack_slot_.size()));
  return object_is_stack_slot_[object];
}

const std::set<int>& PointsTo::RegPointsTo(const std::string& fn, uint32_t reg) const {
  if (Function::IsParamReg(reg)) return ParamPointsTo(fn, Function::ParamIndex(reg));
  auto it = reg_vars_.find({fn, reg});
  return it == reg_vars_.end() ? EmptySet() : var_pts_[it->second];
}

const std::set<int>& PointsTo::ParamPointsTo(const std::string& fn, uint32_t index) const {
  auto it = param_vars_.find({fn, index});
  return it == param_vars_.end() ? EmptySet() : var_pts_[it->second];
}

const std::set<int>& PointsTo::RetPointsTo(const std::string& fn) const {
  auto it = ret_vars_.find(fn);
  return it == ret_vars_.end() ? EmptySet() : var_pts_[it->second];
}

const std::set<int>& PointsTo::Contents(int object) const {
  DNSV_CHECK(object >= 0 && object < static_cast<int>(contents_.size()));
  return contents_[object];
}

bool PointsTo::MayAlias(const std::set<int>& a, const std::set<int>& b) {
  if (a.empty() || b.empty()) return false;
  if (a.count(kUnknownObject) > 0 || b.count(kUnknownObject) > 0) return true;
  for (int obj : a) {
    if (b.count(obj) > 0) return true;
  }
  return false;
}

}  // namespace dnsv

// Escape analysis over the module-wide points-to solution (alias.h).
//
// Classifies every kNewObject allocation site as query-local or
// snapshot-reachable. An allocation is LOCAL exactly when the points-to
// solution proves no reference to it survives outside the frame that made
// it:
//
//   1. it is never stored into any heap object (it may sit in the owning
//      function's own stack slots — that is how the frontend lowers
//      `x := new(T)` — but never in another object's contents, and never in
//      the unknown object's contents);
//   2. it is never returned (by any function — reaching another function's
//      return channel would require an escaping flow already);
//   3. it is never passed as a call argument (so no callee — analyzed or
//      not — can reach it; the listEq intrinsic is exempt: it compares value
//      lists and retains nothing).
//
// Everything else is treated as escaping, including every allocation made by
// functions outside the module and anything reachable from the unknown
// object (zone snapshots, query state).
//
// Consumers:
//   * the interprocedural prune context marks local allocations "protected":
//     the abstract domain lets facts about their fields survive call
//     clobbers and gives them strong updates (absdomain.h);
//   * the C++ backend stack-promotes local allocations — a `new T` whose
//     object provably dies with the frame becomes a C++ local.
#ifndef DNSV_ANALYSIS_ESCAPE_H_
#define DNSV_ANALYSIS_ESCAPE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "src/ir/function.h"

namespace dnsv {

class CallGraph;
class PointsTo;
struct AnalysisStats;

struct EscapeResult {
  // fn name -> kNewObject instruction indices proven query-local.
  std::map<std::string, std::set<uint32_t>> local_allocs;

  bool IsLocal(const std::string& fn, uint32_t instr) const {
    auto it = local_allocs.find(fn);
    return it != local_allocs.end() && it->second.count(instr) > 0;
  }
  int64_t TotalLocal() const {
    int64_t n = 0;
    for (const auto& [fn, allocs] : local_allocs) n += static_cast<int64_t>(allocs.size());
    return n;
  }
};

// Classifies every kNewObject site of `module` against the solved `points_to`
// facts. Fills `stats->escape_seconds` / `stats->protected_allocs` when
// `stats` is non-null.
EscapeResult ComputeEscapes(const Module& module, const CallGraph& graph,
                            const PointsTo& points_to, AnalysisStats* stats);

}  // namespace dnsv

#endif  // DNSV_ANALYSIS_ESCAPE_H_

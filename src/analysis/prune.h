// Prove-and-prune: statically discharge GoLLVM safety checks before the
// symbolic executor sees them.
//
// Two passes over each function, both driven by the PruneDomain fixpoint:
//
//  1. Panic discharge — a conditional branch guarding a panic block whose
//     panic side the abstract state proves infeasible (index in [0, len),
//     divisor nonzero, pointer non-nil) is rewritten into an unconditional
//     jmp to the safe side. The symbolic executor pays two solver checks per
//     symbolic br and zero per jmp, so every discharged check saves solver
//     work on every path that crosses it — for every version x zone verified.
//     Branches whose *safe* side is infeasible (a genuinely reachable panic)
//     are left untouched: the verifier must still report them.
//
//  2. Unreachable-block elimination — blocks no terminator edge reaches
//     (orphaned panic blocks after discharge, plus frontend-emitted dead
//     continuations) are deleted and the function is compactly rebuilt.
//
// PruneFunction re-validates the result (with the reachability invariant on)
// before returning; soundness is additionally guarded by the differential
// interpreter tests in tests/analysis/.
#ifndef DNSV_ANALYSIS_PRUNE_H_
#define DNSV_ANALYSIS_PRUNE_H_

#include <cstdint>
#include <string>

#include "src/ir/function.h"

namespace dnsv {

struct PruneStats {
  int64_t functions_analyzed = 0;
  int64_t functions_skipped = 0;     // escaping allocas or non-convergence
  int64_t panics_discharged = 0;     // safety-check brs rewritten into jmps
  int64_t blocks_removed = 0;        // unreachable blocks deleted
  int64_t panic_blocks_removed = 0;  // subset of blocks_removed

  // The static measure reported as `paths_pruned`: CFG exits the executor
  // will never fork into again (one per discharged guard) plus whole blocks
  // it can no longer enter.
  int64_t PathsPruned() const { return panics_discharged + blocks_removed; }

  PruneStats& operator+=(const PruneStats& other);
  std::string ToString() const;
};

// Prunes one function in place. The module is needed for re-validation.
PruneStats PruneFunction(const Module& module, Function* fn);

// Prunes every function of the module and aggregates the stats.
PruneStats PruneModule(Module* module);

}  // namespace dnsv

#endif  // DNSV_ANALYSIS_PRUNE_H_

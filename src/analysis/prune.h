// Prove-and-prune: statically discharge GoLLVM safety checks before the
// symbolic executor sees them.
//
// Baseline mode (PR 2 behavior, the default): two passes over each function,
// both driven by the intraprocedural PruneDomain fixpoint:
//
//  1. Panic discharge — a conditional branch guarding a panic block whose
//     panic side the abstract state proves infeasible (index in [0, len),
//     divisor nonzero, pointer non-nil) is rewritten into an unconditional
//     jmp to the safe side. The symbolic executor pays two solver checks per
//     symbolic br and zero per jmp, so every discharged check saves solver
//     work on every path that crosses it — for every version x zone verified.
//     Branches whose *safe* side is infeasible (a genuinely reachable panic)
//     are left untouched: the verifier must still report them.
//
//  2. Unreachable-block elimination — blocks no terminator edge reaches
//     (orphaned panic blocks after discharge, plus frontend-emitted dead
//     continuations) are deleted and the function is compactly rebuilt.
//
// Interprocedural mode (PruneOptions::interproc) front-loads the whole-module
// analyses from callgraph.h / summary.h / alias.h / escape.h:
//
//  a. SCCP (sccp.h) folds every constant branch — feature gates first of
//     all — and the dead sides are deleted BEFORE the fixpoint runs, so the
//     domain never wastes precision joining states from disabled features.
//     The dataflow re-derives reverse postorder and reachability from the
//     rewritten CFG; nothing from before the edge deletion is reused.
//  b. The PruneDomain consumes callee summaries (purity, non-nil and
//     constant returns), entry facts for functions no driver calls directly,
//     and escape-proven protected allocations — discharging strictly more
//     guards than the baseline while every verdict stays byte-identical.
//
// PruneFunction re-validates the result (with the reachability invariant on)
// before returning; soundness is additionally guarded by the differential
// interpreter tests in tests/analysis/.
#ifndef DNSV_ANALYSIS_PRUNE_H_
#define DNSV_ANALYSIS_PRUNE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/summary.h"
#include "src/ir/function.h"

namespace dnsv {

struct PruneStats {
  int64_t functions_analyzed = 0;
  int64_t functions_skipped = 0;     // escaping allocas or non-convergence
  int64_t panics_discharged = 0;     // safety-check brs rewritten into jmps
  int64_t blocks_removed = 0;        // unreachable blocks deleted
  int64_t panic_blocks_removed = 0;  // subset of blocks_removed

  // The static measure reported as `paths_pruned`: CFG exits the executor
  // will never fork into again (one per discharged guard) plus whole blocks
  // it can no longer enter.
  int64_t PathsPruned() const { return panics_discharged + blocks_removed; }

  PruneStats& operator+=(const PruneStats& other);
  std::string ToString() const;
};

struct PruneOptions {
  // Run SCCP and the interprocedural analyses before discharging. false
  // reproduces the PR 2 intraprocedural baseline exactly.
  bool interproc = false;
  // Functions external drivers may call directly (interproc mode only):
  // their parameters are never specialized to in-module call-site facts and
  // their allocations may escape to the caller. See EngineAnalysisRoots().
  std::vector<std::string> entry_points;
  // Interproc mode only: replay these whole-module facts instead of running
  // the call-graph / summary / points-to / escape passes. Must have been
  // computed (or round-tripped, src/store/summary_io.h) from a module with
  // the same pre-prune fingerprint; the caller owns that key discipline. The
  // context is copied internally — prune renumbers allocation indices in its
  // working copy, never through this pointer.
  const InterprocContext* precomputed = nullptr;
  // Interproc mode only: receives a copy of the whole-module facts exactly
  // as the prune loop first consumed them (pre-renumbering), suitable for
  // persisting and replaying via `precomputed`.
  InterprocContext* capture = nullptr;
};

// Prunes one function in place using the baseline intraprocedural domain.
// The module is needed for re-validation.
PruneStats PruneFunction(const Module& module, Function* fn);

// Same, consuming (and — for allocation-site renumbering — updating) a
// precomputed interprocedural context. `interproc` may be null. Analysis
// timings/counters accumulate into `analysis` when non-null.
PruneStats PruneFunction(const Module& module, Function* fn, InterprocContext* interproc,
                         AnalysisStats* analysis);

// Prunes every function of the module and aggregates the stats (baseline).
PruneStats PruneModule(Module* module);

// Prunes per `options`; in interproc mode builds the call graph, summaries,
// points-to, and escape facts for the module first. Analysis pass stats land
// in `analysis` when non-null (zero in baseline mode).
PruneStats PruneModule(Module* module, const PruneOptions& options, AnalysisStats* analysis);

}  // namespace dnsv

#endif  // DNSV_ANALYSIS_PRUNE_H_

// Random zone-configuration generator (paper §6.5, §9): favors complex
// domain names ('*' at various positions) and intertwined records
// (delegations referring to each other via NS, glue targets, CNAME chains)
// so generated domain trees cover diverse matching scenarios.
#ifndef DNSV_ZONEGEN_ZONEGEN_H_
#define DNSV_ZONEGEN_ZONEGEN_H_

#include <vector>

#include "src/dns/zone.h"
#include "src/support/rng.h"

namespace dnsv {

struct ZoneGenOptions {
  int max_names = 10;        // distinct owner names besides the apex
  int max_depth = 3;         // labels below the origin
  int max_rrs_per_name = 3;
  bool allow_wildcards = true;
  bool allow_delegations = true;
  bool allow_cnames = true;
};

// Deterministic for a given (seed, options). The result is always
// canonicalizable.
ZoneConfig GenerateZone(uint64_t seed, const ZoneGenOptions& options = {});

// Interesting query names for a zone: every owner, ancestors (ENTs),
// children of owners, wildcard instantiations, and out-of-zone names.
std::vector<DnsName> InterestingQueryNames(const ZoneConfig& zone, uint64_t seed,
                                           int num_random_extra = 8);

// The query types the engine supports, plus ANY.
std::vector<RrType> AllQueryTypes();

}  // namespace dnsv

#endif  // DNSV_ZONEGEN_ZONEGEN_H_

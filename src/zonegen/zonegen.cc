#include "src/zonegen/zonegen.h"

#include <algorithm>
#include <set>

#include "src/support/logging.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

const char* const kLabelPool[] = {"a", "b", "c", "www", "mail", "ns1", "ns2", "api",
                                  "cdn", "db", "x", "y", "z", "web", "cs", "zoo"};
constexpr size_t kLabelPoolSize = sizeof(kLabelPool) / sizeof(kLabelPool[0]);

std::string RandomLabel(SplitMix64* rng) { return kLabelPool[rng->NextBelow(kLabelPoolSize)]; }

DnsName RandomOwner(SplitMix64* rng, const DnsName& origin, int max_depth, bool wildcard_ok) {
  DnsName name = origin;
  int depth = static_cast<int>(rng->NextInRange(1, max_depth));
  for (int i = 0; i < depth; ++i) {
    name.labels.insert(name.labels.begin(), RandomLabel(rng));
  }
  if (wildcard_ok && rng->NextChance(1, 4)) {
    name.labels.insert(name.labels.begin(), kWildcardLabel);
  }
  return name;
}

int64_t RandomIp(SplitMix64* rng) {
  return static_cast<int64_t>(rng->NextBelow(0xFFFFFFFFull));
}

}  // namespace

ZoneConfig GenerateZone(uint64_t seed, const ZoneGenOptions& options) {
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL + 0xD1CE);
  ZoneConfig zone;
  zone.origin = DnsName::Parse("zone.test").value();

  // Apex SOA + NS (required); the nameservers are in-zone so glue paths are
  // exercised.
  DnsName ns1 = DnsName::Parse("ns1.zone.test").value();
  DnsName ns2 = DnsName::Parse("ns2.zone.test").value();
  zone.records.push_back({zone.origin, RrType::kSoa, {static_cast<int64_t>(seed % 1000), ns1}});
  zone.records.push_back({zone.origin, RrType::kNs, {0, ns1}});
  if (rng.NextChance(1, 2)) {
    zone.records.push_back({zone.origin, RrType::kNs, {0, ns2}});
    zone.records.push_back({ns2, RrType::kA, {RandomIp(&rng), {}}});
  }
  zone.records.push_back({ns1, RrType::kA, {RandomIp(&rng), {}}});

  int num_names = static_cast<int>(rng.NextInRange(1, options.max_names));
  std::vector<DnsName> owners;  // non-wildcard owners, usable as rdata targets
  owners.push_back(ns1);
  std::set<std::string> delegated;  // names at/below a cut get no more records

  auto under_delegation = [&](const DnsName& name) {
    for (const std::string& cut : delegated) {
      DnsName cut_name = DnsName::Parse(cut).value();
      if (name.IsSubdomainOf(cut_name) ) {
        return true;
      }
    }
    return false;
  };

  for (int n = 0; n < num_names; ++n) {
    DnsName owner = RandomOwner(&rng, zone.origin, options.max_depth, options.allow_wildcards);
    if (under_delegation(owner) || owner == zone.origin) {
      continue;
    }
    bool is_wildcard = owner.labels[0] == kWildcardLabel;
    // Decide the record mix at this owner.
    if (options.allow_delegations && !is_wildcard && rng.NextChance(1, 6)) {
      // A delegation: 1-2 NS records, glue half the time.
      int ns_count = static_cast<int>(rng.NextInRange(1, 2));
      for (int k = 0; k < ns_count; ++k) {
        DnsName target = DnsName::Parse(StrCat("ns", k + 1)).value();
        target.labels.insert(target.labels.end(), owner.labels.begin(), owner.labels.end());
        zone.records.push_back({owner, RrType::kNs, {0, target}});
        if (rng.NextChance(2, 3)) {
          zone.records.push_back({target, RrType::kA, {RandomIp(&rng), {}}});
        }
      }
      delegated.insert(owner.ToString());
      continue;
    }
    if (options.allow_cnames && rng.NextChance(1, 5)) {
      // CNAME to a previous owner (chains emerge naturally) or out of zone.
      DnsName target = rng.NextChance(1, 5)
                           ? DnsName::Parse("external.example").value()
                           : owners[rng.NextBelow(owners.size())];
      zone.records.push_back({owner, RrType::kCname, {0, target}});
      continue;  // CNAME is exclusive at its owner
    }
    int rr_count = static_cast<int>(rng.NextInRange(1, options.max_rrs_per_name));
    for (int k = 0; k < rr_count; ++k) {
      switch (rng.NextBelow(5)) {
        case 0:
        case 1:
          zone.records.push_back({owner, RrType::kA, {RandomIp(&rng), {}}});
          break;
        case 2:
          zone.records.push_back({owner, RrType::kAaaa, {RandomIp(&rng), {}}});
          break;
        case 3:
          zone.records.push_back({owner, RrType::kTxt,
                                  {static_cast<int64_t>(rng.NextBelow(1000)), {}}});
          break;
        case 4: {
          DnsName exchange = owners[rng.NextBelow(owners.size())];
          zone.records.push_back(
              {owner, RrType::kMx, {static_cast<int64_t>(rng.NextInRange(1, 50)), exchange}});
          break;
        }
      }
    }
    if (!is_wildcard) {
      owners.push_back(owner);
    }
  }

  // Drop duplicates the random process may have produced; canonicalization
  // rejects them otherwise.
  ZoneConfig dedup;
  dedup.origin = zone.origin;
  for (const ZoneRecord& record : zone.records) {
    bool duplicate = false;
    bool conflicting_cname = false;
    for (const ZoneRecord& kept : dedup.records) {
      if (kept == record) {
        duplicate = true;
        break;
      }
      if (kept.name == record.name &&
          (kept.type == RrType::kCname || record.type == RrType::kCname)) {
        conflicting_cname = true;
        break;
      }
    }
    // Also drop records that ended up under a delegation cut.
    bool below_cut = false;
    for (const std::string& cut : delegated) {
      DnsName cut_name = DnsName::Parse(cut).value();
      if (record.name != cut_name && record.name.IsSubdomainOf(cut_name)) {
        // glue records are allowed below the cut
        below_cut = record.type != RrType::kA && record.type != RrType::kAaaa;
      }
    }
    if (!duplicate && !conflicting_cname && !below_cut) {
      dedup.records.push_back(record);
    }
  }
  Result<ZoneConfig> canonical = CanonicalizeZone(dedup);
  DNSV_CHECK_MSG(canonical.ok(), "generated zone must canonicalize: " + canonical.error());
  return std::move(canonical).value();
}

std::vector<DnsName> InterestingQueryNames(const ZoneConfig& zone, uint64_t seed,
                                           int num_random_extra) {
  SplitMix64 rng(seed ^ 0xABCDEF);
  std::vector<DnsName> names;
  std::set<std::string> seen;
  auto add = [&](DnsName name) {
    if (seen.insert(name.ToString()).second) {
      names.push_back(std::move(name));
    }
  };
  for (const ZoneRecord& record : zone.records) {
    // The owner itself (wildcards queried literally too).
    add(record.name);
    // Wildcard instantiations: one and two labels.
    if (record.name.labels[0] == kWildcardLabel) {
      DnsName one = record.name;
      one.labels[0] = "probe";
      add(one);
      DnsName two = record.name;
      two.labels[0] = "deep";
      two.labels.insert(two.labels.begin(), "probe");
      add(two);
    }
    // Every ancestor (covers empty non-terminals).
    DnsName ancestor = record.name;
    while (ancestor.labels.size() > zone.origin.labels.size()) {
      ancestor.labels.erase(ancestor.labels.begin());
      add(ancestor);
    }
    // A child below the owner (NXDOMAIN or deep-wildcard probes).
    DnsName child = record.name;
    if (child.labels[0] == kWildcardLabel) {
      child.labels[0] = "sub";
    }
    child.labels.insert(child.labels.begin(), "below");
    add(child);
    // rdata targets.
    if (!record.rdata.name.Empty()) {
      add(record.rdata.name);
    }
  }
  add(zone.origin);
  add(DnsName::Parse("not.in.this.zone.example").value());
  for (int i = 0; i < num_random_extra; ++i) {
    DnsName random = zone.origin;
    int depth = static_cast<int>(rng.NextInRange(1, 3));
    for (int d = 0; d < depth; ++d) {
      random.labels.insert(random.labels.begin(), RandomLabel(&rng));
    }
    add(random);
  }
  return names;
}

std::vector<RrType> AllQueryTypes() {
  return {RrType::kA,  RrType::kNs,  RrType::kCname, RrType::kSoa,
          RrType::kMx, RrType::kTxt, RrType::kAaaa,  RrType::kAny};
}

}  // namespace dnsv

// The protocol half of the server: one wire packet in, one wire packet out,
// no sockets. Both the UDP and TCP paths of DnsServer (src/server/server.h)
// funnel through ServePacket, so the request pipeline is unit-testable
// without binding a port and identical on both transports except for the
// payload limit (kMaxUdpPayload vs kMaxTcpPayload).
#ifndef DNSV_SERVER_SERVE_H_
#define DNSV_SERVER_SERVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dns/wire.h"
#include "src/engine/engine.h"
#include "src/server/cache.h"
#include "src/server/stats.h"

namespace dnsv {

// Builds a header-only error response: 12 bytes, QR set, RCODE = `rcode`,
// all counts zero. The client's ID is echoed when at least 2 bytes arrived
// and its OPCODE and RD bit when the full flags word is present (>= 4 header
// bytes) — RFC 1035 §4.1.1 requires a responder to copy both, which the old
// example server's hardcoded `0x80 0x01` flag bytes discarded. Infallible by
// construction: this is also the terminal SERVFAIL fallback for the case
// where even encoding a minimal response fails, which used to crash the
// server via `.value()` on an error Result.
//
// When `edns` is non-null and present, the response additionally carries an
// OPT record (ARCOUNT 1, 23 bytes total): RFC 6891 §7 requires FORMERR /
// BADVERS responses to carry an OPT when the query did. The rcode's high
// bits (e.g. BADVERS = 16) travel in the OPT's extended-RCODE byte.
std::vector<uint8_t> BuildErrorResponse(const uint8_t* packet, size_t size, Rcode rcode,
                                        const EdnsInfo* edns = nullptr);

struct ServeOutcome {
  std::vector<uint8_t> wire;  // never empty; worst case the 12-byte header
  bool truncated = false;     // TC=1 was set (response exceeded max_payload)
  bool parse_error = false;   // FORMERR for an unparseable packet
  bool not_implemented = false;    // NOTIMP for a non-QUERY opcode
  bool servfail_fallback = false;  // static SERVFAIL template was used
  bool cache_hit = false;          // answered from the packet cache
  bool badvers = false;            // BADVERS for an EDNS version > 0
};

// Optional front-end state threaded into ServePacket by the serving loops.
// `generation` is the worker's current zone-snapshot generation (the value
// its shard was built against after RefreshShard) — cache entries stamped
// under any other generation are treated as misses, which is how a hot zone
// reload invalidates every cached answer without touching the cache.
struct ServeContext {
  PacketCache* cache = nullptr;  // null: cache disabled
  uint64_t generation = 0;
};

// Serves one wire packet through `shard`: cache probe -> parse -> verified
// engine -> encode, with NOTIMP / FORMERR / SERVFAIL fallbacks that cannot
// fail. `max_payload` is kMaxUdpPayload on the UDP path and kMaxTcpPayload
// on TCP (the TCP path carries answers the UDP clamp would truncate — that
// is its purpose); when the parsed query carries an OPT, the response is
// encoded — and cached — under the EDNS-negotiated EffectivePayloadLimit
// instead, and every response path echoes an OPT (RFC 6891 §7), including
// the FORMERR/NOTIMP/SERVFAIL fallbacks (via a tolerant ScanQueryForOpt of
// the raw bytes). An EDNS version above 0 short-circuits to BADVERS before
// the engine runs. Updates parse/encode/rcode/truncation/cache counters on
// `stats` when non-null; transport-level counters (udp_queries, latency,
// ...) are the caller's. Only clean NOERROR/NXDOMAIN answers with a nonzero
// minimum TTL are inserted into the cache; TC=1 and every error path are
// never cached (src/server/cache.h).
ServeOutcome ServePacket(AuthoritativeServer* shard, const uint8_t* packet, size_t size,
                         size_t max_payload, ServerStats* stats,
                         const ServeContext& ctx = ServeContext{});

// Parses a decimal port, rejecting empty/non-numeric input and values
// outside 1..65535 with a descriptive error. (The old CLI used std::atoi,
// which silently truncated 99999 mod 2^16 and mapped "abc" to port 0 — the
// kernel-assigned wildcard.)
Result<uint16_t> ParsePort(const std::string& text);

}  // namespace dnsv

#endif  // DNSV_SERVER_SERVE_H_

// Hot zone reload (docs/SERVER.md §reload).
//
// A ZoneSnapshot is an immutable, validated zone publication. SnapshotHolder
// swaps an atomic shared_ptr: Publish() canonicalizes and materializes the
// new zone off the serving path (a full AuthoritativeServer::Create dry run,
// so a zone that cannot be served is never published), then swaps the
// pointer and bumps the generation counter. Workers compare the generation
// against their shard's on every packet — one relaxed atomic load — and
// rebuild their private shard from the new snapshot before serving the next
// query; in-flight queries finish on the old shard, whose snapshot stays
// alive through the shared_ptr they hold. A failed Publish leaves the old
// snapshot serving.
#ifndef DNSV_SERVER_SNAPSHOT_H_
#define DNSV_SERVER_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "src/dns/zone.h"
#include "src/engine/engine.h"

namespace dnsv {

struct ZoneSnapshot {
  ZoneConfig zone;  // canonical (as validated by AuthoritativeServer::Create)
  uint64_t generation = 0;
  std::string source;  // human-readable provenance ("<initial>", a file path)

  // Builds a fresh serving shard for this snapshot on the given execution
  // backend. Cannot fail: the zone (and backend availability) was validated
  // at Publish time and the engine is compile-cached.
  std::unique_ptr<AuthoritativeServer> BuildShard(
      EngineVersion version, BackendKind backend = BackendKind::kInterp) const;
};

class SnapshotHolder {
 public:
  // Validates `zone` end to end — including that `backend` can actually be
  // constructed for `version` — and atomically publishes it. On error the
  // previous snapshot (if any) keeps serving and the holder is unchanged.
  Status Publish(EngineVersion version, const ZoneConfig& zone, std::string source,
                 BackendKind backend = BackendKind::kInterp);

  std::shared_ptr<const ZoneSnapshot> Load() const { return snapshot_.load(); }

  // The per-packet fast-path check; 0 until the first Publish.
  uint64_t generation() const { return generation_.load(std::memory_order_acquire); }

 private:
  std::mutex publish_mu_;  // serializes publishers; readers never take it
  std::atomic<std::shared_ptr<const ZoneSnapshot>> snapshot_;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace dnsv

#endif  // DNSV_SERVER_SNAPSHOT_H_

#include "src/server/cache.h"

#include <cstring>

#include "src/support/logging.h"

namespace dnsv {
namespace {

constexpr size_t kHeaderSize = 12;
constexpr size_t kMaxNameWireBytes = 255;  // RFC 1035 §2.3.4

uint64_t Fnv1a64(const std::string& data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

char FoldCase(char c) { return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c; }

// Advances `pos` past one encoded name. Returns false on malformed input.
// The encoder only emits uncompressed names, but the walker tolerates a
// compression pointer (two bytes, terminal) so a non-canonical packet reads
// as "uncacheable" instead of tripping the bounds checks.
bool SkipName(const std::vector<uint8_t>& wire, size_t* pos) {
  while (true) {
    if (*pos >= wire.size()) {
      return false;
    }
    uint8_t len = wire[*pos];
    if (len == 0) {
      ++*pos;
      return true;
    }
    if ((len & 0xC0) == 0xC0) {
      *pos += 2;
      return *pos <= wire.size();
    }
    if ((len & 0xC0) != 0 || *pos + 1 + len > wire.size()) {
      return false;
    }
    *pos += 1 + static_cast<size_t>(len);
  }
}

bool ReadU16(const std::vector<uint8_t>& wire, size_t* pos, uint16_t* value) {
  if (*pos + 2 > wire.size()) {
    return false;
  }
  *value = static_cast<uint16_t>(wire[*pos] << 8 | wire[*pos + 1]);
  *pos += 2;
  return true;
}

bool ReadU32(const std::vector<uint8_t>& wire, size_t* pos, uint32_t* value) {
  uint16_t hi = 0, lo = 0;
  if (!ReadU16(wire, pos, &hi) || !ReadU16(wire, pos, &lo)) {
    return false;
  }
  *value = static_cast<uint32_t>(hi) << 16 | lo;
  return true;
}

size_t NextPowerOfTwo(size_t value) {
  size_t power = 1;
  while (power < value) {
    power <<= 1;
  }
  return power;
}

}  // namespace

bool BuildCacheKey(const WireQuery& query, size_t max_payload, CacheKey* out) {
  // A qname over the 255-byte wire limit cannot be answered (it ends on the
  // header-only SERVFAIL fallback), so it is never worth a cache slot.
  size_t wire_bytes = 1;
  for (const std::string& label : query.qname.labels) {
    if (label.empty() || label.size() > 63) {
      return false;
    }
    wire_bytes += 1 + label.size();
  }
  if (wire_bytes > kMaxNameWireBytes) {
    return false;
  }

  out->qname_wire.clear();
  out->qname_wire.reserve(wire_bytes);
  out->key.clear();
  out->key.reserve(wire_bytes + 10);
  for (const std::string& label : query.qname.labels) {
    out->qname_wire.push_back(static_cast<uint8_t>(label.size()));
    out->key.push_back(static_cast<char>(label.size()));
    for (char c : label) {
      out->qname_wire.push_back(static_cast<uint8_t>(c));
      out->key.push_back(FoldCase(c));  // case-insensitive per RFC 1035 §2.3.3
    }
  }
  out->qname_wire.push_back(0);
  out->key.push_back('\0');
  // qtype, qclass, and the RD bit are all echoed into the response, and the
  // payload limit decides truncation — distinct values must never share an
  // entry, so all four are part of the key.
  uint16_t qtype = static_cast<uint16_t>(query.qtype);
  out->key.push_back(static_cast<char>(qtype >> 8));
  out->key.push_back(static_cast<char>(qtype & 0xff));
  out->key.push_back(static_cast<char>(query.qclass >> 8));
  out->key.push_back(static_cast<char>(query.qclass & 0xff));
  out->key.push_back(query.recursion_desired ? '\1' : '\0');
  uint32_t limit = static_cast<uint32_t>(max_payload > 0xffffffff ? 0xffffffff : max_payload);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->key.push_back(static_cast<char>((limit >> shift) & 0xff));
  }
  // EDNS presence and the DO bit change the response bytes (OPT echo, DO
  // echo) even at the same payload limit — an EDNS and a plain client must
  // not share an entry. The advertised payload itself is already covered by
  // the limit above (EffectivePayloadLimit feeds it).
  out->key.push_back(static_cast<char>((query.edns.present ? 1 : 0) |
                                       (query.edns.dnssec_ok ? 2 : 0)));
  return true;
}

uint32_t MinimumResponseTtl(const std::vector<uint8_t>& wire) {
  if (wire.size() < kHeaderSize) {
    return 0;
  }
  size_t pos = 4;
  uint16_t qdcount = 0, ancount = 0, nscount = 0, arcount = 0;
  if (!ReadU16(wire, &pos, &qdcount) || !ReadU16(wire, &pos, &ancount) ||
      !ReadU16(wire, &pos, &nscount) || !ReadU16(wire, &pos, &arcount)) {
    return 0;
  }
  for (uint16_t q = 0; q < qdcount; ++q) {
    if (!SkipName(wire, &pos) || pos + 4 > wire.size()) {
      return 0;
    }
    pos += 4;  // qtype + qclass
  }
  uint32_t records = static_cast<uint32_t>(ancount) + nscount + arcount;
  uint32_t min_ttl = 0xffffffff;
  uint32_t data_records = 0;
  for (uint32_t r = 0; r < records; ++r) {
    uint16_t type = 0, klass = 0, rdlength = 0;
    uint32_t ttl = 0;
    if (!SkipName(wire, &pos) || !ReadU16(wire, &pos, &type) || !ReadU16(wire, &pos, &klass) ||
        !ReadU32(wire, &pos, &ttl) || !ReadU16(wire, &pos, &rdlength) ||
        pos + rdlength > wire.size()) {
      return 0;
    }
    pos += rdlength;
    if (type == 41) {
      // The OPT pseudo-record's TTL field holds EDNS flags, not a lifetime
      // (RFC 6891 §6.1.3) — folding its ~0 value into the minimum would make
      // every EDNS response uncacheable.
      continue;
    }
    ++data_records;
    if (ttl < min_ttl) {
      min_ttl = ttl;
    }
  }
  if (data_records == 0) {
    return 0;  // nothing to derive an expiry from: uncacheable
  }
  return min_ttl;
}

PacketCache::PacketCache(size_t max_entries, ClockFn clock)
    : max_entries_(max_entries < 1 ? 1 : max_entries),
      clock_(clock ? std::move(clock) : [] { return Clock::now(); }) {
  // Power-of-two shard count so the shard pick is `hash & mask`; capped so a
  // small cache still gives every shard a useful capacity.
  size_t shards = NextPowerOfTwo(max_entries_ / 64 + 1);
  if (shards > 64) {
    shards = 64;
  }
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_capacity_ = (max_entries_ + shards - 1) / shards;
}

PacketCache::Shard& PacketCache::ShardFor(const std::string& key) {
  return *shards_[Fnv1a64(key) & (shards_.size() - 1)];
}

bool PacketCache::Lookup(const CacheKey& key, uint64_t generation, uint16_t client_id,
                         std::vector<uint8_t>* response, ServerStats* stats) {
  Shard& shard = ShardFor(key.key);
  Clock::time_point now = clock_();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key.key);
    if (it != shard.entries.end()) {
      // A generation mismatch means the zone was reloaded since this answer
      // was computed: the entry is dead no matter what its TTL says. This is
      // the whole invalidation story — the reload path never touches the
      // cache, it just bumps the counter every entry is stamped with.
      if (it->second.generation != generation || now >= it->second.expiry) {
        shard.entries.erase(it);
        if (stats != nullptr) {
          stats->cache_stale.fetch_add(1, std::memory_order_relaxed);
          stats->cache_misses.fetch_add(1, std::memory_order_relaxed);
        }
        return false;
      }
      *response = it->second.wire;  // copied under the lock; spliced outside
    } else {
      if (stats != nullptr) {
        stats->cache_misses.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
  }
  // Splice-back: the cached bytes are the verified encoder's output for the
  // case-folded key; only the ID and the question name's casing are
  // client-specific, and both live at fixed recorded offsets (ID at 0, the
  // qname at 12 — the question always directly follows the header).
  DNSV_CHECK(response->size() >= kHeaderSize + key.qname_wire.size());
  (*response)[0] = static_cast<uint8_t>(client_id >> 8);
  (*response)[1] = static_cast<uint8_t>(client_id & 0xff);
  std::memcpy(response->data() + kHeaderSize, key.qname_wire.data(), key.qname_wire.size());
  if (stats != nullptr) {
    stats->cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void PacketCache::Insert(const CacheKey& key, uint64_t generation, uint32_t ttl_seconds,
                         const std::vector<uint8_t>& wire, ServerStats* stats) {
  DNSV_CHECK(wire.size() >= kHeaderSize + key.qname_wire.size());
  Shard& shard = ShardFor(key.key);
  Clock::time_point now = clock_();
  Entry entry;
  entry.wire = wire;
  entry.generation = generation;
  entry.expiry = now + std::chrono::seconds(ttl_seconds);
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key.key);
    if (it != shard.entries.end()) {
      it->second = std::move(entry);  // refresh (e.g. after a reload)
    } else {
      if (shard.entries.size() >= per_shard_capacity_) {
        // Prefer evicting something already dead; probe a bounded prefix of
        // the shard so a full shard stays O(1) per insert, then fall back to
        // an arbitrary victim (hash order ≈ random, like dnsdist's policy).
        auto victim = shard.entries.begin();
        int probes = 0;
        for (auto probe = shard.entries.begin();
             probe != shard.entries.end() && probes < 8; ++probe, ++probes) {
          if (probe->second.generation != generation || now >= probe->second.expiry) {
            victim = probe;
            break;
          }
        }
        shard.entries.erase(victim);
        ++evicted;
      }
      shard.entries.emplace(key.key, std::move(entry));
    }
  }
  if (stats != nullptr) {
    stats->cache_inserts.fetch_add(1, std::memory_order_relaxed);
    if (evicted > 0) {
      stats->cache_evictions.fetch_add(evicted, std::memory_order_relaxed);
    }
  }
}

size_t PacketCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

}  // namespace dnsv

#include "src/server/stats.h"

#include <bit>

#include "src/support/strings.h"

namespace dnsv {

void ServerStats::RecordLatencyUs(uint64_t us) {
  int bucket = us == 0 ? 0 : std::bit_width(us);
  if (bucket >= kLatencyBuckets) {
    bucket = kLatencyBuckets - 1;
  }
  latency[bucket].fetch_add(1, std::memory_order_relaxed);
}

void StatsSnapshot::Add(const ServerStats& worker) {
  auto get = [](const std::atomic<uint64_t>& counter) {
    return counter.load(std::memory_order_relaxed);
  };
  udp_queries += get(worker.udp_queries);
  tcp_queries += get(worker.tcp_queries);
  parse_failures += get(worker.parse_failures);
  encode_failures += get(worker.encode_failures);
  servfail_fallbacks += get(worker.servfail_fallbacks);
  engine_panics += get(worker.engine_panics);
  truncated_responses += get(worker.truncated_responses);
  edns_queries += get(worker.edns_queries);
  badvers_responses += get(worker.badvers_responses);
  tcp_connections += get(worker.tcp_connections);
  tcp_rejected += get(worker.tcp_rejected);
  tcp_timeouts += get(worker.tcp_timeouts);
  shard_rebuilds += get(worker.shard_rebuilds);
  cache_hits += get(worker.cache_hits);
  cache_misses += get(worker.cache_misses);
  cache_stale += get(worker.cache_stale);
  cache_inserts += get(worker.cache_inserts);
  cache_evictions += get(worker.cache_evictions);
  for (size_t i = 0; i < rcodes.size(); ++i) {
    rcodes[i] += get(worker.rcodes[i]);
  }
  for (int i = 0; i < kLatencyBuckets; ++i) {
    latency[i] += get(worker.latency[i]);
  }
}

uint64_t StatsSnapshot::LatencyPercentileUs(double q) const {
  uint64_t total = 0;
  for (uint64_t count : latency) {
    total += count;
  }
  if (total == 0) {
    return 0;
  }
  // Rank of the q-quantile sample, 1-based; q=1 is the last sample.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank < 1) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (int i = 0; i < kLatencyBuckets; ++i) {
    seen += latency[i];
    if (seen >= rank) {
      return i == 0 ? 1 : uint64_t{1} << i;  // bucket upper bound in µs
    }
  }
  return uint64_t{1} << (kLatencyBuckets - 1);
}

std::string StatsSnapshot::ToJson() const {
  std::string out = "{";
  auto field = [&out](const char* name, uint64_t value, bool first = false) {
    if (!first) {
      out += ", ";
    }
    out += StrCat("\"", name, "\": ", value);
  };
  field("generation", generation, /*first=*/true);
  field("udp_queries", udp_queries);
  field("tcp_queries", tcp_queries);
  field("parse_failures", parse_failures);
  field("encode_failures", encode_failures);
  field("servfail_fallbacks", servfail_fallbacks);
  field("engine_panics", engine_panics);
  field("truncated_responses", truncated_responses);
  field("edns_queries", edns_queries);
  field("badvers_responses", badvers_responses);
  field("tcp_connections", tcp_connections);
  field("tcp_rejected", tcp_rejected);
  field("tcp_timeouts", tcp_timeouts);
  field("shard_rebuilds", shard_rebuilds);
  field("cache_hits", cache_hits);
  field("cache_misses", cache_misses);
  field("cache_stale", cache_stale);
  field("cache_inserts", cache_inserts);
  field("cache_evictions", cache_evictions);
  out += ", \"rcodes\": {";
  bool first_rcode = true;
  for (size_t i = 0; i < rcodes.size(); ++i) {
    if (rcodes[i] == 0) {
      continue;
    }
    if (!first_rcode) {
      out += ", ";
    }
    out += StrCat("\"", i, "\": ", rcodes[i]);
    first_rcode = false;
  }
  out += "}";
  field("p50_us", LatencyPercentileUs(0.50));
  field("p90_us", LatencyPercentileUs(0.90));
  field("p99_us", LatencyPercentileUs(0.99));
  out += "}";
  return out;
}

}  // namespace dnsv

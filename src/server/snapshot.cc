#include "src/server/snapshot.h"

#include "src/support/logging.h"

namespace dnsv {

std::unique_ptr<AuthoritativeServer> ZoneSnapshot::BuildShard(EngineVersion version,
                                                              BackendKind backend) const {
  Result<std::unique_ptr<AuthoritativeServer>> shard =
      AuthoritativeServer::Create(version, zone, backend);
  DNSV_CHECK_MSG(shard.ok(), "published snapshot must build: " + shard.error());
  return std::move(shard).value();
}

Status SnapshotHolder::Publish(EngineVersion version, const ZoneConfig& zone,
                               std::string source, BackendKind backend) {
  // The expensive part — canonicalization + heap materialization — runs
  // before the swap and off every worker's packet loop. A zone this rejects
  // never becomes visible. Probing with the serving backend also makes a
  // missing compiled module a Start/Reload-time error, not a worker abort.
  Result<std::unique_ptr<AuthoritativeServer>> probe =
      AuthoritativeServer::Create(version, zone, backend);
  if (!probe.ok()) {
    return Status::Error("zone rejected: " + probe.error());
  }
  std::lock_guard<std::mutex> lock(publish_mu_);
  auto snapshot = std::make_shared<ZoneSnapshot>();
  snapshot->zone = probe.value()->zone();  // the canonicalized form
  snapshot->generation = generation_.load(std::memory_order_relaxed) + 1;
  snapshot->source = std::move(source);
  snapshot_.store(std::move(snapshot));
  // Publish the generation after the pointer: a worker that sees the new
  // generation is guaranteed to Load() the new snapshot.
  generation_.store(generation_.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  return Status::Ok();
}

}  // namespace dnsv

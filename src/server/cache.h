// Front-end response packet cache (docs/SERVER.md §9).
//
// Most authoritative traffic is a small set of hot names, so the serving
// shell answers repeats without touching the verified engine at all: a
// mutex-sharded map from (case-folded wire qname, qtype, qclass, RD bit,
// effective payload limit, EDNS presence + DO bit) to the full encoded
// response. A hit splices the client's ID and the client's original qname
// casing into a copy of the cached wire bytes — no re-encoding, no engine
// run; the trailing OPT echo (when present) is identical for every client
// sharing a key, so the splice never has to touch it. The design follows
// dnsdist's packet cache (sharded hash map, TTL expiry, ID/name splice-back).
//
// The cache lives entirely outside the verified engine, so its correctness
// is established the same way the compiled backend's was: a differential
// harness (tests/server/cache_test.cc) replays fuzz-generated query streams
// cold vs. warm over all six engine versions and asserts byte-identical
// responses, including across a mid-stream zone reload.
//
// Invalidation is generation-keyed: every entry carries the zone-snapshot
// generation it was computed under, and a hit whose generation differs from
// the caller's current generation is treated as a miss (and erased). A hot
// zone reload therefore invalidates the entire cache for free through the
// existing SnapshotHolder counter — no sweep, no lock on the reload path.
//
// Never cached: truncated (TC=1) responses (they depend on the transport's
// retry contract), error-path responses (FORMERR, NOTIMP, SERVFAIL — both
// the engine-panic downgrade and the header-only fallback), and responses
// whose minimum record TTL is zero or that carry no records at all.
#ifndef DNSV_SERVER_CACHE_H_
#define DNSV_SERVER_CACHE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/dns/wire.h"
#include "src/server/stats.h"

namespace dnsv {

// The lookup/insert key plus the splice material, both derived from one pass
// over the parsed query. `key` folds the qname to lowercase so 0x20
// case-randomized repeats share an entry; `qname_wire` keeps the client's
// original casing in uncompressed wire form for the splice-back (the
// response question section must echo the client's bytes, RFC 1035 §4.1.1
// — pinned by tests/server/cache_test.cc's mixed-case regressions).
struct CacheKey {
  std::string key;
  std::vector<uint8_t> qname_wire;  // length-prefixed labels + root, client casing
};

// Builds the cache key for `query` served at `max_payload`. Returns false
// (caller bypasses the cache) when the qname does not fit the wire limits —
// such queries end on the uncacheable SERVFAIL fallback path anyway.
bool BuildCacheKey(const WireQuery& query, size_t max_payload, CacheKey* out);

// Minimum TTL across every data record of an encoded response, or 0 when
// the packet carries no data records or does not have the canonical encoder
// shape. OPT pseudo-records are excluded: their TTL field holds EDNS flags,
// not a lifetime (RFC 6891 §6.1.3), and counting it would make every EDNS
// response uncacheable. 0 means "do not cache".
uint32_t MinimumResponseTtl(const std::vector<uint8_t>& wire);

class PacketCache {
 public:
  using Clock = std::chrono::steady_clock;
  // The clock is injectable so TTL expiry is testable without sleeping; the
  // default is the steady clock the serving loops already use.
  using ClockFn = std::function<Clock::time_point()>;

  // `max_entries` is the total capacity across all shards (>= 1). The shard
  // count is a power of two so the shard pick is a mask of the key hash.
  explicit PacketCache(size_t max_entries, ClockFn clock = nullptr);

  // Looks up `key` under `generation`. On a hit, fills `response` with a
  // copy of the cached wire bytes with `client_id` and the client's qname
  // casing (key.qname_wire) spliced in, bumps cache_hits, and returns true.
  // Entries that expired or were stamped under a different generation are
  // erased and counted as cache_stale + cache_misses.
  bool Lookup(const CacheKey& key, uint64_t generation, uint16_t client_id,
              std::vector<uint8_t>* response, ServerStats* stats);

  // Stores `wire` (the full encoded response) for `key` under `generation`,
  // expiring `ttl_seconds` from now. The caller has already established
  // cacheability (rcode, TC, TTL > 0). A full shard evicts an expired or
  // stale entry when one is found in a bounded probe, else an arbitrary one.
  void Insert(const CacheKey& key, uint64_t generation, uint32_t ttl_seconds,
              const std::vector<uint8_t>& wire, ServerStats* stats);

  // Entries currently resident across all shards (expired entries linger
  // until a lookup or eviction touches them — by design, like dnsdist).
  size_t size() const;

  size_t max_entries() const { return max_entries_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    std::vector<uint8_t> wire;
    uint64_t generation = 0;
    Clock::time_point expiry{};
  };
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> entries;
  };

  Shard& ShardFor(const std::string& key);

  size_t max_entries_;
  size_t per_shard_capacity_;
  ClockFn clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dnsv

#endif  // DNSV_SERVER_CACHE_H_

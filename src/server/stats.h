// Per-worker serving statistics (docs/SERVER.md §stats).
//
// Each worker thread owns exactly one ServerStats block and bumps it with
// relaxed atomics — no locks, no cross-thread contention on the hot path
// (the blocks are cache-line aligned so two workers never share a line).
// Readers (the stats endpoint, tests, the bench) fold any number of blocks
// into a plain StatsSnapshot; the fold is racy against in-flight increments
// by design, which for monotonic counters only means "a snapshot is a point
// somewhere between two packets".
#ifndef DNSV_SERVER_STATS_H_
#define DNSV_SERVER_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace dnsv {

// Latency histogram: bucket i counts services that took [2^(i-1), 2^i) µs
// (bucket 0 is [0, 1) µs). Fixed power-of-two buckets keep recording to a
// bit-scan plus one relaxed increment; the top bucket is open-ended.
inline constexpr int kLatencyBuckets = 24;  // covers up to ~8.4 s

struct alignas(64) ServerStats {
  std::atomic<uint64_t> udp_queries{0};
  std::atomic<uint64_t> tcp_queries{0};
  std::atomic<uint64_t> parse_failures{0};    // FORMERR sent
  std::atomic<uint64_t> encode_failures{0};   // encoder refused the response
  std::atomic<uint64_t> servfail_fallbacks{0};  // static SERVFAIL template sent
  std::atomic<uint64_t> engine_panics{0};     // data plane panicked (SERVFAIL)
  std::atomic<uint64_t> truncated_responses{0};  // TC=1 sent (UDP clamp hit)
  std::atomic<uint64_t> edns_queries{0};      // parsed queries carrying an OPT
  std::atomic<uint64_t> badvers_responses{0};  // BADVERS sent (EDNS version > 0)
  std::atomic<uint64_t> tcp_connections{0};   // accepted
  std::atomic<uint64_t> tcp_rejected{0};      // refused over the connection cap
  std::atomic<uint64_t> tcp_timeouts{0};      // idle connections reaped
  std::atomic<uint64_t> shard_rebuilds{0};    // interpreter-heap hygiene rebuilds
  std::atomic<uint64_t> cache_hits{0};        // served from the packet cache
  std::atomic<uint64_t> cache_misses{0};      // cache consulted, engine ran
  std::atomic<uint64_t> cache_stale{0};       // expired or wrong-generation entry erased
  std::atomic<uint64_t> cache_inserts{0};     // cacheable response stored
  std::atomic<uint64_t> cache_evictions{0};   // entry displaced from a full shard
  std::array<std::atomic<uint64_t>, 16> rcodes{};
  std::array<std::atomic<uint64_t>, kLatencyBuckets> latency{};

  void CountRcode(uint8_t rcode) {
    rcodes[rcode & 0xF].fetch_add(1, std::memory_order_relaxed);
  }
  void RecordLatencyUs(uint64_t us);
};

// Plain-integer aggregate of one or more worker blocks.
struct StatsSnapshot {
  uint64_t udp_queries = 0;
  uint64_t tcp_queries = 0;
  uint64_t parse_failures = 0;
  uint64_t encode_failures = 0;
  uint64_t servfail_fallbacks = 0;
  uint64_t engine_panics = 0;
  uint64_t truncated_responses = 0;
  uint64_t edns_queries = 0;
  uint64_t badvers_responses = 0;
  uint64_t tcp_connections = 0;
  uint64_t tcp_rejected = 0;
  uint64_t tcp_timeouts = 0;
  uint64_t shard_rebuilds = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_stale = 0;
  uint64_t cache_inserts = 0;
  uint64_t cache_evictions = 0;
  uint64_t generation = 0;  // zone snapshot generation at capture time
  std::array<uint64_t, 16> rcodes{};
  std::array<uint64_t, kLatencyBuckets> latency{};

  uint64_t queries() const { return udp_queries + tcp_queries; }

  // Folds one worker block into this snapshot.
  void Add(const ServerStats& worker);

  // Upper bound (µs) of the bucket holding quantile q ∈ (0, 1]; 0 when no
  // latencies were recorded. Bucketed, so an estimate — good to a factor 2.
  uint64_t LatencyPercentileUs(double q) const;

  // One JSON object with every counter, the non-zero rcode histogram, and
  // p50/p90/p99 (schema in docs/SERVER.md).
  std::string ToJson() const;
};

}  // namespace dnsv

#endif  // DNSV_SERVER_STATS_H_

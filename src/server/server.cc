#include "src/server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "src/support/logging.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedUs(Clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - since).count());
}

bool MakeAddr(const std::string& ip, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  return ::inet_pton(AF_INET, ip.c_str(), &addr->sin_addr) == 1;
}

uint16_t BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

void CloseIfOpen(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

int MakeWorkerEpoll(int data_fd, int stop_fd, std::string* error) {
  int epoll_fd = ::epoll_create1(0);
  if (epoll_fd < 0) {
    *error = StrCat("epoll_create1: ", std::strerror(errno));
    return -1;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = data_fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, data_fd, &ev) != 0 ||
      (ev.data.fd = stop_fd, ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, stop_fd, &ev) != 0)) {
    *error = StrCat("epoll_ctl: ", std::strerror(errno));
    ::close(epoll_fd);
    return -1;
  }
  return epoll_fd;
}

// One TCP connection's state: the RFC 1035 §4.2.2 de-framer, the pending
// outbound bytes (responses are queued here and flushed as the socket
// accepts them), and the idle-timeout clock.
struct TcpConn {
  TcpFrameDecoder decoder;
  std::vector<uint8_t> outbound;
  size_t out_pos = 0;
  bool want_write = false;
  Clock::time_point last_active;
};

}  // namespace

struct DnsServer::UdpWorker {
  int fd = -1;
  int epoll_fd = -1;
  std::unique_ptr<AuthoritativeServer> shard;
  uint64_t shard_generation = 0;
  ServerStats stats;
  std::thread thread;
};

struct DnsServer::TcpWorker {
  int listen_fd = -1;
  int epoll_fd = -1;
  std::unique_ptr<AuthoritativeServer> shard;
  uint64_t shard_generation = 0;
  ServerStats stats;
  std::thread thread;
};

Result<std::unique_ptr<DnsServer>> DnsServer::Start(const ServerConfig& config,
                                                    const ZoneConfig& zone) {
  auto server = std::unique_ptr<DnsServer>(new DnsServer());
  server->config_ = config;
  if (server->config_.udp_workers < 1) {
    server->config_.udp_workers = 1;
  }
  if (server->config_.udp_workers > 64) {
    server->config_.udp_workers = 64;
  }
  if (server->config_.cache_entries > 0) {
    server->cache_ = std::make_unique<PacketCache>(server->config_.cache_entries);
  }

  // Workers inherit this thread's mask: a TCP peer resetting mid-write must
  // not raise SIGPIPE in a worker, and SIGHUP must stay deliverable only to
  // SignalReloader's sigtimedwait (default disposition would kill us).
  sigset_t blocked;
  sigemptyset(&blocked);
  sigaddset(&blocked, SIGPIPE);
  sigaddset(&blocked, SIGHUP);
  pthread_sigmask(SIG_BLOCK, &blocked, nullptr);

  Status published = server->snapshots_.Publish(server->config_.version, zone, "<initial>",
                                                server->config_.backend);
  if (!published.ok()) {
    return Result<std::unique_ptr<DnsServer>>::Error(published.message());
  }
  Status bound = server->Bind();
  if (!bound.ok()) {
    return Result<std::unique_ptr<DnsServer>>::Error(bound.message());
  }

  // Pre-build every shard so the first packet is not a zone materialization.
  std::shared_ptr<const ZoneSnapshot> snapshot = server->snapshots_.Load();
  for (auto& worker : server->udp_workers_) {
    worker->shard = snapshot->BuildShard(server->config_.version, server->config_.backend);
    worker->shard_generation = snapshot->generation;
  }
  if (server->tcp_worker_ != nullptr) {
    server->tcp_worker_->shard =
        snapshot->BuildShard(server->config_.version, server->config_.backend);
    server->tcp_worker_->shard_generation = snapshot->generation;
  }

  for (auto& worker : server->udp_workers_) {
    worker->thread = std::thread(&DnsServer::UdpLoop, server.get(), worker.get());
  }
  if (server->tcp_worker_ != nullptr) {
    server->tcp_worker_->thread = std::thread(&DnsServer::TcpLoop, server.get());
  }
  return server;
}

Status DnsServer::Bind() {
  stop_event_ = ::eventfd(0, EFD_NONBLOCK);
  if (stop_event_ < 0) {
    return Status::Error(StrCat("eventfd: ", std::strerror(errno)));
  }

  std::string error;
  // With port 0 the kernel picks the TCP port first and UDP then binds the
  // same number; another process may already own that UDP port, so retry
  // with a fresh ephemeral port instead of failing Start.
  for (int attempt = 0; attempt < 8; ++attempt) {
    error.clear();
    uint16_t port = config_.port;

    if (config_.enable_tcp) {
      tcp_worker_ = std::make_unique<TcpWorker>();
      TcpWorker* tcp = tcp_worker_.get();
      tcp->listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
      if (tcp->listen_fd < 0) {
        return Status::Error(StrCat("socket(tcp): ", std::strerror(errno)));
      }
      int on = 1;
      ::setsockopt(tcp->listen_fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
      sockaddr_in addr{};
      if (!MakeAddr(config_.bind_ip, port, &addr)) {
        return Status::Error("bad bind address: " + config_.bind_ip);
      }
      if (::bind(tcp->listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
          ::listen(tcp->listen_fd, 128) != 0) {
        error = StrCat("bind/listen(tcp ", config_.bind_ip, ":", port,
                       "): ", std::strerror(errno));
        CloseSockets();
        return Status::Error(error);  // a fixed or fresh TCP port failing is fatal
      }
      tcp_port_ = BoundPort(tcp->listen_fd);
      port = tcp_port_;  // UDP shares the port number, like real DNS
      tcp->epoll_fd = MakeWorkerEpoll(tcp->listen_fd, stop_event_, &error);
      if (tcp->epoll_fd < 0) {
        CloseSockets();
        return Status::Error(error);
      }
    }

    bool udp_ok = true;
    for (int i = 0; i < config_.udp_workers; ++i) {
      auto worker = std::make_unique<UdpWorker>();
      worker->fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
      if (worker->fd < 0) {
        return Status::Error(StrCat("socket(udp): ", std::strerror(errno)));
      }
      int on = 1;
      // SO_REUSEPORT is the sharding mechanism: every worker binds the same
      // address and the kernel spreads flows across the sockets by 4-tuple.
      ::setsockopt(worker->fd, SOL_SOCKET, SO_REUSEPORT, &on, sizeof(on));
      sockaddr_in addr{};
      if (!MakeAddr(config_.bind_ip, port, &addr)) {
        return Status::Error("bad bind address: " + config_.bind_ip);
      }
      if (::bind(worker->fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        error = StrCat("bind(udp ", config_.bind_ip, ":", port, "): ", std::strerror(errno));
        ::close(worker->fd);
        udp_ok = false;
        break;
      }
      if (port == 0) {
        port = BoundPort(worker->fd);  // no TCP: first worker learns the port
      }
      worker->epoll_fd = MakeWorkerEpoll(worker->fd, stop_event_, &error);
      if (worker->epoll_fd < 0) {
        ::close(worker->fd);
        udp_ok = false;
        break;
      }
      udp_workers_.push_back(std::move(worker));
    }
    if (udp_ok) {
      udp_port_ = port;
      return Status::Ok();
    }
    CloseSockets();
    if (config_.port != 0 || !config_.enable_tcp) {
      break;  // the port cannot change on retry, so the failure is permanent
    }
  }
  return Status::Error(error);
}

void DnsServer::CloseSockets() {
  for (auto& worker : udp_workers_) {
    CloseIfOpen(&worker->fd);
    CloseIfOpen(&worker->epoll_fd);
  }
  udp_workers_.clear();
  if (tcp_worker_ != nullptr) {
    CloseIfOpen(&tcp_worker_->listen_fd);
    CloseIfOpen(&tcp_worker_->epoll_fd);
    tcp_worker_.reset();
  }
}

void DnsServer::RefreshShard(std::unique_ptr<AuthoritativeServer>* shard,
                             uint64_t* shard_generation, ServerStats* stats) {
  uint64_t generation = snapshots_.generation();
  if (generation != *shard_generation) {
    std::shared_ptr<const ZoneSnapshot> snapshot = snapshots_.Load();
    *shard = snapshot->BuildShard(config_.version, config_.backend);
    *shard_generation = snapshot->generation;
    return;
  }
  if ((*shard)->memory().num_blocks() > config_.shard_memory_limit_blocks) {
    // Heap hygiene, defense in depth: the engine reclaims query-scoped
    // blocks after each lookup, so a steady-state shard should never grow —
    // but if it does anyway, rebuild it from the snapshot rather than let
    // it balloon.
    std::shared_ptr<const ZoneSnapshot> snapshot = snapshots_.Load();
    *shard = snapshot->BuildShard(config_.version, config_.backend);
    *shard_generation = snapshot->generation;
    stats->shard_rebuilds.fetch_add(1, std::memory_order_relaxed);
  }
}

void DnsServer::UdpLoop(UdpWorker* worker) {
  // Datagrams are pulled and answered in batches of up to kUdpBatch via
  // recvmmsg/sendmmsg, so a loaded socket pays one syscall pair per batch
  // instead of per query. Responses stay in arrival order, and an empty
  // batch falls back to epoll_wait exactly like the one-at-a-time loop did.
  constexpr int kUdpBatch = 16;
  epoll_event events[8];
  static_assert(kUdpBatch >= 1);
  std::vector<std::array<uint8_t, 4096>> buffers(kUdpBatch);
  std::vector<ServeOutcome> outcomes(kUdpBatch);
  mmsghdr recv_msgs[kUdpBatch];
  mmsghdr send_msgs[kUdpBatch];
  iovec recv_iovs[kUdpBatch];
  iovec send_iovs[kUdpBatch];
  sockaddr_in peers[kUdpBatch];
  while (!stopping_.load(std::memory_order_relaxed)) {
    int ready = ::epoll_wait(worker->epoll_fd, events, 8, 500);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      break;
    }
    bool readable = false;
    for (int i = 0; i < ready; ++i) {
      if (events[i].data.fd == worker->fd) {
        readable = true;
      }
    }
    if (!readable) {
      continue;
    }
    while (true) {
      // recvmmsg rewrites msg_len/msg_namelen, so the headers are rebuilt
      // for every batch.
      for (int i = 0; i < kUdpBatch; ++i) {
        recv_iovs[i] = {buffers[i].data(), buffers[i].size()};
        std::memset(&recv_msgs[i], 0, sizeof(recv_msgs[i]));
        recv_msgs[i].msg_hdr.msg_name = &peers[i];
        recv_msgs[i].msg_hdr.msg_namelen = sizeof(peers[i]);
        recv_msgs[i].msg_hdr.msg_iov = &recv_iovs[i];
        recv_msgs[i].msg_hdr.msg_iovlen = 1;
      }
      int got = ::recvmmsg(worker->fd, recv_msgs, kUdpBatch, MSG_DONTWAIT, nullptr);
      if (got <= 0) {
        break;  // EAGAIN: drained
      }
      int to_send = 0;
      for (int i = 0; i < got; ++i) {
        size_t n = recv_msgs[i].msg_len;
        if (n == 0) {
          continue;  // zero-length datagram: nothing to parse, nothing owed
        }
        RefreshShard(&worker->shard, &worker->shard_generation, &worker->stats);
        Clock::time_point started = Clock::now();
        // The cache generation is the generation this worker's shard was
        // just refreshed to: a cached answer is served only if it matches
        // what this shard would compute right now.
        ServeContext ctx{cache_.get(), worker->shard_generation};
        outcomes[to_send] = ServePacket(worker->shard.get(), buffers[i].data(), n,
                                        config_.udp_payload_limit, &worker->stats, ctx);
        worker->stats.udp_queries.fetch_add(1, std::memory_order_relaxed);
        worker->stats.RecordLatencyUs(ElapsedUs(started));
        const std::vector<uint8_t>& wire = outcomes[to_send].wire;
        send_iovs[to_send] = {const_cast<uint8_t*>(wire.data()), wire.size()};
        std::memset(&send_msgs[to_send], 0, sizeof(send_msgs[to_send]));
        send_msgs[to_send].msg_hdr.msg_name = &peers[i];
        send_msgs[to_send].msg_hdr.msg_namelen = recv_msgs[i].msg_hdr.msg_namelen;
        send_msgs[to_send].msg_hdr.msg_iov = &send_iovs[to_send];
        send_msgs[to_send].msg_hdr.msg_iovlen = 1;
        ++to_send;
      }
      // Best-effort like the old sendto: a failed send drops that response
      // and the client retries, but later responses still go out.
      for (int done = 0; done < to_send;) {
        int sent = ::sendmmsg(worker->fd, send_msgs + done, to_send - done, 0);
        if (sent <= 0) {
          break;
        }
        done += sent;
      }
    }
  }
}

void DnsServer::TcpLoop() {
  TcpWorker* tcp = tcp_worker_.get();
  std::unordered_map<int, TcpConn> conns;
  epoll_event events[64];
  uint8_t buffer[4096];
  bool draining = false;
  Clock::time_point drain_deadline{};

  auto close_conn = [&](int fd) {
    ::epoll_ctl(tcp->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns.erase(fd);
  };
  auto flush = [&](int fd, TcpConn* conn) {
    while (conn->out_pos < conn->outbound.size()) {
      ssize_t sent = ::send(fd, conn->outbound.data() + conn->out_pos,
                            conn->outbound.size() - conn->out_pos, MSG_NOSIGNAL);
      if (sent > 0) {
        conn->out_pos += static_cast<size_t>(sent);
        continue;
      }
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn->want_write) {
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT;
          ev.data.fd = fd;
          ::epoll_ctl(tcp->epoll_fd, EPOLL_CTL_MOD, fd, &ev);
          conn->want_write = true;
        }
        return true;
      }
      return false;  // peer went away
    }
    conn->outbound.clear();
    conn->out_pos = 0;
    if (conn->want_write) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      ::epoll_ctl(tcp->epoll_fd, EPOLL_CTL_MOD, fd, &ev);
      conn->want_write = false;
    }
    return true;
  };

  while (true) {
    if (stopping_.load(std::memory_order_relaxed) && !draining) {
      // Graceful shutdown: stop accepting, keep serving what is connected.
      draining = true;
      drain_deadline = Clock::now() +
                       std::chrono::milliseconds(config_.drain_timeout_ms);
      ::epoll_ctl(tcp->epoll_fd, EPOLL_CTL_DEL, tcp->listen_fd, nullptr);
    }
    if (draining && (conns.empty() || Clock::now() >= drain_deadline)) {
      break;
    }
    int ready = ::epoll_wait(tcp->epoll_fd, events, 64, 200);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    for (int i = 0; i < ready; ++i) {
      int fd = events[i].data.fd;
      if (fd == stop_event_) {
        continue;  // the flag is re-checked at the top of the loop
      }
      if (fd == tcp->listen_fd) {
        while (true) {
          int conn_fd = ::accept4(tcp->listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
          if (conn_fd < 0) {
            break;
          }
          if (draining || conns.size() >= static_cast<size_t>(config_.max_tcp_connections)) {
            tcp->stats.tcp_rejected.fetch_add(1, std::memory_order_relaxed);
            ::close(conn_fd);
            continue;
          }
          int on = 1;
          ::setsockopt(conn_fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = conn_fd;
          if (::epoll_ctl(tcp->epoll_fd, EPOLL_CTL_ADD, conn_fd, &ev) != 0) {
            ::close(conn_fd);
            continue;
          }
          conns[conn_fd].last_active = Clock::now();
          tcp->stats.tcp_connections.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      auto it = conns.find(fd);
      if (it == conns.end()) {
        continue;  // closed earlier in this batch
      }
      TcpConn* conn = &it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(fd);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0 && !flush(fd, conn)) {
        close_conn(fd);
        continue;
      }
      if ((events[i].events & EPOLLIN) == 0) {
        continue;
      }
      bool peer_closed = false;
      while (true) {
        ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n > 0) {
          conn->decoder.Feed(buffer, static_cast<size_t>(n));
          conn->last_active = Clock::now();
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          break;
        }
        peer_closed = true;  // orderly close or hard error
        break;
      }
      std::vector<uint8_t> message;
      while (conn->decoder.Next(&message)) {
        RefreshShard(&tcp->shard, &tcp->shard_generation, &tcp->stats);
        Clock::time_point started = Clock::now();
        // The TCP path encodes against kMaxTcpPayload — this is the channel
        // that serves in full what the UDP clamp truncated (TC=1). The
        // payload limit is part of the cache key, so TCP-sized answers never
        // leak into UDP-sized lookups (or vice versa).
        ServeContext ctx{cache_.get(), tcp->shard_generation};
        ServeOutcome outcome = ServePacket(tcp->shard.get(), message.data(), message.size(),
                                           kMaxTcpPayload, &tcp->stats, ctx);
        tcp->stats.tcp_queries.fetch_add(1, std::memory_order_relaxed);
        tcp->stats.RecordLatencyUs(ElapsedUs(started));
        Status framed = AppendTcpFrame(&conn->outbound, outcome.wire);
        DNSV_CHECK_MSG(framed.ok(), framed.message());  // encoder capped at kMaxTcpPayload
      }
      if (!flush(fd, conn)) {
        close_conn(fd);
        continue;
      }
      // An orderly close still gets the responses already queued; drop the
      // connection once nothing is pending.
      if (peer_closed && conn->outbound.empty()) {
        close_conn(fd);
      }
    }
    // Reap idle connections (a TCP client that connects and goes silent
    // would otherwise hold one of max_tcp_connections slots forever).
    Clock::time_point now = Clock::now();
    std::vector<int> expired;
    for (const auto& [fd, conn] : conns) {
      if (now - conn.last_active > std::chrono::milliseconds(config_.tcp_idle_timeout_ms)) {
        expired.push_back(fd);
      }
    }
    for (int fd : expired) {
      tcp->stats.tcp_timeouts.fetch_add(1, std::memory_order_relaxed);
      close_conn(fd);
    }
  }
  for (auto& [fd, conn] : conns) {
    ::close(fd);
  }
}

void DnsServer::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  stopping_.store(true, std::memory_order_relaxed);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t written = ::write(stop_event_, &one, sizeof(one));
  for (auto& worker : udp_workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
  if (tcp_worker_ != nullptr && tcp_worker_->thread.joinable()) {
    tcp_worker_->thread.join();
  }
  for (auto& worker : udp_workers_) {
    CloseIfOpen(&worker->fd);
    CloseIfOpen(&worker->epoll_fd);
  }
  if (tcp_worker_ != nullptr) {
    CloseIfOpen(&tcp_worker_->listen_fd);
    CloseIfOpen(&tcp_worker_->epoll_fd);
  }
  CloseIfOpen(&stop_event_);
}

DnsServer::~DnsServer() { Stop(); }

Status DnsServer::Reload(const ZoneConfig& zone, std::string source) {
  return snapshots_.Publish(config_.version, zone, std::move(source), config_.backend);
}

Status DnsServer::ReloadFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::Error("cannot open zone file " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  Result<ZoneConfig> parsed = ParseZoneText(text.str());
  if (!parsed.ok()) {
    return Status::Error("zone parse error: " + parsed.error());
  }
  return Reload(parsed.value(), path);
}

StatsSnapshot DnsServer::Stats() const {
  StatsSnapshot snapshot;
  snapshot.generation = snapshots_.generation();
  for (const auto& worker : udp_workers_) {
    snapshot.Add(worker->stats);
  }
  if (tcp_worker_ != nullptr) {
    snapshot.Add(tcp_worker_->stats);
  }
  return snapshot;
}

SignalReloader::SignalReloader(DnsServer* server, std::string zone_path) {
  // Belt and braces: DnsServer::Start blocks SIGHUP already, but a reloader
  // must be safe to create first.
  sigset_t hup;
  sigemptyset(&hup);
  sigaddset(&hup, SIGHUP);
  pthread_sigmask(SIG_BLOCK, &hup, nullptr);
  thread_ = std::thread([this, server, path = std::move(zone_path)] {
    sigset_t watched;
    sigemptyset(&watched);
    sigaddset(&watched, SIGHUP);
    while (!stop_.load(std::memory_order_relaxed)) {
      timespec timeout{};
      timeout.tv_nsec = 200 * 1000 * 1000;
      if (sigtimedwait(&watched, nullptr, &timeout) != SIGHUP) {
        continue;  // timeout or EINTR
      }
      Status reloaded = server->ReloadFromFile(path);
      if (reloaded.ok()) {
        reloads_.fetch_add(1, std::memory_order_relaxed);
      } else {
        failures_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "SIGHUP reload of %s failed (still serving the old zone): %s\n",
                     path.c_str(), reloaded.message().c_str());
      }
    }
  });
}

SignalReloader::~SignalReloader() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) {
    thread_.join();
  }
}

}  // namespace dnsv

#include "src/server/serve.h"

#include "src/support/logging.h"

namespace dnsv {
namespace {

// Wire flag bits within header byte 2 (see RFC 1035 §4.1.1).
constexpr uint8_t kByte2Qr = 0x80;
constexpr uint8_t kByte2OpcodeMask = 0x78;
constexpr uint8_t kByte2Rd = 0x01;

}  // namespace

std::vector<uint8_t> BuildErrorResponse(const uint8_t* packet, size_t size, Rcode rcode,
                                        const EdnsInfo* edns) {
  // Static template: ID 0, QR set, OPCODE 0, RD 0, RCODE patched below, all
  // section counts 0. Everything else is patched from the client's bytes.
  std::vector<uint8_t> out = {0, 0, kByte2Qr, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  if (size >= 2) {
    out[0] = packet[0];
    out[1] = packet[1];
  }
  if (size >= 4) {
    // Echo the client's OPCODE and RD bit; keep QR=1, AA/TC/RA clear.
    out[2] |= packet[2] & (kByte2OpcodeMask | kByte2Rd);
  }
  out[3] = static_cast<uint8_t>(rcode) & 0xF;
  if (edns != nullptr && edns->present) {
    // RFC 6891 §7: the error response carries an OPT because the query did.
    // The rcode's high bits ride in the OPT extended-RCODE byte (BADVERS is
    // 0x10, so header nibble 0 + extended byte 1); the DO bit is echoed.
    out[11] = 1;  // ARCOUNT
    out.push_back(0);  // root owner name
    out.push_back(0);
    out.push_back(41);  // TYPE = OPT
    out.push_back(static_cast<uint8_t>(kEdnsResponderPayload >> 8));
    out.push_back(static_cast<uint8_t>(kEdnsResponderPayload & 0xFF));
    out.push_back(static_cast<uint8_t>(static_cast<unsigned>(rcode) >> 4));  // ext RCODE
    out.push_back(0);  // version
    out.push_back(edns->dnssec_ok ? 0x80 : 0);
    out.push_back(0);
    out.push_back(0);  // RDLENGTH = 0
    out.push_back(0);
  }
  return out;
}

ServeOutcome ServePacket(AuthoritativeServer* shard, const uint8_t* packet, size_t size,
                         size_t max_payload, ServerStats* stats, const ServeContext& ctx) {
  ServeOutcome outcome;
  Result<WireQuery> query = ParseWireQuery(packet, size);
  if (!query.ok()) {
    // The strict parser rejected the packet, but RFC 6891 §7 still wants the
    // error response to carry an OPT when the query had one — recover it with
    // the tolerant scanner, which never rejects.
    EdnsInfo scanned;
    ScanQueryForOpt(packet, size, &scanned);
    // RFC 1035 §4.1.1: a request whose opcode the server does not implement
    // gets NOTIMP, not FORMERR — the packet is well-formed, the operation is
    // unsupported. Detect it from the raw header: a full header arrived, QR
    // is clear (it is a request), and OPCODE != QUERY.
    if (size >= 12 && (packet[2] & kByte2Qr) == 0 &&
        ((packet[2] & kByte2OpcodeMask) >> 3) != 0) {
      outcome.not_implemented = true;
      outcome.wire = BuildErrorResponse(packet, size, Rcode::kNotImp, &scanned);
      if (stats != nullptr) {
        stats->CountRcode(static_cast<uint8_t>(Rcode::kNotImp));
      }
      return outcome;
    }
    outcome.parse_error = true;
    outcome.wire = BuildErrorResponse(packet, size, Rcode::kFormErr, &scanned);
    if (stats != nullptr) {
      stats->parse_failures.fetch_add(1, std::memory_order_relaxed);
      stats->CountRcode(static_cast<uint8_t>(Rcode::kFormErr));
    }
    return outcome;
  }

  const EdnsInfo& edns = query.value().edns;
  if (stats != nullptr && edns.present) {
    stats->edns_queries.fetch_add(1, std::memory_order_relaxed);
  }
  // RFC 6891 §6.1.3: an EDNS version we do not implement gets BADVERS with
  // our version (0) in the echoed OPT, before any engine work. The parser
  // deliberately accepts version > 0 so this answer can be addressed.
  if (edns.present && edns.version != 0) {
    outcome.badvers = true;
    outcome.wire = BuildErrorResponse(packet, size, Rcode::kBadVers, &edns);
    if (stats != nullptr) {
      // Not CountRcode: the histogram is 4-bit and would file BADVERS (16)
      // under NOERROR; the dedicated counter is the visible record.
      stats->badvers_responses.fetch_add(1, std::memory_order_relaxed);
    }
    return outcome;
  }

  // The limit every downstream stage sees: the EDNS-advertised payload on
  // UDP, the transport limit on TCP (EffectivePayloadLimit ignores the OPT
  // there — RFC 6891 §6.2.5). The cache key includes it, so a 512-byte
  // truncation can never be replayed to a 4096-byte client.
  const size_t effective = EffectivePayloadLimit(edns, max_payload);

  CacheKey cache_key;
  bool cacheable_query =
      ctx.cache != nullptr && BuildCacheKey(query.value(), effective, &cache_key);
  if (cacheable_query &&
      ctx.cache->Lookup(cache_key, ctx.generation, query.value().id, &outcome.wire, stats)) {
    outcome.cache_hit = true;
    if (stats != nullptr) {
      stats->CountRcode(outcome.wire[3] & 0xF);
    }
    return outcome;
  }

  QueryResult result = shard->Query(query.value().qname, query.value().qtype);
  ResponseView view;
  if (result.panicked) {
    // The engine crashed (a dev-version treat): answer SERVFAIL, keep serving.
    view.rcode = Rcode::kServFail;
    if (stats != nullptr) {
      stats->engine_panics.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    view = result.response;
  }

  Result<std::vector<uint8_t>> encoded = EncodeWireResponse(query.value(), view, effective);
  if (!encoded.ok()) {
    // A response we cannot put on the wire (e.g. a qname that decompressed
    // past the 255-byte wire limit, so even the question echo is invalid).
    // The fallback must not be allowed to fail again — use the static
    // header-only SERVFAIL (plus OPT echo) with the client's ID/OPCODE/RD
    // patched in.
    if (stats != nullptr) {
      stats->encode_failures.fetch_add(1, std::memory_order_relaxed);
      stats->servfail_fallbacks.fetch_add(1, std::memory_order_relaxed);
      stats->CountRcode(static_cast<uint8_t>(Rcode::kServFail));
    }
    outcome.servfail_fallback = true;
    outcome.wire = BuildErrorResponse(packet, size, Rcode::kServFail, &edns);
    return outcome;
  }

  outcome.wire = std::move(encoded).value();
  DNSV_CHECK(outcome.wire.size() >= 4);
  outcome.truncated = (outcome.wire[2] & 0x02) != 0;  // TC bit of the flags word
  if (stats != nullptr) {
    if (outcome.truncated) {
      stats->truncated_responses.fetch_add(1, std::memory_order_relaxed);
    }
    stats->CountRcode(outcome.wire[3] & 0xF);
  }

  // Cache only clean answers: no TC bit (truncation is the transport's retry
  // contract), no engine panic, and an rcode the engine actually computed
  // (NOERROR / NXDOMAIN). The TTL gate rejects zero-TTL and record-free
  // responses via MinimumResponseTtl's 0 return.
  uint8_t rcode = outcome.wire[3] & 0xF;
  if (cacheable_query && !outcome.truncated && !result.panicked &&
      (rcode == static_cast<uint8_t>(Rcode::kNoError) ||
       rcode == static_cast<uint8_t>(Rcode::kNxDomain))) {
    uint32_t ttl = MinimumResponseTtl(outcome.wire);
    if (ttl > 0) {
      ctx.cache->Insert(cache_key, ctx.generation, ttl, outcome.wire, stats);
    }
  }
  return outcome;
}

Result<uint16_t> ParsePort(const std::string& text) {
  if (text.empty()) {
    return Result<uint16_t>::Error("port is empty");
  }
  uint32_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Result<uint16_t>::Error("port '" + text + "' is not a decimal number");
    }
    value = value * 10 + static_cast<uint32_t>(c - '0');
    if (value > 0xffff) {
      return Result<uint16_t>::Error("port '" + text + "' is out of range (1..65535)");
    }
  }
  if (value == 0) {
    return Result<uint16_t>::Error("port 0 is reserved (it means kernel-assigned)");
  }
  return static_cast<uint16_t>(value);
}

}  // namespace dnsv

#include "src/server/serve.h"

#include "src/support/logging.h"

namespace dnsv {
namespace {

// Wire flag bits within header byte 2 (see RFC 1035 §4.1.1).
constexpr uint8_t kByte2Qr = 0x80;
constexpr uint8_t kByte2OpcodeMask = 0x78;
constexpr uint8_t kByte2Rd = 0x01;

}  // namespace

std::vector<uint8_t> BuildErrorResponse(const uint8_t* packet, size_t size, Rcode rcode) {
  // Static template: ID 0, QR set, OPCODE 0, RD 0, RCODE patched below, all
  // section counts 0. Everything else is patched from the client's bytes.
  std::vector<uint8_t> out = {0, 0, kByte2Qr, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  if (size >= 2) {
    out[0] = packet[0];
    out[1] = packet[1];
  }
  if (size >= 4) {
    // Echo the client's OPCODE and RD bit; keep QR=1, AA/TC/RA clear.
    out[2] |= packet[2] & (kByte2OpcodeMask | kByte2Rd);
  }
  out[3] = static_cast<uint8_t>(rcode) & 0xF;
  return out;
}

ServeOutcome ServePacket(AuthoritativeServer* shard, const uint8_t* packet, size_t size,
                         size_t max_payload, ServerStats* stats, const ServeContext& ctx) {
  ServeOutcome outcome;
  Result<WireQuery> query = ParseWireQuery(packet, size);
  if (!query.ok()) {
    // RFC 1035 §4.1.1: a request whose opcode the server does not implement
    // gets NOTIMP, not FORMERR — the packet is well-formed, the operation is
    // unsupported. Detect it from the raw header: a full header arrived, QR
    // is clear (it is a request), and OPCODE != QUERY.
    if (size >= 12 && (packet[2] & kByte2Qr) == 0 &&
        ((packet[2] & kByte2OpcodeMask) >> 3) != 0) {
      outcome.not_implemented = true;
      outcome.wire = BuildErrorResponse(packet, size, Rcode::kNotImp);
      if (stats != nullptr) {
        stats->CountRcode(static_cast<uint8_t>(Rcode::kNotImp));
      }
      return outcome;
    }
    outcome.parse_error = true;
    outcome.wire = BuildErrorResponse(packet, size, Rcode::kFormErr);
    if (stats != nullptr) {
      stats->parse_failures.fetch_add(1, std::memory_order_relaxed);
      stats->CountRcode(static_cast<uint8_t>(Rcode::kFormErr));
    }
    return outcome;
  }

  CacheKey cache_key;
  bool cacheable_query =
      ctx.cache != nullptr && BuildCacheKey(query.value(), max_payload, &cache_key);
  if (cacheable_query &&
      ctx.cache->Lookup(cache_key, ctx.generation, query.value().id, &outcome.wire, stats)) {
    outcome.cache_hit = true;
    if (stats != nullptr) {
      stats->CountRcode(outcome.wire[3] & 0xF);
    }
    return outcome;
  }

  QueryResult result = shard->Query(query.value().qname, query.value().qtype);
  ResponseView view;
  if (result.panicked) {
    // The engine crashed (a dev-version treat): answer SERVFAIL, keep serving.
    view.rcode = Rcode::kServFail;
    if (stats != nullptr) {
      stats->engine_panics.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    view = result.response;
  }

  Result<std::vector<uint8_t>> encoded = EncodeWireResponse(query.value(), view, max_payload);
  if (!encoded.ok()) {
    // A response we cannot put on the wire (e.g. a qname that decompressed
    // past the 255-byte wire limit, so even the question echo is invalid).
    // The fallback must not be allowed to fail again — use the static
    // header-only SERVFAIL with the client's ID/OPCODE/RD patched in.
    if (stats != nullptr) {
      stats->encode_failures.fetch_add(1, std::memory_order_relaxed);
      stats->servfail_fallbacks.fetch_add(1, std::memory_order_relaxed);
      stats->CountRcode(static_cast<uint8_t>(Rcode::kServFail));
    }
    outcome.servfail_fallback = true;
    outcome.wire = BuildErrorResponse(packet, size, Rcode::kServFail);
    return outcome;
  }

  outcome.wire = std::move(encoded).value();
  DNSV_CHECK(outcome.wire.size() >= 4);
  outcome.truncated = (outcome.wire[2] & 0x02) != 0;  // TC bit of the flags word
  if (stats != nullptr) {
    if (outcome.truncated) {
      stats->truncated_responses.fetch_add(1, std::memory_order_relaxed);
    }
    stats->CountRcode(outcome.wire[3] & 0xF);
  }

  // Cache only clean answers: no TC bit (truncation is the transport's retry
  // contract), no engine panic, and an rcode the engine actually computed
  // (NOERROR / NXDOMAIN). The TTL gate rejects zero-TTL and record-free
  // responses via MinimumResponseTtl's 0 return.
  uint8_t rcode = outcome.wire[3] & 0xF;
  if (cacheable_query && !outcome.truncated && !result.panicked &&
      (rcode == static_cast<uint8_t>(Rcode::kNoError) ||
       rcode == static_cast<uint8_t>(Rcode::kNxDomain))) {
    uint32_t ttl = MinimumResponseTtl(outcome.wire);
    if (ttl > 0) {
      ctx.cache->Insert(cache_key, ctx.generation, ttl, outcome.wire, stats);
    }
  }
  return outcome;
}

Result<uint16_t> ParsePort(const std::string& text) {
  if (text.empty()) {
    return Result<uint16_t>::Error("port is empty");
  }
  uint32_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Result<uint16_t>::Error("port '" + text + "' is not a decimal number");
    }
    value = value * 10 + static_cast<uint32_t>(c - '0');
    if (value > 0xffff) {
      return Result<uint16_t>::Error("port '" + text + "' is out of range (1..65535)");
    }
  }
  if (value == 0) {
    return Result<uint16_t>::Error("port 0 is reserved (it means kernel-assigned)");
  }
  return static_cast<uint16_t>(value);
}

}  // namespace dnsv

// src/server: the production serving shell around the verified engine
// (docs/SERVER.md).
//
// The data plane stays the exact AbsIR program DNS-V verified — every packet
// goes wire bytes -> ParseWireQuery -> AuthoritativeServer::Query (the
// configured ExecutionBackend over the compiled engine: the reference
// interpreter, or the AOT-compiled native code — docs/BACKEND.md) ->
// EncodeWireResponse. The shell adds what the paper leaves to conventional
// engineering:
//
//   * N sharded UDP workers, each with its own SO_REUSEPORT socket, epoll
//     loop, and private AuthoritativeServer shard (the interpreter mutates
//     its ConcreteMemory per query, so shards are never shared).
//   * A TCP listener (RFC 1035 §4.2.2 two-byte-length framing) with a
//     connection cap and per-connection idle timeouts, so a TC=1 UDP answer
//     can be retried over TCP and served in full (no 512-byte clamp).
//   * Hot zone reload via SnapshotHolder: validate off-thread, swap an
//     atomic shared_ptr, keep serving the old zone on failure.
//   * Lock-free per-worker ServerStats, aggregated on demand.
//   * Graceful shutdown: UDP intake stops, in-flight TCP connections drain
//     within ServerConfig::drain_timeout_ms.
#ifndef DNSV_SERVER_SERVER_H_
#define DNSV_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/dns/wire.h"
#include "src/dns/zone.h"
#include "src/engine/engine.h"
#include "src/server/cache.h"
#include "src/server/serve.h"
#include "src/server/snapshot.h"
#include "src/server/stats.h"

namespace dnsv {

struct ServerConfig {
  std::string bind_ip = "127.0.0.1";
  // 0 means kernel-assigned; read the actual ports back via udp_port() /
  // tcp_port(). UDP and TCP bind the same port number, as real DNS does.
  uint16_t port = 0;
  int udp_workers = 1;  // clamped to 1..64
  bool enable_tcp = true;
  int max_tcp_connections = 64;   // beyond this, accepts are closed on the spot
  int tcp_idle_timeout_ms = 5000;  // idle connections are reaped
  int drain_timeout_ms = 2000;     // graceful-shutdown budget for TCP drain
  EngineVersion version = EngineVersion::kGolden;
  // How shards execute AbsIR: the reference interpreter or the AOT-compiled
  // native code (docs/BACKEND.md). Behaviorally identical — enforced by the
  // interp-vs-compiled differential — but compiled shards answer much faster.
  BackendKind backend = BackendKind::kInterp;
  size_t udp_payload_limit = kMaxUdpPayload;
  // A worker rebuilds its shard once the shard's interpreter heap exceeds
  // this many blocks: the concrete interpreter allocates per query and never
  // frees, so unbounded serving would otherwise balloon memory.
  size_t shard_memory_limit_blocks = size_t{1} << 20;
  // Capacity of the shared response packet cache (src/server/cache.h); 0
  // disables it. All workers share one cache — entries are keyed on the
  // case-folded question and stamped with the worker's snapshot generation,
  // so reloads invalidate everything without a sweep.
  size_t cache_entries = 4096;
};

class DnsServer {
 public:
  // Validates + publishes `zone`, binds all sockets, spawns the workers.
  // Blocks SIGPIPE and SIGHUP in the calling thread first so every worker
  // inherits the mask (SIGHUP is then consumable by SignalReloader; a TCP
  // peer closing mid-write cannot kill the process).
  static Result<std::unique_ptr<DnsServer>> Start(const ServerConfig& config,
                                                  const ZoneConfig& zone);
  ~DnsServer();

  // Graceful shutdown: stops UDP intake and the TCP accept path, drains
  // in-flight TCP connections up to drain_timeout_ms, joins all workers.
  // Idempotent.
  void Stop();

  // Hot reload: validates `zone` and publishes it atomically. Each worker
  // picks the new snapshot up before its next query; on error the old zone
  // keeps serving and the error is returned.
  Status Reload(const ZoneConfig& zone, std::string source = "<api>");
  // Reads + parses the repo zone text format, then Reload().
  Status ReloadFromFile(const std::string& path);

  uint16_t udp_port() const { return udp_port_; }
  uint16_t tcp_port() const { return tcp_port_; }
  uint64_t generation() const { return snapshots_.generation(); }

  // Folds every worker's stats block into one snapshot.
  StatsSnapshot Stats() const;
  std::string StatsJson() const { return Stats().ToJson(); }

  const ServerConfig& config() const { return config_; }

 private:
  struct UdpWorker;
  struct TcpWorker;

  DnsServer() = default;
  Status Bind();
  void CloseSockets();  // releases a partially bound socket set (Bind retry)
  void UdpLoop(UdpWorker* worker);
  void TcpLoop();
  // Rebuilds `shard` when the published generation moved past
  // `shard_generation`, or when the shard's interpreter heap outgrew
  // shard_memory_limit_blocks (counted in `stats.shard_rebuilds`).
  void RefreshShard(std::unique_ptr<AuthoritativeServer>* shard, uint64_t* shard_generation,
                    ServerStats* stats);

  ServerConfig config_;
  SnapshotHolder snapshots_;
  std::unique_ptr<PacketCache> cache_;  // null when cache_entries == 0
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  int stop_event_ = -1;  // eventfd in every epoll set; written once by Stop()
  uint16_t udp_port_ = 0;
  uint16_t tcp_port_ = 0;
  std::vector<std::unique_ptr<UdpWorker>> udp_workers_;
  std::unique_ptr<TcpWorker> tcp_worker_;
};

// Consumes SIGHUP on a dedicated thread and reloads `zone_path` into the
// server on each one (the production reload protocol: `kill -HUP <pid>`).
// Relies on SIGHUP being blocked process-wide, which DnsServer::Start
// guarantees for the starting thread and everything spawned after it; create
// gtest/main threads' sockets after Start for the same reason. Reload
// failures keep the old zone and are reported on stderr.
class SignalReloader {
 public:
  SignalReloader(DnsServer* server, std::string zone_path);
  ~SignalReloader();

  uint64_t reloads() const { return reloads_.load(std::memory_order_relaxed); }
  uint64_t failures() const { return failures_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> failures_{0};
  std::thread thread_;
};

}  // namespace dnsv

#endif  // DNSV_SERVER_SERVER_H_

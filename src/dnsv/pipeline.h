// The staged verification pipeline (paper Fig. 6), factored for reuse.
//
// The one-shot verifier recompiled the engine and re-lifted the zone on every
// call; at "N versions x M zones" scale that is the dominant waste (Janus
// makes the same observation for incremental DNS verification). The pipeline
// splits the workflow into explicit stages
//
//   CompileStage   source -> AbsIR module            (cached per EngineVersion)
//   ZoneLiftStage  zone -> concrete heap + interner  (cached per version+zone)
//   ExploreStage   full-path symbolic execution of the engine's Resolve and
//                  of the rrlookup specification — two isolated workers that
//                  may run concurrently
//   CompareStage   safety (feasible panic paths) + functional equivalence of
//                  every compatible (engine path, spec path) pair
//   ConfirmStage   decode each violation to a concrete query, re-execute it
//                  on the interpreter, classify in the Table-2 taxonomy
//
// driven by a VerifyContext whose caches persist across runs: verifying N
// versions over M zones compiles each version exactly once and lifts each
// (version, zone) pair exactly once.
//
// Threading rule: a worker NEVER shares a TermArena or SolverSession. Each
// ExploreStage worker builds its own arena, solver, and lifted heap (Z3
// contexts are not thread-safe; TermArena is not synchronized). The workers'
// results are merged into the compare stage's arena by TermImporter, which
// renames worker-internal variables (pad.*, havoc.*, sum.*, …) into disjoint
// namespaces while unifying the shared symbolic inputs (qname.*, qtype) by
// name — so the merged formulas mean exactly what they meant per worker.
#ifndef DNSV_DNSV_PIPELINE_H_
#define DNSV_DNSV_PIPELINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/analysis/prune.h"
#include "src/dnsv/verifier.h"

namespace dnsv {

// A zone materialized against one engine version's type table: the concrete
// heap (domain tree + flat RR list), the label interner that encoded it, and
// the depth bound for symbolic qnames. Immutable after construction; shared
// by every worker and run that verifies this (version, zone) pair.
struct LiftedZone {
  ZoneConfig zone;  // canonical
  LabelInterner interner;
  ConcreteMemory memory;
  HeapImage image;
  size_t max_owner_labels = 0;
};

// One engine version with the dataflow pruner applied (options.prune). A
// separate compilation from the unpruned cache entry: pruning mutates the
// module in place, and callers that did not opt in must keep seeing the
// frontend's exact output. Baseline and interprocedural prunes are distinct
// cache entries — the ablation axis compares them on the same version.
struct PrunedEngine {
  std::shared_ptr<const CompiledEngine> engine;
  PruneStats stats;
  AnalysisStats analysis;  // zero for baseline prunes
  double compile_seconds = 0;
  double prune_seconds = 0;
  // Artifact-store provenance (docs/INCREMENTAL.md): whether the
  // interprocedural facts were replayed from a stored artifact instead of
  // recomputed, and whether the post-prune ModuleFingerprint matched the
  // recorded cold prune (the hash-stability cross-check).
  bool summaries_from_store = false;
  bool prune_fingerprint_checked = false;
};

// Cross-run state of the pipeline: compiled engines per version, lifted
// heaps per (version, canonical zone). Thread-safe; create one per long-lived
// workload (bench harness, release gate, server fleet) and pass it to every
// RunVerifyPipeline call to amortize the setup stages.
class VerifyContext {
 public:
  VerifyContext() = default;
  VerifyContext(const VerifyContext&) = delete;
  VerifyContext& operator=(const VerifyContext&) = delete;

  // CompileStage: compiles on first use, then serves the cached module.
  std::shared_ptr<const CompiledEngine> GetEngine(EngineVersion version);

  // PruneStage input: compiles a private copy of `version` and runs
  // PruneModule over it on first use, then serves the cached result. With
  // `interproc`, the interprocedural suite (SCCP + summaries + escape facts,
  // rooted at EngineAnalysisRoots) drives the pruner; the two modes are
  // cached independently.
  //
  // With a `store`, the first computation persists the interprocedural facts
  // keyed by the pre-prune ModuleFingerprint (and replays them when
  // `replay_from_store`, skipping the whole-module passes), then cross-checks
  // the post-prune fingerprint against the recorded cold prune; a mismatch
  // discards the replay and recomputes from scratch. The in-memory cache key
  // stays (version, interproc): the store only changes how the result is
  // obtained, never what it is.
  std::shared_ptr<const PrunedEngine> GetPrunedEngine(EngineVersion version,
                                                      bool interproc = false,
                                                      ArtifactStore* store = nullptr,
                                                      bool replay_from_store = true);

  // ZoneLiftStage: canonicalizes + materializes on first use. Errors
  // (invalid zones) are not cached. Unpruned / baseline-pruned /
  // interproc-pruned lifts are cached under distinct keys — the heap image
  // is built against the respective engine instance's type table.
  Result<std::shared_ptr<const LiftedZone>> GetLiftedZone(EngineVersion version,
                                                          const ZoneConfig& zone,
                                                          bool pruned = false,
                                                          bool interproc = false);

  struct CacheStats {
    int64_t engine_compiles = 0;
    int64_t engine_cache_hits = 0;
    int64_t engine_prunes = 0;
    int64_t prune_cache_hits = 0;
    int64_t zone_lifts = 0;
    int64_t zone_cache_hits = 0;
  };
  CacheStats cache_stats() const;

 private:
  mutable std::mutex mu_;
  std::map<EngineVersion, std::shared_ptr<const CompiledEngine>> engines_;
  // Keyed by (version, interproc mode).
  std::map<std::pair<EngineVersion, bool>, std::shared_ptr<const PrunedEngine>> pruned_engines_;
  std::map<std::string, std::shared_ptr<const LiftedZone>> zones_;
  CacheStats stats_;
};

// Runs the full pipeline for one (version, zone) pair. Compile and lift are
// served from `context`; exploration runs serial or parallel per
// `options.parallel_explore` (identical output either way). The report
// carries per-stage timing/solver breakdowns in `stages`.
VerificationReport RunVerifyPipeline(VerifyContext* context, EngineVersion version,
                                     const ZoneConfig& zone, const VerifyOptions& options = {});

}  // namespace dnsv

#endif  // DNSV_DNSV_PIPELINE_H_

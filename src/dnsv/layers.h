// The layer decomposition of paper Fig. 5 and the per-layer measurement used
// by the Fig.-12 harness.
//
// Yellow layers (stable across versions, manually specified): Name,
// DomainTree, Response, Section, RRSet, NodeStack. Blue layers (evolving,
// automatically summarized): TreeSearch, Find, Wildcard, Additional. The
// top layer Resolve is verified against the top-level specification.
#ifndef DNSV_DNSV_LAYERS_H_
#define DNSV_DNSV_LAYERS_H_

#include <string>
#include <vector>

#include "src/dns/zone.h"
#include "src/engine/sources/sources.h"

namespace dnsv {

enum class LayerKind : uint8_t { kManualSpec, kSummarized, kTopLevel };

struct LayerInfo {
  std::string name;
  LayerKind kind;
  std::vector<std::string> functions;
};

const char* LayerKindName(LayerKind kind);

// Fig. 5's module map for a given version (v1.0 has no Additional layer).
std::vector<LayerInfo> EngineLayers(EngineVersion version);

// One row of the Fig.-12 data: how long symbolic execution / summarization of
// a layer takes on a given zone.
struct LayerTiming {
  std::string layer;
  LayerKind kind = LayerKind::kManualSpec;
  double seconds = 0;
  int64_t paths = 0;        // explored paths / summary entries
  int64_t solver_checks = 0;
  bool ok = true;
  std::string note;
};

// Measures every layer of `version` over `zone` (canonicalized internally).
std::vector<LayerTiming> MeasureLayerTimes(EngineVersion version, const ZoneConfig& zone);

}  // namespace dnsv

#endif  // DNSV_DNSV_LAYERS_H_

// The layer decomposition of paper Fig. 5 and the per-layer measurement used
// by the Fig.-12 harness.
//
// Yellow layers (stable across versions, manually specified): Name,
// DomainTree, Response, Section, RRSet, NodeStack. Blue layers (evolving,
// automatically summarized): TreeSearch, Find, Wildcard, Additional. The
// top layer Resolve is verified against the top-level specification.
#ifndef DNSV_DNSV_LAYERS_H_
#define DNSV_DNSV_LAYERS_H_

#include <string>
#include <vector>

#include "src/dns/zone.h"
#include "src/dnsv/pipeline.h"
#include "src/engine/sources/sources.h"

namespace dnsv {

enum class LayerKind : uint8_t { kManualSpec, kSummarized, kTopLevel };

struct LayerInfo {
  std::string name;
  LayerKind kind;
  std::vector<std::string> functions;
};

const char* LayerKindName(LayerKind kind);

// Fig. 5's module map for a given version (v1.0 has no Additional layer).
std::vector<LayerInfo> EngineLayers(EngineVersion version);

// One row of the Fig.-12 data: how long symbolic execution / summarization of
// a layer takes on a given zone.
struct LayerTiming {
  std::string layer;
  LayerKind kind = LayerKind::kManualSpec;
  double seconds = 0;        // wall clock, solver time included
  double solve_seconds = 0;  // portion of `seconds` spent inside Z3
  int64_t paths = 0;         // explored paths / summary entries
  int64_t solver_checks = 0;
  bool ok = true;
  std::string note;
};

// The Fig.-12 measurement plus the full pipeline report that backed the
// Resolve row (per-stage breakdowns, for harnesses that print them).
struct LayerMeasurement {
  std::vector<LayerTiming> rows;
  VerificationReport resolve_report;
};

// Measures every layer of `version` over `zone` (canonicalized internally).
// Compilation and zone lifting are served from `context`, so repeated
// measurements — and the embedded whole-engine Resolve check — reuse the
// compiled engine instead of paying setup per layer.
LayerMeasurement MeasureLayers(VerifyContext* context, EngineVersion version,
                               const ZoneConfig& zone);

// Convenience wrapper with a throwaway context.
std::vector<LayerTiming> MeasureLayerTimes(EngineVersion version, const ZoneConfig& zone);

}  // namespace dnsv

#endif  // DNSV_DNSV_LAYERS_H_

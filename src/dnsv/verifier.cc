#include "src/dnsv/verifier.h"

#include <algorithm>
#include <set>

#include "src/sym/refine.h"
#include "src/sym/specsub.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

// Largest owner depth in the zone, in labels.
size_t MaxOwnerLabels(const ZoneConfig& zone) {
  size_t max_labels = zone.origin.NumLabels();
  for (const ZoneRecord& record : zone.records) {
    max_labels = std::max(max_labels, record.name.NumLabels());
  }
  return max_labels;
}

std::string DecodeQname(const SymValue& qname, const Model& model, const TermArena& arena,
                        const LabelInterner& interner) {
  Value concrete = ConcretizeValue(qname, arena, &model);
  std::vector<std::string> labels;  // concrete is root-first
  for (auto it = concrete.elems.rbegin(); it != concrete.elems.rend(); ++it) {
    labels.push_back(interner.DecodeApprox(it->i));
  }
  return labels.empty() ? "." : JoinStrings(labels, ".");
}

}  // namespace

std::string VerificationIssue::ToString() const {
  std::string out =
      StrCat(kind == Kind::kSafety ? "[SAFETY] " : "[FUNCTIONAL] ", description, "\n");
  out += StrCat("  counterexample: ", qname, " ", RrTypeDisplay(qtype),
                confirmed ? "  (confirmed on the concrete interpreter)" : "", "\n");
  out += "  engine: " + engine_behavior + "\n";
  out += "  spec:   " + spec_behavior + "\n";
  return out;
}

std::string VerificationReport::ToString() const {
  std::string out = StrCat("=== DNS-V report: engine ", EngineVersionName(version), " ===\n");
  if (aborted) {
    out += "ABORTED: " + abort_reason + "\n";
    return out;
  }
  out += verified ? "VERIFIED: safety and functional correctness hold on this zone\n"
                  : StrCat(issues.size(), " issue(s) found\n");
  for (const VerificationIssue& issue : issues) {
    out += issue.ToString();
  }
  out += StrCat("  engine paths: ", engine_paths, ", spec paths: ", spec_paths,
                ", solver checks: ", solver_checks, " (", solve_seconds, "s), total ",
                total_seconds, "s\n");
  if (summaries_computed > 0) {
    out += StrCat("  summaries: ", summaries_computed, " computed, ", summary_applications,
                  " applications\n");
  }
  if (manual_specs_verified > 0) {
    out += StrCat("  manual specs: ", manual_specs_verified, " refinement obligation(s) ",
                  "discharged, ", spec_substitutions, " call sites substituted\n");
  }
  return out;
}

std::vector<FunctionInterface> ResolutionLayerInterfaces() {
  using M = ParamMode;
  return {
      // treeSearch(apex, rel, stopAtNS, out, stack)
      {"treeSearch",
       {M::kConcrete, M::kSymbolicIntList, M::kConcrete, M::kOutStruct, M::kOutStruct}},
      // answerExact(apex, origin, node, qname, qtype, resp)
      {"answerExact",
       {M::kConcrete, M::kConcrete, M::kConcrete, M::kSymbolicIntList, M::kSymbolicInt,
        M::kOutStruct}},
      // wildcardAnswer(apex, origin, wc, qname, qtype, resp)
      {"wildcardAnswer",
       {M::kConcrete, M::kConcrete, M::kConcrete, M::kSymbolicIntList, M::kSymbolicInt,
        M::kOutStruct}},
  };
}

VerificationReport VerifyEngine(EngineVersion version, const ZoneConfig& zone,
                                const VerifyOptions& options) {
  VerificationReport report;
  report.version = version;
  double start = ElapsedSeconds();

  // --- setup: compile, build the concrete heap, lift it ---
  Result<ZoneConfig> canonical_result = CanonicalizeZone(zone);
  if (!canonical_result.ok()) {
    report.aborted = true;
    report.abort_reason = canonical_result.error();
    return report;
  }
  ZoneConfig canonical = std::move(canonical_result).value();
  std::unique_ptr<CompiledEngine> engine = CompiledEngine::Compile(version);
  LabelInterner interner;
  ConcreteMemory concrete_memory;
  HeapImage image = BuildHeapImage(canonical, &interner, engine->types(), &concrete_memory);

  TermArena arena;
  SolverSession solver(&arena);
  SymMemory base_memory = LiftMemory(concrete_memory, &arena);
  SymValue apex = LiftValue(image.apex_ptr, &arena);
  SymValue origin = LiftValue(image.origin_labels, &arena);
  SymValue zone_rrs = LiftValue(image.zone_rrs, &arena);

  // --- symbolic query (§6.1): any qname up to the zone depth + slack, any
  // qtype in the wire range ---
  int qname_capacity =
      static_cast<int>(MaxOwnerLabels(canonical)) + options.extra_qname_labels;
  SymbolicIntList qname =
      MakeSymbolicIntList(&arena, "qname", qname_capacity, LabelInterner::kWildcardCode,
                          interner.max_code());
  SymbolicInt qtype = MakeSymbolicInt(&arena, "qtype", 1, 255);
  solver.Assert(qname.constraints);
  solver.Assert(qtype.constraints);

  ExecLimits limits;
  SymExecutor executor(&engine->module(), &arena, &solver, limits);
  ChainedProvider providers;
  std::unique_ptr<Summarizer> summarizer;
  std::unique_ptr<SpecSubstitution> spec_substitution;
  bool any_provider = false;
  if (options.use_summaries) {
    summarizer = std::make_unique<Summarizer>(&engine->module(), &arena, &solver, base_memory,
                                              qname_capacity, interner.max_code());
    for (FunctionInterface& interface_config : ResolutionLayerInterfaces()) {
      summarizer->Configure(std::move(interface_config));
    }
    providers.Add(summarizer.get());
    any_provider = true;
  }
  if (options.use_manual_specs) {
    // Discharge the refinement obligation (spec ≡ impl, Fig. 1), then route
    // library calls through the abstract spec.
    const std::pair<const char*, const char*> manual_specs[] = {{"nameEq", "nameEqSpec"}};
    spec_substitution = std::make_unique<SpecSubstitution>(&engine->module(), &arena, &solver);
    for (const auto& [impl_name, spec_name] : manual_specs) {
      SymbolicIntList a = MakeSymbolicIntList(&arena, StrCat("ref.", impl_name, ".a"),
                                              qname_capacity, LabelInterner::kWildcardCode,
                                              interner.max_code());
      SymbolicIntList b = MakeSymbolicIntList(&arena, StrCat("ref.", impl_name, ".b"),
                                              qname_capacity, LabelInterner::kWildcardCode,
                                              interner.max_code());
      SymState ref_state;
      ref_state.pc = arena.And(a.constraints, b.constraints);
      RefinementResult refinement = CheckFunctionRefinement(
          &executor, *engine->module().GetFunction(impl_name),
          *engine->module().GetFunction(spec_name), {a.value, b.value}, ref_state);
      if (!refinement.ok()) {
        report.aborted = true;
        report.abort_reason = StrCat("manual spec for ", impl_name, " does not refine: ",
                                     refinement.aborted ? refinement.abort_reason
                                                        : refinement.mismatches[0].description);
        return report;
      }
      spec_substitution->Map(impl_name, spec_name);
      ++report.manual_specs_verified;
    }
    providers.Add(spec_substitution.get());
    any_provider = true;
  }
  if (any_provider) {
    executor.set_summary_provider(&providers);
  }

  // --- interpreter for counterexample confirmation ---
  Interpreter interp(&engine->module(), &concrete_memory);
  StructLayout response_layout(engine->types(), kStructResponse);
  auto confirm = [&](const Model& model, VerificationIssue* issue) {
    Value cq = ConcretizeValue(qname.value, arena, &model);
    int64_t ct = 0;
    Value qtype_value = ConcretizeValue(qtype.value, arena, &model);
    ct = qtype_value.i;
    issue->qname = DecodeQname(qname.value, model, arena, interner);
    issue->qtype = static_cast<RrType>(ct);
    ExecOutcome engine_run = interp.Run(
        engine->resolve_fn(), {image.apex_ptr, image.origin_labels, cq, Value::Int(ct)});
    ExecOutcome spec_run = interp.Run(
        engine->rrlookup_fn(), {image.zone_rrs, image.origin_labels, cq, Value::Int(ct)});
    issue->engine_behavior =
        engine_run.ok()
            ? DecodeResponse(engine_run.return_value, concrete_memory, interner,
                             engine->types())
                  .ToString()
            : "panic: " + engine_run.panic_message;
    issue->spec_behavior =
        spec_run.ok() ? DecodeResponse(spec_run.return_value, concrete_memory, interner,
                                       engine->types())
                            .ToString()
                      : "panic: " + spec_run.panic_message;
    issue->confirmed = issue->engine_behavior != issue->spec_behavior;
    // Table-2 classification from the structured views.
    std::vector<std::string> kinds;
    if (!engine_run.ok()) {
      kinds.push_back("Runtime Error");
    } else if (spec_run.ok()) {
      ResponseView ev = DecodeResponse(engine_run.return_value, concrete_memory, interner,
                                       engine->types());
      ResponseView sv = DecodeResponse(spec_run.return_value, concrete_memory, interner,
                                       engine->types());
      if (ev.rcode != sv.rcode) kinds.push_back("Wrong rcode");
      if (ev.aa != sv.aa) kinds.push_back("Wrong Flag");
      if (ev.answer != sv.answer) kinds.push_back("Wrong Answer");
      if (ev.authority != sv.authority) kinds.push_back("Wrong Authority");
      if (ev.additional != sv.additional) kinds.push_back("Wrong Additional");
    }
    issue->classification = JoinStrings(kinds, "/");
  };

  std::set<std::string> seen_issues;
  auto add_issue = [&](VerificationIssue issue) {
    // One issue per behavior classification: Table-2 granularity. Distinct
    // bugs of the same classification are surfaced by re-running after a fix,
    // which is how the paper's workflow uses DNS-V too.
    std::string key = StrCat(static_cast<int>(issue.kind), "|", issue.description, "|",
                             issue.classification);
    if (seen_issues.insert(key).second &&
        static_cast<int>(report.issues.size()) < options.max_issues) {
      report.issues.push_back(std::move(issue));
    }
  };

  // --- full-path symbolic execution of Resolve ---
  std::vector<PathOutcome> engine_outcomes;
  try {
    SymState state;
    state.memory = base_memory;
    state.pc = arena.True();
    engine_outcomes =
        executor.Explore(engine->resolve_fn(),
                         {apex, origin, qname.value, qtype.value}, std::move(state));
  } catch (const DnsvError& e) {
    report.aborted = true;
    report.abort_reason = StrCat("engine exploration: ", e.what());
    return report;
  }
  report.engine_paths = static_cast<int64_t>(engine_outcomes.size());

  if (options.check_path_coverage) {
    // Full-path meta-check: the disjunction of path conditions covers the
    // input constraints, and no two paths overlap.
    std::vector<Term> pcs;
    pcs.reserve(engine_outcomes.size());
    for (const PathOutcome& outcome : engine_outcomes) {
      pcs.push_back(outcome.state.pc);
    }
    Term covered = arena.OrN(pcs);
    if (solver.CheckAssuming(arena.Not(covered)) != SatResult::kUnsat) {
      report.aborted = true;
      report.abort_reason = "full-path meta-check failed: inputs escape every path";
      return report;
    }
    for (size_t i = 0; i < pcs.size(); ++i) {
      for (size_t j = i + 1; j < pcs.size(); ++j) {
        if (solver.CheckAssuming(arena.And(pcs[i], pcs[j])) != SatResult::kUnsat) {
          report.aborted = true;
          report.abort_reason =
              StrCat("full-path meta-check failed: paths ", i, " and ", j, " overlap");
          return report;
        }
      }
    }
    report.path_coverage_checked = true;
  }

  for (const PathOutcome& engine_path : engine_outcomes) {
    if (static_cast<int>(report.issues.size()) >= options.max_issues) {
      break;
    }
    // Safety: a feasible path into a panic block.
    if (engine_path.kind == PathOutcome::Kind::kPanicked) {
      if (solver.CheckAssuming(engine_path.state.pc) != SatResult::kSat) {
        continue;  // defensive; forks only take feasible sides
      }
      VerificationIssue issue;
      issue.kind = VerificationIssue::Kind::kSafety;
      issue.description = "reachable panic block: " + engine_path.panic_message;
      confirm(solver.GetModel(), &issue);
      add_issue(std::move(issue));
      continue;
    }
    if (options.safety_only) {
      continue;
    }
    // Functional correctness: explore the spec under this path condition.
    const SymValue& response_ptr = engine_path.return_value;
    DNSV_CHECK(response_ptr.kind == SymValue::Kind::kPtr && !response_ptr.IsNullPtr());
    const SymValue* engine_response =
        engine_path.state.memory.Resolve(response_ptr.block, response_ptr.path);
    DNSV_CHECK(engine_response != nullptr);

    std::vector<PathOutcome> spec_outcomes;
    try {
      SymState spec_state;
      spec_state.memory = base_memory;
      spec_state.pc = engine_path.state.pc;
      SymExecutor spec_executor(&engine->module(), &arena, &solver, limits);
      if (any_provider) {
        spec_executor.set_summary_provider(&providers);
      }
      spec_outcomes = spec_executor.Explore(
          engine->rrlookup_fn(), {zone_rrs, origin, qname.value, qtype.value},
          std::move(spec_state));
      report.spec_paths += static_cast<int64_t>(spec_outcomes.size());
    } catch (const DnsvError& e) {
      report.aborted = true;
      report.abort_reason = StrCat("spec exploration: ", e.what());
      return report;
    }
    for (const PathOutcome& spec_path : spec_outcomes) {
      if (static_cast<int>(report.issues.size()) >= options.max_issues) {
        break;
      }
      if (spec_path.kind == PathOutcome::Kind::kPanicked) {
        VerificationIssue issue;
        issue.kind = VerificationIssue::Kind::kSafety;
        issue.description = "specification panics: " + spec_path.panic_message;
        if (solver.CheckAssuming(spec_path.state.pc) == SatResult::kSat) {
          confirm(solver.GetModel(), &issue);
        }
        add_issue(std::move(issue));
        continue;
      }
      const SymValue& spec_ptr = spec_path.return_value;
      const SymValue* spec_response =
          spec_path.state.memory.Resolve(spec_ptr.block, spec_ptr.path);
      DNSV_CHECK(spec_response != nullptr);
      Term equal = SymValueEqTerm(*engine_response, *spec_response, &arena);
      Term mismatch = arena.And(spec_path.state.pc, arena.Not(equal));
      if (solver.CheckAssuming(mismatch) == SatResult::kSat) {
        VerificationIssue issue;
        issue.kind = VerificationIssue::Kind::kFunctional;
        issue.description = "engine response differs from rrlookup specification";
        confirm(solver.GetModel(), &issue);
        add_issue(std::move(issue));
      }
    }
  }

  report.solver_checks = solver.num_checks();
  report.solve_seconds = solver.solve_seconds();
  if (summarizer != nullptr) {
    report.summaries_computed = summarizer->stats().summaries_computed;
    report.summary_applications = summarizer->stats().applications;
  }
  if (spec_substitution != nullptr) {
    report.spec_substitutions = spec_substitution->substitutions();
  }
  report.total_seconds = ElapsedSeconds() - start;
  report.verified = !report.aborted && report.issues.empty();
  return report;
}

}  // namespace dnsv

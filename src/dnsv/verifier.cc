#include "src/dnsv/verifier.h"

#include "src/dnsv/pipeline.h"
#include "src/support/strings.h"

namespace dnsv {

std::string WireReplay::ToString() const {
  if (!attempted) {
    return error.empty() ? std::string("not attempted")
                         : StrCat("not replayable: ", error);
  }
  return StrCat(query_packet.size(), "-byte query packet; response packets ",
                reproduced ? "diverge" : "agree", " (engine ", engine_packet.size(),
                " bytes, spec ", spec_packet.size(), " bytes)");
}

std::string VerificationIssue::ToString() const {
  std::string out =
      StrCat(kind == Kind::kSafety ? "[SAFETY] " : "[FUNCTIONAL] ", description, "\n");
  out += StrCat("  counterexample: ", qname, " ", RrTypeDisplay(qtype),
                confirmed ? "  (confirmed on the concrete interpreter)" : "", "\n");
  out += "  engine: " + engine_behavior + "\n";
  out += "  spec:   " + spec_behavior + "\n";
  out += "  wire:   " + wire.ToString() + "\n";
  return out;
}

std::string StageStats::ToString() const {
  std::string out = StrCat("    ", stage, ": ", seconds, "s");
  if (from_cache) {
    out += " (cached)";
  }
  // Always report the count: "0 solver checks" and "no entry" mean different
  // things to a reader diffing two reports, so zero is printed, not omitted.
  out += StrCat(", ", solver_checks, " solver checks (", solve_seconds, "s)");
  if (stage == "prune") {
    out += StrCat(", ", panics_discharged, " panics discharged, ", paths_pruned,
                  " paths pruned");
  }
  // Solver-layer breakdown, printed only when a layer actually did something
  // (default direct-to-Z3 runs keep the historical line byte-identical).
  if (solver.cache_hits + solver.cache_misses + solver.presolver_discharges +
          solver.shadow_checks >
      0) {
    out += StrCat(", layered: ", solver.queries, " queries, ", solver.cache_hits,
                  " cache hits, ", solver.presolver_discharges, " presolved");
  }
  if (solver.unknowns > 0 || solver.timeout_retries > 0) {
    out += StrCat(", ", solver.unknowns, " unknown(s), ", solver.timeout_retries,
                  " timeout retries");
  }
  return out;
}

std::string IncrementalStats::ToString() const {
  if (!store_enabled) {
    return "store off";
  }
  std::string out = replayed ? "replayed" : "recomputed";
  out += StrCat(", functions ", functions_reused, "/", functions_total, " reused, layers ",
                layers_reused, "/", layers_total, " reused");
  if (qcache_entries_loaded > 0) {
    out += StrCat(", ", qcache_entries_loaded, " solver verdicts from disk");
  }
  if (summaries_reused) {
    out += ", interproc facts replayed";
  }
  if (prune_fingerprint_checked) {
    out += ", prune fingerprint checked";
  }
  if (shadow_checked) {
    out += ", shadow-checked against store";
  }
  if (!dirty_layers.empty()) {
    out += StrCat(", dirty layers: ", JoinStrings(dirty_layers, " "));
  }
  return out;
}

std::string VerificationReport::ToString() const {
  std::string out = StrCat("=== DNS-V report: engine ", EngineVersionName(version), " ===\n");
  if (aborted) {
    out += "ABORTED: " + abort_reason + "\n";
    return out;
  }
  out += verified ? "VERIFIED: safety and functional correctness hold on this zone\n"
                  : StrCat(issues.size(), " issue(s) found\n");
  for (const VerificationIssue& issue : issues) {
    out += issue.ToString();
  }
  out += StrCat("  engine paths: ", engine_paths, ", spec paths: ", spec_paths,
                ", solver checks: ", solver_checks, " (", solve_seconds, "s), total ",
                total_seconds, "s\n");
  if (summaries_computed > 0) {
    out += StrCat("  summaries: ", summaries_computed, " computed, ", summary_applications,
                  " applications\n");
  }
  if (manual_specs_verified > 0) {
    out += StrCat("  manual specs: ", manual_specs_verified, " refinement obligation(s) ",
                  "discharged, ", spec_substitutions, " call sites substituted\n");
  }
  if (pruned) {
    out += StrCat("  prune: ", panics_discharged, " panics discharged, ", paths_pruned,
                  " paths pruned\n");
  }
  if (!analysis.IsZero()) {
    out += StrCat("  analysis: ", analysis.ToString(), "\n");
  }
  if (solver.cache_hits + solver.cache_misses + solver.presolver_discharges +
          solver.shadow_checks >
      0) {
    out += StrCat("  solver layer: ", solver.queries, " queries, ", solver.z3_checks,
                  " reached Z3, ", solver.cache_hits, " cache hits, ",
                  solver.presolver_discharges, " presolver discharges, ",
                  solver.asserts_deduped, " asserts deduped\n");
    if (solver.cache_disk_hits > 0) {
      // Cross-process share of the cache saving (store-loaded entries); zero
      // without a store, keeping the historical output byte-identical.
      out += StrCat("  solver cache from disk: ", solver.cache_disk_hits, " hits\n");
    }
    if (solver.shadow_checks > 0) {
      out += StrCat("  shadow validation: ", solver.shadow_checks, " checks, ",
                    solver.shadow_mismatches, " mismatches\n");
    }
  }
  if (solver.unknowns > 0 || solver.timeout_retries > 0) {
    out += StrCat("  solver unknowns: ", solver.unknowns, " (", solver.timeout_retries,
                  " timeout retries)\n");
  }
  // Printed only when a store was bound, so store-free reports stay
  // byte-identical to the pre-store format.
  if (incremental.store_enabled) {
    out += StrCat("  incremental: ", incremental.ToString(), "\n");
  }
  if (!stages.empty()) {
    out += StrCat("  stages (", explored_in_parallel ? "parallel" : "serial",
                  " exploration):\n");
    for (const StageStats& stage : stages) {
      out += stage.ToString() + "\n";
    }
  }
  return out;
}

std::vector<FunctionInterface> ResolutionLayerInterfaces() {
  using M = ParamMode;
  return {
      // treeSearch(apex, rel, stopAtNS, out, stack)
      {"treeSearch",
       {M::kConcrete, M::kSymbolicIntList, M::kConcrete, M::kOutStruct, M::kOutStruct}},
      // answerExact(apex, origin, node, qname, qtype, resp)
      {"answerExact",
       {M::kConcrete, M::kConcrete, M::kConcrete, M::kSymbolicIntList, M::kSymbolicInt,
        M::kOutStruct}},
      // wildcardAnswer(apex, origin, wc, qname, qtype, resp)
      {"wildcardAnswer",
       {M::kConcrete, M::kConcrete, M::kConcrete, M::kSymbolicIntList, M::kSymbolicInt,
        M::kOutStruct}},
  };
}

VerificationReport VerifyEngine(EngineVersion version, const ZoneConfig& zone,
                                const VerifyOptions& options) {
  // One-shot entry point: a throwaway context (no reuse across calls). Batch
  // callers create a VerifyContext and use RunVerifyPipeline directly.
  VerifyContext context;
  return RunVerifyPipeline(&context, version, zone, options);
}

}  // namespace dnsv

// DNS-V: the verification workflow of paper Fig. 6 applied to the engine.
//
// Given an engine version and a concrete zone configuration, the verifier
//   1. compiles the engine + spec to AbsIR and materializes the zone as a
//      concrete in-heap domain tree (§6.5),
//   2. makes qname/qtype symbolic and performs full-path symbolic execution
//      of Resolve — either monolithically or with the evolving resolution
//      layers replaced by automatically computed summaries (§5.3),
//   3. checks safety (no feasible path reaches a panic block) and functional
//      correctness (every engine path agrees with every rrlookup spec path
//      reachable under its path condition), and
//   4. decodes each violation into a concrete counterexample query, which is
//      re-executed on the concrete interpreter for confirmation.
#ifndef DNSV_DNSV_VERIFIER_H_
#define DNSV_DNSV_VERIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/summary.h"
#include "src/dns/example_zones.h"
#include "src/engine/engine.h"
#include "src/smt/backend.h"
#include "src/sym/summary.h"

namespace dnsv {

class ArtifactStore;  // src/store/store.h

// How the pipeline uses the content-addressed artifact store
// (docs/INCREMENTAL.md). The DNSV_STORE_FORCE environment variable
// overrides the option at RunVerifyPipeline entry: off | shadow | cold.
enum class StoreMode : uint8_t {
  kAuto,         // kIncremental when a store is bound, else kOff
  kOff,          // ignore the store entirely
  kIncremental,  // replay stored reports on a key hit; write artifacts back
  kShadow,       // recompute everything, assert byte-identity with the store
  kCold,         // never read (rebuild), still write artifacts
};

struct VerifyOptions {
  // Symbolic qname capacity = zone's deepest owner + this many extra labels.
  int extra_qname_labels = 1;
  // Apply automated summaries to the resolution layers (§5.3) instead of
  // inlining everything.
  bool use_summaries = false;
  // Substitute manually-developed specs for stable library layers (§6.3,
  // Fig. 6 left branch). Each substitution is preceded by a refinement check
  // spec ≡ implementation; on refinement failure the report aborts.
  bool use_manual_specs = false;
  // Stop after this many distinct issues.
  int max_issues = 8;
  // Skip the functional check (safety only).
  bool safety_only = false;
  // Meta-check of "full-path": engine path conditions must be pairwise
  // disjoint and jointly cover the whole symbolic input space. Quadratic in
  // the path count; intended for tests and audits, not the fast path.
  bool check_path_coverage = false;
  // Run the engine-path and spec-path explorations on separate worker
  // threads. Each worker owns a private TermArena + SolverSession (Z3
  // contexts are not thread-safe, so the isolation is mandatory either way);
  // results are merged deterministically, so the issue list is byte-identical
  // to serial mode.
  bool parallel_explore = true;
  // Run the AbsIR dataflow pruner (src/analysis) over the compiled module
  // before symbolic execution: panic guards the abstract interpretation
  // discharges become jmps, and unreachable blocks are deleted. Sound by
  // construction — a guard is only rewritten when its panic side is proved
  // infeasible — so verdicts and counterexamples are identical with the flag
  // on or off; only the solver-check count shrinks.
  bool prune = false;
  // With `prune`: feed the pruner the interprocedural analysis suite
  // (src/analysis/{callgraph,summary,sccp,alias,escape}.h). SCCP folds the
  // version feature gates out of the CFG and callee summaries / escape facts
  // discharge strictly more guards than the intraprocedural baseline —
  // verdicts stay byte-identical either way, only more solver checks vanish.
  // false pins the exact PR 2 baseline pruner (the ablation axis).
  bool prune_interproc = true;
  // Solver-access policy (src/smt/backend.h): which layers sit between the
  // sessions and Z3 (query cache, interval pre-solver), shadow validation,
  // and the per-check timeout. Every session the pipeline creates — explore
  // workers, compare stage, refinement checks, summarization — uses this
  // config, so the layering is a pipeline-wide choice. The DNSV_SOLVER_FORCE
  // environment variable overrides it at RunVerifyPipeline entry.
  SolverConfig solver;
  // Artifact store for incremental re-verification (docs/INCREMENTAL.md).
  // nullptr consults DNSV_STORE_DIR via ArtifactStore::FromEnv(); tests bind
  // a private store here for hermeticity. When a store is active and the
  // solver layering is kDirect, the pipeline upgrades it to kCachePresolve —
  // persistence without the cache layer would have nothing to persist.
  ArtifactStore* store = nullptr;
  StoreMode store_mode = StoreMode::kAuto;
};

// Packet-level replay of a counterexample — the Confirm stage's last mile
// (docs/WIRE.md). The decoded query is lowered to wire bytes, parsed back,
// executed on the concrete interpreter for both the engine and the spec, and
// both responses are encoded to wire. `reproduced` means the two response
// packets differ byte for byte: the bug the verifier reported is visible on
// the wire, not only in the verifier's decoded views.
struct WireReplay {
  bool attempted = false;   // false when lowering or encoding failed (see error)
  bool reproduced = false;  // engine and spec response packets differ
  std::string error;
  std::vector<uint8_t> query_packet;
  std::vector<uint8_t> engine_packet;
  std::vector<uint8_t> spec_packet;

  std::string ToString() const;
};

struct VerificationIssue {
  enum class Kind : uint8_t { kSafety, kFunctional };
  Kind kind = Kind::kFunctional;
  std::string description;
  // Decoded counterexample query.
  std::string qname;
  RrType qtype = RrType::kA;
  // Concrete re-execution of the counterexample (confirmation).
  bool confirmed = false;
  std::string engine_behavior;  // response text or panic message
  std::string spec_behavior;
  // Table-2 style classification derived from the confirmed counterexample:
  // "Runtime Error", "Wrong Flag", "Wrong Answer", "Wrong rcode",
  // "Wrong Authority", "Wrong Additional" (possibly several, '/'-joined).
  std::string classification;
  // Wire-level replay of the counterexample (SMT model -> bytes on the wire).
  WireReplay wire;

  std::string ToString() const;
};

// Wall-clock / solver breakdown of one pipeline stage (paper Fig. 6 box).
struct StageStats {
  std::string stage;  // compile | prune | lift | explore.engine | explore.spec
                      // | compare | confirm
  double seconds = 0;
  int64_t solver_checks = 0;
  double solve_seconds = 0;   // portion of `seconds` spent inside Z3
  bool from_cache = false;    // compile/prune/lift: served from the VerifyContext cache
  // Prune stage only: guards proved safe and rewritten, and total paths the
  // rewrite removes from exploration (discharged guards + deleted blocks).
  int64_t panics_discharged = 0;
  int64_t paths_pruned = 0;
  // Solver-layer counters for this stage's session(s). `solver.z3_checks`
  // equals `solver_checks` above; the extra fields only light up when the
  // cache / pre-solver layers are enabled, and ToString prints them only
  // then.
  SolverStats solver;

  std::string ToString() const;
};

// What the artifact store contributed to one pipeline run: the dirty-set
// diff (which functions/layers were already covered by stored markers under
// this zone + options), whether the whole report was replayed, and the
// cross-process query-cache transfer. All zero/false when no store is bound,
// keeping stored-free reports byte-identical to the pre-store behavior.
struct IncrementalStats {
  bool store_enabled = false;
  bool replayed = false;        // report served verbatim from the store
  bool shadow_checked = false;  // full re-run compared clean against the store
  bool summaries_reused = false;  // interproc facts replayed, not recomputed
  bool prune_fingerprint_checked = false;  // warm post-prune hash cross-checked
  int64_t qcache_entries_loaded = 0;  // solver verdicts imported from disk
  int64_t functions_total = 0;   // reachable functions hashed for the diff
  int64_t functions_reused = 0;  // cone hash had a stored exploration marker
  int64_t layers_total = 0;      // Fig.-5 layers of this version
  int64_t layers_reused = 0;     // layer cone hash had a stored marker
  std::vector<std::string> dirty_functions;  // no marker: recomputed this run
  std::vector<std::string> dirty_layers;

  double LayerReuseRate() const {
    return layers_total == 0 ? 0.0
                             : static_cast<double>(layers_reused) /
                                   static_cast<double>(layers_total);
  }
  std::string ToString() const;
};

struct VerificationReport {
  EngineVersion version = EngineVersion::kGolden;
  bool verified = false;  // no issues and exploration completed
  bool aborted = false;
  std::string abort_reason;
  std::vector<VerificationIssue> issues;
  // Statistics (feed the Fig.-12 and Table-2 harnesses).
  int64_t engine_paths = 0;
  int64_t spec_paths = 0;
  int64_t solver_checks = 0;
  double solve_seconds = 0;
  double total_seconds = 0;
  int64_t summaries_computed = 0;
  int64_t summary_applications = 0;
  int64_t manual_specs_verified = 0;   // refinement obligations discharged
  int64_t spec_substitutions = 0;      // call sites served by a manual spec
  bool path_coverage_checked = false;  // the full-path meta-check ran and held
  bool pruned = false;                 // exploration ran on the pruned module
  int64_t panics_discharged = 0;       // guards proved safe by the pruner
  int64_t paths_pruned = 0;            // discharged guards + removed blocks
  // Interprocedural-analysis breakdown (per-pass wall clock + outcome
  // counters), zero unless the prune stage ran in interproc mode. Printed
  // alongside the SolverStats lines.
  AnalysisStats analysis;
  // Per-stage observability: one entry per executed pipeline stage, in
  // execution order (explore.engine/explore.spec may have run concurrently).
  std::vector<StageStats> stages;
  bool explored_in_parallel = false;
  // Solver-layer counters aggregated over every session the run created.
  SolverStats solver;
  // Artifact-store contribution (docs/INCREMENTAL.md); defaults when no
  // store is bound.
  IncrementalStats incremental;

  std::string ToString() const;
};

// The Fig.-5 interface configurations for the evolving (blue) layers; these
// are the summarization targets shared by every engine version.
std::vector<FunctionInterface> ResolutionLayerInterfaces();

VerificationReport VerifyEngine(EngineVersion version, const ZoneConfig& zone,
                                const VerifyOptions& options = {});

}  // namespace dnsv

#endif  // DNSV_DNSV_VERIFIER_H_

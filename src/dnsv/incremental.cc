#include "src/dnsv/incremental.h"

#include <cstdlib>
#include <string_view>
#include <utility>

#include "src/dns/zone.h"
#include "src/engine/sources/sources.h"
#include "src/smt/query_cache.h"
#include "src/store/codec.h"
#include "src/store/qcache_io.h"
#include "src/support/strings.h"

namespace dnsv {

namespace {

// Tamper bound on every decoded count: no legitimate artifact comes close,
// and a bit-flipped length must not turn into a multi-gigabyte allocation.
constexpr int64_t kMaxDecodedCount = 4096;

std::string BytesToStr(const std::vector<uint8_t>& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

std::vector<uint8_t> StrToBytes(const std::string& str) {
  return std::vector<uint8_t>(str.begin(), str.end());
}

// Counterexample qtypes are model values over the full symbolic range
// [1, 255], not just the named RrType enumerators, so only the wire-level
// range is validated.
bool ValidRrType(int64_t value) { return value >= 0 && value <= 255; }

void EncodeSolverStats(ArtifactEncoder* enc, const SolverStats& stats) {
  enc->Int(stats.queries);
  enc->Int(stats.z3_checks);
  enc->Double(stats.solve_seconds);
  enc->Int(stats.cache_hits);
  enc->Int(stats.cache_misses);
  enc->Int(stats.cache_disk_hits);
  enc->Int(stats.presolver_discharges);
  enc->Int(stats.asserts_deduped);
  enc->Int(stats.unknowns);
  enc->Int(stats.timeout_retries);
  enc->Int(stats.model_replays);
  enc->Int(stats.shadow_checks);
  enc->Int(stats.shadow_mismatches);
}

void DecodeSolverStats(ArtifactDecoder* dec, SolverStats* stats) {
  stats->queries = dec->Int();
  stats->z3_checks = dec->Int();
  stats->solve_seconds = dec->Double();
  stats->cache_hits = dec->Int();
  stats->cache_misses = dec->Int();
  stats->cache_disk_hits = dec->Int();
  stats->presolver_discharges = dec->Int();
  stats->asserts_deduped = dec->Int();
  stats->unknowns = dec->Int();
  stats->timeout_retries = dec->Int();
  stats->model_replays = dec->Int();
  stats->shadow_checks = dec->Int();
  stats->shadow_mismatches = dec->Int();
}

void EncodeAnalysisStats(ArtifactEncoder* enc, const AnalysisStats& stats) {
  enc->Double(stats.callgraph_seconds);
  enc->Double(stats.summary_seconds);
  enc->Double(stats.sccp_seconds);
  enc->Double(stats.alias_seconds);
  enc->Double(stats.escape_seconds);
  enc->Int(stats.functions);
  enc->Int(stats.pure_functions);
  enc->Int(stats.nonnull_returns);
  enc->Int(stats.const_returns);
  enc->Int(stats.param_fact_functions);
  enc->Int(stats.protected_allocs);
  enc->Int(stats.sccp_branches_folded);
}

void DecodeAnalysisStats(ArtifactDecoder* dec, AnalysisStats* stats) {
  stats->callgraph_seconds = dec->Double();
  stats->summary_seconds = dec->Double();
  stats->sccp_seconds = dec->Double();
  stats->alias_seconds = dec->Double();
  stats->escape_seconds = dec->Double();
  stats->functions = dec->Int();
  stats->pure_functions = dec->Int();
  stats->nonnull_returns = dec->Int();
  stats->const_returns = dec->Int();
  stats->param_fact_functions = dec->Int();
  stats->protected_allocs = dec->Int();
  stats->sccp_branches_folded = dec->Int();
}

std::string PacketHex(const std::vector<uint8_t>& bytes) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

}  // namespace

StoreBinding ResolveStore(const VerifyOptions& options) {
  StoreBinding binding;
  binding.store = options.store != nullptr ? options.store : ArtifactStore::FromEnv();
  StoreMode mode = options.store_mode;
  // DNSV_STORE_FORCE wins over even an explicitly set option, matching
  // DNSV_SOLVER_FORCE: CI flips whole suites into shadow/cold without
  // touching every call site.
  if (const char* force = std::getenv("DNSV_STORE_FORCE")) {
    std::string_view value(force);
    if (value == "off") {
      mode = StoreMode::kOff;
    } else if (value == "shadow") {
      mode = StoreMode::kShadow;
    } else if (value == "cold") {
      mode = StoreMode::kCold;
    } else if (value == "incremental" || value == "on") {
      mode = StoreMode::kIncremental;
    }
    // Unrecognized values leave the option untouched, like DNSV_SOLVER_FORCE.
  }
  if (mode == StoreMode::kAuto) {
    mode = binding.store != nullptr ? StoreMode::kIncremental : StoreMode::kOff;
  }
  if (binding.store == nullptr || mode == StoreMode::kOff) {
    return StoreBinding{};  // inactive: no store pointer, kOff
  }
  binding.mode = mode;
  return binding;
}

std::string EngineSourceHashHex(EngineVersion version) {
  uint64_t hash = kFnv1a64Seed;
  for (const auto& [name, text] : EngineSources(version)) {
    // Unit separators keep ("ab","c") distinct from ("a","bc").
    hash = Fnv1a64(name, hash);
    hash = Fnv1a64("\x1f", hash);
    hash = Fnv1a64(text, hash);
    hash = Fnv1a64("\x1e", hash);
  }
  return HexU64(hash);
}

std::string VerifyOptionsDigest(const VerifyOptions& options) {
  // Every field here changes what the pipeline computes; the digest must be
  // taken after ApplySolverEnvOverride and the store-driven layering upgrade
  // so the key matches what actually ran. shadow_validate is included even
  // though verdicts are unchanged: a shadow run's report differs in its
  // shadow_checks counters, and those are serialized.
  return StrCat("q", options.extra_qname_labels, ".sum", options.use_summaries ? 1 : 0,
                ".spec", options.use_manual_specs ? 1 : 0, ".max", options.max_issues,
                ".safe", options.safety_only ? 1 : 0, ".cov",
                options.check_path_coverage ? 1 : 0, ".prune", options.prune ? 1 : 0,
                ".inter", options.prune_interproc ? 1 : 0, ".lay",
                static_cast<int>(options.solver.layering), ".shadow",
                options.solver.shadow_validate ? 1 : 0, ".to",
                options.solver.check_timeout_ms);
}

Result<std::string> CanonicalZoneHashHex(const ZoneConfig& zone) {
  Result<ZoneConfig> canonical = CanonicalizeZone(zone);
  if (!canonical.ok()) {
    return Result<std::string>::Error(canonical.error());
  }
  return HexU64(Fnv1a64(canonical.value().ToText()));
}

std::string ReportKey(const std::string& source_hash, const std::string& zone_hash,
                      const std::string& options_digest) {
  return StrCat("report|", kStoreSchemaVersion, "|src:", source_hash, "|zone:", zone_hash,
                "|opt:", options_digest);
}

std::string FunctionMarkerKey(uint64_t cone_hash, const std::string& zone_hash,
                              const std::string& options_digest) {
  return StrCat("fnmark|", kStoreSchemaVersion, "|cone:", HexU64(cone_hash),
                "|zone:", zone_hash, "|opt:", options_digest);
}

std::string LayerMarkerKey(uint64_t layer_cone_hash, const std::string& zone_hash,
                           const std::string& options_digest) {
  return StrCat("laymark|", kStoreSchemaVersion, "|cone:", HexU64(layer_cone_hash),
                "|zone:", zone_hash, "|opt:", options_digest);
}

std::string InterprocKey(uint64_t module_fingerprint,
                         const std::vector<std::string>& entry_points) {
  uint64_t roots = kFnv1a64Seed;
  for (const std::string& entry : entry_points) {
    roots = Fnv1a64(entry, roots);
    roots = Fnv1a64("\x1f", roots);
  }
  return StrCat("interproc|", kStoreSchemaVersion, "|mod:", HexU64(module_fingerprint),
                "|roots:", HexU64(roots));
}

std::string PruneCheckKey(uint64_t module_fingerprint, bool interproc) {
  return StrCat("prune|", kStoreSchemaVersion, "|mod:", HexU64(module_fingerprint),
                "|inter:", interproc ? 1 : 0);
}

std::string SerializeReport(const VerificationReport& report, int64_t functions_total,
                            int64_t layers_total) {
  ArtifactEncoder enc;
  enc.Tag("report");
  enc.Int(static_cast<int64_t>(report.version));
  enc.Bool(report.verified);
  enc.Bool(report.aborted);
  enc.Str(report.abort_reason);
  enc.Int(static_cast<int64_t>(report.issues.size()));
  for (const VerificationIssue& issue : report.issues) {
    enc.Tag("issue");
    enc.Int(issue.kind == VerificationIssue::Kind::kSafety ? 0 : 1);
    enc.Str(issue.description);
    enc.Str(issue.qname);
    enc.Int(static_cast<int64_t>(issue.qtype));
    enc.Bool(issue.confirmed);
    enc.Str(issue.engine_behavior);
    enc.Str(issue.spec_behavior);
    enc.Str(issue.classification);
    enc.Bool(issue.wire.attempted);
    enc.Bool(issue.wire.reproduced);
    enc.Str(issue.wire.error);
    enc.Str(BytesToStr(issue.wire.query_packet));
    enc.Str(BytesToStr(issue.wire.engine_packet));
    enc.Str(BytesToStr(issue.wire.spec_packet));
  }
  enc.Tag("counters");
  enc.Int(report.engine_paths);
  enc.Int(report.spec_paths);
  enc.Int(report.solver_checks);
  enc.Double(report.solve_seconds);
  enc.Double(report.total_seconds);
  enc.Int(report.summaries_computed);
  enc.Int(report.summary_applications);
  enc.Int(report.manual_specs_verified);
  enc.Int(report.spec_substitutions);
  enc.Bool(report.path_coverage_checked);
  enc.Bool(report.pruned);
  enc.Int(report.panics_discharged);
  enc.Int(report.paths_pruned);
  enc.Tag("analysis");
  EncodeAnalysisStats(&enc, report.analysis);
  enc.Tag("stages");
  enc.Bool(report.explored_in_parallel);
  enc.Int(static_cast<int64_t>(report.stages.size()));
  for (const StageStats& stage : report.stages) {
    enc.Str(stage.stage);
    enc.Double(stage.seconds);
    enc.Int(stage.solver_checks);
    enc.Double(stage.solve_seconds);
    enc.Bool(stage.from_cache);
    enc.Int(stage.panics_discharged);
    enc.Int(stage.paths_pruned);
    EncodeSolverStats(&enc, stage.solver);
  }
  enc.Tag("solver");
  EncodeSolverStats(&enc, report.solver);
  enc.Tag("totals");
  enc.Int(functions_total);
  enc.Int(layers_total);
  return enc.Take();
}

bool ParseReport(const std::string& payload, VerificationReport* report,
                 int64_t* functions_total, int64_t* layers_total) {
  ArtifactDecoder dec(payload);
  VerificationReport out;
  dec.Tag("report");
  int64_t version = dec.Int();
  if (version < 0 || version > static_cast<int64_t>(EngineVersion::kV5)) {
    return false;
  }
  out.version = static_cast<EngineVersion>(version);
  out.verified = dec.Bool();
  out.aborted = dec.Bool();
  out.abort_reason = dec.Str();
  int64_t num_issues = dec.Int();
  if (!dec.ok() || num_issues < 0 || num_issues > kMaxDecodedCount) {
    return false;
  }
  out.issues.reserve(static_cast<size_t>(num_issues));
  for (int64_t i = 0; i < num_issues; ++i) {
    VerificationIssue issue;
    dec.Tag("issue");
    int64_t kind = dec.Int();
    if (kind != 0 && kind != 1) return false;
    issue.kind = kind == 0 ? VerificationIssue::Kind::kSafety
                           : VerificationIssue::Kind::kFunctional;
    issue.description = dec.Str();
    issue.qname = dec.Str();
    int64_t qtype = dec.Int();
    if (!ValidRrType(qtype)) return false;
    issue.qtype = static_cast<RrType>(qtype);
    issue.confirmed = dec.Bool();
    issue.engine_behavior = dec.Str();
    issue.spec_behavior = dec.Str();
    issue.classification = dec.Str();
    issue.wire.attempted = dec.Bool();
    issue.wire.reproduced = dec.Bool();
    issue.wire.error = dec.Str();
    issue.wire.query_packet = StrToBytes(dec.Str());
    issue.wire.engine_packet = StrToBytes(dec.Str());
    issue.wire.spec_packet = StrToBytes(dec.Str());
    if (!dec.ok()) return false;
    out.issues.push_back(std::move(issue));
  }
  dec.Tag("counters");
  out.engine_paths = dec.Int();
  out.spec_paths = dec.Int();
  out.solver_checks = dec.Int();
  out.solve_seconds = dec.Double();
  out.total_seconds = dec.Double();
  out.summaries_computed = dec.Int();
  out.summary_applications = dec.Int();
  out.manual_specs_verified = dec.Int();
  out.spec_substitutions = dec.Int();
  out.path_coverage_checked = dec.Bool();
  out.pruned = dec.Bool();
  out.panics_discharged = dec.Int();
  out.paths_pruned = dec.Int();
  dec.Tag("analysis");
  DecodeAnalysisStats(&dec, &out.analysis);
  dec.Tag("stages");
  out.explored_in_parallel = dec.Bool();
  int64_t num_stages = dec.Int();
  if (!dec.ok() || num_stages < 0 || num_stages > kMaxDecodedCount) {
    return false;
  }
  out.stages.reserve(static_cast<size_t>(num_stages));
  for (int64_t i = 0; i < num_stages; ++i) {
    StageStats stage;
    stage.stage = dec.Str();
    stage.seconds = dec.Double();
    stage.solver_checks = dec.Int();
    stage.solve_seconds = dec.Double();
    stage.from_cache = dec.Bool();
    stage.panics_discharged = dec.Int();
    stage.paths_pruned = dec.Int();
    DecodeSolverStats(&dec, &stage.solver);
    if (!dec.ok()) return false;
    out.stages.push_back(std::move(stage));
  }
  dec.Tag("solver");
  DecodeSolverStats(&dec, &out.solver);
  dec.Tag("totals");
  int64_t fns = dec.Int();
  int64_t layers = dec.Int();
  if (!dec.ok() || !dec.AtEnd()) {
    return false;
  }
  *report = std::move(out);
  *functions_total = fns;
  *layers_total = layers;
  return true;
}

std::string NormalizedReportText(const VerificationReport& report) {
  std::string out = StrCat("version ", EngineVersionName(report.version), "\n");
  out += StrCat("verified ", report.verified ? 1 : 0, "\n");
  out += StrCat("aborted ", report.aborted ? 1 : 0, " ", report.abort_reason, "\n");
  for (const VerificationIssue& issue : report.issues) {
    out += StrCat("issue ", issue.kind == VerificationIssue::Kind::kSafety ? "safety"
                                                                           : "functional",
                  "\n");
    out += StrCat("  description ", issue.description, "\n");
    out += StrCat("  counterexample ", issue.qname, " ", RrTypeDisplay(issue.qtype),
                  " confirmed=", issue.confirmed ? 1 : 0, "\n");
    out += StrCat("  engine ", issue.engine_behavior, "\n");
    out += StrCat("  spec ", issue.spec_behavior, "\n");
    out += StrCat("  class ", issue.classification, "\n");
    out += StrCat("  wire attempted=", issue.wire.attempted ? 1 : 0,
                  " reproduced=", issue.wire.reproduced ? 1 : 0, " error=", issue.wire.error,
                  "\n");
    out += StrCat("  wire.query ", PacketHex(issue.wire.query_packet), "\n");
    out += StrCat("  wire.engine ", PacketHex(issue.wire.engine_packet), "\n");
    out += StrCat("  wire.spec ", PacketHex(issue.wire.spec_packet), "\n");
  }
  out += StrCat("paths engine=", report.engine_paths, " spec=", report.spec_paths, "\n");
  out += StrCat("summaries computed=", report.summaries_computed,
                " applied=", report.summary_applications, "\n");
  out += StrCat("specs verified=", report.manual_specs_verified,
                " substituted=", report.spec_substitutions, "\n");
  out += StrCat("coverage ", report.path_coverage_checked ? 1 : 0, "\n");
  out += StrCat("prune on=", report.pruned ? 1 : 0, " discharged=", report.panics_discharged,
                " pruned=", report.paths_pruned, "\n");
  // Analysis outcome counters are deterministic facts about the module;
  // the per-pass seconds are not, so only the counters participate.
  out += StrCat("analysis fns=", report.analysis.functions,
                " pure=", report.analysis.pure_functions,
                " nonnull=", report.analysis.nonnull_returns,
                " const=", report.analysis.const_returns,
                " pfacts=", report.analysis.param_fact_functions,
                " prot=", report.analysis.protected_allocs,
                " folded=", report.analysis.sccp_branches_folded, "\n");
  return out;
}

int64_t EnsureQueryCacheLoaded(ArtifactStore* store, QueryCache* cache) {
  if (store == nullptr || cache == nullptr) {
    return 0;
  }
  if (!cache->MarkLoadedFrom(store->root())) {
    return 0;  // already imported into this cache
  }
  return LoadQueryCache(store, cache);
}

}  // namespace dnsv

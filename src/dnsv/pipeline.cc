#include "src/dnsv/pipeline.h"

#include <algorithm>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "src/analysis/callgraph.h"
#include "src/dns/wire.h"
#include "src/dnsv/incremental.h"
#include "src/dnsv/layers.h"
#include "src/ir/printer.h"
#include "src/smt/query_cache.h"
#include "src/store/codec.h"
#include "src/store/qcache_io.h"
#include "src/store/summary_io.h"
#include "src/sym/refine.h"
#include "src/sym/specsub.h"
#include "src/sym/summary.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

size_t MaxOwnerLabels(const ZoneConfig& zone) {
  size_t max_labels = zone.origin.NumLabels();
  for (const ZoneRecord& record : zone.records) {
    max_labels = std::max(max_labels, record.name.NumLabels());
  }
  return max_labels;
}

std::string DecodeQname(const SymValue& qname, const Model& model, const TermArena& arena,
                        const LabelInterner& interner) {
  Value concrete = ConcretizeValue(qname, arena, &model);
  std::vector<std::string> labels;  // concrete is root-first
  for (auto it = concrete.elems.rbegin(); it != concrete.elems.rend(); ++it) {
    labels.push_back(interner.DecodeApprox(it->i));
  }
  return labels.empty() ? "." : JoinStrings(labels, ".");
}

// The symbolic inputs shared by the engine and spec workers. Both workers
// (and the compare stage) create these variables with identical names, so
// TermImporter unifies them; everything else a worker generates is renamed
// into a per-worker namespace on import.
bool IsSharedInputVar(const std::string& name) {
  return name == "qtype" || name.rfind("qname.", 0) == 0;
}

// One explored path, exported from a worker's private arena.
struct ExploredPath {
  PathOutcome::Kind kind = PathOutcome::Kind::kReturned;
  Term pc;            // in the worker's arena
  SymValue response;  // resolved *Response contents (returned paths only)
  std::string panic_message;
};

// Everything a worker hands back to the pipeline. The arena stays alive so
// the exported terms remain valid until the compare stage has imported them.
struct ExploreResult {
  bool aborted = false;
  std::string abort_reason;
  std::unique_ptr<TermArena> arena;
  std::vector<ExploredPath> paths;
  double seconds = 0;
  int64_t solver_checks = 0;
  double solve_seconds = 0;
  SolverStats solver;
  int64_t summaries_computed = 0;
  int64_t summary_applications = 0;
  int64_t manual_specs_verified = 0;
  int64_t spec_substitutions = 0;
};

// ExploreStage worker: full-path symbolic execution of either the engine's
// Resolve (spec_side=false) or the rrlookup specification (spec_side=true),
// in a freshly built, fully private symbolic session.
ExploreResult RunExploreWorker(const CompiledEngine& engine, const LiftedZone& lifted,
                               const VerifyOptions& options, bool spec_side) {
  ExploreResult result;
  double start = ElapsedSeconds();
  result.arena = std::make_unique<TermArena>();
  TermArena& arena = *result.arena;
  SolverSession solver(&arena, options.solver);

  SymMemory base_memory = LiftMemory(lifted.memory, &arena);
  SymValue apex = LiftValue(lifted.image.apex_ptr, &arena);
  SymValue origin = LiftValue(lifted.image.origin_labels, &arena);
  SymValue zone_rrs = LiftValue(lifted.image.zone_rrs, &arena);

  int qname_capacity =
      static_cast<int>(lifted.max_owner_labels) + options.extra_qname_labels;
  SymbolicIntList qname =
      MakeSymbolicIntList(&arena, "qname", qname_capacity, LabelInterner::kWildcardCode,
                          lifted.interner.max_code());
  SymbolicInt qtype = MakeSymbolicInt(&arena, "qtype", 1, 255);
  solver.Assert(qname.constraints);
  solver.Assert(qtype.constraints);

  ExecLimits limits;
  SymExecutor executor(&engine.module(), &arena, &solver, limits);
  ChainedProvider providers;
  std::unique_ptr<Summarizer> summarizer;
  std::unique_ptr<SpecSubstitution> spec_substitution;
  bool any_provider = false;
  if (options.use_summaries) {
    summarizer = std::make_unique<Summarizer>(&engine.module(), &arena, &solver, base_memory,
                                              qname_capacity, lifted.interner.max_code());
    for (FunctionInterface& interface_config : ResolutionLayerInterfaces()) {
      summarizer->Configure(std::move(interface_config));
    }
    providers.Add(summarizer.get());
    any_provider = true;
  }
  if (options.use_manual_specs) {
    // Discharge the refinement obligation (spec ≡ impl, Fig. 1), then route
    // library calls through the abstract spec. Each worker proves it against
    // its own solver; the obligation is counted once (engine side).
    const std::pair<const char*, const char*> manual_specs[] = {{"nameEq", "nameEqSpec"}};
    spec_substitution = std::make_unique<SpecSubstitution>(&engine.module(), &arena, &solver);
    for (const auto& [impl_name, spec_name] : manual_specs) {
      SymbolicIntList a = MakeSymbolicIntList(&arena, StrCat("ref.", impl_name, ".a"),
                                              qname_capacity, LabelInterner::kWildcardCode,
                                              lifted.interner.max_code());
      SymbolicIntList b = MakeSymbolicIntList(&arena, StrCat("ref.", impl_name, ".b"),
                                              qname_capacity, LabelInterner::kWildcardCode,
                                              lifted.interner.max_code());
      SymState ref_state;
      ref_state.pc = arena.And(a.constraints, b.constraints);
      RefinementResult refinement = CheckFunctionRefinement(
          &executor, *engine.module().GetFunction(impl_name),
          *engine.module().GetFunction(spec_name), {a.value, b.value}, ref_state);
      if (!refinement.ok()) {
        result.aborted = true;
        result.abort_reason = StrCat("manual spec for ", impl_name, " does not refine: ",
                                     refinement.aborted ? refinement.abort_reason
                                                        : refinement.mismatches[0].description);
        result.solver = solver.stats();
        result.seconds = ElapsedSeconds() - start;
        return result;
      }
      spec_substitution->Map(impl_name, spec_name);
      ++result.manual_specs_verified;
    }
    providers.Add(spec_substitution.get());
    any_provider = true;
  }
  if (any_provider) {
    executor.set_summary_provider(&providers);
  }

  const Function& entry = spec_side ? engine.rrlookup_fn() : engine.resolve_fn();
  std::vector<SymValue> args =
      spec_side ? std::vector<SymValue>{zone_rrs, origin, qname.value, qtype.value}
                : std::vector<SymValue>{apex, origin, qname.value, qtype.value};

  std::vector<PathOutcome> outcomes;
  try {
    SymState state;
    state.memory = base_memory;
    state.pc = arena.True();
    outcomes = executor.Explore(entry, args, std::move(state));
  } catch (const DnsvError& e) {
    result.aborted = true;
    result.abort_reason =
        StrCat(spec_side ? "spec" : "engine", " exploration: ", e.what());
    result.solver = solver.stats();
    result.seconds = ElapsedSeconds() - start;
    return result;
  }

  result.paths.reserve(outcomes.size());
  for (const PathOutcome& outcome : outcomes) {
    ExploredPath path;
    path.kind = outcome.kind;
    path.pc = outcome.state.pc;
    if (outcome.kind == PathOutcome::Kind::kPanicked) {
      path.panic_message = outcome.panic_message;
    } else {
      const SymValue& response_ptr = outcome.return_value;
      DNSV_CHECK(response_ptr.kind == SymValue::Kind::kPtr && !response_ptr.IsNullPtr());
      const SymValue* response =
          outcome.state.memory.Resolve(response_ptr.block, response_ptr.path);
      DNSV_CHECK(response != nullptr);
      path.response = *response;
    }
    result.paths.push_back(std::move(path));
  }

  if (summarizer != nullptr) {
    result.summaries_computed = summarizer->stats().summaries_computed;
    result.summary_applications = summarizer->stats().applications;
  }
  if (spec_substitution != nullptr) {
    result.spec_substitutions = spec_substitution->substitutions();
  }
  result.solver_checks = solver.num_checks();
  result.solve_seconds = solver.solve_seconds();
  result.solver = solver.stats();
  result.seconds = ElapsedSeconds() - start;
  return result;
}

// Imports a worker's paths into the compare arena, renaming worker-internal
// variables into the `tag` namespace.
std::vector<ExploredPath> ImportPaths(const ExploreResult& worker, const char* tag,
                                      TermArena* arena) {
  TermImporter importer(worker.arena.get(), arena, [tag](const std::string& name) {
    return IsSharedInputVar(name) ? name : StrCat(tag, "!", name);
  });
  std::vector<ExploredPath> paths;
  paths.reserve(worker.paths.size());
  for (const ExploredPath& path : worker.paths) {
    ExploredPath imported;
    imported.kind = path.kind;
    imported.pc = importer.Import(path.pc);
    imported.panic_message = path.panic_message;
    if (path.kind == PathOutcome::Kind::kReturned) {
      imported.response = ImportSymValue(path.response, &importer);
    }
    paths.push_back(std::move(imported));
  }
  return paths;
}

// ConfirmStage state: decodes counterexample models into concrete queries,
// re-executes them on the interpreter, classifies (Table 2), and dedupes.
class Confirmer {
 public:
  Confirmer(const CompiledEngine& engine, const LiftedZone& lifted, const TermArena& arena,
            const SymValue& qname, const SymValue& qtype, VerificationReport* report,
            int max_issues)
      : engine_(engine),
        lifted_(lifted),
        arena_(arena),
        qname_(qname),
        qtype_(qtype),
        memory_(lifted.memory),  // private copy: interpretation allocates
        interp_(&engine.module(), &memory_),
        replay_interner_(lifted.interner),  // private copy: wire replay interns
        report_(report),
        max_issues_(max_issues) {}

  bool full() const { return static_cast<int>(report_->issues.size()) >= max_issues_; }
  double seconds() const { return seconds_; }

  // Decodes + confirms + classifies `issue` against `model` (when present),
  // then appends it unless it duplicates an already-reported behavior.
  void Add(VerificationIssue issue, const Model* model) {
    double start = ElapsedSeconds();
    if (model != nullptr) {
      Decode(&issue, *model);
    }
    // One issue per behavior classification: Table-2 granularity. Distinct
    // bugs of the same classification are surfaced by re-running after a fix,
    // which is how the paper's workflow uses DNS-V too.
    std::string key = StrCat(static_cast<int>(issue.kind), "|", issue.description, "|",
                             issue.classification);
    if (seen_.insert(key).second && !full()) {
      report_->issues.push_back(std::move(issue));
    }
    seconds_ += ElapsedSeconds() - start;
  }

 private:
  void Decode(VerificationIssue* issue, const Model& model) {
    Value cq = ConcretizeValue(qname_, arena_, &model);
    Value qtype_value = ConcretizeValue(qtype_, arena_, &model);
    int64_t ct = qtype_value.i;
    issue->qname = DecodeQname(qname_, model, arena_, lifted_.interner);
    issue->qtype = static_cast<RrType>(ct);
    ExecOutcome engine_run =
        interp_.Run(engine_.resolve_fn(),
                    {lifted_.image.apex_ptr, lifted_.image.origin_labels, cq, Value::Int(ct)});
    ExecOutcome spec_run =
        interp_.Run(engine_.rrlookup_fn(),
                    {lifted_.image.zone_rrs, lifted_.image.origin_labels, cq, Value::Int(ct)});
    issue->engine_behavior =
        engine_run.ok()
            ? DecodeResponse(engine_run.return_value, memory_, lifted_.interner, engine_.types())
                  .ToString()
            : "panic: " + engine_run.panic_message;
    issue->spec_behavior =
        spec_run.ok()
            ? DecodeResponse(spec_run.return_value, memory_, lifted_.interner, engine_.types())
                  .ToString()
            : "panic: " + spec_run.panic_message;
    issue->confirmed = issue->engine_behavior != issue->spec_behavior;
    // Table-2 classification from the structured views.
    std::vector<std::string> kinds;
    if (!engine_run.ok()) {
      kinds.push_back("Runtime Error");
    } else if (spec_run.ok()) {
      ResponseView ev =
          DecodeResponse(engine_run.return_value, memory_, lifted_.interner, engine_.types());
      ResponseView sv =
          DecodeResponse(spec_run.return_value, memory_, lifted_.interner, engine_.types());
      if (ev.rcode != sv.rcode) kinds.push_back("Wrong rcode");
      if (ev.aa != sv.aa) kinds.push_back("Wrong Flag");
      if (ev.answer != sv.answer) kinds.push_back("Wrong Answer");
      if (ev.authority != sv.authority) kinds.push_back("Wrong Authority");
      if (ev.additional != sv.additional) kinds.push_back("Wrong Additional");
    }
    issue->classification = JoinStrings(kinds, "/");
    ReplayOnWire(issue, cq, ct);
  }

  // Closes the loop from SMT model to bytes on the wire: lowers the decoded
  // counterexample to a wire query packet, replays it through
  // encode -> parse -> engine -> encode, and records whether the engine's
  // and the spec's response packets diverge (docs/WIRE.md).
  void ReplayOnWire(VerificationIssue* issue, const Value& cq, int64_t ct) {
    WireReplay replay;
    // The qname is rebuilt label-by-label (cq is root-first): counterexample
    // names routinely carry interior '*' labels that the zone-file syntax
    // (DnsName::Parse) rejects but the wire format allows. DecodeApprox maps
    // known codes to their exact labels and model-synthesized codes to a
    // label at the same lexicographic position.
    WireQuery query;
    query.id = 0xD05E;
    for (auto it = cq.elems.rbegin(); it != cq.elems.rend(); ++it) {
      query.qname.labels.push_back(lifted_.interner.DecodeApprox(it->i));
    }
    query.qtype = static_cast<RrType>(ct);
    // Replay as a modern resolver would ask: with an OPT advertising 4 KiB.
    // The OPT bytes then ride through encode -> parse -> encode on both the
    // engine's and the spec's packets, and truncation at 512 cannot mask a
    // divergence in the dropped records.
    query.edns.present = true;
    query.edns.udp_payload = kEdnsResponderPayload;
    Status name_ok = ValidateWireName(query.qname);
    if (!name_ok.ok()) {
      replay.error = name_ok.message();
      issue->wire = std::move(replay);
      return;
    }
    replay.query_packet = EncodeWireQuery(query);
    Result<WireQuery> parsed = ParseWireQuery(replay.query_packet);
    if (!parsed.ok()) {
      replay.error = "query packet does not parse back: " + parsed.error();
      issue->wire = std::move(replay);
      return;
    }
    // Re-intern the parsed labels against a private copy of the zone's
    // interner: exact labels keep their exact codes, and synthesized labels
    // land strictly between the same interned neighbors as the model's code,
    // so the engine's relational label comparisons behave identically.
    Value wire_qname = QnameValue(parsed.value().qname, &replay_interner_);
    Value wire_qtype = Value::Int(static_cast<int64_t>(parsed.value().qtype));
    ExecOutcome engine_run =
        interp_.Run(engine_.resolve_fn(), {lifted_.image.apex_ptr, lifted_.image.origin_labels,
                                           wire_qname, wire_qtype});
    ExecOutcome spec_run =
        interp_.Run(engine_.rrlookup_fn(), {lifted_.image.zone_rrs, lifted_.image.origin_labels,
                                            wire_qname, wire_qtype});
    auto encode = [&](const ExecOutcome& run) -> Result<std::vector<uint8_t>> {
      ResponseView view;
      if (run.ok()) {
        view = DecodeResponse(run.return_value, memory_, replay_interner_, engine_.types());
      } else {
        view.rcode = Rcode::kServFail;  // a panic is served as SERVFAIL (dns_server)
      }
      return EncodeWireResponse(parsed.value(), view,
                                EffectivePayloadLimit(parsed.value().edns, kMaxUdpPayload));
    };
    Result<std::vector<uint8_t>> engine_packet = encode(engine_run);
    Result<std::vector<uint8_t>> spec_packet = encode(spec_run);
    if (!engine_packet.ok() || !spec_packet.ok()) {
      replay.error = StrCat("response packet does not encode: ",
                            engine_packet.ok() ? spec_packet.error() : engine_packet.error());
      issue->wire = std::move(replay);
      return;
    }
    WireQuery echoed;
    if (!ParseWireResponse(engine_packet.value(), &echoed).ok() ||
        !ParseWireResponse(spec_packet.value(), &echoed).ok()) {
      replay.error = "response packet does not parse back";
      issue->wire = std::move(replay);
      return;
    }
    replay.engine_packet = std::move(engine_packet).value();
    replay.spec_packet = std::move(spec_packet).value();
    replay.attempted = true;
    replay.reproduced = replay.engine_packet != replay.spec_packet;
    issue->wire = std::move(replay);
  }

  const CompiledEngine& engine_;
  const LiftedZone& lifted_;
  const TermArena& arena_;
  SymValue qname_, qtype_;
  ConcreteMemory memory_;
  Interpreter interp_;
  LabelInterner replay_interner_;
  VerificationReport* report_;
  int max_issues_;
  std::set<std::string> seen_;
  double seconds_ = 0;
};

StageStats MakeStage(const char* name, double seconds, int64_t checks = 0,
                     double solve_seconds = 0, bool from_cache = false) {
  StageStats stage;
  stage.stage = name;
  stage.seconds = seconds;
  stage.solver_checks = checks;
  stage.solve_seconds = solve_seconds;
  stage.from_cache = from_cache;
  return stage;
}

}  // namespace

std::shared_ptr<const CompiledEngine> VerifyContext::GetEngine(EngineVersion version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(version);
  if (it != engines_.end()) {
    ++stats_.engine_cache_hits;
    return it->second;
  }
  std::unique_ptr<CompiledEngine> compiled = CompiledEngine::Compile(version);
  compiled->Freeze();  // shared below; callers must see the frontend's exact output
  std::shared_ptr<const CompiledEngine> engine = std::move(compiled);
  ++stats_.engine_compiles;
  engines_.emplace(version, engine);
  return engine;
}

std::shared_ptr<const PrunedEngine> VerifyContext::GetPrunedEngine(EngineVersion version,
                                                                   bool interproc,
                                                                   ArtifactStore* store,
                                                                   bool replay_from_store) {
  std::pair<EngineVersion, bool> key{version, interproc};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pruned_engines_.find(key);
    if (it != pruned_engines_.end()) {
      ++stats_.prune_cache_hits;
      return it->second;
    }
  }
  // Compile + prune outside the lock. A private compilation, not the shared
  // GetEngine entry: PruneModule rewrites the module in place and the
  // unpruned cache must keep serving the frontend's exact output.
  auto pruned = std::make_shared<PrunedEngine>();
  double start = ElapsedSeconds();
  std::unique_ptr<CompiledEngine> fresh = CompiledEngine::Compile(version);
  pruned->compile_seconds = ElapsedSeconds() - start;

  uint64_t pre_fingerprint = 0;
  std::string interproc_key;
  if (store != nullptr) {
    pre_fingerprint = ModuleFingerprint(fresh->module());
    if (interproc) {
      interproc_key = InterprocKey(pre_fingerprint, EngineAnalysisRoots());
    }
  }

  // Runs the prune over the current `fresh` module. With a store and
  // `allow_replay`, the whole-module interprocedural passes are replaced by
  // the stored facts (a pure function of the pre-prune module, so replay is
  // sound whenever the fingerprint-addressed artifact parses); otherwise the
  // computed facts are captured and persisted for the next process.
  auto run_prune = [&](bool allow_replay) {
    PruneOptions prune_options;
    prune_options.interproc = interproc;
    InterprocContext replayed;
    InterprocContext captured;
    AnalysisStats restored;
    bool from_store = false;
    if (interproc) {
      prune_options.entry_points = EngineAnalysisRoots();
      if (allow_replay && store != nullptr) {
        if (std::optional<std::string> payload =
                store->Get(kInterprocArtifactKind, interproc_key)) {
          if (ParseInterprocContext(*payload, &replayed, &restored)) {
            prune_options.precomputed = &replayed;
            from_store = true;
          }
        }
      }
      if (!from_store && store != nullptr) {
        prune_options.capture = &captured;
      }
    }
    pruned->analysis = AnalysisStats{};
    pruned->stats = PruneModule(&fresh->mutable_module(), prune_options, &pruned->analysis);
    if (from_store) {
      // The replayed path skips the whole-module passes, so their outcome
      // counters come from the artifact; SCCP folds re-ran during pruning and
      // are already in pruned->analysis.
      pruned->analysis += restored;
    } else if (store != nullptr && interproc) {
      store->Put(kInterprocArtifactKind, interproc_key,
                 SerializeInterprocContext(captured, pruned->analysis));
    }
    pruned->summaries_from_store = from_store;
  };

  start = ElapsedSeconds();
  run_prune(replay_from_store);
  if (store != nullptr) {
    // Hash-stability cross-check: the post-prune fingerprint recorded by the
    // first (cold) prune of this exact pre-prune module must be reproduced.
    // A mismatch after a replayed prune means the stored facts steered the
    // rewrite differently — distrust them and recompute from scratch. A
    // mismatch on a cold prune can only be a stale record; overwrite it.
    uint64_t post_fingerprint = ModuleFingerprint(fresh->module());
    std::string prune_key = PruneCheckKey(pre_fingerprint, interproc);
    bool matched = false;
    bool have_record = false;
    if (std::optional<std::string> payload = store->Get(kPruneCheckKind, prune_key)) {
      ArtifactDecoder dec(*payload);
      dec.Tag("prune-check");
      uint64_t recorded = dec.U64();
      if (dec.ok() && dec.AtEnd()) {
        have_record = true;
        matched = recorded == post_fingerprint;
      }
    }
    if (have_record && !matched && pruned->summaries_from_store) {
      fresh = CompiledEngine::Compile(version);
      run_prune(/*allow_replay=*/false);
      post_fingerprint = ModuleFingerprint(fresh->module());
      matched = false;  // the record disagreed with a replay; rewrite it below
      have_record = false;
    }
    if (have_record && matched) {
      pruned->prune_fingerprint_checked = true;
    } else {
      ArtifactEncoder enc;
      enc.Tag("prune-check");
      enc.U64(post_fingerprint);
      store->Put(kPruneCheckKind, prune_key, enc.Take());
    }
  }
  pruned->prune_seconds = ElapsedSeconds() - start;
  fresh->Freeze();
  pruned->engine = std::shared_ptr<const CompiledEngine>(std::move(fresh));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = pruned_engines_.emplace(key, pruned);
  if (inserted) {
    ++stats_.engine_prunes;
  } else {
    ++stats_.prune_cache_hits;  // another thread pruned it first; use theirs
  }
  return it->second;
}

Result<std::shared_ptr<const LiftedZone>> VerifyContext::GetLiftedZone(EngineVersion version,
                                                                       const ZoneConfig& zone,
                                                                       bool pruned,
                                                                       bool interproc) {
  Result<ZoneConfig> canonical = CanonicalizeZone(zone);
  if (!canonical.ok()) {
    return Result<std::shared_ptr<const LiftedZone>>::Error(canonical.error());
  }
  const char* mode_key = !pruned ? "|" : (interproc ? "|pruned-interproc|" : "|pruned|");
  std::string key = StrCat(EngineVersionName(version), mode_key, canonical.value().ToText());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = zones_.find(key);
    if (it != zones_.end()) {
      ++stats_.zone_cache_hits;
      return it->second;
    }
  }
  // Build outside the lock: lifting is the expensive part and GetEngine
  // below takes the same mutex.
  std::shared_ptr<const CompiledEngine> engine =
      pruned ? GetPrunedEngine(version, interproc)->engine : GetEngine(version);
  auto lifted = std::make_shared<LiftedZone>();
  lifted->zone = std::move(canonical).value();
  lifted->image =
      BuildHeapImage(lifted->zone, &lifted->interner, engine->types(), &lifted->memory);
  lifted->max_owner_labels = MaxOwnerLabels(lifted->zone);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = zones_.emplace(key, lifted);
  if (inserted) {
    ++stats_.zone_lifts;
  } else {
    ++stats_.zone_cache_hits;  // another thread lifted it first; use theirs
  }
  return std::shared_ptr<const LiftedZone>(it->second);
}

VerifyContext::CacheStats VerifyContext::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

VerificationReport RunVerifyPipeline(VerifyContext* context, EngineVersion version,
                                     const ZoneConfig& zone,
                                     const VerifyOptions& caller_options) {
  VerifyOptions options = caller_options;
  // Store resolution first: an active store upgrades a kDirect layering to
  // the full cache+presolve stack (persistence with nothing to persist would
  // be pointless), but DNSV_SOLVER_FORCE is applied after and still wins.
  StoreBinding binding = ResolveStore(options);
  if (binding.active() && options.solver.layering == SolverLayering::kDirect) {
    options.solver.layering = SolverLayering::kCachePresolve;
  }
  // DNSV_SOLVER_FORCE lets CI and ad-hoc runs override the solver layering
  // without touching call sites (e.g. forcing shadow validation).
  options.solver = ApplySolverEnvOverride(options.solver);

  double start = ElapsedSeconds();

  // Content keys for this run. An invalid zone cannot be hashed; the store
  // is dropped and the lift stage reports the abort exactly as before.
  std::string zone_hash;
  std::string options_digest;
  std::string report_key;
  if (binding.active()) {
    Result<std::string> hashed = CanonicalZoneHashHex(zone);
    if (hashed.ok()) {
      zone_hash = hashed.value();
      options_digest = VerifyOptionsDigest(options);
      report_key = ReportKey(EngineSourceHashHex(version), zone_hash, options_digest);
    } else {
      binding = StoreBinding{};
    }
  }

  VerificationReport report;
  report.version = version;
  report.incremental.store_enabled = binding.active();

  QueryCache* query_cache =
      options.solver.cache != nullptr ? options.solver.cache : QueryCache::Global();
  if (binding.read_allowed() && options.solver.layering != SolverLayering::kDirect) {
    report.incremental.qcache_entries_loaded =
        EnsureQueryCacheLoaded(binding.store, query_cache);
  }

  // Janus-style replay: when the (sources, zone, options) key has a stored
  // report, nothing this run could compute differs from it — serve it
  // verbatim. A malformed or version-mismatched payload is a miss (the
  // corruption policy), and the run proceeds cold.
  if (binding.read_allowed()) {
    if (std::optional<std::string> stored =
            binding.store->Get(kReportArtifactKind, report_key)) {
      VerificationReport replayed;
      int64_t functions_total = 0;
      int64_t layers_total = 0;
      if (ParseReport(*stored, &replayed, &functions_total, &layers_total) &&
          replayed.version == version) {
        replayed.incremental = report.incremental;
        replayed.incremental.replayed = true;
        replayed.incremental.functions_total = functions_total;
        replayed.incremental.functions_reused = functions_total;
        replayed.incremental.layers_total = layers_total;
        replayed.incremental.layers_reused = layers_total;
        replayed.total_seconds = ElapsedSeconds() - start;
        return replayed;
      }
    }
  }

  // --- CompileStage (+ PruneStage when options.prune) ---
  VerifyContext::CacheStats stats_before = context->cache_stats();
  std::shared_ptr<const CompiledEngine> engine;
  if (options.prune) {
    std::shared_ptr<const PrunedEngine> pruned = context->GetPrunedEngine(
        version, options.prune_interproc, binding.store, binding.read_allowed());
    engine = pruned->engine;
    report.incremental.summaries_reused = pruned->summaries_from_store;
    report.incremental.prune_fingerprint_checked = pruned->prune_fingerprint_checked;
    VerifyContext::CacheStats stats_mid = context->cache_stats();
    bool cached = stats_mid.prune_cache_hits > stats_before.prune_cache_hits;
    report.stages.push_back(
        MakeStage("compile", cached ? 0 : pruned->compile_seconds, 0, 0, cached));
    StageStats prune_stage =
        MakeStage("prune", cached ? 0 : pruned->prune_seconds, 0, 0, cached);
    prune_stage.panics_discharged = pruned->stats.panics_discharged;
    prune_stage.paths_pruned = pruned->stats.PathsPruned();
    report.stages.push_back(prune_stage);
    report.pruned = true;
    report.panics_discharged = pruned->stats.panics_discharged;
    report.paths_pruned = pruned->stats.PathsPruned();
    report.analysis = pruned->analysis;
  } else {
    engine = context->GetEngine(version);
    VerifyContext::CacheStats stats_mid = context->cache_stats();
    report.stages.push_back(MakeStage(
        "compile", ElapsedSeconds() - start, 0, 0,
        stats_mid.engine_cache_hits > stats_before.engine_cache_hits));
  }

  // --- ZoneLiftStage ---
  VerifyContext::CacheStats stats_mid = context->cache_stats();
  double lift_start = ElapsedSeconds();
  Result<std::shared_ptr<const LiftedZone>> lifted_result =
      context->GetLiftedZone(version, zone, options.prune, options.prune_interproc);
  if (!lifted_result.ok()) {
    report.aborted = true;
    report.abort_reason = lifted_result.error();
    report.total_seconds = ElapsedSeconds() - start;
    return report;
  }
  std::shared_ptr<const LiftedZone> lifted = std::move(lifted_result).value();
  VerifyContext::CacheStats stats_after = context->cache_stats();
  report.stages.push_back(MakeStage(
      "lift", ElapsedSeconds() - lift_start, 0, 0,
      stats_after.zone_cache_hits > stats_mid.zone_cache_hits));

  // --- DiffStage (store only): structural hashes -> dirty set ---
  // Cone hashes over the module actually being explored, checked against the
  // store's per-function / per-layer exploration markers for this
  // (zone, options) pair. In incremental mode a marker hit means "this cone
  // was fully explored by an earlier run under identical conditions"; cold
  // and shadow modes treat everything as dirty by not reading. Markers for
  // shared library layers are keyed purely by content, so a warm run of one
  // version reuses the markers another version wrote.
  std::vector<std::pair<std::string, uint64_t>> function_cones;
  std::vector<std::pair<std::string, uint64_t>> layer_cones;
  if (binding.active()) {
    double diff_start = ElapsedSeconds();
    ModuleManifest manifest = BuildModuleManifest(engine->module());
    CallGraph graph = CallGraph::Build(engine->module());
    for (int node : graph.ReachableFrom(EngineAnalysisRoots())) {
      const std::string& name = graph.function(node).name();
      auto it = manifest.cone_hash.find(name);
      if (it != manifest.cone_hash.end()) {
        function_cones.emplace_back(name, it->second);
      }
    }
    std::sort(function_cones.begin(), function_cones.end());
    for (const LayerInfo& layer : EngineLayers(version)) {
      layer_cones.emplace_back(layer.name, CombineConeHashes(manifest, layer.functions));
    }
    IncrementalStats& inc = report.incremental;
    inc.functions_total = static_cast<int64_t>(function_cones.size());
    inc.layers_total = static_cast<int64_t>(layer_cones.size());
    for (const auto& [name, cone] : function_cones) {
      if (binding.read_allowed() &&
          binding.store->Contains(kFunctionMarkerKind,
                                  FunctionMarkerKey(cone, zone_hash, options_digest))) {
        ++inc.functions_reused;
      } else {
        inc.dirty_functions.push_back(name);
      }
    }
    for (const auto& [name, cone] : layer_cones) {
      if (binding.read_allowed() &&
          binding.store->Contains(kLayerMarkerKind,
                                  LayerMarkerKey(cone, zone_hash, options_digest))) {
        ++inc.layers_reused;
      } else {
        inc.dirty_layers.push_back(name);
      }
    }
    report.stages.push_back(MakeStage("diff", ElapsedSeconds() - diff_start));
  }

  // --- ExploreStage: engine and spec workers, serial or concurrent ---
  // Workers are fully isolated (private TermArena + SolverSession + lifted
  // heap), so the parallel schedule produces byte-identical results.
  bool spec_needed = !options.safety_only;
  ExploreResult engine_side;
  ExploreResult spec_side;
  report.explored_in_parallel = options.parallel_explore && spec_needed;
  if (report.explored_in_parallel) {
    std::thread spec_thread(
        [&] { spec_side = RunExploreWorker(*engine, *lifted, options, /*spec_side=*/true); });
    engine_side = RunExploreWorker(*engine, *lifted, options, /*spec_side=*/false);
    spec_thread.join();
  } else {
    engine_side = RunExploreWorker(*engine, *lifted, options, /*spec_side=*/false);
    if (spec_needed) {
      spec_side = RunExploreWorker(*engine, *lifted, options, /*spec_side=*/true);
    }
  }
  StageStats engine_stage = MakeStage("explore.engine", engine_side.seconds,
                                      engine_side.solver_checks, engine_side.solve_seconds);
  engine_stage.solver = engine_side.solver;
  report.stages.push_back(std::move(engine_stage));
  if (spec_needed) {
    StageStats spec_stage = MakeStage("explore.spec", spec_side.seconds,
                                      spec_side.solver_checks, spec_side.solve_seconds);
    spec_stage.solver = spec_side.solver;
    report.stages.push_back(std::move(spec_stage));
  }
  report.solver_checks = engine_side.solver_checks + spec_side.solver_checks;
  report.solve_seconds = engine_side.solve_seconds + spec_side.solve_seconds;
  report.solver += engine_side.solver;
  report.solver += spec_side.solver;
  report.summaries_computed = engine_side.summaries_computed + spec_side.summaries_computed;
  report.summary_applications =
      engine_side.summary_applications + spec_side.summary_applications;
  report.manual_specs_verified = engine_side.manual_specs_verified;
  report.spec_substitutions = engine_side.spec_substitutions + spec_side.spec_substitutions;
  if (engine_side.aborted || spec_side.aborted) {
    report.aborted = true;
    report.abort_reason =
        engine_side.aborted ? engine_side.abort_reason : spec_side.abort_reason;
    report.total_seconds = ElapsedSeconds() - start;
    return report;
  }
  report.engine_paths = static_cast<int64_t>(engine_side.paths.size());
  report.spec_paths = spec_needed ? static_cast<int64_t>(spec_side.paths.size()) : 0;

  // --- CompareStage ---
  // A fresh arena + solver; both workers' paths are imported into it with
  // their internal variables renamed apart and the shared inputs unified.
  double compare_start = ElapsedSeconds();
  TermArena arena;
  SolverSession solver(&arena, options.solver);
  int qname_capacity =
      static_cast<int>(lifted->max_owner_labels) + options.extra_qname_labels;
  SymbolicIntList qname =
      MakeSymbolicIntList(&arena, "qname", qname_capacity, LabelInterner::kWildcardCode,
                          lifted->interner.max_code());
  SymbolicInt qtype = MakeSymbolicInt(&arena, "qtype", 1, 255);
  solver.Assert(qname.constraints);
  solver.Assert(qtype.constraints);
  std::vector<ExploredPath> engine_paths = ImportPaths(engine_side, "eng", &arena);
  std::vector<ExploredPath> spec_paths = ImportPaths(spec_side, "spec", &arena);
  engine_side.arena.reset();
  spec_side.arena.reset();

  if (options.check_path_coverage) {
    // Full-path meta-check: the disjunction of path conditions covers the
    // input constraints, and no two paths overlap.
    std::vector<Term> pcs;
    pcs.reserve(engine_paths.size());
    for (const ExploredPath& path : engine_paths) {
      pcs.push_back(path.pc);
    }
    Term covered = arena.OrN(pcs);
    if (solver.CheckAssuming(arena.Not(covered)) != SatResult::kUnsat) {
      report.aborted = true;
      report.abort_reason = "full-path meta-check failed: inputs escape every path";
      report.total_seconds = ElapsedSeconds() - start;
      return report;
    }
    for (size_t i = 0; i < pcs.size(); ++i) {
      for (size_t j = i + 1; j < pcs.size(); ++j) {
        if (solver.CheckAssuming(arena.And(pcs[i], pcs[j])) != SatResult::kUnsat) {
          report.aborted = true;
          report.abort_reason =
              StrCat("full-path meta-check failed: paths ", i, " and ", j, " overlap");
          report.total_seconds = ElapsedSeconds() - start;
          return report;
        }
      }
    }
    report.path_coverage_checked = true;
  }

  Confirmer confirmer(*engine, *lifted, arena, qname.value, qtype.value, &report,
                      options.max_issues);

  // Safety: feasible engine paths into a panic block.
  for (const ExploredPath& engine_path : engine_paths) {
    if (confirmer.full()) break;
    if (engine_path.kind != PathOutcome::Kind::kPanicked) continue;
    if (solver.CheckAssuming(engine_path.pc) != SatResult::kSat) {
      continue;  // defensive; forks only take feasible sides
    }
    Model model = solver.GetModel();
    VerificationIssue issue;
    issue.kind = VerificationIssue::Kind::kSafety;
    issue.description = "reachable panic block: " + engine_path.panic_message;
    confirmer.Add(std::move(issue), &model);
  }

  // Safety on the specification side, then functional equivalence of every
  // compatible (engine path, spec path) pair.
  if (spec_needed) {
    for (const ExploredPath& spec_path : spec_paths) {
      if (confirmer.full()) break;
      if (spec_path.kind != PathOutcome::Kind::kPanicked) continue;
      VerificationIssue issue;
      issue.kind = VerificationIssue::Kind::kSafety;
      issue.description = "specification panics: " + spec_path.panic_message;
      if (solver.CheckAssuming(spec_path.pc) == SatResult::kSat) {
        Model model = solver.GetModel();
        confirmer.Add(std::move(issue), &model);
      } else {
        confirmer.Add(std::move(issue), nullptr);
      }
    }
    for (const ExploredPath& engine_path : engine_paths) {
      if (confirmer.full()) break;
      if (engine_path.kind != PathOutcome::Kind::kReturned) continue;
      for (const ExploredPath& spec_path : spec_paths) {
        if (confirmer.full()) break;
        if (spec_path.kind != PathOutcome::Kind::kReturned) continue;
        Term equal = SymValueEqTerm(engine_path.response, spec_path.response, &arena);
        Term mismatch = arena.AndN({engine_path.pc, spec_path.pc, arena.Not(equal)});
        if (solver.CheckAssuming(mismatch) == SatResult::kSat) {
          Model model = solver.GetModel();
          VerificationIssue issue;
          issue.kind = VerificationIssue::Kind::kFunctional;
          issue.description = "engine response differs from rrlookup specification";
          confirmer.Add(std::move(issue), &model);
        }
      }
    }
  }

  double compare_wall = ElapsedSeconds() - compare_start;
  StageStats compare_stage = MakeStage("compare", compare_wall - confirmer.seconds(),
                                       solver.num_checks(), solver.solve_seconds());
  compare_stage.solver = solver.stats();
  report.stages.push_back(std::move(compare_stage));
  report.stages.push_back(MakeStage("confirm", confirmer.seconds()));
  report.solver_checks += solver.num_checks();
  report.solve_seconds += solver.solve_seconds();
  report.solver += solver.stats();

  report.total_seconds = ElapsedSeconds() - start;
  report.verified = !report.aborted && report.issues.empty();

  // --- Store write-back (successful full runs only) ---
  if (binding.active() && !report.aborted) {
    // Shadow mode: before overwriting, assert this fresh run agrees byte for
    // byte (on the normalized text) with what an earlier run stored under
    // the same key — the end-to-end staleness gate for the whole store.
    if (binding.mode == StoreMode::kShadow) {
      if (std::optional<std::string> stored =
              binding.store->Get(kReportArtifactKind, report_key)) {
        VerificationReport prior;
        int64_t prior_functions = 0;
        int64_t prior_layers = 0;
        if (ParseReport(*stored, &prior, &prior_functions, &prior_layers)) {
          DNSV_CHECK_MSG(NormalizedReportText(prior) == NormalizedReportText(report),
                         StrCat("artifact-store shadow mismatch: stored report for ",
                                EngineVersionName(version),
                                " disagrees with a fresh verification"));
          report.incremental.shadow_checked = true;
        }
      }
    }
    // Every marker is (re)written — reused ones too, so a hit refreshes the
    // GC's LRU clock and an interrupted earlier run cannot leave holes.
    for (const auto& [name, cone] : function_cones) {
      ArtifactEncoder enc;
      enc.Tag("fnmark");
      enc.Str(name);
      enc.U64(cone);
      binding.store->Put(kFunctionMarkerKind,
                         FunctionMarkerKey(cone, zone_hash, options_digest), enc.Take());
    }
    for (const auto& [name, cone] : layer_cones) {
      ArtifactEncoder enc;
      enc.Tag("laymark");
      enc.Str(name);
      enc.U64(cone);
      binding.store->Put(kLayerMarkerKind,
                         LayerMarkerKey(cone, zone_hash, options_digest), enc.Take());
    }
    binding.store->Put(kReportArtifactKind, report_key,
                       SerializeReport(report, report.incremental.functions_total,
                                       report.incremental.layers_total));
    if (options.solver.layering != SolverLayering::kDirect) {
      FlushQueryCache(binding.store, query_cache);
    }
  }
  return report;
}

}  // namespace dnsv

#include "src/dnsv/layers.h"

#include "src/dns/heap.h"
#include "src/dnsv/verifier.h"
#include "src/engine/engine.h"
#include "src/sym/refine.h"
#include "src/sym/summary.h"
#include "src/support/strings.h"

namespace dnsv {

const char* LayerKindName(LayerKind kind) {
  switch (kind) {
    case LayerKind::kManualSpec:
      return "manual-spec";
    case LayerKind::kSummarized:
      return "summarized";
    case LayerKind::kTopLevel:
      return "top-level";
  }
  return "?";
}

std::vector<LayerInfo> EngineLayers(EngineVersion version) {
  std::vector<LayerInfo> layers = {
      {"Name", LayerKind::kManualSpec,
       {"nameEq", "nameIsSubdomain", "nameStrip", "nameCompare", "namePrefix", "nameChild"}},
      {"NodeStack", LayerKind::kManualSpec,
       {"newNodeStack", "pushNode", "topNode", "nodeAtDepth"}},
      {"RRSet", LayerKind::kManualSpec, {"hasType", "getRRs", "isEmptyNode"}},
      {"Response", LayerKind::kManualSpec,
       {"newResponse", "appendAll", "synthesizeRR", "setAuthoritative"}},
      {"TreeSearch", LayerKind::kSummarized, {"findChild", "treeSearch"}},
      {"Find", LayerKind::kSummarized, {"answerExact", "chaseCname"}},
      {"Wildcard", LayerKind::kSummarized, {"wildcardAnswer"}},
  };
  if (EngineHasGlue(version)) {
    layers.push_back({"Additional", LayerKind::kSummarized, {"addAdditional"}});
  }
  layers.push_back({"Resolve", LayerKind::kTopLevel, {"resolve"}});
  return layers;
}

namespace {

// Per-measurement symbolic session on top of the pipeline's shared immutable
// state (compiled engine + lifted zone). The arena/solver/summarizer are
// private to this measurement, mirroring the ExploreStage worker isolation
// rule: shared state is read-only, every session owns its solver.
struct LayerContext {
  std::shared_ptr<const CompiledEngine> engine;
  std::shared_ptr<const LiftedZone> lifted;
  std::unique_ptr<TermArena> arena;
  std::unique_ptr<SolverSession> solver;
  SymMemory base_memory;
  SymValue apex, origin, zone_rrs;
  int qname_capacity = 4;
  std::unique_ptr<Summarizer> summarizer;

  SymbolicIntList FreshList(const std::string& name, int capacity) {
    SymbolicIntList list =
        MakeSymbolicIntList(arena.get(), name, capacity, LabelInterner::kWildcardCode,
                            lifted->interner.max_code());
    solver->Assert(list.constraints);
    return list;
  }
  SymbolicInt FreshInt(const std::string& name, int64_t lo, int64_t hi) {
    SymbolicInt value = MakeSymbolicInt(arena.get(), name, lo, hi);
    solver->Assert(value.constraints);
    return value;
  }
};

std::unique_ptr<LayerContext> MakeContext(VerifyContext* verify_context, EngineVersion version,
                                          const ZoneConfig& zone) {
  auto ctx = std::make_unique<LayerContext>();
  ctx->engine = verify_context->GetEngine(version);
  ctx->lifted = verify_context->GetLiftedZone(version, zone).value();
  ctx->arena = std::make_unique<TermArena>();
  ctx->solver = std::make_unique<SolverSession>(ctx->arena.get());
  ctx->base_memory = LiftMemory(ctx->lifted->memory, ctx->arena.get());
  ctx->apex = LiftValue(ctx->lifted->image.apex_ptr, ctx->arena.get());
  ctx->origin = LiftValue(ctx->lifted->image.origin_labels, ctx->arena.get());
  ctx->zone_rrs = LiftValue(ctx->lifted->image.zone_rrs, ctx->arena.get());
  ctx->qname_capacity = static_cast<int>(ctx->lifted->max_owner_labels) + 1;
  ctx->summarizer = std::make_unique<Summarizer>(
      &ctx->engine->module(), ctx->arena.get(), ctx->solver.get(), ctx->base_memory,
      ctx->qname_capacity, ctx->lifted->interner.max_code());
  for (FunctionInterface& interface_config : ResolutionLayerInterfaces()) {
    ctx->summarizer->Configure(std::move(interface_config));
  }
  // addAdditional / chaseCname interfaces (concrete record arguments).
  using M = ParamMode;
  ctx->summarizer->Configure(
      {"addAdditional", {M::kConcrete, M::kConcrete, M::kOutStruct, M::kConcrete}});
  return ctx;
}

// Explores `fn` with the given args, adding time/paths to `timing`.
void ExploreInto(LayerContext* ctx, const std::string& fn, const std::vector<SymValue>& args,
                 LayerTiming* timing) {
  const Function* function = ctx->engine->module().GetFunction(fn);
  if (function == nullptr) {
    return;
  }
  double start = ElapsedSeconds();
  double solve_before = ctx->solver->solve_seconds();
  SymExecutor executor(&ctx->engine->module(), ctx->arena.get(), ctx->solver.get());
  SymState state;
  state.memory = ctx->base_memory;
  state.pc = ctx->arena->True();
  try {
    std::vector<PathOutcome> outcomes = executor.Explore(*function, args, std::move(state));
    timing->paths += static_cast<int64_t>(outcomes.size());
  } catch (const DnsvError& e) {
    timing->ok = false;
    timing->note += StrCat(fn, ": ", e.what(), "; ");
  }
  timing->seconds += ElapsedSeconds() - start;
  timing->solve_seconds += ctx->solver->solve_seconds() - solve_before;
}

// Summarizes `fn` for the given concrete arguments.
void SummarizeInto(LayerContext* ctx, const std::string& fn,
                   const std::vector<SymValue>& args, LayerTiming* timing) {
  if (ctx->engine->module().GetFunction(fn) == nullptr) {
    return;
  }
  double start = ElapsedSeconds();
  double solve_before = ctx->solver->solve_seconds();
  const FunctionSummary* summary = ctx->summarizer->GetOrCompute(fn, args);
  timing->seconds += ElapsedSeconds() - start;
  timing->solve_seconds += ctx->solver->solve_seconds() - solve_before;
  if (summary == nullptr) {
    timing->ok = false;
    timing->note += fn + ": summarization declined; ";
  } else {
    timing->paths += static_cast<int64_t>(summary->entries.size());
  }
}

// All tree node pointers (blocks 1..num_tree_nodes are TreeNode blocks).
std::vector<SymValue> TreeNodePtrs(const LayerContext& ctx) {
  std::vector<SymValue> nodes;
  for (int b = 1; b <= ctx.lifted->image.num_tree_nodes; ++b) {
    nodes.push_back(SymValue::Ptr(static_cast<BlockIndex>(b)));
  }
  return nodes;
}

}  // namespace

LayerMeasurement MeasureLayers(VerifyContext* verify_context, EngineVersion version,
                               const ZoneConfig& zone) {
  std::unique_ptr<LayerContext> ctx = MakeContext(verify_context, version, zone);
  TermArena& arena = *ctx->arena;
  LayerMeasurement measurement;

  for (const LayerInfo& layer : EngineLayers(version)) {
    LayerTiming timing;
    timing.layer = layer.name;
    timing.kind = layer.kind;
    int64_t checks_before = ctx->solver->num_checks();

    if (layer.name == "Name") {
      int cap = ctx->qname_capacity;
      SymbolicIntList a = ctx->FreshList("L.a", cap);
      SymbolicIntList b = ctx->FreshList("L.b", 3);
      SymbolicInt k = ctx->FreshInt("L.k", 0, cap);
      ExploreInto(ctx.get(), "nameEq", {a.value, b.value}, &timing);
      ExploreInto(ctx.get(), "nameIsSubdomain", {a.value, ctx->origin}, &timing);
      ExploreInto(ctx.get(), "nameStrip", {a.value, ctx->origin}, &timing);
      ExploreInto(ctx.get(), "nameCompare", {a.value, b.value}, &timing);
      ExploreInto(ctx.get(), "namePrefix", {a.value, k.value}, &timing);
      ExploreInto(ctx.get(), "nameChild", {a.value, k.value}, &timing);
    } else if (layer.name == "NodeStack") {
      ExploreInto(ctx.get(), "newNodeStack", {}, &timing);
      // A concrete two-entry stack with a symbolic probe depth.
      SymState probe_state;
      probe_state.memory = ctx->base_memory;
      SymValue stack = SymValue::Struct(
          {SymValue::List({ctx->apex, ctx->apex}, &arena), SymValue::OfTerm(arena.IntConst(2))});
      BlockIndex stack_block = probe_state.memory.Alloc(stack);
      SymbolicInt depth = ctx->FreshInt("L.depth", -1, 3);
      for (const char* fn : {"topNode", "nodeAtDepth", "pushNode"}) {
        const Function* function = ctx->engine->module().GetFunction(fn);
        if (function == nullptr) {
          continue;
        }
        double start = ElapsedSeconds();
        double solve_before = ctx->solver->solve_seconds();
        SymExecutor executor(&ctx->engine->module(), ctx->arena.get(), ctx->solver.get());
        std::vector<SymValue> args = {SymValue::Ptr(stack_block)};
        if (std::string(fn) == "nodeAtDepth") {
          args.push_back(depth.value);
        } else if (std::string(fn) == "pushNode") {
          args.push_back(ctx->apex);
        }
        try {
          SymState st = probe_state;
          st.pc = arena.True();
          timing.paths +=
              static_cast<int64_t>(executor.Explore(*function, args, std::move(st)).size());
        } catch (const DnsvError& e) {
          timing.ok = false;
          timing.note += StrCat(fn, ": ", e.what(), "; ");
        }
        timing.seconds += ElapsedSeconds() - start;
        timing.solve_seconds += ctx->solver->solve_seconds() - solve_before;
      }
    } else if (layer.name == "RRSet") {
      SymbolicInt rtype = ctx->FreshInt("L.rtype", 1, 255);
      for (const SymValue& node : TreeNodePtrs(*ctx)) {
        ExploreInto(ctx.get(), "hasType", {node, rtype.value}, &timing);
        ExploreInto(ctx.get(), "getRRs", {node, rtype.value}, &timing);
        ExploreInto(ctx.get(), "isEmptyNode", {node}, &timing);
      }
    } else if (layer.name == "Response") {
      ExploreInto(ctx.get(), "newResponse", {}, &timing);
      SymbolicIntList qn = ctx->FreshList("L.qn", 3);
      if (!ctx->zone_rrs.elems.empty()) {
        SymValue rr = ctx->zone_rrs.elems[0];
        ExploreInto(ctx.get(), "synthesizeRR", {rr, qn.value}, &timing);
        SymValue rr_list = SymValue::List({rr}, &arena);
        ExploreInto(ctx.get(), "appendAll", {rr_list, rr_list}, &timing);
      }
    } else if (layer.name == "TreeSearch") {
      SymbolicInt label = ctx->FreshInt("L.label", 1, ctx->lifted->interner.max_code());
      const SymValue* apex_node = ctx->base_memory.Resolve(ctx->apex.block, {});
      StructLayout node_layout(ctx->engine->types(), kStructTreeNode);
      ExploreInto(ctx.get(), "findChild",
                  {apex_node->elems[node_layout.index("down")], label.value}, &timing);
      // Summaries of treeSearch, both delegation modes.
      SymbolicIntList rel = ctx->FreshList("L.rel", ctx->qname_capacity - 2);
      SymValue out = SymValue::NullPtr();   // placeholder; summarizer builds its own
      SymValue stack = SymValue::NullPtr();
      for (bool stop_at_ns : {true, false}) {
        SummarizeInto(ctx.get(), "treeSearch",
                      {ctx->apex, rel.value, SymValue::OfTerm(arena.BoolConst(stop_at_ns)),
                       out, stack},
                      &timing);
      }
    } else if (layer.name == "Find") {
      SymbolicIntList qn = ctx->FreshList("L.fq", ctx->qname_capacity);
      SymbolicInt qt = ctx->FreshInt("L.ft", 1, 255);
      for (const SymValue& node : TreeNodePtrs(*ctx)) {
        SummarizeInto(ctx.get(), "answerExact",
                      {ctx->apex, ctx->origin, node, qn.value, qt.value, SymValue::NullPtr()},
                      &timing);
      }
    } else if (layer.name == "Wildcard") {
      SymbolicIntList qn = ctx->FreshList("L.wq", ctx->qname_capacity);
      SymbolicInt qt = ctx->FreshInt("L.wt", 1, 255);
      for (const SymValue& node : TreeNodePtrs(*ctx)) {
        SummarizeInto(ctx.get(), "wildcardAnswer",
                      {ctx->apex, ctx->origin, node, qn.value, qt.value, SymValue::NullPtr()},
                      &timing);
      }
    } else if (layer.name == "Additional") {
      // Glue for the apex NS set — the canonical referral workload.
      StructLayout rr_layout(ctx->engine->types(), kStructRr);
      std::vector<SymValue> ns_rrs;
      for (const SymValue& rr : ctx->zone_rrs.elems) {
        int64_t rtype = 0;
        if (arena.AsIntConst(rr.elems[rr_layout.index("rtype")].term, &rtype) &&
            rtype == static_cast<int64_t>(RrType::kNs)) {
          ns_rrs.push_back(rr);
        }
      }
      SummarizeInto(ctx.get(), "addAdditional",
                    {ctx->apex, ctx->origin, SymValue::NullPtr(),
                     SymValue::List(ns_rrs, &arena)},
                    &timing);
    } else if (layer.name == "Resolve") {
      // The whole-engine check is a full pipeline run; it reuses the already
      // compiled engine and lifted zone through the shared context.
      double start = ElapsedSeconds();
      VerifyOptions options;
      options.use_summaries = true;
      options.max_issues = 1;
      VerificationReport report =
          RunVerifyPipeline(verify_context, version, ctx->lifted->zone, options);
      timing.seconds += ElapsedSeconds() - start;
      timing.solve_seconds += report.solve_seconds;
      timing.solver_checks += report.solver_checks;
      timing.paths += report.engine_paths + report.spec_paths;
      if (report.aborted) {
        timing.ok = false;
        timing.note += report.abort_reason;
      }
      measurement.resolve_report = std::move(report);
    }

    timing.solver_checks += ctx->solver->num_checks() - checks_before;
    measurement.rows.push_back(std::move(timing));
  }
  return measurement;
}

std::vector<LayerTiming> MeasureLayerTimes(EngineVersion version, const ZoneConfig& zone) {
  VerifyContext context;
  return MeasureLayers(&context, version, zone).rows;
}

}  // namespace dnsv

// The pipeline's store-facing side: content keys, report serialization, and
// the normalized digest that defines "byte-identical reports".
//
// Key discipline (docs/INCREMENTAL.md): every key spells out the schema
// version plus hashes of everything the artifact's content depends on —
//
//   report     src-hash(version sources) + zone hash + options digest
//   fnmark     function cone hash + zone hash + options digest
//   laymark    layer cone hash + zone hash + options digest
//   interproc  pre-prune ModuleFingerprint + analysis-roots hash
//   prune      pre-prune ModuleFingerprint (+ mode); payload holds the
//              post-prune fingerprint, cross-checked on warm runs
//
// so a changed engine source, zone, option set, or serialization schema can
// only ever miss. Replaying a hit is sound because the keyed inputs
// determine the artifact's content byte for byte (the pipeline is
// deterministic by construction; tests/dnsv/incremental_test.cc and the
// shadow mode enforce it).
#ifndef DNSV_DNSV_INCREMENTAL_H_
#define DNSV_DNSV_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dnsv/verifier.h"
#include "src/store/hash.h"
#include "src/store/store.h"

namespace dnsv {

class QueryCache;

// Artifact kinds (subdirectories of the store root).
inline constexpr char kReportArtifactKind[] = "report";
inline constexpr char kFunctionMarkerKind[] = "fnmark";
inline constexpr char kLayerMarkerKind[] = "laymark";
inline constexpr char kInterprocArtifactKind[] = "interproc";
inline constexpr char kPruneCheckKind[] = "prune";

// Bump to invalidate every dnsv-owned artifact at once (serialization or
// semantics changes that the content hashes cannot see).
inline constexpr char kStoreSchemaVersion[] = "v1";

// The store + mode one pipeline run will use, after resolving defaults
// (VerifyOptions.store vs DNSV_STORE_DIR) and the DNSV_STORE_FORCE override.
struct StoreBinding {
  ArtifactStore* store = nullptr;
  StoreMode mode = StoreMode::kOff;

  bool active() const { return store != nullptr && mode != StoreMode::kOff; }
  // Whether stored reports may be replayed (shadow/cold recompute instead).
  bool read_allowed() const { return mode == StoreMode::kIncremental; }
};

StoreBinding ResolveStore(const VerifyOptions& options);

// Hash of the engine version's MiniGo source units — computable without
// compiling, which is what lets a warm report replay skip the frontend too.
std::string EngineSourceHashHex(EngineVersion version);

// Digest of every option that can change the report's content. Deliberately
// excludes parallel_explore (byte-identical by construction) and run-local
// solver plumbing that cannot alter verdicts (cache instance, shadow_fatal).
std::string VerifyOptionsDigest(const VerifyOptions& options);

// Hash of the canonicalized zone text; error when the zone is invalid.
Result<std::string> CanonicalZoneHashHex(const ZoneConfig& zone);

std::string ReportKey(const std::string& source_hash, const std::string& zone_hash,
                      const std::string& options_digest);
std::string FunctionMarkerKey(uint64_t cone_hash, const std::string& zone_hash,
                              const std::string& options_digest);
std::string LayerMarkerKey(uint64_t layer_cone_hash, const std::string& zone_hash,
                           const std::string& options_digest);
std::string InterprocKey(uint64_t module_fingerprint,
                         const std::vector<std::string>& entry_points);
std::string PruneCheckKey(uint64_t module_fingerprint, bool interproc);

// Full round-trip of a VerificationReport (issues, wire packets, stages,
// solver counters, analysis stats) plus the dirty-set totals the replayed
// IncrementalStats needs. Run-local fields (IncrementalStats itself) are not
// serialized.
std::string SerializeReport(const VerificationReport& report, int64_t functions_total,
                            int64_t layers_total);
bool ParseReport(const std::string& payload, VerificationReport* report,
                 int64_t* functions_total, int64_t* layers_total);

// The canonical text two equivalent runs must agree on byte for byte:
// verdict, issues (descriptions, counterexamples, classifications, wire
// packets), path counts, summary/spec/prune accounting, and analysis outcome
// counters. Wall-clock fields, cache provenance, and Z3-level check counts
// are excluded — they measure the run, not the result (a cache-warm run
// reaches Z3 less often while proving exactly the same facts).
std::string NormalizedReportText(const VerificationReport& report);

// Imports the store's persisted solver verdicts into `cache` once per
// (cache, store root); returns entries newly loaded (0 when already done).
int64_t EnsureQueryCacheLoaded(ArtifactStore* store, QueryCache* cache);

}  // namespace dnsv

#endif  // DNSV_DNSV_INCREMENTAL_H_

// High-level engine API: compile a version, load a zone, serve queries.
//
// This is the "product" surface a downstream user touches: it glues the
// MiniGo frontend, the control plane, and the interpreter into an
// authoritative server for one zone. The verifier (src/dnsv) works on the
// same CompiledEngine.
#ifndef DNSV_ENGINE_ENGINE_H_
#define DNSV_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/dns/heap.h"
#include "src/dns/name.h"
#include "src/dns/zone.h"
#include "src/engine/sources/sources.h"
#include "src/frontend/frontend.h"
#include "src/exec/backend.h"
#include "src/interp/interp.h"
#include "src/ir/function.h"
#include "src/support/logging.h"

namespace dnsv {

// One compiled engine version: its AbsIR module plus the shared type table.
// Immutable once shared (see Freeze below), so a single instance can be used
// across threads and verification runs.
class CompiledEngine {
 public:
  // Compiles `version` (engine + matching spec). Aborts on compile errors —
  // the embedded sources are part of this repository and must always build.
  static std::unique_ptr<CompiledEngine> Compile(EngineVersion version);

  // Process-wide cache: compiles `version` on first use, then returns the
  // shared instance. Thread-safe. Server startup and other "just give me the
  // engine" callers use this so they stop paying full recompilation.
  static std::shared_ptr<const CompiledEngine> GetCached(EngineVersion version);

  // Total Compile() calls in this process; lets tests assert compilation
  // reuse (N versions x M zones must compile exactly N times).
  static int64_t num_compiles();

  EngineVersion version() const { return version_; }
  const Module& module() const { return *module_; }
  const TypeTable& types() const { return *types_; }
  const Function& resolve_fn() const;
  const Function& rrlookup_fn() const;

  // Post-compile rewrites (the dataflow pruner, src/analysis) happen between
  // Compile() and the instance becoming shared; mutable access is gated on
  // that window. Freeze() ends it — afterwards mutable_module() aborts, which
  // is what makes the "immutable once shared" contract above enforceable
  // rather than aspirational. GetCached() freezes before publishing.
  Module& mutable_module() {
    DNSV_CHECK_MSG(!frozen_, "CompiledEngine mutated after Freeze()");
    return *module_;
  }
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

 private:
  CompiledEngine() = default;
  EngineVersion version_ = EngineVersion::kGolden;
  bool frozen_ = false;
  std::unique_ptr<TypeTable> types_;
  std::unique_ptr<Module> module_;
};

struct QueryResult {
  bool panicked = false;
  std::string panic_message;
  ResponseView response;
};

// A loaded authoritative zone served by one engine version. Runs queries
// through a pluggable ExecutionBackend (src/exec) — both via the engine's
// Resolve and via the executable specification (for differential testing).
// The default backend is the reference interpreter; kCompiled swaps in the
// AOT-generated native code for the same version.
class AuthoritativeServer {
 public:
  // `zone` is canonicalized internally; fails on invalid zones, or when
  // `backend` is kCompiled and this binary carries no generated code for
  // `version`.
  static Result<std::unique_ptr<AuthoritativeServer>> Create(
      EngineVersion version, const ZoneConfig& zone,
      BackendKind backend = BackendKind::kInterp);

  // Resolves qname/qtype through the engine implementation.
  QueryResult Query(const DnsName& qname, RrType qtype);
  // Resolves through the top-level specification (the oracle).
  QueryResult QuerySpec(const DnsName& qname, RrType qtype);

  const CompiledEngine& engine() const { return *engine_; }
  BackendKind backend_kind() const { return backend_kind_; }
  const ExecutionBackend& backend() const { return *backend_; }
  const ZoneConfig& zone() const { return zone_; }
  const LabelInterner& interner() const { return interner_; }
  LabelInterner& interner() { return interner_; }
  const HeapImage& heap_image() const { return image_; }
  ConcreteMemory& memory() { return memory_; }

 private:
  AuthoritativeServer() = default;
  QueryResult RunLookup(const Function& fn, std::vector<Value> args);

  std::shared_ptr<const CompiledEngine> engine_;
  BackendKind backend_kind_ = BackendKind::kInterp;
  std::unique_ptr<ExecutionBackend> backend_;
  ZoneConfig zone_;
  LabelInterner interner_;
  ConcreteMemory memory_;
  HeapImage image_;
  // Field layouts resolved once at Create; decoding runs once per query.
  std::unique_ptr<ResponseDecoder> decoder_;
};

}  // namespace dnsv

#endif  // DNSV_ENGINE_ENGINE_H_

// MiniGo source: the top-level specification (paper Fig. 9, following
// SCALE's rrlookup formalization). Unlike the engine, the spec never touches
// the domain tree: it computes the response by iterative filtering over the
// flat zone record list. It is executable — the differential tester runs it
// concretely, and the verifier executes it symbolically.
//
// The FEATURE_GLUE constant is the per-version spec adaptation from Table 3:
// v1.0 predates additional-section processing, so its spec disables glue.
#include "src/engine/sources/sources.h"

namespace dnsv {

const char kSpecFeatureGlueOn[] = "const FEATURE_GLUE = 1\n";
const char kSpecFeatureGlueOff[] = "const FEATURE_GLUE = 0\n";
const char kSpecFeatureNotImpOn[] = "const FEATURE_NOTIMP = 1\n";
const char kSpecFeatureNotImpOff[] = "const FEATURE_NOTIMP = 0\n";
const char kSpecFeatureEdnsOn[] = "const FEATURE_EDNS = 1\n";
const char kSpecFeatureEdnsOff[] = "const FEATURE_EDNS = 0\n";

const char kSpecRrlookupMg[] = R"mg(
// ---- rrlookup.mg: top-level specification of authoritative resolution ----

// True when some record owner sits at or below the name qname[0..k).
// (k == len(qname) asks "does qname exist as a node?", which deliberately
// includes empty non-terminals.)
func specPrefixExists(zone []RR, qname []int, k int) bool {
  for i := 0; i < len(zone); i = i + 1 {
    if len(zone[i].rname) >= k {
      ok := true
      for j := 0; j < k; j = j + 1 {
        if zone[i].rname[j] != qname[j] {
          ok = false
          break
        }
      }
      if ok {
        return true
      }
    }
  }
  return false
}

// Records with rname == owner and rtype == rtype, in canonical zone order.
func specFilter(zone []RR, owner []int, rtype int) []RR {
  out := make([]RR)
  for i := 0; i < len(zone); i = i + 1 {
    if zone[i].rtype == rtype {
      if nameEq(zone[i].rname, owner) {
        out = append(out, zone[i])
      }
    }
  }
  return out
}

// All records with rname == owner, any type, in canonical zone order.
func specFilterByName(zone []RR, owner []int) []RR {
  out := make([]RR)
  for i := 0; i < len(zone); i = i + 1 {
    if nameEq(zone[i].rname, owner) {
      out = append(out, zone[i])
    }
  }
  return out
}

// Length of the shallowest delegation owner (strictly below the apex) that
// covers qname, or 0 when qname is not under any delegation.
func specCutLen(zone []RR, origin []int, qname []int) int {
  best := 0
  for i := 0; i < len(zone); i = i + 1 {
    if zone[i].rtype == TYPE_NS {
      if len(zone[i].rname) > len(origin) {
        if nameIsSubdomain(qname, zone[i].rname) {
          if best == 0 || len(zone[i].rname) < best {
            best = len(zone[i].rname)
          }
        }
      }
    }
  }
  return best
}

// NS records whose owner is the ancestor of qname at depth cutLen.
func specNsAtCut(zone []RR, qname []int, cutLen int) []RR {
  out := make([]RR)
  for i := 0; i < len(zone); i = i + 1 {
    if zone[i].rtype == TYPE_NS {
      if len(zone[i].rname) == cutLen {
        if nameIsSubdomain(qname, zone[i].rname) {
          out = append(out, zone[i])
        }
      }
    }
  }
  return out
}

// Glue: for each NS/MX record, the in-zone A and AAAA records of its target.
func specAddGlue(zone []RR, origin []int, resp *Response, rrs []RR) {
  for i := 0; i < len(rrs); i = i + 1 {
    t := rrs[i].rtype
    if t == TYPE_NS || t == TYPE_MX {
      target := rrs[i].rdataName
      if nameIsSubdomain(target, origin) {
        resp.additional = appendAll(resp.additional, specFilter(zone, target, TYPE_A))
        resp.additional = appendAll(resp.additional, specFilter(zone, target, TYPE_AAAA))
      }
    }
  }
}

// CNAME chain inside the zone: stops at out-of-zone targets, delegations,
// missing names, or MAX_CNAME_CHASE links.
func specChase(zone []RR, origin []int, start RR, qtype int, resp *Response) {
  resp.answer = append(resp.answer, start)
  target := start.rdataName
  count := 0
  for count < MAX_CNAME_CHASE {
    if !nameIsSubdomain(target, origin) {
      return
    }
    if specCutLen(zone, origin, target) > 0 {
      return
    }
    rrs := specFilter(zone, target, qtype)
    if len(rrs) > 0 {
      resp.answer = appendAll(resp.answer, rrs)
      if FEATURE_GLUE == 1 {
        specAddGlue(zone, origin, resp, rrs)
      }
      return
    }
    next := specFilter(zone, target, TYPE_CNAME)
    if len(next) == 0 {
      return
    }
    resp.answer = append(resp.answer, next[0])
    target = next[0].rdataName
    count = count + 1
  }
}

// Positive resolution at an existing owner name. When synthesize is true the
// records come from a wildcard owner and are rewritten to qname.
func specAnswerAt(zone []RR, origin []int, owner []int, qname []int, qtype int, synthesize bool, resp *Response) {
  resp.rcode = RCODE_NOERROR
  resp.flags = FLAG_AA
  if qtype == TYPE_ANY {
    all := specFilterByName(zone, owner)
    for i := 0; i < len(all); i = i + 1 {
      if synthesize {
        resp.answer = append(resp.answer, synthesizeRR(all[i], qname))
      } else {
        resp.answer = append(resp.answer, all[i])
      }
    }
    if len(resp.answer) == 0 {
      resp.authority = appendAll(resp.authority, specFilter(zone, origin, TYPE_SOA))
      return
    }
    if FEATURE_GLUE == 1 {
      specAddGlue(zone, origin, resp, resp.answer)
    }
    return
  }
  rrs := specFilter(zone, owner, qtype)
  if len(rrs) > 0 {
    syn := make([]RR)
    for i := 0; i < len(rrs); i = i + 1 {
      if synthesize {
        syn = append(syn, synthesizeRR(rrs[i], qname))
      } else {
        syn = append(syn, rrs[i])
      }
    }
    resp.answer = appendAll(resp.answer, syn)
    if FEATURE_GLUE == 1 {
      specAddGlue(zone, origin, resp, syn)
    }
    return
  }
  cnames := specFilter(zone, owner, TYPE_CNAME)
  if len(cnames) > 0 {
    if synthesize {
      specChase(zone, origin, synthesizeRR(cnames[0], qname), qtype, resp)
    } else {
      specChase(zone, origin, cnames[0], qtype, resp)
    }
    return
  }
  resp.authority = appendAll(resp.authority, specFilter(zone, origin, TYPE_SOA))
}

// rrlookup: the whole-program specification (paper Fig. 9). Takes the zone
// (a flat record list), the origin, and the query; returns the response the
// engine must produce.
func rrlookup(zone []RR, origin []int, qname []int, qtype int) *Response {
  resp := newResponse()
  // v5.0 spec adaptation (Table 3's O(10)-line per-version change): OPT is
  // EDNS additional-section metadata (RFC 6891), never a question type, so
  // qtype OPT is malformed once the engine implements EDNS.
  if FEATURE_EDNS == 1 {
    if qtype == TYPE_OPT {
      resp.rcode = RCODE_FORMERR
      return resp
    }
  }
  // v4.0 spec adaptation: meta query types are answered NOTIMP once the
  // engine implements the feature.
  if FEATURE_NOTIMP == 1 {
    if qtype >= TYPE_META_FIRST && qtype <= TYPE_META_LAST {
      resp.rcode = RCODE_NOTIMP
      return resp
    }
  }
  if !nameIsSubdomain(qname, origin) {
    resp.rcode = RCODE_REFUSED
    return resp
  }
  cutLen := specCutLen(zone, origin, qname)
  if cutLen > 0 {
    resp.rcode = RCODE_NOERROR
    resp.authority = appendAll(resp.authority, specNsAtCut(zone, qname, cutLen))
    if FEATURE_GLUE == 1 {
      specAddGlue(zone, origin, resp, resp.authority)
    }
    return resp
  }
  if specPrefixExists(zone, qname, len(qname)) {
    specAnswerAt(zone, origin, qname, qname, qtype, false, resp)
    return resp
  }
  // Closest encloser: deepest existing ancestor of qname (at worst the apex).
  k := len(qname) - 1
  for k > len(origin) {
    if specPrefixExists(zone, qname, k) {
      break
    }
    k = k - 1
  }
  // Source of synthesis: the wildcard child of the closest encloser.
  wcOwner := namePrefix(qname, k)
  wcOwner = append(wcOwner, LABEL_STAR)
  if specPrefixExists(zone, wcOwner, len(wcOwner)) {
    specAnswerAt(zone, origin, wcOwner, qname, qtype, true, resp)
    return resp
  }
  resp.rcode = RCODE_NXDOMAIN
  resp.flags = FLAG_AA
  resp.authority = appendAll(resp.authority, specFilter(zone, origin, TYPE_SOA))
  return resp
}
)mg";

}  // namespace dnsv

// Embedded MiniGo sources for the DNS authoritative engine, its stable
// library modules, and the specifications.
//
// The engine exists in seven versions: five mirroring the paper's Table 2,
// plus two post-repair iterations landed through the §7 porting workflow:
//   v1.0    — base version (bugs #1 #2 #3)
//   v2.0    — adds delegation glue / additional-section processing (#4-#7)
//   v3.0    — fixes v2 bugs, adds an ENT fast path (bug #8)
//   dev     — iteration after v3.0: attempted fix for #8 (#8 remains, adds #9)
//   golden  — the fully repaired engine; verifies clean against the spec
//   v4.0    — golden + NOTIMP for meta query types; verifies clean
//   v5.0    — v4.0 + EDNS(0): qtype OPT answered FORMERR; verifies clean
#ifndef DNSV_ENGINE_SOURCES_SOURCES_H_
#define DNSV_ENGINE_SOURCES_SOURCES_H_

#include <string>
#include <utility>
#include <vector>

namespace dnsv {

// Shared, version-stable modules (the paper's yellow layers).
extern const char kEngineTypesMg[];      // struct + constant declarations
extern const char kEngineNameMg[];       // Name: comparison & subtraction
extern const char kEngineNodeStackMg[];  // NodeStack
extern const char kEngineRrsetMg[];      // RRSet lookups
extern const char kEngineResponseMg[];   // Response helpers
extern const char kEngineNameSpecMg[];   // manual spec for the Name layer (Fig. 6 left branch)

// Per-version resolution modules (the paper's blue layers).
extern const char kEngineResolveV1Mg[];
extern const char kEngineResolveV2Mg[];
extern const char kEngineResolveV3Mg[];
extern const char kEngineResolveDevMg[];
extern const char kEngineResolveGoldenMg[];
extern const char kEngineResolveV4Mg[];
extern const char kEngineResolveV5Mg[];

// Byte-level compareRaw (paper Fig. 4) and its abstract counterpart
// compareAbs (Fig. 10), used by the refinement case study.
extern const char kEngineCompareRawMg[];

// Top-level specification (paper Fig. 9): rrlookup over the flat zone list.
// Compile with kSpecFeatureGlueOn / ...Off prepended (the per-version O(10)
// line spec adaptation from Table 3).
extern const char kSpecRrlookupMg[];
extern const char kSpecFeatureGlueOn[];
extern const char kSpecFeatureGlueOff[];
extern const char kSpecFeatureNotImpOn[];
extern const char kSpecFeatureNotImpOff[];
extern const char kSpecFeatureEdnsOn[];
extern const char kSpecFeatureEdnsOff[];

enum class EngineVersion { kV1, kV2, kV3, kDev, kGolden, kV4, kV5 };

const char* EngineVersionName(EngineVersion version);

// All versions, in release order.
std::vector<EngineVersion> AllEngineVersions();

// (file name, source) units that compile `version` of the engine together
// with its matching top-level specification.
std::vector<std::pair<std::string, std::string>> EngineSources(EngineVersion version);

// True when this engine version performs additional-section (glue)
// processing; selects the matching spec feature flag.
bool EngineHasGlue(EngineVersion version);

// True when this engine version answers meta query types with NOTIMP
// (the v4.0 feature).
bool EngineHasNotImp(EngineVersion version);

// True when this engine version implements EDNS(0) qtype handling — a query
// asking FOR type OPT is answered FORMERR (the v5.0 feature).
bool EngineHasEdns(EngineVersion version);

// Functions external drivers invoke directly on a compiled engine module:
// the layer harness (MeasureLayers) explores each of these standalone with
// fully symbolic arguments, the verification pipeline enters resolve and
// rrlookup, and the manual Name-layer specs are compared as units. The
// interprocedural analyses must treat every one of them as an entry point —
// a function in this list never gets parameter facts inferred from its
// in-module call sites, because a driver may call it with arguments those
// sites never produce.
std::vector<std::string> EngineAnalysisRoots();

}  // namespace dnsv

#endif  // DNSV_ENGINE_SOURCES_SOURCES_H_

// MiniGo source: shared type declarations and constants ("types.mg").
//
// These declarations are the cross-language contract with the C++ control
// plane (src/dns/heap.cc resolves field indices by name against them) and
// stay identical across every engine version.
#include "src/engine/sources/sources.h"

namespace dnsv {

const char kEngineTypesMg[] = R"mg(
// ---- types.mg: data structures shared by the engine and its specification ----

// A resource record. rname holds interned labels in root-first order, e.g.
// www.example.com => [int("com"), int("example"), int("www")].
type RR struct {
  rname []int
  rtype int
  rdataInt int
  rdataName []int
}

// All records of one type at one domain-tree node.
type RRSet struct {
  rtype int
  rrs []RR
}

// One node of the in-heap domain tree: a binary search tree per level
// (left/right by label order) with down-links to the next level.
type TreeNode struct {
  label int
  left *TreeNode
  right *TreeNode
  down *TreeNode
  rrsets []RRSet
}

// A DNS response: rcode, header flags, and the three record sections.
type Response struct {
  rcode int
  flags int
  answer []RR
  authority []RR
  additional []RR
}

// Result of walking the domain tree for a query name.
type SearchResult struct {
  match int       // MATCH_EXACT or MATCH_PARTIAL (node = closest encloser)
  node *TreeNode
  depth int       // number of relative labels matched
  cut *TreeNode   // delegation node encountered on the way down, or nil
}

// Stack of visited nodes (paper Figs. 2/3): push encapsulates the write, but
// production code reads `level` directly — deliberately imperfect
// encapsulation, handled by the verifier's flexible memory model.
type NodeStack struct {
  nodes []*TreeNode
  level int
}

// RR type codes.
const TYPE_A = 1
const TYPE_NS = 2
const TYPE_CNAME = 5
const TYPE_SOA = 6
const TYPE_MX = 15
const TYPE_TXT = 16
const TYPE_AAAA = 28
const TYPE_ANY = 255

// Meta query types (zone transfers, legacy mail): IXFR..MAILA.
const TYPE_META_FIRST = 251
const TYPE_META_LAST = 254

// The EDNS OPT pseudo-type (RFC 6891). OPT is additional-section metadata,
// never a question: a query asking FOR type OPT is malformed (FORMERR).
const TYPE_OPT = 41

// Response codes.
const RCODE_NOERROR = 0
const RCODE_FORMERR = 1
const RCODE_NXDOMAIN = 3
const RCODE_NOTIMP = 4
const RCODE_REFUSED = 5

// Header flag bits.
const FLAG_AA = 1

// Name comparison results (paper Figs. 4/10).
const MATCH_NOMATCH = 0
const MATCH_EXACT = 1
const MATCH_PARTIAL = 2

// The interned code of the wildcard label "*" (fixed by the LabelInterner:
// '*' sorts before every other allowed label byte).
const LABEL_STAR = 2

// Longest CNAME chain the engine follows inside one zone.
const MAX_CNAME_CHASE = 8
)mg";

}  // namespace dnsv

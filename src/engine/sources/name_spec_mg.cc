// MiniGo source: manually developed specification for the stable Name layer
// (paper §6.3, the left branch of Fig. 6).
//
// Specs are written in the spec dialect (abstract builtins allowed). The
// flagship abstraction: nameEq's label-by-label loop becomes a single listEq
// predicate — one solver term instead of one fork per label, which is what
// makes higher layers cheap to reason about (the Fig.-10 effect). DNS-V
// proves the spec equivalent to the implementation before substituting it
// (refinement, Fig. 1), so exploring higher layers against the spec is sound.
#include "src/engine/sources/sources.h"

namespace dnsv {

const char kEngineNameSpecMg[] = R"mg(
// ---- name_spec.mg: abstract specification for the Name layer ----

// Abstract form of nameEq: whole-list equality in one predicate instead of
// one branch per label.
func nameEqSpec(a []int, b []int) bool {
  return listEq(a, b)
}

// ---- domain-tree layer spec ----
// Abstract form of findChild: an order-blind exhaustive search. The
// refinement proof findChild == findChildSpec over a concrete heap is also a
// proof that the control plane built the per-level BSTs consistently with
// the label order (otherwise the BST walk would miss nodes the exhaustive
// search finds).
func findChildSpec(bst *TreeNode, label int) *TreeNode {
  if bst == nil {
    return nil
  }
  if bst.label == label {
    return bst
  }
  left := findChildSpec(bst.left, label)
  if left != nil {
    return left
  }
  return findChildSpec(bst.right, label)
}
)mg";

}  // namespace dnsv

// MiniGo sources: the stable library modules (paper Fig. 5, yellow boxes).
// These survive engine iterations unchanged and carry manually-written
// specifications (src/engine/specs.h).
#include "src/engine/sources/sources.h"

namespace dnsv {

const char kEngineNameMg[] = R"mg(
// ---- name.mg: domain-name operations over interned label lists ----
// A name is a []int of labels in root-first order. Comparison of labels is
// plain integer comparison thanks to the order-preserving interner (§6.3).

// True when the two names are identical.
func nameEq(a []int, b []int) bool {
  if len(a) != len(b) {
    return false
  }
  for i := 0; i < len(a); i = i + 1 {
    if a[i] != b[i] {
      return false
    }
  }
  return true
}

// True when `name` is equal to or below `zone` (zone is a root-first prefix).
func nameIsSubdomain(name []int, zone []int) bool {
  if len(zone) > len(name) {
    return false
  }
  for i := 0; i < len(zone); i = i + 1 {
    if name[i] != zone[i] {
      return false
    }
  }
  return true
}

// Name subtraction: the labels of `name` below `zone`, root-first.
// Callers must ensure nameIsSubdomain(name, zone).
func nameStrip(name []int, zone []int) []int {
  rel := make([]int)
  for i := len(zone); i < len(name); i = i + 1 {
    rel = append(rel, name[i])
  }
  return rel
}

// Three-way comparison of full names (abstract form of the paper's
// compareRaw, Fig. 10): EXACT when equal, PARTIAL when n1 is a proper
// subdomain of n2, NOMATCH otherwise.
func nameCompare(n1 []int, n2 []int) int {
  if len(n2) > len(n1) {
    return MATCH_NOMATCH
  }
  for i := 0; i < len(n2); i = i + 1 {
    if n1[i] != n2[i] {
      return MATCH_NOMATCH
    }
  }
  if len(n1) == len(n2) {
    return MATCH_EXACT
  }
  return MATCH_PARTIAL
}

// The first `k` labels of `name` — the ancestor at depth k.
func namePrefix(name []int, k int) []int {
  out := make([]int)
  for i := 0; i < k; i = i + 1 {
    out = append(out, name[i])
  }
  return out
}

// name with one more label appended below it.
func nameChild(name []int, label int) []int {
  out := make([]int)
  for i := 0; i < len(name); i = i + 1 {
    out = append(out, name[i])
  }
  out = append(out, label)
  return out
}
)mg";

const char kEngineNodeStackMg[] = R"mg(
// ---- nodestack.mg: the traversal stack (paper Figs. 2/3) ----
// push/top encapsulate their writes, but resolution code also reads `level`
// directly — the imperfect-encapsulation pattern the flexible memory model
// exists for.

func newNodeStack() *NodeStack {
  s := new(NodeStack)
  s.level = 0
  return s
}

func pushNode(s *NodeStack, n *TreeNode) {
  s.nodes = append(s.nodes, n)
  s.level = s.level + 1
}

// The most recently pushed node. Panics (index out of range) when empty —
// callers must check s.level first.
func topNode(s *NodeStack) *TreeNode {
  return s.nodes[s.level - 1]
}

// The node `k` entries below the top.
func nodeAtDepth(s *NodeStack, k int) *TreeNode {
  return s.nodes[k]
}
)mg";

const char kEngineRrsetMg[] = R"mg(
// ---- rrset.mg: record-set lookups on a tree node ----

// True when `node` owns at least one record of `rtype`.
func hasType(node *TreeNode, rtype int) bool {
  for i := 0; i < len(node.rrsets); i = i + 1 {
    if node.rrsets[i].rtype == rtype {
      return true
    }
  }
  return false
}

// All records of `rtype` at `node` (empty list when absent).
func getRRs(node *TreeNode, rtype int) []RR {
  for i := 0; i < len(node.rrsets); i = i + 1 {
    if node.rrsets[i].rtype == rtype {
      return node.rrsets[i].rrs
    }
  }
  return make([]RR)
}

// True when the node owns no records at all (an empty non-terminal).
func isEmptyNode(node *TreeNode) bool {
  return len(node.rrsets) == 0
}
)mg";

const char kEngineResponseMg[] = R"mg(
// ---- response.mg: Response and Section helpers ----

func newResponse() *Response {
  r := new(Response)
  r.rcode = RCODE_NOERROR
  r.flags = 0
  return r
}

// Appends every record of `src` to `dst` and returns the extended section.
func appendAll(dst []RR, src []RR) []RR {
  for i := 0; i < len(src); i = i + 1 {
    dst = append(dst, src[i])
  }
  return dst
}

// A copy of `rr` with its owner name replaced — wildcard synthesis makes a
// copy of the wildcard RR and substitutes the actual query name (§5.3).
func synthesizeRR(rr RR, qname []int) RR {
  var out RR
  out.rname = qname
  out.rtype = rr.rtype
  out.rdataInt = rr.rdataInt
  out.rdataName = rr.rdataName
  return out
}

func setAuthoritative(resp *Response) {
  resp.flags = FLAG_AA
}
)mg";

}  // namespace dnsv

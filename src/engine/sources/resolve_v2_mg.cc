// MiniGo source: engine v2.0 — adds additional-section (glue) processing and
// fixes the v1.0 bugs, but the new feature code ships its own (paper Table 2):
//   #4 Wrong Additional   — incomplete glue for certain queries (only the
//                           first NS/MX record is processed)
//   #5 Wrong Additional   — incomplete glue when handling wildcard
//                           (synthesized answers skip glue entirely)
//   #6 Wrong Answer/rcode — incorrect domain tree search for certain wildcard
//                           domains (wildcard only consulted when exactly one
//                           label is missing)
//   #7 Wrong Additional   — extraneous records in the additional section
//                           (SOA mname also treated as a glue target, and
//                           glue attached to negative authority sections)
#include "src/engine/sources/sources.h"

namespace dnsv {

const char kEngineResolveV2Mg[] = R"mg(
// ---- resolve.mg (v2.0) ----

func findChild(bst *TreeNode, label int) *TreeNode {
  cur := bst
  for cur != nil {
    if label == cur.label {
      return cur
    }
    if label < cur.label {
      cur = cur.left
    } else {
      cur = cur.right
    }
  }
  return nil
}

func treeSearch(apex *TreeNode, rel []int, stopAtNS bool, out *SearchResult, stack *NodeStack) {
  cur := apex
  depth := 0
  out.cut = nil
  pushNode(stack, cur)
  for depth < len(rel) {
    child := findChild(cur.down, rel[depth])
    if child == nil {
      out.match = MATCH_PARTIAL
      out.node = cur
      out.depth = depth
      return
    }
    cur = child
    depth = depth + 1
    pushNode(stack, cur)
    if stopAtNS && hasType(cur, TYPE_NS) {
      out.match = MATCH_PARTIAL
      out.node = cur
      out.depth = depth
      out.cut = cur
      return
    }
  }
  out.match = MATCH_EXACT
  out.node = cur
  out.depth = depth
}

// New in v2.0: glue processing.
func addAdditional(apex *TreeNode, origin []int, resp *Response, rrs []RR) {
  // BUG #4 (Wrong Additional): the loop bound was copy-pasted from a
  // single-record prototype — only rrs[0] ever gets glue.
  limit := len(rrs)
  if limit > 1 {
    limit = 1
  }
  for i := 0; i < limit; i = i + 1 {
    t := rrs[i].rtype
    // BUG #7 (Wrong Additional): SOA is not a glue-bearing type, but the
    // condition includes it, so negative answers pick up the SOA mname's
    // addresses.
    if t == TYPE_NS || t == TYPE_MX || t == TYPE_SOA {
      target := rrs[i].rdataName
      if nameIsSubdomain(target, origin) {
        relt := nameStrip(target, origin)
        sr := new(SearchResult)
        st := newNodeStack()
        treeSearch(apex, relt, false, sr, st)
        if sr.match == MATCH_EXACT {
          resp.additional = appendAll(resp.additional, getRRs(sr.node, TYPE_A))
          resp.additional = appendAll(resp.additional, getRRs(sr.node, TYPE_AAAA))
        }
      }
    }
  }
}

func chaseCname(apex *TreeNode, origin []int, start RR, qtype int, resp *Response) {
  resp.answer = append(resp.answer, start)
  target := start.rdataName
  count := 0
  for count < MAX_CNAME_CHASE {
    if !nameIsSubdomain(target, origin) {
      return
    }
    relt := nameStrip(target, origin)
    sr := new(SearchResult)
    st := newNodeStack()
    treeSearch(apex, relt, true, sr, st)
    if sr.cut != nil {
      return
    }
    if sr.match != MATCH_EXACT {
      return
    }
    rrs := getRRs(sr.node, qtype)
    if len(rrs) > 0 {
      resp.answer = appendAll(resp.answer, rrs)
      addAdditional(apex, origin, resp, rrs)
      return
    }
    next := getRRs(sr.node, TYPE_CNAME)
    if len(next) == 0 {
      return
    }
    resp.answer = append(resp.answer, next[0])
    target = next[0].rdataName
    count = count + 1
  }
}

func answerExact(apex *TreeNode, origin []int, node *TreeNode, qname []int, qtype int, resp *Response) {
  resp.rcode = RCODE_NOERROR
  setAuthoritative(resp)
  if qtype == TYPE_ANY {
    for i := 0; i < len(node.rrsets); i = i + 1 {
      resp.answer = appendAll(resp.answer, node.rrsets[i].rrs)
    }
    if len(resp.answer) == 0 {
      resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
      // BUG #7 continued: glue is (wrongly) attached to the negative
      // authority section too.
      addAdditional(apex, origin, resp, resp.authority)
      return
    }
    addAdditional(apex, origin, resp, resp.answer)
    return
  }
  rrs := getRRs(node, qtype)
  if len(rrs) > 0 {
    resp.answer = appendAll(resp.answer, rrs)
    addAdditional(apex, origin, resp, rrs)
    return
  }
  cnames := getRRs(node, TYPE_CNAME)
  if len(cnames) > 0 {
    chaseCname(apex, origin, cnames[0], qtype, resp)
    return
  }
  resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
  addAdditional(apex, origin, resp, resp.authority)
}

func wildcardAnswer(apex *TreeNode, origin []int, wc *TreeNode, qname []int, qtype int, resp *Response) {
  resp.rcode = RCODE_NOERROR
  setAuthoritative(resp)
  if qtype == TYPE_ANY {
    for i := 0; i < len(wc.rrsets); i = i + 1 {
      src := wc.rrsets[i].rrs
      for j := 0; j < len(src); j = j + 1 {
        resp.answer = append(resp.answer, synthesizeRR(src[j], qname))
      }
    }
    if len(resp.answer) == 0 {
      resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
    }
    // BUG #5 (Wrong Additional): no addAdditional on the wildcard path.
    return
  }
  rrs := getRRs(wc, qtype)
  if len(rrs) > 0 {
    for j := 0; j < len(rrs); j = j + 1 {
      resp.answer = append(resp.answer, synthesizeRR(rrs[j], qname))
    }
    // BUG #5 continued: synthesized MX/NS answers never get glue.
    return
  }
  cnames := getRRs(wc, TYPE_CNAME)
  if len(cnames) > 0 {
    chaseCname(apex, origin, synthesizeRR(cnames[0], qname), qtype, resp)
    return
  }
  resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
}

func resolve(apex *TreeNode, origin []int, qname []int, qtype int) *Response {
  resp := newResponse()
  if !nameIsSubdomain(qname, origin) {
    resp.rcode = RCODE_REFUSED
    return resp
  }
  rel := nameStrip(qname, origin)
  sr := new(SearchResult)
  stack := newNodeStack()
  treeSearch(apex, rel, true, sr, stack)
  if sr.cut != nil {
    resp.rcode = RCODE_NOERROR
    resp.authority = appendAll(resp.authority, getRRs(sr.cut, TYPE_NS))
    addAdditional(apex, origin, resp, resp.authority)
    return resp
  }
  if sr.match == MATCH_EXACT {
    answerExact(apex, origin, sr.node, qname, qtype, resp)
    return resp
  }
  // BUG #6 (Wrong Answer/rcode): the wildcard is consulted only when exactly
  // one label failed to match, so *.zone does not cover deeper names
  // (a.b.zone) and they fall through to NXDOMAIN.
  if sr.depth == len(rel) - 1 {
    wc := findChild(sr.node.down, LABEL_STAR)
    if wc != nil {
      wildcardAnswer(apex, origin, wc, qname, qtype, resp)
      return resp
    }
  }
  resp.rcode = RCODE_NXDOMAIN
  setAuthoritative(resp)
  resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
  return resp
}
)mg";

}  // namespace dnsv

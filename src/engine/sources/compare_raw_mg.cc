// MiniGo source: the byte-level domain-name comparison from paper Fig. 4 and
// its abstract specification from Fig. 10. This is the refinement case study:
// compareRaw works on raw name bytes (dots included, compared from the last
// position), compareAbs works on interned label lists; DNS-V proves them
// equivalent under the byte<->label abstraction so higher layers only ever
// reason about compareAbs.
#include "src/engine/sources/sources.h"

namespace dnsv {

const char kEngineCompareRawMg[] = R"mg(
// ---- compare_raw.mg (paper Figs. 4 and 10) ----

const RAW_NOMATCH = 0
const RAW_EXACTMATCH = 1
const RAW_PARTIALMATCH = 2
const DOT = 46

// Fig. 4: compares two names stored as raw bytes ("www.example.com"), byte by
// byte from the last position. Returns EXACT when equal, PARTIAL when one is
// a (label-aligned) suffix of the other, NOMATCH otherwise.
func compareRaw(n1 []int, n2 []int) int {
  i := len(n1) - 1
  j := len(n2) - 1
  for i >= 0 && j >= 0 {
    if n1[i] != n2[j] {
      return RAW_NOMATCH
    }
    i = i - 1
    j = j - 1
  }
  if i < 0 && j < 0 {
    return RAW_EXACTMATCH
  }
  if j < 0 {
    if n1[i] == DOT {
      return RAW_PARTIALMATCH
    }
    return RAW_NOMATCH
  }
  if n2[j] == DOT {
    return RAW_PARTIALMATCH
  }
  return RAW_NOMATCH
}

// Fig. 10: the abstract specification. Names are lists of label integers in
// reversed (root-first) order; the comparison is a handful of integer
// comparisons, which is what makes higher layers amenable to automated
// reasoning (§6.3).
func compareAbs(n1 []int, n2 []int) int {
  if len(n1) == 0 || len(n2) == 0 {
    if len(n1) == len(n2) {
      return RAW_EXACTMATCH
    }
    return RAW_PARTIALMATCH
  }
  if n1[0] != n2[0] {
    return RAW_NOMATCH
  }
  k := len(n1)
  if len(n2) < k {
    k = len(n2)
  }
  for i := 0; i < k; i = i + 1 {
    if n1[i] != n2[i] {
      return RAW_NOMATCH
    }
  }
  if len(n1) == len(n2) {
    return RAW_EXACTMATCH
  }
  return RAW_PARTIALMATCH
}
)mg";

}  // namespace dnsv

// MiniGo source: engine v1.0 — the base version (paper Table 2).
//
// Seeded bugs, verbatim from the paper's classification:
//   #1 Wrong Flag      — AA flag missing for certain authoritative answers
//                        (wildcard answers never set FLAG_AA)
//   #2 Wrong Authority — extraneous NS/SOA authority (positive answers carry
//                        the apex NS set in the authority section)
//   #3 Wrong Answer    — incorrect resource record matching on MX (MX
//                        answers also pull in the node's A records)
// v1.0 predates additional-section processing: no glue anywhere.
#include "src/engine/sources/sources.h"

namespace dnsv {

const char kEngineResolveV1Mg[] = R"mg(
// ---- resolve.mg (v1.0) ----

func findChild(bst *TreeNode, label int) *TreeNode {
  cur := bst
  for cur != nil {
    if label == cur.label {
      return cur
    }
    if label < cur.label {
      cur = cur.left
    } else {
      cur = cur.right
    }
  }
  return nil
}

func treeSearch(apex *TreeNode, rel []int, stopAtNS bool, out *SearchResult, stack *NodeStack) {
  cur := apex
  depth := 0
  out.cut = nil
  pushNode(stack, cur)
  for depth < len(rel) {
    child := findChild(cur.down, rel[depth])
    if child == nil {
      out.match = MATCH_PARTIAL
      out.node = cur
      out.depth = depth
      return
    }
    cur = child
    depth = depth + 1
    pushNode(stack, cur)
    if stopAtNS && hasType(cur, TYPE_NS) {
      out.match = MATCH_PARTIAL
      out.node = cur
      out.depth = depth
      out.cut = cur
      return
    }
  }
  out.match = MATCH_EXACT
  out.node = cur
  out.depth = depth
}

func chaseCname(apex *TreeNode, origin []int, start RR, qtype int, resp *Response) {
  resp.answer = append(resp.answer, start)
  target := start.rdataName
  count := 0
  for count < MAX_CNAME_CHASE {
    if !nameIsSubdomain(target, origin) {
      return
    }
    relt := nameStrip(target, origin)
    sr := new(SearchResult)
    st := newNodeStack()
    treeSearch(apex, relt, true, sr, st)
    if sr.cut != nil {
      return
    }
    if sr.match != MATCH_EXACT {
      return
    }
    rrs := getRRs(sr.node, qtype)
    if len(rrs) > 0 {
      resp.answer = appendAll(resp.answer, rrs)
      return
    }
    next := getRRs(sr.node, TYPE_CNAME)
    if len(next) == 0 {
      return
    }
    resp.answer = append(resp.answer, next[0])
    target = next[0].rdataName
    count = count + 1
  }
}

func answerExact(apex *TreeNode, origin []int, node *TreeNode, qname []int, qtype int, resp *Response) {
  resp.rcode = RCODE_NOERROR
  setAuthoritative(resp)
  if qtype == TYPE_ANY {
    for i := 0; i < len(node.rrsets); i = i + 1 {
      resp.answer = appendAll(resp.answer, node.rrsets[i].rrs)
    }
    if len(resp.answer) == 0 {
      resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
      return
    }
    // BUG #2 (Wrong Authority): legacy code decorates every positive answer
    // with the zone's NS set.
    resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_NS))
    return
  }
  rrs := getRRs(node, qtype)
  if len(rrs) > 0 {
    resp.answer = appendAll(resp.answer, rrs)
    if qtype == TYPE_MX {
      // BUG #3 (Wrong Answer): an old inline-"glue" hack appends the node's
      // own A records to MX answers.
      resp.answer = appendAll(resp.answer, getRRs(node, TYPE_A))
    }
    // BUG #2 again: extraneous NS authority on positive answers.
    resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_NS))
    return
  }
  cnames := getRRs(node, TYPE_CNAME)
  if len(cnames) > 0 {
    chaseCname(apex, origin, cnames[0], qtype, resp)
    return
  }
  resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
}

func wildcardAnswer(apex *TreeNode, origin []int, wc *TreeNode, qname []int, qtype int, resp *Response) {
  resp.rcode = RCODE_NOERROR
  // BUG #1 (Wrong Flag): missing setAuthoritative(resp) — wildcard answers
  // go out without the AA bit.
  if qtype == TYPE_ANY {
    for i := 0; i < len(wc.rrsets); i = i + 1 {
      src := wc.rrsets[i].rrs
      for j := 0; j < len(src); j = j + 1 {
        resp.answer = append(resp.answer, synthesizeRR(src[j], qname))
      }
    }
    if len(resp.answer) == 0 {
      setAuthoritative(resp)
      resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
    }
    return
  }
  rrs := getRRs(wc, qtype)
  if len(rrs) > 0 {
    for j := 0; j < len(rrs); j = j + 1 {
      resp.answer = append(resp.answer, synthesizeRR(rrs[j], qname))
    }
    return
  }
  cnames := getRRs(wc, TYPE_CNAME)
  if len(cnames) > 0 {
    chaseCname(apex, origin, synthesizeRR(cnames[0], qname), qtype, resp)
    return
  }
  setAuthoritative(resp)
  resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
}

func resolve(apex *TreeNode, origin []int, qname []int, qtype int) *Response {
  resp := newResponse()
  if !nameIsSubdomain(qname, origin) {
    resp.rcode = RCODE_REFUSED
    return resp
  }
  rel := nameStrip(qname, origin)
  sr := new(SearchResult)
  stack := newNodeStack()
  treeSearch(apex, rel, true, sr, stack)
  if sr.cut != nil {
    resp.rcode = RCODE_NOERROR
    resp.authority = appendAll(resp.authority, getRRs(sr.cut, TYPE_NS))
    return resp
  }
  if sr.match == MATCH_EXACT {
    answerExact(apex, origin, sr.node, qname, qtype, resp)
    return resp
  }
  wc := findChild(sr.node.down, LABEL_STAR)
  if wc != nil {
    wildcardAnswer(apex, origin, wc, qname, qtype, resp)
    return resp
  }
  resp.rcode = RCODE_NXDOMAIN
  setAuthoritative(resp)
  resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
  return resp
}
)mg";

}  // namespace dnsv

// MiniGo source: engine v5.0 — the EDNS(0) iteration, landed through the
// same porting workflow as v4.0 (§7, Table 3): the wire layer grows OPT
// handling, and the data plane gains the one rule RFC 6891 asks of it — OPT
// is additional-section metadata, never a question, so a query asking FOR
// type OPT (qtype 41) is malformed and answered FORMERR (§6.1.1: "OPT RRs
// MUST NOT be cached, forwarded, or stored"; a qtype of OPT has no defined
// meaning). The spec is adapted by the FEATURE_EDNS flag, and the new
// version re-verifies clean.
//
// The diff against v4.0 is the OPT-qtype guard at the top of resolve() —
// everything else is byte-identical, the same shape of iteration Table 3
// measures. Payload negotiation itself lives in the wire codec and the
// serving shell (src/dns/wire.cc, src/server/serve.cc); the engine's decoded
// view never sees the OPT record, only the qtype.
#include "src/engine/sources/sources.h"

namespace dnsv {

const char kEngineResolveV5Mg[] = R"mg(
// ---- resolve.mg (v5.0): v4.0 + EDNS OPT-qtype handling ----

func findChild(bst *TreeNode, label int) *TreeNode {
  cur := bst
  for cur != nil {
    if label == cur.label {
      return cur
    }
    if label < cur.label {
      cur = cur.left
    } else {
      cur = cur.right
    }
  }
  return nil
}

func treeSearch(apex *TreeNode, rel []int, stopAtNS bool, out *SearchResult, stack *NodeStack) {
  cur := apex
  depth := 0
  out.cut = nil
  pushNode(stack, cur)
  for depth < len(rel) {
    child := findChild(cur.down, rel[depth])
    if child == nil {
      out.match = MATCH_PARTIAL
      out.node = cur
      out.depth = depth
      return
    }
    cur = child
    depth = depth + 1
    pushNode(stack, cur)
    if stopAtNS && hasType(cur, TYPE_NS) {
      out.match = MATCH_PARTIAL
      out.node = cur
      out.depth = depth
      out.cut = cur
      return
    }
  }
  out.match = MATCH_EXACT
  out.node = cur
  out.depth = depth
}

func addAdditional(apex *TreeNode, origin []int, resp *Response, rrs []RR) {
  for i := 0; i < len(rrs); i = i + 1 {
    t := rrs[i].rtype
    if t == TYPE_NS || t == TYPE_MX {
      target := rrs[i].rdataName
      if nameIsSubdomain(target, origin) {
        relt := nameStrip(target, origin)
        sr := new(SearchResult)
        st := newNodeStack()
        treeSearch(apex, relt, false, sr, st)
        if sr.match == MATCH_EXACT {
          resp.additional = appendAll(resp.additional, getRRs(sr.node, TYPE_A))
          resp.additional = appendAll(resp.additional, getRRs(sr.node, TYPE_AAAA))
        }
      }
    }
  }
}

func chaseCname(apex *TreeNode, origin []int, start RR, qtype int, resp *Response) {
  resp.answer = append(resp.answer, start)
  target := start.rdataName
  count := 0
  for count < MAX_CNAME_CHASE {
    if !nameIsSubdomain(target, origin) {
      return
    }
    relt := nameStrip(target, origin)
    sr := new(SearchResult)
    st := newNodeStack()
    treeSearch(apex, relt, true, sr, st)
    if sr.cut != nil {
      return
    }
    if sr.match != MATCH_EXACT {
      return
    }
    rrs := getRRs(sr.node, qtype)
    if len(rrs) > 0 {
      resp.answer = appendAll(resp.answer, rrs)
      addAdditional(apex, origin, resp, rrs)
      return
    }
    next := getRRs(sr.node, TYPE_CNAME)
    if len(next) == 0 {
      return
    }
    resp.answer = append(resp.answer, next[0])
    target = next[0].rdataName
    count = count + 1
  }
}

func answerExact(apex *TreeNode, origin []int, node *TreeNode, qname []int, qtype int, resp *Response) {
  resp.rcode = RCODE_NOERROR
  setAuthoritative(resp)
  if qtype == TYPE_ANY {
    for i := 0; i < len(node.rrsets); i = i + 1 {
      resp.answer = appendAll(resp.answer, node.rrsets[i].rrs)
    }
    if len(resp.answer) == 0 {
      resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
      return
    }
    addAdditional(apex, origin, resp, resp.answer)
    return
  }
  rrs := getRRs(node, qtype)
  if len(rrs) > 0 {
    resp.answer = appendAll(resp.answer, rrs)
    addAdditional(apex, origin, resp, rrs)
    return
  }
  cnames := getRRs(node, TYPE_CNAME)
  if len(cnames) > 0 {
    chaseCname(apex, origin, cnames[0], qtype, resp)
    return
  }
  resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
}

func wildcardAnswer(apex *TreeNode, origin []int, wc *TreeNode, qname []int, qtype int, resp *Response) {
  resp.rcode = RCODE_NOERROR
  setAuthoritative(resp)
  if qtype == TYPE_ANY {
    for i := 0; i < len(wc.rrsets); i = i + 1 {
      src := wc.rrsets[i].rrs
      for j := 0; j < len(src); j = j + 1 {
        resp.answer = append(resp.answer, synthesizeRR(src[j], qname))
      }
    }
    if len(resp.answer) == 0 {
      resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
      return
    }
    addAdditional(apex, origin, resp, resp.answer)
    return
  }
  rrs := getRRs(wc, qtype)
  if len(rrs) > 0 {
    syn := make([]RR)
    for j := 0; j < len(rrs); j = j + 1 {
      syn = append(syn, synthesizeRR(rrs[j], qname))
    }
    resp.answer = appendAll(resp.answer, syn)
    addAdditional(apex, origin, resp, syn)
    return
  }
  cnames := getRRs(wc, TYPE_CNAME)
  if len(cnames) > 0 {
    chaseCname(apex, origin, synthesizeRR(cnames[0], qname), qtype, resp)
    return
  }
  resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
}

func resolve(apex *TreeNode, origin []int, qname []int, qtype int) *Response {
  resp := newResponse()
  // NEW in v5.0: OPT is EDNS metadata carried in the additional section
  // (RFC 6891), never a meaningful question type. A query asking FOR type
  // OPT is malformed; answer FORMERR before any zone logic runs.
  if qtype == TYPE_OPT {
    resp.rcode = RCODE_FORMERR
    return resp
  }
  // From v4.0: meta query types (zone transfers and legacy mail queries)
  // are not implemented by the data plane; answer NOTIMP instead of treating
  // them as ordinary record types.
  if qtype >= TYPE_META_FIRST && qtype <= TYPE_META_LAST {
    resp.rcode = RCODE_NOTIMP
    return resp
  }
  if !nameIsSubdomain(qname, origin) {
    resp.rcode = RCODE_REFUSED
    return resp
  }
  rel := nameStrip(qname, origin)
  sr := new(SearchResult)
  stack := newNodeStack()
  treeSearch(apex, rel, true, sr, stack)
  if sr.cut != nil {
    resp.rcode = RCODE_NOERROR
    resp.authority = appendAll(resp.authority, getRRs(sr.cut, TYPE_NS))
    addAdditional(apex, origin, resp, resp.authority)
    return resp
  }
  if sr.match == MATCH_EXACT {
    answerExact(apex, origin, sr.node, qname, qtype, resp)
    return resp
  }
  wc := findChild(sr.node.down, LABEL_STAR)
  if wc != nil {
    wildcardAnswer(apex, origin, wc, qname, qtype, resp)
    return resp
  }
  resp.rcode = RCODE_NXDOMAIN
  setAuthoritative(resp)
  resp.authority = appendAll(resp.authority, getRRs(apex, TYPE_SOA))
  return resp
}
)mg";

}  // namespace dnsv

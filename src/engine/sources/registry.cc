#include "src/engine/sources/sources.h"

#include "src/support/logging.h"

namespace dnsv {

const char* EngineVersionName(EngineVersion version) {
  switch (version) {
    case EngineVersion::kV1: return "v1.0";
    case EngineVersion::kV2: return "v2.0";
    case EngineVersion::kV3: return "v3.0";
    case EngineVersion::kDev: return "dev";
    case EngineVersion::kGolden: return "golden";
    case EngineVersion::kV4: return "v4.0";
    case EngineVersion::kV5: return "v5.0";
  }
  return "?";
}

std::vector<EngineVersion> AllEngineVersions() {
  return {EngineVersion::kV1, EngineVersion::kV2, EngineVersion::kV3, EngineVersion::kDev,
          EngineVersion::kGolden, EngineVersion::kV4, EngineVersion::kV5};
}

bool EngineHasGlue(EngineVersion version) { return version != EngineVersion::kV1; }

bool EngineHasNotImp(EngineVersion version) {
  // v5.0 builds on v4.0, so it keeps the meta-type NOTIMP behaviour.
  return version == EngineVersion::kV4 || version == EngineVersion::kV5;
}

bool EngineHasEdns(EngineVersion version) { return version == EngineVersion::kV5; }

std::vector<std::string> EngineAnalysisRoots() {
  return {
      // Verification pipeline entries (implementation and specification).
      "resolve", "rrlookup",
      // Layer-harness entries (src/dnsv/layers.cc), explored standalone.
      "nameEq", "nameIsSubdomain", "nameStrip", "nameCompare", "namePrefix", "nameChild",
      "newNodeStack", "pushNode", "topNode", "nodeAtDepth",
      "hasType", "getRRs", "isEmptyNode",
      "newResponse", "appendAll", "synthesizeRR", "setAuthoritative",
      "findChild", "treeSearch", "answerExact", "chaseCname", "wildcardAnswer",
      "addAdditional",
      // Manual Name-layer specs, compared as units by the refinement checks.
      "nameEqSpec", "findChildSpec",
  };
}

std::vector<std::pair<std::string, std::string>> EngineSources(EngineVersion version) {
  const char* resolve_source = nullptr;
  switch (version) {
    case EngineVersion::kV1:
      resolve_source = kEngineResolveV1Mg;
      break;
    case EngineVersion::kV2:
      resolve_source = kEngineResolveV2Mg;
      break;
    case EngineVersion::kV3:
      resolve_source = kEngineResolveV3Mg;
      break;
    case EngineVersion::kDev:
      resolve_source = kEngineResolveDevMg;
      break;
    case EngineVersion::kGolden:
      resolve_source = kEngineResolveGoldenMg;
      break;
    case EngineVersion::kV4:
      resolve_source = kEngineResolveV4Mg;
      break;
    case EngineVersion::kV5:
      resolve_source = kEngineResolveV5Mg;
      break;
  }
  DNSV_CHECK(resolve_source != nullptr);
  std::string feature_flags =
      std::string(EngineHasGlue(version) ? kSpecFeatureGlueOn : kSpecFeatureGlueOff) +
      (EngineHasNotImp(version) ? kSpecFeatureNotImpOn : kSpecFeatureNotImpOff) +
      (EngineHasEdns(version) ? kSpecFeatureEdnsOn : kSpecFeatureEdnsOff);
  return {
      {"features.mg", feature_flags},
      {"types.mg", kEngineTypesMg},
      {"name.mg", kEngineNameMg},
      {"nodestack.mg", kEngineNodeStackMg},
      {"rrset.mg", kEngineRrsetMg},
      {"response.mg", kEngineResponseMg},
      {"name_spec.mg", kEngineNameSpecMg},
      {"resolve.mg", resolve_source},
      {"rrlookup.mg", kSpecRrlookupMg},
  };
}

}  // namespace dnsv

// CompiledEngine: MiniGo sources -> AbsIR, plus the process-wide cache.
//
// Kept in its own translation unit (and its own library target,
// dnsv_engine_compile) so build-time tools that only need to *compile* engine
// versions — absir-codegen foremost — can link it without pulling in the
// serving layer, whose dnsv_exec dependency is itself produced by
// absir-codegen.
#include <atomic>
#include <map>
#include <mutex>

#include "src/engine/engine.h"
#include "src/support/logging.h"

namespace dnsv {

namespace {
std::atomic<int64_t> g_num_compiles{0};
}  // namespace

std::unique_ptr<CompiledEngine> CompiledEngine::Compile(EngineVersion version) {
  g_num_compiles.fetch_add(1, std::memory_order_relaxed);
  auto engine = std::unique_ptr<CompiledEngine>(new CompiledEngine());
  engine->version_ = version;
  engine->types_ = std::make_unique<TypeTable>();
  engine->module_ = std::make_unique<Module>(engine->types_.get());
  Result<CompileOutput> compiled = CompileMiniGo(EngineSources(version), engine->module_.get());
  DNSV_CHECK_MSG(compiled.ok(), "embedded engine sources must compile: " + compiled.error());
  DNSV_CHECK_MSG(ValidateEngineLayout(*engine->types_).ok(), "engine layout contract violated");
  DNSV_CHECK(engine->module_->GetFunction("resolve") != nullptr);
  DNSV_CHECK(engine->module_->GetFunction("rrlookup") != nullptr);
  return engine;
}

std::shared_ptr<const CompiledEngine> CompiledEngine::GetCached(EngineVersion version) {
  static std::mutex mu;
  static std::map<EngineVersion, std::shared_ptr<const CompiledEngine>>* cache =
      new std::map<EngineVersion, std::shared_ptr<const CompiledEngine>>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(version);
  if (it == cache->end()) {
    std::unique_ptr<CompiledEngine> engine = Compile(version);
    engine->Freeze();  // shared from here on; no more rewrites
    it = cache->emplace(version, std::move(engine)).first;
  }
  return it->second;
}

int64_t CompiledEngine::num_compiles() {
  return g_num_compiles.load(std::memory_order_relaxed);
}

const Function& CompiledEngine::resolve_fn() const { return *module_->GetFunction("resolve"); }
const Function& CompiledEngine::rrlookup_fn() const { return *module_->GetFunction("rrlookup"); }

}  // namespace dnsv

// AuthoritativeServer: one loaded zone served through an ExecutionBackend.
// (CompiledEngine itself lives in compile.cc — see the note there.)
#include "src/engine/engine.h"

#include "src/support/logging.h"

namespace dnsv {

Result<std::unique_ptr<AuthoritativeServer>> AuthoritativeServer::Create(
    EngineVersion version, const ZoneConfig& zone, BackendKind backend) {
  Result<ZoneConfig> canonical = CanonicalizeZone(zone);
  if (!canonical.ok()) {
    return Result<std::unique_ptr<AuthoritativeServer>>::Error(canonical.error());
  }
  auto server = std::unique_ptr<AuthoritativeServer>(new AuthoritativeServer());
  server->engine_ = CompiledEngine::GetCached(version);
  server->backend_kind_ = backend;
  if (backend == BackendKind::kCompiled) {
    Result<std::unique_ptr<ExecutionBackend>> compiled = MakeCompiledBackend(version);
    if (!compiled.ok()) {
      return Result<std::unique_ptr<AuthoritativeServer>>::Error(compiled.error());
    }
    server->backend_ = std::move(compiled).value();
  } else {
    server->backend_ = MakeInterpBackend(&server->engine_->module());
  }
  server->zone_ = std::move(canonical).value();
  server->image_ = BuildHeapImage(server->zone_, &server->interner_, server->engine_->types(),
                                  &server->memory_);
  server->decoder_ =
      std::make_unique<ResponseDecoder>(server->engine_->types(), server->interner_);
  return server;
}

QueryResult AuthoritativeServer::RunLookup(const Function& fn, std::vector<Value> args) {
  // Blocks allocated past this point are query-scoped: a resolve run is a
  // pure lookup over the zone image (it never stores into zone blocks), so
  // after the response is decoded into plain RrViews nothing references
  // them. Reclaiming here keeps a long-lived shard's heap flat instead of
  // growing per query until the serving shell's hygiene rebuild.
  const size_t watermark = memory_.num_blocks();
  ExecOutcome outcome = backend_->Run(fn, args, &memory_);
  QueryResult result;
  if (!outcome.ok()) {
    result.panicked = true;
    result.panic_message = outcome.kind == ExecOutcome::Kind::kStepLimit
                               ? "step limit exceeded"
                               : outcome.panic_message;
    memory_.TruncateTo(watermark);
    return result;
  }
  result.response = decoder_->Decode(outcome.return_value, memory_);
  memory_.TruncateTo(watermark);
  return result;
}

QueryResult AuthoritativeServer::Query(const DnsName& qname, RrType qtype) {
  return RunLookup(engine_->resolve_fn(),
                   {image_.apex_ptr, image_.origin_labels, QnameValue(qname, &interner_),
                    Value::Int(static_cast<int64_t>(qtype))});
}

QueryResult AuthoritativeServer::QuerySpec(const DnsName& qname, RrType qtype) {
  return RunLookup(engine_->rrlookup_fn(),
                   {image_.zone_rrs, image_.origin_labels, QnameValue(qname, &interner_),
                    Value::Int(static_cast<int64_t>(qtype))});
}

}  // namespace dnsv

#include "src/engine/engine.h"

#include <atomic>
#include <map>
#include <mutex>

#include "src/support/logging.h"

namespace dnsv {

namespace {
std::atomic<int64_t> g_num_compiles{0};
}  // namespace

std::unique_ptr<CompiledEngine> CompiledEngine::Compile(EngineVersion version) {
  g_num_compiles.fetch_add(1, std::memory_order_relaxed);
  auto engine = std::unique_ptr<CompiledEngine>(new CompiledEngine());
  engine->version_ = version;
  engine->types_ = std::make_unique<TypeTable>();
  engine->module_ = std::make_unique<Module>(engine->types_.get());
  Result<CompileOutput> compiled = CompileMiniGo(EngineSources(version), engine->module_.get());
  DNSV_CHECK_MSG(compiled.ok(), "embedded engine sources must compile: " + compiled.error());
  DNSV_CHECK_MSG(ValidateEngineLayout(*engine->types_).ok(), "engine layout contract violated");
  DNSV_CHECK(engine->module_->GetFunction("resolve") != nullptr);
  DNSV_CHECK(engine->module_->GetFunction("rrlookup") != nullptr);
  return engine;
}

std::shared_ptr<const CompiledEngine> CompiledEngine::GetCached(EngineVersion version) {
  static std::mutex mu;
  static std::map<EngineVersion, std::shared_ptr<const CompiledEngine>>* cache =
      new std::map<EngineVersion, std::shared_ptr<const CompiledEngine>>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(version);
  if (it == cache->end()) {
    it = cache->emplace(version, Compile(version)).first;
  }
  return it->second;
}

int64_t CompiledEngine::num_compiles() {
  return g_num_compiles.load(std::memory_order_relaxed);
}

const Function& CompiledEngine::resolve_fn() const { return *module_->GetFunction("resolve"); }
const Function& CompiledEngine::rrlookup_fn() const { return *module_->GetFunction("rrlookup"); }

Result<std::unique_ptr<AuthoritativeServer>> AuthoritativeServer::Create(
    EngineVersion version, const ZoneConfig& zone) {
  Result<ZoneConfig> canonical = CanonicalizeZone(zone);
  if (!canonical.ok()) {
    return Result<std::unique_ptr<AuthoritativeServer>>::Error(canonical.error());
  }
  auto server = std::unique_ptr<AuthoritativeServer>(new AuthoritativeServer());
  server->engine_ = CompiledEngine::GetCached(version);
  server->zone_ = std::move(canonical).value();
  server->image_ = BuildHeapImage(server->zone_, &server->interner_, server->engine_->types(),
                                  &server->memory_);
  return server;
}

QueryResult AuthoritativeServer::RunLookup(const Function& fn, std::vector<Value> args) {
  Interpreter interp(&engine_->module(), &memory_);
  ExecOutcome outcome = interp.Run(fn, args);
  QueryResult result;
  if (!outcome.ok()) {
    result.panicked = true;
    result.panic_message = outcome.kind == ExecOutcome::Kind::kStepLimit
                               ? "step limit exceeded"
                               : outcome.panic_message;
    return result;
  }
  result.response =
      DecodeResponse(outcome.return_value, memory_, interner_, engine_->types());
  return result;
}

QueryResult AuthoritativeServer::Query(const DnsName& qname, RrType qtype) {
  return RunLookup(engine_->resolve_fn(),
                   {image_.apex_ptr, image_.origin_labels, QnameValue(qname, &interner_),
                    Value::Int(static_cast<int64_t>(qtype))});
}

QueryResult AuthoritativeServer::QuerySpec(const DnsName& qname, RrType qtype) {
  return RunLookup(engine_->rrlookup_fn(),
                   {image_.zone_rrs, image_.origin_labels, QnameValue(qname, &interner_),
                    Value::Int(static_cast<int64_t>(qtype))});
}

}  // namespace dnsv

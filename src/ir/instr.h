// AbsIR instructions (paper Fig. 8).
//
// The IR is CFG-based and register-oriented: every value-producing
// instruction defines a register named by its index in the owning function.
// Locals are stack slots created by alloca and accessed with load/store (the
// frontend does not build SSA phis, matching unoptimized GoLLVM output).
// Panic blocks — the encoding of GoLLVM's runtime safety checks (§4.1) —
// are ordinary blocks terminated by kPanic.
#ifndef DNSV_IR_INSTR_H_
#define DNSV_IR_INSTR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/type.h"

namespace dnsv {

enum class Opcode : uint8_t {
  // Values
  kBinOp,       // result = a <op> b
  kUnOp,        // result = <op> a
  kAlloca,      // result(ptr) = alloca T           (stack slot, function scope)
  kNewObject,   // result(ptr) = newobject T        (heap, zero-initialized)
  kLoad,        // result = load ptr
  kStore,       // store ptr, value
  kGep,         // result(ptr) = gep base, idx...   (field/element address)
  kCall,        // result = call f(args...)
  kListNew,     // result = empty list of elem type
  kListLen,     // result(int) = len(list)
  kListGet,     // result(elem) = list[idx]         (bounds-checked by frontend)
  kListSet,     // result(list) = list with [idx]=v (functional update)
  kListAppend,  // result(list) = list ++ [v]
  kFieldGet,    // result = field `imm` of a struct *value* (list elements are
                //          value-semantic, so rrs[i].rtype reads need no memory op)
  kHavoc,       // result = unconstrained value (spec dialect only)
  // Terminators
  kBr,          // br cond, then_bb, else_bb
  kJmp,         // jmp bb
  kRet,         // ret [value]
  kPanic,       // runtime error; message in `text`
};

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,   // int comparisons
  kAnd, kOr,                      // bool (non-short-circuit; frontend lowers && || via CFG)
  kPtrEq, kPtrNe,                 // pointer identity
  kBoolEq, kBoolNe,
};

enum class UnOp : uint8_t { kNot, kNeg };

// An instruction operand: either the register defined by another instruction,
// a literal, or null.
struct Operand {
  enum class Kind : uint8_t { kNone, kReg, kIntConst, kBoolConst, kNull };

  Kind kind = Kind::kNone;
  uint32_t reg = 0;    // kReg: defining instruction index
  int64_t imm = 0;     // kIntConst / kBoolConst payload
  Type type;           // static type (required for kNull; tracked for all)

  static Operand Reg(uint32_t reg, Type type) { return {Kind::kReg, reg, 0, type}; }
  static Operand IntConst(int64_t value, Type int_type) {
    return {Kind::kIntConst, 0, value, int_type};
  }
  static Operand BoolConst(bool value, Type bool_type) {
    return {Kind::kBoolConst, 0, value ? 1 : 0, bool_type};
  }
  static Operand Null(Type ptr_type) { return {Kind::kNull, 0, 0, ptr_type}; }

  bool valid() const { return kind != Kind::kNone; }
};

using BlockId = uint32_t;
inline constexpr BlockId kInvalidBlock = ~0u;

struct Instr {
  Opcode op;
  Type result_type;               // void for non-value instructions
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNot;
  std::vector<Operand> operands;  // see per-opcode layout above
  Type alloc_type;                // kAlloca / kNewObject / kListNew element
  std::string text;               // kCall callee name / kPanic message
  int64_t field_index = 0;        // kFieldGet
  BlockId target_true = kInvalidBlock;   // kBr then / kJmp target
  BlockId target_false = kInvalidBlock;  // kBr else

  bool IsTerminator() const {
    return op == Opcode::kBr || op == Opcode::kJmp || op == Opcode::kRet || op == Opcode::kPanic;
  }
  bool ProducesValue() const {
    return !IsTerminator() && op != Opcode::kStore;
  }
};

struct BasicBlock {
  std::string label;
  std::vector<uint32_t> instrs;  // indices into Function::instrs; last is the terminator
  bool is_panic_block = false;   // marks blocks synthesized for safety checks
};

}  // namespace dnsv

#endif  // DNSV_IR_INSTR_H_

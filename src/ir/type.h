// AbsIR type system (paper Fig. 7).
//
// Types mirror the paper's AbsLLVM: Int, Bool, typed pointers, named structs
// (circular references allowed, e.g. TreeNode pointing to TreeNode), and
// List[T] — an abstract list that has no concrete LLVM counterpart. Lists have
// *value* semantics in AbsIR (loading a List-typed field copies it); the
// MiniGo frontend compiles Go-style `x = append(x, e)` into load/append/store,
// which is exactly the effect pattern summarization recognizes (§5.3).
#ifndef DNSV_IR_TYPE_H_
#define DNSV_IR_TYPE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/logging.h"

namespace dnsv {

enum class TypeKind : uint8_t { kVoid, kInt, kBool, kPtr, kList, kStruct };

// Interned handle into a TypeTable. Equality is identity.
class Type {
 public:
  Type() = default;
  explicit Type(uint32_t id) : id_(id) {}
  uint32_t id() const { return id_; }
  bool valid() const { return id_ != 0; }
  bool operator==(const Type& other) const { return id_ == other.id_; }
  bool operator!=(const Type& other) const { return id_ != other.id_; }

 private:
  uint32_t id_ = 0;
};

struct StructField {
  std::string name;
  Type type;
};

struct TypeNode {
  TypeKind kind;
  Type element;             // kPtr pointee / kList element
  std::string struct_name;  // kStruct
};

// Declared separately from the type node so struct bodies can reference
// themselves (directly or mutually) through pointers.
struct StructDef {
  std::string name;
  std::vector<StructField> fields;

  // Returns the index of `field_name`, or -1.
  int FieldIndex(const std::string& field_name) const {
    for (size_t i = 0; i < fields.size(); ++i) {
      if (fields[i].name == field_name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

class TypeTable {
 public:
  TypeTable();
  TypeTable(const TypeTable&) = delete;
  TypeTable& operator=(const TypeTable&) = delete;

  Type VoidType() const { return void_; }
  Type IntType() const { return int_; }
  Type BoolType() const { return bool_; }
  Type PtrTo(Type pointee) const;
  Type ListOf(Type element) const;
  // Returns the (unique) struct type handle for `name`, creating a forward
  // declaration on first use. Fields are attached via DefineStruct.
  Type StructType(const std::string& name) const;

  // Declares or completes the field list of a struct.
  void DefineStruct(const std::string& name, std::vector<StructField> fields);
  bool IsStructDefined(const std::string& name) const;
  const StructDef& GetStruct(const std::string& name) const;
  const StructDef& GetStruct(Type t) const;

  const TypeNode& node(Type t) const {
    DNSV_CHECK(t.valid() && t.id() < nodes_.size());
    return nodes_[t.id()];
  }
  TypeKind kind(Type t) const { return node(t).kind; }
  bool IsPtr(Type t) const { return kind(t) == TypeKind::kPtr; }
  bool IsList(Type t) const { return kind(t) == TypeKind::kList; }
  bool IsStruct(Type t) const { return kind(t) == TypeKind::kStruct; }
  Type Pointee(Type t) const {
    DNSV_CHECK(IsPtr(t));
    return node(t).element;
  }
  Type ListElement(Type t) const {
    DNSV_CHECK(IsList(t));
    return node(t).element;
  }

  std::string ToString(Type t) const;

 private:
  Type Intern(TypeNode node, const std::string& key) const;

  mutable std::vector<TypeNode> nodes_;
  mutable std::unordered_map<std::string, uint32_t> intern_table_;
  std::unordered_map<std::string, StructDef> structs_;
  Type void_, int_, bool_;
};

}  // namespace dnsv

#endif  // DNSV_IR_TYPE_H_

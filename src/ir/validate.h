// Well-formedness checks for AbsIR: every block terminated exactly once,
// operand types consistent, branch targets in range, calls resolvable.
#ifndef DNSV_IR_VALIDATE_H_
#define DNSV_IR_VALIDATE_H_

#include "src/ir/function.h"
#include "src/support/status.h"

namespace dnsv {

struct ValidateOptions {
  // Require every non-entry block to be reachable from the entry by
  // terminator edges. Off by default: the frontend legitimately emits
  // unreachable continuation blocks (code after a terminating statement);
  // the pruning pass turns this on after it deletes orphaned blocks.
  bool require_reachable = false;
};

Status ValidateFunction(const Module& module, const Function& function,
                        const ValidateOptions& options = {});
Status ValidateModule(const Module& module, const ValidateOptions& options = {});

}  // namespace dnsv

#endif  // DNSV_IR_VALIDATE_H_

// Well-formedness checks for AbsIR: every block terminated exactly once,
// operand types consistent, branch targets in range, calls resolvable.
#ifndef DNSV_IR_VALIDATE_H_
#define DNSV_IR_VALIDATE_H_

#include "src/ir/function.h"
#include "src/support/status.h"

namespace dnsv {

Status ValidateFunction(const Module& module, const Function& function);
Status ValidateModule(const Module& module);

}  // namespace dnsv

#endif  // DNSV_IR_VALIDATE_H_

// Textual dump of AbsIR, for diagnostics and golden tests.
#ifndef DNSV_IR_PRINTER_H_
#define DNSV_IR_PRINTER_H_

#include <cstdint>
#include <string>

#include "src/ir/function.h"

namespace dnsv {

std::string PrintFunction(const Module& module, const Function& function);
std::string PrintModule(const Module& module);

// Content hash (FNV-1a over PrintModule) identifying one exact AbsIR module.
// The AOT backend (src/exec) embeds the fingerprint of the post-prune module
// it was generated from, and the differential harness recomputes it to prove
// the compiled artifact and the verified IR are the same bytes.
uint64_t ModuleFingerprint(const Module& module);

}  // namespace dnsv

#endif  // DNSV_IR_PRINTER_H_

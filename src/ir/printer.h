// Textual dump of AbsIR, for diagnostics and golden tests.
#ifndef DNSV_IR_PRINTER_H_
#define DNSV_IR_PRINTER_H_

#include <cstdint>
#include <string>

#include "src/ir/function.h"

namespace dnsv {

std::string PrintFunction(const Module& module, const Function& function);
std::string PrintModule(const Module& module);

// Content hash (FNV-1a over PrintModule) identifying one exact AbsIR module.
// The AOT backend (src/exec) embeds the fingerprint of the post-prune module
// it was generated from, and the differential harness recomputes it to prove
// the compiled artifact and the verified IR are the same bytes.
uint64_t ModuleFingerprint(const Module& module);

// Content hash of one function's printed form. The printer spells out the
// parameter/return types by name and names callees in the instruction text,
// so the hash is self-contained: two functions hash equal iff their bodies,
// signatures, and block structure print identically — even when they live in
// different modules with differently-numbered type tables. This is the
// structural identity the artifact store's dirty-set diffing is built on
// (docs/INCREMENTAL.md).
uint64_t FunctionFingerprint(const Module& module, const Function& function);

}  // namespace dnsv

#endif  // DNSV_IR_PRINTER_H_

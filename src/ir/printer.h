// Textual dump of AbsIR, for diagnostics and golden tests.
#ifndef DNSV_IR_PRINTER_H_
#define DNSV_IR_PRINTER_H_

#include <string>

#include "src/ir/function.h"

namespace dnsv {

std::string PrintFunction(const Module& module, const Function& function);
std::string PrintModule(const Module& module);

}  // namespace dnsv

#endif  // DNSV_IR_PRINTER_H_

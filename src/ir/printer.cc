#include "src/ir/printer.h"

#include "src/support/strings.h"

namespace dnsv {
namespace {

std::string OperandString(const Function& fn, const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::kNone:
      return "<none>";
    case Operand::Kind::kReg:
      if (Function::IsParamReg(op.reg)) {
        return "%" + fn.params()[Function::ParamIndex(op.reg)].name;
      }
      return StrCat("%", op.reg);
    case Operand::Kind::kIntConst:
      return StrCat(op.imm);
    case Operand::Kind::kBoolConst:
      return op.imm != 0 ? "true" : "false";
    case Operand::Kind::kNull:
      return "null";
  }
  return "<?>";
}

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "add";
    case BinOp::kSub: return "sub";
    case BinOp::kMul: return "mul";
    case BinOp::kDiv: return "div";
    case BinOp::kMod: return "mod";
    case BinOp::kEq: return "eq";
    case BinOp::kNe: return "ne";
    case BinOp::kLt: return "lt";
    case BinOp::kLe: return "le";
    case BinOp::kGt: return "gt";
    case BinOp::kGe: return "ge";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
    case BinOp::kPtrEq: return "ptreq";
    case BinOp::kPtrNe: return "ptrne";
    case BinOp::kBoolEq: return "booleq";
    case BinOp::kBoolNe: return "boolne";
  }
  return "?";
}

std::string InstrString(const Module& module, const Function& fn, uint32_t index) {
  const Instr& instr = fn.instr(index);
  const TypeTable& types = module.types();
  auto op_str = [&](size_t i) { return OperandString(fn, instr.operands[i]); };
  auto def = [&](const std::string& rhs) { return StrCat("  %", index, " = ", rhs); };
  switch (instr.op) {
    case Opcode::kBinOp:
      return def(StrCat(BinOpName(instr.bin_op), " ", op_str(0), ", ", op_str(1)));
    case Opcode::kUnOp:
      return def(StrCat(instr.un_op == UnOp::kNot ? "not " : "neg ", op_str(0)));
    case Opcode::kAlloca:
      return def(StrCat("alloca ", types.ToString(instr.alloc_type)));
    case Opcode::kNewObject:
      return def(StrCat("newobject ", types.ToString(instr.alloc_type)));
    case Opcode::kLoad:
      return def(StrCat("load ", op_str(0)));
    case Opcode::kStore:
      return StrCat("  store ", op_str(0), ", ", op_str(1));
    case Opcode::kGep: {
      std::string rhs = StrCat("gep ", op_str(0));
      for (size_t i = 1; i < instr.operands.size(); ++i) {
        rhs += ", " + op_str(i);
      }
      return def(rhs);
    }
    case Opcode::kCall: {
      std::string rhs = StrCat("call ", instr.text, "(");
      for (size_t i = 0; i < instr.operands.size(); ++i) {
        if (i > 0) rhs += ", ";
        rhs += op_str(i);
      }
      rhs += ")";
      return def(rhs);
    }
    case Opcode::kListNew:
      return def(StrCat("listnew ", types.ToString(instr.alloc_type)));
    case Opcode::kListLen:
      return def(StrCat("listlen ", op_str(0)));
    case Opcode::kListGet:
      return def(StrCat("listget ", op_str(0), ", ", op_str(1)));
    case Opcode::kListSet:
      return def(StrCat("listset ", op_str(0), ", ", op_str(1), ", ", op_str(2)));
    case Opcode::kListAppend:
      return def(StrCat("listappend ", op_str(0), ", ", op_str(1)));
    case Opcode::kFieldGet:
      return def(StrCat("fieldget ", op_str(0), ", ", instr.field_index));
    case Opcode::kHavoc:
      return def(StrCat("havoc ", types.ToString(instr.result_type)));
    case Opcode::kBr:
      return StrCat("  br ", op_str(0), ", bb", instr.target_true, ", bb", instr.target_false);
    case Opcode::kJmp:
      return StrCat("  jmp bb", instr.target_true);
    case Opcode::kRet:
      return instr.operands.empty() ? "  ret" : StrCat("  ret ", op_str(0));
    case Opcode::kPanic:
      return StrCat("  panic \"", instr.text, "\"");
  }
  return "  <?>";
}

}  // namespace

std::string PrintFunction(const Module& module, const Function& function) {
  const TypeTable& types = module.types();
  std::string out = StrCat("func ", function.name(), "(");
  for (size_t i = 0; i < function.params().size(); ++i) {
    if (i > 0) out += ", ";
    out += StrCat(function.params()[i].name, " ", types.ToString(function.params()[i].type));
  }
  out += StrCat(") ", types.ToString(function.return_type()), " {\n");
  for (BlockId b = 0; b < function.num_blocks(); ++b) {
    const BasicBlock& block = function.block(b);
    out += StrCat("bb", b, ":  ; ", block.label, block.is_panic_block ? " [panic]" : "", "\n");
    for (uint32_t instr : block.instrs) {
      out += InstrString(module, function, instr) + "\n";
    }
  }
  out += "}\n";
  return out;
}

std::string PrintModule(const Module& module) {
  std::string out;
  for (const auto& fn : module.functions()) {
    out += PrintFunction(module, *fn) + "\n";
  }
  return out;
}

uint64_t ModuleFingerprint(const Module& module) {
  // FNV-1a over the printed form: the printer spells out every instruction,
  // operand, and type, so two modules hash equal iff they print identically.
  return Fnv1a64(PrintModule(module));
}

uint64_t FunctionFingerprint(const Module& module, const Function& function) {
  return Fnv1a64(PrintFunction(module, function));
}

}  // namespace dnsv

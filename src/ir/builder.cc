#include "src/ir/builder.h"

namespace dnsv {

Operand IrBuilder::Emit(Instr instr) {
  DNSV_CHECK_MSG(current_ != kInvalidBlock, "no insert point set");
  Type result_type = instr.result_type;
  bool produces = instr.ProducesValue();
  uint32_t reg = function_->Append(current_, std::move(instr));
  if (!produces) {
    return Operand{};
  }
  return Operand::Reg(reg, result_type);
}

Operand IrBuilder::BinaryOp(BinOp op, Operand a, Operand b, Type result_type) {
  Instr instr;
  instr.op = Opcode::kBinOp;
  instr.bin_op = op;
  instr.result_type = result_type;
  instr.operands = {a, b};
  return Emit(std::move(instr));
}

Operand IrBuilder::UnaryOp(UnOp op, Operand a, Type result_type) {
  Instr instr;
  instr.op = Opcode::kUnOp;
  instr.un_op = op;
  instr.result_type = result_type;
  instr.operands = {a};
  return Emit(std::move(instr));
}

Operand IrBuilder::Alloca(Type type) {
  Instr instr;
  instr.op = Opcode::kAlloca;
  instr.alloc_type = type;
  instr.result_type = types().PtrTo(type);
  return Emit(std::move(instr));
}

Operand IrBuilder::NewObject(Type struct_type) {
  Instr instr;
  instr.op = Opcode::kNewObject;
  instr.alloc_type = struct_type;
  instr.result_type = types().PtrTo(struct_type);
  return Emit(std::move(instr));
}

Operand IrBuilder::Load(Operand ptr) {
  DNSV_CHECK(types().IsPtr(ptr.type));
  Instr instr;
  instr.op = Opcode::kLoad;
  instr.result_type = types().Pointee(ptr.type);
  instr.operands = {ptr};
  return Emit(std::move(instr));
}

void IrBuilder::Store(Operand ptr, Operand value) {
  DNSV_CHECK(types().IsPtr(ptr.type));
  DNSV_CHECK(types().Pointee(ptr.type) == value.type);
  Instr instr;
  instr.op = Opcode::kStore;
  instr.result_type = types().VoidType();
  instr.operands = {ptr, value};
  Emit(std::move(instr));
}

Operand IrBuilder::Gep(Operand base, const std::vector<Operand>& indices, Type result_pointee) {
  DNSV_CHECK(types().IsPtr(base.type));
  Instr instr;
  instr.op = Opcode::kGep;
  instr.result_type = types().PtrTo(result_pointee);
  instr.operands.push_back(base);
  for (const Operand& index : indices) {
    instr.operands.push_back(index);
  }
  return Emit(std::move(instr));
}

Operand IrBuilder::Call(const std::string& callee, const std::vector<Operand>& args,
                        Type result_type) {
  Instr instr;
  instr.op = Opcode::kCall;
  instr.text = callee;
  instr.result_type = result_type;
  instr.operands = args;
  return Emit(std::move(instr));
}

Operand IrBuilder::ListNew(Type elem_type) {
  Instr instr;
  instr.op = Opcode::kListNew;
  instr.alloc_type = elem_type;
  instr.result_type = types().ListOf(elem_type);
  return Emit(std::move(instr));
}

Operand IrBuilder::ListLen(Operand list) {
  DNSV_CHECK(types().IsList(list.type));
  Instr instr;
  instr.op = Opcode::kListLen;
  instr.result_type = types().IntType();
  instr.operands = {list};
  return Emit(std::move(instr));
}

Operand IrBuilder::ListGet(Operand list, Operand index) {
  DNSV_CHECK(types().IsList(list.type));
  Instr instr;
  instr.op = Opcode::kListGet;
  instr.result_type = types().ListElement(list.type);
  instr.operands = {list, index};
  return Emit(std::move(instr));
}

Operand IrBuilder::ListSet(Operand list, Operand index, Operand value) {
  DNSV_CHECK(types().IsList(list.type));
  DNSV_CHECK(types().ListElement(list.type) == value.type);
  Instr instr;
  instr.op = Opcode::kListSet;
  instr.result_type = list.type;
  instr.operands = {list, index, value};
  return Emit(std::move(instr));
}

Operand IrBuilder::ListAppend(Operand list, Operand value) {
  DNSV_CHECK(types().IsList(list.type));
  DNSV_CHECK(types().ListElement(list.type) == value.type);
  Instr instr;
  instr.op = Opcode::kListAppend;
  instr.result_type = list.type;
  instr.operands = {list, value};
  return Emit(std::move(instr));
}

Operand IrBuilder::FieldGet(Operand aggregate, int64_t field_index) {
  DNSV_CHECK(types().IsStruct(aggregate.type));
  const StructDef& def = types().GetStruct(aggregate.type);
  DNSV_CHECK(field_index >= 0 && static_cast<size_t>(field_index) < def.fields.size());
  Instr instr;
  instr.op = Opcode::kFieldGet;
  instr.field_index = field_index;
  instr.result_type = def.fields[static_cast<size_t>(field_index)].type;
  instr.operands = {aggregate};
  return Emit(std::move(instr));
}

Operand IrBuilder::Havoc(Type type) {
  Instr instr;
  instr.op = Opcode::kHavoc;
  instr.result_type = type;
  return Emit(std::move(instr));
}

void IrBuilder::Br(Operand cond, BlockId then_block, BlockId else_block) {
  DNSV_CHECK(cond.type == types().BoolType());
  Instr instr;
  instr.op = Opcode::kBr;
  instr.result_type = types().VoidType();
  instr.operands = {cond};
  instr.target_true = then_block;
  instr.target_false = else_block;
  Emit(std::move(instr));
}

void IrBuilder::Jmp(BlockId target) {
  Instr instr;
  instr.op = Opcode::kJmp;
  instr.result_type = types().VoidType();
  instr.target_true = target;
  Emit(std::move(instr));
}

void IrBuilder::Ret(Operand value) {
  Instr instr;
  instr.op = Opcode::kRet;
  instr.result_type = types().VoidType();
  instr.operands = {value};
  Emit(std::move(instr));
}

void IrBuilder::RetVoid() {
  Instr instr;
  instr.op = Opcode::kRet;
  instr.result_type = types().VoidType();
  Emit(std::move(instr));
}

void IrBuilder::Panic(const std::string& message) {
  Instr instr;
  instr.op = Opcode::kPanic;
  instr.result_type = types().VoidType();
  instr.text = message;
  Emit(std::move(instr));
}

BlockId IrBuilder::GetPanicBlock(const std::string& message) {
  for (const auto& [msg, block] : panic_blocks_) {
    if (msg == message) {
      return block;
    }
  }
  BlockId saved = current_;
  BlockId block = CreateBlock("panic." + std::to_string(panic_blocks_.size()));
  function_->block(block).is_panic_block = true;
  SetInsertPoint(block);
  Panic(message);
  SetInsertPoint(saved);
  panic_blocks_.emplace_back(message, block);
  return block;
}

}  // namespace dnsv

#include "src/ir/validate.h"

#include "src/support/strings.h"

namespace dnsv {
namespace {

Status Fail(const Function& fn, uint32_t instr, const std::string& what) {
  return Status::Error(StrCat("function ", fn.name(), ", instr %", instr, ": ", what));
}

// Returns the static type of an operand, resolving registers through their
// defining instruction.
Type OperandType(const Function& fn, const Operand& op) {
  if (op.kind == Operand::Kind::kReg && !Function::IsParamReg(op.reg)) {
    return fn.instr(op.reg).result_type;
  }
  return op.type;
}

Status CheckInstr(const Module& module, const Function& fn, uint32_t index) {
  const TypeTable& types = module.types();
  const Instr& instr = fn.instr(index);
  // Operand registers must reference earlier instructions or params.
  for (const Operand& op : instr.operands) {
    if (op.kind == Operand::Kind::kReg) {
      if (Function::IsParamReg(op.reg)) {
        if (Function::ParamIndex(op.reg) >= fn.params().size()) {
          return Fail(fn, index, "parameter register out of range");
        }
      } else if (op.reg >= index) {
        return Fail(fn, index, StrCat("operand %", op.reg, " used before definition"));
      } else if (!fn.instr(op.reg).ProducesValue()) {
        return Fail(fn, index, StrCat("operand %", op.reg, " does not produce a value"));
      }
    }
    if (op.kind == Operand::Kind::kNull && !types.IsPtr(op.type)) {
      return Fail(fn, index, "null operand must have pointer type");
    }
  }
  auto otype = [&](size_t i) { return OperandType(fn, instr.operands[i]); };
  switch (instr.op) {
    case Opcode::kBinOp: {
      if (instr.operands.size() != 2) {
        return Fail(fn, index, "binop needs two operands");
      }
      Type a = otype(0), b = otype(1);
      switch (instr.bin_op) {
        case BinOp::kAdd: case BinOp::kSub: case BinOp::kMul: case BinOp::kDiv: case BinOp::kMod:
          if (a != types.IntType() || b != types.IntType() ||
              instr.result_type != types.IntType()) {
            return Fail(fn, index, "arithmetic binop must be int x int -> int");
          }
          break;
        case BinOp::kEq: case BinOp::kNe: case BinOp::kLt: case BinOp::kLe:
        case BinOp::kGt: case BinOp::kGe:
          if (a != types.IntType() || b != types.IntType() ||
              instr.result_type != types.BoolType()) {
            return Fail(fn, index, "int comparison must be int x int -> bool");
          }
          break;
        case BinOp::kAnd: case BinOp::kOr: case BinOp::kBoolEq: case BinOp::kBoolNe:
          if (a != types.BoolType() || b != types.BoolType() ||
              instr.result_type != types.BoolType()) {
            return Fail(fn, index, "bool binop must be bool x bool -> bool");
          }
          break;
        case BinOp::kPtrEq: case BinOp::kPtrNe:
          if (!types.IsPtr(a) || a != b || instr.result_type != types.BoolType()) {
            return Fail(fn, index, "pointer comparison must be T* x T* -> bool");
          }
          break;
      }
      break;
    }
    case Opcode::kUnOp:
      if (instr.operands.size() != 1) {
        return Fail(fn, index, "unop needs one operand");
      }
      if (instr.un_op == UnOp::kNot &&
          (otype(0) != types.BoolType() || instr.result_type != types.BoolType())) {
        return Fail(fn, index, "not must be bool -> bool");
      }
      if (instr.un_op == UnOp::kNeg &&
          (otype(0) != types.IntType() || instr.result_type != types.IntType())) {
        return Fail(fn, index, "neg must be int -> int");
      }
      break;
    case Opcode::kAlloca:
    case Opcode::kNewObject:
      if (!instr.alloc_type.valid() || instr.result_type != types.PtrTo(instr.alloc_type)) {
        return Fail(fn, index, "alloc result must be pointer to alloc type");
      }
      break;
    case Opcode::kLoad:
      if (instr.operands.size() != 1 || !types.IsPtr(otype(0)) ||
          types.Pointee(otype(0)) != instr.result_type) {
        return Fail(fn, index, "load type mismatch");
      }
      break;
    case Opcode::kStore:
      if (instr.operands.size() != 2 || !types.IsPtr(otype(0)) ||
          types.Pointee(otype(0)) != otype(1)) {
        return Fail(fn, index, "store type mismatch");
      }
      break;
    case Opcode::kGep: {
      if (instr.operands.empty() || !types.IsPtr(otype(0))) {
        return Fail(fn, index, "gep base must be a pointer");
      }
      // Walk the index path and confirm the result type.
      Type current = types.Pointee(otype(0));
      for (size_t i = 1; i < instr.operands.size(); ++i) {
        if (types.IsStruct(current)) {
          const Operand& idx = instr.operands[i];
          if (idx.kind != Operand::Kind::kIntConst) {
            return Fail(fn, index, "struct field index must be constant");
          }
          const StructDef& def = types.GetStruct(current);
          if (idx.imm < 0 || static_cast<size_t>(idx.imm) >= def.fields.size()) {
            return Fail(fn, index, "struct field index out of range");
          }
          current = def.fields[static_cast<size_t>(idx.imm)].type;
        } else if (types.IsList(current)) {
          if (otype(i) != types.IntType()) {
            return Fail(fn, index, "list index must be int");
          }
          current = types.ListElement(current);
        } else {
          return Fail(fn, index, "gep through non-aggregate type");
        }
      }
      if (instr.result_type != types.PtrTo(current)) {
        return Fail(fn, index, StrCat("gep result type mismatch: ",
                                      types.ToString(instr.result_type), " vs *",
                                      types.ToString(current)));
      }
      break;
    }
    case Opcode::kCall: {
      const Function* callee = module.GetFunction(instr.text);
      if (callee == nullptr) {
        // Builtins (spec dialect) are resolved by the executors; only check
        // the well-known names.
        if (instr.text != "listEq") {
          return Fail(fn, index, "call to unknown function " + instr.text);
        }
        break;
      }
      if (callee->params().size() != instr.operands.size()) {
        return Fail(fn, index, "call arity mismatch for " + instr.text);
      }
      for (size_t i = 0; i < instr.operands.size(); ++i) {
        if (otype(i) != callee->params()[i].type) {
          return Fail(fn, index, StrCat("call argument ", i, " type mismatch for ", instr.text));
        }
      }
      if (instr.result_type != callee->return_type()) {
        return Fail(fn, index, "call result type mismatch for " + instr.text);
      }
      break;
    }
    case Opcode::kListNew:
      if (instr.result_type != types.ListOf(instr.alloc_type)) {
        return Fail(fn, index, "listnew result type mismatch");
      }
      break;
    case Opcode::kListLen:
      if (instr.operands.size() != 1 || !types.IsList(otype(0)) ||
          instr.result_type != types.IntType()) {
        return Fail(fn, index, "listlen must be []T -> int");
      }
      break;
    case Opcode::kListGet:
      if (instr.operands.size() != 2 || !types.IsList(otype(0)) || otype(1) != types.IntType() ||
          instr.result_type != types.ListElement(otype(0))) {
        return Fail(fn, index, "listget type mismatch");
      }
      break;
    case Opcode::kListSet:
      if (instr.operands.size() != 3 || !types.IsList(otype(0)) || otype(1) != types.IntType() ||
          otype(2) != types.ListElement(otype(0)) || instr.result_type != otype(0)) {
        return Fail(fn, index, "listset type mismatch");
      }
      break;
    case Opcode::kListAppend:
      if (instr.operands.size() != 2 || !types.IsList(otype(0)) ||
          otype(1) != types.ListElement(otype(0)) || instr.result_type != otype(0)) {
        return Fail(fn, index, "listappend type mismatch");
      }
      break;
    case Opcode::kFieldGet: {
      if (instr.operands.size() != 1 || !types.IsStruct(otype(0))) {
        return Fail(fn, index, "fieldget operand must be a struct value");
      }
      const StructDef& def = types.GetStruct(otype(0));
      if (instr.field_index < 0 ||
          static_cast<size_t>(instr.field_index) >= def.fields.size()) {
        return Fail(fn, index, "fieldget index out of range");
      }
      if (instr.result_type != def.fields[static_cast<size_t>(instr.field_index)].type) {
        return Fail(fn, index, "fieldget result type mismatch");
      }
      break;
    }
    case Opcode::kHavoc:
      break;
    case Opcode::kBr:
      if (instr.operands.size() != 1 || otype(0) != types.BoolType()) {
        return Fail(fn, index, "br condition must be bool");
      }
      if (instr.target_true >= fn.num_blocks() || instr.target_false >= fn.num_blocks()) {
        return Fail(fn, index, "br target out of range");
      }
      break;
    case Opcode::kJmp:
      if (instr.target_true >= fn.num_blocks()) {
        return Fail(fn, index, "jmp target out of range");
      }
      // A jmp carries exactly one edge. The pruning passes rewrite brs into
      // jmps; a leftover else-target here would be an edge into a block the
      // rebuild may have removed.
      if (instr.target_false != kInvalidBlock) {
        return Fail(fn, index, "jmp retains a stale else edge");
      }
      break;
    case Opcode::kRet:
      if (fn.return_type() == types.VoidType()) {
        if (!instr.operands.empty()) {
          return Fail(fn, index, "void function returns a value");
        }
      } else {
        if (instr.operands.size() != 1 || otype(0) != fn.return_type()) {
          return Fail(fn, index, "return type mismatch");
        }
      }
      break;
    case Opcode::kPanic:
      break;
  }
  return Status::Ok();
}

}  // namespace

Status ValidateFunction(const Module& module, const Function& function,
                        const ValidateOptions& options) {
  if (function.num_blocks() == 0) {
    return Status::Error("function " + function.name() + " has no blocks");
  }
  for (BlockId b = 0; b < function.num_blocks(); ++b) {
    const BasicBlock& block = function.block(b);
    if (block.instrs.empty()) {
      return Status::Error(StrCat("function ", function.name(), ", bb", b, ": empty block"));
    }
    for (size_t i = 0; i < block.instrs.size(); ++i) {
      const Instr& instr = function.instr(block.instrs[i]);
      bool is_last = i + 1 == block.instrs.size();
      if (instr.IsTerminator() != is_last) {
        return Status::Error(StrCat("function ", function.name(), ", bb", b,
                                    ": terminator must be exactly the last instruction"));
      }
    }
    // Panic blocks encode GoLLVM safety checks: they are terminal by
    // construction, and the analysis layer's discharge pass relies on a
    // panic block having no successor edges.
    if (block.is_panic_block &&
        function.instr(block.instrs.back()).op != Opcode::kPanic) {
      return Status::Error(StrCat("function ", function.name(), ", bb", b,
                                  ": panic block must terminate with panic"));
    }
  }
  for (uint32_t i = 0; i < function.num_instrs(); ++i) {
    Status s = CheckInstr(module, function, i);
    if (!s.ok()) {
      return s;
    }
  }
  if (options.require_reachable) {
    // Local DFS over terminator edges (validate must not depend on the
    // analysis layer above it).
    std::vector<bool> reachable(function.num_blocks(), false);
    std::vector<BlockId> stack = {function.entry()};
    reachable[function.entry()] = true;
    while (!stack.empty()) {
      BlockId b = stack.back();
      stack.pop_back();
      const Instr& term = function.instr(function.block(b).instrs.back());
      BlockId targets[2] = {term.target_true, term.target_false};
      for (BlockId t : targets) {
        if (t != kInvalidBlock && t < function.num_blocks() && !reachable[t]) {
          reachable[t] = true;
          stack.push_back(t);
        }
      }
    }
    for (BlockId b = 0; b < function.num_blocks(); ++b) {
      if (!reachable[b]) {
        return Status::Error(StrCat("function ", function.name(), ", bb", b,
                                    ": unreachable block after pruning"));
      }
    }
  }
  return Status::Ok();
}

Status ValidateModule(const Module& module, const ValidateOptions& options) {
  for (const auto& fn : module.functions()) {
    Status s = ValidateFunction(module, *fn, options);
    if (!s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

}  // namespace dnsv

// AbsIR functions and modules.
#ifndef DNSV_IR_FUNCTION_H_
#define DNSV_IR_FUNCTION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/instr.h"
#include "src/ir/type.h"

namespace dnsv {

struct Param {
  std::string name;
  Type type;
};

class Function {
 public:
  Function(std::string name, std::vector<Param> params, Type return_type)
      : name_(std::move(name)), params_(std::move(params)), return_type_(return_type) {}

  const std::string& name() const { return name_; }
  const std::vector<Param>& params() const { return params_; }
  Type return_type() const { return return_type_; }

  BlockId AddBlock(const std::string& label) {
    blocks_.push_back(BasicBlock{label, {}, false});
    return static_cast<BlockId>(blocks_.size() - 1);
  }
  BasicBlock& block(BlockId id) {
    DNSV_CHECK(id < blocks_.size());
    return blocks_[id];
  }
  const BasicBlock& block(BlockId id) const {
    DNSV_CHECK(id < blocks_.size());
    return blocks_[id];
  }
  size_t num_blocks() const { return blocks_.size(); }

  // Appends an instruction to `block_id` and returns its register index.
  uint32_t Append(BlockId block_id, Instr instr) {
    uint32_t index = static_cast<uint32_t>(instrs_.size());
    instrs_.push_back(std::move(instr));
    blocks_[block_id].instrs.push_back(index);
    return index;
  }

  const Instr& instr(uint32_t index) const {
    DNSV_CHECK(index < instrs_.size());
    return instrs_[index];
  }
  // Mutable access for analysis passes that rewrite instructions in place
  // (e.g. pruning turns a discharged safety-check br into a jmp). The caller
  // is responsible for keeping the function valid — re-run ValidateFunction
  // after a batch of rewrites.
  Instr& mutable_instr(uint32_t index) {
    DNSV_CHECK(index < instrs_.size());
    return instrs_[index];
  }
  size_t num_instrs() const { return instrs_.size(); }

  // Replaces the entire body. Used by passes that rebuild the function with
  // blocks/instructions removed; `blocks` indexes into `instrs` and block 0
  // must remain the entry.
  void ReplaceBody(std::vector<BasicBlock> blocks, std::vector<Instr> instrs) {
    DNSV_CHECK(!blocks.empty());
    blocks_ = std::move(blocks);
    instrs_ = std::move(instrs);
  }

  BlockId entry() const { return 0; }

  // Parameter registers occupy the range [kParamRegBase, kParamRegBase+n);
  // they are not instruction indices.
  static constexpr uint32_t kParamRegBase = 1u << 30;
  static bool IsParamReg(uint32_t reg) { return reg >= kParamRegBase; }
  static uint32_t ParamIndex(uint32_t reg) { return reg - kParamRegBase; }
  Operand ParamOperand(uint32_t index) const {
    DNSV_CHECK(index < params_.size());
    return Operand::Reg(kParamRegBase + index, params_[index].type);
  }

 private:
  std::string name_;
  std::vector<Param> params_;
  Type return_type_;
  std::vector<BasicBlock> blocks_;
  std::vector<Instr> instrs_;
};

// A compilation unit: shared type table plus functions. Engine code and
// specifications compile into separate Modules over the same TypeTable so the
// verifier can relate their values directly (paper §5.1: one unified
// AbsLLVM domain for both frontends).
class Module {
 public:
  explicit Module(TypeTable* types) : types_(types) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  TypeTable& types() { return *types_; }
  const TypeTable& types() const { return *types_; }

  Function* AddFunction(std::string name, std::vector<Param> params, Type return_type) {
    auto fn = std::make_unique<Function>(std::move(name), std::move(params), return_type);
    Function* raw = fn.get();
    DNSV_CHECK_MSG(by_name_.find(raw->name()) == by_name_.end(),
                   "function redefined: " + raw->name());
    by_name_.emplace(raw->name(), raw);
    functions_.push_back(std::move(fn));
    return raw;
  }

  Function* GetFunction(const std::string& name) const {
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : it->second;
  }

  const std::vector<std::unique_ptr<Function>>& functions() const { return functions_; }

 private:
  TypeTable* types_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::unordered_map<std::string, Function*> by_name_;
};

}  // namespace dnsv

#endif  // DNSV_IR_FUNCTION_H_

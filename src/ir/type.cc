#include "src/ir/type.h"

#include "src/support/strings.h"

namespace dnsv {

TypeTable::TypeTable() {
  nodes_.resize(1);  // id 0 invalid
  void_ = Intern({TypeKind::kVoid, Type(), ""}, "void");
  int_ = Intern({TypeKind::kInt, Type(), ""}, "int");
  bool_ = Intern({TypeKind::kBool, Type(), ""}, "bool");
}

Type TypeTable::Intern(TypeNode node, const std::string& key) const {
  auto it = intern_table_.find(key);
  if (it != intern_table_.end()) {
    return Type(it->second);
  }
  uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  intern_table_.emplace(key, id);
  return Type(id);
}

Type TypeTable::PtrTo(Type pointee) const {
  DNSV_CHECK(pointee.valid());
  return Intern({TypeKind::kPtr, pointee, ""}, StrCat("ptr:", pointee.id()));
}

Type TypeTable::ListOf(Type element) const {
  DNSV_CHECK(element.valid());
  return Intern({TypeKind::kList, element, ""}, StrCat("list:", element.id()));
}

Type TypeTable::StructType(const std::string& name) const {
  return Intern({TypeKind::kStruct, Type(), name}, StrCat("struct:", name));
}

void TypeTable::DefineStruct(const std::string& name, std::vector<StructField> fields) {
  DNSV_CHECK_MSG(structs_.find(name) == structs_.end(), "struct redefined: " + name);
  StructType(name);  // ensure the type handle exists
  structs_.emplace(name, StructDef{name, std::move(fields)});
}

bool TypeTable::IsStructDefined(const std::string& name) const {
  return structs_.find(name) != structs_.end();
}

const StructDef& TypeTable::GetStruct(const std::string& name) const {
  auto it = structs_.find(name);
  DNSV_CHECK_MSG(it != structs_.end(), "undefined struct: " + name);
  return it->second;
}

const StructDef& TypeTable::GetStruct(Type t) const {
  DNSV_CHECK(IsStruct(t));
  return GetStruct(node(t).struct_name);
}

std::string TypeTable::ToString(Type t) const {
  const TypeNode& n = node(t);
  switch (n.kind) {
    case TypeKind::kVoid:
      return "void";
    case TypeKind::kInt:
      return "int";
    case TypeKind::kBool:
      return "bool";
    case TypeKind::kPtr:
      return "*" + ToString(n.element);
    case TypeKind::kList:
      return "[]" + ToString(n.element);
    case TypeKind::kStruct:
      return n.struct_name;
  }
  return "<?>";
}

}  // namespace dnsv

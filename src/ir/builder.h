// Convenience emitter for AbsIR, in the style of llvm::IRBuilder.
#ifndef DNSV_IR_BUILDER_H_
#define DNSV_IR_BUILDER_H_

#include <string>
#include <vector>

#include "src/ir/function.h"

namespace dnsv {

class IrBuilder {
 public:
  IrBuilder(Module* module, Function* function) : module_(module), function_(function) {}

  Module& module() { return *module_; }
  Function& function() { return *function_; }
  TypeTable& types() { return module_->types(); }

  BlockId CreateBlock(const std::string& label) { return function_->AddBlock(label); }
  void SetInsertPoint(BlockId block) { current_ = block; }
  BlockId insert_point() const { return current_; }

  // --- constants & params ---
  Operand Int(int64_t value) { return Operand::IntConst(value, types().IntType()); }
  Operand Bool(bool value) { return Operand::BoolConst(value, types().BoolType()); }
  Operand Null(Type ptr_type) { return Operand::Null(ptr_type); }
  Operand Param(uint32_t index) { return function_->ParamOperand(index); }

  // --- value instructions ---
  Operand BinaryOp(BinOp op, Operand a, Operand b, Type result_type);
  Operand UnaryOp(UnOp op, Operand a, Type result_type);
  Operand Alloca(Type type);
  Operand NewObject(Type struct_type);
  Operand Load(Operand ptr);
  void Store(Operand ptr, Operand value);
  Operand Gep(Operand base, const std::vector<Operand>& indices, Type result_pointee);
  Operand Call(const std::string& callee, const std::vector<Operand>& args, Type result_type);
  Operand ListNew(Type elem_type);
  Operand ListLen(Operand list);
  Operand ListGet(Operand list, Operand index);
  Operand ListSet(Operand list, Operand index, Operand value);
  Operand ListAppend(Operand list, Operand value);
  Operand FieldGet(Operand aggregate, int64_t field_index);
  Operand Havoc(Type type);

  // --- terminators ---
  void Br(Operand cond, BlockId then_block, BlockId else_block);
  void Jmp(BlockId target);
  void Ret(Operand value);
  void RetVoid();
  void Panic(const std::string& message);

  // Creates a panic block (once per message per function) and returns its id.
  BlockId GetPanicBlock(const std::string& message);

 private:
  Operand Emit(Instr instr);

  Module* module_;
  Function* function_;
  BlockId current_ = kInvalidBlock;
  std::vector<std::pair<std::string, BlockId>> panic_blocks_;
};

}  // namespace dnsv

#endif  // DNSV_IR_BUILDER_H_

// Serialization of the interprocedural analysis results (src/analysis).
//
// The InterprocContext — callee summaries, per-parameter entry facts, and
// escape-proven protected allocations — is a pure function of the compiled
// module and the analysis roots, so it is stored keyed by the pre-prune
// ModuleFingerprint and replayed on warm runs instead of re-running the
// whole-module passes. The round-trip must be exact: the pruner consumes
// these facts to rewrite the module, and the store's prune-fingerprint
// cross-check (src/dnsv/pipeline.cc) asserts the warm rewrite produced the
// same post-prune module bytes as the cold one.
//
// The AnalysisStats outcome counters computed alongside (functions, purity,
// param facts, protected allocs — everything except the per-function SCCP
// folds, which re-run during pruning either way) travel with the context so
// replayed reports account identically to cold ones.
#ifndef DNSV_STORE_SUMMARY_IO_H_
#define DNSV_STORE_SUMMARY_IO_H_

#include <string>

#include "src/analysis/summary.h"

namespace dnsv {

// Encodes `ctx` plus the outcome counters of `stats` (timings excluded —
// they are run-local wall clock, not content).
std::string SerializeInterprocContext(const InterprocContext& ctx, const AnalysisStats& stats);

// Exact inverse; false (leaving outputs untouched or partially filled but
// unused) on any malformed input. `stats` receives the stored outcome
// counters with all timing fields zero.
bool ParseInterprocContext(const std::string& payload, InterprocContext* ctx,
                           AnalysisStats* stats);

}  // namespace dnsv

#endif  // DNSV_STORE_SUMMARY_IO_H_

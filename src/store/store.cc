#include "src/store/store.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "src/support/strings.h"

namespace fs = std::filesystem;

namespace dnsv {
namespace {

// Bump when the container format below changes; old files then read as
// corrupt and are recomputed (and eventually GC'd), never misparsed.
constexpr int kFileFormatVersion = 1;
constexpr char kMagic[] = "dnsvstore";

// One artifact file:
//   dnsvstore <ver> <kind>\n
//   key <len>\n<key bytes>\n
//   payload <len> <fnv1a64 hex>\n<payload bytes>\n
// The trailing newline doubles as an exact-length check: the file must end
// right after it, so truncation and appended garbage both fail verification.
std::string EncodeFile(const std::string& kind, const std::string& key,
                       const std::string& payload) {
  std::string out = StrCat(kMagic, " ", kFileFormatVersion, " ", kind, "\n");
  out += StrCat("key ", key.size(), "\n");
  out += key;
  out += '\n';
  out += StrCat("payload ", payload.size(), " ", HexU64(Fnv1a64(payload)), "\n");
  out += payload;
  out += '\n';
  return out;
}

// Splits off the next '\n'-terminated line; false when none remains.
bool TakeLine(std::string_view* rest, std::string_view* line) {
  size_t pos = rest->find('\n');
  if (pos == std::string_view::npos) return false;
  *line = rest->substr(0, pos);
  rest->remove_prefix(pos + 1);
  return true;
}

// Parses one artifact file; on success fills *key/*payload. Returns false on
// any structural defect.
bool DecodeFile(std::string_view data, std::string* key, std::string* payload) {
  std::string_view line;
  if (!TakeLine(&data, &line)) return false;
  std::vector<std::string> header = SplitString(std::string(line), ' ');
  if (header.size() != 3 || header[0] != kMagic ||
      header[1] != StrCat(kFileFormatVersion)) {
    return false;
  }
  if (!TakeLine(&data, &line)) return false;
  int64_t key_len = 0;
  if (!StartsWith(line, "key ") || !ParseInt64(line.substr(4), &key_len) || key_len < 0 ||
      static_cast<size_t>(key_len) + 1 > data.size()) {
    return false;
  }
  *key = std::string(data.substr(0, static_cast<size_t>(key_len)));
  data.remove_prefix(static_cast<size_t>(key_len));
  if (data.empty() || data[0] != '\n') return false;
  data.remove_prefix(1);
  if (!TakeLine(&data, &line)) return false;
  if (!StartsWith(line, "payload ")) return false;
  std::vector<std::string> fields = SplitString(std::string(line.substr(8)), ' ');
  int64_t payload_len = 0;
  if (fields.size() != 2 || !ParseInt64(fields[0], &payload_len) || payload_len < 0 ||
      fields[1].size() != 16) {
    return false;
  }
  // Exact length: the payload plus its final newline must be ALL that is left.
  if (data.size() != static_cast<size_t>(payload_len) + 1 || data.back() != '\n') {
    return false;
  }
  *payload = std::string(data.substr(0, static_cast<size_t>(payload_len)));
  if (HexU64(Fnv1a64(*payload)) != fields[1]) return false;
  return true;
}

int64_t MtimeNs(const fs::path& path) {
  std::error_code ec;
  fs::file_time_type t = fs::last_write_time(path, ec);
  if (ec) return 0;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t.time_since_epoch()).count();
}

}  // namespace

ArtifactStore::ArtifactStore(std::string root) : root_(std::move(root)) {}

ArtifactStore* ArtifactStore::FromEnv() {
  const char* dir = std::getenv("DNSV_STORE_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return nullptr;
  }
  // One instance per directory, never destroyed (mirrors QueryCache::Global).
  static std::mutex* mu = new std::mutex();
  static std::map<std::string, ArtifactStore*>* stores =
      new std::map<std::string, ArtifactStore*>();
  std::lock_guard<std::mutex> lock(*mu);
  auto [it, inserted] = stores->emplace(dir, nullptr);
  if (inserted) {
    it->second = new ArtifactStore(dir);
  }
  return it->second;
}

std::string ArtifactStore::PathFor(const std::string& kind, const std::string& key) const {
  // The key itself is arbitrary text; the file name is its content hash. The
  // key is stored (and re-checked) inside the file, so an fnv collision
  // degrades to a miss, never to wrong data.
  return (fs::path(root_) / kind / (HexU64(Fnv1a64(key)) + ".art")).string();
}

bool ArtifactStore::Put(const std::string& kind, const std::string& key,
                        const std::string& payload) {
  fs::path path = PathFor(kind, key);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = ++temp_seq_;
  }
  fs::path tmp = path;
  tmp += StrCat(".tmp.", static_cast<long long>(::getpid()), ".", seq);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.write_failures;
      return false;
    }
    std::string file = EncodeFile(kind, key, payload);
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    out.close();
    if (!out) {
      fs::remove(tmp, ec);
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.write_failures;
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.write_failures;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.writes;
  return true;
}

std::optional<std::string> ArtifactStore::ReadVerified(const std::string& path,
                                                       const std::string& key, bool* corrupt,
                                                       std::string* stored_key) {
  *corrupt = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;  // absent: a plain miss, not corruption
  }
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    *corrupt = true;
    return std::nullopt;
  }
  std::string file_key, payload;
  if (!DecodeFile(data, &file_key, &payload)) {
    *corrupt = true;
    return std::nullopt;
  }
  if (stored_key != nullptr) *stored_key = file_key;
  if (!key.empty() && file_key != key) {
    *corrupt = true;  // hash collision or renamed file: treat as damage
    return std::nullopt;
  }
  return payload;
}

std::optional<std::string> ArtifactStore::Get(const std::string& kind, const std::string& key) {
  std::string path = PathFor(kind, key);
  bool corrupt = false;
  std::optional<std::string> payload = ReadVerified(path, key, &corrupt, nullptr);
  if (payload.has_value()) {
    // Refresh the LRU clock; best-effort.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.hits;
    return payload;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.misses;
  if (corrupt) ++counters_.corrupt_rejected;
  return std::nullopt;
}

bool ArtifactStore::Contains(const std::string& kind, const std::string& key) {
  return Get(kind, key).has_value();
}

std::vector<ArtifactStore::Entry> ArtifactStore::List() {
  std::vector<Entry> entries;
  std::error_code ec;
  if (!fs::is_directory(root_, ec)) {
    return entries;
  }
  for (const fs::directory_entry& kind_dir : fs::directory_iterator(root_, ec)) {
    if (!kind_dir.is_directory()) continue;
    std::string kind = kind_dir.path().filename().string();
    std::error_code iter_ec;
    for (const fs::directory_entry& file : fs::directory_iterator(kind_dir.path(), iter_ec)) {
      if (!file.is_regular_file()) continue;
      if (file.path().extension() != ".art") continue;  // skip in-flight temps
      Entry entry;
      entry.kind = kind;
      entry.path = file.path().string();
      entry.bytes = static_cast<uint64_t>(file.file_size(ec));
      entry.mtime_ns = MtimeNs(file.path());
      bool corrupt = false;
      // Empty expected key: verify structure + checksum, recover stored key.
      std::optional<std::string> payload =
          ReadVerified(entry.path, "", &corrupt, &entry.key);
      entry.corrupt = !payload.has_value();
      entries.push_back(std::move(entry));
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.kind != b.kind ? a.kind < b.kind : a.path < b.path;
  });
  return entries;
}

ArtifactStore::StoreStats ArtifactStore::GetStats() {
  StoreStats stats;
  for (const Entry& entry : List()) {
    KindStats& kind = stats.kinds[entry.kind];
    ++kind.count;
    kind.bytes += static_cast<int64_t>(entry.bytes);
    ++stats.total_count;
    stats.total_bytes += static_cast<int64_t>(entry.bytes);
    if (entry.corrupt) ++stats.corrupt_count;
  }
  return stats;
}

int64_t ArtifactStore::GC(int64_t max_bytes) {
  std::vector<Entry> entries = List();
  // Corrupt files first (they can never hit), then least-recently-used.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.corrupt != b.corrupt) return a.corrupt;
    return a.mtime_ns < b.mtime_ns;
  });
  int64_t total = 0;
  for (const Entry& entry : entries) {
    total += static_cast<int64_t>(entry.bytes);
  }
  int64_t removed = 0;
  std::error_code ec;
  for (const Entry& entry : entries) {
    if (!entry.corrupt && total <= max_bytes) break;
    if (fs::remove(entry.path, ec)) {
      total -= static_cast<int64_t>(entry.bytes);
      ++removed;
    }
  }
  return removed;
}

int64_t ArtifactStore::Clear() {
  int64_t removed = 0;
  std::error_code ec;
  for (const Entry& entry : List()) {
    if (fs::remove(entry.path, ec)) ++removed;
  }
  return removed;
}

ArtifactStore::Counters ArtifactStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace dnsv

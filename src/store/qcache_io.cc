#include "src/store/qcache_io.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/smt/query_cache.h"
#include "src/store/codec.h"
#include "src/store/store.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

constexpr int kPersistShards = 16;
constexpr char kKind[] = "qcache";
// Schema version for the qcache artifacts; baked into every key.
constexpr char kSchema[] = "v1";

std::string ShardKey(int shard) { return StrCat(kKind, "|", kSchema, "|shard", shard); }
std::string MetaKey() { return StrCat(kKind, "|", kSchema, "|meta"); }

int ShardOf(const std::string& canonical_key) {
  // Deliberately NOT the in-memory shard function (std::hash is
  // implementation-defined); this one must be stable across builds.
  return static_cast<int>(Fnv1a64(canonical_key) % kPersistShards);
}

}  // namespace

int64_t LoadQueryCache(ArtifactStore* store, QueryCache* cache) {
  int64_t loaded = 0;
  for (int shard = 0; shard < kPersistShards; ++shard) {
    std::optional<std::string> payload = store->Get(kKind, ShardKey(shard));
    if (!payload.has_value()) continue;
    ArtifactDecoder dec(*payload);
    dec.Tag("qcache-shard");
    int64_t count = dec.Int();
    std::vector<std::pair<std::string, SatResult>> entries;
    for (int64_t i = 0; dec.ok() && i < count; ++i) {
      std::string key = dec.Str();
      int64_t verdict = dec.Int();
      if (!dec.ok() || (verdict != 0 && verdict != 1)) break;
      entries.emplace_back(std::move(key),
                           verdict == 0 ? SatResult::kSat : SatResult::kUnsat);
    }
    if (!dec.ok() || !dec.AtEnd() ||
        entries.size() != static_cast<size_t>(count)) {
      continue;  // damaged shard: load nothing from it, fall back to solving
    }
    for (auto& [key, verdict] : entries) {
      if (cache->LoadPersisted(key, verdict)) ++loaded;
    }
  }
  std::optional<std::string> meta = store->Get(kKind, MetaKey());
  if (meta.has_value()) {
    ArtifactDecoder dec(*meta);
    dec.Tag("qcache-meta");
    int64_t hits = dec.Int();
    int64_t misses = dec.Int();
    if (dec.ok() && dec.AtEnd() && hits >= 0 && misses >= 0) {
      cache->SetBaseCounters(hits, misses);
    }
  }
  return loaded;
}

int64_t FlushQueryCache(ArtifactStore* store, QueryCache* cache) {
  std::vector<std::pair<std::string, SatResult>> entries = cache->Snapshot();
  std::vector<std::vector<const std::pair<std::string, SatResult>*>> shards(kPersistShards);
  for (const auto& entry : entries) {
    shards[ShardOf(entry.first)].push_back(&entry);
  }
  int64_t written = 0;
  for (int shard = 0; shard < kPersistShards; ++shard) {
    if (shards[shard].empty()) continue;
    // Stable order within the shard: byte-identical files for equal content.
    std::sort(shards[shard].begin(), shards[shard].end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    ArtifactEncoder enc;
    enc.Tag("qcache-shard");
    enc.Int(static_cast<int64_t>(shards[shard].size()));
    for (const auto* entry : shards[shard]) {
      enc.Str(entry->first);
      enc.Int(entry->second == SatResult::kSat ? 0 : 1);
    }
    if (store->Put(kKind, ShardKey(shard), enc.Take())) {
      written += static_cast<int64_t>(shards[shard].size());
    }
  }
  QueryCache::Stats stats = cache->stats();
  ArtifactEncoder meta;
  meta.Tag("qcache-meta");
  meta.Int(stats.cumulative_hits);
  meta.Int(stats.cumulative_misses);
  store->Put(kKind, MetaKey(), meta.Take());
  return written;
}

}  // namespace dnsv

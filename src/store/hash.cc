#include "src/store/hash.h"

#include <algorithm>

#include "src/analysis/callgraph.h"
#include "src/ir/printer.h"
#include "src/support/strings.h"

namespace dnsv {

ModuleManifest BuildModuleManifest(const Module& module) {
  ModuleManifest manifest;
  manifest.module_fingerprint = ModuleFingerprint(module);
  CallGraph graph = CallGraph::Build(module);
  for (const auto& fn : module.functions()) {
    manifest.body_hash[fn->name()] = FunctionFingerprint(module, *fn);
  }
  // Bottom-up over the SCC DAG: every callee outside the current component
  // already has its cone hash. Within a component the members' fates are
  // tied (mutual recursion), so they share one combined hash, salted with
  // the member's own body hash to keep distinct members distinct.
  for (const std::vector<int>& scc : graph.SccsBottomUp()) {
    std::vector<std::string> parts;
    std::set<int> members(scc.begin(), scc.end());
    for (int node : scc) {
      const std::string& name = graph.function(node).name();
      parts.push_back(StrCat("body:", name, ":", HexU64(manifest.body_hash.at(name))));
      for (int callee : graph.Callees(node)) {
        if (members.count(callee) != 0) continue;  // intra-SCC: covered by bodies
        const std::string& callee_name = graph.function(callee).name();
        parts.push_back(
            StrCat("cone:", callee_name, ":", HexU64(manifest.cone_hash.at(callee_name))));
      }
      // Calls with no module body (the listEq intrinsic) are already spelled
      // out inside the body hash; nothing extra to fold.
    }
    std::sort(parts.begin(), parts.end());
    parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
    uint64_t combined = Fnv1a64(JoinStrings(parts, "\n"));
    for (int node : scc) {
      const std::string& name = graph.function(node).name();
      manifest.cone_hash[name] =
          Fnv1a64(StrCat("self:", HexU64(manifest.body_hash.at(name))), combined);
    }
  }
  return manifest;
}

uint64_t CombineConeHashes(const ModuleManifest& manifest,
                           const std::vector<std::string>& functions) {
  std::vector<std::string> parts;
  parts.reserve(functions.size());
  for (const std::string& name : functions) {
    auto it = manifest.cone_hash.find(name);
    parts.push_back(it != manifest.cone_hash.end()
                        ? StrCat(name, ":", HexU64(it->second))
                        : StrCat(name, ":absent"));
  }
  std::sort(parts.begin(), parts.end());
  return Fnv1a64(JoinStrings(parts, "\n"));
}

}  // namespace dnsv

#include "src/store/summary_io.h"

#include "src/store/codec.h"

namespace dnsv {
namespace {

void EncodeInterval(ArtifactEncoder* enc, const Interval& interval) {
  enc->Int(interval.lo);
  enc->Int(interval.hi);
}

Interval DecodeInterval(ArtifactDecoder* dec) {
  Interval interval;
  interval.lo = dec->Int();
  interval.hi = dec->Int();
  return interval;
}

void EncodeFacts(ArtifactEncoder* enc, const AbsFacts& facts) {
  EncodeInterval(enc, facts.range);
  enc->Int(static_cast<int64_t>(facts.boolean));
  enc->Int(static_cast<int64_t>(facts.nullness));
}

AbsFacts DecodeFacts(ArtifactDecoder* dec) {
  AbsFacts facts;
  facts.range = DecodeInterval(dec);
  int64_t boolean = dec->Int();
  int64_t nullness = dec->Int();
  if (boolean < 0 || boolean > 2 || nullness < 0 || nullness > 2) {
    // Force the sticky failure; AtEnd/ok checks below reject the artifact.
    dec->Tag("invalid-enum");
    return facts;
  }
  facts.boolean = static_cast<Bool3>(boolean);
  facts.nullness = static_cast<Null3>(nullness);
  return facts;
}

}  // namespace

std::string SerializeInterprocContext(const InterprocContext& ctx,
                                      const AnalysisStats& stats) {
  ArtifactEncoder enc;
  enc.Tag("interproc");
  enc.Int(static_cast<int64_t>(ctx.summaries.size()));
  for (const auto& [name, summary] : ctx.summaries) {
    enc.Str(name);
    enc.Bool(summary.analyzed);
    enc.Bool(summary.pure);
    enc.Bool(summary.heap_independent);
    enc.Bool(summary.may_panic);
    enc.Bool(summary.returns_nonnull);
    EncodeInterval(&enc, summary.return_range);
    enc.Int(static_cast<int64_t>(summary.return_bool));
  }
  enc.Int(static_cast<int64_t>(ctx.param_facts.size()));
  for (const auto& [name, facts] : ctx.param_facts) {
    enc.Str(name);
    enc.Int(static_cast<int64_t>(facts.size()));
    for (const AbsFacts& fact : facts) {
      EncodeFacts(&enc, fact);
    }
  }
  enc.Int(static_cast<int64_t>(ctx.protected_allocs.size()));
  for (const auto& [name, allocs] : ctx.protected_allocs) {
    enc.Str(name);
    enc.Int(static_cast<int64_t>(allocs.size()));
    for (uint32_t instr : allocs) {
      enc.Int(static_cast<int64_t>(instr));
    }
  }
  enc.Tag("analysis-counters");
  enc.Int(stats.functions);
  enc.Int(stats.pure_functions);
  enc.Int(stats.nonnull_returns);
  enc.Int(stats.const_returns);
  enc.Int(stats.param_fact_functions);
  enc.Int(stats.protected_allocs);
  return enc.Take();
}

bool ParseInterprocContext(const std::string& payload, InterprocContext* ctx,
                           AnalysisStats* stats) {
  InterprocContext out;
  AnalysisStats counters;
  ArtifactDecoder dec(payload);
  dec.Tag("interproc");
  int64_t num_summaries = dec.Int();
  for (int64_t i = 0; dec.ok() && i < num_summaries; ++i) {
    std::string name = dec.Str();
    CalleeSummary summary;
    summary.analyzed = dec.Bool();
    summary.pure = dec.Bool();
    summary.heap_independent = dec.Bool();
    summary.may_panic = dec.Bool();
    summary.returns_nonnull = dec.Bool();
    summary.return_range = DecodeInterval(&dec);
    int64_t return_bool = dec.Int();
    if (return_bool < 0 || return_bool > 2) return false;
    summary.return_bool = static_cast<Bool3>(return_bool);
    if (dec.ok()) out.summaries.emplace(std::move(name), summary);
  }
  int64_t num_param_facts = dec.Int();
  for (int64_t i = 0; dec.ok() && i < num_param_facts; ++i) {
    std::string name = dec.Str();
    int64_t count = dec.Int();
    if (!dec.ok() || count < 0 || count > 1024) return false;
    std::vector<AbsFacts> facts;
    facts.reserve(static_cast<size_t>(count));
    for (int64_t j = 0; dec.ok() && j < count; ++j) {
      facts.push_back(DecodeFacts(&dec));
    }
    if (dec.ok()) out.param_facts.emplace(std::move(name), std::move(facts));
  }
  int64_t num_protected = dec.Int();
  for (int64_t i = 0; dec.ok() && i < num_protected; ++i) {
    std::string name = dec.Str();
    int64_t count = dec.Int();
    if (!dec.ok() || count < 0) return false;
    std::set<uint32_t> allocs;
    for (int64_t j = 0; dec.ok() && j < count; ++j) {
      int64_t instr = dec.Int();
      if (instr < 0 || instr > UINT32_MAX) return false;
      allocs.insert(static_cast<uint32_t>(instr));
    }
    if (dec.ok()) out.protected_allocs.emplace(std::move(name), std::move(allocs));
  }
  dec.Tag("analysis-counters");
  counters.functions = dec.Int();
  counters.pure_functions = dec.Int();
  counters.nonnull_returns = dec.Int();
  counters.const_returns = dec.Int();
  counters.param_fact_functions = dec.Int();
  counters.protected_allocs = dec.Int();
  if (!dec.ok() || !dec.AtEnd()) return false;
  *ctx = std::move(out);
  *stats = counters;
  return true;
}

}  // namespace dnsv

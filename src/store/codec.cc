#include "src/store/codec.h"

#include <cstdio>
#include <cstdlib>

#include "src/support/strings.h"

namespace dnsv {

void ArtifactEncoder::Tag(std::string_view tag) {
  out_ += "T ";
  out_ += tag;
  out_ += '\n';
}

void ArtifactEncoder::Int(int64_t value) {
  out_ += "N ";
  out_ += StrCat(value);
  out_ += '\n';
}

void ArtifactEncoder::U64(uint64_t value) {
  out_ += "U ";
  out_ += HexU64(value);
  out_ += '\n';
}

void ArtifactEncoder::Double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "F %.17g\n", value);
  out_ += buf;
}

void ArtifactEncoder::Str(std::string_view value) {
  out_ += "S ";
  out_ += StrCat(value.size());
  out_ += '\n';
  out_ += value;
  out_ += '\n';
}

std::string_view ArtifactDecoder::NextLine() {
  if (!ok_) return {};
  size_t pos = rest_.find('\n');
  if (pos == std::string_view::npos) {
    Fail();
    return {};
  }
  std::string_view line = rest_.substr(0, pos);
  rest_.remove_prefix(pos + 1);
  return line;
}

std::string_view ArtifactDecoder::Field(char kind) {
  std::string_view line = NextLine();
  if (!ok_) return {};
  if (line.size() < 2 || line[0] != kind || line[1] != ' ') {
    Fail();
    return {};
  }
  return line.substr(2);
}

void ArtifactDecoder::Tag(std::string_view expected) {
  std::string_view got = Field('T');
  if (ok_ && got != expected) Fail();
}

int64_t ArtifactDecoder::Int() {
  std::string_view text = Field('N');
  if (!ok_) return 0;
  int64_t value = 0;
  if (!ParseInt64(text, &value)) {
    Fail();
    return 0;
  }
  return value;
}

uint64_t ArtifactDecoder::U64() {
  std::string_view text = Field('U');
  if (!ok_) return 0;
  if (text.size() != 16) {
    Fail();
    return 0;
  }
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      Fail();
      return 0;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return value;
}

double ArtifactDecoder::Double() {
  std::string_view text = Field('F');
  if (!ok_) return 0;
  // strtod needs a terminated buffer; field lines are short.
  std::string buf(text);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end == nullptr || *end != '\0' || buf.empty()) {
    Fail();
    return 0;
  }
  return value;
}

std::string ArtifactDecoder::Str() {
  std::string_view len_text = Field('S');
  if (!ok_) return {};
  int64_t len = 0;
  if (!ParseInt64(len_text, &len) || len < 0 ||
      static_cast<size_t>(len) + 1 > rest_.size()) {
    Fail();
    return {};
  }
  std::string value(rest_.substr(0, static_cast<size_t>(len)));
  rest_.remove_prefix(static_cast<size_t>(len));
  if (rest_.empty() || rest_[0] != '\n') {
    Fail();
    return {};
  }
  rest_.remove_prefix(1);
  return value;
}

}  // namespace dnsv

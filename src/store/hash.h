// Stable structural hashes over AbsIR, the foundation of the store's keys.
//
// Two hash granularities per function (docs/INCREMENTAL.md):
//
//   body hash — FunctionFingerprint (src/ir/printer.h): the function's own
//   printed form. Equal across modules/versions whenever the source text
//   compiled to the same IR, because the printer spells types and callees by
//   name, never by table index.
//
//   cone hash — the body hash combined with the cone hashes of everything
//   the function can transitively call (its "call cone"). A function's cone
//   hash changes iff its own body or any transitive callee changed, which is
//   exactly the invalidation condition for a cached exploration of that
//   function. Computed bottom-up over the call graph's SCC DAG; members of a
//   recursive SCC share the component's combined hash, salted with their own
//   body hash.
//
// Layer hashes fold the cone hashes of a layer's member functions, so a
// Fig.-5 layer is "reusable" exactly when nothing at or below it changed.
#ifndef DNSV_STORE_HASH_H_
#define DNSV_STORE_HASH_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ir/function.h"

namespace dnsv {

struct ModuleManifest {
  uint64_t module_fingerprint = 0;  // ModuleFingerprint of the whole module
  std::map<std::string, uint64_t> body_hash;  // per function
  std::map<std::string, uint64_t> cone_hash;  // per function, callees folded in
};

// Hashes every function of `module`. Deterministic: depends only on the
// module's printed form and call structure.
ModuleManifest BuildModuleManifest(const Module& module);

// Folds the cone hashes of `functions` (sorted by name; absent functions
// contribute a distinct marker so "layer lost a function" changes the hash).
uint64_t CombineConeHashes(const ModuleManifest& manifest,
                           const std::vector<std::string>& functions);

}  // namespace dnsv

#endif  // DNSV_STORE_HASH_H_

// Persistence for the solver QueryCache (src/smt/query_cache.h).
//
// Cached sat/unsat verdicts are keyed by canonical query strings that are
// self-contained (no arena handles), so they are safe to share not only
// across sessions but across processes: a warm store lets a fresh run answer
// most feasibility checks without ever constructing a Z3 solver for them.
//
// Entries are spread over a fixed number of shard artifacts (by FNV of the
// canonical key, independent of the in-memory shard function) to keep files
// small enough for cheap rewrite-on-flush. A meta artifact carries the
// lifetime hit/miss counters so statistics survive process restarts (the
// QueryCache::Global() counters alone reset per process). Flush writes a
// union of disk and fresh entries when the cache was loaded first; verdict
// conflicts cannot happen (all writers agree by soundness).
#ifndef DNSV_STORE_QCACHE_IO_H_
#define DNSV_STORE_QCACHE_IO_H_

#include <cstdint>

namespace dnsv {

class ArtifactStore;
class QueryCache;

// Loads every persisted verdict into `cache` (insert-if-absent, marked as
// disk-loaded) and installs the lifetime base counters. Returns the number
// of entries loaded; corrupt shards are skipped (they simply load nothing).
int64_t LoadQueryCache(ArtifactStore* store, QueryCache* cache);

// Writes the cache's current entries (memory + previously loaded) back to
// the store, plus the updated lifetime counters. Returns entries written.
int64_t FlushQueryCache(ArtifactStore* store, QueryCache* cache);

}  // namespace dnsv

#endif  // DNSV_STORE_QCACHE_IO_H_

// Line-oriented token codec for artifact payloads (docs/INCREMENTAL.md).
//
// Artifacts must survive two hostile conditions: schema drift between repo
// revisions and on-disk corruption. The codec therefore refuses silently
// instead of guessing — every read is tagged, every string is
// length-prefixed, and the decoder carries a sticky ok() flag. A consumer
// that finishes decoding with ok() false treats the artifact as absent and
// falls back to cold computation; no partially-decoded value is ever used.
//
// Wire forms (one record per line; S carries raw bytes after its line):
//   T <tag>            record-type marker, decoder must ask for it by name
//   N <decimal>        int64
//   U <16 hex digits>  uint64 (hashes)
//   F <%.17g>          double (round-trips every finite IEEE value)
//   S <len>\n<bytes>\n string, arbitrary content including newlines
#ifndef DNSV_STORE_CODEC_H_
#define DNSV_STORE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace dnsv {

class ArtifactEncoder {
 public:
  void Tag(std::string_view tag);
  void Int(int64_t value);
  void U64(uint64_t value);
  void Double(double value);
  void Str(std::string_view value);
  void Bool(bool value) { Int(value ? 1 : 0); }

  const std::string& payload() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class ArtifactDecoder {
 public:
  explicit ArtifactDecoder(std::string_view payload) : rest_(payload) {}

  // Each reader returns a default value and latches ok() to false on any
  // mismatch (wrong record type, wrong tag, malformed number, truncation).
  void Tag(std::string_view expected);
  int64_t Int();
  uint64_t U64();
  double Double();
  std::string Str();
  bool Bool() { return Int() != 0; }

  // True when every read so far matched and consumed well-formed input.
  bool ok() const { return ok_; }
  // True when the input is fully consumed (trailing data is schema drift).
  bool AtEnd() const { return rest_.empty(); }

 private:
  // Takes the next line (without the newline); fails on missing newline.
  std::string_view NextLine();
  // Takes the next line and checks its leading "<kind> " marker.
  std::string_view Field(char kind);
  void Fail() { ok_ = false; }

  std::string_view rest_;
  bool ok_ = true;
};

}  // namespace dnsv

#endif  // DNSV_STORE_CODEC_H_

// Content-addressed on-disk artifact store (docs/INCREMENTAL.md).
//
// The verification stack treats every expensive result — a full
// VerificationReport, interprocedural summary facts, the solver query cache,
// per-function/per-layer exploration markers, AOT-generated code — as an
// artifact addressed by a self-describing content key. Keys bake in a schema
// version plus the structural hashes (src/store/hash.h) of everything the
// artifact depends on, so a new engine version, a changed zone, changed
// options, or a bumped serialization format all miss cleanly; nothing is
// ever invalidated in place.
//
// Corruption policy: a Get that finds anything other than a byte-perfect
// artifact — wrong magic, wrong format version, key mismatch, truncated or
// checksum-failing payload — counts it as corrupt and reports a miss. The
// caller then recomputes cold; a damaged store can cost time but never an
// answer (tests/store/store_tamper_test.cc).
//
// Layout: <root>/<kind>/<fnv1a64(key) as 16 hex>.art, one artifact per file.
// Writes go through a temp file + rename, so concurrent writers of the same
// key race to an identical result and readers never observe a torn file.
#ifndef DNSV_STORE_STORE_H_
#define DNSV_STORE_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace dnsv {

class ArtifactStore {
 public:
  // Creates <root> (and per-kind subdirectories lazily) on first write.
  explicit ArtifactStore(std::string root);
  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  // The store named by DNSV_STORE_DIR, or nullptr when the variable is
  // unset/empty. One instance per directory per process (the instances are
  // never destroyed: pipeline runs may outlive static teardown order).
  static ArtifactStore* FromEnv();

  const std::string& root() const { return root_; }

  // Writes `payload` under (kind, key), atomically replacing any previous
  // artifact. Returns false on I/O failure (callers treat the store as
  // best-effort; verification correctness never depends on a write landing).
  bool Put(const std::string& kind, const std::string& key, const std::string& payload);

  // Returns the payload iff a well-formed artifact whose recorded key equals
  // `key` exists; anything else is a miss. A hit refreshes the file's mtime
  // (the GC's LRU clock).
  std::optional<std::string> Get(const std::string& kind, const std::string& key);

  // Get without reading the payload into the caller: true iff Get would hit.
  bool Contains(const std::string& kind, const std::string& key);

  struct Entry {
    std::string kind;
    std::string key;        // empty when the file is corrupt
    uint64_t bytes = 0;     // file size on disk
    int64_t mtime_ns = 0;   // last-use time (Get refreshes it)
    std::string path;
    bool corrupt = false;
  };
  // Every artifact file under the root, corrupt ones included, sorted by
  // (kind, path) for stable output.
  std::vector<Entry> List();

  struct KindStats {
    int64_t count = 0;
    int64_t bytes = 0;
  };
  struct StoreStats {
    std::map<std::string, KindStats> kinds;
    int64_t total_count = 0;
    int64_t total_bytes = 0;
    int64_t corrupt_count = 0;
  };
  StoreStats GetStats();

  // Deletes least-recently-used artifacts (by mtime) until the store's total
  // size is <= max_bytes; corrupt files go first. Returns files removed.
  int64_t GC(int64_t max_bytes);

  // Removes every artifact (the per-kind directories stay).
  int64_t Clear();

  // Process-local access counters (not persisted).
  struct Counters {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t writes = 0;
    int64_t corrupt_rejected = 0;  // subset of misses
    int64_t write_failures = 0;
  };
  Counters counters() const;

 private:
  std::string PathFor(const std::string& kind, const std::string& key) const;
  // Reads + verifies one artifact file; nullopt (and *corrupt when the file
  // exists but is damaged) on any defect.
  std::optional<std::string> ReadVerified(const std::string& path, const std::string& key,
                                          bool* corrupt, std::string* stored_key);

  std::string root_;
  mutable std::mutex mu_;  // guards counters_ and temp-name generation
  Counters counters_;
  uint64_t temp_seq_ = 0;
};

}  // namespace dnsv

#endif  // DNSV_STORE_STORE_H_

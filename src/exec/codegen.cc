#include "src/exec/codegen.h"

#include <cctype>
#include <cstdio>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/analysis/alias.h"
#include "src/analysis/callgraph.h"
#include "src/analysis/escape.h"
#include "src/analysis/summary.h"
#include "src/support/logging.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

// C++ enumerator spelling of an EngineVersion, for the generated GenModule.
const char* VersionEnumerator(EngineVersion version) {
  switch (version) {
    case EngineVersion::kV1: return "EngineVersion::kV1";
    case EngineVersion::kV2: return "EngineVersion::kV2";
    case EngineVersion::kV3: return "EngineVersion::kV3";
    case EngineVersion::kDev: return "EngineVersion::kDev";
    case EngineVersion::kGolden: return "EngineVersion::kGolden";
    case EngineVersion::kV4: return "EngineVersion::kV4";
    case EngineVersion::kV5: return "EngineVersion::kV5";
  }
  DNSV_CHECK(false);
  return "?";
}

// Escapes arbitrary text into a C++ string literal. Octal escapes are always
// three digits so they cannot swallow a following literal digit.
std::string CppStringLiteral(const std::string& text) {
  std::string out = "\"";
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20 || c >= 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\%03o", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += "\"";
  return out;
}

std::string IntLiteral(int64_t v) {
  // INT64_MIN has no representable positive literal; spell it as an
  // expression.
  if (v == INT64_MIN) {
    return "(-9223372036854775807LL - 1)";
  }
  return StrCat(v, "LL");
}

// Maps AbsIR function names to unique C++ identifiers (fn_resolve, ...).
class SymbolTable {
 public:
  explicit SymbolTable(const Module& module) {
    std::set<std::string> used;
    for (const auto& fn : module.functions()) {
      std::string sym = "fn_";
      for (char c : fn->name()) {
        sym += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
      }
      while (used.count(sym) != 0) {
        sym += '_';
      }
      used.insert(sym);
      by_name_.emplace(fn->name(), sym);
    }
  }

  const std::string& Symbol(const std::string& fn_name) const {
    auto it = by_name_.find(fn_name);
    DNSV_CHECK_MSG(it != by_name_.end(), "codegen: call to unknown function " + fn_name);
    return it->second;
  }

 private:
  std::unordered_map<std::string, std::string> by_name_;
};

// The Go zero value of `type` as a C++ expression (mirrors ZeroValueOf,
// unrolled at codegen time — struct shapes are static, so no runtime type
// walk is needed).
std::string ZeroExpr(const TypeTable& types, Type type) {
  switch (types.kind(type)) {
    case TypeKind::kInt:
      return "Value::Int(0)";
    case TypeKind::kBool:
      return "Value::Bool(false)";
    case TypeKind::kPtr:
      return "Value::NullPtr()";
    case TypeKind::kList:
      return "Value::List()";
    case TypeKind::kStruct: {
      const StructDef& def = types.GetStruct(type);
      std::string out = "Value::Struct(std::vector<Value>{";
      for (size_t i = 0; i < def.fields.size(); ++i) {
        if (i > 0) out += ", ";
        out += ZeroExpr(types, def.fields[i].type);
      }
      return out + "})";
    }
    case TypeKind::kVoid:
      return "Value::Unit()";
  }
  DNSV_CHECK(false);
  return "Value::Unit()";
}

// Emits the body of one AbsIR function as goto-threaded C++. The lowering is
// a statement-for-statement transliteration of Interpreter::RunFrame; any
// behavioral difference between the two is a bug the backend differential
// (src/fuzz) is designed to catch.
//
// Eight wire-behavior-preserving optimizations make the generated code much
// faster than re-tracing the interpreter's exact memory traffic
// (docs/BACKEND.md §performance):
//
//   * Alloca promotion (mem2reg): a kAlloca whose pointer is used ONLY as
//     the direct address of kLoad/kStore never escapes, so its cell lives in
//     a C++ local (`aN`) instead of ConcreteMemory. No Alloc, no Resolve, no
//     null checks — and none of those checks could ever fire on such a cell
//     (a fresh block with an empty path always resolves), so no panic is
//     lost. The interpreter still heap-allocates these cells, which is why
//     the compiled backend's heap grows slower; block NUMBERING also
//     diverges, but block ids never reach wire output and kPtrEq only needs
//     distinctness, which renumbering preserves.
//   * Load forwarding: a run of single-use loads from promoted slots
//     consumed by the instruction immediately after the run reads the slots
//     in place instead of deep-copying each cell into a register. Only other
//     loads sit between the forwarded read and its original position, so the
//     observed values are identical.
//   * Append/set fusion: the load/kListAppend/kStore (and kListSet) triple
//     the frontend emits for `xs = append(xs, v)` mutates the promoted slot
//     in place — O(1) instead of copying the list twice per append. Fusion
//     is skipped when another operand reads the same slot, which keeps the
//     copy-then-mutate order observable in that (self-referential) case.
//   * Pointer projection: a single-use kLoad/kFieldGet/kListGet whose one
//     consumer is the immediately-following kFieldGet/kListGet/kListLen
//     produces a `const Value*` into the cell (or into a live local) instead
//     of deep-copying a whole struct/list just to extract one member. All
//     null/resolve/bounds checks stay at their original program points, and
//     nothing between the pointer's birth and its only use can allocate or
//     mutate, so the pointer cannot dangle and the values read are the ones
//     the interpreter's copies would have held.
//   * Last-use moves: an operand register whose structural single def and
//     single use sit in the same basic block is dead after that use, so
//     sinks (kStore, kRet, list ops, fused appends) take it by std::move —
//     turning vector<Value> deep copies into pointer swaps. kRet may move
//     any non-param register: the frame is gone after the return.
//   * Parameter copy elision: the frontend's prologue stores every
//     parameter into an alloca slot. When that promoted slot has no OTHER
//     store anywhere in the function, it holds exactly the parameter for
//     its whole lifetime — a parameter is a const reference that cannot
//     change while the frame runs, and re-executing the entry block
//     re-stores the same parameter. The slot, the prologue's deep copy,
//     and every load of the slot vanish; uses read `pK` directly. kRet
//     routes such registers through a temporary exactly like a raw
//     parameter, since `*ret` may alias the caller's value.
//   * Cross-call load forwarding (interprocedural): a pending forwardable
//     load stays live across a call whose summary (src/analysis/summary.h)
//     proves the callee pure — a pure callee writes no caller-reachable
//     memory, so no promoted slot changes while it runs and the slot read
//     at the consumer equals the value the interpreter copied at the
//     original load position. Promoted slot addresses never escape the
//     frame, so purity is already stronger than required; demanding an
//     analyzed summary keeps the justification a checked module-wide fact.
//   * Heap-allocation stack promotion (interprocedural): a kNewObject the
//     module-wide escape analysis (src/analysis/escape.h) proves
//     query-local — never stored into another object, never returned,
//     never passed to any callee — and whose pointer is used only as the
//     direct address of kLoad/kStore lives in a C++ local exactly like a
//     promoted alloca. Heap numbering diverges from the interpreter's the
//     same way alloca promotion makes it diverge, and is unobservable for
//     the same reason: the pointer never reaches kPtrEq or the wire.
class FunctionEmitter {
 public:
  FunctionEmitter(const Module& module, const Function& fn, const SymbolTable& symbols,
                  const InterprocContext& interproc, const EscapeResult& escapes,
                  std::ostream& out)
      : module_(module),
        fn_(fn),
        symbols_(symbols),
        interproc_(interproc),
        escapes_(escapes),
        out_(out) {}

  void Emit() {
    Analyze();
    out_ << Signature(symbols_.Symbol(fn_.name()), fn_) << " {\n";
    // Depth accounting: the interpreter's entry frame runs at depth 0 and a
    // callee at depth d panics when d > kMaxCallDepth; here the entry frame
    // counts as 1 live frame, so the same query panics at the same call site
    // with kGenMaxCallDepth = kMaxCallDepth + 1 (see gen_support.h).
    out_ << "  if (ctx.depth >= kGenMaxCallDepth) "
            "return GenPanic(ctx, \"call depth limit exceeded\");\n";
    out_ << "  DepthScope depth_guard(ctx);\n";
    // All registers are declared ahead of the first label: C++ forbids a
    // goto that jumps into the scope of a non-vacuously-initialized local.
    for (uint32_t i = 0; i < fn_.num_instrs(); ++i) {
      const Instr& instr = fn_.instr(i);
      if ((instr.op == Opcode::kAlloca || instr.op == Opcode::kNewObject) && promoted_[i]) {
        if (slot_param_alias_[i] < 0) {
          out_ << "  Value a" << i << ";\n";  // the promoted cell itself
        }
        // A param-aliased slot has no storage at all: uses read pK.
      } else if (projectable_[i]) {
        out_ << "  const Value* q" << i << " = nullptr;\n";  // projection, not a copy
      } else if (instr.ProducesValue() && param_load_[i] < 0) {
        out_ << "  Value r" << i << ";\n";
      }
    }
    for (BlockId b = 0; b < fn_.num_blocks(); ++b) {
      out_ << "bb" << b << ":  // " << fn_.block(b).label << "\n";
      EmitBlock(fn_.block(b).instrs);
    }
    out_ << "}\n";
  }

  static std::string Signature(const std::string& symbol, const Function& fn) {
    std::string out = StrCat("bool ", symbol, "(GenCtx& ctx");
    for (size_t i = 0; i < fn.params().size(); ++i) {
      out += StrCat(", const Value& p", i);
    }
    out += ", Value* ret)";
    return out;
  }

 private:
  // Per-function dataflow facts backing the three optimizations. Result
  // registers are instruction indices, so "defined once" is structural; the
  // only analysis needed is use counting and the alloca escape check.
  void Analyze() {
    use_count_.assign(fn_.num_instrs(), 0);
    single_user_.assign(fn_.num_instrs(), 0);
    promoted_.assign(fn_.num_instrs(), false);
    for (uint32_t j = 0; j < fn_.num_instrs(); ++j) {
      for (const Operand& op : fn_.instr(j).operands) {
        if (op.kind == Operand::Kind::kReg && !Function::IsParamReg(op.reg)) {
          use_count_[op.reg]++;
          single_user_[op.reg] = j;
        }
      }
    }
    for (uint32_t i = 0; i < fn_.num_instrs(); ++i) {
      const Instr& site = fn_.instr(i);
      // kAlloca qualifies on the local use check alone. A kNewObject is a
      // real heap object, so it additionally needs the module-wide escape
      // analysis to prove the object dies with the frame.
      bool candidate = site.op == Opcode::kAlloca ||
                       (site.op == Opcode::kNewObject && escapes_.IsLocal(fn_.name(), i));
      if (!candidate) {
        continue;
      }
      bool address_escapes = false;
      for (uint32_t j = 0; j < fn_.num_instrs() && !address_escapes; ++j) {
        const Instr& user = fn_.instr(j);
        for (size_t k = 0; k < user.operands.size(); ++k) {
          const Operand& op = user.operands[k];
          if (op.kind != Operand::Kind::kReg || op.reg != i) {
            continue;
          }
          bool direct_addr = (user.op == Opcode::kLoad || user.op == Opcode::kStore) && k == 0;
          if (!direct_addr) {
            address_escapes = true;
            break;
          }
        }
      }
      promoted_[i] = !address_escapes;
      if (promoted_[i] && site.op == Opcode::kNewObject) {
        ++stack_promoted_;
      }
    }
    // Parameter copy elision (see the class comment). A promoted slot
    // qualifies when its ONLY store is `store slot, pK` in the entry block
    // and no entry-block load of the slot precedes that store positionally
    // (loads in later blocks always run after the entry block finishes, so
    // they observe the stored parameter regardless of their numbering).
    slot_param_alias_.assign(fn_.num_instrs(), -1);
    param_load_.assign(fn_.num_instrs(), -1);
    const std::vector<uint32_t>& entry = fn_.block(0).instrs;
    const std::unordered_set<uint32_t> entry_instrs(entry.begin(), entry.end());
    for (uint32_t i = 0; i < fn_.num_instrs(); ++i) {
      if (fn_.instr(i).op != Opcode::kAlloca || !promoted_[i]) {
        continue;
      }
      int store_count = 0;
      uint32_t store_idx = 0;
      for (uint32_t j = 0; j < fn_.num_instrs(); ++j) {
        const Instr& user = fn_.instr(j);
        if (user.op == Opcode::kStore && user.operands[0].kind == Operand::Kind::kReg &&
            user.operands[0].reg == i) {
          ++store_count;
          store_idx = j;
        }
      }
      if (store_count != 1) {
        continue;
      }
      const Instr& st = fn_.instr(store_idx);
      if (st.operands[1].kind != Operand::Kind::kReg ||
          !Function::IsParamReg(st.operands[1].reg) || entry_instrs.count(store_idx) == 0) {
        continue;
      }
      bool load_before_store = false;
      for (uint32_t idx : entry) {
        if (idx == store_idx) {
          break;
        }
        const Instr& user = fn_.instr(idx);
        if (user.op == Opcode::kLoad && user.operands[0].kind == Operand::Kind::kReg &&
            user.operands[0].reg == i) {
          load_before_store = true;
          break;
        }
      }
      if (load_before_store) {
        continue;
      }
      slot_param_alias_[i] = static_cast<int>(Function::ParamIndex(st.operands[1].reg));
    }
    for (uint32_t j = 0; j < fn_.num_instrs(); ++j) {
      const Instr& user = fn_.instr(j);
      if (user.op == Opcode::kLoad && user.operands[0].kind == Operand::Kind::kReg &&
          !Function::IsParamReg(user.operands[0].reg) &&
          slot_param_alias_[user.operands[0].reg] >= 0) {
        param_load_[j] = slot_param_alias_[user.operands[0].reg];
      }
    }
    // Pointer projection (see the class comment). The producer must be an
    // lvalue source: a kLoad resolves to a real cell, while kFieldGet /
    // kListGet need a register base (a literal base would make the pointer
    // point into a dead temporary).
    projectable_.assign(fn_.num_instrs(), false);
    for (BlockId b = 0; b < fn_.num_blocks(); ++b) {
      const std::vector<uint32_t>& instrs = fn_.block(b).instrs;
      for (size_t t = 0; t + 1 < instrs.size(); ++t) {
        uint32_t x = instrs[t];
        const Instr& producer = fn_.instr(x);
        bool lvalue_source =
            (producer.op == Opcode::kLoad && !IsPromotedSlotAddr(producer.operands[0])) ||
            ((producer.op == Opcode::kFieldGet || producer.op == Opcode::kListGet) &&
             producer.operands[0].kind == Operand::Kind::kReg);
        if (!lvalue_source || use_count_[x] != 1 || single_user_[x] != instrs[t + 1]) {
          continue;
        }
        const Instr& user = fn_.instr(instrs[t + 1]);
        bool projecting_user = user.op == Opcode::kFieldGet || user.op == Opcode::kListGet ||
                               user.op == Opcode::kListLen;
        if (projecting_user && user.operands[0].kind == Operand::Kind::kReg &&
            user.operands[0].reg == x) {
          projectable_[x] = true;
        }
      }
    }
  }

  // True when `op` names a register that is dead after the instruction at
  // `user` consumes it: structurally single-def (reg == defining index),
  // statically single-use, and defined in the block currently being emitted,
  // so one dynamic def precedes each dynamic use. Such operands can be
  // std::move'd into their sink. Forwarded (subst_) and projected operands
  // name live storage and are never movable.
  bool MovableInto(const Operand& op, uint32_t user) const {
    return op.kind == Operand::Kind::kReg && !Function::IsParamReg(op.reg) &&
           use_count_[op.reg] == 1 && single_user_[op.reg] == user &&
           block_instrs_.count(op.reg) != 0 && !projectable_[op.reg] &&
           subst_.count(op.reg) == 0 && !promoted_[op.reg] && param_load_[op.reg] < 0;
  }

  // ValueExpr, wrapped in std::move when the operand is provably dead after
  // `user` (or after the whole frame, for kRet).
  std::string SinkExpr(const Operand& op, uint32_t user) const {
    std::string expr = ValueExpr(op);
    if (MovableInto(op, user)) {
      return StrCat("std::move(", expr, ")");
    }
    return expr;
  }

  // A load that reads a promoted slot and feeds exactly one consumer — the
  // candidate for forwarding and fusion.
  bool IsForwardableLoad(uint32_t index) const {
    const Instr& instr = fn_.instr(index);
    return instr.op == Opcode::kLoad && instr.operands[0].kind == Operand::Kind::kReg &&
           !Function::IsParamReg(instr.operands[0].reg) &&
           promoted_[instr.operands[0].reg] && use_count_[index] == 1 &&
           param_load_[index] < 0;  // aliased loads vanish entirely instead
  }

  uint32_t SlotOf(uint32_t load_index) const {
    return fn_.instr(load_index).operands[0].reg;
  }

  // A call the forwarding pass may float pending loads across: the callee
  // summary proves it pure, i.e. it writes no caller-reachable memory, so
  // no promoted slot changes while it runs. (Slot addresses never leave the
  // frame, so purity is stronger than strictly necessary — but it is a
  // checked interprocedural fact, not an argument the emitter re-derives.)
  bool IsForwardTransparentCall(uint32_t index) const {
    const Instr& instr = fn_.instr(index);
    if (instr.op != Opcode::kCall) {
      return false;
    }
    if (IsIntrinsicCallee(instr.text)) {
      return true;  // listEq compares value lists; it touches no heap cell
    }
    const CalleeSummary* summary = interproc_.SummaryFor(instr.text);
    return summary != nullptr && summary->analyzed && summary->pure;
  }

  // Emits one basic block. Forwardable loads are not emitted eagerly: each
  // stays pending until its single consumer arrives (the slot is then read
  // in place of the copy), a slot-mutating instruction forces a flush, or —
  // the interprocedural case — it is carried across a summarized pure call
  // to a consumer on the far side.
  void EmitBlock(const std::vector<uint32_t>& instrs) {
    block_instrs_.clear();
    block_instrs_.insert(instrs.begin(), instrs.end());
    std::vector<uint32_t> pending;  // forwardable loads awaiting their consumer
    size_t i = 0;
    while (i < instrs.size()) {
      uint32_t index = instrs[i];
      if (IsForwardableLoad(index)) {
        pending.push_back(index);
        ++i;
        continue;
      }
      subst_.clear();
      std::vector<uint32_t> carried;
      const bool transparent = IsForwardTransparentCall(index);
      for (uint32_t load : pending) {
        if (single_user_[load] == index) {
          subst_[load] = StrCat("a", SlotOf(load));
        } else if (transparent) {
          carried.push_back(load);
          ++cross_call_forwards_;
        } else {
          EmitInstr(load);  // consumed later or in another block
        }
      }
      // A fused mutation writes its slot in place, which is why every
      // pending load it does not consume was flushed above (append/set is
      // never transparent): no pending read can observe the mutated cell.
      if (TryEmitFusedMutation(instrs, i)) {
        subst_.clear();
        pending = std::move(carried);
        i += 2;  // the mutation consumed the op and its store
        continue;
      }
      EmitInstr(index);
      subst_.clear();
      pending = std::move(carried);
      ++i;
    }
    // Unreachable — blocks end in a terminator, which is never a load and
    // never transparent, so the last iteration drained `pending` — but a
    // dropped load would silently change behavior, so flush defensively.
    for (uint32_t load : pending) {
      EmitInstr(load);
    }
  }

  // load aS; rB = listappend/listset rA, ...; store aS, rB  →  mutate the
  // slot in place. Preconditions checked here; see the class comment for why
  // this is observably identical.
  bool TryEmitFusedMutation(const std::vector<uint32_t>& instrs, size_t op_pos) {
    if (op_pos + 1 >= instrs.size()) {
      return false;
    }
    uint32_t op_index = instrs[op_pos];
    const Instr& op = fn_.instr(op_index);
    if (op.op != Opcode::kListAppend && op.op != Opcode::kListSet) {
      return false;
    }
    // The list operand must be a load forwarded from a promoted slot.
    const Operand& list_op = op.operands[0];
    if (list_op.kind != Operand::Kind::kReg || subst_.count(list_op.reg) == 0) {
      return false;
    }
    uint32_t slot = SlotOf(list_op.reg);
    // The result must feed exactly the store that writes the same slot back.
    uint32_t store_index = instrs[op_pos + 1];
    const Instr& store = fn_.instr(store_index);
    if (store.op != Opcode::kStore || use_count_[op_index] != 1 ||
        single_user_[op_index] != store_index) {
      return false;
    }
    if (store.operands[0].kind != Operand::Kind::kReg || store.operands[0].reg != slot ||
        store.operands[1].kind != Operand::Kind::kReg || store.operands[1].reg != op_index) {
      return false;
    }
    // A value/index operand forwarded from the same slot would read the cell
    // mid-mutation; keep the interpreter's copy-then-store order instead.
    for (size_t k = 1; k < op.operands.size(); ++k) {
      const Operand& other = op.operands[k];
      if (other.kind == Operand::Kind::kReg && subst_.count(other.reg) != 0 &&
          SlotOf(other.reg) == slot) {
        return false;
      }
    }
    if (op.op == Opcode::kListAppend) {
      out_ << "  a" << slot << ".elems.push_back(" << SinkExpr(op.operands[1], op_index)
           << ");\n";
    } else {
      out_ << "  {\n"
           << "    int64_t idx = " << IntExpr(op.operands[1]) << ";\n"
           << "    if (idx < 0 || static_cast<size_t>(idx) >= a" << slot
           << ".elems.size()) return GenPanic(ctx, \"index out of range\");\n"
           << "    a" << slot << ".elems[static_cast<size_t>(idx)] = "
           << ValueExpr(op.operands[2]) << ";\n"
           << "  }\n";
    }
    return true;
  }

  // The C++ variable holding a register: parameters are p<k>, instruction
  // results r<index>.
  static std::string RegName(uint32_t reg) {
    if (Function::IsParamReg(reg)) {
      return StrCat("p", Function::ParamIndex(reg));
    }
    return StrCat("r", reg);
  }

  // An operand as a Value expression (variable reference, forwarded slot, or
  // literal).
  std::string ValueExpr(const Operand& op) const {
    switch (op.kind) {
      case Operand::Kind::kReg: {
        if (!Function::IsParamReg(op.reg)) {
          if (projectable_[op.reg]) {
            return StrCat("(*q", op.reg, ")");
          }
          if (param_load_[op.reg] >= 0) {
            return StrCat("p", param_load_[op.reg]);
          }
          auto it = subst_.find(op.reg);
          if (it != subst_.end()) {
            return it->second;
          }
        }
        return RegName(op.reg);
      }
      case Operand::Kind::kIntConst:
        return StrCat("Value::Int(", IntLiteral(op.imm), ")");
      case Operand::Kind::kBoolConst:
        return op.imm != 0 ? "Value::Bool(true)" : "Value::Bool(false)";
      case Operand::Kind::kNull:
        return "Value::NullPtr()";
      case Operand::Kind::kNone:
        break;
    }
    DNSV_CHECK(false);
    return "Value::Unit()";
  }

  // An operand's integer payload (Value::i) as a plain int64_t expression —
  // the fast path for arithmetic, comparisons, and branch conditions.
  std::string IntExpr(const Operand& op) const {
    switch (op.kind) {
      case Operand::Kind::kReg: {
        if (!Function::IsParamReg(op.reg)) {
          if (param_load_[op.reg] >= 0) {
            return StrCat("p", param_load_[op.reg], ".i");
          }
          auto it = subst_.find(op.reg);
          if (it != subst_.end()) {
            return it->second + ".i";
          }
        }
        return RegName(op.reg) + ".i";
      }
      case Operand::Kind::kIntConst:
        return IntLiteral(op.imm);
      case Operand::Kind::kBoolConst:
        return op.imm != 0 ? "1LL" : "0LL";
      case Operand::Kind::kNull:
      case Operand::Kind::kNone:
        break;
    }
    DNSV_CHECK(false);
    return "0LL";
  }

  void EmitInstr(uint32_t index) {
    const Instr& instr = fn_.instr(index);
    const TypeTable& types = module_.types();
    auto val = [&](size_t k) { return ValueExpr(instr.operands[k]); };
    auto num = [&](size_t k) { return IntExpr(instr.operands[k]); };
    auto sink = [&](size_t k) { return SinkExpr(instr.operands[k], index); };
    std::string dst = StrCat("r", index);
    switch (instr.op) {
      case Opcode::kBinOp:
        EmitBinOp(index, instr);
        break;
      case Opcode::kUnOp:
        if (instr.un_op == UnOp::kNot) {
          out_ << "  " << dst << " = Value::Bool((" << num(0) << ") == 0);\n";
        } else {
          out_ << "  " << dst << " = Value::Int(-(" << num(0) << "));\n";
        }
        break;
      case Opcode::kAlloca:
      case Opcode::kNewObject:
        if (promoted_[index]) {
          if (slot_param_alias_[index] >= 0) {
            break;  // no storage: the slot is an alias for a parameter
          }
          // A re-executed site (loop body) re-zeroes the cell, exactly as a
          // fresh interpreter cell starts zeroed.
          out_ << "  a" << index << " = " << ZeroExpr(types, instr.alloc_type) << ";\n";
          break;
        }
        out_ << "  " << dst << " = Value::Ptr(ctx.memory->Alloc("
             << ZeroExpr(types, instr.alloc_type) << "));\n";
        break;
      case Opcode::kLoad:
        if (param_load_[index] >= 0) {
          break;  // uses of this register read the parameter directly
        }
        if (IsPromotedSlotAddr(instr.operands[0])) {
          out_ << "  " << dst << " = a" << instr.operands[0].reg << ";\n";
          break;
        }
        out_ << "  {\n"
             << "    const Value& ptr = " << val(0) << ";\n"
             << "    if (ptr.IsNullPtr()) return GenPanic(ctx, \"nil pointer dereference\");\n"
             << "    const Value* target = ctx.memory->Resolve(ptr.block, ptr.path);\n"
             << "    if (target == nullptr) return GenPanic(ctx, \"invalid memory access\");\n";
        if (projectable_[index]) {
          out_ << "    q" << index << " = target;\n";
        } else {
          out_ << "    " << dst << " = *target;\n";
        }
        out_ << "  }\n";
        break;
      case Opcode::kStore:
        if (IsPromotedSlotAddr(instr.operands[0])) {
          if (slot_param_alias_[instr.operands[0].reg] >= 0) {
            break;  // the elided prologue copy: the slot IS the parameter
          }
          out_ << "  a" << instr.operands[0].reg << " = " << sink(1) << ";\n";
          break;
        }
        out_ << "  {\n"
             << "    const Value& ptr = " << val(0) << ";\n"
             << "    if (ptr.IsNullPtr()) return GenPanic(ctx, \"nil pointer dereference\");\n"
             << "    Value* target = ctx.memory->Resolve(ptr.block, ptr.path);\n"
             << "    if (target == nullptr) return GenPanic(ctx, \"invalid memory access\");\n"
             << "    *target = " << sink(1) << ";\n"
             << "  }\n";
        break;
      case Opcode::kGep: {
        // GenGepInto builds the extended path in one allocation (or none,
        // when the destination register's capacity suffices); the null check
        // runs at the same program point as the interpreter's.
        out_ << "  {\n"
             << "    const Value& base = " << val(0) << ";\n"
             << "    if (base.IsNullPtr()) return GenPanic(ctx, \"nil pointer dereference\");\n";
        if (instr.operands.size() > 1) {
          out_ << "    const int64_t idxs[] = {";
          for (size_t k = 1; k < instr.operands.size(); ++k) {
            if (k > 1) out_ << ", ";
            out_ << num(k);
          }
          out_ << "};\n"
               << "    GenGepInto(&" << dst << ", base, idxs, " << instr.operands.size() - 1
               << ");\n";
        } else {
          out_ << "    GenGepInto(&" << dst << ", base, nullptr, 0);\n";
        }
        out_ << "  }\n";
        break;
      }
      case Opcode::kCall:
        EmitCall(index, instr);
        break;
      case Opcode::kListNew:
        out_ << "  " << dst << " = Value::List();\n";
        break;
      case Opcode::kListLen:
        out_ << "  " << dst << " = Value::Int(static_cast<int64_t>((" << val(0)
             << ").elems.size()));\n";
        break;
      case Opcode::kListGet:
        out_ << "  {\n"
             << "    const Value& list = " << val(0) << ";\n"
             << "    int64_t idx = " << num(1) << ";\n"
             << "    if (idx < 0 || static_cast<size_t>(idx) >= list.elems.size()) "
                "return GenPanic(ctx, \"index out of range\");\n";
        if (projectable_[index]) {
          out_ << "    q" << index << " = &list.elems[static_cast<size_t>(idx)];\n";
        } else {
          out_ << "    Value elem = list.elems[static_cast<size_t>(idx)];\n"
               << "    " << dst << " = std::move(elem);\n";
        }
        out_ << "  }\n";
        break;
      case Opcode::kListSet:
        out_ << "  {\n"
             << "    Value list = " << sink(0) << ";\n"
             << "    int64_t idx = " << num(1) << ";\n"
             << "    if (idx < 0 || static_cast<size_t>(idx) >= list.elems.size()) "
                "return GenPanic(ctx, \"index out of range\");\n"
             << "    list.elems[static_cast<size_t>(idx)] = " << val(2) << ";\n"
             << "    " << dst << " = std::move(list);\n"
             << "  }\n";
        break;
      case Opcode::kListAppend:
        out_ << "  {\n"
             << "    Value list = " << sink(0) << ";\n"
             << "    list.elems.push_back(" << val(1) << ");\n"
             << "    " << dst << " = std::move(list);\n"
             << "  }\n";
        break;
      case Opcode::kFieldGet:
        if (projectable_[index]) {
          out_ << "  q" << index << " = &(" << val(0) << ").elems[static_cast<size_t>("
               << instr.field_index << ")];\n";
          break;
        }
        out_ << "  {\n"
             << "    Value field = (" << val(0) << ").elems[static_cast<size_t>("
             << instr.field_index << ")];\n"
             << "    " << dst << " = std::move(field);\n"
             << "  }\n";
        break;
      case Opcode::kHavoc:
        // Concretely havoc is the zero value (spec-dialect behavior,
        // matching the interpreter).
        out_ << "  " << dst << " = " << ZeroExpr(types, instr.result_type) << ";\n";
        break;
      case Opcode::kBr:
        out_ << "  if ((" << num(0) << ") != 0) goto bb" << instr.target_true
             << "; else goto bb" << instr.target_false << ";\n";
        break;
      case Opcode::kJmp:
        out_ << "  goto bb" << instr.target_true << ";\n";
        break;
      case Opcode::kRet:
        if (instr.operands.empty()) {
          out_ << "  *ret = Value::Unit();\n  return true;\n";
        } else if (instr.operands[0].kind == Operand::Kind::kReg &&
                   !Function::IsParamReg(instr.operands[0].reg) &&
                   !projectable_[instr.operands[0].reg] &&
                   param_load_[instr.operands[0].reg] < 0) {
          // A callee-local register (or promoted slot) cannot alias the
          // caller's destination, and the frame dies here — move it out
          // unconditionally.
          out_ << "  *ret = std::move(" << val(0) << ");\n  return true;\n";
        } else {
          // Through a temporary: a parameter is a const ref into the caller's
          // frame, so the destination register may be the very value the
          // operand refers to.
          out_ << "  {\n    Value result = " << val(0)
               << ";\n    *ret = std::move(result);\n  }\n  return true;\n";
        }
        break;
      case Opcode::kPanic:
        out_ << "  return GenPanic(ctx, " << CppStringLiteral(instr.text) << ");\n";
        break;
    }
  }

  void EmitBinOp(uint32_t index, const Instr& instr) {
    std::string dst = StrCat("r", index);
    // Lazy: pointer comparisons take Value operands (possibly the null
    // literal), which have no integer spelling.
    std::string a, b;
    if (instr.bin_op != BinOp::kPtrEq && instr.bin_op != BinOp::kPtrNe) {
      a = IntExpr(instr.operands[0]);
      b = IntExpr(instr.operands[1]);
    }
    auto emit_int = [&](const char* op) {
      out_ << "  " << dst << " = Value::Int((" << a << ") " << op << " (" << b << "));\n";
    };
    auto emit_cmp = [&](const char* op) {
      out_ << "  " << dst << " = Value::Bool((" << a << ") " << op << " (" << b << "));\n";
    };
    switch (instr.bin_op) {
      case BinOp::kAdd: emit_int("+"); break;
      case BinOp::kSub: emit_int("-"); break;
      case BinOp::kMul: emit_int("*"); break;
      case BinOp::kDiv:
        out_ << "  if ((" << b << ") == 0) "
             << "return GenPanic(ctx, \"integer divide by zero\");\n";
        emit_int("/");
        break;
      case BinOp::kMod:
        out_ << "  if ((" << b << ") == 0) "
             << "return GenPanic(ctx, \"integer divide by zero\");\n";
        emit_int("%");
        break;
      case BinOp::kEq:
      case BinOp::kBoolEq:
        emit_cmp("==");
        break;
      case BinOp::kNe:
      case BinOp::kBoolNe:
        emit_cmp("!=");
        break;
      case BinOp::kLt: emit_cmp("<"); break;
      case BinOp::kLe: emit_cmp("<="); break;
      case BinOp::kGt: emit_cmp(">"); break;
      case BinOp::kGe: emit_cmp(">="); break;
      case BinOp::kAnd:
        out_ << "  " << dst << " = Value::Bool((" << a << ") != 0 && (" << b
             << ") != 0);\n";
        break;
      case BinOp::kOr:
        out_ << "  " << dst << " = Value::Bool((" << a << ") != 0 || (" << b
             << ") != 0);\n";
        break;
      case BinOp::kPtrEq:
      case BinOp::kPtrNe: {
        bool eq = instr.bin_op == BinOp::kPtrEq;
        out_ << "  {\n"
             << "    const Value& lhs = " << ValueExpr(instr.operands[0]) << ";\n"
             << "    const Value& rhs = " << ValueExpr(instr.operands[1]) << ";\n"
             << "    " << dst << " = Value::Bool(" << (eq ? "" : "!")
             << "(lhs.block == rhs.block && lhs.path == rhs.path));\n"
             << "  }\n";
        break;
      }
    }
  }

  void EmitCall(uint32_t index, const Instr& instr) {
    std::string dst = StrCat("r", index);
    if (instr.text == "listEq") {
      DNSV_CHECK(instr.operands.size() == 2);
      out_ << "  " << dst << " = Value::Bool((" << ValueExpr(instr.operands[0])
           << ").elems == (" << ValueExpr(instr.operands[1]) << ").elems);\n";
      return;
    }
    const Function* callee = module_.GetFunction(instr.text);
    DNSV_CHECK_MSG(callee != nullptr, "codegen: call to unknown function " + instr.text);
    DNSV_CHECK_MSG(callee->params().size() == instr.operands.size(),
                   "codegen: arity mismatch calling " + instr.text);
    out_ << "  if (!" << symbols_.Symbol(instr.text) << "(ctx";
    for (size_t k = 0; k < instr.operands.size(); ++k) {
      out_ << ", " << ValueExpr(instr.operands[k]);
    }
    out_ << ", &" << dst << ")) return false;\n";
  }

  bool IsPromotedSlotAddr(const Operand& op) const {
    return op.kind == Operand::Kind::kReg && !Function::IsParamReg(op.reg) &&
           promoted_[op.reg];
  }

 public:
  // Interprocedural-optimization outcomes, for the generated file's trailer.
  int stack_promoted() const { return stack_promoted_; }
  int cross_call_forwards() const { return cross_call_forwards_; }

 private:
  const Module& module_;
  const Function& fn_;
  const SymbolTable& symbols_;
  const InterprocContext& interproc_;
  const EscapeResult& escapes_;
  std::ostream& out_;
  int stack_promoted_ = 0;      // kNewObject sites promoted to C++ locals
  int cross_call_forwards_ = 0; // pending loads carried across a pure call
  std::vector<int> use_count_;        // operand references per result register
  std::vector<uint32_t> single_user_; // meaningful only when use_count_ == 1
  std::vector<bool> promoted_;        // kAlloca indices promoted to locals
  std::vector<bool> projectable_;     // emitted as const Value* q<i>, not a copy
  std::vector<int> slot_param_alias_; // promoted slot -> aliased param index, or -1
  std::vector<int> param_load_;       // load of an aliased slot -> param index, or -1
  std::unordered_set<uint32_t> block_instrs_;        // instrs of the current block
  std::unordered_map<uint32_t, std::string> subst_;  // forwarded load -> slot expr
};

}  // namespace

std::string VersionToken(const std::string& version_name) {
  std::string token;
  for (char c : version_name) {
    token += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
  }
  DNSV_CHECK(!token.empty());
  return token;
}

PruneStats PruneForCodegen(Module* module) {
  PruneOptions options;
  options.interproc = true;
  options.entry_points = EngineAnalysisRoots();
  AnalysisStats analysis;
  return PruneModule(module, options, &analysis);
}

void EmitGenModule(const Module& module, EngineVersion version,
                   const std::string& version_name, uint64_t fingerprint,
                   std::ostream& out) {
  SymbolTable symbols(module);
  // Interprocedural facts feeding the emitter. Every generated function is
  // externally callable through the GenFnEntry dispatch table, so — unlike
  // the verifier, which roots the analysis at EngineAnalysisRoots — every
  // function is an entry point here and no parameter fact may be assumed.
  // Purity summaries and escape classifications are entry-independent, and
  // those are the only facts the emitter consumes.
  std::vector<std::string> all_roots;
  for (const auto& fn : module.functions()) {
    all_roots.push_back(fn->name());
  }
  CallGraph graph = CallGraph::Build(module);
  AnalysisStats analysis;
  InterprocContext interproc = ComputeInterprocContext(module, graph, all_roots, &analysis);
  PointsTo points_to = PointsTo::Solve(module, graph, all_roots, &analysis);
  EscapeResult escapes = ComputeEscapes(module, graph, points_to, &analysis);
  char fp_buf[32];
  std::snprintf(fp_buf, sizeof(fp_buf), "0x%016llx",
                static_cast<unsigned long long>(fingerprint));

  out << "// Generated by absir-codegen from the post-prune AbsIR of engine "
      << version_name << ".\n"
      << "// Do not edit; regenerate via the build. IR fingerprint: " << fp_buf << ".\n"
      << "#include <utility>\n"
      << "#include <vector>\n\n"
      << "#include \"src/exec/gen_support.h\"\n\n"
      << "#if defined(__GNUC__)\n"
      << "#pragma GCC diagnostic ignored \"-Wunused-label\"\n"
      << "#pragma GCC diagnostic ignored \"-Wunused-variable\"\n"
      << "#pragma GCC diagnostic ignored \"-Wunused-but-set-variable\"\n"
      << "#endif\n\n"
      << "namespace dnsv {\n"
      << "namespace execgen {\n"
      << "namespace gen_" << VersionToken(version_name) << " {\n"
      << "namespace {\n\n";

  for (const auto& fn : module.functions()) {
    out << FunctionEmitter::Signature(symbols.Symbol(fn->name()), *fn) << ";\n";
  }
  out << "\n";
  int promoted_total = 0;
  int carried_total = 0;
  for (const auto& fn : module.functions()) {
    FunctionEmitter emitter(module, *fn, symbols, interproc, escapes, out);
    emitter.Emit();
    promoted_total += emitter.stack_promoted();
    carried_total += emitter.cross_call_forwards();
    out << "\n";
  }
  out << "// interproc codegen: " << promoted_total
      << " heap allocation(s) stack-promoted, " << carried_total
      << " load(s) carried across summarized pure calls.\n\n";

  // Uniform vector-unpacking wrappers, one per function, for the GenFnEntry
  // dispatch table.
  for (const auto& fn : module.functions()) {
    const std::string& symbol = symbols.Symbol(fn->name());
    out << "bool call_" << symbol.substr(3)
        << "(GenCtx& ctx, const std::vector<Value>& args, Value* ret) {\n"
        << "  return " << symbol << "(ctx";
    for (size_t i = 0; i < fn->params().size(); ++i) {
      out << ", args[" << i << "]";
    }
    out << ", ret);\n}\n";
  }

  out << "\nconst GenFnEntry kEntries[] = {\n";
  for (const auto& fn : module.functions()) {
    out << "    {" << CppStringLiteral(fn->name()) << ", &call_"
        << symbols.Symbol(fn->name()).substr(3) << ", "
        << fn->params().size() << "},\n";
  }
  out << "};\n\n"
      << "}  // namespace\n\n"
      << "extern const GenModule kModule;\n"
      << "const GenModule kModule = {" << VersionEnumerator(version) << ", "
      << CppStringLiteral(version_name) << ", " << fp_buf << "ull, kEntries,\n"
      << "                            sizeof(kEntries) / sizeof(kEntries[0])};\n\n"
      << "}  // namespace gen_" << VersionToken(version_name) << "\n"
      << "}  // namespace execgen\n"
      << "}  // namespace dnsv\n";
}

void EmitGenManifest(const std::vector<std::string>& version_names, std::ostream& out) {
  out << "// Generated by absir-codegen: the AllGenModules() registry over every\n"
      << "// engine version emitted in this build. Do not edit.\n"
      << "#include \"src/exec/gen_support.h\"\n\n"
      << "namespace dnsv {\n"
      << "namespace execgen {\n\n";
  for (const std::string& name : version_names) {
    out << "namespace gen_" << VersionToken(name) << " { extern const GenModule kModule; }\n";
  }
  out << "\nconst GenModule* const* AllGenModules(size_t* count) {\n"
      << "  static const GenModule* const kModules[] = {\n";
  for (const std::string& name : version_names) {
    out << "      &gen_" << VersionToken(name) << "::kModule,\n";
  }
  out << "  };\n"
      << "  *count = sizeof(kModules) / sizeof(kModules[0]);\n"
      << "  return kModules;\n"
      << "}\n\n"
      << "}  // namespace execgen\n"
      << "}  // namespace dnsv\n";
}

}  // namespace dnsv

// The execution-backend seam (docs/BACKEND.md).
//
// "How AbsIR runs" is pluggable: the serving layers (AuthoritativeServer,
// ServePacket, the src/server worker shards) hold an ExecutionBackend and
// never touch interpreter internals. Two backends exist:
//
//   * interp   — the reference AbsIR interpreter (src/interp), executing the
//                frontend's exact module. This is the backend the verifier's
//                concrete cross-checks use; it is always available.
//   * compiled — AOT-generated native code: absir-codegen lowers the
//                post-prune AbsIR of every engine version to C++ at build
//                time (one translation unit per version, compiled into this
//                library). Each generated module embeds the ModuleFingerprint
//                of the IR it was produced from, so the differential harness
//                (src/fuzz) can prove the compiled artifact and the verified
//                IR are byte-identical.
//
// Both backends run over the same Value/ConcreteMemory model, so responses
// and panics are identical — equivalence enforced mechanically by
// RunBackendDifferential and the loopback tests. Heap traffic is NOT part
// of that contract: the compiled backend promotes non-escaping allocas to
// C++ locals (docs/BACKEND.md), so it allocates far fewer blocks per query
// than the interpreter and block numbering differs between the two. Block
// ids never reach wire output, and pointer equality only needs
// distinctness, which promotion preserves.
#ifndef DNSV_EXEC_BACKEND_H_
#define DNSV_EXEC_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/sources/sources.h"  // EngineVersion (enum only; no link dep)
#include "src/interp/interp.h"
#include "src/interp/value.h"
#include "src/ir/function.h"
#include "src/support/status.h"

namespace dnsv {

enum class BackendKind { kInterp, kCompiled };

const char* BackendKindName(BackendKind kind);

// Parses "interp" / "compiled"; anything else is a descriptive error (the
// CLI contract: reject unknown values the way ParsePort rejects bad ports).
Result<BackendKind> ParseBackendKind(const std::string& text);

// Executes AbsIR functions against a concrete memory. One backend instance
// is bound to one engine version's module; like the raw Interpreter it is
// not thread-safe — each serving shard owns its own backend.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual const char* name() const = 0;

  // Runs `function` (of the module this backend was built for) with `args`;
  // allocations go to `memory`. Query/QuerySpec-shaped: AuthoritativeServer
  // funnels both its entry points through exactly this call.
  virtual ExecOutcome Run(const Function& function, const std::vector<Value>& args,
                          ConcreteMemory* memory) = 0;
};

// The reference interpreter over `module` (not owned; must outlive the
// backend). Never fails to construct.
std::unique_ptr<ExecutionBackend> MakeInterpBackend(const Module* module);

// The AOT-compiled backend for `version`. Fails when this binary carries no
// generated code for the version (absir-codegen emits all engine versions at
// build time, so this only happens in hand-rolled build setups).
Result<std::unique_ptr<ExecutionBackend>> MakeCompiledBackend(EngineVersion version);

bool CompiledBackendAvailable(EngineVersion version);

// The ModuleFingerprint of the post-prune AbsIR that the generated code for
// `version` was produced from (embedded at codegen time).
Result<uint64_t> CompiledBackendFingerprint(EngineVersion version);

}  // namespace dnsv

#endif  // DNSV_EXEC_BACKEND_H_

#include "src/exec/backend.h"

#include <unordered_map>
#include <utility>

#include "src/exec/gen_support.h"
#include "src/support/strings.h"

namespace dnsv {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kInterp:
      return "interp";
    case BackendKind::kCompiled:
      return "compiled";
  }
  return "?";
}

Result<BackendKind> ParseBackendKind(const std::string& text) {
  if (text == "interp") {
    return BackendKind::kInterp;
  }
  if (text == "compiled") {
    return BackendKind::kCompiled;
  }
  return Result<BackendKind>::Error(
      StrCat("unknown backend '", text, "' (expected interp or compiled)"));
}

namespace {

class InterpBackend final : public ExecutionBackend {
 public:
  explicit InterpBackend(const Module* module) : module_(module) {}

  const char* name() const override { return "interp"; }

  ExecOutcome Run(const Function& function, const std::vector<Value>& args,
                  ConcreteMemory* memory) override {
    Interpreter interp(module_, memory);
    return interp.Run(function, args);
  }

 private:
  const Module* module_;
};

const execgen::GenModule* FindGenModule(EngineVersion version) {
  size_t count = 0;
  const execgen::GenModule* const* modules = execgen::AllGenModules(&count);
  for (size_t i = 0; i < count; ++i) {
    if (modules[i]->version == version) {
      return modules[i];
    }
  }
  return nullptr;
}

class CompiledBackend final : public ExecutionBackend {
 public:
  explicit CompiledBackend(const execgen::GenModule* gen) : gen_(gen) {
    entries_.reserve(gen_->num_entries);
    for (size_t i = 0; i < gen_->num_entries; ++i) {
      entries_.emplace(gen_->entries[i].name, &gen_->entries[i]);
    }
  }

  const char* name() const override { return "compiled"; }

  ExecOutcome Run(const Function& function, const std::vector<Value>& args,
                  ConcreteMemory* memory) override {
    ExecOutcome outcome;
    auto it = entries_.find(function.name());
    if (it == entries_.end() ||
        it->second->arity != static_cast<int>(args.size())) {
      // A function the generated module does not know (or knows with a
      // different arity) means the caller is driving the wrong engine
      // version's backend — surface it as a panic, like the interpreter
      // surfaces calls into unknown functions, instead of crashing a worker.
      outcome.kind = ExecOutcome::Kind::kPanicked;
      outcome.panic_message =
          StrCat("compiled backend (", gen_->version_name, ") has no entry for '",
                 function.name(), "' with ", args.size(), " args");
      return outcome;
    }
    execgen::GenCtx ctx;
    ctx.memory = memory;
    Value ret;
    if (!it->second->invoke(ctx, args, &ret)) {
      outcome.kind = ExecOutcome::Kind::kPanicked;
      outcome.panic_message = std::move(ctx.panic);
      return outcome;
    }
    outcome.kind = ExecOutcome::Kind::kReturned;
    outcome.return_value = std::move(ret);
    return outcome;
  }

 private:
  const execgen::GenModule* gen_;
  std::unordered_map<std::string, const execgen::GenFnEntry*> entries_;
};

}  // namespace

std::unique_ptr<ExecutionBackend> MakeInterpBackend(const Module* module) {
  return std::make_unique<InterpBackend>(module);
}

Result<std::unique_ptr<ExecutionBackend>> MakeCompiledBackend(EngineVersion version) {
  const execgen::GenModule* gen = FindGenModule(version);
  if (gen == nullptr) {
    return Result<std::unique_ptr<ExecutionBackend>>::Error(
        "no AOT-compiled module for this engine version in the binary "
        "(absir-codegen did not emit it)");
  }
  return std::unique_ptr<ExecutionBackend>(std::make_unique<CompiledBackend>(gen));
}

bool CompiledBackendAvailable(EngineVersion version) {
  return FindGenModule(version) != nullptr;
}

Result<uint64_t> CompiledBackendFingerprint(EngineVersion version) {
  const execgen::GenModule* gen = FindGenModule(version);
  if (gen == nullptr) {
    return Result<uint64_t>::Error("no AOT-compiled module for this engine version");
  }
  return gen->ir_fingerprint;
}

}  // namespace dnsv

// Support types for AOT-generated AbsIR code (src/exec/codegen.cc emits
// translation units that include this header and nothing else of the exec
// layer). The generated code mirrors the concrete interpreter instruction by
// instruction — same Value/ConcreteMemory model, same panic messages, same
// call-depth limit — so the two backends are behaviorally interchangeable.
#ifndef DNSV_EXEC_GEN_SUPPORT_H_
#define DNSV_EXEC_GEN_SUPPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/sources/sources.h"
#include "src/interp/value.h"

namespace dnsv {
namespace execgen {

// Parity with Interpreter::kMaxCallDepth: the interpreter panics when a
// frame's depth exceeds 256 with the entry frame at 0; generated code counts
// the entry frame as 1, so the limit shifts by one.
inline constexpr int kGenMaxCallDepth = 257;

// Per-run execution context; one per ExecutionBackend::Run call.
struct GenCtx {
  ConcreteMemory* memory = nullptr;
  int depth = 0;      // live generated frames
  std::string panic;  // set when a generated function returns false
};

inline bool GenPanic(GenCtx& ctx, const char* message) {
  ctx.panic.assign(message);
  return false;
}

struct DepthScope {
  GenCtx& ctx;
  explicit DepthScope(GenCtx& c) : ctx(c) { ++ctx.depth; }
  ~DepthScope() { --ctx.depth; }
};

// kGep: `*dst = base with idxs appended to its index path`. Building the
// extended path in place sizes the vector exactly once — the naive
// copy-then-push_back pair allocates the copy at exact capacity and then
// immediately reallocates it — and a register that lives in a loop keeps its
// capacity across iterations, making steady-state geps allocation-free.
// `base` is never `*dst`: result registers are structurally single-def, so a
// gep cannot name its own result as an operand.
inline void GenGepInto(Value* dst, const Value& base, const int64_t* idxs, size_t n) {
  dst->kind = Value::Kind::kPtr;
  dst->block = base.block;
  dst->i = 0;
  dst->elems.clear();
  std::vector<int64_t>& path = dst->path;
  path.clear();
  path.reserve(base.path.size() + n);
  path.insert(path.end(), base.path.begin(), base.path.end());
  path.insert(path.end(), idxs, idxs + n);
}

// Uniform entry: unpacks `args` into the generated function's parameters.
// Returns false on panic (message in ctx.panic), true with *ret set
// otherwise.
using GenInvoke = bool (*)(GenCtx& ctx, const std::vector<Value>& args, Value* ret);

struct GenFnEntry {
  const char* name;  // AbsIR function name ("resolve", "rrlookup", ...)
  GenInvoke invoke;
  int arity;
};

// One engine version's generated code plus its provenance.
struct GenModule {
  EngineVersion version;
  const char* version_name;
  uint64_t ir_fingerprint;  // ModuleFingerprint of the post-prune AbsIR
  const GenFnEntry* entries;
  size_t num_entries;
};

// Defined by the build-time generated manifest (gen_manifest.cc, written by
// absir-codegen); returns one GenModule per engine version.
const GenModule* const* AllGenModules(size_t* count);

}  // namespace execgen
}  // namespace dnsv

#endif  // DNSV_EXEC_GEN_SUPPORT_H_

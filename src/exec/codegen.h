// AOT AbsIR -> C++ translation (the `compiled` execution backend).
//
// absir-codegen runs this at build time: for every engine version it
// compiles the MiniGo sources, applies PruneForCodegen — the exact
// interprocedural PruneModule configuration the verifier's pipeline applies
// — and lowers the resulting post-prune AbsIR to one C++ translation unit. The generated code mirrors the concrete interpreter
// (src/interp) instruction by instruction over the same Value/ConcreteMemory
// model — identical results, identical panic messages, identical call-depth
// limit — but with direct calls and goto-based control flow instead of an
// instruction-dispatch loop.
//
// Each generated module embeds the ModuleFingerprint of the IR it was
// lowered from; the differential harness (src/fuzz) recompiles + reprunes at
// test time and compares fingerprints, proving the served artifact and the
// verified IR are byte-identical.
#ifndef DNSV_EXEC_CODEGEN_H_
#define DNSV_EXEC_CODEGEN_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/analysis/prune.h"
#include "src/engine/sources/sources.h"
#include "src/ir/function.h"

namespace dnsv {

// The AOT pipeline's canonical prune configuration: interprocedural mode
// rooted at EngineAnalysisRoots(), i.e. exactly what the verifier's
// PruneStage runs. Every fingerprint participant — absir-codegen at build
// time, the differential fuzzer's provenance gate, and the backend tests —
// must prune through this one entry point, or "the served artifact is the
// verified IR" stops being a checked fact.
PruneStats PruneForCodegen(Module* module);

// "v1.0" -> "v1_0": the version name as a C++ identifier fragment, used for
// the generated namespace (gen_v1_0) and file name (gen_v1_0.cc).
std::string VersionToken(const std::string& version_name);

// Lowers `module` (the post-prune AbsIR of `version`) into one translation
// unit that defines gen_<token>::kModule, a GenModule carrying an entry for
// every AbsIR function. `fingerprint` must be ModuleFingerprint(module).
void EmitGenModule(const Module& module, EngineVersion version,
                   const std::string& version_name, uint64_t fingerprint,
                   std::ostream& out);

// Emits the manifest translation unit defining execgen::AllGenModules() over
// the generated per-version modules.
void EmitGenManifest(const std::vector<std::string>& version_names, std::ostream& out);

}  // namespace dnsv

#endif  // DNSV_EXEC_CODEGEN_H_

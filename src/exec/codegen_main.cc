// absir-codegen: build-time AOT translation of every engine version.
//
//   absir-codegen <output-dir>
//
// For each EngineVersion: compile the embedded MiniGo sources, apply the
// same PruneModule pass the verifier applies (so the generated code is the
// post-prune, i.e. verified, IR), fingerprint the result, and write
// gen_<token>.cc. Finishes with gen_manifest.cc defining AllGenModules().
// The emitted files are compiled into dnsv_exec by src/exec/CMakeLists.txt.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/analysis/prune.h"
#include "src/engine/engine.h"
#include "src/exec/codegen.h"
#include "src/ir/printer.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::string outdir = argv[1];
  std::vector<std::string> version_names;
  for (dnsv::EngineVersion version : dnsv::AllEngineVersions()) {
    const std::string name = dnsv::EngineVersionName(version);
    std::unique_ptr<dnsv::CompiledEngine> engine = dnsv::CompiledEngine::Compile(version);
    dnsv::PruneStats stats = dnsv::PruneForCodegen(&engine->mutable_module());
    engine->Freeze();
    uint64_t fingerprint = dnsv::ModuleFingerprint(engine->module());

    const std::string path = outdir + "/gen_" + dnsv::VersionToken(name) + ".cc";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "absir-codegen: cannot write %s\n", path.c_str());
      return 1;
    }
    dnsv::EmitGenModule(engine->module(), version, name, fingerprint, out);
    out.close();
    if (!out) {
      std::fprintf(stderr, "absir-codegen: write failed for %s\n", path.c_str());
      return 1;
    }
    std::fprintf(stderr, "absir-codegen: %s -> %s (fingerprint %016llx, %lld checks pruned)\n",
                 name.c_str(), path.c_str(), (unsigned long long)fingerprint,
                 (long long)stats.panics_discharged);
    version_names.push_back(name);
  }

  const std::string manifest_path = outdir + "/gen_manifest.cc";
  std::ofstream manifest(manifest_path);
  if (!manifest) {
    std::fprintf(stderr, "absir-codegen: cannot write %s\n", manifest_path.c_str());
    return 1;
  }
  dnsv::EmitGenManifest(version_names, manifest);
  manifest.close();
  if (!manifest) {
    std::fprintf(stderr, "absir-codegen: write failed for %s\n", manifest_path.c_str());
    return 1;
  }
  return 0;
}

// absir-codegen: build-time AOT translation of every engine version.
//
//   absir-codegen <output-dir>
//
// For each EngineVersion: compile the embedded MiniGo sources, apply the
// same PruneModule pass the verifier applies (so the generated code is the
// post-prune, i.e. verified, IR), fingerprint the result, and write
// gen_<token>.cc. Finishes with gen_manifest.cc defining AllGenModules().
// The emitted files are compiled into dnsv_exec by src/exec/CMakeLists.txt.
//
// With DNSV_STORE_DIR set, each version's generated translation unit is also
// an artifact keyed by the hash of that version's MiniGo sources: an
// unchanged version is served from the store without recompiling or
// re-lowering it, so incremental builds only pay for versions whose sources
// actually changed. A corrupt or absent artifact falls back to generating
// cold (the store's standard miss semantics).
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/prune.h"
#include "src/engine/engine.h"
#include "src/exec/codegen.h"
#include "src/ir/printer.h"
#include "src/store/store.h"
#include "src/support/strings.h"

namespace {

// Bump when EmitGenModule's output or PruneForCodegen's behavior changes:
// the source hash cannot see emitter changes, only this token can.
constexpr char kCodegenSchema[] = "v1";
constexpr char kCodegenKind[] = "codegen";

std::string CodegenKey(dnsv::EngineVersion version) {
  uint64_t hash = dnsv::kFnv1a64Seed;
  for (const auto& [name, text] : dnsv::EngineSources(version)) {
    // Unit separators keep ("ab","c") distinct from ("a","bc").
    hash = dnsv::Fnv1a64(name, hash);
    hash = dnsv::Fnv1a64("\x1f", hash);
    hash = dnsv::Fnv1a64(text, hash);
    hash = dnsv::Fnv1a64("\x1e", hash);
  }
  return dnsv::StrCat(kCodegenKind, "|", kCodegenSchema, "|src:", dnsv::HexU64(hash));
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "absir-codegen: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  out.close();
  if (!out) {
    std::fprintf(stderr, "absir-codegen: write failed for %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::string outdir = argv[1];
  dnsv::ArtifactStore* store = dnsv::ArtifactStore::FromEnv();
  std::vector<std::string> version_names;
  for (dnsv::EngineVersion version : dnsv::AllEngineVersions()) {
    const std::string name = dnsv::EngineVersionName(version);
    const std::string path = outdir + "/gen_" + dnsv::VersionToken(name) + ".cc";
    const std::string key = CodegenKey(version);

    std::string generated;
    if (store != nullptr) {
      if (std::optional<std::string> cached = store->Get(kCodegenKind, key)) {
        generated = std::move(*cached);
        std::fprintf(stderr, "absir-codegen: %s -> %s (served from artifact store)\n",
                     name.c_str(), path.c_str());
      }
    }
    if (generated.empty()) {
      std::unique_ptr<dnsv::CompiledEngine> engine = dnsv::CompiledEngine::Compile(version);
      dnsv::PruneStats stats = dnsv::PruneForCodegen(&engine->mutable_module());
      engine->Freeze();
      uint64_t fingerprint = dnsv::ModuleFingerprint(engine->module());
      std::ostringstream out;
      dnsv::EmitGenModule(engine->module(), version, name, fingerprint, out);
      generated = out.str();
      if (store != nullptr) {
        store->Put(kCodegenKind, key, generated);
      }
      std::fprintf(stderr,
                   "absir-codegen: %s -> %s (fingerprint %016llx, %lld checks pruned)\n",
                   name.c_str(), path.c_str(), (unsigned long long)fingerprint,
                   (long long)stats.panics_discharged);
    }
    if (!WriteFile(path, generated)) {
      return 1;
    }
    version_names.push_back(name);
  }

  std::ostringstream manifest;
  dnsv::EmitGenManifest(version_names, manifest);
  if (!WriteFile(outdir + "/gen_manifest.cc", manifest.str())) {
    return 1;
  }
  return 0;
}

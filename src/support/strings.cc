#include "src/support/strings.h"

#include <cctype>

namespace dnsv {

std::vector<std::string> SplitString(std::string_view input, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      return parts;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) {
    return false;
  }
  bool negative = false;
  size_t i = 0;
  if (text[0] == '-') {
    negative = true;
    i = 1;
    if (text.size() == 1) {
      return false;
    }
  }
  int64_t value = 0;
  for (; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
      return false;
    }
    value = value * 10 + (text[i] - '0');
  }
  *out = negative ? -value : value;
  return true;
}

uint64_t Fnv1a64(std::string_view data, uint64_t seed) {
  uint64_t hash = seed;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string HexU64(uint64_t value) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace dnsv

// Deterministic RNG (SplitMix64) so zone generation and property sweeps are
// reproducible across runs and platforms.
#ifndef DNSV_SUPPORT_RNG_H_
#define DNSV_SUPPORT_RNG_H_

#include <cstdint>

#include "src/support/logging.h"

namespace dnsv {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    DNSV_CHECK(bound > 0);
    return Next() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    DNSV_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // True with probability num/den.
  bool NextChance(uint64_t num, uint64_t den) { return NextBelow(den) < num; }

 private:
  uint64_t state_;
};

}  // namespace dnsv

#endif  // DNSV_SUPPORT_RNG_H_

// Error propagation for user-facing failures (parse errors, malformed zones,
// ill-typed MiniGo programs). Internal invariants use DNSV_CHECK instead.
#ifndef DNSV_SUPPORT_STATUS_H_
#define DNSV_SUPPORT_STATUS_H_

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/support/logging.h"

namespace dnsv {

// Thrown by APIs whose contract is "valid input only"; carries a user-readable
// description of what was malformed.
class DnsvError : public std::runtime_error {
 public:
  explicit DnsvError(const std::string& what) : std::runtime_error(what) {}
};

class Status {
 public:
  Status() = default;  // OK
  static Status Ok() { return Status(); }
  static Status Error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return !message_.has_value(); }
  const std::string& message() const {
    static const std::string kEmpty;
    return message_.has_value() ? *message_ : kEmpty;
  }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::optional<std::string> message_;
};

// Minimal StatusOr-style result: either a value or an error message.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  static Result Error(std::string message) { return Result(Status::Error(std::move(message))); }

  bool ok() const { return value_.has_value(); }
  const std::string& error() const { return status_.message(); }

  const T& value() const& {
    DNSV_CHECK_MSG(ok(), error());
    return *value_;
  }
  T& value() & {
    DNSV_CHECK_MSG(ok(), error());
    return *value_;
  }
  T&& value() && {
    DNSV_CHECK_MSG(ok(), error());
    return std::move(*value_);
  }

 private:
  explicit Result(Status status) : status_(std::move(status)) {}
  Status status_;
  std::optional<T> value_;
};

}  // namespace dnsv

#endif  // DNSV_SUPPORT_STATUS_H_

#include "src/support/status.h"

// Status/Result are header-only; this TU anchors the library target.

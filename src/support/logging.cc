#include "src/support/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dnsv {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  return start;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

double ElapsedSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - ProcessStart()).count();
}

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) {
    return;
  }
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %8.3f %s:%d] %s\n", LevelTag(level), ElapsedSeconds(), base, line,
               message.c_str());
}

namespace logging_internal {

void CheckFailed(const char* file, int line, const char* condition, const std::string& message) {
  LogMessage(LogLevel::kError, file, line,
             std::string("CHECK failed: ") + condition + (message.empty() ? "" : ": " + message));
  std::abort();
}

}  // namespace logging_internal
}  // namespace dnsv

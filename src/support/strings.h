// Small string helpers shared across the toolchain (no locale, ASCII only).
#ifndef DNSV_SUPPORT_STRINGS_H_
#define DNSV_SUPPORT_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace dnsv {

// Splits on `sep`, keeping empty pieces.
std::vector<std::string> SplitString(std::string_view input, char sep);

// Joins with `sep` between elements.
std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep);

// Removes ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

std::string ToLowerAscii(std::string_view input);

// Streams all arguments into one string. StrCat(1, " + ", 2.5) == "1 + 2.5".
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

// Parses a decimal (optionally negative) integer; returns false on any
// non-digit character or empty input.
bool ParseInt64(std::string_view text, int64_t* out);

// FNV-1a over `data`, continuing from `seed`. This is the one content hash
// the toolchain uses (ModuleFingerprint, the artifact store's keys and
// checksums); chaining calls via the seed hashes the concatenation.
inline constexpr uint64_t kFnv1a64Seed = 0xcbf29ce484222325ull;
uint64_t Fnv1a64(std::string_view data, uint64_t seed = kFnv1a64Seed);

// The 16-hex-digit lowercase spelling used wherever a hash becomes a file
// name or a stable key fragment.
std::string HexU64(uint64_t value);

}  // namespace dnsv

#endif  // DNSV_SUPPORT_STRINGS_H_

// Lightweight leveled logging and invariant checks for the dnsv toolchain.
//
// The verifier is a batch tool, so logging goes to stderr with a monotonic
// timestamp. CHECK-style macros are used for internal invariants only; user
// input errors are reported via Status/Result (see status.h).
#ifndef DNSV_SUPPORT_LOGGING_H_
#define DNSV_SUPPORT_LOGGING_H_

#include <sstream>
#include <string>

namespace dnsv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global log threshold; messages below it are dropped. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Writes one formatted log line to stderr. Thread-safe.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

// Seconds since the first call to LogMessage/ElapsedSeconds in this process.
double ElapsedSeconds();

namespace logging_internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

[[noreturn]] void CheckFailed(const char* file, int line, const char* condition,
                              const std::string& message);

}  // namespace logging_internal

}  // namespace dnsv

#define DNSV_LOG(level) ::dnsv::logging_internal::LogLine(::dnsv::LogLevel::level, __FILE__, __LINE__)

// Internal invariant check: aborts with a diagnostic when `cond` is false.
#define DNSV_CHECK(cond)                                                            \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      ::dnsv::logging_internal::CheckFailed(__FILE__, __LINE__, #cond, "");         \
    }                                                                               \
  } while (false)

#define DNSV_CHECK_MSG(cond, msg)                                                   \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      ::dnsv::logging_internal::CheckFailed(__FILE__, __LINE__, #cond, (msg));      \
    }                                                                               \
  } while (false)

#endif  // DNSV_SUPPORT_LOGGING_H_

#include "src/fuzz/packet_gen.h"

#include <algorithm>
#include <set>

#include "src/support/strings.h"

namespace dnsv {
namespace {

constexpr size_t kHeaderSize = 12;

// Header-field replacement values, biased toward the boundary cases the
// parser must handle (zero counts, count/size mismatches, all-ones).
constexpr uint16_t kHeaderBoundaryValues[] = {0, 1, 2, 0x00FF, 0x8000, 0xFFFF};

uint16_t ReadU16(const std::vector<uint8_t>& bytes, size_t offset) {
  return static_cast<uint16_t>((bytes[offset] << 8) | bytes[offset + 1]);
}

void WriteU16(std::vector<uint8_t>* bytes, size_t offset, uint16_t value) {
  (*bytes)[offset] = static_cast<uint8_t>(value >> 8);
  (*bytes)[offset + 1] = static_cast<uint8_t>(value & 0xff);
}

// Advances past one canonical (uncompressed) name; false on malformed.
bool SkipCanonicalName(const std::vector<uint8_t>& bytes, size_t* pos) {
  while (*pos < bytes.size()) {
    uint8_t len = bytes[*pos];
    if (len == 0) {
      ++*pos;
      return true;
    }
    if (len > 63 || *pos + 1 + len > bytes.size()) {
      return false;
    }
    *pos += 1 + static_cast<size_t>(len);
  }
  return false;
}

}  // namespace

const char* MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kHeaderField:
      return "header-field";
    case MutationKind::kCompressionPointer:
      return "compression-pointer";
    case MutationKind::kRdlength:
      return "rdlength";
    case MutationKind::kTruncate:
      return "truncate";
    case MutationKind::kByteFlip:
      return "byte-flip";
    case MutationKind::kEdnsOpt:
      return "edns-opt";
  }
  return "unknown";
}

bool IndexCanonicalResponse(const std::vector<uint8_t>& bytes, GeneratedPacket* out) {
  out->bytes = bytes;
  out->rdlength_offsets.clear();
  out->name_offsets.clear();
  if (bytes.size() < kHeaderSize) {
    return false;
  }
  uint16_t qdcount = ReadU16(bytes, 4);
  size_t records = static_cast<size_t>(ReadU16(bytes, 6)) + ReadU16(bytes, 8) + ReadU16(bytes, 10);
  size_t pos = kHeaderSize;
  for (uint16_t q = 0; q < qdcount; ++q) {
    out->name_offsets.push_back(pos);
    if (!SkipCanonicalName(bytes, &pos) || pos + 4 > bytes.size()) {
      return false;
    }
    pos += 4;  // qtype + qclass
  }
  for (size_t r = 0; r < records; ++r) {
    out->name_offsets.push_back(pos);
    if (!SkipCanonicalName(bytes, &pos) || pos + 10 > bytes.size()) {
      return false;
    }
    pos += 8;  // type + class + ttl
    out->rdlength_offsets.push_back(pos);
    uint16_t rdlength = ReadU16(bytes, pos);
    pos += 2;
    if (pos + rdlength > bytes.size()) {
      return false;
    }
    pos += rdlength;
  }
  return pos == bytes.size();
}

PacketGenerator::PacketGenerator(uint64_t seed, const ZoneConfig& vocabulary_zone)
    : rng_(seed) {
  std::set<std::string> labels;
  auto add_name = [&labels](const DnsName& name) {
    for (const std::string& label : name.labels) {
      labels.insert(label);
    }
  };
  add_name(vocabulary_zone.origin);
  for (const ZoneRecord& record : vocabulary_zone.records) {
    add_name(record.name);
    add_name(record.rdata.name);
  }
  // A few labels no zone uses, so NXDOMAIN / out-of-zone paths stay covered.
  labels.insert("zzz-missing");
  labels.insert("elsewhere");
  vocabulary_.assign(labels.begin(), labels.end());
}

std::string PacketGenerator::RandomLabel() {
  // 3:1 vocabulary over fresh random labels; fresh ones occasionally take the
  // 63-byte boundary length.
  if (!vocabulary_.empty() && rng_.NextChance(3, 4)) {
    return vocabulary_[rng_.NextBelow(vocabulary_.size())];
  }
  size_t len = rng_.NextChance(1, 16) ? 63 : 1 + rng_.NextBelow(12);
  std::string label;
  for (size_t i = 0; i < len; ++i) {
    label.push_back(static_cast<char>('a' + rng_.NextBelow(26)));
  }
  return label;
}

DnsName PacketGenerator::RandomName(int max_labels) {
  DnsName name;
  int labels = static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(max_labels) + 1));
  for (int i = 0; i < labels; ++i) {
    name.labels.push_back(RandomLabel());
  }
  // Keep within the 255-wire-byte limit the encoder enforces.
  while (!ValidateWireName(name).ok() && !name.labels.empty()) {
    name.labels.pop_back();
  }
  return name;
}

RrType PacketGenerator::RandomType(bool query_position) {
  static constexpr RrType kKnown[] = {RrType::kA,  RrType::kNs,  RrType::kCname, RrType::kSoa,
                                      RrType::kMx, RrType::kTxt, RrType::kAaaa};
  if (rng_.NextChance(1, 8)) {
    uint16_t code = static_cast<uint16_t>(rng_.NextInRange(1, 255));  // arbitrary code
    if (!query_position && code == 41) {
      // A record claiming TYPE=OPT is an OPT to the parser (RFC 6891 leaves
      // no other reading), so 41 cannot masquerade as generic rdata in a
      // canonical packet. As a *qtype* it stays in the pool: that is a
      // legitimate query the v5.0 engine answers with FORMERR.
      code = 42;
    }
    return static_cast<RrType>(code);
  }
  if (query_position && rng_.NextChance(1, 5)) {
    return RrType::kAny;
  }
  return kKnown[rng_.NextBelow(std::size(kKnown))];
}

WireQuery PacketGenerator::NextQuery() {
  WireQuery query;
  query.id = static_cast<uint16_t>(rng_.Next());
  query.qname = RandomName(6);
  query.qtype = RandomType(/*query_position=*/true);
  query.qclass = rng_.NextChance(1, 16) ? static_cast<uint16_t>(rng_.Next()) : 1;
  query.recursion_desired = rng_.NextChance(1, 2);
  if (rng_.NextChance(1, 2)) {
    query.edns.present = true;
    switch (rng_.NextBelow(4)) {
      case 0:
        query.edns.udp_payload = kEdnsMinPayload;
        break;
      case 1:
        query.edns.udp_payload = 1232;  // the flag-day default
        break;
      case 2:
        query.edns.udp_payload = kEdnsResponderPayload;
        break;
      default:
        // Arbitrary, including sub-512 values: the encoder clamps, so the
        // emitted packet is still a parse/encode fixpoint.
        query.edns.udp_payload = static_cast<uint16_t>(rng_.Next());
        break;
    }
    query.edns.dnssec_ok = rng_.NextChance(1, 4);
    if (rng_.NextChance(1, 16)) {
      query.edns.version = static_cast<uint8_t>(rng_.NextInRange(1, 255));
    }
  }
  return query;
}

GeneratedPacket PacketGenerator::NextQueryPacket(WireQuery* query) {
  WireQuery q = NextQuery();
  if (query != nullptr) {
    *query = q;
  }
  GeneratedPacket packet;
  packet.bytes = EncodeWireQuery(q);
  packet.name_offsets.push_back(kHeaderSize);
  return packet;
}

ResponseView PacketGenerator::NextResponseView() {
  ResponseView view;
  view.rcode = static_cast<Rcode>(rng_.NextBelow(16));
  view.aa = rng_.NextChance(1, 2);
  std::vector<RrView>* sections[3] = {&view.answer, &view.authority, &view.additional};
  for (std::vector<RrView>* section : sections) {
    size_t count = rng_.NextBelow(4);
    for (size_t i = 0; i < count; ++i) {
      RrView rr;
      rr.name = RandomName(4).ToString();
      rr.type = RandomType(/*query_position=*/false);
      // Type-appropriate rdata ranges so the view is an encode/parse fixpoint
      // (an MX preference over 65535 would be silently narrowed on the wire).
      switch (rr.type) {
        case RrType::kA:
        case RrType::kSoa:
          rr.rdata_value = static_cast<int64_t>(rng_.Next() & 0xffffffff);
          break;
        case RrType::kAaaa:
          rr.rdata_value = static_cast<int64_t>(rng_.Next() >> 2);  // < 2^62
          break;
        case RrType::kMx:
          rr.rdata_value = static_cast<int64_t>(rng_.NextBelow(0x10000));
          break;
        case RrType::kTxt:
          rr.rdata_value = static_cast<int64_t>(rng_.NextBelow(1000000));
          break;
        default:
          rr.rdata_value = 0;  // unknown types carry empty rdata
          break;
      }
      if (rr.type == RrType::kNs || rr.type == RrType::kCname || rr.type == RrType::kMx ||
          rr.type == RrType::kSoa) {
        rr.rdata_name = RandomName(4).ToString();
      }
      section->push_back(std::move(rr));
    }
  }
  return view;
}

GeneratedPacket PacketGenerator::NextResponsePacket(WireQuery* query_out) {
  WireQuery query = NextQuery();
  query.qclass = 1;
  ResponseView view = NextResponseView();
  // Encode with an effectively unlimited size: the generator's job is the
  // codec fixpoint, and a TC-truncated packet is deliberately not one (the
  // dropped records cannot come back). Truncation is covered separately by
  // the round-trip harness's oversized-response property.
  Result<std::vector<uint8_t>> bytes = EncodeWireResponse(query, view, /*max_size=*/1 << 20);
  DNSV_CHECK(bytes.ok());  // generator emits only wire-valid names/counts
  if (query_out != nullptr) {
    *query_out = query;
  }
  GeneratedPacket packet;
  DNSV_CHECK(IndexCanonicalResponse(bytes.value(), &packet));
  return packet;
}

std::vector<uint8_t> PacketGenerator::Mutate(const GeneratedPacket& packet,
                                             MutationKind* kind_out) {
  std::vector<uint8_t> bytes = packet.bytes;
  MutationKind kind = static_cast<MutationKind>(rng_.NextBelow(kNumMutationKinds));
  // Structure-aware families fall back to byte flips when the packet lacks
  // the needed offsets (queries have no RDLENGTH fields).
  if (kind == MutationKind::kRdlength && packet.rdlength_offsets.empty()) {
    kind = MutationKind::kByteFlip;
  }
  if (bytes.size() <= kHeaderSize &&
      (kind == MutationKind::kCompressionPointer || kind == MutationKind::kTruncate)) {
    kind = MutationKind::kByteFlip;
  }
  if (bytes.size() < kHeaderSize && kind == MutationKind::kEdnsOpt) {
    kind = MutationKind::kByteFlip;  // no ARCOUNT field to bump
  }
  switch (kind) {
    case MutationKind::kHeaderField: {
      size_t field = rng_.NextBelow(6);  // id, flags, qd, an, ns, ar
      uint16_t value = rng_.NextChance(2, 3)
                           ? kHeaderBoundaryValues[rng_.NextBelow(std::size(kHeaderBoundaryValues))]
                           : static_cast<uint16_t>(rng_.Next());
      if (bytes.size() >= kHeaderSize) {
        WriteU16(&bytes, field * 2, value);
      }
      break;
    }
    case MutationKind::kCompressionPointer: {
      // Plant a pointer at a name offset when we know one (hits the name
      // parser for sure), else anywhere past the header. Target choices:
      // backward (valid-ish), self (degenerate loop), forward (malformed).
      size_t at = packet.name_offsets.empty()
                      ? kHeaderSize + rng_.NextBelow(bytes.size() - kHeaderSize)
                      : packet.name_offsets[rng_.NextBelow(packet.name_offsets.size())];
      size_t target = 0;
      switch (rng_.NextBelow(3)) {
        case 0:
          target = rng_.NextBelow(at + 1);  // backward or self
          break;
        case 1:
          target = at;  // self loop
          break;
        default:
          target = at + 1 + rng_.NextBelow(64);  // forward
          break;
      }
      target &= 0x3FFF;
      if (at + 1 < bytes.size()) {
        bytes[at] = static_cast<uint8_t>(0xC0 | (target >> 8));
        bytes[at + 1] = static_cast<uint8_t>(target & 0xff);
      }
      break;
    }
    case MutationKind::kRdlength: {
      size_t offset = packet.rdlength_offsets[rng_.NextBelow(packet.rdlength_offsets.size())];
      uint16_t rdlength = ReadU16(bytes, offset);
      uint16_t lie;
      switch (rng_.NextBelow(4)) {
        case 0:
          lie = static_cast<uint16_t>(rdlength + 1 + rng_.NextBelow(8));  // overclaim
          break;
        case 1:
          lie = rdlength > 0 ? static_cast<uint16_t>(rng_.NextBelow(rdlength)) : 1;  // under
          break;
        case 2:
          lie = 0xFFFF;  // past end of packet
          break;
        default:
          lie = static_cast<uint16_t>(rng_.Next());
          break;
      }
      WriteU16(&bytes, offset, lie);
      break;
    }
    case MutationKind::kTruncate: {
      bytes.resize(rng_.NextBelow(bytes.size()));
      break;
    }
    case MutationKind::kByteFlip: {
      size_t flips = 1 + rng_.NextBelow(4);
      for (size_t i = 0; i < flips && !bytes.empty(); ++i) {
        bytes[rng_.NextBelow(bytes.size())] ^= static_cast<uint8_t>(1 + rng_.NextBelow(255));
      }
      break;
    }
    case MutationKind::kEdnsOpt: {
      // Graft an OPT pseudo-record onto the tail and bump ARCOUNT. On a
      // packet that already carries one this makes a duplicate (must be
      // refused); the hostile shapes probe each RFC 6891 validity rule the
      // parser enforces separately.
      enum { kWellFormed, kNonRootName, kSubMinPayload, kBadVersion, kTruncatedOpt };
      int shape = static_cast<int>(rng_.NextBelow(5));
      std::vector<uint8_t> opt;
      if (shape == kNonRootName) {
        opt.push_back(1);
        opt.push_back('x');
      }
      opt.push_back(0);  // root (or final label terminator)
      opt.push_back(0);
      opt.push_back(41);  // TYPE = OPT
      uint16_t payload = shape == kSubMinPayload
                             ? static_cast<uint16_t>(rng_.NextBelow(512))
                             : static_cast<uint16_t>(512 + rng_.NextBelow(65536 - 512));
      opt.push_back(static_cast<uint8_t>(payload >> 8));
      opt.push_back(static_cast<uint8_t>(payload & 0xff));
      opt.push_back(0);  // extended RCODE
      opt.push_back(shape == kBadVersion ? static_cast<uint8_t>(rng_.NextInRange(1, 255)) : 0);
      opt.push_back(rng_.NextChance(1, 4) ? 0x80 : 0);  // DO + upper Z
      opt.push_back(0);
      opt.push_back(0);  // RDLENGTH = 0
      opt.push_back(0);
      if (shape == kTruncatedOpt) {
        opt.resize(1 + rng_.NextBelow(opt.size() - 1));  // cut inside the record
      }
      uint16_t arcount = ReadU16(bytes, 10);
      WriteU16(&bytes, 10, static_cast<uint16_t>(arcount + 1));
      bytes.insert(bytes.end(), opt.begin(), opt.end());
      break;
    }
  }
  if (kind_out != nullptr) {
    *kind_out = kind;
  }
  return bytes;
}

std::string WirePacketToHex(const std::vector<uint8_t>& packet) { return HexDump(packet); }

Result<std::vector<uint8_t>> HexToWirePacket(const std::string& text) {
  std::vector<uint8_t> bytes;
  int nibble = -1;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '#' || c == ';') {
      while (i < text.size() && text[i] != '\n') {
        ++i;
      }
      continue;
    }
    int value;
    if (c >= '0' && c <= '9') {
      value = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      value = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      value = c - 'A' + 10;
    } else if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      if (nibble >= 0) {
        return Result<std::vector<uint8_t>>::Error(
            StrCat("odd hex digit before whitespace at offset ", i));
      }
      continue;
    } else {
      return Result<std::vector<uint8_t>>::Error(StrCat("invalid hex character '", c, "'"));
    }
    if (nibble < 0) {
      nibble = value;
    } else {
      bytes.push_back(static_cast<uint8_t>((nibble << 4) | value));
      nibble = -1;
    }
  }
  if (nibble >= 0) {
    return Result<std::vector<uint8_t>>::Error("trailing unpaired hex digit");
  }
  return bytes;
}

}  // namespace dnsv

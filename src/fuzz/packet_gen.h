// Deterministic structured DNS packet generation and mutation for the wire
// fuzzer (docs/WIRE.md). The generator emits canonical in-bounds packets
// through the real codec (EncodeWireQuery / EncodeWireResponse) so every
// generated packet is a ground-truth fixpoint witness; the mutator then
// applies the adversarial families the codec historically got wrong:
// header-field rewrites, name-compression pointers (loops, forward jumps),
// RDLENGTH lies, truncation, OPT pseudo-record grafts (duplicate, non-root,
// version > 0, sub-512 payload, truncated — RFC 6891), and plain byte flips.
//
// Everything is seed-driven (SplitMix64) and platform-independent: the same
// seed produces the same packet sequence on every run, which is what lets CI
// pin a fixed-seed smoke pass and lets a reported packet be replayed.
#ifndef DNSV_FUZZ_PACKET_GEN_H_
#define DNSV_FUZZ_PACKET_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dns/wire.h"
#include "src/dns/zone.h"
#include "src/support/rng.h"

namespace dnsv {

// The mutation families (ISSUE: header-field, name-compression, rdlength,
// truncation) plus plain byte flips as the unstructured baseline.
enum class MutationKind : uint8_t {
  kHeaderField,         // rewrite one of the six header u16s
  kCompressionPointer,  // plant a 0xC0 pointer (backward, forward, or self)
  kRdlength,            // make an RDLENGTH field lie about its rdata
  kTruncate,            // chop the packet at a random byte
  kByteFlip,            // flip random bytes anywhere
  kEdnsOpt,             // graft an OPT pseudo-record (well-formed or hostile)
};
inline constexpr int kNumMutationKinds = 6;
const char* MutationKindName(MutationKind kind);

// A canonical packet plus the structural offsets the mutator targets.
struct GeneratedPacket {
  std::vector<uint8_t> bytes;
  // Offset of every RDLENGTH u16 (responses only; empty for queries).
  std::vector<size_t> rdlength_offsets;
  // Offset of every encoded name (question owner, record owners).
  std::vector<size_t> name_offsets;
};

// Walks a canonical (encoder-produced, uncompressed) response packet and
// records the name/RDLENGTH offsets. Returns false if the packet does not
// have the canonical shape (the caller then falls back to byte mutations).
bool IndexCanonicalResponse(const std::vector<uint8_t>& bytes, GeneratedPacket* out);

class PacketGenerator {
 public:
  // `vocabulary_zone` seeds the label alphabet, so generated queries land on
  // the interesting paths of an engine serving that zone (exact matches,
  // wildcard instantiations, delegation children) instead of being uniformly
  // NXDOMAIN noise.
  PacketGenerator(uint64_t seed, const ZoneConfig& vocabulary_zone);

  // A random in-bounds query: vocabulary-biased qname, qtype mixing the
  // engine's types with arbitrary codes in [1, 255], and (about half the
  // time) an EDNS OPT advertising 512/1232/4096 or an arbitrary payload —
  // occasionally a version above 0, which stays parseable (BADVERS needs an
  // addressable sender).
  WireQuery NextQuery();
  GeneratedPacket NextQueryPacket(WireQuery* query = nullptr);

  // A random well-formed response view (wire-valid names, type-appropriate
  // rdata ranges) and its canonical packet. `query_out`, when non-null,
  // receives the question the packet answers.
  ResponseView NextResponseView();
  GeneratedPacket NextResponsePacket(WireQuery* query_out = nullptr);

  // Applies one randomly chosen mutation family to a copy of `packet`.
  std::vector<uint8_t> Mutate(const GeneratedPacket& packet, MutationKind* kind_out = nullptr);

  SplitMix64& rng() { return rng_; }
  const std::vector<std::string>& vocabulary() const { return vocabulary_; }

 private:
  std::string RandomLabel();
  DnsName RandomName(int max_labels);
  RrType RandomType(bool query_position);

  SplitMix64 rng_;
  std::vector<std::string> vocabulary_;
};

// Hex helpers shared by the corpus tests and the CLI's packet reports:
// `WirePacketToHex` is HexDump-compatible; `HexToWirePacket` additionally
// accepts whitespace and '#'/';' line comments (the corpus file format).
std::string WirePacketToHex(const std::vector<uint8_t>& packet);
Result<std::vector<uint8_t>> HexToWirePacket(const std::string& text);

}  // namespace dnsv

#endif  // DNSV_FUZZ_PACKET_GEN_H_

#include "src/fuzz/fuzzer.h"

#include <cstdio>
#include <set>
#include <utility>

#include "src/engine/engine.h"
#include "src/exec/codegen.h"
#include "src/ir/printer.h"
#include "src/support/strings.h"
#include "src/zonegen/zonegen.h"

namespace dnsv {
namespace {

void Violation(RoundTripStats* stats, const RoundTripOptions& options, std::string what,
               const std::vector<uint8_t>& packet) {
  ++stats->violations;
  if (static_cast<int>(stats->reports.size()) < options.max_reports) {
    stats->reports.push_back(StrCat(what, "\n", WirePacketToHex(packet)));
  }
}

// parse -> encode -> parse on a canonical generated response: the bytes are
// the fixpoint witness.
void CheckResponseFixpoint(const GeneratedPacket& packet, RoundTripStats* stats,
                           const RoundTripOptions& options) {
  WireQuery echoed;
  bool tc = false;
  Result<ResponseView> parsed = ParseWireResponse(packet.bytes, &echoed, &tc);
  if (!parsed.ok()) {
    Violation(stats, options, "generated response does not parse: " + parsed.error(),
              packet.bytes);
    return;
  }
  if (tc) {
    Violation(stats, options, "generated response has TC set", packet.bytes);
  }
  Result<std::vector<uint8_t>> reencoded =
      EncodeWireResponse(echoed, parsed.value(), /*max_size=*/1 << 20);
  if (!reencoded.ok()) {
    Violation(stats, options, "parsed view does not re-encode: " + reencoded.error(),
              packet.bytes);
    return;
  }
  if (reencoded.value() != packet.bytes) {
    Violation(stats, options, "re-encoded response is not byte-identical", packet.bytes);
  }
}

// RFC-1035 truncation property, generalized over the EDNS-negotiated limits
// (RFC 6891 §4.3): any parsed view re-encoded at `limit` must fit, keep the
// question — and the OPT echo, which is part of the fixed portion and must
// survive any truncation — set TC exactly when records were dropped, and the
// surviving records must be a back-to-front prefix cut.
void CheckTruncationProperty(const WireQuery& query, const ResponseView& view, size_t limit,
                             RoundTripStats* stats, const RoundTripOptions& options,
                             const std::vector<uint8_t>& origin_packet) {
  Result<std::vector<uint8_t>> at_udp = EncodeWireResponse(query, view, limit);
  if (!at_udp.ok()) {
    Violation(stats, options, "truncating encode failed: " + at_udp.error(), origin_packet);
    return;
  }
  if (at_udp.value().size() > limit) {
    Violation(stats, options, StrCat("truncated response exceeds the ", limit, "-byte limit"),
              at_udp.value());
    return;
  }
  WireQuery echoed;
  bool tc = false;
  Result<ResponseView> parsed = ParseWireResponse(at_udp.value(), &echoed, &tc);
  if (!parsed.ok()) {
    Violation(stats, options, "truncated response does not parse: " + parsed.error(),
              at_udp.value());
    return;
  }
  if (query.edns.present && !echoed.edns.present) {
    Violation(stats, options, "truncation dropped the OPT record", at_udp.value());
    return;
  }
  const ResponseView& small = parsed.value();
  size_t kept = small.answer.size() + small.authority.size() + small.additional.size();
  size_t total = view.answer.size() + view.authority.size() + view.additional.size();
  if (tc != (kept < total)) {
    Violation(stats, options,
              StrCat("TC=", tc, " but ", kept, " of ", total, " records survived"),
              at_udp.value());
    return;
  }
  if (tc) {
    ++stats->truncations;
  }
  // Back-to-front drop order: every surviving section is a prefix of the
  // original, and a non-empty later section implies earlier sections intact.
  auto is_prefix = [](const std::vector<RrView>& a, const std::vector<RrView>& b) {
    if (a.size() > b.size()) {
      return false;
    }
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) {
        return false;
      }
    }
    return true;
  };
  bool prefixes = is_prefix(small.answer, view.answer) &&
                  is_prefix(small.authority, view.authority) &&
                  is_prefix(small.additional, view.additional);
  // Drop-order law: additional is dropped before authority, authority before
  // answer — so if any answer was dropped, authority and additional must be
  // empty; if any authority was dropped, additional must be empty.
  bool order = true;
  if (small.answer.size() < view.answer.size() &&
      !(small.authority.empty() && small.additional.empty())) {
    order = false;
  }
  if (small.authority.size() < view.authority.size() && !small.additional.empty()) {
    order = false;
  }
  if (!prefixes || !order) {
    Violation(stats, options, "truncation did not drop whole records back-to-front",
              at_udp.value());
  }
}

void CheckQueryMutant(const std::vector<uint8_t>& mutant, RoundTripStats* stats,
                      const RoundTripOptions& options) {
  Result<WireQuery> parsed = ParseWireQuery(mutant);
  if (!parsed.ok()) {
    ++stats->mutants_rejected;
    return;
  }
  ++stats->mutants_parsed;
  // Accepted mutants must normalize: the canonical re-encoding parses back
  // to the same query.
  std::vector<uint8_t> canonical = EncodeWireQuery(parsed.value());
  Result<WireQuery> again = ParseWireQuery(canonical);
  if (!again.ok()) {
    Violation(stats, options, "canonical re-encode of accepted query does not parse", mutant);
    return;
  }
  if (again.value().qname != parsed.value().qname ||
      again.value().qtype != parsed.value().qtype ||
      again.value().qclass != parsed.value().qclass || again.value().id != parsed.value().id ||
      again.value().edns != parsed.value().edns) {
    Violation(stats, options, "accepted query mutant does not normalize", mutant);
  }
}

void CheckResponseMutant(const std::vector<uint8_t>& mutant, RoundTripStats* stats,
                         const RoundTripOptions& options) {
  WireQuery echoed;
  Result<ResponseView> parsed = ParseWireResponse(mutant, &echoed);
  if (!parsed.ok()) {
    ++stats->mutants_rejected;
    return;
  }
  ++stats->mutants_parsed;
  // An accepted view must either re-encode (then round-trip view-equal), or
  // fail with a clean error (names the wire cannot carry, e.g. a
  // decompressed name over 255 bytes).
  Result<std::vector<uint8_t>> reencoded =
      EncodeWireResponse(echoed, parsed.value(), /*max_size=*/1 << 20);
  if (!reencoded.ok()) {
    ++stats->mutants_encode_rejected;
    return;
  }
  bool tc = false;
  WireQuery echoed2;
  Result<ResponseView> again = ParseWireResponse(reencoded.value(), &echoed2, &tc);
  if (!again.ok()) {
    Violation(stats, options,
              "re-encode of accepted response mutant does not parse: " + again.error(), mutant);
    return;
  }
  if (!(again.value() == parsed.value())) {
    Violation(stats, options, "accepted response mutant is not a view fixpoint", mutant);
  }
}

}  // namespace

std::string RoundTripStats::Summary() const {
  std::string out = StrCat("round-trip: ", packets, " packets (", queries, " queries, ",
                           responses, " responses, ", mutants, " mutants)\n");
  out += StrCat("  mutants: ", mutants_rejected, " rejected, ", mutants_parsed, " parsed, ",
                mutants_encode_rejected, " re-encode refused; truncations exercised: ",
                truncations, "\n");
  out += "  mutations:";
  for (int k = 0; k < kNumMutationKinds; ++k) {
    out += StrCat(" ", MutationKindName(static_cast<MutationKind>(k)), "=",
                  mutation_counts[k]);
  }
  out += StrCat("\n  violations: ", violations, "\n");
  for (const std::string& report : reports) {
    out += report;
  }
  return out;
}

RoundTripStats RunRoundTripFuzz(const RoundTripOptions& options,
                                const ZoneConfig& vocabulary_zone) {
  PacketGenerator gen(options.seed, vocabulary_zone);
  RoundTripStats stats;
  for (int64_t i = 0; i < options.iterations; ++i) {
    // Canonical query: must parse back to itself.
    WireQuery query;
    GeneratedPacket query_packet = gen.NextQueryPacket(&query);
    ++stats.packets;
    ++stats.queries;
    Result<WireQuery> parsed_query = ParseWireQuery(query_packet.bytes);
    if (!parsed_query.ok()) {
      Violation(&stats, options, "generated query does not parse: " + parsed_query.error(),
                query_packet.bytes);
    } else if (parsed_query.value().qname != query.qname ||
               parsed_query.value().qtype != query.qtype ||
               EncodeWireQuery(parsed_query.value()) != query_packet.bytes) {
      Violation(&stats, options, "generated query is not a fixpoint", query_packet.bytes);
    }

    // Canonical response: parse -> encode -> byte-identical, plus the
    // truncation property at the classic UDP limit and both common
    // EDNS-negotiated limits (the flag-day 1232 and the responder's 4096).
    GeneratedPacket response_packet = gen.NextResponsePacket();
    ++stats.packets;
    ++stats.responses;
    CheckResponseFixpoint(response_packet, &stats, options);
    {
      WireQuery echoed;
      Result<ResponseView> parsed = ParseWireResponse(response_packet.bytes, &echoed);
      if (parsed.ok()) {
        for (size_t limit : {size_t{kMaxUdpPayload}, size_t{1232}, size_t{kEdnsResponderPayload}}) {
          CheckTruncationProperty(echoed, parsed.value(), limit, &stats, options,
                                  response_packet.bytes);
        }
      }
    }

    // Mutants of both.
    for (int m = 0; m < options.mutants_per_packet; ++m) {
      MutationKind kind;
      std::vector<uint8_t> mutant = gen.Mutate(query_packet, &kind);
      ++stats.packets;
      ++stats.mutants;
      ++stats.mutation_counts[static_cast<int>(kind)];
      CheckQueryMutant(mutant, &stats, options);

      mutant = gen.Mutate(response_packet, &kind);
      ++stats.packets;
      ++stats.mutants;
      ++stats.mutation_counts[static_cast<int>(kind)];
      CheckResponseMutant(mutant, &stats, options);
    }
  }
  return stats;
}

namespace {

std::string BehaviorText(const QueryResult& result) {
  if (result.panicked) {
    return "panic: " + result.panic_message;
  }
  return result.response.ToString();
}

bool Diverges(const QueryResult& engine, const QueryResult& spec) {
  if (engine.panicked || spec.panicked) {
    return !(engine.panicked && spec.panicked &&
             engine.panic_message == spec.panic_message);
  }
  return !(engine.response == spec.response);
}

bool DivergesAt(AuthoritativeServer* server, const DnsName& qname, RrType qtype) {
  QueryResult engine = server->Query(qname, qtype);
  QueryResult spec = server->QuerySpec(qname, qtype);
  return Diverges(engine, spec);
}

// Greedy minimization: drop labels while the divergence (whatever `diverges`
// tests) persists, then try collapsing the qtype to A. Every step re-runs
// both sides concretely, so the reported packet provably still diverges.
template <typename DivergesFn>
void MinimizeWith(DivergesFn diverges, DnsName* qname, RrType* qtype) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < qname->labels.size(); ++i) {
      DnsName candidate = *qname;
      candidate.labels.erase(candidate.labels.begin() + static_cast<long>(i));
      if (diverges(candidate, *qtype)) {
        *qname = candidate;
        changed = true;
        break;
      }
    }
    if (*qtype != RrType::kA && diverges(*qname, RrType::kA)) {
      *qtype = RrType::kA;
      changed = true;
    }
  }
}

void Minimize(AuthoritativeServer* server, DnsName* qname, RrType* qtype) {
  MinimizeWith(
      [server](const DnsName& q, RrType t) { return DivergesAt(server, q, t); }, qname,
      qtype);
}

// The shared probe list: zone-derived interesting names x query types, plus
// random wire packets round-tripped through the parser. One list per run so
// per-version results are comparable and the pass is a function of the seed.
Result<std::vector<std::pair<DnsName, RrType>>> BuildProbes(
    const ZoneConfig& zone, const DifferentialOptions& options) {
  std::vector<std::pair<DnsName, RrType>> probes;
  if (options.include_interesting_probes) {
    for (const DnsName& qname : InterestingQueryNames(zone, options.seed, 8)) {
      for (RrType qtype : AllQueryTypes()) {
        probes.emplace_back(qname, qtype);
      }
    }
  }
  PacketGenerator gen(options.seed, zone);
  for (int64_t i = 0; i < options.random_queries; ++i) {
    GeneratedPacket packet = gen.NextQueryPacket();
    // Every probe travels as a real packet: what the engine sees is what
    // ParseWireQuery recovered from the wire, not the generator's intent.
    Result<WireQuery> parsed = ParseWireQuery(packet.bytes);
    if (!parsed.ok()) {
      return Result<std::vector<std::pair<DnsName, RrType>>>::Error(
          "generated query packet does not parse: " + parsed.error());
    }
    probes.emplace_back(parsed.value().qname, parsed.value().qtype);
  }
  return probes;
}

}  // namespace

std::string WireDivergence::ToString() const {
  return StrCat(EngineVersionName(version), ": ", qname.empty() ? "." : qname, " ",
                RrTypeDisplay(qtype), " (", query_packet.size(), "-byte query)\n  engine: ",
                engine_behavior, "\n  spec:   ", spec_behavior, "\n");
}

int64_t DifferentialStats::DivergenceCount(EngineVersion version) const {
  auto it = divergent_queries.find(version);
  return it == divergent_queries.end() ? 0 : it->second;
}

std::string DifferentialStats::Summary() const {
  std::string out = StrCat("differential: ", queries_per_version, " queries per version\n");
  for (const auto& [version, count] : divergent_queries) {
    out += StrCat("  ", EngineVersionName(version), ": ", count, " divergent queries\n");
  }
  out += StrCat("  minimized distinct divergences: ", divergences.size(), "\n");
  return out;
}

Result<DifferentialStats> RunDifferentialFuzz(const std::vector<EngineVersion>& versions,
                                              const ZoneConfig& zone,
                                              const DifferentialOptions& options) {
  Result<std::vector<std::pair<DnsName, RrType>>> built = BuildProbes(zone, options);
  if (!built.ok()) {
    return Result<DifferentialStats>::Error(built.error());
  }
  const std::vector<std::pair<DnsName, RrType>>& probes = built.value();

  DifferentialStats stats;
  stats.queries_per_version = static_cast<int64_t>(probes.size());
  for (EngineVersion version : versions) {
    Result<std::unique_ptr<AuthoritativeServer>> server =
        AuthoritativeServer::Create(version, zone);
    if (!server.ok()) {
      return Result<DifferentialStats>::Error(
          StrCat("cannot serve zone on ", EngineVersionName(version), ": ", server.error()));
    }
    AuthoritativeServer* s = server.value().get();
    std::set<std::string> seen;
    int64_t collected = 0;
    for (const auto& [qname, qtype] : probes) {
      QueryResult engine = s->Query(qname, qtype);
      QueryResult spec = s->QuerySpec(qname, qtype);
      if (!Diverges(engine, spec)) {
        continue;
      }
      ++stats.divergent_queries[version];
      if (collected >= options.max_divergences) {
        continue;
      }
      DnsName min_qname = qname;
      RrType min_qtype = qtype;
      Minimize(s, &min_qname, &min_qtype);
      std::string key = StrCat(min_qname.ToString(), "/", static_cast<int64_t>(min_qtype));
      if (!seen.insert(key).second) {
        continue;
      }
      ++collected;
      WireDivergence divergence;
      divergence.version = version;
      divergence.qname = min_qname.ToString();
      divergence.qtype = min_qtype;
      WireQuery wire_query;
      wire_query.id = 0xFADE;
      wire_query.qname = min_qname;
      wire_query.qtype = min_qtype;
      divergence.query_packet = EncodeWireQuery(wire_query);
      divergence.engine_behavior = BehaviorText(s->Query(min_qname, min_qtype));
      divergence.spec_behavior = BehaviorText(s->QuerySpec(min_qname, min_qtype));
      stats.divergences.push_back(std::move(divergence));
    }
  }
  return stats;
}

std::string BackendDivergence::ToString() const {
  return StrCat(EngineVersionName(version), spec ? " (spec)" : " (engine)", ": ",
                qname.empty() ? "." : qname, " ", RrTypeDisplay(qtype), " (",
                query_packet.size(), "-byte query)\n  interp:   ", interp_behavior,
                "\n  compiled: ", compiled_behavior, "\n");
}

std::string BackendDifferentialStats::Summary() const {
  std::string out =
      StrCat("backend differential: ", queries_per_version, " queries per version x 2 entry points\n");
  for (const auto& [version, fingerprint] : fingerprints) {
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(fingerprint));
    auto it = divergent_queries.find(version);
    int64_t divergent = it == divergent_queries.end() ? 0 : it->second;
    out += StrCat("  ", EngineVersionName(version), ": fingerprint ", hex, " verified, ",
                  divergent, " divergent queries\n");
  }
  out += StrCat("  minimized distinct divergences: ", divergences.size(), "\n");
  for (const BackendDivergence& divergence : divergences) {
    out += divergence.ToString();
  }
  return out;
}

Result<uint64_t> VerifyCompiledArtifact(EngineVersion version) {
  Result<uint64_t> embedded = CompiledBackendFingerprint(version);
  if (!embedded.ok()) {
    return Result<uint64_t>::Error(StrCat("no compiled artifact for ",
                                          EngineVersionName(version), ": ", embedded.error()));
  }
  // Reproduce exactly what absir-codegen hashed: frontend output + the
  // verifier's prune pass. Byte-identical IR is the claim, so the comparison
  // is over the full printed module, not any summary of it.
  std::unique_ptr<CompiledEngine> fresh = CompiledEngine::Compile(version);
  PruneForCodegen(&fresh->mutable_module());
  uint64_t recomputed = ModuleFingerprint(fresh->module());
  if (recomputed != embedded.value()) {
    char want[24], got[24];
    std::snprintf(want, sizeof(want), "%016llx",
                  static_cast<unsigned long long>(recomputed));
    std::snprintf(got, sizeof(got), "%016llx",
                  static_cast<unsigned long long>(embedded.value()));
    return Result<uint64_t>::Error(
        StrCat("compiled artifact for ", EngineVersionName(version),
               " was generated from different IR: embedded fingerprint ", got,
               ", recompiled+pruned IR hashes to ", want, " (stale absir-codegen output?)"));
  }
  return embedded.value();
}

Result<BackendDifferentialStats> RunBackendDifferential(
    const std::vector<EngineVersion>& versions, const ZoneConfig& zone,
    const DifferentialOptions& options) {
  Result<std::vector<std::pair<DnsName, RrType>>> built = BuildProbes(zone, options);
  if (!built.ok()) {
    return Result<BackendDifferentialStats>::Error(built.error());
  }
  const std::vector<std::pair<DnsName, RrType>>& probes = built.value();

  BackendDifferentialStats stats;
  stats.queries_per_version = static_cast<int64_t>(probes.size());
  for (EngineVersion version : versions) {
    Result<uint64_t> fingerprint = VerifyCompiledArtifact(version);
    if (!fingerprint.ok()) {
      return Result<BackendDifferentialStats>::Error(fingerprint.error());
    }
    stats.fingerprints[version] = fingerprint.value();

    Result<std::unique_ptr<AuthoritativeServer>> interp =
        AuthoritativeServer::Create(version, zone, BackendKind::kInterp);
    if (!interp.ok()) {
      return Result<BackendDifferentialStats>::Error(
          StrCat("cannot serve zone on ", EngineVersionName(version), ": ", interp.error()));
    }
    Result<std::unique_ptr<AuthoritativeServer>> compiled =
        AuthoritativeServer::Create(version, zone, BackendKind::kCompiled);
    if (!compiled.ok()) {
      return Result<BackendDifferentialStats>::Error(StrCat(
          "cannot serve zone compiled on ", EngineVersionName(version), ": ", compiled.error()));
    }
    AuthoritativeServer* a = interp.value().get();
    AuthoritativeServer* b = compiled.value().get();
    auto run = [&](bool spec, const DnsName& qname, RrType qtype, QueryResult* ia,
                   QueryResult* cb) {
      *ia = spec ? a->QuerySpec(qname, qtype) : a->Query(qname, qtype);
      *cb = spec ? b->QuerySpec(qname, qtype) : b->Query(qname, qtype);
    };

    std::set<std::string> seen;
    int64_t collected = 0;
    for (bool spec : {false, true}) {
      auto diverges_at = [&](const DnsName& qname, RrType qtype) {
        QueryResult ia, cb;
        run(spec, qname, qtype, &ia, &cb);
        return Diverges(ia, cb);
      };
      for (const auto& [qname, qtype] : probes) {
        if (!diverges_at(qname, qtype)) {
          continue;
        }
        ++stats.divergent_queries[version];
        if (collected >= options.max_divergences) {
          continue;
        }
        DnsName min_qname = qname;
        RrType min_qtype = qtype;
        MinimizeWith(diverges_at, &min_qname, &min_qtype);
        std::string key = StrCat(spec, "/", min_qname.ToString(), "/",
                                 static_cast<int64_t>(min_qtype));
        if (!seen.insert(key).second) {
          continue;
        }
        ++collected;
        BackendDivergence divergence;
        divergence.version = version;
        divergence.spec = spec;
        divergence.qname = min_qname.ToString();
        divergence.qtype = min_qtype;
        WireQuery wire_query;
        wire_query.id = 0xFADE;
        wire_query.qname = min_qname;
        wire_query.qtype = min_qtype;
        divergence.query_packet = EncodeWireQuery(wire_query);
        QueryResult ia, cb;
        run(spec, min_qname, min_qtype, &ia, &cb);
        divergence.interp_behavior = BehaviorText(ia);
        divergence.compiled_behavior = BehaviorText(cb);
        stats.divergences.push_back(std::move(divergence));
      }
    }
  }
  return stats;
}

}  // namespace dnsv

// The wire-level conformance and differential fuzzing harness (docs/WIRE.md).
//
// Three passes, all deterministic for a given seed:
//
//   Round-trip (codec conformance) — generated canonical packets must be
//   parse/encode fixpoints; mutated packets must either be rejected cleanly
//   or re-encode to a view-equivalent packet. Crashes are the sanitizers'
//   department: ci/check.sh runs the same pass under ASan/UBSan.
//
//   Differential (engine vs spec) — every generated in-bounds query is
//   parsed from its wire packet and executed on the concrete interpreter
//   through both the engine's Resolve and the zone-lifted rrlookup spec;
//   response-view disagreement (or a panic) is a divergence, reported as a
//   minimized query packet. On the clean versions (golden, v4.0, v5.0) this
//   must find nothing; on v1.0–dev it rediscovers the Table-2 bugs from the
//   packet side, complementing the verifier's symbolic search.
//
//   Backend differential (interp vs AOT-compiled; docs/BACKEND.md) — the
//   same probes run through both ExecutionBackends on every version, after a
//   fingerprint provenance gate ties the compiled artifact to the verified
//   IR. Any divergence here, buggy versions included, is a codegen bug.
#ifndef DNSV_FUZZ_FUZZER_H_
#define DNSV_FUZZ_FUZZER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/dns/zone.h"
#include "src/engine/sources/sources.h"
#include "src/fuzz/packet_gen.h"

namespace dnsv {

struct RoundTripOptions {
  uint64_t seed = 0xD15EA5E;
  // Each iteration exercises one query packet, one response packet, and
  // `mutants_per_packet` mutants of each: packets per iteration =
  // 2 * (1 + mutants_per_packet).
  int64_t iterations = 1000;
  int mutants_per_packet = 2;
  int max_reports = 5;  // violation descriptions kept verbatim
};

struct RoundTripStats {
  int64_t packets = 0;  // total packets exercised, mutants included
  int64_t queries = 0;
  int64_t responses = 0;
  int64_t mutants = 0;
  int64_t mutants_rejected = 0;        // parser refused (expected for most)
  int64_t mutants_parsed = 0;          // parser accepted the mutant
  int64_t mutants_encode_rejected = 0; // accepted view failed to re-encode (clean error)
  int64_t truncations = 0;  // oversized responses exercised at 512/1232/4096 bytes
  int64_t mutation_counts[kNumMutationKinds] = {};
  int64_t violations = 0;
  std::vector<std::string> reports;  // first max_reports violations, with hex dumps

  bool ok() const { return violations == 0; }
  std::string Summary() const;
};

// Runs the codec-conformance pass. `vocabulary_zone` only seeds the label
// alphabet; no engine is involved.
RoundTripStats RunRoundTripFuzz(const RoundTripOptions& options,
                                const ZoneConfig& vocabulary_zone);

// One engine/spec disagreement, minimized (greedy label dropping + qtype
// simplification) and re-encoded as a wire query packet.
struct WireDivergence {
  EngineVersion version = EngineVersion::kGolden;
  std::string qname;  // minimized; "." for the root
  RrType qtype = RrType::kA;
  std::vector<uint8_t> query_packet;  // EncodeWireQuery of the minimized query
  std::string engine_behavior;  // response text, or "panic: ..."
  std::string spec_behavior;

  std::string ToString() const;
};

struct DifferentialOptions {
  uint64_t seed = 0xD15EA5E;
  int64_t random_queries = 400;  // per version, on top of the interesting probes
  // Prepend zone-derived probe names (owners, ENTs, wildcard instantiations,
  // children, out-of-zone) x the engine's query types; this is what makes a
  // few hundred queries enough to hit every Table-2 bug deterministically.
  bool include_interesting_probes = true;
  int max_divergences = 32;  // minimized + deduplicated, per run
};

struct DifferentialStats {
  int64_t queries_per_version = 0;
  std::map<EngineVersion, int64_t> divergent_queries;  // pre-minimization counts
  std::vector<WireDivergence> divergences;

  int64_t DivergenceCount(EngineVersion version) const;
  std::string Summary() const;
};

// Runs the differential pass over `versions` serving `zone`. Fails (Result
// error) only on setup problems — an invalid zone; divergences are data, not
// errors.
Result<DifferentialStats> RunDifferentialFuzz(const std::vector<EngineVersion>& versions,
                                              const ZoneConfig& zone,
                                              const DifferentialOptions& options);

// --- Backend differential (interp vs AOT-compiled; docs/BACKEND.md) ---
//
// Unlike the engine-vs-spec pass above, ANY divergence here is a harness or
// codegen bug: the two backends execute the same verified engine, so every
// probe must produce byte-identical behavior on every version — buggy
// versions included (a buggy engine must be buggy identically on both).

// One interp-vs-compiled disagreement, minimized like WireDivergence.
struct BackendDivergence {
  EngineVersion version = EngineVersion::kGolden;
  bool spec = false;  // diverged on QuerySpec (rrlookup) rather than Query (resolve)
  std::string qname;  // minimized; "." for the root
  RrType qtype = RrType::kA;
  std::vector<uint8_t> query_packet;  // EncodeWireQuery of the minimized query
  std::string interp_behavior;  // response text, or "panic: ..."
  std::string compiled_behavior;

  std::string ToString() const;
};

struct BackendDifferentialStats {
  int64_t queries_per_version = 0;  // x2 entry points (resolve + rrlookup)
  std::map<EngineVersion, int64_t> divergent_queries;  // pre-minimization counts
  std::vector<BackendDivergence> divergences;
  // Per version, the ModuleFingerprint shared by the compiled artifact and
  // the recompiled + repruned IR (the provenance gate passed).
  std::map<EngineVersion, uint64_t> fingerprints;

  bool ok() const { return divergent_queries.empty(); }
  std::string Summary() const;
};

// Recompiles `version` from the embedded sources, applies the verifier's
// PruneModule pass, and compares the resulting ModuleFingerprint against the
// fingerprint absir-codegen embedded in this binary's compiled artifact.
// Proves the code being served and the IR being verified are byte-identical
// modules, not merely behaviorally close. Ok value = the common fingerprint.
Result<uint64_t> VerifyCompiledArtifact(EngineVersion version);

// Runs every probe through two shards per version — one on the interpreter,
// one on the AOT-compiled backend — through both entry points (Query and
// QuerySpec), and records any behavioral difference. Each version passes
// VerifyCompiledArtifact first; a fingerprint mismatch is a setup error.
Result<BackendDifferentialStats> RunBackendDifferential(
    const std::vector<EngineVersion>& versions, const ZoneConfig& zone,
    const DifferentialOptions& options);

}  // namespace dnsv

#endif  // DNSV_FUZZ_FUZZER_H_

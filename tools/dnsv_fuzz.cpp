// dnsv-fuzz: wire-level conformance + differential fuzzing CLI (docs/WIRE.md).
//
// Three passes, all deterministic for a given --seed:
//   1. round-trip — generated canonical packets are parse/encode fixpoints;
//      mutants (header-field, compression-pointer, rdlength, truncation,
//      byte-flip, edns-opt) are rejected cleanly or normalize.
//   2. differential — generated in-bounds queries run through the concrete
//      interpreter on every selected engine version, engine vs spec;
//      divergences are reported as minimized query packets.
//   3. backend differential — the same queries, interp vs AOT-compiled
//      backend, both entry points, after the fingerprint provenance gate
//      (docs/BACKEND.md). ANY divergence or fingerprint mismatch fails the
//      run, on buggy versions too: the backends must agree bug-for-bug.
//
// Modes:
//   dnsv-fuzz --smoke            fixed-seed CI gate: >= 10k round-trip
//                                packets, differential over all seven versions
//                                on the bug-hunt zone. Exits non-zero when a
//                                round-trip invariant breaks, a clean version
//                                (golden, v4.0, v5.0) diverges from the spec, or a
//                                buggy version fails to diverge (the harness
//                                would then be blind to the Table-2 bugs).
//   dnsv-fuzz [options]          exploratory run; exits non-zero only on
//                                round-trip violations.
//
// Options: --seed=N --packets=N (round-trip total, approx) --queries=N
//          (random differential queries per version) --zone=FILE (zone text,
//          default: built-in bug-hunt zone) --versions=v1.0,golden,...
//          --hex (dump minimized divergent packets)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/dns/example_zones.h"
#include "src/fuzz/fuzzer.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

constexpr uint64_t kSmokeSeed = 0xD15EA5E;

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = StrCat("--", name, "=");
  if (StartsWith(arg, prefix)) {
    *value = arg + prefix.size();
    return true;
  }
  return false;
}

bool VersionFromName(const std::string& name, EngineVersion* out) {
  for (EngineVersion version : AllEngineVersions()) {
    if (name == EngineVersionName(version)) {
      *out = version;
      return true;
    }
  }
  return false;
}

int Usage() {
  std::fprintf(stderr,
               "usage: dnsv-fuzz [--smoke] [--seed=N] [--packets=N] [--queries=N]\n"
               "                 [--zone=FILE] [--versions=v1.0,v2.0,...] [--hex]\n");
  return 2;
}

int RunFuzz(int argc, char** argv) {
  bool smoke = false;
  bool hex = false;
  uint64_t seed = kSmokeSeed;
  int64_t packets = 12000;
  int64_t queries = 300;
  std::string zone_file;
  std::vector<EngineVersion> versions = AllEngineVersions();

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--hex") == 0) {
      hex = true;
    } else if (ParseFlag(argv[i], "seed", &value)) {
      int64_t parsed = 0;
      if (!ParseInt64(value, &parsed)) {
        return Usage();
      }
      seed = static_cast<uint64_t>(parsed);
    } else if (ParseFlag(argv[i], "packets", &value)) {
      if (!ParseInt64(value, &packets) || packets <= 0) {
        return Usage();
      }
    } else if (ParseFlag(argv[i], "queries", &value)) {
      if (!ParseInt64(value, &queries) || queries <= 0) {
        return Usage();
      }
    } else if (ParseFlag(argv[i], "zone", &value)) {
      zone_file = value;
    } else if (ParseFlag(argv[i], "versions", &value)) {
      versions.clear();
      for (const std::string& name : SplitString(value, ',')) {
        EngineVersion version;
        if (!VersionFromName(name, &version)) {
          std::fprintf(stderr, "unknown version '%s'\n", name.c_str());
          return Usage();
        }
        versions.push_back(version);
      }
    } else {
      return Usage();
    }
  }
  if (smoke) {
    // The CI gate is a fixed configuration; flags may only scale it up.
    seed = kSmokeSeed;
    packets = std::max<int64_t>(packets, 12000);
    versions = AllEngineVersions();
  }

  ZoneConfig zone;
  if (zone_file.empty()) {
    zone = BugHuntZone();
  } else {
    std::ifstream in(zone_file);
    if (!in) {
      std::fprintf(stderr, "cannot open zone file %s\n", zone_file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Result<ZoneConfig> parsed = ParseZoneText(text.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad zone file: %s\n", parsed.error().c_str());
      return 2;
    }
    zone = std::move(parsed).value();
  }

  // --- pass 1: codec round trip ---
  RoundTripOptions rt_options;
  rt_options.seed = seed;
  // Each iteration exercises 2 * (1 + mutants_per_packet) packets.
  int64_t per_iteration = 2 * (1 + rt_options.mutants_per_packet);
  rt_options.iterations = (packets + per_iteration - 1) / per_iteration;
  RoundTripStats rt = RunRoundTripFuzz(rt_options, zone);
  std::printf("%s", rt.Summary().c_str());

  // --- pass 2: engine vs spec differential ---
  DifferentialOptions diff_options;
  diff_options.seed = seed;
  diff_options.random_queries = queries;
  Result<DifferentialStats> diff = RunDifferentialFuzz(versions, zone, diff_options);
  if (!diff.ok()) {
    std::fprintf(stderr, "differential pass failed: %s\n", diff.error().c_str());
    return 2;
  }
  std::printf("%s", diff.value().Summary().c_str());
  for (const WireDivergence& divergence : diff.value().divergences) {
    std::printf("%s", divergence.ToString().c_str());
    if (hex) {
      std::printf("%s", WirePacketToHex(divergence.query_packet).c_str());
    }
  }

  // --- pass 3: interp vs compiled backend differential ---
  // The fingerprint provenance gate runs inside: each version's compiled
  // artifact must carry the ModuleFingerprint of the recompiled + repruned
  // IR, or the pass fails as a setup error (stale absir-codegen output).
  Result<BackendDifferentialStats> backend =
      RunBackendDifferential(versions, zone, diff_options);
  if (!backend.ok()) {
    std::fprintf(stderr, "backend differential pass failed: %s\n",
                 backend.error().c_str());
    return 2;
  }
  std::printf("%s", backend.value().Summary().c_str());
  for (const BackendDivergence& divergence : backend.value().divergences) {
    std::printf("%s", divergence.ToString().c_str());
    if (hex) {
      std::printf("%s", WirePacketToHex(divergence.query_packet).c_str());
    }
  }

  int failures = 0;
  if (!rt.ok()) {
    std::fprintf(stderr, "FAIL: %lld round-trip violations\n",
                 static_cast<long long>(rt.violations));
    ++failures;
  }
  if (smoke) {
    for (EngineVersion version : versions) {
      int64_t count = diff.value().DivergenceCount(version);
      bool clean = version == EngineVersion::kGolden || version == EngineVersion::kV4 ||
                   version == EngineVersion::kV5;
      if (clean && count != 0) {
        std::fprintf(stderr, "FAIL: %s diverged from the spec on %lld queries\n",
                     EngineVersionName(version), static_cast<long long>(count));
        ++failures;
      }
      if (!clean && count == 0) {
        std::fprintf(stderr,
                     "FAIL: %s found no divergence (harness is blind to its known bugs)\n",
                     EngineVersionName(version));
        ++failures;
      }
    }
  }
  // Interp-vs-compiled divergence is a bug in every mode, on every version:
  // the backends execute the same verified module and must agree bug-for-bug.
  for (const auto& entry : backend.value().divergent_queries) {
    std::fprintf(stderr, "FAIL: %s interp and compiled backends diverged on %lld queries\n",
                 EngineVersionName(entry.first), static_cast<long long>(entry.second));
    ++failures;
  }
  if (failures == 0) {
    std::printf("%s: all invariants hold\n", smoke ? "smoke" : "fuzz");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dnsv

int main(int argc, char** argv) { return dnsv::RunFuzz(argc, argv); }

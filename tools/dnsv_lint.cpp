// dnsv-lint: the MiniGo lint front door (src/analysis/lint.h).
//
//   dnsv-lint                lint the embedded engine sources, every version
//   dnsv-lint file.mg...     lint the given MiniGo files
//   dnsv-lint --werror ...   exit 1 when any diagnostic is produced
//   dnsv-lint --selftest     run the embedded one-fixture-per-category check
//
// Engine-source mode lints each version's compilation unit separately (the
// versions share the library modules, so diagnostics are deduplicated by
// their rendered form before printing).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/engine/sources/sources.h"

namespace dnsv {
namespace {

int LintEngineSources(bool werror) {
  std::set<std::string> rendered;
  // The engine is linted with the verifier's analysis roots: interprocedural
  // categories (unreachable-function in particular) are judged against what
  // the drivers can actually invoke.
  LintConfig config;
  config.entry_roots = EngineAnalysisRoots();
  for (EngineVersion version : AllEngineVersions()) {
    Result<std::vector<LintDiagnostic>> diags =
        LintMiniGoSources(EngineSources(version), config);
    if (!diags.ok()) {
      std::fprintf(stderr, "dnsv-lint: engine %s does not build: %s\n",
                   EngineVersionName(version), diags.error().c_str());
      return 2;
    }
    for (const LintDiagnostic& diag : diags.value()) {
      rendered.insert(diag.ToString());
    }
  }
  for (const std::string& line : rendered) {
    std::printf("%s\n", line.c_str());
  }
  std::printf("dnsv-lint: %zu finding(s) across %zu engine version(s)\n", rendered.size(),
              AllEngineVersions().size());
  return werror && !rendered.empty() ? 1 : 0;
}

int LintFiles(const std::vector<std::string>& files, bool werror) {
  size_t findings = 0;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "dnsv-lint: cannot read %s\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Result<std::vector<LintDiagnostic>> diags = LintMiniGoSource(path, text.str());
    if (!diags.ok()) {
      std::fprintf(stderr, "dnsv-lint: %s does not build: %s\n", path.c_str(),
                   diags.error().c_str());
      return 2;
    }
    for (const LintDiagnostic& diag : diags.value()) {
      std::printf("%s\n", diag.ToString().c_str());
      ++findings;
    }
  }
  std::printf("dnsv-lint: %zu finding(s) in %zu file(s)\n", findings, files.size());
  return werror && findings > 0 ? 1 : 0;
}

// One seeded fixture per diagnostic category; the selftest fails when a
// category stops firing (a regression in the lint) or an unexpected
// diagnostic appears (a precision loss).
struct Fixture {
  const char* category;
  const char* source;
  // Optional analysis entry root for the interprocedural categories; null
  // lints with the default (empty) config.
  const char* root = nullptr;
};

const Fixture kFixtures[] = {
    {"use-before-assign", R"mg(
func f(flag bool) int {
  var x int
  if flag {
    x = 1
  }
  return x
}
)mg"},
    {"dead-statement", R"mg(
func f() int {
  return 1
  var x int
  x = 2
  return x
}
)mg"},
    {"unused-local", R"mg(
func f() int {
  var unusedValue int
  unusedValue = 3
  return 0
}
)mg"},
    {"constant-condition", R"mg(
func f() int {
  if 1 < 2 {
    return 1
  }
  return 0
}
)mg"},
    // Interprocedural: `two` is pure, panic-free, and returns a value, so a
    // bare `two()` statement provably does nothing.
    {"unused-result", R"mg(
func two() int {
  return 2
}
func f() int {
  two()
  return 0
}
)mg"},
    // Interprocedural: with `f` as the only entry root, `orphan` is dead.
    {"unreachable-function", R"mg(
func orphan() int {
  return 1
}
func f() int {
  return 0
}
)mg", "f"},
    // Interprocedural: the guard does not literal-fold, but two()'s summary
    // (constant return 2) folds it. A feature-gate condition over a named
    // constant must NOT fire this — checked by the engine --werror gate,
    // whose sources are full of `if featureX == 1`.
    {"constant-foldable-guard", R"mg(
func two() int {
  return 2
}
func f() int {
  x := two()
  if two() == 2 {
    return x
  }
  return 0
}
)mg"},
};

int SelfTest() {
  int failures = 0;
  for (const Fixture& fixture : kFixtures) {
    LintConfig config;
    if (fixture.root != nullptr) config.entry_roots.push_back(fixture.root);
    Result<std::vector<LintDiagnostic>> diags =
        LintMiniGoSource("fixture.mg", fixture.source, config);
    if (!diags.ok()) {
      std::fprintf(stderr, "FAIL %s: fixture does not build: %s\n", fixture.category,
                   diags.error().c_str());
      ++failures;
      continue;
    }
    bool hit = false;
    for (const LintDiagnostic& diag : diags.value()) {
      if (diag.category == fixture.category) hit = true;
    }
    if (!hit) {
      std::fprintf(stderr, "FAIL %s: fixture produced no such diagnostic\n",
                   fixture.category);
      for (const LintDiagnostic& diag : diags.value()) {
        std::fprintf(stderr, "  got: %s\n", diag.ToString().c_str());
      }
      ++failures;
    } else {
      std::printf("ok   %s\n", fixture.category);
    }
  }
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  bool werror = false;
  bool selftest = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--werror") == 0) {
      werror = true;
    } else if (std::strcmp(argv[i], "--selftest") == 0) {
      selftest = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: dnsv-lint [--werror] [--selftest] [file.mg ...]\n");
      return 0;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (selftest) return SelfTest();
  if (!files.empty()) return LintFiles(files, werror);
  return LintEngineSources(werror);
}

}  // namespace
}  // namespace dnsv

int main(int argc, char** argv) { return dnsv::Main(argc, argv); }

// dnsv-cache: operator CLI for the content-addressed artifact store
// (docs/INCREMENTAL.md).
//
//   dnsv-cache [--store=DIR] ls              list every artifact
//   dnsv-cache [--store=DIR] stats           per-kind counts and bytes
//   dnsv-cache [--store=DIR] gc --max-bytes=N  evict LRU artifacts down to N
//   dnsv-cache [--store=DIR] clear           remove every artifact
//   dnsv-cache --selftest                    exercise all commands on a
//                                            temporary store (the ctest smoke)
//
// The store directory comes from --store, else DNSV_STORE_DIR. Every command
// is safe against concurrent verifiers: GC and clear only unlink files, and a
// verifier that loses an artifact under it just recomputes cold.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/store/store.h"
#include "src/support/strings.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dnsv-cache [--store=DIR] <command>\n"
               "  ls                    list artifacts (kind, bytes, key)\n"
               "  stats                 per-kind totals and corruption count\n"
               "  gc --max-bytes=N      evict least-recently-used down to N bytes\n"
               "  clear                 remove every artifact\n"
               "  --selftest            run the built-in smoke on a temp store\n");
  return 2;
}

int RunLs(dnsv::ArtifactStore* store) {
  std::vector<dnsv::ArtifactStore::Entry> entries = store->List();
  for (const dnsv::ArtifactStore::Entry& entry : entries) {
    if (entry.corrupt) {
      std::printf("%-10s %10llu  [corrupt] %s\n", entry.kind.c_str(),
                  (unsigned long long)entry.bytes, entry.path.c_str());
    } else {
      std::printf("%-10s %10llu  %s\n", entry.kind.c_str(), (unsigned long long)entry.bytes,
                  entry.key.c_str());
    }
  }
  std::printf("%zu artifact(s)\n", entries.size());
  return 0;
}

int RunStats(dnsv::ArtifactStore* store) {
  dnsv::ArtifactStore::StoreStats stats = store->GetStats();
  for (const auto& [kind, ks] : stats.kinds) {
    std::printf("%-10s %6lld artifact(s) %12lld bytes\n", kind.c_str(),
                (long long)ks.count, (long long)ks.bytes);
  }
  std::printf("total      %6lld artifact(s) %12lld bytes, %lld corrupt\n",
              (long long)stats.total_count, (long long)stats.total_bytes,
              (long long)stats.corrupt_count);
  return 0;
}

int RunGc(dnsv::ArtifactStore* store, int64_t max_bytes) {
  int64_t removed = store->GC(max_bytes);
  dnsv::ArtifactStore::StoreStats stats = store->GetStats();
  std::printf("gc: removed %lld artifact(s), %lld bytes remain\n", (long long)removed,
              (long long)stats.total_bytes);
  return 0;
}

int RunClear(dnsv::ArtifactStore* store) {
  int64_t removed = store->Clear();
  std::printf("clear: removed %lld artifact(s)\n", (long long)removed);
  return 0;
}

#define SELFTEST_CHECK(cond)                                                  \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "dnsv-cache selftest FAILED at %s:%d: %s\n",       \
                   __FILE__, __LINE__, #cond);                                \
      return 1;                                                               \
    }                                                                         \
  } while (0)

int RunSelftest() {
  namespace fs = std::filesystem;
  fs::path root = fs::temp_directory_path() /
                  ("dnsv-cache-selftest-" + std::to_string(::getpid()));
  fs::remove_all(root);
  {
    dnsv::ArtifactStore store(root.string());
    // Seed a few artifacts across two kinds.
    SELFTEST_CHECK(store.Put("report", "report|v1|a", std::string(100, 'x')));
    SELFTEST_CHECK(store.Put("report", "report|v1|b", std::string(200, 'y')));
    SELFTEST_CHECK(store.Put("qcache", "qcache|v1|shard0", std::string(50, 'z')));

    SELFTEST_CHECK(RunLs(&store) == 0);
    SELFTEST_CHECK(RunStats(&store) == 0);
    dnsv::ArtifactStore::StoreStats stats = store.GetStats();
    SELFTEST_CHECK(stats.total_count == 3);
    SELFTEST_CHECK(stats.corrupt_count == 0);
    SELFTEST_CHECK(stats.kinds.at("report").count == 2);

    // Refresh one artifact's LRU clock, then GC down hard: the refreshed
    // artifact must be the survivor-most candidate.
    SELFTEST_CHECK(store.Get("report", "report|v1|b").has_value());
    SELFTEST_CHECK(RunGc(&store, 300) == 0);
    stats = store.GetStats();
    SELFTEST_CHECK(stats.total_bytes <= 300);
    SELFTEST_CHECK(store.Contains("report", "report|v1|b"));

    SELFTEST_CHECK(RunClear(&store) == 0);
    SELFTEST_CHECK(store.GetStats().total_count == 0);
    SELFTEST_CHECK(!store.Contains("report", "report|v1|b"));
  }
  fs::remove_all(root);
  std::printf("dnsv-cache selftest OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_dir;
  std::string command;
  int64_t max_bytes = -1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--selftest") {
      return RunSelftest();
    } else if (dnsv::StartsWith(arg, "--store=")) {
      store_dir = arg.substr(std::strlen("--store="));
    } else if (dnsv::StartsWith(arg, "--max-bytes=")) {
      if (!dnsv::ParseInt64(arg.substr(std::strlen("--max-bytes=")), &max_bytes) ||
          max_bytes < 0) {
        std::fprintf(stderr, "dnsv-cache: bad --max-bytes value\n");
        return 2;
      }
    } else if (command.empty() && !dnsv::StartsWith(arg, "--")) {
      command = arg;
    } else {
      return Usage();
    }
  }
  if (command.empty()) {
    return Usage();
  }
  if (store_dir.empty()) {
    const char* env = std::getenv("DNSV_STORE_DIR");
    if (env != nullptr) store_dir = env;
  }
  if (store_dir.empty()) {
    std::fprintf(stderr, "dnsv-cache: no store (pass --store=DIR or set DNSV_STORE_DIR)\n");
    return 2;
  }
  dnsv::ArtifactStore store(store_dir);
  if (command == "ls") return RunLs(&store);
  if (command == "stats") return RunStats(&store);
  if (command == "clear") return RunClear(&store);
  if (command == "gc") {
    if (max_bytes < 0) {
      std::fprintf(stderr, "dnsv-cache: gc requires --max-bytes=N\n");
      return 2;
    }
    return RunGc(&store, max_bytes);
  }
  return Usage();
}

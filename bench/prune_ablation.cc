// Prune ablation: what the AbsIR dataflow pruner (src/analysis) buys the
// symbolic-execution stage. For each engine version the same zone is verified
// three times — pruning off, baseline (intraprocedural) pruning, and pruning
// fed by the interprocedural analysis suite (callgraph + summaries + SCCP +
// escape facts) — and the table compares paths explored, solver checks, and
// wall-clock across the `analysis: baseline|interproc` axis. The pruner is
// sound in both modes (a guard is rewritten only when its panic side is
// proved infeasible), so all three runs must agree on the verdict and every
// issue; the harness asserts exactly that before it reports any numbers, and
// additionally asserts the interprocedural mode never discharges fewer
// guards or leaves more solver checks than the baseline.
//
// Besides the human-readable table, the harness writes BENCH_prune.json
// (machine-readable, one record per version and analysis mode) into the
// working directory.
#include <cstdio>
#include <string>

#include "src/dnsv/pipeline.h"
#include "src/dns/zone.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

ZoneConfig AblationZone() {
  // Same all-features zone as the Fig. 12 harness: wildcard + delegation +
  // CNAME exercise every resolution layer, so every layer's panic guards are
  // in scope for the pruner.
  return ParseZoneText(R"(
$ORIGIN example.com.
@        SOA   ns1 2024
@        NS    ns1.example.com.
ns1      A     192.0.2.1
www      A     192.0.2.10
alias    CNAME www
*.dyn    A     192.0.2.99
sub      NS    ns1.sub.example.com.
ns1.sub  A     192.0.2.51
)").value();
}

std::string IssueDigest(const VerificationReport& report) {
  std::string digest;
  for (const VerificationIssue& issue : report.issues) {
    digest += issue.ToString();
  }
  return digest;
}

struct Row {
  const char* version = "";
  VerificationReport off;
  VerificationReport baseline;
  VerificationReport interproc;
};

int RunAblation() {
  std::printf("Prune ablation: dataflow-discharged panic guards vs. plain exploration\n");
  std::printf("zone: example.com (wildcard + delegation + CNAME)\n");
  std::printf("analysis axis: baseline = PR-2 intraprocedural pruner; interproc =\n");
  std::printf("SCCP + callee summaries + escape facts feeding the same pruner\n\n");
  std::printf("%-8s %7s | %8s %10s %10s | %10s %10s | %s\n", "version", "paths",
              "checks", "checks.base", "checks.ipa", "disch.base", "disch.ipa",
              "pruned base/ipa");

  VerifyContext context;
  std::vector<Row> rows;
  bool sound = true;
  bool interproc_dominates = true;
  for (EngineVersion version : AllEngineVersions()) {
    Row row;
    row.version = EngineVersionName(version);
    VerifyOptions options;
    options.prune = false;
    row.off = RunVerifyPipeline(&context, version, AblationZone(), options);
    options.prune = true;
    options.prune_interproc = false;
    row.baseline = RunVerifyPipeline(&context, version, AblationZone(), options);
    options.prune_interproc = true;
    row.interproc = RunVerifyPipeline(&context, version, AblationZone(), options);

    // Soundness gate: identical verdict and identical issue list across all
    // three modes, or the numbers below are meaningless.
    for (const VerificationReport* pruned : {&row.baseline, &row.interproc}) {
      if (row.off.verified != pruned->verified || row.off.aborted != pruned->aborted ||
          IssueDigest(row.off) != IssueDigest(*pruned)) {
        std::printf("%-8s SOUNDNESS VIOLATION: pruned run disagrees with baseline\n",
                    row.version);
        sound = false;
      }
    }
    // Monotonicity gate: the interprocedural facts may only help.
    if (row.interproc.panics_discharged < row.baseline.panics_discharged ||
        row.interproc.solver_checks > row.baseline.solver_checks) {
      std::printf("%-8s REGRESSION: interproc analysis did worse than baseline\n",
                  row.version);
      interproc_dominates = false;
    }
    std::printf("%-8s %7lld | %8lld %10lld %10lld | %10lld %10lld | %lld/%lld\n",
                row.version, static_cast<long long>(row.off.engine_paths),
                static_cast<long long>(row.off.solver_checks),
                static_cast<long long>(row.baseline.solver_checks),
                static_cast<long long>(row.interproc.solver_checks),
                static_cast<long long>(row.baseline.panics_discharged),
                static_cast<long long>(row.interproc.panics_discharged),
                static_cast<long long>(row.baseline.paths_pruned),
                static_cast<long long>(row.interproc.paths_pruned));
    rows.push_back(std::move(row));
  }

  std::string json = "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    struct Mode {
      const char* analysis;
      const VerificationReport* report;
    };
    const Mode modes[] = {{"baseline", &row.baseline}, {"interproc", &row.interproc}};
    for (size_t m = 0; m < 2; ++m) {
      const Mode& mode = modes[m];
      json += StrCat("  {\"version\": \"", row.version, "\", \"analysis\": \"",
                     mode.analysis, "\", \"paths_off\": ", row.off.engine_paths,
                     ", \"paths_on\": ", mode.report->engine_paths,
                     ", \"solver_checks_off\": ", row.off.solver_checks,
                     ", \"solver_checks_on\": ", mode.report->solver_checks,
                     ", \"seconds_off\": ", row.off.total_seconds,
                     ", \"seconds_on\": ", mode.report->total_seconds,
                     ", \"panics_discharged\": ", mode.report->panics_discharged,
                     ", \"paths_pruned\": ", mode.report->paths_pruned,
                     ", \"sccp_branches_folded\": ", mode.report->analysis.sccp_branches_folded,
                     ", \"verdicts_agree\": ", sound ? "true" : "false", "}",
                     i + 1 < rows.size() || m + 1 < 2 ? "," : "", "\n");
    }
  }
  json += "]\n";
  std::FILE* out = std::fopen("BENCH_prune.json", "w");
  if (out != nullptr) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("\nwrote BENCH_prune.json\n");
  }

  std::printf("expectation: identical verdicts, strictly fewer solver checks with\n");
  std::printf("pruning on, and interproc discharging at least as many guards as the\n");
  std::printf("baseline on every version; path counts match (discharged guards were\n");
  std::printf("never feasible).\n");
  return sound && interproc_dominates ? 0 : 1;
}

}  // namespace
}  // namespace dnsv

int main() { return dnsv::RunAblation(); }

// Prune ablation: what the AbsIR dataflow pruner (src/analysis) buys the
// symbolic-execution stage. For each engine version the same zone is verified
// twice — pruning off, then on — and the table compares paths explored,
// solver checks, and wall-clock. The pruner is sound (a guard is rewritten
// only when its panic side is proved infeasible), so both runs must agree on
// the verdict and every issue; the harness asserts exactly that before it
// reports any numbers.
//
// Besides the human-readable table, the harness writes BENCH_prune.json
// (machine-readable, one record per version) into the working directory.
#include <cstdio>
#include <string>

#include "src/dnsv/pipeline.h"
#include "src/dns/zone.h"
#include "src/support/strings.h"

namespace dnsv {
namespace {

ZoneConfig AblationZone() {
  // Same all-features zone as the Fig. 12 harness: wildcard + delegation +
  // CNAME exercise every resolution layer, so every layer's panic guards are
  // in scope for the pruner.
  return ParseZoneText(R"(
$ORIGIN example.com.
@        SOA   ns1 2024
@        NS    ns1.example.com.
ns1      A     192.0.2.1
www      A     192.0.2.10
alias    CNAME www
*.dyn    A     192.0.2.99
sub      NS    ns1.sub.example.com.
ns1.sub  A     192.0.2.51
)").value();
}

std::string IssueDigest(const VerificationReport& report) {
  std::string digest;
  for (const VerificationIssue& issue : report.issues) {
    digest += issue.ToString();
  }
  return digest;
}

struct Row {
  const char* version = "";
  VerificationReport off;
  VerificationReport on;
  int64_t panics_discharged = 0;
  int64_t paths_pruned = 0;
};

int RunAblation() {
  std::printf("Prune ablation: dataflow-discharged panic guards vs. plain exploration\n");
  std::printf("zone: example.com (wildcard + delegation + CNAME)\n\n");
  std::printf("%-8s %9s %9s | %13s %13s | %9s %9s | %s\n", "version", "paths", "paths'",
              "solver checks", "checks'", "wall (s)", "wall' (s)", "discharged/pruned");

  VerifyContext context;
  std::vector<Row> rows;
  bool sound = true;
  for (EngineVersion version : AllEngineVersions()) {
    Row row;
    row.version = EngineVersionName(version);
    VerifyOptions options;
    options.prune = false;
    row.off = RunVerifyPipeline(&context, version, AblationZone(), options);
    options.prune = true;
    row.on = RunVerifyPipeline(&context, version, AblationZone(), options);
    row.panics_discharged = row.on.panics_discharged;
    row.paths_pruned = row.on.paths_pruned;

    // Soundness gate: identical verdict and identical issue list, or the
    // numbers below are meaningless.
    if (row.off.verified != row.on.verified || row.off.aborted != row.on.aborted ||
        IssueDigest(row.off) != IssueDigest(row.on)) {
      std::printf("%-8s SOUNDNESS VIOLATION: pruned run disagrees with baseline\n",
                  row.version);
      sound = false;
    }
    std::printf("%-8s %9lld %9lld | %13lld %13lld | %9.3f %9.3f | %lld/%lld\n", row.version,
                static_cast<long long>(row.off.engine_paths),
                static_cast<long long>(row.on.engine_paths),
                static_cast<long long>(row.off.solver_checks),
                static_cast<long long>(row.on.solver_checks), row.off.total_seconds,
                row.on.total_seconds, static_cast<long long>(row.panics_discharged),
                static_cast<long long>(row.paths_pruned));
    rows.push_back(std::move(row));
  }

  std::string json = "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json += StrCat("  {\"version\": \"", row.version,
                   "\", \"paths_off\": ", row.off.engine_paths,
                   ", \"paths_on\": ", row.on.engine_paths,
                   ", \"solver_checks_off\": ", row.off.solver_checks,
                   ", \"solver_checks_on\": ", row.on.solver_checks,
                   ", \"seconds_off\": ", row.off.total_seconds,
                   ", \"seconds_on\": ", row.on.total_seconds,
                   ", \"panics_discharged\": ", row.panics_discharged,
                   ", \"paths_pruned\": ", row.paths_pruned,
                   ", \"verdicts_agree\": ", sound ? "true" : "false", "}",
                   i + 1 < rows.size() ? "," : "", "\n");
  }
  json += "]\n";
  std::FILE* out = std::fopen("BENCH_prune.json", "w");
  if (out != nullptr) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("\nwrote BENCH_prune.json\n");
  }

  std::printf("expectation: identical verdicts, strictly fewer solver checks with\n");
  std::printf("pruning on; path counts match (discharged guards were never feasible).\n");
  return sound ? 0 : 1;
}

}  // namespace
}  // namespace dnsv

int main() { return dnsv::RunAblation(); }

// Table 1 reproduction: all execution paths of TreeSearch walking the
// Fig.-11 example domain tree, with an example qname satisfying each path
// condition.
//
// The paper's Table 1 lists 14 paths P0-P13 for the tree
//   example.com -> { cs -> { web, zoo }, www }   (plus ns1 in our zone file)
// Our summary of treeSearch enumerates the same path families: one per
// reachable tree node (exact match) and one per "fell off the BST" position
// (closest-encloser match), exactly as the paper's P* arrows depict.
#include <cstdio>

#include "src/dns/example_zones.h"
#include "src/support/strings.h"
#include "src/dnsv/verifier.h"
#include "src/sym/refine.h"
#include "src/sym/summary.h"

namespace dnsv {
namespace {

// Builds a readable label for a model value: the interned label if exact, or
// a synthesized label that sits at the right lexicographic position.
std::string PrettyLabel(int64_t code, const LabelInterner& interner) {
  return interner.DecodeApprox(code);
}

int RunTable1() {
  ZoneConfig zone = CanonicalizeZone(Figure11Zone()).value();
  std::unique_ptr<CompiledEngine> engine = CompiledEngine::Compile(EngineVersion::kGolden);
  LabelInterner interner;
  ConcreteMemory concrete_memory;
  HeapImage image = BuildHeapImage(zone, &interner, engine->types(), &concrete_memory);

  TermArena arena;
  SolverSession solver(&arena);
  SymMemory base_memory = LiftMemory(concrete_memory, &arena);
  SymValue apex = LiftValue(image.apex_ptr, &arena);

  const int kRelCapacity = 3;  // up to 3 labels under example.com, like Table 1
  Summarizer summarizer(&engine->module(), &arena, &solver, base_memory, kRelCapacity,
                        interner.max_code());
  for (FunctionInterface& interface_config : ResolutionLayerInterfaces()) {
    summarizer.Configure(std::move(interface_config));
  }

  std::printf("Table 1: execution paths of TreeSearch on the Fig.-11 domain tree\n");
  std::printf("zone: %s\n", zone.origin.ToString().c_str());
  std::printf("%-8s %-34s %-10s %s\n", "Path", "Example qname", "match", "node");

  const FunctionSummary* summary = summarizer.GetOrCompute(
      "treeSearch", {apex, SymValue::Unit(), SymValue::OfTerm(arena.BoolConst(true)),
                     SymValue::NullPtr(), SymValue::NullPtr()});
  if (summary == nullptr) {
    std::printf("summarization failed\n");
    return 1;
  }

  StructLayout node_layout(engine->types(), kStructTreeNode);
  int path_id = 0;
  for (const SummaryEntry& entry : summary->entries) {
    if (solver.CheckAssuming(entry.condition) != SatResult::kSat) {
      continue;
    }
    Model model = solver.GetModel();
    // Decode the relative qname from the rel placeholder ("s0.p1.*").
    const SymValue& rel = summary->placeholder_args[1];
    Value rel_value = ConcretizeValue(rel, arena, &model);
    std::vector<std::string> labels;
    for (auto it = rel_value.elems.rbegin(); it != rel_value.elems.rend(); ++it) {
      labels.push_back(PrettyLabel(it->i, interner));
    }
    std::string qname =
        labels.empty() ? zone.origin.ToString()
                       : JoinStrings(labels, ".") + "." + zone.origin.ToString();
    // Decode match kind and matched node from the effects on the
    // SearchResult out-parameter (param index 3).
    std::string match = "?";
    std::string node_desc = "?";
    const StructDef& sr_def = engine->types().GetStruct("SearchResult");
    for (const SummaryEntry::FieldWrite& write : entry.writes) {
      if (write.param != 3) {
        continue;
      }
      if (static_cast<size_t>(sr_def.FieldIndex("match")) == write.field) {
        Value v = ConcretizeValue(write.value, arena, &model);
        match = v.i == kExactMatch ? "EXACT" : v.i == kPartialMatch ? "PARTIAL" : "NOMATCH";
      }
      if (static_cast<size_t>(sr_def.FieldIndex("node")) == write.field &&
          write.value.kind == SymValue::Kind::kPtr && !write.value.IsNullPtr()) {
        const SymValue* node = base_memory.Resolve(write.value.block, {});
        int64_t label_code = 0;
        arena.AsIntConst(node->elems[node_layout.index("label")].term, &label_code);
        node_desc = interner.Decode(label_code);
      }
    }
    std::printf("P%-7d %-34s %-10s %s\n", path_id++, qname.c_str(), match.c_str(),
                node_desc.c_str());
  }
  std::printf("\ntotal paths: %d (paper reports 14 on its variant of this tree)\n", path_id);
  std::printf("summary computed in %.3fs, %lld instructions\n", summary->compute_seconds,
              static_cast<long long>(summary->instrs));
  return 0;
}

}  // namespace
}  // namespace dnsv

int main() { return dnsv::RunTable1(); }

// Micro-benchmarks (google-benchmark) for the substrate layers: solver
// round-trips, term interning, concrete query serving, zone loading, and
// symbolic path exploration. Not part of the paper's evaluation; used for
// performance regression tracking of this reproduction.
#include <benchmark/benchmark.h>

#include "src/dns/example_zones.h"
#include "src/dnsv/verifier.h"
#include "src/engine/engine.h"
#include "src/sym/refine.h"
#include "src/zonegen/zonegen.h"

namespace dnsv {
namespace {

void BM_TermInterning(benchmark::State& state) {
  for (auto _ : state) {
    TermArena arena;
    Term x = arena.Var("x", Sort::kInt);
    Term acc = arena.IntConst(0);
    for (int i = 0; i < 100; ++i) {
      acc = arena.Add(acc, arena.Mul(x, arena.IntConst(i)));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TermInterning);

void BM_SolverRoundTrip(benchmark::State& state) {
  TermArena arena;
  SolverSession solver(&arena);
  Term x = arena.Var("x", Sort::kInt);
  Term y = arena.Var("y", Sort::kInt);
  Term condition = arena.And(arena.Lt(x, y), arena.Lt(y, arena.IntConst(100)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.CheckAssuming(condition));
  }
}
BENCHMARK(BM_SolverRoundTrip);

void BM_EngineCompile(benchmark::State& state) {
  for (auto _ : state) {
    std::unique_ptr<CompiledEngine> engine = CompiledEngine::Compile(EngineVersion::kGolden);
    benchmark::DoNotOptimize(engine->module().functions().size());
  }
}
BENCHMARK(BM_EngineCompile);

void BM_ZoneLoad(benchmark::State& state) {
  ZoneConfig zone = KitchenSinkZone();
  for (auto _ : state) {
    auto server = AuthoritativeServer::Create(EngineVersion::kGolden, zone);
    benchmark::DoNotOptimize(server.ok());
  }
}
BENCHMARK(BM_ZoneLoad);

void BM_ConcreteQuery(benchmark::State& state) {
  auto server =
      std::move(AuthoritativeServer::Create(EngineVersion::kGolden, KitchenSinkZone()).value());
  DnsName qname = DnsName::Parse("www.example.com").value();
  for (auto _ : state) {
    QueryResult result = server->Query(qname, RrType::kA);
    benchmark::DoNotOptimize(result.response.answer.size());
  }
}
BENCHMARK(BM_ConcreteQuery);

void BM_ConcreteQueryWildcardChase(benchmark::State& state) {
  auto server =
      std::move(AuthoritativeServer::Create(EngineVersion::kGolden, KitchenSinkZone()).value());
  DnsName qname = DnsName::Parse("chain.example.com").value();
  for (auto _ : state) {
    QueryResult result = server->Query(qname, RrType::kA);
    benchmark::DoNotOptimize(result.response.answer.size());
  }
}
BENCHMARK(BM_ConcreteQueryWildcardChase);

void BM_SpecQuery(benchmark::State& state) {
  auto server =
      std::move(AuthoritativeServer::Create(EngineVersion::kGolden, KitchenSinkZone()).value());
  DnsName qname = DnsName::Parse("www.example.com").value();
  for (auto _ : state) {
    QueryResult result = server->QuerySpec(qname, RrType::kA);
    benchmark::DoNotOptimize(result.response.answer.size());
  }
}
BENCHMARK(BM_SpecQuery);

void BM_ZoneGeneration(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    ZoneConfig zone = GenerateZone(seed++);
    benchmark::DoNotOptimize(zone.records.size());
  }
}
BENCHMARK(BM_ZoneGeneration);

void BM_SymbolicNameCompare(benchmark::State& state) {
  std::unique_ptr<CompiledEngine> engine = CompiledEngine::Compile(EngineVersion::kGolden);
  for (auto _ : state) {
    TermArena arena;
    SolverSession solver(&arena);
    SymExecutor executor(&engine->module(), &arena, &solver);
    SymbolicIntList a = MakeSymbolicIntList(&arena, "a", 4, 1, 1000);
    SymbolicIntList b = MakeSymbolicIntList(&arena, "b", 3, 1, 1000);
    SymState st;
    st.pc = arena.And(a.constraints, b.constraints);
    auto outcomes =
        executor.Explore(*engine->module().GetFunction("nameCompare"), {a.value, b.value}, st);
    benchmark::DoNotOptimize(outcomes.size());
  }
}
BENCHMARK(BM_SymbolicNameCompare);

void BM_FullVerificationSmallZone(benchmark::State& state) {
  ZoneConfig zone = ParseZoneText(
      "$ORIGIN b.test.\n@ SOA ns 1\n@ NS ns.b.test.\nns A 192.0.2.1\nwww A 192.0.2.2\n")
                        .value();
  for (auto _ : state) {
    VerificationReport report = VerifyEngine(EngineVersion::kGolden, zone);
    benchmark::DoNotOptimize(report.verified);
  }
}
BENCHMARK(BM_FullVerificationSmallZone)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dnsv

BENCHMARK_MAIN();
